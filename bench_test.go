// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. IV). Each benchmark prints its regenerated artifact once (with the
// paper's reference values in the caption) and then times the part of the
// pipeline the experiment exercises. Custom metrics report the validation
// error percentages so `go test -bench` output records the reproduction
// quality alongside timing.
package mira_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mira"
	"mira/internal/arch"
	"mira/internal/benchprogs"
	"mira/internal/engine"
	"mira/internal/experiments"
	"mira/internal/expr"
	"mira/internal/report"
)

// printOnce keys the regenerated artifacts so each prints exactly once
// even when -benchtime or -count reruns a benchmark function.
var printOnce sync.Map

func printArtifact(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// benchEng is the shared benchmark engine: experiments take the engine
// and context explicitly, and the suite benefits from one shared
// pipeline/evaluation cache exactly like the CLI does.
var benchEng = engine.New(engine.Options{})

func bctx() context.Context { return context.Background() }

// tablesText renders report tables in the paper's ASCII style for the
// printed artifacts.
func tablesText(tables ...report.Table) string {
	rep := report.Report{Tables: tables}
	return rep.Text()
}

// maxErrPct folds validation rows to their largest defined error.
func maxErrPct(rows []experiments.ValidationRow) float64 {
	maxErr := 0.0
	for _, r := range rows {
		if e, ok := r.ErrorPct(); ok && e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// BenchmarkTableI_LoopCoverage regenerates the loop-coverage survey
// (paper Table I: 77-100% across ten applications).
func BenchmarkTableI_LoopCoverage(b *testing.B) {
	rows, err := experiments.TableI(bctx(), benchEng)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("tableI", tablesText(experiments.TableITable(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(bctx(), benchEng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_CgSolveCategories regenerates the categorized
// instruction counts of cg_solve (paper Table II; integer data transfer
// dominates, SSE2 packed arithmetic carries the FPI).
func BenchmarkTableII_CgSolveCategories(b *testing.B) {
	s := experiments.MiniFESizes{NX: 30, NY: 30, NZ: 30, MaxIter: 20, NnzRowAnnotation: 25}
	rows, err := experiments.TableII(bctx(), benchEng, s)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("tableII", tablesText(experiments.TableIITable(rows))+
		"(paper Table II at this config: int data transfer 2.42E9, SSE2 arith 1.93E8, ...)\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(bctx(), benchEng, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_InstructionDistribution regenerates the Fig. 6 pie data
// (category shares of cg_solve).
func BenchmarkFig6_InstructionDistribution(b *testing.B) {
	s := experiments.MiniFESizes{NX: 30, NY: 30, NZ: 30, MaxIter: 20, NnzRowAnnotation: 25}
	rows, err := experiments.TableII(bctx(), benchEng, s)
	if err != nil {
		b.Fatal(err)
	}
	var sse2Share float64
	for _, r := range rows {
		if r.Category == "SSE2 packed arithmetic instruction" {
			sse2Share = r.Fraction * 100
		}
	}
	printArtifact("fig6", fmt.Sprintf(
		"Fig. 6: SSE2 packed arithmetic share of cg_solve = %.1f%% (the separated pie slice)", sse2Share))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(bctx(), benchEng, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sse2Share, "sse2-share-%")
}

// BenchmarkTableIII_StreamFPI regenerates the STREAM validation (paper
// Table III: error <= 0.47%; ours is exact because STREAM is fully affine
// and library-free). Dynamic runs use scaled sizes; the timed loop
// measures the static model evaluation, which is the paper's headline
// cost advantage.
func BenchmarkTableIII_StreamFPI(b *testing.B) {
	rows, err := experiments.TableIII(bctx(), benchEng, []int64{2_000_000, 5_000_000, 10_000_000})
	if err != nil {
		b.Fatal(err)
	}
	static100M, err := experiments.StreamStaticFPI(bctx(), benchEng, 100_000_000)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("tableIII",
		tablesText(experiments.ValidationTable("table_iii", "Table III: STREAM FPI (paper err: 0.19-0.47%)", rows))+
			fmt.Sprintf("static-only at paper size 100M: %.4g (paper: 2.050E10)\n", float64(static100M)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StreamStaticFPI(bctx(), benchEng, 100_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(maxErrPct(rows), "max-err-%")
}

// BenchmarkTableIV_DgemmFPI regenerates the DGEMM validation (paper Table
// IV: error <= 0.05%; ours exact).
func BenchmarkTableIV_DgemmFPI(b *testing.B) {
	rows, err := experiments.TableIV(bctx(), benchEng, []int64{64, 96, 128}, 4)
	if err != nil {
		b.Fatal(err)
	}
	static1024, err := experiments.DgemmStaticFPI(bctx(), benchEng, 1024, 30)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("tableIV",
		tablesText(experiments.ValidationTable("table_iv", "Table IV: DGEMM FPI (paper err: 0.0012-0.05%)", rows))+
			fmt.Sprintf("static-only at paper size 1024 (nrep=30): %.5g (paper: 6.4519E10)\n", float64(static1024)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DgemmStaticFPI(bctx(), benchEng, 1024, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(maxErrPct(rows), "max-err-%")
}

// BenchmarkTableV_MiniFEFPI regenerates the miniFE per-function validation
// at the paper's exact grid sizes (30x30x30 and 35x40x45). The paper's
// error band is 0.011%-3.08%, growing with problem size because the
// static model undercounts data-dependent row lengths and invisible
// library bodies; the reproduction shows the same direction and growth.
func BenchmarkTableV_MiniFEFPI(b *testing.B) {
	sizes := []experiments.MiniFESizes{
		{NX: 30, NY: 30, NZ: 30, MaxIter: 20, NnzRowAnnotation: 25},
		{NX: 35, NY: 40, NZ: 45, MaxIter: 20, NnzRowAnnotation: 25},
	}
	rows, err := experiments.TableV(bctx(), benchEng, sizes)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("tableV",
		tablesText(experiments.ValidationTable("table_v", "Table V: miniFE FPI (paper err: 0.011-3.08%, growing with size)", rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MiniFEStatic(bctx(), benchEng, sizes[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(maxErrPct(rows), "max-err-%")
}

// BenchmarkFig7_ValidationSeries regenerates the four validation panels.
func BenchmarkFig7_ValidationSeries(b *testing.B) {
	series, err := experiments.Fig7(bctx(), benchEng,
		[]int64{1_000_000, 2_000_000, 5_000_000},
		[]int64{48, 64, 96}, 4,
		[]experiments.MiniFESizes{
			{NX: 10, NY: 10, NZ: 10, MaxIter: 10, NnzRowAnnotation: 19},
			{NX: 12, NY: 14, NZ: 16, MaxIter: 10, NnzRowAnnotation: 22},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("fig7", tablesText(experiments.Fig7Tables(series)...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int64{1_000_000, 2_000_000, 5_000_000} {
			if _, err := experiments.StreamStaticFPI(bctx(), benchEng, n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPrediction_ArithmeticIntensity regenerates the Sec. IV-D2
// prediction (paper: instruction-based AI of cg_solve = 0.53).
func BenchmarkPrediction_ArithmeticIntensity(b *testing.B) {
	s := experiments.MiniFESizes{NX: 30, NY: 30, NZ: 30, MaxIter: 20, NnzRowAnnotation: 25}
	an, err := experiments.Prediction(bctx(), benchEng, s, arch.Arya())
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("prediction",
		fmt.Sprintf("Prediction (paper: AI = 1.93E8/3.67E8 = 0.53):\n%s", an))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Prediction(bctx(), benchEng, s, arch.Arya()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(an.InstrAI, "instr-AI")
}

// BenchmarkAblation_PBoundVsMira quantifies the paper's claim that
// source-only analysis (PBound) misses compiler transformations: on the
// smoothing kernel, PBound overcounts FPI by >70% while the binary-aware
// model is exact.
func BenchmarkAblation_PBoundVsMira(b *testing.B) {
	rows, err := experiments.Ablation(bctx(), benchEng, []int64{1024, 4096, 16384})
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("ablation", tablesText(experiments.AblationTable(rows)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(bctx(), benchEng, []int64{1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].PBoundErrPct, "pbound-err-%")
	b.ReportMetric(rows[len(rows)-1].MiraErrPct, "mira-err-%")
}

// BenchmarkFig5_PythonModelGeneration times end-to-end model generation
// for the paper's Fig. 5 class example, including Python emission.
func BenchmarkFig5_PythonModelGeneration(b *testing.B) {
	res, err := mira.Analyze("fig5.c", benchprogs.Fig5, mira.Options{})
	if err != nil {
		b.Fatal(err)
	}
	py := res.PythonModel()
	printArtifact("fig5", "Fig. 5 generated model (first lines):\n"+firstLines(py, 14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mira.Analyze("fig5.c", benchprogs.Fig5, mira.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.PythonModel()
	}
}

// BenchmarkStaticVsDynamicCost quantifies the paper's core pitch: the
// model evaluates in O(1) while measurement scales with the run. The
// custom metric reports the dynamic/static cost ratio at STREAM n=1M.
func BenchmarkStaticVsDynamicCost(b *testing.B) {
	n := int64(1_000_000)
	t0 := time.Now()
	if _, err := experiments.StreamDynamicFPI(bctx(), benchEng, n); err != nil {
		b.Fatal(err)
	}
	dynDur := time.Since(t0)
	t0 = time.Now()
	const staticReps = 100
	for i := 0; i < staticReps; i++ {
		if _, err := experiments.StreamStaticFPI(bctx(), benchEng, n); err != nil {
			b.Fatal(err)
		}
	}
	staticDur := time.Since(t0) / staticReps
	ratio := float64(dynDur) / float64(staticDur)
	printArtifact("cost", fmt.Sprintf(
		"Static-vs-dynamic cost at STREAM n=1M: dynamic %v/run, static %v/eval (ratio %.0fx)",
		dynDur, staticDur, ratio))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StreamStaticFPI(bctx(), benchEng, n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ratio, "dyn/static-x")
}

// BenchmarkEngineEval_ColdVsWarm quantifies the engine's memoized
// (function, env) evaluation layer on the hot path of the experiment
// suite: repeated queries of cg_solve's model at one size point. "cold"
// walks the model's call tree and polyhedral multiplicities every
// iteration (the raw pipeline); "warm" is the engine's memo hit.
func BenchmarkEngineEval_ColdVsWarm(b *testing.B) {
	a, err := experiments.MiniFEPipeline(bctx(), benchEng)
	if err != nil {
		b.Fatal(err)
	}
	s := experiments.MiniFESizes{NX: 30, NY: 30, NZ: 30, MaxIter: 20, NnzRowAnnotation: 25}
	env := s.MiniFEEnv()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Pipeline.StaticMetrics("cg_solve", env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := a.StaticMetrics("cg_solve", env); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.StaticMetrics("cg_solve", env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// engineBatchJobs builds a batch of distinct programs: the four real
// workloads plus padded variants that force distinct content hashes, so
// every job costs a full parse-compile-decode pipeline on a cold cache.
func engineBatchJobs() []engine.Job {
	base := []engine.Job{
		{Name: "stream.c", Source: benchprogs.Stream},
		{Name: "dgemm.c", Source: benchprogs.Dgemm},
		{Name: "ablation.c", Source: benchprogs.Ablation},
		{Name: "fig5.c", Source: benchprogs.Fig5},
	}
	jobs := make([]engine.Job, 0, 3*len(base))
	for v := 0; v < 3; v++ {
		for _, j := range base {
			jobs = append(jobs, engine.Job{
				Name:   fmt.Sprintf("v%d-%s", v, j.Name),
				Source: fmt.Sprintf("%s\nint pad_variant_%d() { return %d; }\n", j.Source, v, v),
			})
		}
	}
	return jobs
}

// BenchmarkEngineBatch_SerialVsParallel measures the worker-pool batch
// API end to end on a cold cache: one worker (the old serial loop) vs
// GOMAXPROCS workers, plus the warm-cache path where every job is a
// content-hash hit.
func BenchmarkEngineBatch_SerialVsParallel(b *testing.B) {
	jobs := engineBatchJobs()
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.Options{Workers: workers})
			if err := engine.Errors(e.AnalyzeAll(context.Background(), jobs)); err != nil {
				b.Fatal(err)
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // still exercises the pool shape on small machines
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
		run(b, workers)
	})
	b.Run("warm-cache", func(b *testing.B) {
		e := engine.New(engine.Options{})
		if err := engine.Errors(e.AnalyzeAll(context.Background(), jobs)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := engine.Errors(e.AnalyzeAll(context.Background(), jobs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sweepGridSizes builds the Fig. 7-style 10k-point size grid: STREAM
// array lengths from 1k upward, the x-axis of the paper's validation
// curves at sweep density.
func sweepGridSizes(n int) []int64 {
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = int64(1000 + 997*i)
	}
	return sizes
}

// BenchmarkSweep_CompiledVsTreeWalk is the tentpole measurement: a
// 10k-point Fig. 7-style STREAM size sweep, evaluated (a) the old way —
// one full model tree walk per point — and (b) through the compiled
// sweep engine, which partially evaluates the call tree once and then
// does a flat expression evaluation per point. Both sides run on ONE
// worker, so the speedup-x metric isolates the compilation win — the
// worker pool's fan-out (measured separately below) multiplies on top.
// The acceptance bar is 5x.
func BenchmarkSweep_CompiledVsTreeWalk(b *testing.B) {
	serial := engine.New(engine.Options{Workers: 1})
	a, err := serial.AnalyzeCtx(context.Background(), "stream.c", benchprogs.Stream)
	if err != nil {
		b.Fatal(err)
	}
	sizes := sweepGridSizes(10_000)
	spec := engine.SweepSpec{
		Fn:   "stream",
		Kind: engine.KindStatic,
		Axes: []engine.SweepAxis{{Name: "n", Values: sizes}},
	}

	// One checked pass both ways to prime the compilation cache, then
	// separately timed steady-state passes for the speedup artifact.
	walkOnce := func() {
		for _, n := range sizes {
			if _, err := a.Pipeline.StaticMetrics("stream", expr.EnvFromInts(map[string]int64{"n": n})); err != nil {
				b.Fatal(err)
			}
		}
	}
	sweepOnce := func(a *engine.Analysis) *engine.SweepResult {
		res, err := a.Sweep(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if errs := res.Errs(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		return res
	}
	// Priming pass: caches the one-time symbolic compilation and feeds
	// the correctness check below.
	walkOnce()
	res := sweepOnce(a)
	// The two paths must agree point for point before speed means anything.
	for i, n := range sizes[:100] {
		want, err := a.Pipeline.StaticMetrics("stream", expr.EnvFromInts(map[string]int64{"n": n}))
		if err != nil {
			b.Fatal(err)
		}
		if *res.Points[i].Metrics != want {
			b.Fatalf("n=%d: sweep %+v != tree walk %+v", n, *res.Points[i].Metrics, want)
		}
	}
	// Steady-state timing, after priming: the speedup must compare the
	// per-pass costs a real sweep user sees, not fold the one-time
	// symbolic compile of the first pass into the ratio. (Measured cold,
	// the headline number swings several x with harness noise while the
	// per-pass ratio stays put.)
	t0 := time.Now()
	walkOnce()
	walkDur := time.Since(t0)
	t0 = time.Now()
	sweepOnce(a)
	sweepDur := time.Since(t0)
	speedup := float64(walkDur) / float64(sweepDur)
	printArtifact("sweep", fmt.Sprintf(
		"Sweep engine at 10k-point STREAM grid, 1 worker: tree walk %v, compiled sweep %v (%.0fx)",
		walkDur, sweepDur, speedup))

	b.Run("treewalk-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			walkOnce()
		}
	})
	b.Run("compiled-sweep-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweepOnce(a)
		}
		b.ReportMetric(speedup, "speedup-x")
	})
	b.Run("compiled-sweep-10k-pool", func(b *testing.B) {
		pool := engine.New(engine.Options{})
		pa, err := pool.AnalyzeCtx(context.Background(), "stream.c", benchprogs.Stream)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sweepOnce(pa)
		}
	})
}

// BenchmarkSweep_CompileOnce isolates the one-time symbolic compilation
// cost a sweep amortizes (miniFE's cg_solve, the deepest call tree in
// the suite).
func BenchmarkSweep_CompileOnce(b *testing.B) {
	a, err := experiments.MiniFEPipeline(bctx(), benchEng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Model.Compile("cg_solve"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalEdit measures the function-granular incremental
// path: edit ONE function of miniFE (the acceptance workload — classes,
// annotations, the deepest call tree in the suite) and re-analyze
// through a warm engine on 1 worker. Every iteration mutates a distinct
// statement inside `minife` only, so the engine recompiles and
// re-models exactly that function and serves the other five (plus the
// extern) from the function memo. The acceptance bar is 5x over a cold
// analysis of the same mutated source.
func BenchmarkIncrementalEdit(b *testing.B) {
	const marker = "return cg_solve(n, A, b, x, r, p, Ap, max_iter);"
	if strings.Count(benchprogs.MiniFE, marker) != 1 {
		b.Fatalf("mutation marker not unique in benchprogs.MiniFE")
	}
	// The mutation rides on the marker's own line, so no other
	// function's positions move — position-sensitive function keys for
	// everything but `minife` stay identical.
	mutate := func(i int) string {
		return strings.Replace(benchprogs.MiniFE, marker,
			fmt.Sprintf("i = %d; %s", i, marker), 1)
	}
	coldOnce := func(i int) time.Duration {
		e := engine.New(engine.Options{Workers: 1})
		t0 := time.Now()
		if _, err := e.AnalyzeCtx(context.Background(), "minife.c", mutate(i)); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	editOnce := func(e *engine.Engine, i int) time.Duration {
		t0 := time.Now()
		a, err := e.AnalyzeCtx(context.Background(), "minife.c", mutate(i))
		if err != nil {
			b.Fatal(err)
		}
		d := time.Since(t0)
		delta := a.Delta()
		if delta == nil || len(delta.Compiled) != 1 || delta.Compiled[0] != "minife" {
			b.Fatalf("expected exactly [minife] recompiled, got %+v", delta)
		}
		return d
	}

	// Best-of-three timed passes each way for the printed artifact and
	// the speedup-x metric (the sub-benchmarks below record the ns/op);
	// min is the standard one-shot noise reducer.
	warm := engine.New(engine.Options{Workers: 1})
	if _, err := warm.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE); err != nil {
		b.Fatal(err)
	}
	coldDur, editDur := time.Duration(1<<62), time.Duration(1<<62)
	for i := 1; i <= 3; i++ {
		if d := coldOnce(-i); d < coldDur {
			coldDur = d
		}
		if d := editOnce(warm, -3-i); d < editDur {
			editDur = d
		}
	}
	speedup := float64(coldDur) / float64(editDur)
	printArtifact("incremental", fmt.Sprintf(
		"Incremental re-analysis after a one-function edit of miniFE, 1 worker: cold %v, incremental %v (%.1fx)",
		coldDur, editDur, speedup))

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldOnce(i)
		}
	})
	b.Run("edit", func(b *testing.B) {
		e := engine.New(engine.Options{Workers: 1})
		if _, err := e.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			editOnce(e, i)
		}
		b.ReportMetric(speedup, "speedup-x")
	})
}

// BenchmarkPublicEngineAPI exercises the mira.Engine wrapper the way an
// external consumer would: batch-analyze, then query cached metrics.
func BenchmarkPublicEngineAPI(b *testing.B) {
	e, err := mira.NewEngine(0, mira.Options{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.AnalyzeCtx(context.Background(), "stream.c", benchprogs.Stream)
	if err != nil {
		b.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1_000_000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Static("stream", env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReport_SuitePath measures the report subsystem end to end:
// a declarative grid suite (1k-point STREAM static sweep plus a
// roofline section) compiled to engine sweeps, assembled into a typed
// report, and JSON-encoded — the full POST /report service path minus
// HTTP. The whole-report row throughput is the custom metric.
func BenchmarkReport_SuitePath(b *testing.B) {
	e, err := mira.NewEngine(0, mira.Options{})
	if err != nil {
		b.Fatal(err)
	}
	suite := mira.Suite{
		Name: "bench_report",
		Sections: []mira.Section{
			mira.GridSection{
				Name:     "stream_scaling",
				Workload: mira.WorkloadRef{Name: "stream"},
				Fn:       "stream",
				Axes:     []mira.SweepAxis{{Name: "n", Values: sweepGridSizes(1000)}},
			},
			mira.GridSection{
				Name:     "stream_roofline",
				Workload: mira.WorkloadRef{Name: "stream"},
				Fn:       "stream",
				Kind:     mira.KindRoofline,
				Points:   []map[string]int64{{"n": 1_000_000}},
				Archs:    []string{"arya", "frankenstein"},
			},
		},
	}
	// One checked pass: every row present, no per-cell failures.
	rep, err := e.Report(context.Background(), suite)
	if err != nil {
		b.Fatal(err)
	}
	if rep.Rows() != 1002 {
		b.Fatalf("rows = %d, want 1002", rep.Rows())
	}
	if errs := rep.Errs(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Report(context.Background(), suite)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.EncodeJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Rows()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkCrossArchSweep measures the cross-architecture ranking path:
// one DGEMM point rooflined across every registered machine description
// and ranked by attainable GFLOP/s (the CompareSection behind the
// multiarch suite and `-arch-dir` deployments). After the first pass
// every (fn, env, arch-content-key) cell is memoized, so the steady
// state tracks the arch-keyed memo layer plus ranking and encoding.
func BenchmarkCrossArchSweep(b *testing.B) {
	e, err := mira.NewEngine(0, mira.Options{})
	if err != nil {
		b.Fatal(err)
	}
	suite := mira.Suite{
		Name: "bench_multiarch",
		Sections: []mira.Section{
			mira.CompareSection{
				Workload: mira.WorkloadRef{Name: "dgemm"},
				Fn:       "dgemm_bench",
				Env:      map[string]int64{"n": 64, "nrep": 2},
			},
		},
	}
	// One checked pass: a row per registry entry, none failed.
	rep, err := e.Report(context.Background(), suite)
	if err != nil {
		b.Fatal(err)
	}
	nArchs := arch.NewRegistry().Len()
	if rep.Rows() != nArchs {
		b.Fatalf("rows = %d, want %d", rep.Rows(), nArchs)
	}
	if errs := rep.Errs(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Report(context.Background(), suite)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.EncodeJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nArchs*b.N)/b.Elapsed().Seconds(), "archs/s")
}

func firstLines(s string, n int) string {
	out := ""
	count := 0
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			count++
			if count >= n {
				break
			}
		}
	}
	return out
}
