package mira

import (
	"context"
	"fmt"

	"mira/internal/engine"
	"mira/internal/pbound"
	"mira/internal/roofline"
)

// This file is the v2 query surface: one batched, cancellable request
// shape spanning every metric kind the paper's evaluation reports. A
// [Query] names a (function, env, kind) cell; [Result.Run] evaluates a
// whole matrix of them in one pass with shared (function, env)
// memoization and per-query errors; [Engine.RunAll] does the same across
// many programs at once through the engine's worker pool and content-
// hash cache. The legacy per-metric helpers (Static, CategoryCounts, …)
// are thin wrappers over this core.

// QueryKind selects what a Query evaluates.
type QueryKind = engine.QueryKind

// The query kinds. KindRoofline and KindPBound promote the Sec. IV-D2
// roofline assessment and the PBound source-only baseline — previously
// internal-only — to the public surface.
const (
	// KindStatic evaluates fn's inclusive static metrics (Static).
	KindStatic = engine.KindStatic
	// KindStaticExclusive evaluates body-only metrics (StaticExclusive).
	KindStaticExclusive = engine.KindStaticExclusive
	// KindCategories buckets counts into the paper's Table II rows
	// (CategoryCounts).
	KindCategories = engine.KindCategories
	// KindFineCategories buckets counts into the architecture
	// description's fine-grained categories (FineCategoryCounts).
	KindFineCategories = engine.KindFineCategories
	// KindRoofline computes arithmetic intensity and the roofline
	// attainable-performance bound.
	KindRoofline = engine.KindRoofline
	// KindPBound evaluates the PBound source-only FP/load/store bounds.
	KindPBound = engine.KindPBound
)

// ParseQueryKind maps a wire name ("static", "static_exclusive",
// "categories", "fine_categories", "roofline", "pbound") to its kind.
func ParseQueryKind(s string) (QueryKind, error) { return engine.ParseKind(s) }

// Query is one cell of a query matrix: evaluate Kind for function Fn
// under Env. The optional Arch field names an architecture description
// overriding the analysis's own for fine-category and roofline queries.
type Query = engine.Query

// QueryResult is one evaluated cell with a per-query error.
type QueryResult = engine.QueryResult

// Roofline is a roofline assessment: instruction-based and byte-based
// arithmetic intensity, the machine's ridge point, and the attainable
// performance bound (paper Sec. IV-D2).
type Roofline = roofline.Analysis

// PBoundCounts is an evaluated PBound source-only estimate: upper bounds
// on FP operations, loads, and stores (the paper's Related Work
// baseline).
type PBoundCounts = pbound.Counts

// Run evaluates an entire query matrix in one pass: every cell shares
// the Result's (function, env) memo, errors are per-query, and a
// cancelled ctx makes the remaining cells return ctx.Err() immediately.
func (r *Result) Run(ctx context.Context, queries []Query) []QueryResult {
	return r.a.Run(ctx, queries)
}

// Roofline computes fn's roofline assessment on the Result's
// architecture description — the batched KindRoofline query, unbatched.
func (r *Result) Roofline(fn string, env Env) (*Roofline, error) {
	res := r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindRoofline})
	return res.Roofline, res.Err
}

// PBound evaluates fn's PBound source-only bounds — the batched
// KindPBound query, unbatched.
func (r *Result) PBound(fn string, env Env) (*PBoundCounts, error) {
	res := r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindPBound})
	return res.PBound, res.Err
}

// QueryJob is one cell of an engine-level query matrix: a program
// (inline Source, or the Key of an already-analyzed one) plus the query
// to evaluate against it.
type QueryJob = engine.QueryJob

// QueryJobResult pairs a job with its evaluated cell.
type QueryJobResult = engine.QueryJobResult

// RunAll evaluates a query matrix across programs: jobs fan out over the
// engine's worker pool, jobs naming the same source share one compile,
// jobs hitting the same (function, env) point share the evaluation memo,
// and every failure — analysis, evaluation, or cancellation — is
// per-job.
func (e *Engine) RunAll(ctx context.Context, jobs []QueryJob) []QueryJobResult {
	return e.e.RunAll(ctx, jobs)
}

// Key returns the engine's content-hash key for source — the handle a
// QueryJob (or a mira-serve client) can use to reference an analyzed
// program without resending its text.
func (e *Engine) Key(source string) string { return e.e.Key(source) }

// onlyMetrics unwraps a metrics-kind result for the legacy helpers.
func onlyMetrics(res QueryResult) (Metrics, error) {
	if res.Err != nil {
		return Metrics{}, res.Err
	}
	if res.Metrics == nil {
		return Metrics{}, fmt.Errorf("mira: query kind %s carries no metrics", res.Query.Kind)
	}
	return *res.Metrics, nil
}
