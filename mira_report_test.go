package mira_test

import (
	"context"
	"strings"
	"testing"

	"mira"
)

// TestPublicReportAPI drives the report surface the way an external
// consumer would: embedded workload registry, a declarative suite over
// a registry workload plus inline source, every encoder.
func TestPublicReportAPI(t *testing.T) {
	e, err := mira.NewEngine(2, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ws := mira.Workloads()
	if len(ws) < 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if _, ok := mira.LookupWorkload("stream"); !ok {
		t.Fatal("no stream workload")
	}

	suite := mira.Suite{
		Name:  "public",
		Title: "public API suite",
		Sections: []mira.Section{
			mira.GridSection{
				Name:     "stream_fpi",
				Caption:  "STREAM FPI",
				Workload: mira.WorkloadRef{Name: "stream"},
				Fn:       "stream",
				Axes:     []mira.SweepAxis{{Name: "n", Values: []int64{100, 1000}}},
			},
			mira.GridSection{
				Name:     "inline_pbound",
				Workload: mira.WorkloadRef{File: "k.c", Source: "double k(double *x, int n) { double s; int i; s = 0.0; for (i = 0; i < n; i++) { s = s + x[i]; } return s; }"},
				Fn:       "k",
				Kind:     mira.KindPBound,
				Points:   []map[string]int64{{"n": 50}},
			},
		},
	}
	rep, err := e.Report(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite != "public" || len(rep.Tables) != 2 || rep.Rows() != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	if errs := rep.Errs(); errs != nil {
		t.Fatal(errs)
	}
	// stream FPI = 40n.
	text := rep.Text()
	for _, want := range []string{"STREAM FPI", "40000", "flops loads stores"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	for _, f := range []mira.ReportFormat{mira.FormatTable, mira.FormatJSON, mira.FormatCSV, mira.FormatMarkdown} {
		var sb strings.Builder
		if err := rep.Encode(&sb, f); err != nil {
			t.Errorf("encode %v: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("encode %v: empty", f)
		}
	}
	if f, err := mira.ParseReportFormat("csv"); err != nil || f != mira.FormatCSV {
		t.Errorf("ParseReportFormat: %v %v", f, err)
	}

	// A runner built once serves many suites against the same caches.
	runner := e.NewReportRunner()
	rep2, err := runner.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Text() != text {
		t.Error("runner-produced report differs")
	}
}
