package mira_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"mira"
	"mira/internal/benchprogs"
)

// goldenPrograms is every embedded benchprogs workload.
var goldenPrograms = map[string]string{
	"stream":   benchprogs.Stream,
	"dgemm":    benchprogs.Dgemm,
	"minife":   benchprogs.MiniFE,
	"fig5":     benchprogs.Fig5,
	"listing1": benchprogs.Listing1,
	"listing2": benchprogs.Listing2,
	"listing4": benchprogs.Listing4,
	"listing5": benchprogs.Listing5,
	"ablation": benchprogs.Ablation,
}

// mustJSON is the byte-for-byte serialization the golden comparison
// uses; encoding/json sorts map keys, so equal values marshal equally.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestRunGoldenEquivalence proves the batched query API byte-equals the
// legacy per-method calls — values and errors both — for every modeled
// function of every benchprogs program.
func TestRunGoldenEquivalence(t *testing.T) {
	for name, src := range goldenPrograms {
		res, err := mira.Analyze(name+".c", src, mira.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		model := res.Pipeline().Model
		for _, fn := range model.Order {
			f := model.Funcs[fn]
			if f.Extern {
				continue
			}
			// Bind every parameter the model needs to a small size; the
			// comparison only requires both paths to see the same env.
			args := map[string]int64{}
			for _, p := range f.FreeParams() {
				args[p] = 4
			}
			env := mira.IntArgs(args)

			legacyMet, legacyMetErr := res.Static(fn, env)
			legacyExcl, legacyExclErr := res.StaticExclusive(fn, env)
			legacyCats, legacyCatsErr := res.CategoryCounts(fn, env)
			legacyFine, legacyFineErr := res.FineCategoryCounts(fn, env)

			batch := res.Run(context.Background(), []mira.Query{
				{Fn: fn, Env: env, Kind: mira.KindStatic},
				{Fn: fn, Env: env, Kind: mira.KindStaticExclusive},
				{Fn: fn, Env: env, Kind: mira.KindCategories},
				{Fn: fn, Env: env, Kind: mira.KindFineCategories},
			})

			type cell struct {
				legacy    any
				legacyErr error
				batched   any
				batchErr  error
			}
			cells := map[string]cell{
				"static":           {legacyMet, legacyMetErr, batch[0].Metrics, batch[0].Err},
				"static_exclusive": {legacyExcl, legacyExclErr, batch[1].Metrics, batch[1].Err},
				"categories":       {legacyCats, legacyCatsErr, batch[2].Categories, batch[2].Err},
				"fine_categories":  {legacyFine, legacyFineErr, batch[3].Categories, batch[3].Err},
			}
			for kind, c := range cells {
				if errString(c.legacyErr) != errString(c.batchErr) {
					t.Errorf("%s/%s %s: error mismatch: legacy=%q batched=%q",
						name, fn, kind, errString(c.legacyErr), errString(c.batchErr))
					continue
				}
				if c.legacyErr != nil {
					continue
				}
				if lb, bb := mustJSON(t, c.legacy), mustJSON(t, c.batched); !bytes.Equal(lb, bb) {
					t.Errorf("%s/%s %s: batched result diverges:\nlegacy:  %s\nbatched: %s",
						name, fn, kind, lb, bb)
				}
			}
		}
	}
}

// TestRunCancellation: a cancelled context turns every unevaluated cell
// into a prompt per-query context.Canceled.
func TestRunCancellation(t *testing.T) {
	res, err := mira.Analyze("stream.c", benchprogs.Stream, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var queries []mira.Query
	for n := int64(1); n <= 20; n++ {
		queries = append(queries, mira.Query{
			Fn: "stream", Env: mira.IntArgs(map[string]int64{"n": n}), Kind: mira.KindStatic,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range res.Run(ctx, queries) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("query %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	// The same batch with a live context evaluates normally.
	for i, r := range res.Run(context.Background(), queries) {
		if r.Err != nil {
			t.Errorf("query %d after recovery: %v", i, r.Err)
		}
	}
}

// TestPromotedKinds: roofline and pbound are reachable from the public
// surface, both batched and via the convenience helpers.
func TestPromotedKinds(t *testing.T) {
	res, err := mira.Analyze("stream.c", benchprogs.Stream, mira.Options{Arch: "arya"})
	if err != nil {
		t.Fatal(err)
	}
	env := mira.IntArgs(map[string]int64{"n": 1000})
	roof, err := res.Roofline("stream", env)
	if err != nil {
		t.Fatal(err)
	}
	if roof.Function != "stream" || roof.AttainableGFlops <= 0 {
		t.Errorf("roofline: %+v", roof)
	}
	pb, err := res.PBound("stream", env)
	if err != nil {
		t.Fatal(err)
	}
	// STREAM performs 4n FP source ops per NTIMES pass; the bound must
	// at least cover the measured 40n FPI.
	if pb.Flops < 40*1000 {
		t.Errorf("pbound flops = %d, want >= 40000", pb.Flops)
	}
	if pb.Loads <= 0 || pb.Stores <= 0 {
		t.Errorf("pbound loads/stores: %+v", pb)
	}
	batch := res.Run(context.Background(), []mira.Query{
		{Fn: "stream", Env: env, Kind: mira.KindRoofline},
		{Fn: "stream", Env: env, Kind: mira.KindPBound},
	})
	if batch[0].Err != nil || *batch[0].Roofline != *roof {
		t.Errorf("batched roofline diverges: %+v vs %+v (%v)", batch[0].Roofline, roof, batch[0].Err)
	}
	if batch[1].Err != nil || *batch[1].PBound != *pb {
		t.Errorf("batched pbound diverges: %+v vs %+v (%v)", batch[1].PBound, pb, batch[1].Err)
	}
}
