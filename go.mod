module mira

go 1.24
