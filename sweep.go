package mira

import (
	"context"

	"mira/internal/engine"
	"mira/internal/model"
)

// This file is the public sweep surface: mass parameter studies over
// one analyzed program. [Result.Sweep] compiles the queried function's
// model to closed form once (partial evaluation of the whole call tree
// — see [Result.Compile]) and then evaluates every grid point as a flat
// expression evaluation, fanned out over the engine's worker pool. A
// Fig. 7-style 10k-point size×architecture grid costs one compilation
// plus 10k near-arithmetic evaluations instead of 10k full model
// walks — the curves the paper's evaluation section plots, and the
// per-size metric vectors time-series clustering consumers feed on,
// at interactive cost.

// SweepSpec describes a parameter sweep: evaluate Kind for Fn at every
// point of a grid. The grid is the cross product of Axes or the
// explicit Points list, each point completed by the fixed Base
// bindings; Archs multiplies the grid across architecture descriptions
// for roofline and fine-category sweeps. A grid may expand to at most
// [MaxSweepPoints] cells.
type SweepSpec = engine.SweepSpec

// SweepAxis is one sweep dimension: a parameter name and its values.
type SweepAxis = engine.SweepAxis

// SweepPoint is one evaluated grid cell, with a per-point error: an
// overflowing size or a cancelled context fails the cell, not the
// sweep.
type SweepPoint = engine.SweepPoint

// SweepResult is a completed sweep in grid order (axes vary rightmost-
// fastest, architectures outermost).
type SweepResult = engine.SweepResult

// MaxSweepPoints bounds one sweep's expanded grid.
const MaxSweepPoints = engine.MaxSweepPoints

// CompiledModel is a function's call tree partially evaluated to
// closed form: Eval is a flat expression evaluation with no recursion
// and no environment copying, byte-identical to the tree-walk Static
// evaluation — including the typed [ErrOverflow] on counts that leave
// int64. Safe for concurrent use.
type CompiledModel = model.CompiledModel

// ErrOverflow is the typed error every evaluation path returns when an
// instruction count or multiplicity no longer fits in int64 (check
// with errors.Is). Sweeps at dgemm-like n^3 scales cross this boundary
// long before the model itself breaks down; the error is per-point, so
// the rest of the sweep still evaluates.
var ErrOverflow = model.ErrOverflow

// ErrSweepTooLarge is the typed error Sweep returns when a grid would
// expand past MaxSweepPoints (check with errors.Is); split the study.
var ErrSweepTooLarge = engine.ErrSweepTooLarge

// Sweep evaluates spec's grid against the analyzed program. The error
// return covers the spec itself (unknown function or kind, bad grid,
// too many points); per-point failures — including cancellation —
// land in each SweepPoint.Err.
func (r *Result) Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return r.a.Sweep(ctx, spec)
}

// Compile partially evaluates fn's call tree to closed form, cached
// per analyzed content: callees are inlined, constant sites folded,
// and each metric series collapsed over the function's free
// parameters. Use the result's Eval for one-off points, or
// [Result.Sweep] to evaluate grids with fan-out, limits, and per-point
// errors.
func (r *Result) Compile(fn string) (*CompiledModel, error) {
	return r.a.Compiled(fn, false)
}
