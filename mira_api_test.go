package mira_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mira"
	"mira/internal/vm"
)

const apiSrc = `
double scale(double *x, int n, double a) {
	int i;
	for (i = 0; i < n; i++) {
		x[i] = a * x[i];
	}
	return x[0];
}`

func TestPublicAPIRoundTrip(t *testing.T) {
	res, err := mira.Analyze("s.c", apiSrc, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}
	met, err := res.Static("scale", mira.IntArgs(map[string]int64{"n": 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if met.FPI() != 1000 {
		t.Errorf("FPI = %d", met.FPI())
	}
	excl, err := res.StaticExclusive("scale", mira.IntArgs(map[string]int64{"n": 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if excl.FPI() != met.FPI() {
		t.Errorf("leaf function: exclusive %d != inclusive %d", excl.FPI(), met.FPI())
	}

	m := res.Machine()
	base := m.Alloc(1000)
	for i := 0; i < 1000; i++ {
		m.SetF(base+uint64(i), 2.0)
	}
	if _, err := m.Run("scale", vm.Int(int64(base)), vm.Int(1000), vm.Float(3.0)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.FuncStatsByName("scale")
	if int64(st.FPIInclusive()) != met.FPI() {
		t.Errorf("validation failed: %d != %d", st.FPIInclusive(), met.FPI())
	}
}

func TestPublicAPICategoriesAndArtifacts(t *testing.T) {
	res, err := mira.Analyze("s.c", apiSrc, mira.Options{Arch: "frankenstein"})
	if err != nil {
		t.Fatal(err)
	}
	env := mira.IntArgs(map[string]int64{"n": 8})
	cats, err := res.CategoryCounts("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	if cats["SSE2 packed arithmetic instruction"] != 8 {
		t.Errorf("cats = %v", cats)
	}
	fine, err := res.FineCategoryCounts("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	if fine["System: 64-bit mode (movsxd)"] == 0 {
		t.Errorf("fine = %v", fine)
	}
	if !strings.Contains(res.PythonModel(), "def scale_3(") {
		t.Error("python model missing")
	}
	if !strings.Contains(res.SourceDot(), "digraph") {
		t.Error("dot missing")
	}
	asm, err := res.Disassembly("scale")
	if err != nil || !strings.Contains(asm, "mulsd") {
		t.Errorf("asm: %v", err)
	}
	if _, err := res.BinaryDot("scale"); err != nil {
		t.Error(err)
	}
}

func TestPublicAPIEngine(t *testing.T) {
	e, err := mira.NewEngine(4, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := e.AnalyzeAll([]mira.BatchJob{
		{Name: "a.c", Source: apiSrc},
		{Name: "b.c", Source: apiSrc}, // identical content: must share one compile
		{Name: "bad.c", Source: "int f( {"},
	})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("good jobs failed: %v, %v", results[0].Err, results[1].Err)
	}
	if results[2].Err == nil {
		t.Error("bad job succeeded")
	}
	if hits, misses := e.CacheStats(); hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	env := mira.IntArgs(map[string]int64{"n": 1000})
	want, err := mira.Analyze("a.c", apiSrc, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wmet, err := want.Static("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[:2] {
		met, err := r.Result.Static("scale", env)
		if err != nil {
			t.Fatal(err)
		}
		// Second identical query per Result hits the memo.
		again, err := r.Result.Static("scale", env)
		if err != nil {
			t.Fatal(err)
		}
		if met.FPI() != wmet.FPI() || again.FPI() != wmet.FPI() {
			t.Errorf("engine metrics diverge from direct analysis: %d/%d vs %d",
				met.FPI(), again.FPI(), wmet.FPI())
		}
	}
	if _, err := mira.NewEngine(0, mira.Options{Arch: "pdp11"}); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestPublicAPIOptions(t *testing.T) {
	if _, err := mira.Analyze("s.c", apiSrc, mira.Options{Arch: "pdp11"}); err == nil {
		t.Error("unknown arch accepted")
	}
	// Lenient mode downgrades data-dependent branches.
	src := `
double f(double *x, int n) {
	int i; double s;
	s = 0.0;
	for (i = 0; i < n; i++) {
		if (x[i] > 0.0) { s = s + 1.0; }
	}
	return s;
}`
	if _, err := mira.Analyze("b.c", src, mira.Options{}); err == nil {
		t.Error("strict mode accepted a data-dependent branch")
	}
	res, err := mira.Analyze("b.c", src, mira.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings()) == 0 {
		t.Error("no warnings in lenient mode")
	}
	// Unoptimized compilation changes the binary.
	resO0, err := mira.Analyze("s.c", apiSrc, mira.Options{Unoptimized: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Static("f", mira.IntArgs(map[string]int64{"n": 4}))
	_ = a
	m0, err := resO0.Static("scale", mira.IntArgs(map[string]int64{"n": 4}))
	if err != nil {
		t.Fatal(err)
	}
	if m0.FPI() != 4 {
		t.Errorf("unoptimized FPI = %d", m0.FPI())
	}
}

// TestPublicAPISweep covers the public sweep surface: Result.Sweep
// evaluates a grid through the compiled model, Result.Compile exposes
// the closed form directly, and the overflow contract is a typed,
// per-point mira.ErrOverflow.
func TestPublicAPISweep(t *testing.T) {
	res, err := mira.Analyze("s.c", apiSrc, mira.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := res.Sweep(context.Background(), mira.SweepSpec{
		Fn:   "scale",
		Kind: mira.KindStatic,
		Axes: []mira.SweepAxis{{Name: "n", Values: []int64{10, 100, 1000, 4_000_000_000_000_000_000}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 4 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	for i, n := range []int64{10, 100, 1000} {
		p := sw.Points[i]
		if p.Err != nil {
			t.Fatalf("n=%d: %v", n, p.Err)
		}
		want, err := res.Static("scale", mira.IntArgs(map[string]int64{"n": n}))
		if err != nil {
			t.Fatal(err)
		}
		if *p.Metrics != want {
			t.Errorf("n=%d: sweep %+v != Static %+v", n, *p.Metrics, want)
		}
	}
	if !errors.Is(sw.Points[3].Err, mira.ErrOverflow) {
		t.Errorf("huge point err = %v, want mira.ErrOverflow", sw.Points[3].Err)
	}

	cm, err := res.Compile("scale")
	if err != nil {
		t.Fatal(err)
	}
	met, err := cm.Eval(mira.IntArgs(map[string]int64{"n": 77}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Static("scale", mira.IntArgs(map[string]int64{"n": 77}))
	if err != nil {
		t.Fatal(err)
	}
	if met != want {
		t.Errorf("compiled %+v != Static %+v", met, want)
	}
	if ps := cm.Params(); len(ps) != 1 || ps[0] != "n" {
		t.Errorf("params = %v", ps)
	}
}
