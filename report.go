package mira

import (
	"context"

	"mira/internal/report"
)

// This file is the public report surface: the paper's tables and
// figures — and any user-defined scenario study — as typed, encodable
// data artifacts. A [Suite] declares sections (workload × scenario grid
// × query kind); [Engine.Report] runs it against the engine's caches
// and returns a [Report] whose tables carry schema'd columns, typed
// cells, per-row errors, and deterministic ordering; the Report encodes
// as JSON, CSV, the paper's ASCII table style, or Markdown. The same
// Suite values power mira-bench (-format) and mira-serve
// (POST /report), so a new scenario is a data file, not a new Go
// function.

// Suite declaratively describes a report: named sections over workloads
// × scenario grids × query kinds.
type Suite = report.Suite

// SuiteSpec is the wire (JSON) form of a declarative suite — what
// POST /report accepts inline; compile it with SuiteSpec.Suite.
type SuiteSpec = report.SuiteSpec

// Section is one suite entry.
type Section = report.Section

// GridSection is the declarative section: one workload, one function,
// one query kind, a scenario grid — compiled to a single closed-form
// sweep.
type GridSection = report.GridSection

// CompareSection ranks one workload function at one evaluation point
// across N architecture descriptions by predicted attainable GFLOP/s —
// empty Archs means every entry in the engine's registry.
type CompareSection = report.CompareSection

// FuncSection is a custom-rows section under a declared column schema.
type FuncSection = report.FuncSection

// SectionFunc adapts a function to a free-form, multi-table section.
type SectionFunc = report.SectionFunc

// ReportRunner executes suites against an injected engine.
type ReportRunner = report.Runner

// WorkloadRef names the program a section runs against: an embedded
// workload by name, an analyzed program by content key, or inline
// source.
type WorkloadRef = report.WorkloadRef

// Workload is one embedded, named evaluation workload.
type Workload = report.Workload

// Report is a completed suite run: typed tables in suite order.
type Report = report.Report

// Table is one report section: caption, column schema, typed rows.
type Table = report.Table

// Column is one schema'd report column.
type Column = report.Column

// Row is one table row with an optional per-row error.
type Row = report.Row

// Value is one typed report cell (string, int, float, or null).
type Value = report.Value

// ReportFormat names a report encoding.
type ReportFormat = report.Format

// The report encodings.
const (
	// FormatTable is the paper's fixed-width ASCII table style.
	FormatTable = report.FormatTable
	// FormatJSON is the structured wire form.
	FormatJSON = report.FormatJSON
	// FormatCSV is one comma-separated block per table.
	FormatCSV = report.FormatCSV
	// FormatMarkdown renders GitHub-style pipe tables.
	FormatMarkdown = report.FormatMarkdown
)

// ParseReportFormat maps a wire name ("table", "json", "csv",
// "markdown") to its encoding.
func ParseReportFormat(s string) (ReportFormat, error) { return report.ParseFormat(s) }

// Workloads lists the embedded workload registry (the paper's
// evaluation programs) in listing order.
func Workloads() []Workload { return report.Workloads() }

// LookupWorkload finds an embedded workload by registry name.
func LookupWorkload(name string) (Workload, bool) { return report.LookupWorkload(name) }

// NewReportRunner builds a suite runner over the engine — use it to run
// many suites, or when a FuncSection needs the runner injected.
func (e *Engine) NewReportRunner() *ReportRunner { return report.NewRunner(e.e) }

// Report runs a suite against the engine: sections compile down to
// batched queries and closed-form sweeps over the engine's caches,
// per-cell failures land in the rows, and cancelling ctx aborts at the
// next section (and fails remaining grid points). The returned Report
// encodes with Encode/EncodeJSON/EncodeCSV/EncodeText/EncodeMarkdown.
func (e *Engine) Report(ctx context.Context, s Suite) (*Report, error) {
	return report.NewRunner(e.e).Run(ctx, s)
}
