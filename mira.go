// Package mira is a framework for static performance analysis, a Go
// reproduction of "Mira: A Framework for Static Performance Analysis"
// (Meng & Norris, IEEE CLUSTER 2017, arXiv:1705.07575).
//
// Mira predicts an application's per-function instruction-category counts
// — down to statement granularity and parameterized by problem size —
// without running it on the target machine. It does so by combining two
// views of the program (paper Fig. 1):
//
//   - the source AST, which preserves loop SCoPs, branch conditions,
//     variable names, and user annotations, and
//   - the compiled binary, disassembled from an object file, which
//     reflects what the optimizer actually emitted,
//
// bridged through a DWARF-style line table and multiplied through a
// polyhedral model of every loop nest and branch constraint.
//
// # Quick start
//
//	res, err := mira.Analyze("kernel.c", src, mira.Options{})
//	if err != nil { ... }
//	met, err := res.Static("kernel", mira.IntArgs(map[string]int64{"n": 1 << 20}))
//	fmt.Println(met.FPI()) // predicted floating-point instructions
//
// The same Result can replay the binary on the built-in virtual machine —
// the reproduction's stand-in for TAU/PAPI measurements — to validate
// predictions:
//
//	m := res.Machine()
//	m.Run("kernel", vm.Int(1<<20))
//
// Everything the paper's evaluation section reports (Tables I–V, Figs.
// 6–7, the arithmetic-intensity prediction) regenerates from
// internal/experiments via `go test -bench` or cmd/mira-bench.
package mira

import (
	"context"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/model"
	"mira/internal/vm"
)

// Options configures analysis.
type Options struct {
	// Unoptimized disables compiler optimizations (constant folding,
	// strength reduction, LICM); used by the PBound ablation.
	Unoptimized bool
	// Lenient downgrades unanalyzable branches to always-taken warnings
	// instead of errors.
	Lenient bool
	// Arch selects the architecture description: a registered name
	// ("arya", "skylake", ...; empty means "generic") or the path of a
	// JSON description file.
	Arch string
}

// Result is an analyzed program: the parametric model plus the compiled
// binary it was derived from. Evaluation queries go through a memoized
// (function, env) layer, so repeating a query costs one map lookup;
// Engine-produced Results additionally share that memo across callers.
type Result struct {
	p *core.Pipeline
	a *engine.Analysis
}

// Metrics is an evaluated instruction-count vector.
type Metrics = model.Metrics

// Env binds model parameters for evaluation.
type Env = expr.Env

// Analyze runs the full static pipeline on MiniC source text.
func Analyze(name, source string, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), name, source, opts)
}

// AnalyzeContext is Analyze honoring cancellation: the pipeline aborts
// at the next stage boundary once ctx is done, returning ctx.Err().
func AnalyzeContext(ctx context.Context, name, source string, opts Options) (*Result, error) {
	a, err := arch.Resolve(opts.Arch)
	if err != nil {
		return nil, err
	}
	p, err := core.AnalyzeContext(ctx, name, source, core.Options{
		DisableOpt: opts.Unoptimized,
		Lenient:    opts.Lenient,
		Arch:       a,
	})
	if err != nil {
		return nil, err
	}
	return &Result{p: p, a: engine.NewAnalysis(p)}, nil
}

// IntArgs builds an evaluation environment from integer parameter values.
func IntArgs(m map[string]int64) Env { return expr.EnvFromInts(m) }

// Static evaluates the model of fn (inclusive of callees) under env.
//
// Deprecated: Static is a one-element KindStatic batch; new code should
// batch queries through [Result.Run], which adds cancellation and
// per-query errors. Retained as a thin wrapper over the same core.
func (r *Result) Static(fn string, env Env) (Metrics, error) {
	return onlyMetrics(r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindStatic}))
}

// StaticExclusive evaluates fn's body-only metrics.
//
// Deprecated: equivalent to a KindStaticExclusive query via [Result.Run].
func (r *Result) StaticExclusive(fn string, env Env) (Metrics, error) {
	return onlyMetrics(r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindStaticExclusive}))
}

// CategoryCounts returns fn's counts bucketed by the paper's Table II
// aggregate categories.
//
// Deprecated: equivalent to a KindCategories query via [Result.Run].
func (r *Result) CategoryCounts(fn string, env Env) (map[string]int64, error) {
	res := r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindCategories})
	return res.Categories, res.Err
}

// FineCategoryCounts buckets fn's counts by the architecture description
// file's fine-grained (64-way) instruction categories.
//
// Deprecated: equivalent to a KindFineCategories query via [Result.Run].
func (r *Result) FineCategoryCounts(fn string, env Env) (map[string]int64, error) {
	res := r.a.RunOne(context.Background(), Query{Fn: fn, Env: env, Kind: KindFineCategories})
	return res.Categories, res.Err
}

// PythonModel emits the generated model as Python source, the artifact
// style shown in the paper's Fig. 5.
func (r *Result) PythonModel() string { return r.p.PythonModel() }

// Machine returns a fresh virtual machine over the compiled binary, for
// dynamic validation runs (the reproduction's TAU/PAPI substitute).
func (r *Result) Machine() *vm.Machine { return r.p.NewMachine() }

// Disassembly returns an objdump-style listing of fn.
func (r *Result) Disassembly(fn string) (string, error) { return r.p.Disassembly(fn) }

// SourceDot renders the source AST as Graphviz dot (paper Fig. 2).
func (r *Result) SourceDot() string { return r.p.SourceDot() }

// BinaryDot renders fn's binary AST as Graphviz dot (paper Fig. 3).
func (r *Result) BinaryDot(fn string) (string, error) { return r.p.BinaryDot(fn) }

// Warnings returns analysis warnings (lenient-mode branch downgrades).
func (r *Result) Warnings() []string { return r.p.Warnings }

// Pipeline exposes the underlying pipeline for advanced use (experiments,
// benches).
func (r *Result) Pipeline() *core.Pipeline { return r.p }

// Delta reports which functions the incremental analysis reused from the
// function memo versus recompiled, in link order. Nil when the Result
// was not produced incrementally — standalone Analyze calls and
// Engine results served from the whole-source cache (where nothing ran
// at all) have no delta.
type Delta = core.Delta

// Delta returns the Result's incremental-analysis delta, if any.
func (r *Result) Delta() *Delta { return r.a.Delta() }

// ---------------------------------------------------------------------------
// Batch analysis service

// Engine is a concurrent, cache-backed analysis service: a worker pool
// with bounded parallelism, a content-hash pipeline cache (identical
// source text compiles at most once, even under concurrent requests),
// and memoized model evaluation on every Result it returns.
type Engine struct {
	e *engine.Engine
}

// NewEngine builds an analysis service. workers bounds concurrent
// pipeline analyses (0 = GOMAXPROCS); opts applies to every job.
func NewEngine(workers int, opts Options) (*Engine, error) {
	a, err := arch.Resolve(opts.Arch)
	if err != nil {
		return nil, err
	}
	return &Engine{e: engine.New(engine.Options{
		Workers: workers,
		Core: core.Options{
			DisableOpt: opts.Unoptimized,
			Lenient:    opts.Lenient,
			Arch:       a,
		},
	})}, nil
}

// Analyze runs the pipeline on one source, served from the content-hash
// cache when the same text was already analyzed.
func (e *Engine) Analyze(name, source string) (*Result, error) {
	return e.AnalyzeCtx(context.Background(), name, source)
}

// AnalyzeCtx is Analyze honoring cancellation at every wait point: the
// singleflight wait on a duplicate in-flight compile, the worker-pool
// queue, and the pipeline's stage boundaries.
func (e *Engine) AnalyzeCtx(ctx context.Context, name, source string) (*Result, error) {
	a, err := e.e.AnalyzeCtx(ctx, name, source)
	if err != nil {
		return nil, err
	}
	return &Result{p: a.Pipeline, a: a}, nil
}

// BatchJob names one source text for batch analysis.
type BatchJob struct {
	Name   string
	Source string
}

// BatchResult is one batch outcome; exactly one of Result/Err is set.
type BatchResult struct {
	Job    BatchJob
	Result *Result
	Err    error
}

// AnalyzeAll analyzes every job concurrently (bounded by the engine's
// worker count) and returns results in job order. Errors are collected
// per item rather than aborting the batch.
func (e *Engine) AnalyzeAll(jobs []BatchJob) []BatchResult {
	return e.AnalyzeAllCtx(context.Background(), jobs)
}

// AnalyzeAllCtx is AnalyzeAll honoring cancellation: once ctx is done,
// every not-yet-analyzed job completes immediately with a per-item
// ctx.Err().
func (e *Engine) AnalyzeAllCtx(ctx context.Context, jobs []BatchJob) []BatchResult {
	ejobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		ejobs[i] = engine.Job{Name: j.Name, Source: j.Source}
	}
	out := make([]BatchResult, len(jobs))
	for i, r := range e.e.AnalyzeAll(ctx, ejobs) {
		out[i] = BatchResult{Job: jobs[i], Err: r.Err}
		if r.Err == nil {
			out[i].Result = &Result{p: r.Analysis.Pipeline, a: r.Analysis}
		}
	}
	return out
}

// CacheStats reports the engine's pipeline-cache hit/miss counters.
func (e *Engine) CacheStats() (hits, misses int64) { return e.e.Stats() }
