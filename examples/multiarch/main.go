// Multiarch example: the architecture registry as data. Ranks one
// kernel across every embedded machine description with a
// CompareSection — which machine's roofline caps the kernel highest,
// and which side of the ridge it lands on per machine — then re-runs
// the ranking against a custom description defined as a JSON document,
// the same format a -arch-dir file or a mira-serve deployment would
// use. No Go code is needed to add a machine: a description is data,
// and its content key (not its name) addresses every cached result.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mira"
)

const kernelSrc = `double kernel(double *x, int n) {
	double s;
	int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + x[i] * 2.0;
	}
	return s;
}
`

// customBox is a made-up machine: modest peak, huge bandwidth, so the
// streaming kernel above lands compute-bound on it while every embedded
// machine pins it against the memory wall.
const customBox = `{
	"name": "custombox",
	"cores": 4,
	"clock_ghz": 2.0,
	"cache_line_bytes": 64,
	"vector_width_doubles": 2,
	"peak_flops_per_cycle_per_core": 2,
	"mem_bandwidth_gbs": 800,
	"has_fp_counters": true
}`

func main() {
	eng, err := mira.NewEngine(0, mira.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Rank the kernel across the full embedded registry: an empty Archs
	// list means every registered description.
	suite := mira.Suite{
		Name:  "machine_shootout",
		Title: "one kernel, every machine in the registry",
		Sections: []mira.Section{
			mira.CompareSection{
				Name:     "kernel_rank",
				Caption:  "kernel ranked by attainable GFLOP/s at n = 1M",
				Workload: mira.WorkloadRef{File: "kernel.c", Source: kernelSrc},
				Fn:       "kernel",
				Env:      map[string]int64{"n": 1_000_000},
			},
		},
	}
	rep, err := eng.Report(context.Background(), suite)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Encode(os.Stdout, mira.FormatTable); err != nil {
		log.Fatal(err)
	}

	// A custom machine is a JSON file, not Go code: write the
	// description the way an operator would drop it into mira-serve's
	// -arch-dir, then analyze against it by path.
	dir, err := os.MkdirTemp("", "multiarch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	descPath := filepath.Join(dir, "custombox.json")
	if err := os.WriteFile(descPath, []byte(customBox), 0o644); err != nil {
		log.Fatal(err)
	}

	res, err := mira.Analyze("kernel.c", kernelSrc, mira.Options{Arch: descPath})
	if err != nil {
		log.Fatal(err)
	}
	out := res.Run(context.Background(), []mira.Query{{
		Fn:   "kernel",
		Env:  mira.IntArgs(map[string]int64{"n": 1_000_000}),
		Kind: mira.KindRoofline,
	}})
	r := out[0]
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	bound := "memory-bound"
	if !r.Roofline.MemoryBound {
		bound = "compute-bound"
	}
	fmt.Printf("\ncustombox (from %s): %s, attainable %.2f GFLOP/s (ridge AI %.3f)\n",
		filepath.Base(descPath), bound, r.Roofline.AttainableGFlops, r.Roofline.RidgeAI)
}
