// Roofline example: the paper's Sec. IV-D2 prediction. Computes
// instruction-based arithmetic intensity for cg_solve from the static
// model and places it on the rooflines of the two evaluation machines —
// including the Haswell box whose missing FP hardware counters make the
// static route the only one available (Sec. IV-D1).
package main

import (
	"context"
	"fmt"
	"log"

	"mira/internal/arch"
	"mira/internal/dynamic"
	"mira/internal/engine"
	"mira/internal/experiments"
	"mira/internal/vm"
)

func main() {
	ctx := context.Background()
	eng := engine.New(engine.Options{})
	s := experiments.MiniFESizes{NX: 10, NY: 10, NZ: 10, MaxIter: 10, NnzRowAnnotation: 19}

	for _, d := range []*arch.Description{arch.Arya(), arch.Frankenstein()} {
		an, err := experiments.Prediction(ctx, eng, s, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (peak %.0f GF/s, bw %.0f GB/s):\n  %s\n\n",
			d.Name, d.PeakGFlops(), d.MemBandwidthGBs, an)
	}

	// The hardware-counter angle: on arya (Haswell-like) PAPI_FP_INS does
	// not exist, so a dynamic profiler cannot produce the number the
	// static model just did.
	p, err := experiments.MiniFEPipeline(ctx, eng)
	if err != nil {
		log.Fatal(err)
	}
	prof := dynamic.New(vm.New(p.Obj), arch.Arya())
	if _, err := prof.Read("cg_solve", dynamic.PAPI_FP_INS); err != nil {
		fmt.Printf("Dynamic measurement on arya fails as the paper describes:\n  %v\n", err)
	}
}
