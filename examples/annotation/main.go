// Annotation example: the paper's Listing 3/6 scenarios. Loops whose
// bounds come from array elements or min/max calls cannot be modeled
// statically; #pragma @Annotation directives supply the missing pieces,
// and parameter-valued annotations become inputs of the generated model.
package main

import (
	"fmt"
	"log"

	"mira"
)

const unannotated = `
extern int min(int a, int b);
extern int max(int a, int b);
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 5; i++)
		for(j = min(6 - i, 3); j <= max(8 - i, i); j++)
		{
			s = s + 1.0;
		}
	return s;
}
`

const annotated = `
extern int min(int a, int b);
extern int max(int a, int b);
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 5; i++) {
		#pragma @Annotation {lp_iter:inner_trips}
		for(j = min(6 - i, 3); j <= max(8 - i, i); j++)
		{
			s = s + 1.0;
		}
	}
	return s;
}
`

func main() {
	// Without an annotation, Mira refuses: the iteration domain is not a
	// convex polyhedron (paper Listing 3 / Fig. 4d).
	_, err := mira.Analyze("listing3.c", unannotated, mira.Options{})
	fmt.Printf("Unannotated Listing 3 analysis fails as expected:\n  %v\n\n", err)

	// With {lp_iter:inner_trips}, the model generates, parameterized by
	// the user-supplied trip count.
	res, err := mira.Analyze("listing3_annotated.c", annotated, mira.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, trips := range []int64{3, 5, 8} {
		met, err := res.Static("kernel", mira.IntArgs(map[string]int64{"inner_trips": trips}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("inner_trips=%d -> predicted FPI %d (5 outer iterations x %d)\n",
			trips, met.FPI(), trips)
	}

	fmt.Println("\nGenerated Python model:")
	fmt.Println(res.PythonModel())
}
