// Quickstart: analyze a small kernel statically, evaluate the parametric
// model at several problem sizes, and cross-check one size against an
// actual execution on the built-in VM.
package main

import (
	"fmt"
	"log"

	"mira"
	"mira/internal/vm"
)

const src = `
double axpy(double *x, double *y, int n, double a) {
	int i;
	for (i = 0; i < n; i++) {
		y[i] = a * x[i] + y[i];
	}
	return y[0];
}
`

func main() {
	res, err := mira.Analyze("axpy.c", src, mira.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The model is parametric in n: evaluating it needs no execution and
	// is O(1) in the problem size.
	fmt.Println("Static FPI prediction for axpy:")
	for _, n := range []int64{1000, 1_000_000, 100_000_000} {
		met, err := res.Static("axpy", mira.IntArgs(map[string]int64{"n": n}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%-12d FPI=%-12d total instructions=%d\n", n, met.FPI(), met.Instrs)
	}

	// Validate one size dynamically: run the same compiled binary.
	n := int64(10000)
	m := res.Machine()
	x := m.Alloc(uint64(n))
	y := m.Alloc(uint64(n))
	for i := int64(0); i < n; i++ {
		m.SetF(x+uint64(i), 1.0)
		m.SetF(y+uint64(i), 2.0)
	}
	if _, err := m.Run("axpy", vm.Int(int64(x)), vm.Int(int64(y)), vm.Int(n), vm.Float(3.0)); err != nil {
		log.Fatal(err)
	}
	st, _ := m.FuncStatsByName("axpy")
	met, _ := res.Static("axpy", mira.IntArgs(map[string]int64{"n": n}))
	fmt.Printf("\nValidation at n=%d: measured FPI=%d, predicted FPI=%d (exact match: %t)\n",
		n, st.FPIInclusive(), met.FPI(), int64(st.FPIInclusive()) == met.FPI())
}
