// STREAM example: reproduce a Table III-style validation row and show the
// static model evaluated at the paper's full 100M-element size — something
// the dynamic side would need gigabytes and minutes for, evaluated here in
// microseconds because the model is closed-form (paper Sec. IV-D1).
package main

import (
	"fmt"
	"log"
	"time"

	"mira/internal/experiments"
)

func main() {
	// Paired static/dynamic validation at a VM-friendly size.
	rows, err := experiments.TableIII([]int64{2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable("STREAM validation (Table III row)", rows))

	// Static-only evaluation at the paper's sizes.
	fmt.Println("\nStatic model at the paper's sizes (Table III 'Mira' column):")
	for _, n := range []int64{2_000_000, 50_000_000, 100_000_000} {
		start := time.Now()
		fpi, err := experiments.StreamStaticFPI(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%-12d FPI=%-14.4g evaluated in %v\n", n, float64(fpi), time.Since(start))
	}
	fmt.Println("\nPaper's Mira column: 8.20E7 (2M), 4.100E9 (50M), 2.050E10 (100M).")
	fmt.Println("Our STREAM source performs 40 FPI/element (4 kernels x 10 iterations);")
	fmt.Println("see EXPERIMENTS.md for the per-kernel accounting difference.")
}
