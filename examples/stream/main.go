// STREAM example: reproduce a Table III-style validation row and show the
// static model evaluated at the paper's full 100M-element size — something
// the dynamic side would need gigabytes and minutes for, evaluated here in
// microseconds because the model is closed-form (paper Sec. IV-D1).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"mira/internal/engine"
	"mira/internal/experiments"
	"mira/internal/report"
)

func main() {
	ctx := context.Background()
	eng := engine.New(engine.Options{})

	// Paired static/dynamic validation at a VM-friendly size.
	rows, err := experiments.TableIII(ctx, eng, []int64{2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	rep := report.Report{Tables: []report.Table{
		experiments.ValidationTable("table_iii", "STREAM validation (Table III row)", rows),
	}}
	if err := rep.EncodeText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Static-only evaluation at the paper's sizes.
	fmt.Println("\nStatic model at the paper's sizes (Table III 'Mira' column):")
	for _, n := range []int64{2_000_000, 50_000_000, 100_000_000} {
		start := time.Now()
		fpi, err := experiments.StreamStaticFPI(ctx, eng, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%-12d FPI=%-14.4g evaluated in %v\n", n, float64(fpi), time.Since(start))
	}
	fmt.Println("\nPaper's Mira column: 8.20E7 (2M), 4.100E9 (50M), 2.050E10 (100M).")
	fmt.Println("Our STREAM source performs 40 FPI/element (4 kernels x 10 iterations);")
	fmt.Println("see EXPERIMENTS.md for the per-kernel accounting difference.")
}
