// Querybatch: the v2 query API. One analysis, one batched Run call
// evaluating a whole query matrix — static FPI across problem sizes,
// Table II categories, a roofline placement, and the PBound source-only
// baseline — with per-query errors and a cancellable context.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mira"
)

const src = `
double smooth(double *u, double *f, int n, double dx) {
	int i;
	double c;
	c = dx * dx * 0.5;
	for (i = 1; i < n - 1; i++) {
		u[i] = (u[i - 1] + u[i + 1] + f[i] * (2.0 * c)) * 0.5;
	}
	return u[0];
}
`

func main() {
	// ^C cancels the whole batch: every unevaluated query comes back
	// with a per-query context error instead of the process dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := mira.AnalyzeContext(ctx, "smooth.c", src, mira.Options{Arch: "arya"})
	if err != nil {
		log.Fatal(err)
	}

	env := func(n int64) mira.Env { return mira.IntArgs(map[string]int64{"n": n}) }
	queries := []mira.Query{
		{Fn: "smooth", Env: env(1_000), Kind: mira.KindStatic},
		{Fn: "smooth", Env: env(1_000_000), Kind: mira.KindStatic},
		{Fn: "smooth", Env: env(100_000_000), Kind: mira.KindStatic},
		{Fn: "smooth", Env: env(1_000_000), Kind: mira.KindCategories},
		{Fn: "smooth", Env: env(1_000_000), Kind: mira.KindRoofline},
		{Fn: "smooth", Env: env(1_000_000), Kind: mira.KindRoofline, Arch: "frankenstein"},
		{Fn: "smooth", Env: env(1_000_000), Kind: mira.KindPBound},
		{Fn: "no_such_function", Env: env(10), Kind: mira.KindStatic}, // fails alone
	}

	fmt.Println("One batched Run over the query matrix:")
	for _, r := range res.Run(ctx, queries) {
		fmt.Printf("  %-18s n=%-12v ", r.Query.Kind, r.Query.Env["n"])
		switch {
		case r.Err != nil:
			fmt.Printf("error: %v\n", r.Err)
		case r.Metrics != nil:
			fmt.Printf("FPI=%d instrs=%d\n", r.Metrics.FPI(), r.Metrics.Instrs)
		case r.Categories != nil:
			fmt.Printf("%d categories (SSE2 packed arithmetic = %d)\n",
				len(r.Categories), r.Categories["SSE2 packed arithmetic instruction"])
		case r.Roofline != nil:
			fmt.Printf("AI=%.2f attainable=%.1f GF/s on %s\n",
				r.Roofline.InstrAI, r.Roofline.AttainableGFlops, archOf(r.Query))
		case r.PBound != nil:
			fmt.Printf("source-only bound: flops=%d loads=%d stores=%d\n",
				r.PBound.Flops, r.PBound.Loads, r.PBound.Stores)
		}
	}

	// The legacy helpers are one-cell wrappers over the same core, so
	// mixing styles is safe.
	met, err := res.Static("smooth", env(1_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLegacy Static agrees: FPI=%d\n", met.FPI())
}

func archOf(q mira.Query) string {
	if q.Arch != "" {
		return q.Arch
	}
	return "arya (analysis default)"
}
