// miniFE example: the paper's mini-application walk-through. Generates
// the model for the CG solver call chain, prints cg_solve's Table II
// category breakdown and Fig. 6 distribution, validates against a dynamic
// run, and prints the paper-style generated Python model for waxpby.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"mira/internal/engine"
	"mira/internal/experiments"
	"mira/internal/report"
)

func main() {
	ctx := context.Background()
	eng := engine.New(engine.Options{})

	s := experiments.MiniFESizes{NX: 10, NY: 10, NZ: 10, MaxIter: 10}
	s.NnzRowAnnotation = (s.TrueNNZ() + s.Rows()/2) / s.Rows() // best user estimate

	// Table II + Fig. 6.
	rows, err := experiments.TableII(ctx, eng, s)
	if err != nil {
		log.Fatal(err)
	}

	// Validation (Table V shape).
	vrows, err := experiments.TableV(ctx, eng, []experiments.MiniFESizes{s})
	if err != nil {
		log.Fatal(err)
	}
	rep := report.Report{Tables: []report.Table{
		experiments.TableIITable(rows),
		experiments.ValidationTable("table_v", "miniFE validation", vrows),
	}}
	if err := rep.EncodeText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The generated Python model (paper Fig. 5 artifact) for waxpby.
	p, err := experiments.MiniFEPipeline(ctx, eng)
	if err != nil {
		log.Fatal(err)
	}
	py := p.PythonModel()
	fmt.Println("\nGenerated Python model (excerpt):")
	for _, line := range strings.Split(py, "\n") {
		if strings.Contains(line, "def waxpby") || strings.Contains(line, "def handle_function_call") {
			fmt.Println("  " + line)
		}
	}
}
