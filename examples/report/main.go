// Report example: the declarative results layer. Builds a suite — one
// grid section over the embedded STREAM workload plus one over inline
// caller-supplied source — runs it through an engine, and prints the
// same typed report in the paper's ASCII style, as Markdown, and as
// JSON. The identical suite shape (as a JSON spec) can be POSTed to a
// running mira-serve daemon's /report endpoint.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mira"
)

const kernelSrc = `double kernel(double *x, int n) {
	double s;
	int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + x[i] * 2.0;
	}
	return s;
}
`

func main() {
	eng, err := mira.NewEngine(0, mira.Options{})
	if err != nil {
		log.Fatal(err)
	}

	suite := mira.Suite{
		Name:  "scaling_study",
		Title: "STREAM and a custom kernel, statically swept",
		Sections: []mira.Section{
			mira.GridSection{
				Name:     "stream_fpi",
				Caption:  "STREAM static FPI scaling (Table III 'Mira' column)",
				Workload: mira.WorkloadRef{Name: "stream"}, // embedded registry
				Fn:       "stream",
				Axes:     []mira.SweepAxis{{Name: "n", Values: []int64{2_000_000, 50_000_000, 100_000_000}}},
			},
			mira.GridSection{
				Name:     "kernel_roofline",
				Caption:  "custom kernel roofline across machines",
				Workload: mira.WorkloadRef{File: "kernel.c", Source: kernelSrc}, // caller-supplied
				Fn:       "kernel",
				Kind:     mira.KindRoofline,
				Points:   []map[string]int64{{"n": 1_000_000}},
				Archs:    []string{"arya", "frankenstein"},
			},
		},
	}

	rep, err := eng.Report(context.Background(), suite)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== paper ASCII style ==")
	if err := rep.Encode(os.Stdout, mira.FormatTable); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== markdown ==")
	if err := rep.Encode(os.Stdout, mira.FormatMarkdown); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== json ==")
	if err := rep.Encode(os.Stdout, mira.FormatJSON); err != nil {
		log.Fatal(err)
	}
}
