GO ?= go

.PHONY: all check fmt-check vet lint staticcheck govulncheck fuzz-smoke build test race bench bench-baseline bench-compare cluster-smoke serve examples clean

all: check

check: fmt-check vet lint build race examples

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs mira-vet, the repo's own analyzer suite (internal/lint):
# eleven checks — six syntactic, five dataflow/interprocedural — each
# encoding an invariant a past PR paid for. The ./... target includes
# internal/lint and cmd/mira-vet themselves (the linter lints itself).
# Gating in CI; suppress a finding in-source with
# `//lint:ignore mira/<name> reason`. Use `-json` for the metrics CI
# scrapes (mira_vet_findings_total, per-analyzer wall time).
lint:
	$(GO) run ./cmd/mira-vet ./...

# staticcheck and govulncheck are pinned by version and fetched on
# demand via `go run pkg@version`, so they need network access: they run
# as separate CI jobs, not in `check` (the local loop stays offline).
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

GOVULNCHECK_VERSION ?= v1.1.4
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# fuzz-smoke runs the three-way evaluator divergence fuzzer (tree walker
# vs compiled model vs VM over synthesized programs) for a bounded slice;
# CI runs it on every push, so the generators stay continuously fuzzed.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzThreeWayEvaluators -fuzztime $(FUZZTIME) ./internal/synth

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./

# bench-baseline records the performance trajectory: the sweep
# (compiled-vs-treewalk), cache (cold-vs-warm), incremental-edit, and
# report-path (suite -> engine sweeps -> typed report -> JSON)
# benchmarks as a test2json event stream. -benchtime 5x keeps each
# sample cheap while giving -compare a median to stand on. CI compares
# a fresh run against the committed previous baseline (gating, see
# bench-compare) and uploads the file as an artifact.
BENCH_BASELINE_OUT ?= BENCH_8.json
BENCH_SET = BenchmarkSweep_CompiledVsTreeWalk|BenchmarkSweep_CompileOnce|BenchmarkEngineEval_ColdVsWarm|BenchmarkReport_SuitePath|BenchmarkIncrementalEdit|BenchmarkCrossArchSweep|BenchmarkCluster_
bench-baseline:
	$(GO) test -json -run xxx -benchtime 5x \
		-bench '$(BENCH_SET)' \
		. > $(BENCH_BASELINE_OUT)
	@grep -o '"Output":".*speedup-x[^"]*"' $(BENCH_BASELINE_OUT) | tail -2
	@grep -o '"Output":".*rows/s[^"]*"' $(BENCH_BASELINE_OUT) | tail -1

# bench-compare gates on benchmark regressions: a fresh baseline against
# the committed previous one, host-normalized (the two may come from
# different machines), failing on >15% relative slowdowns in benchmarks
# above the 100µs noise floor.
BENCH_COMPARE_OLD ?= BENCH_7.json
bench-compare:
	$(GO) test -json -run xxx -benchtime 5x \
		-bench '$(BENCH_SET)' \
		. > BENCH_ci_fresh.json
	$(GO) run ./cmd/mira-bench -compare -normalize -threshold 15 \
		$(BENCH_COMPARE_OLD) BENCH_ci_fresh.json

# cluster-smoke is the end-to-end cluster gate: three loopback replicas
# sharing a peer cache tier serve a mixed interactive/bulk load, the
# peer-hit counter must be non-zero (the shared tier is real), the
# interactive class must see zero 5xx, and killing one replica mid-run
# must not fail in-flight interactive requests. See
# cmd/mira-serve/cluster_test.go (TestClusterSmoke).
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count 1 -v ./cmd/mira-serve

serve:
	$(GO) run ./cmd/mira-serve -cache-dir .mira-cache

examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d" > /dev/null; \
	done

clean:
	$(GO) clean ./...
