GO ?= go

.PHONY: all check fmt-check vet build test race bench serve examples clean

all: check

check: fmt-check vet build race examples

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./

serve:
	$(GO) run ./cmd/mira-serve -cache-dir .mira-cache

examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d" > /dev/null; \
	done

clean:
	$(GO) clean ./...
