GO ?= go

.PHONY: all check fmt-check vet build test race bench bench-baseline serve examples clean

all: check

check: fmt-check vet build race examples

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./

# bench-baseline records the performance trajectory: the sweep
# (compiled-vs-treewalk), cache (cold-vs-warm), and report-path
# (suite -> engine sweeps -> typed report -> JSON) benchmarks as a
# test2json event stream, one run each. CI uploads the file as a
# non-gating artifact so regressions are visible across PRs.
BENCH_BASELINE_OUT ?= BENCH_5.json
bench-baseline:
	$(GO) test -json -run xxx -benchtime 1x \
		-bench 'BenchmarkSweep_CompiledVsTreeWalk|BenchmarkSweep_CompileOnce|BenchmarkEngineEval_ColdVsWarm|BenchmarkReport_SuitePath' \
		. > $(BENCH_BASELINE_OUT)
	@grep -o '"Output":".*speedup-x[^"]*"' $(BENCH_BASELINE_OUT) | tail -1
	@grep -o '"Output":".*rows/s[^"]*"' $(BENCH_BASELINE_OUT) | tail -1

serve:
	$(GO) run ./cmd/mira-serve -cache-dir .mira-cache

examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d" > /dev/null; \
	done

clean:
	$(GO) clean ./...
