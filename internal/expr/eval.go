package expr

import (
	"fmt"

	"mira/internal/rational"
)

// Env binds parameter and summation-variable names to exact values.
type Env map[string]rational.Rat

// Bind returns a copy of env with name bound to val.
func (env Env) Bind(name string, val rational.Rat) Env {
	out := make(Env, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[name] = val
	return out
}

// EvalOptions controls evaluation limits.
type EvalOptions struct {
	// MaxSumRange bounds the width of any single enumerated Sum. Summations
	// that simplified to closed form are unaffected. Zero means the
	// default of 50 million.
	MaxSumRange int64
}

const defaultMaxSumRange = 50_000_000

// Eval evaluates e under env with default options.
func Eval(e Expr, env Env) (rational.Rat, error) {
	return EvalWith(e, env, EvalOptions{})
}

// EvalWith evaluates e under env.
func EvalWith(e Expr, env Env, opts EvalOptions) (rational.Rat, error) {
	if opts.MaxSumRange == 0 {
		opts.MaxSumRange = defaultMaxSumRange
	}
	return eval(e, env, opts)
}

func eval(e Expr, env Env, opts EvalOptions) (rational.Rat, error) {
	switch x := e.(type) {
	case Num:
		return x.Val, nil
	case Param:
		v, ok := env[x.Name]
		if !ok {
			return rational.Rat{}, fmt.Errorf("expr: unbound parameter %q", x.Name)
		}
		return v, nil
	case Var:
		v, ok := env[x.Name]
		if !ok {
			return rational.Rat{}, fmt.Errorf("expr: unbound variable %q", x.Name)
		}
		return v, nil
	case Add:
		acc := rational.Zero
		for _, t := range x.Terms {
			v, err := eval(t, env, opts)
			if err != nil {
				return rational.Rat{}, err
			}
			acc = acc.Add(v)
		}
		return acc, nil
	case Mul:
		acc := rational.One
		for _, f := range x.Factors {
			v, err := eval(f, env, opts)
			if err != nil {
				return rational.Rat{}, err
			}
			acc = acc.Mul(v)
		}
		return acc, nil
	case FloorDiv:
		v, err := eval(x.X, env, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		return v.FloorDiv(x.D), nil
	case Min:
		a, err := eval(x.A, env, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		b, err := eval(x.B, env, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		return a.Min(b), nil
	case Max:
		a, err := eval(x.A, env, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		b, err := eval(x.B, env, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		return a.Max(b), nil
	case Sum:
		return evalSum(x, env, opts)
	}
	return rational.Rat{}, fmt.Errorf("expr: cannot evaluate %T", e)
}

func evalSum(s Sum, env Env, opts EvalOptions) (rational.Rat, error) {
	loR, err := eval(s.Lo, env, opts)
	if err != nil {
		return rational.Rat{}, err
	}
	hiR, err := eval(s.Hi, env, opts)
	if err != nil {
		return rational.Rat{}, err
	}
	// Loop bounds are integral by construction; ceil/floor guard against
	// rational parameter bindings.
	lo, okLo := loR.Ceil().Int64()
	hi, okHi := hiR.Floor().Int64()
	if !okLo || !okHi {
		return rational.Rat{}, fmt.Errorf("expr: sum bounds out of range: [%s, %s]", loR, hiR)
	}
	if hi < lo {
		return rational.Zero, nil
	}
	if hi-lo+1 > opts.MaxSumRange {
		return rational.Rat{}, fmt.Errorf("expr: sum over %q enumerates %d points, exceeding limit %d",
			s.Var, hi-lo+1, opts.MaxSumRange)
	}
	acc := rational.Zero
	inner := env.Bind(s.Var, rational.Zero)
	for v := lo; v <= hi; v++ {
		inner[s.Var] = rational.FromInt(v)
		val, err := eval(s.Body, inner, opts)
		if err != nil {
			return rational.Rat{}, err
		}
		acc = acc.Add(val)
	}
	return acc, nil
}

// EvalInt64 evaluates e and returns the result as an int64, requiring an
// integral value.
func EvalInt64(e Expr, env Env) (int64, error) {
	v, err := Eval(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := v.Int64()
	if !ok {
		return 0, fmt.Errorf("expr: value %s is not an int64", v)
	}
	return n, nil
}

// EvalFloat evaluates e and returns the nearest float64.
func EvalFloat(e Expr, env Env) (float64, error) {
	v, err := Eval(e, env)
	if err != nil {
		return 0, err
	}
	return v.Float64(), nil
}

// EnvFromInts builds an Env from an int64-valued map.
func EnvFromInts(m map[string]int64) Env {
	env := make(Env, len(m))
	for k, v := range m {
		env[k] = rational.FromInt(v)
	}
	return env
}
