package expr

import (
	"sort"
	"strings"
	"sync"

	"mira/internal/rational"
)

// maxFaulhaberDegree bounds the polynomial degree the closed-form summation
// will attempt; deeper nests fall back to enumerated Sum nodes.
const maxFaulhaberDegree = 12

// mono is a monomial: a product of variables raised to positive powers.
type mono struct {
	key  string // canonical "x^2*y" form, "" for the constant monomial
	vars map[string]int
}

func monoOf(vars map[string]int) mono {
	names := make([]string, 0, len(vars))
	for v, p := range vars {
		if p > 0 {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, v := range names {
		if i > 0 {
			sb.WriteByte('*')
		}
		sb.WriteString(v)
		if p := vars[v]; p > 1 {
			sb.WriteByte('^')
			sb.WriteString(itoa(p))
		}
	}
	return mono{key: sb.String(), vars: vars}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// poly is a multivariate polynomial with rational coefficients.
type poly struct {
	terms map[string]polyTerm
}

type polyTerm struct {
	coeff rational.Rat
	m     mono
}

func newPoly() poly { return poly{terms: map[string]polyTerm{}} }

func polyConst(r rational.Rat) poly {
	p := newPoly()
	if r.Sign() != 0 {
		p.terms[""] = polyTerm{coeff: r, m: monoOf(nil)}
	}
	return p
}

func polyVar(name string) poly {
	p := newPoly()
	m := monoOf(map[string]int{name: 1})
	p.terms[m.key] = polyTerm{coeff: rational.One, m: m}
	return p
}

func (p poly) addTerm(c rational.Rat, m mono) {
	if c.Sign() == 0 {
		return
	}
	if t, ok := p.terms[m.key]; ok {
		nc := t.coeff.Add(c)
		if nc.Sign() == 0 {
			delete(p.terms, m.key)
		} else {
			p.terms[m.key] = polyTerm{coeff: nc, m: m}
		}
		return
	}
	p.terms[m.key] = polyTerm{coeff: c, m: m}
}

func (p poly) add(q poly) poly {
	r := newPoly()
	for _, t := range p.terms {
		r.addTerm(t.coeff, t.m)
	}
	for _, t := range q.terms {
		r.addTerm(t.coeff, t.m)
	}
	return r
}

func (p poly) mul(q poly) poly {
	r := newPoly()
	for _, a := range p.terms {
		for _, b := range q.terms {
			vars := map[string]int{}
			for v, e := range a.m.vars {
				vars[v] += e
			}
			for v, e := range b.m.vars {
				vars[v] += e
			}
			r.addTerm(a.coeff.Mul(b.coeff), monoOf(vars))
		}
	}
	return r
}

func (p poly) scale(c rational.Rat) poly {
	r := newPoly()
	for _, t := range p.terms {
		r.addTerm(t.coeff.Mul(c), t.m)
	}
	return r
}

func (p poly) pow(n int) poly {
	r := polyConst(rational.One)
	for i := 0; i < n; i++ {
		r = r.mul(p)
	}
	return r
}

// degreeIn returns the highest power of v appearing in p.
func (p poly) degreeIn(v string) int {
	d := 0
	for _, t := range p.terms {
		if e := t.m.vars[v]; e > d {
			d = e
		}
	}
	return d
}

// totalDegree returns the maximum total degree across terms.
func (p poly) totalDegree() int {
	d := 0
	for _, t := range p.terms {
		td := 0
		for _, e := range t.m.vars {
			td += e
		}
		if td > d {
			d = td
		}
	}
	return d
}

// coeffOfPower collects the coefficient polynomial of v^k in p.
func (p poly) coeffOfPower(v string, k int) poly {
	r := newPoly()
	for _, t := range p.terms {
		if t.m.vars[v] != k {
			continue
		}
		vars := map[string]int{}
		for name, e := range t.m.vars {
			if name != v {
				vars[name] = e
			}
		}
		r.addTerm(t.coeff, monoOf(vars))
	}
	return r
}

// substVar substitutes q for v in p.
func (p poly) substVar(v string, q poly) poly {
	r := newPoly()
	for _, t := range p.terms {
		e := t.m.vars[v]
		vars := map[string]int{}
		for name, pw := range t.m.vars {
			if name != v {
				vars[name] = pw
			}
		}
		base := newPoly()
		base.addTerm(t.coeff, monoOf(vars))
		if e > 0 {
			base = base.mul(q.pow(e))
		}
		r = r.add(base)
	}
	return r
}

// toExpr converts the polynomial back to a simplified expression.
func (p poly) toExpr() Expr {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var terms []Expr
	for _, k := range keys {
		t := p.terms[k]
		factors := []Expr{Num{t.coeff}}
		names := make([]string, 0, len(t.m.vars))
		for v := range t.m.vars {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			for i := 0; i < t.m.vars[v]; i++ {
				factors = append(factors, symbolExpr(v))
			}
		}
		terms = append(terms, NewMul(factors...))
	}
	if len(terms) == 0 {
		return Const(0)
	}
	return NewAdd(terms...)
}

// symbolExpr decides whether a polynomial symbol is a Param or a Var. Since
// a Sum closed form eliminates the bound variable, remaining symbols are
// free: render them as Params (evaluation treats both identically through
// the environment).
func symbolExpr(name string) Expr { return Param{name} }

// toPoly converts an expression into polynomial form; ok is false when the
// expression contains non-polynomial operations (floor, min, max, sum).
func toPoly(e Expr) (poly, bool) {
	switch x := e.(type) {
	case Num:
		return polyConst(x.Val), true
	case Param:
		return polyVar(x.Name), true
	case Var:
		return polyVar(x.Name), true
	case Add:
		r := newPoly()
		for _, t := range x.Terms {
			p, ok := toPoly(t)
			if !ok {
				return poly{}, false
			}
			r = r.add(p)
		}
		return r, true
	case Mul:
		r := polyConst(rational.One)
		for _, f := range x.Factors {
			p, ok := toPoly(f)
			if !ok {
				return poly{}, false
			}
			r = r.mul(p)
		}
		return r, true
	}
	return poly{}, false
}

// bernoulliPlus returns the Bernoulli numbers B+_0..B+_n (B1 = +1/2
// convention), memoized. The memo is process-wide because the numbers
// are pure mathematics, but model compilation runs on the engine's
// worker pool, so growth must be serialized: without the mutex two
// goroutines compiling polynomial sums raced on the append (found by
// mira-vet's noglobals analyzer). Elements are never rewritten after
// append, so returned prefix slices stay valid outside the lock.
//
//lint:ignore mira/noglobals guards bernoulliMemo; pure-math memo shared by design
var bernoulliMu sync.Mutex

//lint:ignore mira/noglobals append-only memo of mathematical constants, serialized by bernoulliMu
var bernoulliMemo []rational.Rat

func bernoulliPlus(n int) []rational.Rat {
	bernoulliMu.Lock()
	defer bernoulliMu.Unlock()
	for len(bernoulliMemo) <= n {
		m := len(bernoulliMemo)
		if m == 0 {
			bernoulliMemo = append(bernoulliMemo, rational.One)
			continue
		}
		// B-_m = -1/(m+1) * sum_{j=0}^{m-1} C(m+1, j) B-_j, then flip B1.
		sum := rational.Zero
		for j := 0; j < m; j++ {
			bj := bernoulliMemo[j]
			if j == 1 {
				// memo stores B+_1 = 1/2; the recurrence needs B-_1 = -1/2.
				bj = bj.Neg()
			}
			sum = sum.Add(binomial(m+1, j).Mul(bj))
		}
		bm := sum.Neg().Div(rational.FromInt(int64(m + 1)))
		if m == 1 {
			bm = bm.Neg() // B+_1 = +1/2
		}
		bernoulliMemo = append(bernoulliMemo, bm)
	}
	return bernoulliMemo[:n+1]
}

func binomial(n, k int) rational.Rat {
	if k < 0 || k > n {
		return rational.Zero
	}
	r := rational.One
	for i := 0; i < k; i++ {
		r = r.Mul(rational.FromInt(int64(n - i))).Div(rational.FromInt(int64(i + 1)))
	}
	return r
}

// faulhaber returns S_k as a polynomial in the symbol n, where
// S_k(n) = sum_{v=1}^{n} v^k. The polynomial identity
// S_k(n) - S_k(n-1) = n^k holds for all integers, so
// sum_{v=lo}^{hi} v^k = S_k(hi) - S_k(lo-1) whenever hi >= lo-1.
func faulhaber(k int, n string) poly {
	b := bernoulliPlus(k)
	r := newPoly()
	nv := polyVar(n)
	for j := 0; j <= k; j++ {
		c := binomial(k+1, j).Mul(b[j]).Div(rational.FromInt(int64(k + 1)))
		r = r.add(nv.pow(k + 1 - j).scale(c))
	}
	return r
}

// sumPolynomial computes the closed form of sum_{v=lo}^{hi} body when body,
// lo, and hi are polynomial. The result is only a valid identity when the
// range is not "anti-empty" (hi >= lo-1); callers establish that invariant
// (loop trip counts are clamped before reaching here).
func sumPolynomial(v string, lo, hi, body Expr) (Expr, bool) {
	bp, ok := toPoly(body)
	if !ok {
		return nil, false
	}
	lp, ok := toPoly(lo)
	if !ok {
		return nil, false
	}
	hp, ok := toPoly(hi)
	if !ok {
		return nil, false
	}
	deg := bp.degreeIn(v)
	if deg > maxFaulhaberDegree || lp.totalDegree() > 2 || hp.totalDegree() > 2 {
		return nil, false
	}
	loMinus1 := lp.add(polyConst(rational.FromInt(-1)))
	total := newPoly()
	for k := 0; k <= deg; k++ {
		ck := bp.coeffOfPower(v, k)
		if len(ck.terms) == 0 {
			continue
		}
		var rangeSum poly
		if k == 0 {
			// sum of 1 = hi - lo + 1
			rangeSum = hp.add(lp.scale(rational.FromInt(-1))).add(polyConst(rational.One))
		} else {
			f := faulhaber(k, v)
			rangeSum = f.substVar(v, hp).add(f.substVar(v, loMinus1).scale(rational.FromInt(-1)))
		}
		total = total.add(ck.mul(rangeSum))
	}
	return total.toExpr(), true
}
