// Package expr implements the symbolic expression engine behind Mira's
// parametric performance models.
//
// A model that depends on unknown inputs (array sizes, annotation
// parameters) is represented as an expression tree over exact rationals,
// parameters, and bound summation variables. The engine provides:
//
//   - smart constructors with algebraic simplification (constant folding,
//     flattening, like-term collection),
//   - closed-form summation via Faulhaber polynomials so that loop-nest
//     counts evaluate in O(1) rather than by enumeration (paper Sec. IV-D1:
//     "the model ... can be evaluated at low computational cost"),
//   - exact evaluation under a parameter binding, and
//   - Python source emission, matching the paper's generated-model artifact
//     (Fig. 5).
package expr

import (
	"fmt"
	"sort"
	"strings"

	"mira/internal/rational"
)

// Expr is a symbolic expression. Implementations are immutable; build them
// with the package constructors, which simplify eagerly.
type Expr interface {
	// String renders a human-readable form.
	String() string
	isExpr()
}

// Num is an exact rational constant.
type Num struct{ Val rational.Rat }

// Param is a free model parameter (function argument, annotation variable).
type Param struct{ Name string }

// Var is a summation-bound variable; it only appears beneath a Sum that
// binds it.
type Var struct{ Name string }

// Add is a flattened n-ary sum.
type Add struct{ Terms []Expr }

// Mul is a flattened n-ary product.
type Mul struct{ Factors []Expr }

// FloorDiv is floor(X / D) with D a nonzero constant.
type FloorDiv struct {
	X Expr
	D rational.Rat
}

// Min is the minimum of two expressions.
type Min struct{ A, B Expr }

// Max is the maximum of two expressions.
type Max struct{ A, B Expr }

// Sum is an inclusive summation: sum over Var in [Lo, Hi] of Body. When
// Hi < Lo the sum is empty (zero).
type Sum struct {
	Var    string
	Lo, Hi Expr
	Body   Expr
}

func (Num) isExpr()      {}
func (Param) isExpr()    {}
func (Var) isExpr()      {}
func (Add) isExpr()      {}
func (Mul) isExpr()      {}
func (FloorDiv) isExpr() {}
func (Min) isExpr()      {}
func (Max) isExpr()      {}
func (Sum) isExpr()      {}

// ---------------------------------------------------------------------------
// Constructors

// Const returns the integer constant n.
func Const(n int64) Expr { return Num{rational.FromInt(n)} }

// ConstRat returns the rational constant r.
func ConstRat(r rational.Rat) Expr { return Num{r} }

// P returns the parameter named name.
func P(name string) Expr { return Param{name} }

// V returns the bound variable named name.
func V(name string) Expr { return Var{name} }

// IsZero reports whether e is the constant 0.
func IsZero(e Expr) bool {
	n, ok := e.(Num)
	return ok && n.Val.Sign() == 0
}

// IsOne reports whether e is the constant 1.
func IsOne(e Expr) bool {
	n, ok := e.(Num)
	return ok && n.Val.Equal(rational.One)
}

// ConstVal returns the constant value of e if e is a Num.
func ConstVal(e Expr) (rational.Rat, bool) {
	n, ok := e.(Num)
	if !ok {
		return rational.Rat{}, false
	}
	return n.Val, true
}

// NewAdd returns the simplified sum of terms.
func NewAdd(terms ...Expr) Expr {
	var flat []Expr
	c := rational.Zero
	for _, t := range terms {
		switch x := t.(type) {
		case Num:
			c = c.Add(x.Val)
		case Add:
			for _, tt := range x.Terms {
				if n, ok := tt.(Num); ok {
					c = c.Add(n.Val)
				} else {
					flat = append(flat, tt)
				}
			}
		default:
			flat = append(flat, t)
		}
	}
	flat = collectLikeTerms(flat)
	if c.Sign() != 0 || len(flat) == 0 {
		flat = append(flat, Num{c})
	}
	if len(flat) == 1 {
		return flat[0]
	}
	sortExprs(flat)
	return Add{Terms: flat}
}

// collectLikeTerms merges structurally identical non-constant terms k*t
// into single terms with summed coefficients.
func collectLikeTerms(terms []Expr) []Expr {
	type entry struct {
		base  Expr
		coeff rational.Rat
	}
	var order []string
	byKey := map[string]*entry{}
	for _, t := range terms {
		coeff, base := splitCoeff(t)
		key := base.String()
		if e, ok := byKey[key]; ok {
			e.coeff = e.coeff.Add(coeff)
			continue
		}
		byKey[key] = &entry{base: base, coeff: coeff}
		order = append(order, key)
	}
	var out []Expr
	for _, k := range order {
		e := byKey[k]
		if e.coeff.Sign() == 0 {
			continue
		}
		if e.coeff.Equal(rational.One) {
			out = append(out, e.base)
		} else {
			out = append(out, NewMul(Num{e.coeff}, e.base))
		}
	}
	return out
}

// splitCoeff splits t into (constant coefficient, residual factor).
func splitCoeff(t Expr) (rational.Rat, Expr) {
	m, ok := t.(Mul)
	if !ok {
		return rational.One, t
	}
	c := rational.One
	var rest []Expr
	for _, f := range m.Factors {
		if n, ok := f.(Num); ok {
			c = c.Mul(n.Val)
		} else {
			rest = append(rest, f)
		}
	}
	switch len(rest) {
	case 0:
		return c, Const(1)
	case 1:
		return c, rest[0]
	default:
		return c, Mul{Factors: rest}
	}
}

// NewMul returns the simplified product of factors.
func NewMul(factors ...Expr) Expr {
	var flat []Expr
	c := rational.One
	for _, f := range factors {
		switch x := f.(type) {
		case Num:
			c = c.Mul(x.Val)
		case Mul:
			for _, ff := range x.Factors {
				if n, ok := ff.(Num); ok {
					c = c.Mul(n.Val)
				} else {
					flat = append(flat, ff)
				}
			}
		default:
			flat = append(flat, f)
		}
	}
	if c.Sign() == 0 {
		return Const(0)
	}
	if len(flat) == 0 {
		return Num{c}
	}
	// Distribute a constant over a single Add factor: 3*(a+b) -> 3a+3b.
	// This keeps count expressions in expanded (collectible) form.
	if len(flat) == 1 {
		if add, ok := flat[0].(Add); ok && !c.Equal(rational.One) {
			terms := make([]Expr, len(add.Terms))
			for i, t := range add.Terms {
				terms[i] = NewMul(Num{c}, t)
			}
			return NewAdd(terms...)
		}
	}
	if !c.Equal(rational.One) {
		flat = append([]Expr{Num{c}}, flat...)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	sortExprs(flat[boolToInt(!c.Equal(rational.One)):])
	return Mul{Factors: flat}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// NewSub returns a - b.
func NewSub(a, b Expr) Expr { return NewAdd(a, NewMul(Const(-1), b)) }

// NewNeg returns -a.
func NewNeg(a Expr) Expr { return NewMul(Const(-1), a) }

// NewFloorDiv returns floor(x / d) for nonzero constant d.
func NewFloorDiv(x Expr, d rational.Rat) Expr {
	if d.Sign() == 0 {
		panic("expr: floor division by zero")
	}
	if d.Equal(rational.One) {
		// floor of an integer-valued expression; count expressions are
		// integer-valued by construction.
		return x
	}
	if n, ok := x.(Num); ok {
		return Num{n.Val.FloorDiv(d)}
	}
	return FloorDiv{X: x, D: d}
}

// NewMin returns min(a, b), folding constants.
func NewMin(a, b Expr) Expr {
	na, oka := a.(Num)
	nb, okb := b.(Num)
	if oka && okb {
		return Num{na.Val.Min(nb.Val)}
	}
	if a.String() == b.String() {
		return a
	}
	return Min{A: a, B: b}
}

// NewMax returns max(a, b), folding constants.
func NewMax(a, b Expr) Expr {
	na, oka := a.(Num)
	nb, okb := b.(Num)
	if oka && okb {
		return Num{na.Val.Max(nb.Val)}
	}
	if a.String() == b.String() {
		return a
	}
	return Max{A: a, B: b}
}

// NewSum returns sum_{v=lo}^{hi} body, simplified:
//
//   - empty or single-point ranges fold,
//   - a body independent of v becomes trips(lo,hi) * body,
//   - a polynomial body is replaced by its Faulhaber closed form,
//   - otherwise a Sum node remains and evaluation enumerates the range.
func NewSum(v string, lo, hi, body Expr) Expr {
	if IsZero(body) {
		return Const(0)
	}
	if cl, okl := ConstVal(lo); okl {
		if ch, okh := ConstVal(hi); okh {
			if ch.Cmp(cl) < 0 {
				return Const(0)
			}
			if ch.Equal(cl) {
				return Substitute(body, v, Num{cl})
			}
		}
	}
	if !DependsOn(body, v) {
		trips := NewAdd(NewSub(hi, lo), Const(1))
		return NewMul(trips, body)
	}
	// Try the polynomial (Faulhaber) closed form.
	if closed, ok := sumPolynomial(v, lo, hi, body); ok {
		return closed
	}
	return Sum{Var: v, Lo: lo, Hi: hi, Body: body}
}

// Trips returns the count of v in [lo, hi] stepping by step (> 0), clamped
// at zero: max(0, floor((hi-lo)/step) + 1).
func Trips(lo, hi Expr, step int64) Expr {
	if step <= 0 {
		panic("expr: Trips requires positive step")
	}
	span := NewSub(hi, lo)
	var trips Expr
	if step == 1 {
		trips = NewAdd(span, Const(1))
	} else {
		trips = NewAdd(NewFloorDiv(span, rational.FromInt(step)), Const(1))
	}
	return NewMax(Const(0), trips)
}

// DependsOn reports whether e references the variable or parameter name.
func DependsOn(e Expr, name string) bool {
	switch x := e.(type) {
	case Num:
		return false
	case Param:
		return x.Name == name
	case Var:
		return x.Name == name
	case Add:
		for _, t := range x.Terms {
			if DependsOn(t, name) {
				return true
			}
		}
	case Mul:
		for _, f := range x.Factors {
			if DependsOn(f, name) {
				return true
			}
		}
	case FloorDiv:
		return DependsOn(x.X, name)
	case Min:
		return DependsOn(x.A, name) || DependsOn(x.B, name)
	case Max:
		return DependsOn(x.A, name) || DependsOn(x.B, name)
	case Sum:
		if DependsOn(x.Lo, name) || DependsOn(x.Hi, name) {
			return true
		}
		if x.Var == name {
			return false // shadowed
		}
		return DependsOn(x.Body, name)
	}
	return false
}

// Substitute replaces every occurrence of the variable or parameter name
// with repl, rebuilding (and thus re-simplifying) the tree.
func Substitute(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case Num:
		return x
	case Param:
		if x.Name == name {
			return repl
		}
		return x
	case Var:
		if x.Name == name {
			return repl
		}
		return x
	case Add:
		terms := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = Substitute(t, name, repl)
		}
		return NewAdd(terms...)
	case Mul:
		fs := make([]Expr, len(x.Factors))
		for i, f := range x.Factors {
			fs[i] = Substitute(f, name, repl)
		}
		return NewMul(fs...)
	case FloorDiv:
		return NewFloorDiv(Substitute(x.X, name, repl), x.D)
	case Min:
		return NewMin(Substitute(x.A, name, repl), Substitute(x.B, name, repl))
	case Max:
		return NewMax(Substitute(x.A, name, repl), Substitute(x.B, name, repl))
	case Sum:
		lo := Substitute(x.Lo, name, repl)
		hi := Substitute(x.Hi, name, repl)
		body := x.Body
		if x.Var != name {
			body = Substitute(body, name, repl)
		}
		return NewSum(x.Var, lo, hi, body)
	}
	return e
}

// SubstituteAll replaces every parameter or variable named in repl with
// its mapped expression, simultaneously: replacement expressions are
// never re-examined for further substitution, so a swap like
// {a: b, b: a} is safe. Summation variables shadow: beneath a Sum that
// binds a name in repl, that name is left alone in the body (bounds are
// evaluated in the outer scope, exactly like evalSum). Capture is
// avoided: when a replacement expression's free names include a Sum's
// bound variable, the bound variable is alpha-renamed first, so the
// replacement keeps referring to the outer binding. The tree is rebuilt
// through the smart constructors, so the result re-simplifies.
//
// This is the primitive symbolic inlining stands on: a callee's
// expressions are rewritten into the caller's parameter space by
// substituting the whole argument-binding environment at once, which
// sequential Substitute calls would corrupt whenever an argument
// expression mentions another parameter being bound in the same call.
func SubstituteAll(e Expr, repl map[string]Expr) Expr {
	if len(repl) == 0 {
		return e
	}
	switch x := e.(type) {
	case Num:
		return x
	case Param:
		if r, ok := repl[x.Name]; ok {
			return r
		}
		return x
	case Var:
		// Evaluation resolves Param and Var through one namespace, so
		// substitution must too.
		if r, ok := repl[x.Name]; ok {
			return r
		}
		return x
	case Add:
		terms := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = SubstituteAll(t, repl)
		}
		return NewAdd(terms...)
	case Mul:
		fs := make([]Expr, len(x.Factors))
		for i, f := range x.Factors {
			fs[i] = SubstituteAll(f, repl)
		}
		return NewMul(fs...)
	case FloorDiv:
		return NewFloorDiv(SubstituteAll(x.X, repl), x.D)
	case Min:
		return NewMin(SubstituteAll(x.A, repl), SubstituteAll(x.B, repl))
	case Max:
		return NewMax(SubstituteAll(x.A, repl), SubstituteAll(x.B, repl))
	case Sum:
		lo := SubstituteAll(x.Lo, repl)
		hi := SubstituteAll(x.Hi, repl)
		bound, body := x.Var, x.Body
		// The bound variable shadows any replacement of the same name
		// inside the body (bounds are outer-scope, already handled).
		inner := repl
		if _, shadowed := repl[bound]; shadowed {
			inner = make(map[string]Expr, len(repl)-1)
			for k, v := range repl {
				if k != bound {
					inner[k] = v
				}
			}
		}
		if len(inner) == 0 {
			return NewSum(bound, lo, hi, body)
		}
		// Capture avoidance: evaluation resolves the summation index and
		// parameters through one namespace, so a replacement that freely
		// mentions the bound name would be hijacked by the index. Rename
		// the bound variable out of the way first.
		captures := false
		for _, r := range inner {
			if DependsOn(r, bound) {
				captures = true
				break
			}
		}
		if captures {
			avoid := map[string]bool{}
			collectNames(body, avoid)
			for k, r := range inner {
				avoid[k] = true
				collectNames(r, avoid)
			}
			fresh := freshName(bound, avoid)
			body = SubstituteAll(body, map[string]Expr{bound: V(fresh)})
			bound = fresh
		}
		return NewSum(bound, lo, hi, SubstituteAll(body, inner))
	}
	return e
}

// collectNames adds every name e mentions — parameters, variables,
// summation binders — to set.
func collectNames(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case Param:
		set[x.Name] = true
	case Var:
		set[x.Name] = true
	case Add:
		for _, t := range x.Terms {
			collectNames(t, set)
		}
	case Mul:
		for _, f := range x.Factors {
			collectNames(f, set)
		}
	case FloorDiv:
		collectNames(x.X, set)
	case Min:
		collectNames(x.A, set)
		collectNames(x.B, set)
	case Max:
		collectNames(x.A, set)
		collectNames(x.B, set)
	case Sum:
		set[x.Var] = true
		collectNames(x.Lo, set)
		collectNames(x.Hi, set)
		collectNames(x.Body, set)
	}
}

// freshName derives a name based on base that is absent from avoid.
func freshName(base string, avoid map[string]bool) string {
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s#%d", base, i)
		if !avoid[cand] {
			return cand
		}
	}
}

// Params returns the free parameter names of e, sorted.
func Params(e Expr) []string {
	set := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Param:
			set[x.Name] = true
		case Add:
			for _, t := range x.Terms {
				walk(t)
			}
		case Mul:
			for _, f := range x.Factors {
				walk(f)
			}
		case FloorDiv:
			walk(x.X)
		case Min:
			walk(x.A)
			walk(x.B)
		case Max:
			walk(x.A)
			walk(x.B)
		case Sum:
			walk(x.Lo)
			walk(x.Hi)
			walk(x.Body)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func sortExprs(es []Expr) {
	sort.SliceStable(es, func(i, j int) bool {
		return exprSortKey(es[i]) < exprSortKey(es[j])
	})
}

// exprSortKey orders constants first, then lexicographically.
func exprSortKey(e Expr) string {
	if _, ok := e.(Num); ok {
		return "0" // constants first
	}
	return "1" + e.String()
}

// ---------------------------------------------------------------------------
// Rendering

func (e Num) String() string   { return e.Val.String() }
func (e Param) String() string { return e.Name }
func (e Var) String() string   { return e.Name }

func (e Add) String() string {
	parts := make([]string, len(e.Terms))
	for i, t := range e.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

func (e Mul) String() string {
	parts := make([]string, len(e.Factors))
	for i, f := range e.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, "*")
}

func (e FloorDiv) String() string {
	return fmt.Sprintf("floor(%s / %s)", e.X, e.D)
}

func (e Min) String() string { return fmt.Sprintf("min(%s, %s)", e.A, e.B) }
func (e Max) String() string { return fmt.Sprintf("max(%s, %s)", e.A, e.B) }

func (e Sum) String() string {
	return fmt.Sprintf("sum(%s=%s..%s)[%s]", e.Var, e.Lo, e.Hi, e.Body)
}

// Equal reports structural equality after simplification.
func Equal(a, b Expr) bool { return a.String() == b.String() }
