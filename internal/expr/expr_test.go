package expr

import (
	"testing"

	"mira/internal/rational"
)

func evalInt(t *testing.T, e Expr, env Env) int64 {
	t.Helper()
	v, err := EvalInt64(e, env)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestConstFolding(t *testing.T) {
	e := NewAdd(Const(2), Const(3), NewMul(Const(2), Const(5)))
	if got := evalInt(t, e, nil); got != 15 {
		t.Errorf("2+3+2*5 = %d", got)
	}
	if _, ok := e.(Num); !ok {
		t.Errorf("constant expression not folded: %s", e)
	}
}

func TestLikeTermCollection(t *testing.T) {
	n := P("n")
	e := NewAdd(n, n, NewMul(Const(3), n))
	// 5n
	env := EnvFromInts(map[string]int64{"n": 7})
	if got := evalInt(t, e, env); got != 35 {
		t.Errorf("n+n+3n at n=7 = %d", got)
	}
	if m, ok := e.(Mul); !ok || len(m.Factors) != 2 {
		t.Errorf("like terms not collected: %s", e)
	}
}

func TestMulByZero(t *testing.T) {
	e := NewMul(Const(0), P("n"))
	if !IsZero(e) {
		t.Errorf("0*n = %s", e)
	}
}

func TestSubNeg(t *testing.T) {
	e := NewSub(P("a"), P("a"))
	if !IsZero(e) {
		t.Errorf("a-a = %s", e)
	}
	e = NewNeg(Const(4))
	if got := evalInt(t, e, nil); got != -4 {
		t.Errorf("-4 = %d", got)
	}
}

func TestDistributeConstOverAdd(t *testing.T) {
	// 3*(n+1) should expand so that like-term collection can work later.
	e := NewMul(Const(3), NewAdd(P("n"), Const(1)))
	env := EnvFromInts(map[string]int64{"n": 5})
	if got := evalInt(t, e, env); got != 18 {
		t.Errorf("3*(n+1) at n=5 = %d", got)
	}
	e2 := NewAdd(e, NewMul(Const(-3), P("n")))
	if got := evalInt(t, e2, env); got != 3 {
		t.Errorf("3*(n+1)-3n = %d", got)
	}
	if _, ok := e2.(Num); !ok {
		t.Errorf("3*(n+1)-3n not folded to constant: %s", e2)
	}
}

func TestFloorDiv(t *testing.T) {
	e := NewFloorDiv(P("n"), rational.FromInt(4))
	env := EnvFromInts(map[string]int64{"n": 11})
	if got := evalInt(t, e, env); got != 2 {
		t.Errorf("floor(11/4) = %d", got)
	}
	// Constant folding.
	c := NewFloorDiv(Const(-7), rational.FromInt(2))
	if got := evalInt(t, c, nil); got != -4 {
		t.Errorf("floor(-7/2) = %d", got)
	}
}

func TestMinMaxFolding(t *testing.T) {
	if got := evalInt(t, NewMin(Const(3), Const(8)), nil); got != 3 {
		t.Errorf("min = %d", got)
	}
	if got := evalInt(t, NewMax(Const(3), Const(8)), nil); got != 8 {
		t.Errorf("max = %d", got)
	}
	// Identical expressions fold.
	if _, ok := NewMax(P("n"), P("n")).(Param); !ok {
		t.Error("max(n,n) not folded")
	}
}

func TestTrips(t *testing.T) {
	// for (i = 0; i <= n-1; i++) — n trips.
	e := Trips(Const(0), NewSub(P("n"), Const(1)), 1)
	env := EnvFromInts(map[string]int64{"n": 100})
	if got := evalInt(t, e, env); got != 100 {
		t.Errorf("trips = %d", got)
	}
	// Empty range clamps to zero.
	env = EnvFromInts(map[string]int64{"n": 0})
	if got := evalInt(t, e, env); got != 0 {
		t.Errorf("trips(empty) = %d", got)
	}
	// Strided: for (i = 0; i <= 10; i += 3) -> 0,3,6,9 = 4.
	e = Trips(Const(0), Const(10), 3)
	if got := evalInt(t, e, nil); got != 4 {
		t.Errorf("strided trips = %d", got)
	}
}

func TestSumIndependentBody(t *testing.T) {
	// sum_{i=1}^{n} 5 = 5n; must simplify away the Sum node.
	e := NewSum("i", Const(1), P("n"), Const(5))
	if _, ok := e.(Sum); ok {
		t.Errorf("independent-body sum not simplified: %s", e)
	}
	env := EnvFromInts(map[string]int64{"n": 12})
	if got := evalInt(t, e, env); got != 60 {
		t.Errorf("sum = %d", got)
	}
}

func TestSumFaulhaberLinear(t *testing.T) {
	// The paper's Listing 2 count: sum_{i=1}^{4} (6 - i) = 5+4+3+2 = 14.
	body := NewSub(Const(6), V("i"))
	e := NewSum("i", Const(1), Const(4), body)
	if got := evalInt(t, e, nil); got != 14 {
		t.Errorf("triangular count = %d, want 14", got)
	}
	if _, ok := e.(Num); !ok {
		t.Errorf("concrete triangular sum not folded: %s", e)
	}
}

func TestSumFaulhaberParametric(t *testing.T) {
	// sum_{i=0}^{n-1} (i+1) = n(n+1)/2, evaluated in O(1).
	e := NewSum("i", Const(0), NewSub(P("n"), Const(1)), NewAdd(V("i"), Const(1)))
	if _, ok := e.(Sum); ok {
		t.Fatalf("parametric triangular sum not closed: %s", e)
	}
	for _, n := range []int64{1, 2, 10, 1000, 100000000} {
		env := EnvFromInts(map[string]int64{"n": n})
		want := n * (n + 1) / 2
		if got := evalInt(t, e, env); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestSumQuadratic(t *testing.T) {
	// sum_{i=1}^{n} i^2 = n(n+1)(2n+1)/6.
	e := NewSum("i", Const(1), P("n"), NewMul(V("i"), V("i")))
	if _, ok := e.(Sum); ok {
		t.Fatalf("quadratic sum not closed: %s", e)
	}
	env := EnvFromInts(map[string]int64{"n": 100})
	if got := evalInt(t, e, env); got != 338350 {
		t.Errorf("sum i^2 = %d, want 338350", got)
	}
}

func TestNestedSumClosedForm(t *testing.T) {
	// sum_{i=1}^{m} sum_{j=i+1}^{n} 1 = sum (n - i) = m*n - m(m+1)/2.
	inner := NewSum("j", NewAdd(V("i"), Const(1)), P("n"), Const(1))
	outer := NewSum("i", Const(1), P("m"), inner)
	if _, ok := outer.(Sum); ok {
		t.Fatalf("nested sum not closed: %s", outer)
	}
	env := EnvFromInts(map[string]int64{"m": 4, "n": 6})
	// Listing 2: i in 1..4, j in i+1..6: 5+4+3+2 = 14.
	if got := evalInt(t, outer, env); got != 14 {
		t.Errorf("nested = %d, want 14", got)
	}
}

func TestSumWithMaxGuardRemainsAndEvaluates(t *testing.T) {
	// Body with a Max guard cannot close; enumeration must still be exact.
	body := NewMax(Const(0), NewSub(P("n"), V("i")))
	e := NewSum("i", Const(1), Const(10), body)
	if _, ok := e.(Sum); !ok {
		t.Fatalf("guarded sum unexpectedly closed: %s", e)
	}
	env := EnvFromInts(map[string]int64{"n": 5})
	// i=1..10 of max(0, 5-i) = 4+3+2+1+0+... = 10.
	if got := evalInt(t, e, env); got != 10 {
		t.Errorf("guarded sum = %d, want 10", got)
	}
}

func TestSumEmptyRange(t *testing.T) {
	e := NewSum("i", Const(5), Const(1), V("i"))
	if !IsZero(e) {
		t.Errorf("empty sum = %s", e)
	}
}

func TestSumSinglePoint(t *testing.T) {
	e := NewSum("i", Const(3), Const(3), NewMul(V("i"), V("i")))
	if got := evalInt(t, e, nil); got != 9 {
		t.Errorf("single-point sum = %d", got)
	}
}

func TestSumRangeLimit(t *testing.T) {
	e := Sum{Var: "i", Lo: Const(0), Hi: Const(1 << 40), Body: NewMax(V("i"), Const(0))}
	_, err := EvalWith(e, nil, EvalOptions{MaxSumRange: 1000})
	if err == nil {
		t.Error("no error for oversized enumeration")
	}
}

func TestDependsOnAndShadowing(t *testing.T) {
	inner := Sum{Var: "i", Lo: Const(0), Hi: P("n"), Body: NewMax(V("i"), Const(0))}
	if DependsOn(inner, "i") {
		t.Error("bound variable reported as dependency")
	}
	if !DependsOn(inner, "n") {
		t.Error("free parameter not reported")
	}
}

func TestSubstitute(t *testing.T) {
	e := NewAdd(NewMul(Const(2), P("x")), Const(1))
	got := Substitute(e, "x", Const(10))
	if v := evalInt(t, got, nil); v != 21 {
		t.Errorf("2x+1 at x=10 = %d", v)
	}
	// Substitution re-simplifies.
	if _, ok := got.(Num); !ok {
		t.Errorf("substituted expression not folded: %s", got)
	}
}

func TestParams(t *testing.T) {
	e := NewAdd(P("b"), NewMul(P("a"), V("i")), NewSum("j", Const(0), P("c"), NewMax(V("j"), Const(0))))
	ps := Params(e)
	want := []string{"a", "b", "c"}
	if len(ps) != len(want) {
		t.Fatalf("params = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("params[%d] = %s, want %s", i, ps[i], want[i])
		}
	}
}

func TestUnboundParamError(t *testing.T) {
	if _, err := Eval(P("mystery"), nil); err == nil {
		t.Error("no error for unbound parameter")
	}
}

func TestPythonEmission(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Const(5), "5"},
		{P("n"), "n"},
		{NewAdd(P("n"), Const(1)), "(1 + n)"},
		{NewMul(Const(2), P("n")), "2*n"},
		{NewFloorDiv(P("n"), rational.FromInt(3)), "((n) // 3)"},
		{NewMax(Const(0), P("n")), "max(0, n)"},
	}
	for _, c := range cases {
		if got := Python(c.e); got != c.want {
			t.Errorf("Python(%s) = %q, want %q", c.e, got, c.want)
		}
	}
	// Sum renders as a generator.
	s := Sum{Var: "i", Lo: Const(0), Hi: P("n"), Body: NewMax(V("i"), Const(0))}
	py := Python(s)
	if py != "sum((max(i, 0)) for i in range(0, (n) + 1))" {
		t.Errorf("Python(sum) = %q", py)
	}
}

func TestEqual(t *testing.T) {
	a := NewAdd(P("x"), Const(1))
	b := NewAdd(Const(1), P("x"))
	if !Equal(a, b) {
		t.Errorf("%s != %s", a, b)
	}
}

func TestSubstituteAllSimultaneous(t *testing.T) {
	// {a: b, b: a} must swap, not chain.
	e := NewAdd(NewMul(Const(2), P("a")), P("b"))
	got := SubstituteAll(e, map[string]Expr{"a": P("b"), "b": P("a")})
	v, err := Eval(got, Env{"a": rational.FromInt(100), "b": rational.FromInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	// 2*b + a at a=100, b=1 = 102.
	if n, _ := v.Int64(); n != 102 {
		t.Errorf("swap substitution = %s, want 102", v)
	}
}

func TestSubstituteAllShadowing(t *testing.T) {
	// sum(i=0..n-1)[i] with repl {i: 99}: the bound i shadows.
	s := Sum{Var: "i", Lo: Const(0), Hi: NewSub(P("n"), Const(1)),
		Body: NewFloorDiv(V("i"), rational.FromInt(1).Add(rational.FromFrac(1, 2)))}
	got := SubstituteAll(s, map[string]Expr{"i": Const(99)})
	a, err := Eval(got, Env{"n": rational.FromInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(s, Env{"n": rational.FromInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("shadowed substitution changed value: %s != %s", a, b)
	}
}

// TestSubstituteAllCaptureAvoidance: substituting a replacement whose
// free name equals the Sum's bound variable must alpha-rename, not
// capture (evaluation resolves the index and parameters through one
// namespace).
func TestSubstituteAllCaptureAvoidance(t *testing.T) {
	// sum(k=0..m-1)[floor((m-k)/2)]; FloorDiv keeps the Sum alive.
	s := NewSum("k", Const(0), NewSub(P("m"), Const(1)),
		NewFloorDiv(NewSub(P("m"), V("k")), rational.FromInt(2)))
	if _, ok := s.(Sum); !ok {
		t.Fatalf("setup: sum folded to %s", s)
	}
	// m -> k (the caller's parameter happens to be named k).
	got := SubstituteAll(s, map[string]Expr{"m": P("k")})
	want, err := Eval(s, Env{"m": rational.FromInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Eval(got, Env{"k": rational.FromInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Errorf("captured: subst eval = %s, direct eval = %s", g, want)
	}
}
