package expr

import (
	"fmt"
	"strings"
)

// Python renders e as a Python expression, the notation the paper's
// generated models use (Fig. 5). Floor division uses //; unresolved
// summations become generator expressions over range().
func Python(e Expr) string {
	switch x := e.(type) {
	case Num:
		return x.Val.PythonString()
	case Param:
		return x.Name
	case Var:
		return x.Name
	case Add:
		parts := make([]string, len(x.Terms))
		for i, t := range x.Terms {
			parts[i] = Python(t)
		}
		return "(" + strings.Join(parts, " + ") + ")"
	case Mul:
		parts := make([]string, len(x.Factors))
		for i, f := range x.Factors {
			parts[i] = Python(f)
		}
		return strings.Join(parts, "*")
	case FloorDiv:
		if x.D.IsInt() {
			return fmt.Sprintf("((%s) // %s)", Python(x.X), x.D)
		}
		// floor(X / (p/q)) == floor(X*q / p); X is integer-valued here.
		p, q := x.D.NumDen()
		return fmt.Sprintf("((%s) * %d // %d)", Python(x.X), q, p)
	case Min:
		return fmt.Sprintf("min(%s, %s)", Python(x.A), Python(x.B))
	case Max:
		return fmt.Sprintf("max(%s, %s)", Python(x.A), Python(x.B))
	case Sum:
		return fmt.Sprintf("sum((%s) for %s in range(%s, (%s) + 1))",
			Python(x.Body), x.Var, Python(x.Lo), Python(x.Hi))
	}
	return "0"
}
