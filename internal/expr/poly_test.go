package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mira/internal/rational"
)

func TestBernoulliNumbers(t *testing.T) {
	b := bernoulliPlus(8)
	want := []rational.Rat{
		rational.FromInt(1),
		rational.FromFrac(1, 2),
		rational.FromFrac(1, 6),
		rational.Zero,
		rational.FromFrac(-1, 30),
		rational.Zero,
		rational.FromFrac(1, 42),
		rational.Zero,
		rational.FromFrac(-1, 30),
	}
	for i := range want {
		if !b[i].Equal(want[i]) {
			t.Errorf("B+_%d = %s, want %s", i, b[i], want[i])
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {6, 0, 1}, {6, 6, 1}, {10, 3, 120}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		got, _ := binomial(c.n, c.k).Int64()
		if got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// TestFaulhaberMatchesEnumeration is the central property test: for every
// power k and range [lo,hi], the Faulhaber closed form equals brute-force
// enumeration.
func TestFaulhaberMatchesEnumeration(t *testing.T) {
	for k := 0; k <= 6; k++ {
		e := NewSum("v", P("lo"), P("hi"), powExpr("v", k))
		if _, isSum := e.(Sum); isSum {
			t.Fatalf("k=%d: sum not closed: %s", k, e)
		}
		for lo := int64(-4); lo <= 4; lo++ {
			for hi := lo - 1; hi <= 8; hi++ {
				env := EnvFromInts(map[string]int64{"lo": lo, "hi": hi})
				got := evalInt(t, e, env)
				var want int64
				for v := lo; v <= hi; v++ {
					p := int64(1)
					for i := 0; i < k; i++ {
						p *= v
					}
					want += p
				}
				if got != want {
					t.Errorf("k=%d lo=%d hi=%d: closed=%d brute=%d", k, lo, hi, got, want)
				}
			}
		}
	}
}

func powExpr(v string, k int) Expr {
	e := Expr(Const(1))
	for i := 0; i < k; i++ {
		e = NewMul(e, V(v))
	}
	return e
}

// TestRandomPolynomialSums cross-checks closed-form summation of random
// polynomials against enumeration (property-based).
func TestRandomPolynomialSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		deg := rng.Intn(4)
		coeffs := make([]int64, deg+1)
		for i := range coeffs {
			coeffs[i] = int64(rng.Intn(11) - 5)
		}
		var body Expr = Const(0)
		for k, c := range coeffs {
			body = NewAdd(body, NewMul(Const(c), powExpr("v", k)))
		}
		lo := int64(rng.Intn(9) - 4)
		hi := lo + int64(rng.Intn(10)) - 1 // may be lo-1 (empty)
		closed := NewSum("v", Const(lo), Const(hi), body)
		if _, isSum := closed.(Sum); isSum {
			t.Fatalf("trial %d: not closed: %s", trial, closed)
		}
		got := evalInt(t, closed, nil)
		var want int64
		for v := lo; v <= hi; v++ {
			var pv int64
			vp := int64(1)
			for _, c := range coeffs {
				pv += c * vp
				vp *= v
			}
			want += pv
		}
		if got != want {
			t.Errorf("trial %d (deg %d, lo %d, hi %d): closed=%d brute=%d",
				trial, deg, lo, hi, got, want)
		}
	}
}

func TestPolyRoundTrip(t *testing.T) {
	// (n+1)^2 expands to n^2 + 2n + 1.
	np1 := NewAdd(P("n"), Const(1))
	sq := NewMul(np1, np1)
	p, ok := toPoly(sq)
	if !ok {
		t.Fatal("toPoly failed")
	}
	back := p.toExpr()
	for n := int64(-3); n <= 3; n++ {
		env := EnvFromInts(map[string]int64{"n": n})
		a := evalInt(t, sq, env)
		b := evalInt(t, back, env)
		if a != b {
			t.Errorf("n=%d: %d != %d", n, a, b)
		}
	}
}

func TestToPolyRejectsNonPolynomial(t *testing.T) {
	if _, ok := toPoly(NewMax(P("a"), P("b"))); ok {
		t.Error("max treated as polynomial")
	}
	if _, ok := toPoly(NewFloorDiv(P("a"), rational.FromInt(2))); ok {
		t.Error("floordiv treated as polynomial")
	}
}

func TestDegreeLimit(t *testing.T) {
	// Degree beyond maxFaulhaberDegree must fall back to a Sum node.
	body := powExpr("v", maxFaulhaberDegree+1)
	e := NewSum("v", Const(1), P("n"), body)
	if _, isSum := e.(Sum); !isSum {
		t.Errorf("over-degree sum closed unexpectedly: %T", e)
	}
}

func TestQuickSumLinear(t *testing.T) {
	// Property: sum_{v=1}^{n} (a*v + b) == a*n(n+1)/2 + b*n for n >= 0.
	f := func(a, b int16, nRaw uint8) bool {
		n := int64(nRaw % 50)
		body := NewAdd(NewMul(Const(int64(a)), V("v")), Const(int64(b)))
		e := NewSum("v", Const(1), P("n"), body)
		env := EnvFromInts(map[string]int64{"n": n})
		got, err := EvalInt64(e, env)
		if err != nil {
			return false
		}
		want := int64(a)*n*(n+1)/2 + int64(b)*n
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
