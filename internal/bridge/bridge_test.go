package bridge_test

import (
	"testing"

	"mira/internal/bridge"
	"mira/internal/cc"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
)

func compile(t *testing.T, src string) *objfile.File {
	t.Helper()
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestStatementToInstructionMapping(t *testing.T) {
	// One source statement maps to several instructions (paper
	// Sec. III-A2); positions separate the for header's clauses.
	src := "double f(int n) {\n" + // line 1
		"\tdouble s;\n" + // 2
		"\tint i;\n" + // 3
		"\ts = 0.0;\n" + // 4
		"\tfor (i = 0; i < n; i++) {\n" + // 5: init col 7, cond col 14, post col 21
		"\t\ts = s + 1.0;\n" + // 6
		"\t}\n" +
		"\treturn s;\n" + // 8
		"}\n"
	obj := compile(t, src)
	br := bridge.Build(obj)
	fb, ok := br.Func("f")
	if !ok {
		t.Fatal("no bridge for f")
	}

	// The FP statement on line 6 contains exactly one ADDSD plus its
	// movsd traffic.
	body := fb.At(6, 3)
	if body == nil {
		t.Fatalf("no site at 6:3; positions = %v", fb.Positions())
	}
	if body.ByOpcode[ir.ADDSD] != 1 {
		t.Errorf("ADDSD at body = %d, want 1", body.ByOpcode[ir.ADDSD])
	}
	if body.ByCategory[ir.CatSSEMove] == 0 {
		t.Error("no SSE2 movement at FP statement")
	}

	// The for header occupies three distinct column sites on line 5.
	var headerSites int
	for _, p := range fb.Positions() {
		if p.Line == 5 {
			headerSites++
		}
	}
	if headerSites != 3 {
		t.Errorf("header sites = %d, want 3 (init/cond/post)", headerSites)
	}

	// The condition site holds the compare and conditional jump.
	cond := fb.At(5, 14)
	if cond == nil || cond.ByOpcode[ir.CMP] != 1 {
		t.Errorf("cond site = %+v", cond)
	}
	// The post site holds the increment and the back jump.
	post := fb.At(5, 21)
	if post == nil || post.ByOpcode[ir.INC] != 1 || post.ByOpcode[ir.JMP] != 1 {
		t.Errorf("post site = %+v", post)
	}
}

func TestCallTargets(t *testing.T) {
	src := `
double g(double x) { return x * 2.0; }
double f(double x) {
	return g(x) + g(x);
}`
	obj := compile(t, src)
	br := bridge.Build(obj)
	targets := br.CallTargets("f")
	total := 0
	for _, callees := range targets {
		for _, c := range callees {
			if c != "g" {
				t.Errorf("unexpected callee %q", c)
			}
			total++
		}
	}
	if total != 2 {
		t.Errorf("call count = %d, want 2", total)
	}
}

func TestEveryInstructionAttributed(t *testing.T) {
	obj := compile(t, `
double f(int n) {
	double a[n];
	int i;
	for (i = 0; i < n; i++) { a[i] = i; }
	return a[0];
}`)
	br := bridge.Build(obj)
	fb, _ := br.Func("f")
	var total int64
	for _, p := range fb.Positions() {
		sc := fb.At(int(p.Line), int(p.Col))
		total += sc.Instrs
	}
	sym, _ := obj.LookupSym("f")
	if total != int64(sym.Count) {
		t.Errorf("attributed %d instructions, symbol has %d", total, sym.Count)
	}
}
