// Package bridge connects the source AST to the binary AST through the
// line table, the mechanism the paper adopts from debuggers (Sec. III-A2):
// one source statement maps to several binary instructions, and an
// instruction maps back to exactly one source position.
//
// Positions are (line, column) pairs, not just lines: the compiler tags
// the init/cond/increment clauses of a for header — which share a line —
// with their distinct columns, and the metric generator assigns each group
// a different execution multiplicity.
package bridge

import (
	"sort"

	"mira/internal/ir"
	"mira/internal/objfile"
)

// Pos is a source coordinate.
type Pos struct {
	Line int32
	Col  int32
}

// SiteCounts aggregates the instructions attributed to one source position
// within one function.
type SiteCounts struct {
	Pos        Pos
	ByCategory [ir.NumCategories]int64
	ByOpcode   map[ir.Op]int64
	Flops      int64
	Instrs     int64
}

// FuncBridge maps source positions to instruction groups for one function.
type FuncBridge struct {
	Sym   *objfile.Symbol
	Sites map[Pos]*SiteCounts
}

// Bridge holds per-function position maps for a whole object file.
type Bridge struct {
	obj   *objfile.File
	funcs map[string]*FuncBridge
}

// Build constructs the bridge for an object file.
func Build(obj *objfile.File) *Bridge {
	b := &Bridge{obj: obj, funcs: map[string]*FuncBridge{}}
	for i := range obj.Syms {
		sym := &obj.Syms[i]
		fb := &FuncBridge{Sym: sym, Sites: map[Pos]*SiteCounts{}}
		text := obj.FuncText(sym)
		for idx, in := range text {
			addr := sym.Start + uint64(idx)
			var pos Pos
			if obj.Line != nil {
				if row, ok := obj.Line.Lookup(addr); ok {
					pos = Pos{Line: row.Line, Col: row.Col}
				}
			}
			sc, ok := fb.Sites[pos]
			if !ok {
				sc = &SiteCounts{Pos: pos, ByOpcode: map[ir.Op]int64{}}
				fb.Sites[pos] = sc
			}
			sc.ByCategory[in.Op.Cat()]++
			sc.ByOpcode[in.Op]++
			sc.Flops += int64(in.Op.Flops())
			sc.Instrs++
		}
		b.funcs[sym.Name] = fb
	}
	return b
}

// Func returns the per-function bridge for a qualified name.
func (b *Bridge) Func(name string) (*FuncBridge, bool) {
	fb, ok := b.funcs[name]
	return fb, ok
}

// At returns the instruction group at an exact source position, or nil.
func (fb *FuncBridge) At(line, col int) *SiteCounts {
	return fb.Sites[Pos{Line: int32(line), Col: int32(col)}]
}

// Positions returns every position with attributed instructions, sorted.
func (fb *FuncBridge) Positions() []Pos {
	out := make([]Pos, 0, len(fb.Sites))
	for p := range fb.Sites {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// CallTargets returns, per position, the callee symbol names invoked by
// CALL instructions attributed there (in instruction order).
func (b *Bridge) CallTargets(name string) map[Pos][]string {
	fb, ok := b.funcs[name]
	if !ok {
		return nil
	}
	out := map[Pos][]string{}
	sym := fb.Sym
	text := b.obj.FuncText(sym)
	for idx, in := range text {
		if in.Op != ir.CALL {
			continue
		}
		addr := sym.Start + uint64(idx)
		var pos Pos
		if b.obj.Line != nil {
			if row, ok := b.obj.Line.Lookup(addr); ok {
				pos = Pos{Line: row.Line, Col: row.Col}
			}
		}
		callee := int(in.Imm)
		if callee >= 0 && callee < len(b.obj.Syms) {
			out[pos] = append(out[pos], b.obj.Syms[callee].Name)
		}
	}
	return out
}
