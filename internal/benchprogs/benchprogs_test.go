package benchprogs_test

import (
	"strings"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/vm"
)

// TestAllSourcesAnalyze: every embedded workload goes through the full
// pipeline without errors.
func TestAllSourcesAnalyze(t *testing.T) {
	srcs := map[string]string{
		"stream":   benchprogs.Stream,
		"dgemm":    benchprogs.Dgemm,
		"minife":   benchprogs.MiniFE,
		"fig5":     benchprogs.Fig5,
		"listing1": benchprogs.Listing1,
		"listing2": benchprogs.Listing2,
		"listing4": benchprogs.Listing4,
		"listing5": benchprogs.Listing5,
		"ablation": benchprogs.Ablation,
	}
	for name, src := range srcs {
		if _, err := core.Analyze(name+".c", src, core.Options{}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestListingsExecuteAndValidate: the paper's listing kernels produce the
// known lattice-point counts both dynamically and statically.
func TestListingsExecuteAndValidate(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		entry string
		want  float64 // accumulated 1.0 per innermost visit
	}{
		{"listing1", benchprogs.Listing1, "listing1", 10},
		{"listing2", benchprogs.Listing2, "listing2", 14},
		{"listing4", benchprogs.Listing4, "listing4", 8},
		{"listing5", benchprogs.Listing5, "listing5", 11},
	}
	for _, c := range cases {
		p, err := core.Analyze(c.name+".c", c.src, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		m := p.NewMachine()
		v, err := m.Run(c.entry)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if v.F != c.want {
			t.Errorf("%s: result = %g, want %g", c.name, v.F, c.want)
		}
		// Static FPI equals the dynamic count exactly (one ADDSD per visit
		// is the only FP arithmetic).
		st, _ := m.FuncStatsByName(c.entry)
		met, err := p.StaticMetrics(c.entry, nil)
		if err != nil {
			t.Fatalf("%s static: %v", c.name, err)
		}
		if met.FPI() != int64(st.FPIInclusive()) {
			t.Errorf("%s: static FPI %d != dynamic %d", c.name, met.FPI(), st.FPIInclusive())
		}
		if met.FPI() != int64(c.want) {
			t.Errorf("%s: FPI = %d, want %g", c.name, met.FPI(), c.want)
		}
	}
}

// TestFig5PythonArtifact: the Fig. 5 example generates the paper-style
// Python model with the annotation parameter threaded through.
func TestFig5PythonArtifact(t *testing.T) {
	p, err := core.Analyze("fig5.c", benchprogs.Fig5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	py := p.PythonModel()
	for _, want := range []string{"def A_foo_2(x, y, y2):", "def main_0(", "handle_function_call"} {
		if !strings.Contains(py, want) {
			t.Errorf("missing %q in:\n%s", want, py)
		}
	}
	// The annotated model evaluates with y2 supplied (paper: "y_16 ...
	// specified by users during model evaluation").
	met, err := p.StaticMetrics("A::foo", expr.EnvFromInts(map[string]int64{"y2": 15}))
	if err != nil {
		t.Fatal(err)
	}
	// 16 outer iterations x 16 inner (y2=15, inclusive): 16*16 adds.
	if met.FPI() != 256 {
		t.Errorf("FPI = %d, want 256", met.FPI())
	}
}

// TestMiniFEConvergence: the CG solver actually solves the system (residual
// shrinks), guarding against a VM or codegen regression that would leave
// the validation comparing garbage runs.
func TestMiniFEConvergence(t *testing.T) {
	p, err := core.Analyze("minife.c", benchprogs.MiniFE, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine()
	n := int64(4 * 4 * 4)
	maxNNZ := uint64(27 * n)
	rowStart := m.Alloc(uint64(n + 1))
	cols := m.Alloc(maxNNZ)
	vals := m.Alloc(maxNNZ)
	A := m.Alloc(4)
	m.SetI(A+0, n)
	m.SetI(A+1, int64(rowStart))
	m.SetI(A+2, int64(cols))
	m.SetI(A+3, int64(vals))
	mkVec := func() uint64 {
		coefs := m.Alloc(uint64(n))
		v := m.Alloc(2)
		m.SetI(v+0, n)
		m.SetI(v+1, int64(coefs))
		return v
	}
	b, x, r, pp, ap := mkVec(), mkVec(), mkVec(), mkVec(), mkVec()
	ret, err := m.Run("minife",
		vm.Int(4), vm.Int(4), vm.Int(4), vm.Int(30),
		vm.Int(int64(A)), vm.Int(int64(b)), vm.Int(int64(x)),
		vm.Int(int64(r)), vm.Int(int64(pp)), vm.Int(int64(ap)))
	if err != nil {
		t.Fatal(err)
	}
	// After 30 CG iterations on a 64-row SPD stencil system the residual
	// norm must be tiny.
	if ret.F > 1e-6 {
		t.Errorf("CG residual after 30 iterations = %g, not converged", ret.F)
	}
}
