// Package benchprogs embeds the MiniC sources of the paper's evaluation
// workloads (Sec. IV): the STREAM and DGEMM benchmarks and the miniFE
// mini-application, plus the paper's listing examples and the ablation
// kernel used by the PBound-vs-Mira comparison.
//
// The sources follow the originals' structure: STREAM runs NTIMES
// repetitions of copy/scale/add/triad; DGEMM is the HPCC-style
// C = beta*C + alpha*A*B triple loop; miniFE assembles a 27-point-stencil
// CSR system over an nx*ny*nz brick and solves it with unpreconditioned
// CG, spreading work across a call chain (waxpby, dot, matvec-as-
// operator(), cg_solve) exactly because, as Sec. IV-C notes, that call
// chain is what stresses Mira's function-call handling.
package benchprogs

// Stream is the STREAM kernel source. Arrays are caller-allocated; the
// `stream` entry takes the three vectors and their length.
const Stream = `// STREAM: sustainable memory bandwidth kernels (McCalpin).
const int NTIMES = 10;

void tuned_copy(double *a, double *c, int n) {
	int j;
	for (j = 0; j < n; j++) {
		c[j] = a[j];
	}
}

void tuned_scale(double *b, double *c, int n, double scalar) {
	int j;
	for (j = 0; j < n; j++) {
		b[j] = scalar * c[j];
	}
}

void tuned_add(double *a, double *b, double *c, int n) {
	int j;
	for (j = 0; j < n; j++) {
		c[j] = a[j] + b[j];
	}
}

void tuned_triad(double *a, double *b, double *c, int n, double scalar) {
	int j;
	for (j = 0; j < n; j++) {
		a[j] = b[j] + scalar * c[j];
	}
}

void stream(double *a, double *b, double *c, int n) {
	int j;
	int k;
	for (j = 0; j < n; j++) {
		a[j] = 1.0;
		b[j] = 2.0;
		c[j] = 0.0;
	}
	for (k = 0; k < NTIMES; k++) {
		tuned_copy(a, c, n);
		tuned_scale(b, c, n, 3.0);
		tuned_add(a, b, c, n);
		tuned_triad(a, b, c, n, 3.0);
	}
}
`

// Dgemm is the HPCC-style DGEMM source: nrep repetitions of
// C = beta*C + alpha*A*B on n x n matrices stored flat.
const Dgemm = `// DGEMM: double-precision matrix-matrix multiply (HPCC-style).
void dgemm(double *a, double *b, double *c, int n, double alpha, double beta) {
	int i;
	int j;
	int k;
	double t;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			t = 0.0;
			for (k = 0; k < n; k++) {
				t = t + a[i*n + k] * b[k*n + j];
			}
			c[i*n + j] = beta * c[i*n + j] + alpha * t;
		}
	}
}

void dgemm_bench(double *a, double *b, double *c, int n, int nrep) {
	int r;
	for (r = 0; r < nrep; r++) {
		dgemm(a, b, c, n, 1.0, 0.0);
	}
}
`

// MiniFE is the miniFE-like mini-application: 27-point stencil assembly
// into CSR and an unpreconditioned CG solve. The matvec inner loop is
// data-dependent (CSR row extents), so it carries the paper-style lp_iter
// annotation whose parameter (nnz_row) users bind at evaluation time.
const MiniFE = `// miniFE: finite-element mini-app (assembly + CG solve).
extern double sqrt(double x);

class CSRMatrix {
public:
	int nrows;
	int *row_start;
	int *cols;
	double *vals;
};

class Vector {
public:
	int n;
	double *coefs;
};

class MatVec {
public:
	int tag;
	void operator()(int n, CSRMatrix A, Vector x, Vector y) {
		int i;
		int k;
		double sum;
		for (i = 0; i < n; i++) {
			sum = 0.0;
			#pragma @Annotation {lp_iter:nnz_row}
			for (k = A.row_start[i]; k < A.row_start[i + 1]; k++) {
				sum = sum + A.vals[k] * x.coefs[A.cols[k]];
			}
			y.coefs[i] = sum;
		}
	}
};

void waxpby(int n, double alpha, Vector x, double beta, Vector y, Vector w) {
	int i;
	for (i = 0; i < n; i++) {
		w.coefs[i] = alpha * x.coefs[i] + beta * y.coefs[i];
	}
}

double dot(int n, Vector x, Vector y) {
	double result;
	int i;
	result = 0.0;
	for (i = 0; i < n; i++) {
		result = result + x.coefs[i] * y.coefs[i];
	}
	return result;
}

void assemble(int nx, int ny, int nz, CSRMatrix A) {
	int ix; int iy; int iz;
	int jx; int jy; int jz;
	int row;
	int idx;
	idx = 0;
	for (iz = 0; iz < nz; iz++) {
		for (iy = 0; iy < ny; iy++) {
			for (ix = 0; ix < nx; ix++) {
				row = iz*ny*nx + iy*nx + ix;
				A.row_start[row] = idx;
				for (jz = iz - 1; jz <= iz + 1; jz++) {
					for (jy = iy - 1; jy <= iy + 1; jy++) {
						for (jx = ix - 1; jx <= ix + 1; jx++) {
							if (jz >= 0 && jz <= nz - 1 && jy >= 0 && jy <= ny - 1 && jx >= 0 && jx <= nx - 1) {
								A.cols[idx] = jz*ny*nx + jy*nx + jx;
								if (jz == iz && jy == iy && jx == ix) {
									A.vals[idx] = 26.0;
								} else {
									A.vals[idx] = 0.0 - 1.0;
								}
								idx = idx + 1;
							}
						}
					}
				}
			}
		}
	}
	A.row_start[nx*ny*nz] = idx;
}

double cg_solve(int n, CSRMatrix A, Vector b, Vector x, Vector r, Vector p, Vector Ap, int max_iter) {
	MatVec matvec;
	int i;
	int k;
	double rtrans;
	double oldrtrans;
	double alpha;
	double beta;
	double p_ap;
	double normr;
	for (i = 0; i < n; i++) {
		x.coefs[i] = 0.0;
		r.coefs[i] = b.coefs[i];
		p.coefs[i] = b.coefs[i];
	}
	rtrans = dot(n, r, r);
	normr = sqrt(rtrans);
	for (k = 0; k < max_iter; k++) {
		matvec(n, A, p, Ap);
		p_ap = dot(n, p, Ap);
		alpha = rtrans / p_ap;
		waxpby(n, 1.0, x, alpha, p, x);
		waxpby(n, 1.0, r, 0.0 - alpha, Ap, r);
		oldrtrans = rtrans;
		rtrans = dot(n, r, r);
		beta = rtrans / oldrtrans;
		waxpby(n, 1.0, r, beta, p, p);
		normr = sqrt(rtrans);
	}
	return normr;
}

double minife(int nx, int ny, int nz, int max_iter, CSRMatrix A, Vector b, Vector x, Vector r, Vector p, Vector Ap) {
	int i;
	int n;
	n = nx * ny * nz;
	assemble(nx, ny, nz, A);
	for (i = 0; i < n; i++) {
		b.coefs[i] = 1.0;
	}
	return cg_solve(n, A, b, x, r, p, Ap, max_iter);
}
`

// Fig5 is the paper's Fig. 5(a) source: a class with an annotated member
// function, modeled into A_foo_2 / main_0 Python functions.
const Fig5 = `class A {
public:
	int n;
	void foo(double x[], double y[]) {
		int i;
		int j;
		for (i = 0; i < 16; i++) {
			#pragma @Annotation {lp_cond:y2}
			for (j = 0; j < 16; j++) {
				x[i] = x[i] + y[j];
			}
		}
	}
};
int main() {
	A a;
	double p[16];
	double q[16];
	a.foo(p, q);
	return 0;
}
`

// Listing1 is the paper's basic loop.
const Listing1 = `double listing1() {
	double s;
	int i;
	s = 0.0;
	for (i = 0; i < 10; i++)
	{
		s = s + 1.0;
	}
	return s;
}
`

// Listing2 is the paper's double-nested loop with a dependent inner bound.
const Listing2 = `double listing2() {
	double s;
	int i;
	int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			s = s + 1.0;
		}
	return s;
}
`

// Listing4 adds the paper's if constraint to Listing 2.
const Listing4 = `double listing4() {
	double s;
	int i;
	int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			if(j > 4)
			{
				s = s + 1.0;
			}
		}
	return s;
}
`

// Listing5 punches modulo holes in the polyhedron.
const Listing5 = `double listing5() {
	double s;
	int i;
	int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			if(j % 4 != 0)
			{
				s = s + 1.0;
			}
		}
	return s;
}
`

// Ablation is the PBound-vs-Mira workload: its loop bodies contain
// constant-foldable floating subexpressions and loop-invariant
// subexpressions that the compiler folds/hoists. Source-only analysis
// (PBound) counts them every iteration; binary-aware analysis (Mira)
// counts what the optimizer left.
const Ablation = `double smooth(double *u, double *f, int n, double dx) {
	int i;
	int sweep;
	double w;
	for (sweep = 0; sweep < 10; sweep++) {
		for (i = 1; i < n - 1; i++) {
			w = (0.5 * 0.25 * 4.0) * (u[i-1] + u[i+1]) + (dx * dx * 0.125) * f[i];
			u[i] = w * (1.0 / 3.0) + u[i] * (2.0 / 3.0);
		}
	}
	return u[n/2];
}
`
