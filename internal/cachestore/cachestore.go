// Package cachestore provides the content-addressed on-disk
// implementation of engine.CacheStore and engine.FuncStore: compiled
// analysis artifacts that survive process restarts, so a freshly started
// mira-serve daemon rebuilds hot models by decoding stored bytes instead
// of recompiling. Whole-source entries (source text + encoded object
// file) and per-function entries (one compiled unit under its
// function-content key) live side by side:
//
//	<dir>/objects/<key[:2]>/<key>.mira    whole-source entries
//	<dir>/funcs/<key[:2]>/<key>.mira      per-function units
//
// where key is the engine's content hash (hex). Each entry file is
// self-contained and checksummed:
//
//	magic "MIRACS<version>\n" (engine.CacheFormatVersion)
//	length-prefixed sections (uvarint length + bytes):
//	    whole-source: key, name, source, object
//	    per-function: key, name, unit
//	sha256 over everything before it (32 bytes)
//
// Writes go through a temp file in the same directory followed by an
// atomic rename, so a crashed writer can never leave a half entry under
// the final name. Reads verify the magic, the embedded key, the section
// framing, and the checksum; any mismatch — truncation, corruption, a
// past or future format version — is a miss, never an error: a damaged
// or stale cache degrades to a recompile, function by function.
package cachestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"mira/internal/engine"
)

// magic is derived from the shared cache-key format version: bumping
// engine.CacheFormatVersion retires every on-disk entry (whole-source
// and per-function alike) as a clean miss.
var magic = fmt.Sprintf("MIRACS%d\n", engine.CacheFormatVersion)

// Disk is a content-addressed on-disk CacheStore.
type Disk struct {
	dir string
}

// Ensure the engine contracts are met.
var (
	_ engine.CacheStore = (*Disk)(nil)
	_ engine.FuncStore  = (*Disk)(nil)
)

// Open prepares a disk store rooted at dir, creating it if needed.
func Open(dir string) (*Disk, error) {
	for _, sub := range []string{"objects", "funcs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cachestore: %w", err)
		}
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// validKey gates what may become a file name: the engine's keys are
// lowercase hex, and anything else (path separators, dots) is refused
// outright rather than risked against the filesystem.
func validKey(key string) bool {
	if len(key) < 4 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *Disk) path(sub, key string) string {
	return filepath.Join(d.dir, sub, key[:2], key+".mira")
}

// Load reads, verifies, and decodes the whole-source entry stored under
// key. Any defect in the on-disk bytes is a miss.
func (d *Disk) Load(key string) (*engine.Entry, bool) {
	if !validKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(d.path("objects", key))
	if err != nil {
		return nil, false
	}
	sections, err := decodeSections(key, raw, 4)
	if err != nil {
		return nil, false
	}
	return &engine.Entry{
		Name:   string(sections[1]),
		Source: string(sections[2]),
		Object: append([]byte(nil), sections[3]...),
	}, true
}

// Store persists e under key, atomically.
func (d *Disk) Store(key string, e *engine.Entry) error {
	return d.write("objects", key,
		encodeSections([]byte(key), []byte(e.Name), []byte(e.Source), e.Object))
}

// LoadFunc reads, verifies, and decodes the per-function entry stored
// under key (a function-content hash). The corruption contract is the
// same as Load's: any defect is a miss, confined to this one entry —
// sibling functions keep loading, and the caller recompiles exactly the
// function that missed.
func (d *Disk) LoadFunc(key string) (*engine.FuncEntry, bool) {
	if !validKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(d.path("funcs", key))
	if err != nil {
		return nil, false
	}
	sections, err := decodeSections(key, raw, 3)
	if err != nil {
		return nil, false
	}
	return &engine.FuncEntry{
		Name: string(sections[1]),
		Unit: append([]byte(nil), sections[2]...),
	}, true
}

// StoreFunc persists e under key, atomically.
func (d *Disk) StoreFunc(key string, e *engine.FuncEntry) error {
	return d.write("funcs", key,
		encodeSections([]byte(key), []byte(e.Name), e.Unit))
}

// write lands raw under sub/key via temp file + atomic rename.
func (d *Disk) write(sub, key string, raw []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cachestore: invalid key %q", key)
	}
	target := d.path(sub, key)
	if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(target), "tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the write error wins
		return fmt.Errorf("cachestore: write %s: %w", key, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the rename error wins
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Len counts the whole-source entries currently on disk (for stats and
// tests; it walks the fan-out directories).
func (d *Disk) Len() int { return d.countEntries("objects") }

// FuncLen counts the per-function entries currently on disk.
func (d *Disk) FuncLen() int { return d.countEntries("funcs") }

func (d *Disk) countEntries(sub string) int {
	n := 0
	fans, _ := os.ReadDir(filepath.Join(d.dir, sub))
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(d.dir, sub, fan.Name()))
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".mira" {
				n++
			}
		}
	}
	return n
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func putSection(buf *bytes.Buffer, b []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	buf.Write(tmp[:n])
	buf.Write(b)
}

// encodeSections frames the entry body shared by both entry kinds:
// magic, uvarint-length-prefixed sections, trailing sha256.
func encodeSections(sections ...[]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, s := range sections {
		putSection(&buf, s)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// decodeSections verifies magic, checksum, and framing, and returns
// exactly want sections; sections[0] must equal key. Any defect is an
// error the caller turns into a miss.
func decodeSections(key string, raw []byte, want int) ([][]byte, error) {
	if len(raw) < len(magic)+sha256.Size || string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic or truncated")
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	wantSum := sha256.Sum256(body)
	if !bytes.Equal(sum, wantSum[:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	r := body[len(magic):]
	sections := make([][]byte, want)
	for i := range sections {
		length, n := binary.Uvarint(r)
		if n <= 0 || uint64(len(r)-n) < length {
			return nil, fmt.Errorf("section %d framing", i)
		}
		sections[i] = r[n : n+int(length)]
		r = r[n+int(length):]
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("trailing bytes")
	}
	if string(sections[0]) != key {
		return nil, fmt.Errorf("entry key %q under file key %q", sections[0], key)
	}
	return sections, nil
}
