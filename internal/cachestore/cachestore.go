// Package cachestore provides the content-addressed on-disk
// implementation of engine.CacheStore: compiled analysis artifacts
// (source text + encoded object file) that survive process restarts, so
// a freshly started mira-serve daemon rebuilds hot models by decoding
// stored bytes instead of recompiling.
//
// Layout is git-style fan-out under a root directory:
//
//	<dir>/objects/<key[:2]>/<key>.mira
//
// where key is the engine's content hash (hex). Each entry file is
// self-contained and checksummed:
//
//	magic "MIRACS1\n"
//	4 length-prefixed sections (uvarint length + bytes):
//	    key, name, source, object
//	sha256 over everything before it (32 bytes)
//
// Writes go through a temp file in the same directory followed by an
// atomic rename, so a crashed writer can never leave a half entry under
// the final name. Reads verify the magic, the embedded key, the section
// framing, and the checksum; any mismatch — truncation, corruption, a
// future format — is a miss, never an error: a damaged cache degrades to
// a recompile.
package cachestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"mira/internal/engine"
)

const magic = "MIRACS1\n"

// Disk is a content-addressed on-disk CacheStore.
type Disk struct {
	dir string
}

// Ensure the engine contract is met.
var _ engine.CacheStore = (*Disk)(nil)

// Open prepares a disk store rooted at dir, creating it if needed.
func Open(dir string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// validKey gates what may become a file name: the engine's keys are
// lowercase hex, and anything else (path separators, dots) is refused
// outright rather than risked against the filesystem.
func validKey(key string) bool {
	if len(key) < 4 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, "objects", key[:2], key+".mira")
}

// Load reads, verifies, and decodes the entry stored under key. Any
// defect in the on-disk bytes is a miss.
func (d *Disk) Load(key string) (*engine.Entry, bool) {
	if !validKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	ent, err := decodeEntry(key, raw)
	if err != nil {
		return nil, false
	}
	return ent, true
}

// Store persists e under key, atomically.
func (d *Disk) Store(key string, e *engine.Entry) error {
	if !validKey(key) {
		return fmt.Errorf("cachestore: invalid key %q", key)
	}
	raw := encodeEntry(key, e)
	target := d.path(key)
	if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(target), "tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: write %s: %w", key, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Len counts the entries currently on disk (for stats and tests; it
// walks the fan-out directories).
func (d *Disk) Len() int {
	n := 0
	fans, _ := os.ReadDir(filepath.Join(d.dir, "objects"))
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(d.dir, "objects", fan.Name()))
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".mira" {
				n++
			}
		}
	}
	return n
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func putSection(buf *bytes.Buffer, b []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	buf.Write(tmp[:n])
	buf.Write(b)
}

func encodeEntry(key string, e *engine.Entry) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	putSection(&buf, []byte(key))
	putSection(&buf, []byte(e.Name))
	putSection(&buf, []byte(e.Source))
	putSection(&buf, e.Object)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

func decodeEntry(key string, raw []byte) (*engine.Entry, error) {
	if len(raw) < len(magic)+sha256.Size || string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic or truncated")
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	r := body[len(magic):]
	sections := make([][]byte, 4)
	for i := range sections {
		length, n := binary.Uvarint(r)
		if n <= 0 || uint64(len(r)-n) < length {
			return nil, fmt.Errorf("section %d framing", i)
		}
		sections[i] = r[n : n+int(length)]
		r = r[n+int(length):]
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("trailing bytes")
	}
	if string(sections[0]) != key {
		return nil, fmt.Errorf("entry key %q under file key %q", sections[0], key)
	}
	return &engine.Entry{
		Name:   string(sections[1]),
		Source: string(sections[2]),
		Object: append([]byte(nil), sections[3]...),
	}, nil
}
