package cachestore_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/cachestore"
	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/obs"
)

const kernelSrc = `
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + x[i] * 2.0;
	}
	return s;
}`

func openStore(t *testing.T) *cachestore.Disk {
	t.Helper()
	d, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openStore(t)
	key := strings.Repeat("ab", 32)
	ent := &engine.Entry{Name: "k.c", Source: kernelSrc, Object: []byte{0, 1, 2, 254, 255}}
	if _, ok := d.Load(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := d.Store(key, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Load(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Name != ent.Name || got.Source != ent.Source || string(got.Object) != string(ent.Object) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDiskRejectsBadKeys(t *testing.T) {
	d := openStore(t)
	for _, key := range []string{"", "ab", "../../etc/passwd", "ABCDEF012345", "zz" + strings.Repeat("a", 8)} {
		if err := d.Store(key, &engine.Entry{}); err == nil {
			t.Errorf("Store accepted key %q", key)
		}
		if _, ok := d.Load(key); ok {
			t.Errorf("Load accepted key %q", key)
		}
	}
}

// TestDiskCorruptEntryIsMiss damages on-disk entries every way the
// format can break and checks each reads back as a miss, not an error
// and never a bogus entry.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	key := strings.Repeat("cd", 32)
	ent := &engine.Entry{Name: "k.c", Source: kernelSrc, Object: []byte("object bytes")}
	path := func(d *cachestore.Disk) string {
		return filepath.Join(d.Dir(), "objects", key[:2], key+".mira")
	}
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated to half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"flipped checksum bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"wrong magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"garbage", func(b []byte) []byte { return []byte("complete nonsense") }},
		{"extra trailing bytes", func(b []byte) []byte { return append(b, 9, 9, 9) }},
	}
	for _, c := range corruptions {
		d := openStore(t)
		if err := d.Store(key, ent); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path(d), c.mut(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := d.Load(key); ok {
			t.Errorf("%s: corrupt entry served: %+v", c.name, got)
		}
	}
}

// TestDiskEntryUnderWrongKey guards the content-addressing: an entry
// copied to a different key's path must not be served.
func TestDiskEntryUnderWrongKey(t *testing.T) {
	d := openStore(t)
	key1 := strings.Repeat("11", 32)
	key2 := strings.Repeat("22", 32)
	if err := d.Store(key1, &engine.Entry{Name: "a.c", Source: "x", Object: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(d.Dir(), "objects", key1[:2], key1+".mira")
	dst := filepath.Join(d.Dir(), "objects", key2[:2], key2+".mira")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Load(key2); ok {
		t.Error("entry served under a key it was not stored for")
	}
}

// TestEngineDiskRoundTrip runs the full warm-restart flow through real
// engines sharing one on-disk store; the -race gate covers concurrent
// load/store against the same directory.
func TestEngineDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	env := expr.EnvFromInts(map[string]int64{"n": 100})

	d1, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := engine.New(engine.Options{Store: d1, Workers: 4})
	m1, err := analyzeAndEval(cold, env)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Len() == 0 {
		t.Fatal("nothing persisted")
	}

	// "Restart": a new store handle and a new engine over the same dir.
	d2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := engine.New(engine.Options{Store: d2, Workers: 4})
	m2, err := analyzeAndEval(warm, env)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("warm restart diverged: %+v vs %+v", m2, m1)
	}
	var sb strings.Builder
	if err := warm.Obs().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if exp.Value("mira_store_hits_total") == 0 {
		t.Error("warm engine served no store hits")
	}
	if exp.Value("mira_analyze_seconds_count") != 0 {
		t.Error("warm engine recompiled despite the disk cache")
	}
}

func analyzeAndEval(e *engine.Engine, env expr.Env) (any, error) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := e.Analyze("kernel.c", kernelSrc)
			if err == nil {
				_, _ = a.StaticMetrics("kernel", env)
			}
		}()
	}
	wg.Wait()
	a, err := e.Analyze("kernel.c", kernelSrc)
	if err != nil {
		return nil, err
	}
	return a.StaticMetrics("kernel", env)
}

// BenchmarkColdVsWarmRestart measures what the persistent cache buys a
// restarting process: Cold compiles benchprogs from scratch each
// iteration (fresh engine, empty store); WarmRestart gives each fresh
// engine a directory populated by a previous "process" so every program
// rebuilds from its stored artifact.
func BenchmarkColdVsWarmRestart(b *testing.B) {
	jobs := []engine.Job{
		{Name: "stream.c", Source: benchprogs.Stream},
		{Name: "dgemm.c", Source: benchprogs.Dgemm},
		{Name: "minife.c", Source: benchprogs.MiniFE},
		{Name: "ablation.c", Source: benchprogs.Ablation},
	}
	run := func(b *testing.B, store func() engine.CacheStore) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.Options{Store: store()})
			if err := engine.Errors(e.AnalyzeAll(context.Background(), jobs)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Cold", func(b *testing.B) {
		run(b, func() engine.CacheStore {
			d, err := cachestore.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
	b.Run("WarmRestart", func(b *testing.B) {
		dir := b.TempDir()
		seedStore, err := cachestore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		seed := engine.New(engine.Options{Store: seedStore})
		if err := engine.Errors(seed.AnalyzeAll(context.Background(), jobs)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, func() engine.CacheStore {
			d, err := cachestore.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
}
