package cachestore_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/cachestore"
	"mira/internal/core"
	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/obs"
	"mira/internal/parser"
	"mira/internal/sema"
)

const kernelSrc = `
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + x[i] * 2.0;
	}
	return s;
}`

func openStore(t *testing.T) *cachestore.Disk {
	t.Helper()
	d, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openStore(t)
	key := strings.Repeat("ab", 32)
	ent := &engine.Entry{Name: "k.c", Source: kernelSrc, Object: []byte{0, 1, 2, 254, 255}}
	if _, ok := d.Load(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := d.Store(key, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Load(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Name != ent.Name || got.Source != ent.Source || string(got.Object) != string(ent.Object) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDiskRejectsBadKeys(t *testing.T) {
	d := openStore(t)
	for _, key := range []string{"", "ab", "../../etc/passwd", "ABCDEF012345", "zz" + strings.Repeat("a", 8)} {
		if err := d.Store(key, &engine.Entry{}); err == nil {
			t.Errorf("Store accepted key %q", key)
		}
		if _, ok := d.Load(key); ok {
			t.Errorf("Load accepted key %q", key)
		}
	}
}

// TestDiskCorruptEntryIsMiss damages on-disk entries every way the
// format can break and checks each reads back as a miss, not an error
// and never a bogus entry.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	key := strings.Repeat("cd", 32)
	ent := &engine.Entry{Name: "k.c", Source: kernelSrc, Object: []byte("object bytes")}
	path := func(d *cachestore.Disk) string {
		return filepath.Join(d.Dir(), "objects", key[:2], key+".mira")
	}
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated to half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"flipped checksum bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"wrong magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"garbage", func(b []byte) []byte { return []byte("complete nonsense") }},
		{"extra trailing bytes", func(b []byte) []byte { return append(b, 9, 9, 9) }},
	}
	for _, c := range corruptions {
		d := openStore(t)
		if err := d.Store(key, ent); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path(d), c.mut(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := d.Load(key); ok {
			t.Errorf("%s: corrupt entry served: %+v", c.name, got)
		}
	}
}

// TestDiskEntryUnderWrongKey guards the content-addressing: an entry
// copied to a different key's path must not be served.
func TestDiskEntryUnderWrongKey(t *testing.T) {
	d := openStore(t)
	key1 := strings.Repeat("11", 32)
	key2 := strings.Repeat("22", 32)
	if err := d.Store(key1, &engine.Entry{Name: "a.c", Source: "x", Object: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(d.Dir(), "objects", key1[:2], key1+".mira")
	dst := filepath.Join(d.Dir(), "objects", key2[:2], key2+".mira")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Load(key2); ok {
		t.Error("entry served under a key it was not stored for")
	}
}

// TestEngineDiskRoundTrip runs the full warm-restart flow through real
// engines sharing one on-disk store; the -race gate covers concurrent
// load/store against the same directory.
func TestEngineDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	env := expr.EnvFromInts(map[string]int64{"n": 100})

	d1, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := engine.New(engine.Options{Store: d1, Workers: 4})
	m1, err := analyzeAndEval(cold, env)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Len() == 0 {
		t.Fatal("nothing persisted")
	}

	// "Restart": a new store handle and a new engine over the same dir.
	d2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := engine.New(engine.Options{Store: d2, Workers: 4})
	m2, err := analyzeAndEval(warm, env)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("warm restart diverged: %+v vs %+v", m2, m1)
	}
	var sb strings.Builder
	if err := warm.Obs().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if exp.Value("mira_store_hits_total") == 0 {
		t.Error("warm engine served no store hits")
	}
	if exp.Value("mira_analyze_seconds_count") != 0 {
		t.Error("warm engine recompiled despite the disk cache")
	}
}

func analyzeAndEval(e *engine.Engine, env expr.Env) (any, error) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := e.AnalyzeCtx(context.Background(), "kernel.c", kernelSrc)
			if err == nil {
				_, _ = a.StaticMetrics("kernel", env)
			}
		}()
	}
	wg.Wait()
	a, err := e.AnalyzeCtx(context.Background(), "kernel.c", kernelSrc)
	if err != nil {
		return nil, err
	}
	return a.StaticMetrics("kernel", env)
}

// BenchmarkColdVsWarmRestart measures what the persistent cache buys a
// restarting process: Cold compiles benchprogs from scratch each
// iteration (fresh engine, empty store); WarmRestart gives each fresh
// engine a directory populated by a previous "process" so every program
// rebuilds from its stored artifact.
func BenchmarkColdVsWarmRestart(b *testing.B) {
	jobs := []engine.Job{
		{Name: "stream.c", Source: benchprogs.Stream},
		{Name: "dgemm.c", Source: benchprogs.Dgemm},
		{Name: "minife.c", Source: benchprogs.MiniFE},
		{Name: "ablation.c", Source: benchprogs.Ablation},
	}
	run := func(b *testing.B, store func() engine.CacheStore) {
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.Options{Store: store()})
			if err := engine.Errors(e.AnalyzeAll(context.Background(), jobs)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Cold", func(b *testing.B) {
		run(b, func() engine.CacheStore {
			d, err := cachestore.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
	b.Run("WarmRestart", func(b *testing.B) {
		dir := b.TempDir()
		seedStore, err := cachestore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		seed := engine.New(engine.Options{Store: seedStore})
		if err := engine.Errors(seed.AnalyzeAll(context.Background(), jobs)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, func() engine.CacheStore {
			d, err := cachestore.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
}

// TestDiskFuncRoundTrip covers the per-function side of the store.
func TestDiskFuncRoundTrip(t *testing.T) {
	d := openStore(t)
	key := strings.Repeat("fe", 32)
	if _, ok := d.LoadFunc(key); ok {
		t.Fatal("hit on empty store")
	}
	ent := &engine.FuncEntry{Name: "minife", Unit: []byte{7, 0, 255, 1}}
	if err := d.StoreFunc(key, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := d.LoadFunc(key)
	if !ok {
		t.Fatal("stored function entry missed")
	}
	if got.Name != ent.Name || string(got.Unit) != string(ent.Unit) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if d.FuncLen() != 1 {
		t.Errorf("FuncLen = %d, want 1", d.FuncLen())
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d, want 0 (function entries live under funcs/)", d.Len())
	}
}

// funcKeysFor computes the same function-content keys a default engine
// uses, so tests can locate a specific function's on-disk entry.
func funcKeysFor(t *testing.T, name, src string) map[string]string {
	t.Helper()
	file, err := parser.ParseFile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	return core.FuncKeys(prog, core.Options{})
}

// TestFuncEntryCorruptionIsolated is the function-granularity corruption
// contract end to end: with one per-function entry damaged on disk, a
// restarted engine recompiles exactly that function (plus whatever the
// edit itself invalidated), serves every sibling from its own entry, and
// produces results identical to a cold analysis. No panic, no error, no
// cross-entry poisoning.
func TestFuncEntryCorruptionIsolated(t *testing.T) {
	dir := t.TempDir()
	d1, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := engine.New(engine.Options{Store: d1, Workers: 1})
	if _, err := e1.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE); err != nil {
		t.Fatal(err)
	}
	if d1.FuncLen() == 0 {
		t.Fatal("no per-function entries persisted")
	}

	// Corrupt exactly waxpby's entry: a leaf of the call graph, so an
	// edit elsewhere cannot legitimately invalidate it.
	keys := funcKeysFor(t, "minife.c", benchprogs.MiniFE)
	waxpbyKey, ok := keys["waxpby"]
	if !ok {
		t.Fatalf("no key for waxpby in %v", keys)
	}
	entryPath := filepath.Join(dir, "funcs", waxpbyKey[:2], waxpbyKey+".mira")
	raw, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatalf("waxpby entry not on disk: %v", err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(entryPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Edit inside minife only (a column shift on one of its lines), so
	// the whole-source entry misses and the per-function path runs.
	mutated := strings.Replace(benchprogs.MiniFE, "return cg_solve", " return cg_solve", 1)
	if mutated == benchprogs.MiniFE {
		t.Fatal("mutation did not change the source")
	}

	d2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Options{Store: d2, Workers: 1})
	a, err := e2.AnalyzeCtx(context.Background(), "minife.c", mutated)
	if err != nil {
		t.Fatalf("analyze over corrupted store: %v", err)
	}
	delta := a.Delta()
	if delta == nil {
		t.Fatal("no delta from incremental build")
	}
	compiled := append([]string{}, delta.Compiled...)
	sort.Strings(compiled)
	if want := []string{"minife", "waxpby"}; !reflect.DeepEqual(compiled, want) {
		t.Errorf("recompiled %v, want %v (edited fn + corrupted fn only)", compiled, want)
	}
	for _, q := range delta.Reused {
		if q == "waxpby" {
			t.Error("corrupt waxpby entry was served")
		}
	}

	cold, err := engine.New(engine.Options{Workers: 1}).AnalyzeCtx(context.Background(), "minife.c", mutated)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.PythonModel(), cold.PythonModel(); got != want {
		t.Error("corrupted-store analysis diverged from cold analysis")
	}
}

// encodeWithMagic reproduces the entry framing (sections + trailing
// sha256) under an arbitrary magic, to handcraft entries from other
// format versions with valid checksums.
func encodeWithMagic(magic string, sections ...[]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	for _, s := range sections {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		buf.Write(tmp[:n])
		buf.Write(s)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// TestVersionMismatchIsMiss pins the versioned-magic contract: the
// on-disk magic embeds engine.CacheFormatVersion, and a perfectly
// well-formed entry from another version — old or future, checksum and
// framing intact — reads back as a clean miss, never an error.
func TestVersionMismatchIsMiss(t *testing.T) {
	d := openStore(t)
	key := strings.Repeat("ef", 32)
	if err := d.Store(key, &engine.Entry{Name: "k.c", Source: "s", Object: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(d.Dir(), "objects", key[:2], key+".mira")
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	wantMagic := fmt.Sprintf("MIRACS%d\n", engine.CacheFormatVersion)
	if !bytes.HasPrefix(raw, []byte(wantMagic)) {
		t.Fatalf("entry magic %q does not embed engine.CacheFormatVersion (want prefix %q)",
			raw[:len(wantMagic)], wantMagic)
	}

	funcKey := strings.Repeat("ab", 32)
	if err := d.StoreFunc(funcKey, &engine.FuncEntry{Name: "f", Unit: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	funcPath := filepath.Join(d.Dir(), "funcs", funcKey[:2], funcKey+".mira")

	oldMagic := fmt.Sprintf("MIRACS%d\n", engine.CacheFormatVersion-1)
	futureMagic := fmt.Sprintf("MIRACS%d\n", engine.CacheFormatVersion+1)
	for _, version := range []string{oldMagic, futureMagic} {
		obj := encodeWithMagic(version, []byte(key), []byte("k.c"), []byte("s"), []byte{1})
		if err := os.WriteFile(objPath, obj, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Load(key); ok {
			t.Errorf("%q whole-source entry served across a version bump", strings.TrimSpace(version))
		}
		fn := encodeWithMagic(version, []byte(funcKey), []byte("f"), []byte{2})
		if err := os.WriteFile(funcPath, fn, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.LoadFunc(funcKey); ok {
			t.Errorf("%q per-function entry served across a version bump", strings.TrimSpace(version))
		}
	}
}
