package cachestore_test

import (
	"context"
	"testing"

	"mira/internal/arch"
	"mira/internal/cachestore"
	"mira/internal/core"
	"mira/internal/engine"
	"mira/internal/expr"
)

// TestDiskStoreArchIsolation is the no-poisoning regression test
// through the persistent store: two engines whose architectures differ
// in exactly one parameter share one on-disk cache directory across a
// "restart", and each must warm-start from its OWN entry — the
// content-addressed keys carry the arch content key, so the twins can
// never collide on disk.
func TestDiskStoreArchIsolation(t *testing.T) {
	dir := t.TempDir()
	d1 := arch.Arya()
	d2 := arch.Arya()
	d2.MemBandwidthGBs *= 2

	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	ridge := func(e *engine.Engine) float64 {
		t.Helper()
		a, err := e.AnalyzeCtx(context.Background(), "k.c", kernelSrc)
		if err != nil {
			t.Fatal(err)
		}
		r := a.RunOne(context.Background(), engine.Query{Fn: "kernel", Env: env, Kind: engine.KindRoofline})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r.Roofline.RidgeAI
	}

	open := func(d *arch.Description) (*engine.Engine, *cachestore.Disk) {
		t.Helper()
		store, err := cachestore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return engine.New(engine.Options{Core: core.Options{Arch: d}, Store: store}), store
	}

	// First process: both twins compile cold and persist their artifacts
	// into the one shared directory.
	e1, _ := open(d1)
	e2, _ := open(d2)
	if e1.Key(kernelSrc) == e2.Key(kernelSrc) {
		t.Fatal("arch twins share an on-disk key")
	}
	ridge1, ridge2 := ridge(e1), ridge(e2)
	if ridge1 == ridge2 {
		t.Fatal("arch twins computed the same ridge point; the test cannot detect poisoning")
	}

	// "Restart": fresh engines over the same directory. Each must load
	// its own entry (a store hit, not a recompile) and reproduce its own
	// arch's roofline.
	for _, tc := range []struct {
		d    *arch.Description
		want float64
	}{{d1, ridge1}, {d2, ridge2}} {
		e, store := open(tc.d)
		if _, ok := store.Load(e.Key(kernelSrc)); !ok {
			t.Fatal("warm restart missed the on-disk entry")
		}
		if got := ridge(e); got != tc.want {
			t.Errorf("warm ridge %v, want %v", got, tc.want)
		}
	}
}
