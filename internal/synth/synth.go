// Package synth generates synthetic MiniC applications whose loop and
// statement profile matches the Bastoul et al. survey the paper reproduces
// as Table I. The paper's original applications (applu, apsi, ..., mg3d)
// are Fortran/C SPEC and PERFECT codes we cannot ship; the generator
// synthesizes programs with the same (loops, statements, statements-in-
// loops) profile — the three columns Table I reports — and the loopcov
// analyzer measures them back, closing the loop end to end through the
// real parser.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Profile is one Table I row target.
type Profile struct {
	Name       string
	Loops      int
	Statements int
	InLoops    int
}

// TableIProfiles are the survey rows from the paper's Table I.
var TableIProfiles = []Profile{
	{"applu", 19, 757, 633},
	{"apsi", 80, 2192, 1839},
	{"mdg", 17, 530, 464},
	{"lucas", 4, 2070, 2050},
	{"mgrid", 12, 369, 369},
	{"quake", 20, 639, 489},
	{"adm", 80, 2260, 1899},
	{"dyfesm", 75, 1497, 1280},
	{"mg3d", 39, 1442, 1242},
	{"swim", 6, 123, 123},
}

// Generate synthesizes a MiniC program matching the profile exactly under
// the loopcov counting convention (loop headers are structural).
func Generate(p Profile) (string, error) {
	if p.Loops < 1 || p.InLoops < p.Loops || p.Statements < p.InLoops {
		return "", fmt.Errorf("synth: infeasible profile %+v (need loops >= 1, inLoops >= loops, statements >= inLoops)", p)
	}
	rng := rand.New(rand.NewSource(int64(len(p.Name))*7919 + int64(p.Loops)))

	topLevel := p.Statements - p.InLoops

	// Split loops across functions of ~6 loops each.
	nFuncs := (p.Loops + 5) / 6
	loopsPer := splitEven(p.Loops, nFuncs)
	inLoopPer := splitProportional(p.InLoops, loopsPer)
	topPer := splitEven(topLevel, nFuncs)

	var sb strings.Builder
	fmt.Fprintf(&sb, "// Synthetic application %q matching the Table I profile:\n", p.Name)
	fmt.Fprintf(&sb, "// loops=%d statements=%d in-loop=%d (%.0f%%).\n\n",
		p.Loops, p.Statements, p.InLoops,
		float64(p.InLoops)/float64(p.Statements)*100)

	// Functions are void with uninitialized declarations only, so the
	// fixed scaffolding contributes zero counted statements — required
	// for the survey's 100%-coverage rows (mgrid, swim).
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&sb, "void %s_kernel%d(int n) {\n", sanitize(p.Name), f)
		sb.WriteString("\tdouble acc;\n\tint i;\n\tint j;\n")
		emitFunc(&sb, rng, loopsPer[f], inLoopPer[f], topPer[f])
		sb.WriteString("}\n\n")
	}
	return sb.String(), nil
}

func emitFunc(sb *strings.Builder, rng *rand.Rand, loops, inLoop, top int) {
	// Each loop gets a share of the in-loop statements.
	shares := splitEven(inLoop, loops)
	for l := 0; l < loops; l++ {
		depthVar := "i"
		if l%2 == 1 {
			depthVar = "j"
		}
		bound := 4 + rng.Intn(60)
		fmt.Fprintf(sb, "\tfor (%s = 0; %s < %d; %s++) {\n", depthVar, depthVar, bound, depthVar)
		emitStatements(sb, rng, shares[l], 2)
		sb.WriteString("\t}\n")
	}
	emitStatements(sb, rng, top, 1)
}

func emitStatements(sb *strings.Builder, rng *rand.Rand, n, indent int) {
	tabs := strings.Repeat("\t", indent)
	for s := 0; s < n; s++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(sb, "%sacc = acc + %d.5;\n", tabs, rng.Intn(9))
		case 1:
			fmt.Fprintf(sb, "%sacc = acc * 1.00%d;\n", tabs, 1+rng.Intn(8))
		case 2:
			fmt.Fprintf(sb, "%sacc = acc - 0.%d;\n", tabs, 1+rng.Intn(9))
		default:
			fmt.Fprintf(sb, "%sacc = acc + acc * 0.00%d;\n", tabs, 1+rng.Intn(9))
		}
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, name)
}

// splitEven splits total into n near-equal nonnegative parts.
func splitEven(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		out[i]++
	}
	return out
}

// splitProportional splits total proportionally to weights, exactly.
func splitProportional(total int, weights []int) []int {
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	out := make([]int, len(weights))
	acc := 0
	for i, w := range weights {
		if wsum == 0 {
			out[i] = 0
			continue
		}
		out[i] = total * w / wsum
		acc += out[i]
	}
	for i := 0; acc < total; i = (i + 1) % len(out) {
		out[i]++
		acc++
	}
	return out
}
