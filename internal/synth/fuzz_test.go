package synth_test

import (
	"testing"

	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/synth"
	"mira/internal/vm"
)

// FuzzThreeWayEvaluators generates a synthetic program from a fuzzed
// Table I-style profile and checks that the three evaluators agree
// exactly on every function: the model tree walker, the compiled model
// (closed-form sweep engine), and the VM actually executing the
// program. The walker/compiled pair must agree on full Metrics; the VM
// pins both to ground truth on inclusive instruction and FPI counts.
// This is the reconciliation invariant the PR 4 overflow and
// rounding-order bugs violated, run continuously over generated
// programs instead of the fixed benchprogs set (ROADMAP open item 3).
func FuzzThreeWayEvaluators(f *testing.F) {
	// Seeds: minimal shapes, a mid-size nest mix, and the two smallest
	// Table I survey rows (swim, mgrid). Larger rows are reachable by
	// the fuzzer but not paid for on every plain `go test` run.
	f.Add(1, 1, 1)
	f.Add(1, 4, 2)
	f.Add(3, 12, 9)
	f.Add(7, 40, 25)
	f.Add(6, 123, 123)
	f.Add(12, 369, 369)

	f.Fuzz(func(t *testing.T, loops, statements, inLoops int) {
		// Keep a single iteration cheap: profiles beyond these bounds
		// add VM time without adding new evaluator shapes.
		if loops < 1 || loops > 40 || statements < 1 || statements > 600 {
			t.Skip("out of budget")
		}
		if inLoops < loops || statements < inLoops {
			t.Skip("infeasible profile")
		}
		prof := synth.Profile{Name: "fuzz", Loops: loops, Statements: statements, InLoops: inLoops}
		src, err := synth.Generate(prof)
		if err != nil {
			t.Skip("generator rejected profile")
		}

		p, err := core.Analyze("fuzz.c", src, core.Options{})
		if err != nil {
			t.Fatalf("generated program failed analysis: %v\nprofile %+v", err, prof)
		}

		const n = 6
		env := expr.EnvFromInts(map[string]int64{"n": n})
		for _, fn := range p.Model.Order {
			met, err := p.Model.Evaluate(fn, env)
			if err != nil {
				t.Fatalf("%s: walker: %v", fn, err)
			}
			cm, err := p.Model.Compile(fn)
			if err != nil {
				t.Fatalf("%s: compile: %v", fn, err)
			}
			cmet, err := cm.Eval(env)
			if err != nil {
				t.Fatalf("%s: compiled eval: %v", fn, err)
			}
			if met != cmet {
				t.Errorf("%s: walker %+v != compiled %+v", fn, met, cmet)
			}

			// Ground truth: actually run the function. A fresh machine
			// per function keeps inclusive stats unpolluted.
			m := p.NewMachine()
			if _, err := m.Run(fn, vm.Int(n)); err != nil {
				t.Fatalf("%s: vm run: %v", fn, err)
			}
			st, ok := m.FuncStatsByName(fn)
			if !ok {
				t.Fatalf("%s: no vm stats", fn)
			}
			if uint64(met.Instrs) != st.TotalInclusive() {
				t.Errorf("%s: static instrs %d != vm %d", fn, met.Instrs, st.TotalInclusive())
			}
			if uint64(met.FPI()) != st.FPIInclusive() {
				t.Errorf("%s: static FPI %d != vm %d", fn, met.FPI(), st.FPIInclusive())
			}
		}
	})
}
