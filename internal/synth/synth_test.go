package synth_test

import (
	"testing"

	"mira/internal/loopcov"
	"mira/internal/parser"
	"mira/internal/synth"
)

// TestProfilesRoundTrip: every Table I profile generates a program that
// parses and measures back to exactly the surveyed numbers.
func TestProfilesRoundTrip(t *testing.T) {
	for _, p := range synth.TableIProfiles {
		src, err := synth.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		file, err := parser.ParseFile(p.Name+".c", src)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		st := loopcov.Measure(file)
		if st.Loops != p.Loops {
			t.Errorf("%s: loops=%d, want %d", p.Name, st.Loops, p.Loops)
		}
		if st.Statements != p.Statements {
			t.Errorf("%s: statements=%d, want %d", p.Name, st.Statements, p.Statements)
		}
		if st.InLoops != p.InLoops {
			t.Errorf("%s: in-loops=%d, want %d", p.Name, st.InLoops, p.InLoops)
		}
	}
}

// TestCoveragePercentages: the regenerated Table I percentages match the
// paper's last column.
func TestCoveragePercentages(t *testing.T) {
	want := map[string]int{
		"applu": 84, "apsi": 84, "mdg": 88, "lucas": 99, "mgrid": 100,
		"quake": 77, "adm": 84, "dyfesm": 86, "mg3d": 86, "swim": 100,
	}
	for _, p := range synth.TableIProfiles {
		src, err := synth.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		file, err := parser.ParseFile(p.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		st := loopcov.Measure(file)
		got := int(st.Percentage() + 0.5)
		if got != want[p.Name] {
			t.Errorf("%s: coverage=%d%%, want %d%%", p.Name, got, want[p.Name])
		}
	}
}

func TestInfeasibleProfiles(t *testing.T) {
	bad := []synth.Profile{
		{Name: "x", Loops: 0, Statements: 10, InLoops: 5},
		{Name: "x", Loops: 5, Statements: 10, InLoops: 3},
		{Name: "x", Loops: 2, Statements: 3, InLoops: 5},
	}
	for _, p := range bad {
		if _, err := synth.Generate(p); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", p)
		}
	}
}

func TestLoopcovNestedCounting(t *testing.T) {
	src := `
void f(int n) {
	int i; int j;
	double a;
	a = 0.0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			a = a + 1.0;
		}
		a = a * 2.0;
	}
	a = a - 1.0;
}`
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	st := loopcov.Measure(file)
	if st.Loops != 2 {
		t.Errorf("loops=%d, want 2", st.Loops)
	}
	// Counted: a=0.0 (top), a=a+1.0 (in), a=a*2.0 (in), a=a-1.0 (top).
	if st.Statements != 4 || st.InLoops != 2 {
		t.Errorf("statements=%d in=%d, want 4/2", st.Statements, st.InLoops)
	}
	if st.Percentage() != 50 {
		t.Errorf("coverage=%g, want 50", st.Percentage())
	}
}
