// Package loopcov measures loop coverage — the fraction of statements
// lexically inside loop scopes — reproducing the survey statistic the
// paper quotes from Bastoul et al. in Table I to motivate loop-centric
// modeling (77–100% across ten HPC applications).
package loopcov

import (
	"fmt"

	"mira/internal/ast"
)

// Stats is the loop-coverage measurement of one translation unit.
type Stats struct {
	Name       string
	Loops      int // number of loop statements (for + while)
	Statements int // total countable statements
	InLoops    int // statements inside at least one loop scope
}

// Percentage returns the loop-coverage ratio as a percentage.
func (s Stats) Percentage() float64 {
	if s.Statements == 0 {
		return 0
	}
	return float64(s.InLoops) / float64(s.Statements) * 100
}

func (s Stats) String() string {
	return fmt.Sprintf("%-10s loops=%-5d statements=%-6d in-loops=%-6d coverage=%.0f%%",
		s.Name, s.Loops, s.Statements, s.InLoops, s.Percentage())
}

// Measure computes loop coverage for a file. Statement counting follows
// the survey's convention: executable statements are counted (expression
// statements, declarations with initializers, returns, and branches);
// loop headers, blocks, and empty statements are structural and are not —
// which is what allows the survey's 100%-coverage rows (mgrid, swim),
// where every executable statement lives inside some loop.
func Measure(f *ast.File) Stats {
	st := Stats{Name: f.Name}
	for _, fd := range f.Funcs() {
		if fd.Body == nil {
			continue
		}
		countBlock(fd.Body, 0, &st)
	}
	return st
}

func countBlock(b *ast.BlockStmt, depth int, st *Stats) {
	for _, s := range b.Stmts {
		countStmt(s, depth, st)
	}
}

func countStmt(s ast.Stmt, depth int, st *Stats) {
	tally := func() {
		st.Statements++
		if depth > 0 {
			st.InLoops++
		}
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		countBlock(x, depth, st)
	case *ast.EmptyStmt:
	case *ast.VarDecl:
		// Declarations count when they initialize (executable effect).
		for _, d := range x.Names {
			if d.Init != nil {
				tally()
			}
		}
	case *ast.ExprStmt, *ast.ReturnStmt, *ast.BreakStmt, *ast.ContinueStmt:
		tally()
	case *ast.IfStmt:
		tally()
		countStmt(x.Then, depth, st)
		if x.Else != nil {
			countStmt(x.Else, depth, st)
		}
	case *ast.ForStmt:
		st.Loops++
		countStmt(x.Body, depth+1, st)
	case *ast.WhileStmt:
		st.Loops++
		countStmt(x.Body, depth+1, st)
	}
}
