package loopcov_test

import (
	"testing"

	"mira/internal/loopcov"
	"mira/internal/parser"
)

func measure(t *testing.T, src string) loopcov.Stats {
	t.Helper()
	f, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return loopcov.Measure(f)
}

func TestEmptyFile(t *testing.T) {
	st := measure(t, `void f() { }`)
	if st.Loops != 0 || st.Statements != 0 || st.Percentage() != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStraightLineOnly(t *testing.T) {
	st := measure(t, `
void f() {
	double a;
	a = 1.0;
	a = a + 2.0;
}`)
	if st.Loops != 0 || st.Statements != 2 || st.InLoops != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFullCoverage(t *testing.T) {
	// Everything executable sits inside loops: 100% (the survey's mgrid
	// and swim rows).
	st := measure(t, `
void f(int n) {
	int i;
	double a;
	for (i = 0; i < n; i++) {
		a = a + 1.0;
		a = a * 2.0;
	}
}`)
	if st.Percentage() != 100 {
		t.Errorf("coverage = %g, want 100", st.Percentage())
	}
	if st.Loops != 1 || st.Statements != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBranchesAndDeclsCounted(t *testing.T) {
	st := measure(t, `
void f(int n) {
	int i;
	int started = 1;
	for (i = 0; i < n; i++) {
		if (i > 2) {
			started = 0;
		}
	}
	if (n > 0) { started = 2; }
}`)
	// Counted: started decl-with-init (top), if (in), started=0 (in),
	// if (top), started=2 (top).
	if st.Statements != 5 || st.InLoops != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNestedLoopsCountOnce(t *testing.T) {
	st := measure(t, `
void f(int n) {
	int i; int j;
	double a;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			a = a + 1.0;
	while (n > 0) {
		a = a - 1.0;
		n = n - 1;
	}
}`)
	if st.Loops != 3 {
		t.Errorf("loops = %d, want 3", st.Loops)
	}
	if st.InLoops != 3 || st.Statements != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMultipleFunctionsAggregate(t *testing.T) {
	st := measure(t, `
void a(int n) {
	int i; double x;
	for (i = 0; i < n; i++) { x = x + 1.0; }
}
void b() {
	double y;
	y = 0.0;
}`)
	if st.Loops != 1 || st.Statements != 2 || st.InLoops != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Percentage() != 50 {
		t.Errorf("coverage = %g", st.Percentage())
	}
}

func TestStringer(t *testing.T) {
	st := measure(t, `void f() { int i; for (i = 0; i < 3; i++) { i = i; } }`)
	if s := st.String(); s == "" {
		t.Error("empty string")
	}
}
