package cc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/token"
)

// Unit byte encoding — the portable form a persistent cache stores under
// a function-content key. The format is deliberately simple (varint
// fields, length-prefixed strings) and fully validated on decode; any
// defect is an error the caller treats as a cache miss. Framing version
// changes ride on the store's magic, not on this encoding.

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

// EncodeBytes serializes the unit.
func (u *Unit) EncodeBytes() []byte {
	var buf bytes.Buffer
	putString(&buf, u.Name)
	putUvarint(&buf, uint64(len(u.Instrs)))
	for _, in := range u.Instrs {
		putUvarint(&buf, uint64(in.Op))
		putVarint(&buf, int64(in.Rd))
		putVarint(&buf, int64(in.Rs1))
		putVarint(&buf, int64(in.Rs2))
		putVarint(&buf, in.Imm)
	}
	for _, p := range u.Tags {
		putVarint(&buf, int64(p.Line))
		putVarint(&buf, int64(p.Col))
	}
	idxs := make([]int, 0, len(u.Calls))
	for idx := range u.Calls {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	putUvarint(&buf, uint64(len(idxs)))
	for _, idx := range idxs {
		putUvarint(&buf, uint64(idx))
		putString(&buf, u.Calls[idx])
	}
	putString(&buf, u.Sym.Name)
	putUvarint(&buf, uint64(u.Sym.RegCount))
	putUvarint(&buf, uint64(len(u.Sym.Params)))
	for _, k := range u.Sym.Params {
		putUvarint(&buf, uint64(k))
	}
	putUvarint(&buf, uint64(u.Sym.Ret))
	if u.Sym.Extern {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	return buf.Bytes()
}

type unitReader struct {
	b   []byte
	err error
}

func (r *unitReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("cc: unit decode: bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *unitReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("cc: unit decode: bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *unitReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("cc: unit decode: truncated string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// DecodeUnitBytes deserializes and validates a unit encoded by
// EncodeBytes. Any framing defect returns an error.
func DecodeUnitBytes(raw []byte) (*Unit, error) {
	r := &unitReader{b: raw}
	u := &Unit{Name: r.string()}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	const maxInstrs = 1 << 24 // refuse absurd counts before allocating
	if n > maxInstrs {
		return nil, fmt.Errorf("cc: unit decode: instruction count %d too large", n)
	}
	u.Instrs = make([]ir.Instr, n)
	for i := range u.Instrs {
		u.Instrs[i] = ir.Instr{
			Op:  ir.Op(r.uvarint()),
			Rd:  int32(r.varint()),
			Rs1: int32(r.varint()),
			Rs2: int32(r.varint()),
			Imm: r.varint(),
		}
	}
	u.Tags = make([]token.Pos, n)
	for i := range u.Tags {
		u.Tags[i] = token.Pos{Line: int(r.varint()), Col: int(r.varint())}
	}
	nc := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nc > n {
		return nil, fmt.Errorf("cc: unit decode: %d calls for %d instructions", nc, n)
	}
	u.Calls = make(map[int]string, nc)
	for i := uint64(0); i < nc; i++ {
		idx := r.uvarint()
		name := r.string()
		if r.err != nil {
			return nil, r.err
		}
		if idx >= n {
			return nil, fmt.Errorf("cc: unit decode: call index %d out of range", idx)
		}
		u.Calls[int(idx)] = name
	}
	u.Sym.Name = r.string()
	u.Sym.RegCount = uint32(r.uvarint())
	np := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if np > 1<<16 {
		return nil, fmt.Errorf("cc: unit decode: parameter count %d too large", np)
	}
	u.Sym.Params = make([]objfile.ParamKind, np)
	for i := range u.Sym.Params {
		u.Sym.Params[i] = objfile.ParamKind(r.uvarint())
	}
	u.Sym.Ret = objfile.ParamKind(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 1 {
		return nil, fmt.Errorf("cc: unit decode: trailing bytes")
	}
	u.Sym.Extern = r.b[0] == 1
	if u.Name == "" || u.Sym.Name != u.Name {
		return nil, fmt.Errorf("cc: unit decode: symbol/unit name mismatch")
	}
	return u, nil
}
