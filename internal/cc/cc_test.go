package cc_test

import (
	"bytes"
	"math"
	"testing"

	"mira/internal/cc"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
	"mira/internal/vm"
)

// build compiles source through the full pipeline INCLUDING an object-file
// encode/decode round trip, so every test also exercises the on-disk
// format the downstream tools consume.
func build(t *testing.T, src string) *objfile.File {
	t.Helper()
	return buildOpts(t, src, cc.Options{SourceName: "test.c"})
}

func buildOpts(t *testing.T, src string, opts cc.Options) *objfile.File {
	t.Helper()
	file, err := parser.ParseFile(opts.SourceName, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	obj, err := cc.Compile(prog, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if err := obj.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := objfile.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return decoded
}

func run(t *testing.T, obj *objfile.File, entry string, args ...vm.Value) (vm.Value, *vm.Machine) {
	t.Helper()
	m := vm.New(obj)
	v, err := m.Run(entry, args...)
	if err != nil {
		t.Fatalf("run %s: %v", entry, err)
	}
	return v, m
}

func TestReturnConstant(t *testing.T) {
	obj := build(t, `int main() { return 42; }`)
	v, _ := run(t, obj, "main")
	if v.I != 42 {
		t.Errorf("main() = %d", v.I)
	}
}

func TestIntArithmetic(t *testing.T) {
	obj := build(t, `
int f(int a, int b) {
	return (a + b) * (a - b) / 2 + a % b;
}`)
	for _, c := range [][3]int64{{10, 3, 0}, {7, 2, 0}, {-5, 3, 0}} {
		a, b := c[0], c[1]
		want := (a+b)*(a-b)/2 + a%b
		v, _ := run(t, obj, "f", vm.Int(a), vm.Int(b))
		if v.I != want {
			t.Errorf("f(%d,%d) = %d, want %d", a, b, v.I, want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	obj := build(t, `
double f(double x, double y) {
	return x*y + x/y - 1.5;
}`)
	v, _ := run(t, obj, "f", vm.Float(3.0), vm.Float(2.0))
	want := 3.0*2.0 + 3.0/2.0 - 1.5
	if v.F != want {
		t.Errorf("f = %g, want %g", v.F, want)
	}
}

func TestMixedArithmeticPromotion(t *testing.T) {
	obj := build(t, `
double f(int n, double x) {
	return n * x + n;
}`)
	v, _ := run(t, obj, "f", vm.Int(3), vm.Float(2.5))
	if v.F != 3*2.5+3 {
		t.Errorf("f = %g", v.F)
	}
}

func TestBasicLoopSum(t *testing.T) {
	obj := build(t, `
int sum(int n) {
	int s;
	int i;
	s = 0;
	for (i = 1; i <= n; i++) {
		s = s + i;
	}
	return s;
}`)
	v, _ := run(t, obj, "sum", vm.Int(100))
	if v.I != 5050 {
		t.Errorf("sum(100) = %d", v.I)
	}
	// Empty loop.
	v, _ = run(t, obj, "sum", vm.Int(0))
	if v.I != 0 {
		t.Errorf("sum(0) = %d", v.I)
	}
}

func TestNestedTriangularLoop(t *testing.T) {
	// Listing 2 shape: counts (i,j) pairs.
	obj := build(t, `
int count() {
	int c; int i; int j;
	c = 0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			c++;
		}
	return c;
}`)
	v, _ := run(t, obj, "count")
	if v.I != 14 {
		t.Errorf("count = %d, want 14", v.I)
	}
}

func TestLocalArray1D(t *testing.T) {
	obj := build(t, `
double f(int n) {
	double a[n];
	int i;
	for (i = 0; i < n; i++) {
		a[i] = i * 2.0;
	}
	double s;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s += a[i];
	}
	return s;
}`)
	v, _ := run(t, obj, "f", vm.Int(10))
	if v.F != 90.0 {
		t.Errorf("f(10) = %g, want 90", v.F)
	}
}

func TestLocalArray2D(t *testing.T) {
	obj := build(t, `
int f() {
	int a[3][4];
	int i; int j; int s;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			a[i][j] = i * 10 + j;
	s = 0;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			s += a[i][j];
	return s;
}`)
	v, _ := run(t, obj, "f")
	// sum over i of 4*(10i) + (0+1+2+3) = 0+6 + 40+6 + 80+6
	if v.I != 138 {
		t.Errorf("f() = %d, want 138", v.I)
	}
}

func TestGlobalScalarAndArray(t *testing.T) {
	obj := build(t, `
const int N = 8;
int counter = 5;
double table[N];
void bump() { counter = counter + 1; }
int f() {
	int i;
	for (i = 0; i < N; i++) { table[i] = i; }
	bump();
	bump();
	double s; s = 0.0;
	for (i = 0; i < N; i++) { s += table[i]; }
	return counter * 100 + s;
}`)
	v, _ := run(t, obj, "f")
	if v.I != 7*100+28 {
		t.Errorf("f() = %d, want 728", v.I)
	}
}

func TestPointerParams(t *testing.T) {
	obj := build(t, `
void fill(double *x, int n, double v) {
	int i;
	for (i = 0; i < n; i++) { x[i] = v; }
}
double total(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) { s += x[i]; }
	return s;
}
double f(int n) {
	double a[n];
	fill(a, n, 2.5);
	return total(a, n);
}`)
	v, _ := run(t, obj, "f", vm.Int(12))
	if v.F != 30.0 {
		t.Errorf("f(12) = %g, want 30", v.F)
	}
}

func TestClassMethodsAndOperator(t *testing.T) {
	obj := build(t, `
class Acc {
public:
	int n;
	double total;
	void add(double v) {
		total = total + v;
		n = n + 1;
	}
	double operator()(int k) {
		return total * k;
	}
};
double f() {
	Acc a;
	a.n = 0;
	a.total = 0.0;
	a.add(1.5);
	a.add(2.5);
	return a(10) + a.n;
}`)
	v, _ := run(t, obj, "f")
	if v.F != 40.0+2.0 {
		t.Errorf("f() = %g, want 42", v.F)
	}
}

func TestClassPointerField(t *testing.T) {
	obj := build(t, `
class Vec {
public:
	int n;
	double *coefs;
};
double dotself(Vec v) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < v.n; i++) { s += v.coefs[i] * v.coefs[i]; }
	return s;
}
double f(int n) {
	Vec v;
	double data[n];
	int i;
	for (i = 0; i < n; i++) { data[i] = 2.0; }
	v.n = n;
	v.coefs = data;
	return dotself(v);
}`)
	v, _ := run(t, obj, "f", vm.Int(5))
	if v.F != 20.0 {
		t.Errorf("f(5) = %g, want 20", v.F)
	}
}

func TestExternLibraryCalls(t *testing.T) {
	obj := build(t, `
extern double sqrt(double x);
extern int min(int a, int b);
extern int max(int a, int b);
extern double fabs(double x);
double f(double x) {
	return sqrt(x) + fabs(0.0 - 3.0) + min(2, 5) + max(2, 5);
}`)
	v, _ := run(t, obj, "f", vm.Float(16.0))
	if math.Abs(v.F-(4.0+3+2+5)) > 1e-9 {
		t.Errorf("f(16) = %g, want 14", v.F)
	}
	// Library bodies are marked extern in the symbol table.
	sym, ok := obj.LookupSym("sqrt")
	if !ok || !sym.Extern {
		t.Error("sqrt symbol missing or not extern")
	}
}

func TestBreakContinue(t *testing.T) {
	obj := build(t, `
int f(int n) {
	int i; int s;
	s = 0;
	for (i = 0; i < n; i++) {
		if (i == 2) { continue; }
		if (i == 5) { break; }
		s += i;
	}
	return s;
}`)
	v, _ := run(t, obj, "f", vm.Int(100))
	if v.I != 0+1+3+4 {
		t.Errorf("f = %d, want 8", v.I)
	}
}

func TestWhileLoop(t *testing.T) {
	obj := build(t, `
int collatzSteps(int n) {
	int steps;
	steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps++;
	}
	return steps;
}`)
	v, _ := run(t, obj, "collatzSteps", vm.Int(6))
	if v.I != 8 {
		t.Errorf("collatz(6) = %d, want 8", v.I)
	}
}

func TestTernaryAndLogicalOps(t *testing.T) {
	obj := build(t, `
int f(int a, int b) {
	int big;
	big = a > b ? a : b;
	if (a > 0 && b > 0 || a == b) { big = big + 100; }
	return big;
}`)
	v, _ := run(t, obj, "f", vm.Int(3), vm.Int(7))
	if v.I != 107 {
		t.Errorf("f(3,7) = %d, want 107", v.I)
	}
	v, _ = run(t, obj, "f", vm.Int(-2), vm.Int(-2))
	if v.I != 98 {
		t.Errorf("f(-2,-2) = %d, want 98", v.I)
	}
	v, _ = run(t, obj, "f", vm.Int(-3), vm.Int(-7))
	if v.I != -3 {
		t.Errorf("f(-3,-7) = %d, want -3", v.I)
	}
}

func TestIncDecSemantics(t *testing.T) {
	obj := build(t, `
int f() {
	int i; int a;
	i = 5;
	a = i++;      // a=5, i=6
	a = a + ++i;  // i=7, a=12
	a = a - i--;  // a=5, i=6
	return a * 10 + i;
}`)
	v, _ := run(t, obj, "f")
	if v.I != 56 {
		t.Errorf("f() = %d, want 56", v.I)
	}
}

func TestCompoundAssignOnArrayElem(t *testing.T) {
	obj := build(t, `
double f() {
	double a[4];
	a[0] = 1.0;
	a[0] += 2.0;
	a[0] *= 3.0;
	a[0] -= 1.0;
	a[0] /= 2.0;
	return a[0];
}`)
	v, _ := run(t, obj, "f")
	if v.F != 4.0 {
		t.Errorf("f() = %g, want 4", v.F)
	}
}

func TestStridedLoop(t *testing.T) {
	obj := build(t, `
int f(int n) {
	int i; int c;
	c = 0;
	for (i = 0; i < n; i += 3) { c++; }
	return c;
}`)
	v, _ := run(t, obj, "f", vm.Int(10))
	if v.I != 4 {
		t.Errorf("f(10) = %d, want 4", v.I)
	}
}

func TestDownwardLoop(t *testing.T) {
	obj := build(t, `
int f(int n) {
	int i; int s;
	s = 0;
	for (i = n; i >= 1; i--) { s += i; }
	return s;
}`)
	v, _ := run(t, obj, "f", vm.Int(4))
	if v.I != 10 {
		t.Errorf("f(4) = %d, want 10", v.I)
	}
}

func TestCallChainAndRecursionRejected(t *testing.T) {
	// Deep call chain works.
	obj := build(t, `
int c(int x) { return x + 1; }
int b(int x) { return c(x) * 2; }
int a(int x) { return b(x) + c(x); }
int f(int x) { return a(x); }
`)
	v, _ := run(t, obj, "f", vm.Int(5))
	if v.I != (5+1)*2+(5+1) {
		t.Errorf("f(5) = %d, want 18", v.I)
	}

	// Recursion must be rejected at sema time.
	file, err := parser.ParseFile("r.c", `int r(int n) { return r(n-1); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sema.Analyze(file); err == nil {
		t.Error("recursive program accepted")
	}
}

func TestConstantFoldingEmitsSingleLoad(t *testing.T) {
	obj := buildOpts(t, `
double f(double x) {
	return x * (2.0 * 3.141592653589793 / 360.0);
}`, cc.Options{SourceName: "fold.c"})
	sym, _ := obj.LookupSym("f")
	var fpi int
	for _, in := range obj.FuncText(sym) {
		if in.Op.IsFPI() {
			fpi++
		}
	}
	// Folded: exactly one MULSD survives.
	if fpi != 1 {
		t.Errorf("optimized FPI per call = %d, want 1", fpi)
	}
	// Unoptimized keeps the source structure (mul, div, mul = 3).
	obj0 := buildOpts(t, `
double f(double x) {
	return x * (2.0 * 3.141592653589793 / 360.0);
}`, cc.Options{SourceName: "fold.c", DisableOpt: true})
	sym0, _ := obj0.LookupSym("f")
	var fpi0 int
	for _, in := range obj0.FuncText(sym0) {
		if in.Op.IsFPI() {
			fpi0++
		}
	}
	if fpi0 != 3 {
		t.Errorf("unoptimized FPI per call = %d, want 3", fpi0)
	}
	// Semantics must agree.
	v1, _ := run(t, obj, "f", vm.Float(90))
	v0, _ := run(t, obj0, "f", vm.Float(90))
	if math.Abs(v1.F-v0.F) > 1e-12 {
		t.Errorf("optimized %g != unoptimized %g", v1.F, v0.F)
	}
}

func TestStrengthReduction(t *testing.T) {
	obj := build(t, `int f(int x) { return x * 8 + x / 4; }`)
	sym, _ := obj.LookupSym("f")
	var shifts, muls int
	for _, in := range obj.FuncText(sym) {
		switch in.Op {
		case ir.SHLI, ir.SARI:
			shifts++
		case ir.IMUL, ir.IMULI, ir.IDIV:
			muls++
		}
	}
	if shifts != 2 || muls != 0 {
		t.Errorf("shifts=%d muls=%d, want 2/0", shifts, muls)
	}
	v, _ := run(t, obj, "f", vm.Int(100))
	if v.I != 825 {
		t.Errorf("f(100) = %d, want 825", v.I)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	src := `
double f(double *x, int n, double alpha, double beta) {
	int i;
	double s;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s += x[i] * (alpha * beta + 2.0);
	}
	return s;
}`
	obj := build(t, src)
	m := vm.New(obj)
	base := m.Alloc(8)
	for i := 0; i < 8; i++ {
		m.SetF(base+uint64(i), 1.0)
	}
	v, err := m.Run("f", vm.Int(int64(base)), vm.Int(8), vm.Float(2.0), vm.Float(3.0))
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 8*(2.0*3.0+2.0) {
		t.Errorf("f = %g, want 64", v.F)
	}
	// With LICM the loop body performs 2 FPI per element (mul + add);
	// alpha*beta+2.0 is hoisted. Without, 4 FPI per element.
	st, _ := m.FuncStatsByName("f")
	gotFPI := st.FPIExclusive()
	if gotFPI != 2+8*2 { // 2 hoisted + 16 in-loop
		t.Errorf("optimized FPI = %d, want 18", gotFPI)
	}

	obj0 := buildOpts(t, src, cc.Options{SourceName: "licm.c", DisableOpt: true})
	m0 := vm.New(obj0)
	base0 := m0.Alloc(8)
	for i := 0; i < 8; i++ {
		m0.SetF(base0+uint64(i), 1.0)
	}
	v0, err := m0.Run("f", vm.Int(int64(base0)), vm.Int(8), vm.Float(2.0), vm.Float(3.0))
	if err != nil {
		t.Fatal(err)
	}
	if v0.F != v.F {
		t.Errorf("unoptimized result %g != %g", v0.F, v.F)
	}
	st0, _ := m0.FuncStatsByName("f")
	if st0.FPIExclusive() != 8*4 {
		t.Errorf("unoptimized FPI = %d, want 32", st0.FPIExclusive())
	}
}

func TestInclusiveVsExclusiveCounts(t *testing.T) {
	obj := build(t, `
double inner(double x) { return x * x; }
double outer(double x) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < 10; i++) {
		s += inner(x);
	}
	return s;
}`)
	v, m := run(t, obj, "outer", vm.Float(2.0))
	if v.F != 40.0 {
		t.Errorf("outer = %g, want 40", v.F)
	}
	in, _ := m.FuncStatsByName("inner")
	out, _ := m.FuncStatsByName("outer")
	if in.Calls != 10 {
		t.Errorf("inner calls = %d", in.Calls)
	}
	if in.FPIExclusive() != 10 { // one MULSD per call
		t.Errorf("inner FPI = %d, want 10", in.FPIExclusive())
	}
	if out.FPIExclusive() != 10 { // one ADDSD per iteration
		t.Errorf("outer exclusive FPI = %d, want 10", out.FPIExclusive())
	}
	if out.FPIInclusive() != 20 {
		t.Errorf("outer inclusive FPI = %d, want 20", out.FPIInclusive())
	}
}

func TestVMFaults(t *testing.T) {
	obj := build(t, `
int div(int a, int b) { return a / b; }
double oob(int n) {
	double a[4];
	return a[n];
}`)
	m := vm.New(obj)
	if _, err := m.Run("div", vm.Int(1), vm.Int(0)); err == nil {
		t.Error("division by zero not faulted")
	}
	m = vm.New(obj)
	if _, err := m.Run("oob", vm.Int(1000000)); err == nil {
		t.Error("out-of-bounds access not faulted")
	}
}

func TestStepLimit(t *testing.T) {
	obj := build(t, `
int spin() {
	int i;
	i = 0;
	while (i < 1000000000) { i++; }
	return i;
}`)
	m := vm.New(obj)
	m.MaxSteps = 1000
	if _, err := m.Run("spin"); err == nil {
		t.Error("step limit not enforced")
	}
}

func TestLineTableCoversAllInstructions(t *testing.T) {
	obj := build(t, `
int f(int n) {
	int s; int i;
	s = 0;
	for (i = 0; i < n; i++) { s += i; }
	return s;
}`)
	if obj.Line == nil {
		t.Fatal("no line table")
	}
	for addr := uint64(0); addr < uint64(len(obj.Text)); addr++ {
		if _, ok := obj.Line.Lookup(addr); !ok {
			t.Fatalf("no line info for instruction %d", addr)
		}
	}
	// The for header instructions must span at least three distinct
	// columns on the same line (init / cond / post).
	sym, _ := obj.LookupSym("f")
	cols := map[int32]bool{}
	var headerLine int32
	for a := sym.Start; a < sym.End(); a++ {
		row, _ := obj.Line.Lookup(a)
		if row.Line == 5 { // the for statement's line
			cols[row.Col] = true
			headerLine = row.Line
		}
	}
	if headerLine != 5 || len(cols) < 3 {
		t.Errorf("for header columns = %v (line %d), want >= 3 distinct", cols, headerLine)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`int f() { return g(); }`,                                           // undefined function
		`int f(int a) { return a + b; }`,                                    // undefined variable
		`extern double mystery(double x); int f() { return mystery(1.0); }`, // no lib body
		`int f() { double a[4]; a = 0; return 0; }`,                         // assign to array
		`const int N = 5; int f() { N = 6; return N; }`,                     // assign to const
		`int f() { break; return 0; }`,                                      // break outside loop
		`class C { public: int x; }; int f() { C c; return c.y; }`,          // no field
	}
	for _, src := range cases {
		file, err := parser.ParseFile("bad.c", src)
		if err != nil {
			continue // parse-time rejection also fine
		}
		prog, err := sema.Analyze(file)
		if err != nil {
			continue
		}
		if _, err := cc.Compile(prog, cc.Options{SourceName: "bad.c"}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}
