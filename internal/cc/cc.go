// Package cc compiles MiniC source (via the sema-analyzed AST) into a Mira
// object file: synthetic x86-flavoured instructions, a symbol table, a
// .data image for globals, and a DWARF-style line table tagging every
// instruction with the source line *and column* that produced it.
//
// The compiler stands in for gcc/icc in the paper's pipeline. It performs
// the optimizations whose effects separate binary-level analysis (Mira)
// from source-only analysis (PBound): constant folding, strength
// reduction, dead-code elision on redundant moves, and loop-invariant code
// motion of floating-point subexpressions (hoisted code is tagged to the
// loop's init clause, which is also where the static model attributes
// once-per-loop-entry cost).
//
// Calling convention: arguments are staged with ARGI/ARGF in parameter
// order (methods receive `this` first), CALL transfers them into the
// callee's registers r0..rk, and RETI/RETF place the return value where
// GETRETI/GETRETF retrieve it. Local arrays (C99 VLA style) and objects
// are carved from the heap with ALLOC; CALL/RET save and restore the heap
// top, giving stack discipline.
package cc

import (
	"fmt"
	"math"
	"sort"

	"mira/internal/ast"
	"mira/internal/dwarfline"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/sema"
	"mira/internal/token"
)

// Options controls compilation.
type Options struct {
	// SourceName is recorded in the object file for diagnostics.
	SourceName string
	// DisableOpt turns off constant folding across expressions, strength
	// reduction, and LICM — the "unoptimized binary" used by ablations.
	DisableOpt bool
}

// Error is a compile error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Unit is one compiled, not-yet-linked function: its instruction body,
// per-instruction position tags, unresolved call sites (callee names
// rather than symbol indexes — symbol indexes are a property of the final
// link order, not of the function), and symbol metadata. Units are the
// per-function artifacts the incremental pipeline caches by
// function-content hash; Link never mutates one, so a cached Unit can be
// linked into any number of object files.
type Unit struct {
	Name   string
	Instrs []ir.Instr
	Tags   []token.Pos
	// Calls maps a CALL instruction's index within Instrs to the callee's
	// qualified name; Link resolves it against the final symbol table.
	Calls map[int]string
	// Sym is the symbol metadata; Start and Count are zero until Link
	// places the unit.
	Sym objfile.Symbol
}

// CompileFunc compiles a single function (defined or extern) into a Unit.
// Each call is self-contained: global layout is recomputed from the
// program, so compiling functions one by one produces bit-identical
// bodies to a whole-program Compile.
func CompileFunc(prog *sema.Program, opts Options, qname string) (*Unit, error) {
	fi, ok := prog.Funcs[qname]
	if !ok {
		return nil, fmt.Errorf("cc: no function %q", qname)
	}
	if fi.Decl.IsExtern {
		return externUnit(fi)
	}
	g := &globalCtx{
		prog:       prog,
		opts:       opts,
		globalAddr: map[string]uint64{},
	}
	if err := g.layoutGlobals(); err != nil {
		return nil, err
	}
	var compileErr error
	var fc *funcCompiler
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(*Error); ok {
					compileErr = e
					return
				}
				panic(r)
			}
		}()
		fc = newFuncCompiler(g, fi)
		fc.compile()
	}()
	if compileErr != nil {
		return nil, compileErr
	}
	calls := make(map[int]string, len(g.callNames))
	for k, callee := range g.callNames {
		calls[k.instr] = callee
	}
	return &Unit{
		Name:   qname,
		Instrs: fc.instrs,
		Tags:   fc.tags,
		Calls:  calls,
		Sym: objfile.Symbol{
			Name:     qname,
			RegCount: uint32(fc.nextReg),
			Params:   fc.paramKinds(),
			Ret:      retKind(fi.Decl.RetType),
		},
	}, nil
}

// externUnit materializes the builtin library body for an extern
// declaration.
func externUnit(fi *sema.FuncInfo) (*Unit, error) {
	q := fi.QName
	body, ok := libBody(q)
	if !ok {
		return nil, &Error{Pos: fi.Decl.Pos(), Msg: fmt.Sprintf("extern function %q has no library implementation", q)}
	}
	var kinds []objfile.ParamKind
	for _, p := range fi.Decl.Params {
		kinds = append(kinds, paramKind(p.Type))
	}
	regCount := int32(len(kinds))
	for _, in := range body {
		for _, r := range []int32{in.Rd, in.Rs1, in.Rs2} {
			if r != ir.NoReg && r+1 > regCount {
				regCount = r + 1
			}
		}
	}
	tags := make([]token.Pos, len(body))
	for i := range tags {
		tags[i] = fi.Decl.Pos()
	}
	return &Unit{
		Name:   q,
		Instrs: body,
		Tags:   tags,
		Sym: objfile.Symbol{
			Name:     q,
			RegCount: uint32(regCount),
			Params:   kinds,
			Ret:      retKind(fi.Decl.RetType),
			Extern:   true,
		},
	}, nil
}

// LinkOrder returns function qualified names in object-file layout order:
// defined functions in source order, then extern declarations in source
// order — the order Compile has always emitted.
func LinkOrder(prog *sema.Program) []string {
	out := make([]string, 0, len(prog.FuncOrder))
	for _, q := range prog.FuncOrder {
		if !prog.Funcs[q].Decl.IsExtern {
			out = append(out, q)
		}
	}
	for _, q := range prog.FuncOrder {
		if prog.Funcs[q].Decl.IsExtern {
			out = append(out, q)
		}
	}
	return out
}

// Link assembles compiled units (in the given order) into an object file:
// concatenate bodies, resolve call targets against the symbol table, emit
// the line table, and lay out the .data image. Units are read-only inputs
// — instruction bodies are copied before call patching — so cached units
// survive linking unchanged.
func Link(prog *sema.Program, opts Options, units []*Unit) (*objfile.File, error) {
	g := &globalCtx{
		prog:       prog,
		opts:       opts,
		globalAddr: map[string]uint64{},
	}
	if err := g.layoutGlobals(); err != nil {
		return nil, err
	}
	symIndex := map[string]int64{}
	for i, u := range units {
		symIndex[u.Name] = int64(i)
	}
	f := &objfile.File{SourceName: opts.SourceName, MemWords: g.memTop}
	var lb dwarfline.Builder
	for _, u := range units {
		sym := u.Sym
		sym.Start = uint64(len(f.Text))
		sym.Count = uint64(len(u.Instrs))
		instrs := append([]ir.Instr(nil), u.Instrs...)
		for j, in := range instrs {
			if in.Op == ir.CALL {
				name := u.Calls[j]
				idx, ok := symIndex[name]
				if !ok {
					return nil, fmt.Errorf("cc: call to unknown symbol %q", name)
				}
				in.Imm = idx
				instrs[j] = in
			}
			addr := sym.Start + uint64(j)
			pos := u.Tags[j]
			if !pos.Valid() {
				pos = token.Pos{Line: 1, Col: 1}
			}
			lb.Add(addr, int32(pos.Line), int32(pos.Col))
		}
		f.Text = append(f.Text, instrs...)
		f.Syms = append(f.Syms, sym)
	}
	f.Line = lb.Table()
	f.Data = g.dataEntries()
	return f, nil
}

// Units compiles every function of the program into units, in link order.
func Units(prog *sema.Program, opts Options) ([]*Unit, error) {
	order := LinkOrder(prog)
	units := make([]*Unit, 0, len(order))
	for _, q := range order {
		u, err := CompileFunc(prog, opts, q)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// Compile translates an analyzed program into an object file.
func Compile(prog *sema.Program, opts Options) (*objfile.File, error) {
	units, err := Units(prog, opts)
	if err != nil {
		return nil, err
	}
	return Link(prog, opts, units)
}

// callKey identifies a CALL instruction before symbol indexes exist.
type callKey struct {
	fnIdx int
	instr int
}

// globalCtx is compiler state shared across functions.
type globalCtx struct {
	prog       *sema.Program
	opts       Options
	globalAddr map[string]uint64
	memTop     uint64
	callNames  map[callKey]string
	curFnIdx   int
}

func (g *globalCtx) layoutGlobals() error {
	g.callNames = map[callKey]string{}
	addr := uint64(0)
	for _, name := range g.prog.GlobalOrder {
		gi := g.prog.Globals[name]
		if gi.IsConst && gi.HasConst && len(gi.Dims) == 0 {
			continue // folded, occupies no memory
		}
		g.globalAddr[name] = addr
		addr += uint64(gi.Size)
	}
	g.memTop = addr
	return nil
}

func (g *globalCtx) dataEntries() []objfile.DataEntry {
	var out []objfile.DataEntry
	names := make([]string, 0, len(g.globalAddr))
	for n := range g.globalAddr {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return g.globalAddr[names[i]] < g.globalAddr[names[j]] })
	for _, n := range names {
		gi := g.prog.Globals[n]
		d := objfile.DataEntry{Name: n, Addr: g.globalAddr[n], Size: uint64(gi.Size)}
		if gi.HasConst && len(gi.Dims) == 0 {
			switch gi.Type.Kind {
			case ast.Double:
				d.Init = []uint64{math.Float64bits(gi.ConstF)}
			default:
				d.Init = []uint64{uint64(gi.ConstI)}
			}
		}
		out = append(out, d)
	}
	return out
}

func paramKind(t ast.Type) objfile.ParamKind {
	if t.Ptr > 0 || t.Kind == ast.Int || t.Kind == ast.Bool || t.Kind == ast.Class {
		return objfile.KindInt
	}
	if t.Kind == ast.Double {
		return objfile.KindFloat
	}
	return objfile.KindVoid
}

func retKind(t ast.Type) objfile.ParamKind {
	if t.Kind == ast.Void {
		return objfile.KindVoid
	}
	return paramKind(t)
}
