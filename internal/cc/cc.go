// Package cc compiles MiniC source (via the sema-analyzed AST) into a Mira
// object file: synthetic x86-flavoured instructions, a symbol table, a
// .data image for globals, and a DWARF-style line table tagging every
// instruction with the source line *and column* that produced it.
//
// The compiler stands in for gcc/icc in the paper's pipeline. It performs
// the optimizations whose effects separate binary-level analysis (Mira)
// from source-only analysis (PBound): constant folding, strength
// reduction, dead-code elision on redundant moves, and loop-invariant code
// motion of floating-point subexpressions (hoisted code is tagged to the
// loop's init clause, which is also where the static model attributes
// once-per-loop-entry cost).
//
// Calling convention: arguments are staged with ARGI/ARGF in parameter
// order (methods receive `this` first), CALL transfers them into the
// callee's registers r0..rk, and RETI/RETF place the return value where
// GETRETI/GETRETF retrieve it. Local arrays (C99 VLA style) and objects
// are carved from the heap with ALLOC; CALL/RET save and restore the heap
// top, giving stack discipline.
package cc

import (
	"fmt"
	"math"
	"sort"

	"mira/internal/ast"
	"mira/internal/dwarfline"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/sema"
	"mira/internal/token"
)

// Options controls compilation.
type Options struct {
	// SourceName is recorded in the object file for diagnostics.
	SourceName string
	// DisableOpt turns off constant folding across expressions, strength
	// reduction, and LICM — the "unoptimized binary" used by ablations.
	DisableOpt bool
}

// Error is a compile error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Compile translates an analyzed program into an object file.
func Compile(prog *sema.Program, opts Options) (*objfile.File, error) {
	g := &globalCtx{
		prog:       prog,
		opts:       opts,
		globalAddr: map[string]uint64{},
	}
	if err := g.layoutGlobals(); err != nil {
		return nil, err
	}

	type compiled struct {
		name   string
		instrs []ir.Instr
		tags   []token.Pos
		sym    objfile.Symbol
	}
	var fns []compiled

	var compileErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(*Error); ok {
					compileErr = e
					return
				}
				panic(r)
			}
		}()
		for _, q := range prog.FuncOrder {
			fi := prog.Funcs[q]
			if fi.Decl.IsExtern {
				continue // linked from the builtin library below
			}
			g.curFnIdx = len(fns)
			fc := newFuncCompiler(g, fi)
			fc.compile()
			fns = append(fns, compiled{
				name:   q,
				instrs: fc.instrs,
				tags:   fc.tags,
				sym: objfile.Symbol{
					Name:     q,
					RegCount: uint32(fc.nextReg),
					Params:   fc.paramKinds(),
					Ret:      retKind(fi.Decl.RetType),
				},
			})
		}
	}()
	if compileErr != nil {
		return nil, compileErr
	}

	// Link builtin library bodies for every extern declaration.
	for _, q := range prog.FuncOrder {
		fi := prog.Funcs[q]
		if !fi.Decl.IsExtern {
			continue
		}
		body, ok := libBody(q)
		if !ok {
			return nil, &Error{Pos: fi.Decl.Pos(), Msg: fmt.Sprintf("extern function %q has no library implementation", q)}
		}
		var kinds []objfile.ParamKind
		for _, p := range fi.Decl.Params {
			kinds = append(kinds, paramKind(p.Type))
		}
		regCount := int32(len(kinds))
		for _, in := range body {
			for _, r := range []int32{in.Rd, in.Rs1, in.Rs2} {
				if r != ir.NoReg && r+1 > regCount {
					regCount = r + 1
				}
			}
		}
		tags := make([]token.Pos, len(body))
		for i := range tags {
			tags[i] = fi.Decl.Pos()
		}
		fns = append(fns, compiled{
			name:   q,
			instrs: body,
			tags:   tags,
			sym: objfile.Symbol{
				Name:     q,
				RegCount: uint32(regCount),
				Params:   kinds,
				Ret:      retKind(fi.Decl.RetType),
				Extern:   true,
			},
		})
	}

	// Layout: concatenate function bodies, resolve call targets, emit the
	// line table.
	symIndex := map[string]int64{}
	for i, fn := range fns {
		symIndex[fn.name] = int64(i)
	}
	f := &objfile.File{SourceName: opts.SourceName, MemWords: g.memTop}
	var lb dwarfline.Builder
	for i := range fns {
		fn := &fns[i]
		fn.sym.Start = uint64(len(f.Text))
		fn.sym.Count = uint64(len(fn.instrs))
		for j, in := range fn.instrs {
			if in.Op == ir.CALL {
				// The compiler stores callee names positionally via
				// callFixups; resolve to symbol indexes.
				name := g.callNames[callKey{fnIdx: i, instr: j}]
				idx, ok := symIndex[name]
				if !ok {
					return nil, fmt.Errorf("cc: call to unknown symbol %q", name)
				}
				in.Imm = idx
				fn.instrs[j] = in
			}
			addr := fn.sym.Start + uint64(j)
			pos := fn.tags[j]
			if !pos.Valid() {
				pos = token.Pos{Line: 1, Col: 1}
			}
			lb.Add(addr, int32(pos.Line), int32(pos.Col))
		}
		f.Text = append(f.Text, fn.instrs...)
		f.Syms = append(f.Syms, fn.sym)
	}
	f.Line = lb.Table()
	f.Data = g.dataEntries()
	return f, nil
}

// callKey identifies a CALL instruction before symbol indexes exist.
type callKey struct {
	fnIdx int
	instr int
}

// globalCtx is compiler state shared across functions.
type globalCtx struct {
	prog       *sema.Program
	opts       Options
	globalAddr map[string]uint64
	memTop     uint64
	callNames  map[callKey]string
	curFnIdx   int
}

func (g *globalCtx) layoutGlobals() error {
	g.callNames = map[callKey]string{}
	addr := uint64(0)
	for _, name := range g.prog.GlobalOrder {
		gi := g.prog.Globals[name]
		if gi.IsConst && gi.HasConst && len(gi.Dims) == 0 {
			continue // folded, occupies no memory
		}
		g.globalAddr[name] = addr
		addr += uint64(gi.Size)
	}
	g.memTop = addr
	return nil
}

func (g *globalCtx) dataEntries() []objfile.DataEntry {
	var out []objfile.DataEntry
	names := make([]string, 0, len(g.globalAddr))
	for n := range g.globalAddr {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return g.globalAddr[names[i]] < g.globalAddr[names[j]] })
	for _, n := range names {
		gi := g.prog.Globals[n]
		d := objfile.DataEntry{Name: n, Addr: g.globalAddr[n], Size: uint64(gi.Size)}
		if gi.HasConst && len(gi.Dims) == 0 {
			switch gi.Type.Kind {
			case ast.Double:
				d.Init = []uint64{math.Float64bits(gi.ConstF)}
			default:
				d.Init = []uint64{uint64(gi.ConstI)}
			}
		}
		out = append(out, d)
	}
	return out
}

func paramKind(t ast.Type) objfile.ParamKind {
	if t.Ptr > 0 || t.Kind == ast.Int || t.Kind == ast.Bool || t.Kind == ast.Class {
		return objfile.KindInt
	}
	if t.Kind == ast.Double {
		return objfile.KindFloat
	}
	return objfile.KindVoid
}

func retKind(t ast.Type) objfile.ParamKind {
	if t.Kind == ast.Void {
		return objfile.KindVoid
	}
	return paramKind(t)
}
