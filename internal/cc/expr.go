package cc

import (
	"math"

	"mira/internal/ast"
	"mira/internal/ir"
	"mira/internal/sema"
	"mira/internal/token"
)

// lvalue is an assignable location.
type lvalue struct {
	isReg bool
	reg   int32 // register location
	// Memory location: mem[base + idx + off].
	base int32
	idx  int32
	off  int64
	typ  ast.Type
}

// ---------------------------------------------------------------------------
// Expressions

func (fc *funcCompiler) compileExpr(e ast.Expr) value {
	// Constant folding: whole subtrees that sema can evaluate fold to one
	// immediate load (PBound, reading source only, still counts their ops).
	if !fc.g.opts.DisableOpt {
		if v, ok := fc.foldConst(e); ok {
			return v
		}
	}
	if v, ok := fc.licmCache[exprKey(e)]; ok {
		return v
	}
	switch x := e.(type) {
	case *ast.IntLit:
		r := fc.reg()
		fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, x.Value)
		return value{reg: r, typ: ast.TypeInt}
	case *ast.FloatLit:
		r := fc.reg()
		fc.emit(ir.MOVSDI, r, ir.NoReg, ir.NoReg, int64(math.Float64bits(x.Value)))
		return value{reg: r, typ: ast.TypeDouble}
	case *ast.BoolLit:
		r := fc.reg()
		v := int64(0)
		if x.Value {
			v = 1
		}
		fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, v)
		return value{reg: r, typ: ast.TypeBool}
	case *ast.StringLit:
		fc.errf(x.Pos(), "string literals are not supported in expressions")
	case *ast.ParenExpr:
		return fc.compileExpr(x.X)
	case *ast.Ident:
		return fc.loadIdent(x)
	case *ast.IndexExpr:
		lv := fc.compileLValue(x)
		return fc.loadLValue(lv)
	case *ast.MemberExpr:
		lv := fc.compileLValue(x)
		return fc.loadLValue(lv)
	case *ast.UnaryExpr:
		return fc.compileUnary(x)
	case *ast.BinaryExpr:
		return fc.compileBinary(x)
	case *ast.AssignExpr:
		return fc.compileAssign(x)
	case *ast.CallExpr:
		v, ok := fc.compileCall(x, false)
		if !ok {
			fc.errf(x.Pos(), "void function used as a value")
		}
		return v
	case *ast.CondExpr:
		return fc.compileTernary(x)
	}
	fc.errf(e.Pos(), "unsupported expression %T", e)
	return value{}
}

// foldConst folds integer and floating constant subtrees. Pure literals
// always fold; composite expressions fold only when every leaf is constant.
func (fc *funcCompiler) foldConst(e ast.Expr) (value, bool) {
	switch e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit:
		return value{}, false // base emission handles these
	}
	if iv, ok := fc.g.prog.ConstInt(e); ok {
		r := fc.reg()
		fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, iv)
		return value{reg: r, typ: ast.TypeInt}, true
	}
	if isFloatExpr(e) {
		if fv, ok := fc.g.prog.ConstFloat(e); ok {
			r := fc.reg()
			fc.emit(ir.MOVSDI, r, ir.NoReg, ir.NoReg, int64(math.Float64bits(fv)))
			return value{reg: r, typ: ast.TypeDouble}, true
		}
	}
	return value{}, false
}

func isFloatExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.FloatLit:
		return true
	case *ast.BinaryExpr:
		return isFloatExpr(x.X) || isFloatExpr(x.Y)
	case *ast.UnaryExpr:
		return isFloatExpr(x.X)
	case *ast.ParenExpr:
		return isFloatExpr(x.X)
	}
	return false
}

func (fc *funcCompiler) loadIdent(x *ast.Ident) value {
	if l, ok := fc.lookup(x.Name); ok {
		t := l.typ
		if l.isArr {
			t.Ptr++
		}
		return value{reg: l.reg, typ: t}
	}
	// Implicit field access inside a method body.
	if fc.fi.Class != nil {
		if f, ok := fc.fi.Class.FieldByName(x.Name); ok {
			if f.Size > 1 {
				// Field array: produce its address.
				r := fc.reg()
				fc.emit(ir.LEA, r, fc.thisReg, ir.NoReg, f.Offset)
				t := f.Type
				t.Ptr++
				return value{reg: r, typ: t}
			}
			return fc.loadLValue(lvalue{base: fc.thisReg, idx: ir.NoReg, off: f.Offset, typ: f.Type})
		}
	}
	if g, ok := fc.g.prog.Globals[x.Name]; ok {
		if g.IsConst && g.HasConst && len(g.Dims) == 0 {
			r := fc.reg()
			if g.Type.Kind == ast.Double {
				fc.emit(ir.MOVSDI, r, ir.NoReg, ir.NoReg, int64(math.Float64bits(g.ConstF)))
				return value{reg: r, typ: ast.TypeDouble}
			}
			fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, g.ConstI)
			return value{reg: r, typ: g.Type}
		}
		addr := int64(fc.g.globalAddr[x.Name])
		if len(g.Dims) > 0 {
			r := fc.reg()
			fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, addr)
			t := g.Type
			t.Ptr++
			return value{reg: r, typ: t}
		}
		r := fc.reg()
		if g.Type.Kind == ast.Double {
			fc.emit(ir.MOVSDLD, r, ir.NoReg, ir.NoReg, addr)
		} else {
			fc.emit(ir.MOVLD, r, ir.NoReg, ir.NoReg, addr)
		}
		return value{reg: r, typ: g.Type}
	}
	fc.errf(x.Pos(), "undefined name %q", x.Name)
	return value{}
}

func (fc *funcCompiler) loadLValue(lv lvalue) value {
	if lv.isReg {
		return value{reg: lv.reg, typ: lv.typ}
	}
	r := fc.reg()
	if lv.typ.Ptr == 0 && lv.typ.Kind == ast.Double {
		fc.emit(ir.MOVSDLD, r, lv.base, lv.idx, lv.off)
	} else {
		fc.emit(ir.MOVLD, r, lv.base, lv.idx, lv.off)
	}
	return value{reg: r, typ: lv.typ}
}

func (fc *funcCompiler) storeLValue(lv lvalue, v value) {
	v = fc.coerce(v, lv.typ, token.Pos{})
	if lv.isReg {
		fc.move(lv.reg, v)
		return
	}
	if lv.typ.Ptr == 0 && lv.typ.Kind == ast.Double {
		fc.emit(ir.MOVSDST, lv.base, v.reg, lv.idx, lv.off)
	} else {
		fc.emit(ir.MOVST, lv.base, v.reg, lv.idx, lv.off)
	}
}

// compileLValue resolves an assignable expression into a location.
func (fc *funcCompiler) compileLValue(e ast.Expr) lvalue {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fc.compileLValue(x.X)
	case *ast.Ident:
		if l, ok := fc.lookup(x.Name); ok {
			if l.isArr || l.isObj {
				fc.errf(x.Pos(), "cannot assign to array or object %q", x.Name)
			}
			return lvalue{isReg: true, reg: l.reg, typ: l.typ}
		}
		if fc.fi.Class != nil {
			if f, ok := fc.fi.Class.FieldByName(x.Name); ok {
				return lvalue{base: fc.thisReg, idx: ir.NoReg, off: f.Offset, typ: f.Type}
			}
		}
		if g, ok := fc.g.prog.Globals[x.Name]; ok {
			if g.IsConst {
				fc.errf(x.Pos(), "cannot assign to const global %q", x.Name)
			}
			if len(g.Dims) > 0 {
				fc.errf(x.Pos(), "cannot assign to array %q", x.Name)
			}
			return lvalue{base: ir.NoReg, idx: ir.NoReg, off: int64(fc.g.globalAddr[x.Name]), typ: g.Type}
		}
		fc.errf(x.Pos(), "undefined name %q", x.Name)
	case *ast.IndexExpr:
		return fc.compileIndexLValue(x)
	case *ast.MemberExpr:
		return fc.compileMemberLValue(x)
	case *ast.UnaryExpr:
		if x.Op == token.STAR {
			p := fc.compileExpr(x.X)
			if p.typ.Ptr == 0 {
				fc.errf(x.Pos(), "cannot dereference non-pointer")
			}
			return lvalue{base: p.reg, idx: ir.NoReg, off: 0, typ: p.typ.Elem()}
		}
	}
	fc.errf(e.Pos(), "expression is not assignable")
	return lvalue{}
}

// compileIndexLValue handles a[i] and a[i][j], including the MOVSXD index
// widening every array access performs (the 64-bit mode instruction class).
func (fc *funcCompiler) compileIndexLValue(x *ast.IndexExpr) lvalue {
	// Collect the index chain: base expression and indices outermost-first.
	var indices []ast.Expr
	baseE := ast.Expr(x)
	for {
		ix, ok := baseE.(*ast.IndexExpr)
		if !ok {
			break
		}
		indices = append([]ast.Expr{ix.Index}, indices...)
		baseE = ix.X
	}

	// Resolve the base: local array, param pointer, global array, field.
	var baseReg int32
	var elem ast.Type
	var dimRegs []int32
	switch b := baseE.(type) {
	case *ast.Ident:
		if l, ok := fc.lookup(b.Name); ok {
			if !l.isArr {
				fc.errf(b.Pos(), "%q is not an array", b.Name)
			}
			baseReg = l.reg
			elem = l.typ
			dimRegs = l.dimRegs
		} else if f := fc.fieldOf(b.Name); f != nil {
			if f.Type.Ptr > 0 {
				// Pointer-typed field used as an array base: load it.
				pv := fc.loadLValue(lvalue{base: fc.thisReg, idx: ir.NoReg, off: f.Offset, typ: f.Type})
				baseReg = pv.reg
				elem = f.Type.Elem()
			} else {
				r := fc.reg()
				fc.emit(ir.LEA, r, fc.thisReg, ir.NoReg, f.Offset)
				baseReg = r
				elem = f.Type
			}
		} else if g, ok := fc.g.prog.Globals[b.Name]; ok && len(g.Dims) > 0 {
			r := fc.reg()
			fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, int64(fc.g.globalAddr[b.Name]))
			baseReg = r
			elem = g.Type
			// Materialize constant dims for multi-dim addressing.
			if len(g.Dims) > 1 {
				for _, d := range g.Dims {
					dr := fc.reg()
					fc.emit(ir.MOVRI, dr, ir.NoReg, ir.NoReg, d)
					dimRegs = append(dimRegs, dr)
				}
			}
		} else {
			fc.errf(b.Pos(), "undefined array %q", b.Name)
		}
	case *ast.MemberExpr:
		lv := fc.compileMemberLValue(b)
		// Pointer-typed field: load it; array field: its address.
		if lv.typ.Ptr > 0 {
			pv := fc.loadLValue(lv)
			baseReg = pv.reg
			elem = lv.typ.Elem()
		} else {
			fc.errf(b.Pos(), "field %q is not indexable", b.Sel)
		}
	default:
		// General pointer-valued expression.
		pv := fc.compileExpr(baseE)
		if pv.typ.Ptr == 0 {
			fc.errf(baseE.Pos(), "indexing non-pointer expression")
		}
		baseReg = pv.reg
		elem = pv.typ.Elem()
	}

	if len(indices) > 1 && len(dimRegs) < len(indices) {
		fc.errf(x.Pos(), "multi-dimensional indexing requires declared dimensions")
	}

	// Compute the linearized index with MOVSXD widening per index.
	var idxReg int32 = ir.NoReg
	for k, ie := range indices {
		iv := fc.compileExpr(ie)
		if iv.isFloat() {
			fc.errf(ie.Pos(), "array index must be integral")
		}
		wide := fc.reg()
		fc.emit(ir.MOVSXD, wide, iv.reg, ir.NoReg, 0)
		cur := wide
		if idxReg == ir.NoReg {
			idxReg = cur
		} else {
			// idx = idx*dim_k + cur
			mul := fc.reg()
			fc.emit(ir.IMUL, mul, idxReg, dimRegs[k], 0)
			add := fc.reg()
			fc.emit(ir.ADD, add, mul, cur, 0)
			idxReg = add
		}
	}
	t := elem
	t.Ptr = 0
	if elem.Ptr > 0 {
		t = elem
	}
	return lvalue{base: baseReg, idx: idxReg, off: 0, typ: t}
}

// fieldOf resolves an unqualified name to a field of the method's class,
// unless shadowed by a local.
func (fc *funcCompiler) fieldOf(name string) *sema.Field {
	if fc.fi.Class == nil {
		return nil
	}
	if _, shadowed := fc.lookup(name); shadowed {
		return nil
	}
	f, ok := fc.fi.Class.FieldByName(name)
	if !ok {
		return nil
	}
	return f
}

func (fc *funcCompiler) compileMemberLValue(x *ast.MemberExpr) lvalue {
	// Receiver must be a class-typed variable (object or pointer).
	recv := fc.compileExpr(x.X)
	cls := ""
	if recv.typ.Kind == ast.Class {
		cls = recv.typ.ClassName
	}
	if cls == "" {
		fc.errf(x.Pos(), "member access on non-class expression")
	}
	ci := fc.g.prog.Classes[cls]
	f, ok := ci.FieldByName(x.Sel)
	if !ok {
		fc.errf(x.Pos(), "class %q has no field %q", cls, x.Sel)
	}
	return lvalue{base: recv.reg, idx: ir.NoReg, off: f.Offset, typ: f.Type}
}

// classOf returns the class name of an expression, if class-typed.
func (fc *funcCompiler) classOf(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if l, ok := fc.lookup(x.Name); ok {
			if l.typ.Kind == ast.Class {
				return l.typ.ClassName, true
			}
			return "", false
		}
		if g, ok := fc.g.prog.Globals[x.Name]; ok && g.Type.Kind == ast.Class {
			return g.Type.ClassName, true
		}
	case *ast.ParenExpr:
		return fc.classOf(x.X)
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Operators

func (fc *funcCompiler) coerce(v value, want ast.Type, pos token.Pos) value {
	if want.Ptr > 0 || v.typ.Ptr > 0 {
		return v // pointers move as integers
	}
	srcF := v.typ.Kind == ast.Double
	dstF := want.Kind == ast.Double
	switch {
	case srcF == dstF:
		return v
	case dstF:
		r := fc.reg()
		fc.emit(ir.CVTSI2SD, r, v.reg, ir.NoReg, 0)
		return value{reg: r, typ: ast.TypeDouble}
	default:
		r := fc.reg()
		fc.emit(ir.CVTTSD2SI, r, v.reg, ir.NoReg, 0)
		return value{reg: r, typ: want}
	}
}

func (fc *funcCompiler) compileUnary(x *ast.UnaryExpr) value {
	switch x.Op {
	case token.MINUS:
		v := fc.compileExpr(x.X)
		r := fc.reg()
		if v.isFloat() {
			z := fc.reg()
			fc.emit(ir.MOVSDI, z, ir.NoReg, ir.NoReg, 0)
			fc.emit(ir.SUBSD, r, z, v.reg, 0)
			return value{reg: r, typ: ast.TypeDouble}
		}
		fc.emit(ir.NEG, r, v.reg, ir.NoReg, 0)
		return value{reg: r, typ: v.typ}
	case token.NOT:
		v := fc.compileExpr(x.X)
		if v.isFloat() {
			fc.errf(x.Pos(), "! on floating value")
		}
		// r = (v == 0) via branch materialization.
		return fc.materializeBool(func(trueLab label) {
			fc.emit(ir.TEST, ir.NoReg, v.reg, ir.NoReg, 0)
			fc.jump(ir.JE, trueLab)
		})
	case token.INC, token.DEC:
		return fc.compileIncDec(x, true)
	case token.STAR:
		lv := fc.compileLValue(x)
		return fc.loadLValue(lv)
	case token.AMP:
		lv := fc.compileLValue(x.X)
		if lv.isReg {
			fc.errf(x.Pos(), "cannot take the address of a register variable")
		}
		r := fc.reg()
		fc.emit(ir.LEA, r, lv.base, lv.idx, lv.off)
		t := lv.typ
		t.Ptr++
		return value{reg: r, typ: t}
	}
	fc.errf(x.Pos(), "unsupported unary operator %s", x.Op)
	return value{}
}

// compileIncDec handles ++/-- in both value and statement contexts.
func (fc *funcCompiler) compileIncDec(x *ast.UnaryExpr, needValue bool) value {
	lv := fc.compileLValue(x.X)
	op := ir.INC
	if x.Op == token.DEC {
		op = ir.DEC
	}
	if lv.isReg && lv.typ.Kind != ast.Double {
		var old int32 = -1
		if needValue && x.Postfix {
			old = fc.reg()
			fc.emit(ir.MOVRR, old, lv.reg, ir.NoReg, 0)
		}
		fc.emit(op, lv.reg, lv.reg, ir.NoReg, 0)
		if needValue && x.Postfix {
			return value{reg: old, typ: lv.typ}
		}
		return value{reg: lv.reg, typ: lv.typ}
	}
	// Memory or floating location: load-modify-store.
	cur := fc.loadLValue(lv)
	var result value
	if cur.isFloat() {
		one := fc.reg()
		fc.emit(ir.MOVSDI, one, ir.NoReg, ir.NoReg, int64(math.Float64bits(1.0)))
		r := fc.reg()
		if x.Op == token.INC {
			fc.emit(ir.ADDSD, r, cur.reg, one, 0)
		} else {
			fc.emit(ir.SUBSD, r, cur.reg, one, 0)
		}
		result = value{reg: r, typ: ast.TypeDouble}
	} else {
		r := fc.reg()
		fc.emit(op, r, cur.reg, ir.NoReg, 0)
		result = value{reg: r, typ: cur.typ}
	}
	fc.storeLValue(lv, result)
	if needValue && x.Postfix {
		return cur
	}
	return result
}

func (fc *funcCompiler) compileBinary(x *ast.BinaryExpr) value {
	switch x.Op {
	case token.ANDAND, token.OROR:
		return fc.materializeBoolFromCond(x)
	}
	if x.Op.IsCmpOp() {
		return fc.materializeBoolFromCond(x)
	}
	a := fc.compileExpr(x.X)
	b := fc.compileExpr(x.Y)

	// Pointer arithmetic: ptr ± int.
	if a.typ.Ptr > 0 || b.typ.Ptr > 0 {
		if x.Op != token.PLUS && x.Op != token.MINUS {
			fc.errf(x.Pos(), "unsupported pointer operation %s", x.Op)
		}
		r := fc.reg()
		if x.Op == token.PLUS {
			fc.emit(ir.ADD, r, a.reg, b.reg, 0)
		} else {
			fc.emit(ir.SUB, r, a.reg, b.reg, 0)
		}
		t := a.typ
		if b.typ.Ptr > 0 {
			t = b.typ
		}
		return value{reg: r, typ: t}
	}

	if a.isFloat() || b.isFloat() {
		a = fc.coerce(a, ast.TypeDouble, x.Pos())
		b = fc.coerce(b, ast.TypeDouble, x.Pos())
		r := fc.reg()
		var op ir.Op
		switch x.Op {
		case token.PLUS:
			op = ir.ADDSD
		case token.MINUS:
			op = ir.SUBSD
		case token.STAR:
			op = ir.MULSD
		case token.SLASH:
			op = ir.DIVSD
		default:
			fc.errf(x.Pos(), "unsupported floating operator %s", x.Op)
		}
		fc.emit(op, r, a.reg, b.reg, 0)
		return value{reg: r, typ: ast.TypeDouble}
	}

	r := fc.reg()
	switch x.Op {
	case token.PLUS:
		fc.emit(ir.ADD, r, a.reg, b.reg, 0)
	case token.MINUS:
		fc.emit(ir.SUB, r, a.reg, b.reg, 0)
	case token.STAR:
		// Strength reduction: multiply by a power of two becomes a shift.
		if sh, ok := fc.powerOfTwo(x.Y); ok && !fc.g.opts.DisableOpt {
			fc.emit(ir.SHLI, r, a.reg, ir.NoReg, sh)
			return value{reg: r, typ: ast.TypeInt}
		}
		fc.emit(ir.IMUL, r, a.reg, b.reg, 0)
	case token.SLASH:
		if sh, ok := fc.powerOfTwo(x.Y); ok && !fc.g.opts.DisableOpt {
			fc.emit(ir.SARI, r, a.reg, ir.NoReg, sh)
			return value{reg: r, typ: ast.TypeInt}
		}
		fc.emit(ir.CDQ, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		fc.emit(ir.IDIV, r, a.reg, b.reg, 0)
	case token.PERCENT:
		fc.emit(ir.CDQ, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		fc.emit(ir.IREM, r, a.reg, b.reg, 0)
	default:
		fc.errf(x.Pos(), "unsupported integer operator %s", x.Op)
	}
	return value{reg: r, typ: ast.TypeInt}
}

func (fc *funcCompiler) powerOfTwo(e ast.Expr) (int64, bool) {
	v, ok := fc.g.prog.ConstInt(e)
	if !ok || v <= 1 {
		return 0, false
	}
	if v&(v-1) != 0 {
		return 0, false
	}
	sh := int64(0)
	for v > 1 {
		v >>= 1
		sh++
	}
	return sh, true
}

func (fc *funcCompiler) compileAssign(x *ast.AssignExpr) value {
	lv := fc.compileLValue(x.LHS)
	var rhs value
	if x.Op == token.ASSIGN {
		rhs = fc.compileExpr(x.RHS)
	} else {
		cur := fc.loadLValue(lv)
		r := fc.compileExpr(x.RHS)
		var opTok token.Kind
		switch x.Op {
		case token.PLUSEQ:
			opTok = token.PLUS
		case token.MINUSEQ:
			opTok = token.MINUS
		case token.STAREQ:
			opTok = token.STAR
		case token.SLASHEQ:
			opTok = token.SLASH
		}
		rhs = fc.applyBinOp(opTok, cur, r, x.Pos())
	}
	fc.storeLValue(lv, rhs)
	return rhs
}

// applyBinOp emits cur OP r with numeric promotion.
func (fc *funcCompiler) applyBinOp(op token.Kind, a, b value, pos token.Pos) value {
	if a.isFloat() || b.isFloat() {
		a = fc.coerce(a, ast.TypeDouble, pos)
		b = fc.coerce(b, ast.TypeDouble, pos)
		r := fc.reg()
		var o ir.Op
		switch op {
		case token.PLUS:
			o = ir.ADDSD
		case token.MINUS:
			o = ir.SUBSD
		case token.STAR:
			o = ir.MULSD
		case token.SLASH:
			o = ir.DIVSD
		default:
			fc.errf(pos, "unsupported compound operator")
		}
		fc.emit(o, r, a.reg, b.reg, 0)
		return value{reg: r, typ: ast.TypeDouble}
	}
	r := fc.reg()
	switch op {
	case token.PLUS:
		fc.emit(ir.ADD, r, a.reg, b.reg, 0)
	case token.MINUS:
		fc.emit(ir.SUB, r, a.reg, b.reg, 0)
	case token.STAR:
		fc.emit(ir.IMUL, r, a.reg, b.reg, 0)
	case token.SLASH:
		fc.emit(ir.CDQ, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		fc.emit(ir.IDIV, r, a.reg, b.reg, 0)
	default:
		fc.errf(pos, "unsupported compound operator")
	}
	return value{reg: r, typ: ast.TypeInt}
}

func (fc *funcCompiler) compileTernary(x *ast.CondExpr) value {
	elseLab := fc.newLabel()
	endLab := fc.newLabel()
	fc.compileCond(x.Cond, elseLab, false)
	a := fc.compileExpr(x.Then)
	r := fc.reg()
	resF := a.isFloat() || isFloatExpr(x.Else)
	if resF {
		a = fc.coerce(a, ast.TypeDouble, x.Pos())
	}
	fc.move(r, value{reg: a.reg, typ: a.typ})
	fc.jump(ir.JMP, endLab)
	fc.bind(elseLab)
	b := fc.compileExpr(x.Else)
	if resF {
		b = fc.coerce(b, ast.TypeDouble, x.Pos())
	}
	fc.move(r, value{reg: b.reg, typ: b.typ})
	fc.bind(endLab)
	t := a.typ
	if resF {
		t = ast.TypeDouble
	}
	return value{reg: r, typ: t}
}

// materializeBool produces 0/1 from a branch generator that jumps to
// trueLab when the condition holds.
func (fc *funcCompiler) materializeBool(gen func(trueLab label)) value {
	trueLab := fc.newLabel()
	endLab := fc.newLabel()
	r := fc.reg()
	gen(trueLab)
	fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, 0)
	fc.jump(ir.JMP, endLab)
	fc.bind(trueLab)
	fc.emit(ir.MOVRI, r, ir.NoReg, ir.NoReg, 1)
	fc.bind(endLab)
	return value{reg: r, typ: ast.TypeBool}
}

func (fc *funcCompiler) materializeBoolFromCond(e ast.Expr) value {
	return fc.materializeBool(func(trueLab label) {
		fc.compileCondJumpTrue(e, trueLab)
	})
}

// ---------------------------------------------------------------------------
// Conditions

// compileCond emits branch code: when jumpIfTrue is false, control jumps to
// target when the condition is FALSE (fallthrough = condition holds).
func (fc *funcCompiler) compileCond(e ast.Expr, target label, jumpIfTrue bool) {
	if jumpIfTrue {
		fc.compileCondJumpTrue(e, target)
	} else {
		fc.compileCondJumpFalse(e, target)
	}
}

func (fc *funcCompiler) compileCondJumpFalse(e ast.Expr, falseLab label) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		fc.compileCondJumpFalse(x.X, falseLab)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			fc.compileCondJumpTrue(x.X, falseLab)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ANDAND:
			fc.compileCondJumpFalse(x.X, falseLab)
			fc.compileCondJumpFalse(x.Y, falseLab)
			return
		case token.OROR:
			okLab := fc.newLabel()
			fc.compileCondJumpTrue(x.X, okLab)
			fc.compileCondJumpFalse(x.Y, falseLab)
			fc.bind(okLab)
			return
		}
		if x.Op.IsCmpOp() {
			fc.emitCompare(x, falseLab, true)
			return
		}
	}
	v := fc.compileExpr(e)
	if v.isFloat() {
		fc.errf(e.Pos(), "floating value used as a condition")
	}
	fc.emit(ir.TEST, ir.NoReg, v.reg, ir.NoReg, 0)
	fc.jump(ir.JE, falseLab)
}

func (fc *funcCompiler) compileCondJumpTrue(e ast.Expr, trueLab label) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		fc.compileCondJumpTrue(x.X, trueLab)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			fc.compileCondJumpFalse(x.X, trueLab)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ANDAND:
			skip := fc.newLabel()
			fc.compileCondJumpFalse(x.X, skip)
			fc.compileCondJumpTrue(x.Y, trueLab)
			fc.bind(skip)
			return
		case token.OROR:
			fc.compileCondJumpTrue(x.X, trueLab)
			fc.compileCondJumpTrue(x.Y, trueLab)
			return
		}
		if x.Op.IsCmpOp() {
			fc.emitCompare(x, trueLab, false)
			return
		}
	}
	v := fc.compileExpr(e)
	if v.isFloat() {
		fc.errf(e.Pos(), "floating value used as a condition")
	}
	fc.emit(ir.TEST, ir.NoReg, v.reg, ir.NoReg, 0)
	fc.jump(ir.JNE, trueLab)
}

// emitCompare emits CMP/UCOMISD plus the (possibly inverted) conditional
// jump for a comparison node.
func (fc *funcCompiler) emitCompare(x *ast.BinaryExpr, target label, invert bool) {
	a := fc.compileExpr(x.X)
	b := fc.compileExpr(x.Y)
	isF := a.isFloat() || b.isFloat()
	if isF {
		a = fc.coerce(a, ast.TypeDouble, x.Pos())
		b = fc.coerce(b, ast.TypeDouble, x.Pos())
		fc.emit(ir.UCOMISD, ir.NoReg, a.reg, b.reg, 0)
	} else {
		fc.emit(ir.CMP, ir.NoReg, a.reg, b.reg, 0)
	}
	var op ir.Op
	switch x.Op {
	case token.EQ:
		op = ir.JE
	case token.NEQ:
		op = ir.JNE
	case token.LT:
		op = ir.JL
	case token.LEQ:
		op = ir.JLE
	case token.GT:
		op = ir.JG
	case token.GEQ:
		op = ir.JGE
	}
	if invert {
		op = invertJump(op)
	}
	fc.jump(op, target)
}

func invertJump(op ir.Op) ir.Op {
	switch op {
	case ir.JE:
		return ir.JNE
	case ir.JNE:
		return ir.JE
	case ir.JL:
		return ir.JGE
	case ir.JLE:
		return ir.JG
	case ir.JG:
		return ir.JLE
	case ir.JGE:
		return ir.JL
	}
	return op
}

// ---------------------------------------------------------------------------
// Calls

// compileCall compiles a call; discardResult suppresses GETRET for
// statement-context calls. The bool result reports whether a value was
// produced.
func (fc *funcCompiler) compileCall(x *ast.CallExpr, discardResult bool) (value, bool) {
	callee, err := fc.g.prog.ResolveCall(x, func(e ast.Expr) (string, bool) {
		return fc.classOf(e)
	})
	if err != nil {
		panic(&Error{Pos: x.Pos(), Msg: err.Error()})
	}
	fi := fc.g.prog.Funcs[callee]

	// Evaluate the receiver (for method calls) and all arguments into
	// registers first, then stage them; nested calls stay well-bracketed.
	var argVals []value
	if fi.Class != nil {
		var recvReg int32 = -1
		switch fun := x.Fun.(type) {
		case *ast.MemberExpr:
			rv := fc.compileExpr(fun.X)
			recvReg = rv.reg
		default:
			// operator() applied to a class-typed expression.
			rv := fc.compileExpr(x.Fun)
			recvReg = rv.reg
		}
		argVals = append(argVals, value{reg: recvReg, typ: ast.Type{Kind: ast.Class, ClassName: fi.Class.Name}})
	}
	params := fi.Decl.Params
	if len(x.Args) != len(params) {
		fc.errf(x.Pos(), "call to %q with %d args, want %d", callee, len(x.Args), len(params))
	}
	for i, a := range x.Args {
		v := fc.compileExpr(a)
		v = fc.coerce(v, params[i].Type, a.Pos())
		argVals = append(argVals, v)
	}
	for _, v := range argVals {
		if v.isFloat() {
			fc.emit(ir.ARGF, ir.NoReg, v.reg, ir.NoReg, 0)
		} else {
			fc.emit(ir.ARGI, ir.NoReg, v.reg, ir.NoReg, 0)
		}
	}
	idx := fc.emit(ir.CALL, ir.NoReg, ir.NoReg, ir.NoReg, 0)
	fc.g.callNames[callKey{fnIdx: fc.g.curFnIdx, instr: idx}] = callee

	ret := fi.Decl.RetType
	if ret.Kind == ast.Void {
		return value{}, false
	}
	if discardResult {
		return value{}, true
	}
	r := fc.reg()
	if ret.Kind == ast.Double && ret.Ptr == 0 {
		fc.emit(ir.GETRETF, r, ir.NoReg, ir.NoReg, 0)
	} else {
		fc.emit(ir.GETRETI, r, ir.NoReg, ir.NoReg, 0)
	}
	return value{reg: r, typ: ret}, true
}
