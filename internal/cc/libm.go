package cc

import (
	"math"

	"mira/internal/ir"
)

// Builtin library bodies for extern declarations. These stand in for libm
// and similar system libraries: the VM executes them (so dynamic "TAU"
// counts include their instructions), but the static analyzer sees only
// the call site — reproducing the paper's observation that external
// library content is invisible to Mira and accounts for part of the
// static-vs-dynamic gap (Sec. IV-D1).
//
// Calling convention matches compiled code: parameters arrive in r0..rk.

type asm struct {
	instrs []ir.Instr
}

func (a *asm) op(op ir.Op, rd, rs1, rs2 int32, imm int64) int {
	a.instrs = append(a.instrs, ir.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
	return len(a.instrs) - 1
}

func (a *asm) patch(idx int, target int) { a.instrs[idx].Imm = int64(target) }

func fbits(f float64) int64 { return int64(math.Float64bits(f)) }

// libBody returns the instruction body for a known extern function.
func libBody(name string) ([]ir.Instr, bool) {
	switch name {
	case "sqrt":
		// sqrtsd plus a Newton refinement step, libm-style: the extra FPI
		// here is what static analysis cannot see.
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.SQRTSD, 1, 0, ir.NoReg, 0) // r1 = sqrt(x)
		a.op(ir.MULSD, 2, 1, 1, 0)         // r2 = r1*r1
		a.op(ir.SUBSD, 3, 2, 0, 0)         // r3 = r1*r1 - x
		a.op(ir.MOVSDI, 4, ir.NoReg, ir.NoReg, fbits(0.5))
		a.op(ir.MULSD, 5, 3, 4, 0) // r5 = 0.5*(r1*r1 - x)
		a.op(ir.DIVSD, 6, 5, 1, 0) // r6 = r5 / r1
		a.op(ir.SUBSD, 7, 1, 6, 0) // r7 = r1 - r6 (refined root)
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 7, ir.NoReg, 0)
		return a.instrs, true
	case "fabs":
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.MOVSDI, 1, ir.NoReg, ir.NoReg, fbits(0)) // r1 = 0.0
		a.op(ir.UCOMISD, ir.NoReg, 0, 1, 0)
		j := a.op(ir.JGE, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.SUBSD, 2, 1, 0, 0) // r2 = -x
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 2, ir.NoReg, 0)
		pos := a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 0, ir.NoReg, 0)
		a.patch(j, pos)
		return a.instrs, true
	case "min":
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.CMP, ir.NoReg, 0, 1, 0)
		j := a.op(ir.JLE, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETI, ir.NoReg, 1, ir.NoReg, 0)
		pos := a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETI, ir.NoReg, 0, ir.NoReg, 0)
		a.patch(j, pos)
		return a.instrs, true
	case "max":
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.CMP, ir.NoReg, 0, 1, 0)
		j := a.op(ir.JGE, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETI, ir.NoReg, 1, ir.NoReg, 0)
		pos := a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETI, ir.NoReg, 0, ir.NoReg, 0)
		a.patch(j, pos)
		return a.instrs, true
	case "fmin":
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.UCOMISD, ir.NoReg, 0, 1, 0)
		j := a.op(ir.JLE, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 1, ir.NoReg, 0)
		pos := a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 0, ir.NoReg, 0)
		a.patch(j, pos)
		return a.instrs, true
	case "fmax":
		a := &asm{}
		a.op(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.UCOMISD, ir.NoReg, 0, 1, 0)
		j := a.op(ir.JGE, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 1, ir.NoReg, 0)
		pos := a.op(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		a.op(ir.RETF, ir.NoReg, 0, ir.NoReg, 0)
		a.patch(j, pos)
		return a.instrs, true
	case "exit":
		// Halt marker: jumping past the end stops the VM cleanly; modeled
		// as a plain return so callers terminate.
		a := &asm{}
		a.op(ir.RETV, ir.NoReg, ir.NoReg, ir.NoReg, 0)
		return a.instrs, true
	}
	return nil, false
}

// LibraryFunctions lists the extern names the builtin library provides.
func LibraryFunctions() []string {
	return []string{"sqrt", "fabs", "min", "max", "fmin", "fmax", "exit"}
}
