package cc

import (
	"mira/internal/ast"
	"mira/internal/token"
)

// exprKey is the structural identity used for common-subexpression reuse of
// hoisted values.
func exprKey(e ast.Expr) string { return ast.ExprString(e) }

// hoistInvariants performs loop-invariant code motion for floating-point
// subexpressions of a for loop: maximal invariant FP binary subtrees and FP
// literals are evaluated once in the loop preheader. Hoisted instructions
// are tagged with the init-clause position, which is exactly where the
// static model attributes once-per-loop-entry cost — so binary-level
// analysis (Mira) remains exact under this optimization while source-only
// analysis (PBound) overcounts the hoisted work on every iteration.
func (fc *funcCompiler) hoistInvariants(st *ast.ForStmt, initPos token.Pos) {
	assigned := map[string]bool{}
	collectAssigned(st.Body, assigned)
	if st.Post != nil {
		collectAssignedExpr(st.Post, assigned)
	}
	if st.Cond != nil {
		collectAssignedExpr(st.Cond, assigned)
	}
	hasCall := containsCall(st.Body)

	var candidates []ast.Expr
	seen := map[string]bool{}
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		if e == nil {
			return
		}
		if fc.isInvariantFP(e, assigned, hasCall) {
			key := exprKey(e)
			if !seen[key] && worthHoisting(e) {
				seen[key] = true
				candidates = append(candidates, e)
			}
			return // maximal subtree found; don't descend
		}
		switch x := e.(type) {
		case *ast.BinaryExpr:
			scan(x.X)
			scan(x.Y)
		case *ast.UnaryExpr:
			scan(x.X)
		case *ast.ParenExpr:
			scan(x.X)
		case *ast.AssignExpr:
			scan(x.RHS)
			// LHS index expressions may hold invariants too.
			if ix, ok := x.LHS.(*ast.IndexExpr); ok {
				scan(ix.Index)
			}
		case *ast.IndexExpr:
			scan(x.X)
			scan(x.Index)
		case *ast.CallExpr:
			for _, a := range x.Args {
				scan(a)
			}
		case *ast.CondExpr:
			scan(x.Cond)
			scan(x.Then)
			scan(x.Else)
		}
	}
	var scanStmt func(s ast.Stmt)
	scanStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			for _, ss := range x.Stmts {
				scanStmt(ss)
			}
		case *ast.ExprStmt:
			scan(x.X)
		case *ast.IfStmt:
			scan(x.Cond)
			scanStmt(x.Then)
			if x.Else != nil {
				scanStmt(x.Else)
			}
		case *ast.ForStmt:
			// Nested loops hoist into their own preheaders.
		case *ast.WhileStmt:
		case *ast.ReturnStmt:
			if x.X != nil {
				scan(x.X)
			}
		case *ast.VarDecl:
			for _, d := range x.Names {
				if d.Init != nil {
					scan(d.Init)
				}
			}
		}
	}
	scanStmt(st.Body)

	if len(candidates) == 0 {
		return
	}
	// Evaluate candidates in the preheader, tagged at the init clause.
	saved := fc.curPos
	fc.setPos(initPos)
	newCache := make(map[string]value, len(fc.licmCache)+len(candidates))
	for k, v := range fc.licmCache {
		newCache[k] = v
	}
	for _, cand := range candidates {
		key := exprKey(cand)
		if _, dup := newCache[key]; dup {
			continue
		}
		v := fc.compileExpr(cand)
		newCache[key] = v
	}
	fc.licmCache = newCache
	fc.setPos(saved)
}

// worthHoisting limits hoisting to expressions that actually save
// instructions per iteration: FP literals (a MOVSDI each use) and FP
// binary subtrees.
func worthHoisting(e ast.Expr) bool {
	switch e.(type) {
	case *ast.FloatLit:
		return true
	case *ast.BinaryExpr:
		return true
	case *ast.ParenExpr:
		return worthHoisting(e.(*ast.ParenExpr).X)
	}
	return false
}

// isInvariantFP reports whether e is a loop-invariant floating-point
// expression: every leaf is an FP literal, an int literal, or a scalar
// local/param register variable not assigned in the loop. Globals are
// excluded when the body contains calls (callees may write them); array
// and field loads are always excluded (stores may alias).
func (fc *funcCompiler) isInvariantFP(e ast.Expr, assigned map[string]bool, hasCall bool) bool {
	if !isFloatExpr(e) {
		return false
	}
	ok := true
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *ast.FloatLit, *ast.IntLit, *ast.BoolLit:
		case *ast.Ident:
			if assigned[x.Name] {
				ok = false
				return
			}
			if l, found := fc.lookup(x.Name); found {
				if l.isArr || l.isObj {
					ok = false
				}
				return
			}
			if g, found := fc.g.prog.Globals[x.Name]; found {
				if !(g.IsConst && g.HasConst) && hasCall {
					ok = false
				}
				if len(g.Dims) > 0 {
					ok = false
				}
				return
			}
			ok = false // fields, unknowns
		case *ast.BinaryExpr:
			if x.Op.IsCmpOp() || x.Op == token.ANDAND || x.Op == token.OROR {
				ok = false
				return
			}
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				ok = false
				return
			}
			walk(x.X)
		case *ast.ParenExpr:
			walk(x.X)
		default:
			ok = false
		}
	}
	walk(e)
	return ok
}

func collectAssigned(s ast.Stmt, out map[string]bool) {
	ast.Walk(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignExpr:
			markAssignedTarget(x.LHS, out)
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				markAssignedTarget(x.X, out)
			}
		}
		return true
	})
}

func collectAssignedExpr(e ast.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *ast.AssignExpr:
		markAssignedTarget(x.LHS, out)
		collectAssignedExpr(x.RHS, out)
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			markAssignedTarget(x.X, out)
		}
	case *ast.BinaryExpr:
		collectAssignedExpr(x.X, out)
		collectAssignedExpr(x.Y, out)
	case *ast.ParenExpr:
		collectAssignedExpr(x.X, out)
	}
}

func markAssignedTarget(e ast.Expr, out map[string]bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			out[x.Name] = true
			return
		case *ast.IndexExpr:
			e = x.X
		case *ast.MemberExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return
		}
	}
}

func containsCall(s ast.Stmt) bool {
	found := false
	ast.Walk(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}
