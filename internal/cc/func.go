package cc

import (
	"fmt"

	"mira/internal/ast"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/sema"
	"mira/internal/token"
)

// value is an expression result: a virtual register plus its static type.
// For arrays, objects, and pointers the register holds a word address.
type value struct {
	reg int32
	typ ast.Type
}

func (v value) isFloat() bool { return v.typ.Ptr == 0 && v.typ.Kind == ast.Double }

// local binds a name in scope.
type local struct {
	typ     ast.Type // scalar type; element type for arrays; Class for objects
	reg     int32    // scalar value register, or base address register
	isArr   bool
	dimRegs []int32 // registers holding each dimension (for locally declared arrays)
	isObj   bool
}

type label int32

type fixup struct {
	instr int
	lab   label
}

type loopCtx struct {
	contLab  label
	breakLab label
}

type funcCompiler struct {
	g       *globalCtx
	fi      *sema.FuncInfo
	instrs  []ir.Instr
	tags    []token.Pos
	curPos  token.Pos
	nextReg int32
	scopes  []map[string]*local
	labels  []int // label -> instruction index (-1 unbound)
	fixups  []fixup
	loops   []loopCtx
	thisReg int32 // methods only; -1 otherwise
	// licmCache maps hoisted-subexpression keys to their registers while a
	// loop body is being compiled.
	licmCache map[string]value
}

func newFuncCompiler(g *globalCtx, fi *sema.FuncInfo) *funcCompiler {
	return &funcCompiler{g: g, fi: fi, thisReg: -1, licmCache: map[string]value{}}
}

func (fc *funcCompiler) errf(pos token.Pos, format string, args ...any) {
	panic(&Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Emission helpers

func (fc *funcCompiler) setPos(p token.Pos) {
	if p.Valid() {
		fc.curPos = p
	}
}

func (fc *funcCompiler) emit(op ir.Op, rd, rs1, rs2 int32, imm int64) int {
	fc.instrs = append(fc.instrs, ir.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
	fc.tags = append(fc.tags, fc.curPos)
	return len(fc.instrs) - 1
}

func (fc *funcCompiler) reg() int32 {
	r := fc.nextReg
	fc.nextReg++
	return r
}

func (fc *funcCompiler) newLabel() label {
	fc.labels = append(fc.labels, -1)
	return label(len(fc.labels) - 1)
}

func (fc *funcCompiler) bind(l label) {
	fc.labels[l] = len(fc.instrs)
}

func (fc *funcCompiler) jump(op ir.Op, l label) {
	idx := fc.emit(op, ir.NoReg, ir.NoReg, ir.NoReg, 0)
	fc.fixups = append(fc.fixups, fixup{instr: idx, lab: l})
}

func (fc *funcCompiler) finalize() {
	for _, f := range fc.fixups {
		target := fc.labels[f.lab]
		if target < 0 {
			panic(fmt.Sprintf("cc: unbound label %d in %s", f.lab, fc.fi.QName))
		}
		fc.instrs[f.instr].Imm = int64(target)
	}
}

// ---------------------------------------------------------------------------
// Scopes

func (fc *funcCompiler) pushScope() { fc.scopes = append(fc.scopes, map[string]*local{}) }
func (fc *funcCompiler) popScope()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *funcCompiler) define(name string, l *local) {
	fc.scopes[len(fc.scopes)-1][name] = l
}

func (fc *funcCompiler) lookup(name string) (*local, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if l, ok := fc.scopes[i][name]; ok {
			return l, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Function compilation

func (fc *funcCompiler) paramKinds() []objfile.ParamKind {
	var kinds []objfile.ParamKind
	if fc.fi.Class != nil {
		kinds = append(kinds, objfile.KindInt) // this
	}
	for _, p := range fc.fi.Decl.Params {
		kinds = append(kinds, paramKind(p.Type))
	}
	return kinds
}

func (fc *funcCompiler) compile() {
	fd := fc.fi.Decl
	fc.setPos(fd.Pos())
	fc.pushScope()

	// Parameters occupy the first registers in convention order.
	if fc.fi.Class != nil {
		fc.thisReg = fc.reg()
	}
	for _, p := range fd.Params {
		r := fc.reg()
		l := &local{typ: p.Type, reg: r}
		if p.Type.Ptr > 0 {
			l.isArr = true
			l.typ = p.Type.Elem()
			l.typ.Ptr = 0
		}
		fc.define(p.Name, l)
	}

	// Prologue (runtime environment; tagged to the function header line).
	fc.emit(ir.PUSH, ir.NoReg, ir.NoReg, ir.NoReg, 0)

	fc.compileBlock(fd.Body)

	// Implicit return for void functions (and a safety net otherwise).
	fc.setPos(fd.Pos())
	if len(fc.instrs) == 0 || !fc.instrs[len(fc.instrs)-1].IsReturn() {
		fc.emitEpilogueReturn(nil)
	}
	fc.popScope()
	fc.finalize()
}

func (fc *funcCompiler) emitEpilogueReturn(v *value) {
	fc.emit(ir.POP, ir.NoReg, ir.NoReg, ir.NoReg, 0)
	switch {
	case v == nil:
		fc.emit(ir.RETV, ir.NoReg, ir.NoReg, ir.NoReg, 0)
	case v.isFloat():
		fc.emit(ir.RETF, ir.NoReg, v.reg, ir.NoReg, 0)
	default:
		fc.emit(ir.RETI, ir.NoReg, v.reg, ir.NoReg, 0)
	}
}

// ---------------------------------------------------------------------------
// Statements

func (fc *funcCompiler) compileBlock(b *ast.BlockStmt) {
	fc.pushScope()
	for _, s := range b.Stmts {
		fc.compileStmt(s)
	}
	fc.popScope()
}

func (fc *funcCompiler) compileStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		fc.compileBlock(st)
	case *ast.EmptyStmt:
	case *ast.VarDecl:
		fc.compileVarDecl(st)
	case *ast.ExprStmt:
		fc.setPos(st.Pos())
		fc.compileExprStmt(st.X)
	case *ast.IfStmt:
		fc.compileIf(st)
	case *ast.ForStmt:
		fc.compileFor(st)
	case *ast.WhileStmt:
		fc.compileWhile(st)
	case *ast.ReturnStmt:
		fc.setPos(st.Pos())
		if st.X != nil {
			v := fc.compileExpr(st.X)
			v = fc.coerce(v, fc.fi.Decl.RetType, st.Pos())
			fc.emitEpilogueReturn(&v)
		} else {
			fc.emitEpilogueReturn(nil)
		}
	case *ast.BreakStmt:
		fc.setPos(st.Pos())
		if len(fc.loops) == 0 {
			fc.errf(st.Pos(), "break outside loop")
		}
		fc.jump(ir.JMP, fc.loops[len(fc.loops)-1].breakLab)
	case *ast.ContinueStmt:
		fc.setPos(st.Pos())
		if len(fc.loops) == 0 {
			fc.errf(st.Pos(), "continue outside loop")
		}
		fc.jump(ir.JMP, fc.loops[len(fc.loops)-1].contLab)
	default:
		fc.errf(s.Pos(), "unsupported statement %T", s)
	}
}

func (fc *funcCompiler) compileVarDecl(vd *ast.VarDecl) {
	fc.setPos(vd.Pos())
	for _, d := range vd.Names {
		switch {
		case vd.Type.Kind == ast.Class && vd.Type.Ptr == 0 && len(d.Dims) == 0:
			// Object: allocate class-size words.
			ci, ok := fc.g.prog.Classes[vd.Type.ClassName]
			if !ok {
				fc.errf(d.Pos(), "unknown class %q", vd.Type.ClassName)
			}
			size := fc.reg()
			fc.emit(ir.MOVRI, size, ir.NoReg, ir.NoReg, ci.Size)
			base := fc.reg()
			fc.emit(ir.ALLOC, base, size, ir.NoReg, 0)
			fc.define(d.Name, &local{typ: vd.Type, reg: base, isObj: true})
			if d.Init != nil {
				fc.errf(d.Pos(), "object initializers are not supported")
			}
		case len(d.Dims) > 0:
			// VLA-style array: compute dims, allocate.
			var dimRegs []int32
			size := int32(ir.NoReg)
			for _, dim := range d.Dims {
				dv := fc.compileExpr(dim)
				if dv.isFloat() {
					fc.errf(dim.Pos(), "array dimension must be integral")
				}
				dimRegs = append(dimRegs, dv.reg)
				if size == ir.NoReg {
					size = dv.reg
				} else {
					nr := fc.reg()
					fc.emit(ir.IMUL, nr, size, dv.reg, 0)
					size = nr
				}
			}
			base := fc.reg()
			fc.emit(ir.ALLOC, base, size, ir.NoReg, 0)
			elem := vd.Type
			fc.define(d.Name, &local{typ: elem, reg: base, isArr: true, dimRegs: dimRegs})
			if d.Init != nil {
				fc.errf(d.Pos(), "array initializers are not supported")
			}
		default:
			// Scalar (possibly pointer-typed) local lives in a register.
			r := fc.reg()
			l := &local{typ: vd.Type, reg: r}
			if vd.Type.Ptr > 0 {
				l.isArr = true
				l.typ = vd.Type.Elem()
			}
			fc.define(d.Name, l)
			if d.Init != nil {
				v := fc.compileExpr(d.Init)
				v = fc.coerce(v, vd.Type, d.Pos())
				fc.move(r, v)
			}
		}
	}
}

// move copies v into register rd with the mov flavor matching its type.
func (fc *funcCompiler) move(rd int32, v value) {
	if rd == v.reg {
		return
	}
	if v.isFloat() {
		fc.emit(ir.MOVSDRR, rd, v.reg, ir.NoReg, 0)
	} else {
		fc.emit(ir.MOVRR, rd, v.reg, ir.NoReg, 0)
	}
}

func (fc *funcCompiler) compileIf(st *ast.IfStmt) {
	fc.setPos(st.Cond.Pos())
	elseLab := fc.newLabel()
	endLab := fc.newLabel()
	fc.compileCond(st.Cond, elseLab, false)
	fc.compileStmt(st.Then)
	if st.Else != nil {
		if !fc.lastIsTerminator() {
			// Tag the jump over the else branch to the then branch's
			// position so the bridge attributes it to taken-branch count.
			fc.setPos(st.Then.Pos())
			fc.jump(ir.JMP, endLab)
		}
		fc.bind(elseLab)
		fc.compileStmt(st.Else)
		fc.bind(endLab)
	} else {
		fc.bind(elseLab)
		fc.bind(endLab)
	}
}

func (fc *funcCompiler) lastIsTerminator() bool {
	if len(fc.instrs) == 0 {
		return false
	}
	last := fc.instrs[len(fc.instrs)-1]
	return last.IsReturn() || last.Op == ir.JMP
}

func (fc *funcCompiler) compileFor(st *ast.ForStmt) {
	fc.pushScope()
	if st.Init != nil {
		switch init := st.Init.(type) {
		case *ast.VarDecl:
			fc.compileVarDecl(init)
		case *ast.ExprStmt:
			fc.setPos(init.Pos())
			fc.compileExprStmt(init.X)
		case *ast.EmptyStmt:
		default:
			fc.errf(st.Pos(), "unsupported for-init %T", st.Init)
		}
	}

	// LICM: hoist loop-invariant floating-point subexpressions into the
	// preheader, tagged at the init clause position.
	savedCache := fc.licmCache
	if !fc.g.opts.DisableOpt {
		initPos := st.Pos()
		if st.Init != nil {
			initPos = st.Init.Pos()
		}
		fc.hoistInvariants(st, initPos)
	}

	condLab := fc.newLabel()
	postLab := fc.newLabel()
	endLab := fc.newLabel()
	fc.bind(condLab)
	if st.Cond != nil {
		fc.setPos(st.Cond.Pos())
		fc.compileCond(st.Cond, endLab, false)
	}
	fc.loops = append(fc.loops, loopCtx{contLab: postLab, breakLab: endLab})
	fc.compileStmt(st.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	fc.bind(postLab)
	if st.Post != nil {
		fc.setPos(st.Post.Pos())
		fc.compileExprStmt(st.Post)
		fc.jump(ir.JMP, condLab) // back edge shares the post position
	} else {
		if st.Cond != nil {
			fc.setPos(st.Cond.Pos())
		}
		fc.jump(ir.JMP, condLab)
	}
	fc.bind(endLab)
	fc.licmCache = savedCache
	fc.popScope()
}

func (fc *funcCompiler) compileWhile(st *ast.WhileStmt) {
	condLab := fc.newLabel()
	endLab := fc.newLabel()
	fc.bind(condLab)
	fc.setPos(st.Cond.Pos())
	fc.compileCond(st.Cond, endLab, false)
	fc.loops = append(fc.loops, loopCtx{contLab: condLab, breakLab: endLab})
	fc.compileStmt(st.Body)
	fc.loops = fc.loops[:len(fc.loops)-1]
	fc.setPos(st.Cond.Pos())
	fc.jump(ir.JMP, condLab)
	fc.bind(endLab)
}

// compileExprStmt compiles an expression for side effects, avoiding the
// value copies a general expression context would produce.
func (fc *funcCompiler) compileExprStmt(e ast.Expr) {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			fc.compileIncDec(x, false)
			return
		}
	case *ast.CallExpr:
		fc.compileCall(x, true)
		return
	case *ast.AssignExpr:
		fc.compileAssign(x)
		return
	}
	fc.compileExpr(e)
}
