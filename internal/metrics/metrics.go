// Package metrics implements Mira's Metric Generator (paper Sec. III-B):
// it joins the source AST with the binary AST through the line-table
// bridge and produces the parametric performance model.
//
// The generator performs the paper's two traversals. The bottom-up pass is
// embodied in SCoP extraction and guard parsing (convert.go), which
// collect loop and branch information from subtrees; the top-down pass is
// the walk below, which pushes polyhedral context (enclosing loops,
// branch constraints, annotations) down to every statement, attaching to
// each source position the execution-count expression that multiplies its
// compiled instruction counts.
//
// A strict coverage invariant ties the two sides together: every binary
// instruction of a function must be claimed by exactly one model site.
// Desynchronization between the compiler's position tagging and this
// walker is a bug, and Generate fails loudly on it.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"mira/internal/ast"
	"mira/internal/bridge"
	"mira/internal/expr"
	"mira/internal/model"
	"mira/internal/objfile"
	"mira/internal/polyhedra"
	"mira/internal/rational"
	"mira/internal/sema"
	"mira/internal/token"
)

// Config controls model generation.
type Config struct {
	// Lenient downgrades unanalyzable *branches* to always-taken (with a
	// warning) instead of failing. Loops still require annotations.
	Lenient bool
}

// Generator produces models from an analyzed program and its binary.
type Generator struct {
	prog     *sema.Program
	br       *bridge.Bridge
	cfg      Config
	Warnings []string
}

// NewGenerator builds a generator over an analyzed program and its
// decoded binary. The line-table bridge is built once here; per-function
// model generation then goes through FuncModel.
func NewGenerator(prog *sema.Program, obj *objfile.File, cfg Config) *Generator {
	return &Generator{prog: prog, br: bridge.Build(obj), cfg: cfg}
}

// FuncModel generates the model for one function by qualified name and
// returns the warnings that generation produced (also accumulated on
// g.Warnings). The per-function warning slice is what the incremental
// pipeline caches alongside the function's model, so a reused function
// replays exactly the warnings a cold analysis would emit.
func (g *Generator) FuncModel(q string) (*model.Func, []string, error) {
	fi, ok := g.prog.Funcs[q]
	if !ok {
		return nil, nil, fmt.Errorf("metrics: no function %q", q)
	}
	if fi.Decl.IsExtern {
		return &model.Func{Name: q, Params: paramNames(fi.Decl), Extern: true}, nil, nil
	}
	mark := len(g.Warnings)
	fm, err := g.genFunc(fi)
	warns := append([]string(nil), g.Warnings[mark:]...)
	if err != nil {
		return nil, warns, fmt.Errorf("metrics: %s: %w", q, err)
	}
	return fm, warns, nil
}

// Generate builds the model for every defined function.
func Generate(prog *sema.Program, obj *objfile.File, cfg Config) (*model.Model, []string, error) {
	g := NewGenerator(prog, obj, cfg)
	m := &model.Model{SourceName: obj.SourceName, Funcs: map[string]*model.Func{}}
	for _, q := range prog.FuncOrder {
		fm, _, err := g.FuncModel(q)
		if err != nil {
			return nil, g.Warnings, err
		}
		m.Funcs[q] = fm
		m.Order = append(m.Order, q)
	}
	return m, g.Warnings, nil
}

func paramNames(fd *ast.FuncDecl) []string {
	var out []string
	for _, p := range fd.Params {
		out = append(out, p.Name)
	}
	return out
}

func (g *Generator) warnf(format string, args ...any) {
	g.Warnings = append(g.Warnings, fmt.Sprintf(format, args...))
}

// funcWalker carries per-function generation state.
type funcWalker struct {
	g  *Generator
	fi *sema.FuncInfo
	fb *bridge.FuncBridge
	fm *model.Func
	sc *scope
	// claimed maps positions to the site that owns them.
	claimed map[bridge.Pos]bool
}

func (g *Generator) genFunc(fi *sema.FuncInfo) (*model.Func, error) {
	fb, ok := g.br.Func(fi.QName)
	if !ok {
		return nil, fmt.Errorf("no binary symbol for %s", fi.QName)
	}
	fm := &model.Func{Name: fi.QName, Params: paramNames(fi.Decl)}
	sc := &scope{
		gen:      g,
		fnParams: map[string]bool{},
		loopVars: map[string]string{},
		bindings: map[string]expr.Expr{},
		invalid:  map[string]bool{},
		annot:    map[string]bool{},
	}
	for _, p := range fi.Decl.Params {
		// Only integer scalars can participate in loop bounds and guards;
		// pointers and doubles never become count parameters.
		if p.Type.Ptr == 0 && p.Type.Kind == ast.Int {
			sc.fnParams[p.Name] = true
		}
	}
	w := &funcWalker{g: g, fi: fi, fb: fb, fm: fm, sc: sc, claimed: map[bridge.Pos]bool{}}

	// Prologue / epilogue instructions are tagged at the function header.
	w.claim(fi.Decl.Pos(), expr.Const(1), "function prologue/epilogue")

	if err := w.walkStmt(fi.Decl.Body, UnitContext()); err != nil {
		return nil, err
	}

	// Coverage invariant: every instruction position must be claimed.
	var missing []string
	for _, p := range fb.Positions() {
		if !w.claimed[p] {
			missing = append(missing, fmt.Sprintf("%d:%d", p.Line, p.Col))
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("unclaimed instruction positions %s (compiler/metrics desync)",
			strings.Join(missing, ", "))
	}

	for ap := range sc.annot {
		fm.AnnotParams = append(fm.AnnotParams, ap)
	}
	sort.Strings(fm.AnnotParams)
	sortSites(fm)
	return fm, nil
}

func sortSites(fm *model.Func) {
	sort.SliceStable(fm.Sites, func(i, j int) bool {
		if fm.Sites[i].Line != fm.Sites[j].Line {
			return fm.Sites[i].Line < fm.Sites[j].Line
		}
		return fm.Sites[i].Col < fm.Sites[j].Col
	})
	sort.SliceStable(fm.Calls, func(i, j int) bool { return fm.Calls[i].Line < fm.Calls[j].Line })
}

// zeroCtx is the context of skipped or unreachable code.
func zeroCtx() Context { return Override(expr.Const(0)) }

// claim attaches the instructions at pos to a site with the given
// multiplicity. Positions with no attributed instructions are skipped.
func (w *funcWalker) claim(pos token.Pos, mult expr.Expr, desc string) {
	p := bridge.Pos{Line: int32(pos.Line), Col: int32(pos.Col)}
	if w.claimed[p] {
		return
	}
	w.claimed[p] = true
	sc := w.fb.Sites[p]
	if sc == nil {
		return
	}
	site := &model.Site{
		Line: pos.Line, Col: pos.Col,
		Desc:   desc,
		Flops:  sc.Flops,
		Instrs: sc.Instrs,
		Mult:   mult,
		Ops:    sc.ByOpcode,
	}
	site.Counts = sc.ByCategory
	w.fm.Sites = append(w.fm.Sites, site)
}

func (w *funcWalker) claimCtx(pos token.Pos, ctx Context, desc string) error {
	mult, err := ctx.Count()
	if err != nil {
		return fmt.Errorf("%s: %w", pos, err)
	}
	w.claim(pos, mult, desc)
	return nil
}

// walkStmt processes one statement under ctx. It returns a replacement
// context for the *following* statements in the same block, implementing
// path sensitivity for guard-continue/break/return patterns; nil means
// unchanged.
func (w *funcWalker) walkStmt(s ast.Stmt, ctx Context) error {
	_, err := w.walkStmtRest(s, ctx)
	return err
}

func (w *funcWalker) walkStmtRest(s ast.Stmt, ctx Context) (*Context, error) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		if st.Annot != nil && st.Annot.Skip {
			return nil, w.walkZero(st)
		}
		cur := ctx
		for _, inner := range st.Stmts {
			rest, err := w.walkStmtRest(inner, cur)
			if err != nil {
				return nil, err
			}
			if rest != nil {
				cur = *rest
			}
		}
		return nil, nil

	case *ast.EmptyStmt:
		return nil, nil

	case *ast.VarDecl:
		if st.Annot != nil && st.Annot.Skip {
			return nil, w.walkZero(st)
		}
		if err := w.claimCtx(st.Pos(), ctx, declDesc(st)); err != nil {
			return nil, err
		}
		w.recordCallsIn(st, ctx)
		// Copy propagation for straight-line integer locals.
		if w.isStraightLine(ctx) {
			for _, d := range st.Names {
				if st.Type.Kind == ast.Int && len(d.Dims) == 0 && d.Init != nil {
					if v, err := w.sc.convert(d.Init); err == nil {
						w.sc.bindings[d.Name] = v
					} else {
						w.sc.invalid[d.Name] = true
					}
				}
			}
		} else {
			for _, d := range st.Names {
				w.sc.invalid[d.Name] = true
			}
		}
		return nil, nil

	case *ast.ExprStmt:
		if st.Annot != nil && st.Annot.Skip {
			return nil, w.walkZero(st)
		}
		if err := w.claimCtx(st.Pos(), ctx, ast.ExprString(st.X)); err != nil {
			return nil, err
		}
		w.recordCallsIn(st, ctx)
		w.updateBindings(st.X, ctx)
		return nil, nil

	case *ast.ReturnStmt:
		if err := w.claimCtx(st.Pos(), ctx, "return"); err != nil {
			return nil, err
		}
		w.recordCallsIn(st, ctx)
		if w.isStraightLine(ctx) {
			z := zeroCtx()
			return &z, nil // code after an unconditional return is dead
		}
		return nil, nil

	case *ast.BreakStmt:
		if err := w.claimCtx(st.Pos(), ctx, "break"); err != nil {
			return nil, err
		}
		z := zeroCtx()
		return &z, nil

	case *ast.ContinueStmt:
		if err := w.claimCtx(st.Pos(), ctx, "continue"); err != nil {
			return nil, err
		}
		z := zeroCtx()
		return &z, nil

	case *ast.IfStmt:
		return w.walkIf(st, ctx)

	case *ast.ForStmt:
		return nil, w.walkFor(st, ctx)

	case *ast.WhileStmt:
		return nil, w.walkWhile(st, ctx)
	}
	return nil, fmt.Errorf("%s: unsupported statement %T", s.Pos(), s)
}

// isStraightLine reports whether ctx is the unguarded top-of-function
// context (safe for copy propagation and dead-code inference).
func (w *funcWalker) isStraightLine(ctx Context) bool {
	return len(ctx.terms) == 1 && len(ctx.terms[0].nest.Entries) == 0 && expr.IsOne(ctx.mult)
}

// walkZero claims every position in a skipped subtree with multiplicity
// zero, so coverage still holds (the paper's skip annotation removes the
// structure from the model, not from the binary).
func (w *funcWalker) walkZero(s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.Stmts {
			if err := w.walkZero(inner); err != nil {
				return err
			}
		}
		return nil
	case *ast.IfStmt:
		w.claim(st.Cond.Pos(), expr.Const(0), "skipped branch")
		if err := w.walkZero(st.Then); err != nil {
			return err
		}
		w.claim(st.Then.Pos(), expr.Const(0), "skipped branch exit")
		if st.Else != nil {
			return w.walkZero(st.Else)
		}
		return nil
	case *ast.ForStmt:
		if st.Init != nil {
			w.claim(st.Init.Pos(), expr.Const(0), "skipped loop init")
		}
		w.claim(st.Pos(), expr.Const(0), "skipped loop")
		if st.Cond != nil {
			w.claim(st.Cond.Pos(), expr.Const(0), "skipped loop cond")
		}
		if st.Post != nil {
			w.claim(st.Post.Pos(), expr.Const(0), "skipped loop post")
		}
		return w.walkZero(st.Body)
	case *ast.WhileStmt:
		w.claim(st.Cond.Pos(), expr.Const(0), "skipped loop cond")
		return w.walkZero(st.Body)
	default:
		w.claim(s.Pos(), expr.Const(0), "skipped")
		return nil
	}
}

func (w *funcWalker) walkIf(st *ast.IfStmt, ctx Context) (*Context, error) {
	// The condition evaluates once per context execution.
	if err := w.claimCtx(st.Cond.Pos(), ctx, "if "+ast.ExprString(st.Cond)); err != nil {
		return nil, err
	}
	w.recordCallsInExpr(st.Cond, ctx, st.Cond.Pos())

	var thenCtx, elseCtx Context
	ann := st.Annot
	switch {
	case ann != nil && ann.Skip:
		if err := w.walkZero(st.Then); err != nil {
			return nil, err
		}
		w.claim(st.Then.Pos(), expr.Const(0), "skipped branch exit")
		if st.Else != nil {
			return nil, w.walkZero(st.Else)
		}
		return nil, nil
	case ann != nil && ann.BranchCount != nil:
		cnt := w.sc.annotValue(ann.BranchCount)
		thenCtx = Override(cnt)
		total, err := ctx.Count()
		if err != nil {
			return nil, err
		}
		elseCtx = Override(expr.NewSub(total, cnt))
	case ann != nil && ann.BranchFrac != nil:
		if ann.BranchFrac.IsParam {
			frac := w.sc.annotValue(ann.BranchFrac)
			total, err := ctx.Count()
			if err != nil {
				return nil, err
			}
			thenCtx = Override(expr.NewMul(total, frac))
			elseCtx = Override(expr.NewMul(total, expr.NewSub(expr.Const(1), frac)))
		} else {
			f, err := rational.FromFloat(ann.BranchFrac.Num)
			if err != nil {
				return nil, fmt.Errorf("%s: bad br_frac: %w", ann.Pos, err)
			}
			thenCtx = ctx.Scale(f)
			elseCtx = ctx.Scale(rational.One.Sub(f))
		}
	default:
		gs, err := w.sc.parseGuards(st.Cond)
		if err != nil {
			if !w.g.cfg.Lenient {
				return nil, err
			}
			w.g.warnf("%s: %v; treating branch as always taken", st.Pos(), err)
			thenCtx, elseCtx = ctx, ctx
			break
		}
		if gs.negate {
			thenCtx = ctx.Else(gs.guards)
			elseCtx = ctx.WithGuards(gs.guards)
		} else {
			thenCtx = ctx.WithGuards(gs.guards)
			elseCtx = ctx.Else(gs.guards)
		}
	}

	if err := w.walkStmt(st.Then, thenCtx); err != nil {
		return nil, err
	}
	// The jump over the else branch is tagged at the then position.
	if st.Else != nil {
		if err := w.claimCtx(st.Then.Pos(), thenCtx, "branch exit"); err != nil {
			return nil, err
		}
		if err := w.walkStmt(st.Else, elseCtx); err != nil {
			return nil, err
		}
		return nil, nil
	}
	// Path sensitivity: "if (c) { continue/break/return; }" narrows the
	// context of the remaining statements to the complement.
	if terminates(st.Then) {
		return &elseCtx, nil
	}
	return nil, nil
}

// terminates reports whether a statement always transfers control away.
func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		if len(st.Stmts) == 0 {
			return false
		}
		return terminates(st.Stmts[len(st.Stmts)-1])
	}
	return false
}

func (w *funcWalker) walkFor(st *ast.ForStmt, ctx Context) error {
	if st.Annot != nil && st.Annot.Skip {
		return w.walkZero(st)
	}

	// A break inside this loop (not inside an inner loop) makes the trip
	// count data-dependent; the user must annotate lp_iter.
	if (st.Annot == nil || st.Annot.LoopIter == nil) && hasDirectBreak(st.Body) {
		return &ErrNotStatic{Pos: st.Pos(), Reason: "loop contains break; annotate with lp_iter"}
	}

	scop, err := w.sc.extractSCoP(st)
	if err != nil {
		return err
	}

	initPos := st.Pos()
	if st.Init != nil {
		initPos = st.Init.Pos()
	}
	if err := w.claimCtx(initPos, ctx, "loop init"); err != nil {
		return err
	}

	loopCtx := ctx.WithLoop(scop.loop)

	// Condition executes trips+1 times; post executes trips times.
	if st.Cond != nil {
		loopCount, err := loopCtx.Count()
		if err != nil {
			return &ErrNotStatic{Pos: st.Pos(), Reason: err.Error()}
		}
		ctxCount, err := ctx.Count()
		if err != nil {
			return err
		}
		w.claim(st.Cond.Pos(), expr.NewAdd(loopCount, ctxCount), "loop cond "+ast.ExprString(st.Cond))
	}
	if st.Post != nil {
		if err := w.claimCtx(st.Post.Pos(), loopCtx, "loop post "+ast.ExprString(st.Post)); err != nil {
			return &ErrNotStatic{Pos: st.Pos(), Reason: err.Error()}
		}
	}

	// Bind the loop variable for inner SCoPs, then walk the body.
	var saved string
	var hadSaved bool
	if scop.srcVar != "" {
		saved, hadSaved = w.sc.loopVars[scop.srcVar]
		w.sc.loopVars[scop.srcVar] = scop.loop.Var
	}
	err = w.walkStmt(st.Body, loopCtx)
	if scop.srcVar != "" {
		if hadSaved {
			w.sc.loopVars[scop.srcVar] = saved
		} else {
			delete(w.sc.loopVars, scop.srcVar)
		}
	}
	return err
}

func (w *funcWalker) walkWhile(st *ast.WhileStmt, ctx Context) error {
	if st.Annot != nil && st.Annot.Skip {
		return w.walkZero(st)
	}
	if st.Annot == nil || st.Annot.LoopIter == nil {
		return &ErrNotStatic{Pos: st.Pos(), Reason: "while loops need an lp_iter annotation"}
	}
	iter := w.sc.annotValue(st.Annot.LoopIter)
	v := w.sc.uniqueLoopVar("__while")
	loopCtx := ctx.WithLoop(polyhedra.Loop{Var: v, Lo: expr.Const(1), Hi: iter, Step: 1})

	// The condition site also carries the back-edge jump; modeled as
	// trips+1 (documented approximation: the back edge itself runs trips).
	loopCount, err := loopCtx.Count()
	if err != nil {
		return err
	}
	ctxCount, err := ctx.Count()
	if err != nil {
		return err
	}
	w.claim(st.Cond.Pos(), expr.NewAdd(loopCount, ctxCount), "while cond "+ast.ExprString(st.Cond))
	return w.walkStmt(st.Body, loopCtx)
}

func hasDirectBreak(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.BreakStmt:
		return true
	case *ast.BlockStmt:
		for _, inner := range st.Stmts {
			if hasDirectBreak(inner) {
				return true
			}
		}
	case *ast.IfStmt:
		if hasDirectBreak(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasDirectBreak(st.Else)
		}
	case *ast.ForStmt, *ast.WhileStmt:
		return false // breaks in there bind to the inner loop
	}
	return false
}

// ---------------------------------------------------------------------------
// Calls and bindings

// recordCallsIn walks a statement's expressions for call sites.
func (w *funcWalker) recordCallsIn(s ast.Stmt, ctx Context) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.recordCallsInExpr(st.X, ctx, st.Pos())
	case *ast.VarDecl:
		for _, d := range st.Names {
			if d.Init != nil {
				w.recordCallsInExpr(d.Init, ctx, st.Pos())
			}
		}
	case *ast.ReturnStmt:
		if st.X != nil {
			w.recordCallsInExpr(st.X, ctx, st.Pos())
		}
	}
}

func (w *funcWalker) recordCallsInExpr(e ast.Expr, ctx Context, pos token.Pos) {
	ast.Walk(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.recordCall(call, ctx, pos)
		return true
	})
}

func (w *funcWalker) recordCall(call *ast.CallExpr, ctx Context, pos token.Pos) {
	callee, err := w.g.prog.ResolveCall(call, func(e ast.Expr) (string, bool) {
		return w.receiverClass(e)
	})
	if err != nil {
		return // the compiler already rejected unresolvable calls
	}
	fi := w.g.prog.Funcs[callee]
	mult, merr := ctx.Count()
	if merr != nil {
		return
	}
	mc := &model.Call{
		Callee: callee,
		Line:   pos.Line,
		Col:    pos.Col,
		Mult:   mult,
		Args:   map[string]expr.Expr{},
	}
	for i, p := range fi.Decl.Params {
		mc.ArgOrder = append(mc.ArgOrder, p.Name)
		if i >= len(call.Args) {
			mc.Args[p.Name] = nil
			continue
		}
		if v, cerr := w.sc.convert(call.Args[i]); cerr == nil {
			mc.Args[p.Name] = v
		} else {
			mc.Args[p.Name] = nil
		}
	}
	w.fm.Calls = append(w.fm.Calls, mc)
}

// receiverClass resolves the static class of a receiver expression using
// walker scope information (declared locals are tracked by sema; here we
// only need the syntactic cases the call graph supports).
func (w *funcWalker) receiverClass(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	types := w.g.prog.Funcs[w.fi.QName]
	_ = types
	// Search declared class variables in this function.
	var found string
	ast.Walk(w.fi.Decl.Body, func(n ast.Node) bool {
		vd, ok := n.(*ast.VarDecl)
		if ok && vd.Type.Kind == ast.Class {
			for _, d := range vd.Names {
				if d.Name == id.Name {
					found = vd.Type.ClassName
				}
			}
		}
		return found == ""
	})
	if found != "" {
		return found, true
	}
	for _, p := range w.fi.Decl.Params {
		if p.Name == id.Name && p.Type.Kind == ast.Class {
			return p.Type.ClassName, true
		}
	}
	if g, ok := w.g.prog.Globals[id.Name]; ok && g.Type.Kind == ast.Class {
		return g.Type.ClassName, true
	}
	return "", false
}

// updateBindings maintains copy propagation across straight-line code.
func (w *funcWalker) updateBindings(e ast.Expr, ctx Context) {
	asg, ok := e.(*ast.AssignExpr)
	if !ok {
		// ++/-- on a tracked binding invalidates it.
		if un, okU := e.(*ast.UnaryExpr); okU && (un.Op == token.INC || un.Op == token.DEC) {
			if name := identName(un.X); name != "" {
				w.sc.invalid[name] = true
				delete(w.sc.bindings, name)
			}
		}
		return
	}
	name := identName(asg.LHS)
	if name == "" {
		return
	}
	if !w.isStraightLine(ctx) || asg.Op != token.ASSIGN {
		w.sc.invalid[name] = true
		delete(w.sc.bindings, name)
		return
	}
	if v, err := w.sc.convert(asg.RHS); err == nil {
		w.sc.bindings[name] = v
		delete(w.sc.invalid, name)
	} else {
		w.sc.invalid[name] = true
		delete(w.sc.bindings, name)
	}
}

func declDesc(vd *ast.VarDecl) string {
	var names []string
	for _, d := range vd.Names {
		names = append(names, d.Name)
	}
	return "declare " + strings.Join(names, ", ")
}
