package metrics_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/metrics"
	"mira/internal/vm"
)

// progGen generates random MiniC programs inside the statically analyzable
// fragment: affine loop nests (rectangular, triangular, strided, downward),
// affine and modulo branch guards, scalar FP arithmetic, and calls to
// earlier-generated helper functions. For every generated program the
// static model must match the VM per category, exactly — this is the
// whole-pipeline analogue of the polyhedra package's brute-force
// cross-check.
type progGen struct {
	rng      *rand.Rand
	sb       strings.Builder
	indent   int
	depth    int
	vars     []string // loop variables in scope
	unitVars []string // unit-stride loop variables (eligible for % guards)
	funcs    []string // previously generated helpers
}

func (g *progGen) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// affineBound renders an affine expression over outer loop vars and n.
func (g *progGen) affineBound(maxConst int) string {
	switch {
	case len(g.vars) > 0 && g.rng.Intn(3) == 0:
		v := g.vars[g.rng.Intn(len(g.vars))]
		return fmt.Sprintf("%s + %d", v, g.rng.Intn(maxConst)+1)
	case g.rng.Intn(3) == 0:
		return fmt.Sprintf("n + %d", g.rng.Intn(maxConst))
	default:
		return fmt.Sprintf("%d", g.rng.Intn(maxConst)+2)
	}
}

func (g *progGen) stmt() {
	switch g.rng.Intn(10) {
	case 0, 1, 2, 3:
		g.w("acc = acc + %d.5;", g.rng.Intn(9))
	case 4:
		g.w("acc = acc * 1.0 + %d.25;", g.rng.Intn(5))
	case 5, 6:
		if g.depth < 3 {
			g.loop()
		} else {
			g.w("acc = acc - 0.5;")
		}
	case 7:
		g.branch()
	case 8:
		if len(g.funcs) > 0 {
			callee := g.funcs[g.rng.Intn(len(g.funcs))]
			g.w("acc = acc + %s(%d);", callee, g.rng.Intn(8)+1)
		} else {
			g.w("acc = acc + 1.0;")
		}
	default:
		g.w("acc = acc / 2.0;")
	}
}

func (g *progGen) loop() {
	v := fmt.Sprintf("v%d", g.depth)
	kind := g.rng.Intn(4)
	switch kind {
	case 0: // rectangular up
		g.w("for (%s = 0; %s < %s; %s++) {", v, v, g.affineBound(9), v)
	case 1: // triangular or shifted
		g.w("for (%s = %d; %s <= %s; %s++) {", v, g.rng.Intn(3), v, g.affineBound(8), v)
	case 2: // strided
		g.w("for (%s = 0; %s < %s; %s += %d) {", v, v, g.affineBound(12), v, g.rng.Intn(3)+2)
	default: // downward
		g.w("for (%s = %s; %s >= 1; %s--) {", v, g.affineBound(8), v, v)
	}
	g.indent++
	g.depth++
	g.vars = append(g.vars, v)
	if kind != 2 {
		g.unitVars = append(g.unitVars, v)
	}
	nStmts := g.rng.Intn(3) + 1
	for s := 0; s < nStmts; s++ {
		g.stmt()
	}
	if kind != 2 {
		g.unitVars = g.unitVars[:len(g.unitVars)-1]
	}
	g.vars = g.vars[:len(g.vars)-1]
	g.depth--
	g.indent--
	g.w("}")
}

func (g *progGen) branch() {
	if len(g.vars) == 0 {
		// Parameter-only guards are (correctly) rejected by the static
		// analyzer; outside loops emit a plain statement instead.
		g.w("acc = acc + 1.0;")
		return
	}
	v := g.vars[g.rng.Intn(len(g.vars))]
	choice := g.rng.Intn(4)
	if (choice == 1 || choice == 2) && len(g.unitVars) > 0 {
		// Congruence guards are only supported on unit-stride loops.
		v = g.unitVars[g.rng.Intn(len(g.unitVars))]
	} else if choice == 1 || choice == 2 {
		choice = 0
	}
	switch choice {
	case 0:
		g.w("if (%s > %d) {", v, g.rng.Intn(6))
	case 1:
		g.w("if (%s %% %d == %d) {", v, g.rng.Intn(3)+2, g.rng.Intn(2))
	case 2:
		g.w("if (%s %% %d != 0) {", v, g.rng.Intn(3)+2)
	default:
		g.w("if (%s < n) {", v)
	}
	g.indent++
	g.w("acc = acc + 0.25;")
	g.indent--
	if g.rng.Intn(2) == 0 {
		g.w("} else {")
		g.indent++
		g.w("acc = acc - 0.125;")
		g.indent--
	}
	g.w("}")
}

func (g *progGen) function(name string) {
	g.w("double %s(int n) {", name)
	g.indent++
	g.w("double acc;")
	for d := 0; d < 3; d++ {
		g.w("int v%d;", d)
	}
	g.w("acc = 0.0;")
	nTop := g.rng.Intn(2) + 1
	for s := 0; s < nTop; s++ {
		if g.rng.Intn(2) == 0 {
			g.loop()
		} else {
			g.stmt()
		}
	}
	g.w("return acc;")
	g.indent--
	g.w("}")
	g.funcs = append(g.funcs, name)
}

// TestRandomProgramsStaticMatchesDynamic is the pipeline-wide property
// test: 60 random multi-function programs, each validated at three sizes,
// with exact per-category agreement required.
func TestRandomProgramsStaticMatchesDynamic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		nHelpers := g.rng.Intn(3)
		for h := 0; h < nHelpers; h++ {
			g.function(fmt.Sprintf("helper%d", h))
		}
		g.function("entry")
		src := g.sb.String()

		obj, m := pipeline(t, src, metrics.Config{})
		for _, n := range []int64{0, 3, 11} {
			mach := vm.New(obj)
			if _, err := mach.Run("entry", vm.Int(n)); err != nil {
				t.Fatalf("seed %d n=%d: vm: %v\n%s", seed, n, err, src)
			}
			dyn, _ := mach.FuncStatsByName("entry")
			static, err := m.Evaluate("entry", expr.EnvFromInts(map[string]int64{"n": n}))
			if err != nil {
				t.Fatalf("seed %d n=%d: static: %v\n%s", seed, n, err, src)
			}
			for c := 0; c < int(ir.NumCategories); c++ {
				if int64(dyn.Inclusive[c]) != static.ByCategory[c] {
					t.Fatalf("seed %d n=%d category %s: dynamic=%d static=%d\n%s",
						seed, n, ir.Category(c), dyn.Inclusive[c], static.ByCategory[c], src)
				}
			}
			if int64(dyn.TotalInclusive()) != static.Instrs {
				t.Fatalf("seed %d n=%d totals: dynamic=%d static=%d\n%s",
					seed, n, dyn.TotalInclusive(), static.Instrs, src)
			}
		}
	}
}
