package metrics

import (
	"mira/internal/expr"
	"mira/internal/polyhedra"
	"mira/internal/rational"
)

// Context is a statement's execution-count context: a signed combination
// of polyhedral nests times a symbolic multiplier. Signed combinations
// express else-branches and != constraints exactly via the paper's
// complement rule (Count_true = Count_total − Count_false) while keeping
// every term inside the polyhedral framework, so nested loops below an
// else branch still count precisely.
type Context struct {
	mult  expr.Expr // multiplier applied to the whole combination
	terms []ctxTerm
}

type ctxTerm struct {
	sign int // +1 or -1
	nest polyhedra.Nest
}

// UnitContext is the top-of-function context (count 1).
func UnitContext() Context {
	return Context{mult: expr.Const(1), terms: []ctxTerm{{sign: 1}}}
}

// WithLoop extends every term by a loop level.
func (c Context) WithLoop(l polyhedra.Loop) Context {
	out := Context{mult: c.mult}
	for _, t := range c.terms {
		out.terms = append(out.terms, ctxTerm{sign: t.sign, nest: t.nest.WithLoop(l)})
	}
	return out
}

// WithGuards extends every term by guards (an if's then-branch).
func (c Context) WithGuards(gs []polyhedra.Guard) Context {
	out := Context{mult: c.mult}
	for _, t := range c.terms {
		n := t.nest
		for _, g := range gs {
			n = n.WithGuard(g)
		}
		out.terms = append(out.terms, ctxTerm{sign: t.sign, nest: n})
	}
	return out
}

// Else returns the complement context of guards: ctx − (ctx ∧ guards).
func (c Context) Else(gs []polyhedra.Guard) Context {
	out := Context{mult: c.mult}
	out.terms = append(out.terms, c.terms...)
	for _, t := range c.terms {
		n := t.nest
		for _, g := range gs {
			n = n.WithGuard(g)
		}
		out.terms = append(out.terms, ctxTerm{sign: -t.sign, nest: n})
	}
	return out
}

// Scale multiplies the context by a rational fraction (br_frac).
func (c Context) Scale(f rational.Rat) Context {
	return c.WithGuards([]polyhedra.Guard{{Kind: polyhedra.Scale, Frac: f}})
}

// Collapse folds the context into a plain multiplier. Used when an
// annotation (br_count, lp_iter on an unanalyzable loop) severs the
// dependence on enclosing loop variables.
func (c Context) Collapse() (Context, error) {
	count, err := c.Count()
	if err != nil {
		return Context{}, err
	}
	return Context{mult: count, terms: []ctxTerm{{sign: 1}}}, nil
}

// Override replaces the context count with an absolute expression
// (br_count annotations).
func Override(count expr.Expr) Context {
	return Context{mult: count, terms: []ctxTerm{{sign: 1}}}
}

// Count returns the symbolic execution count.
func (c Context) Count() (expr.Expr, error) {
	var total expr.Expr = expr.Const(0)
	for _, t := range c.terms {
		n, err := polyhedra.Count(t.nest)
		if err != nil {
			return nil, err
		}
		if t.sign < 0 {
			n = expr.NewNeg(n)
		}
		total = expr.NewAdd(total, n)
	}
	return expr.NewMul(c.mult, total), nil
}

// Loops returns the loop levels of the primary (first, positive) term —
// the chain inner SCoP resolution sees.
func (c Context) Loops() []*polyhedra.Loop {
	if len(c.terms) == 0 {
		return nil
	}
	return c.terms[0].nest.Loops()
}
