package metrics_test

import (
	"bytes"
	"strings"
	"testing"

	"mira/internal/cc"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/metrics"
	"mira/internal/model"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
	"mira/internal/vm"
)

// pipeline compiles source and generates the static model, going through
// the object-file bytes like the real tool does.
func pipeline(t *testing.T, src string, cfg metrics.Config) (*objfile.File, *model.Model) {
	t.Helper()
	file, err := parser.ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "test.c"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if err := obj.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := objfile.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := metrics.Generate(prog, decoded, cfg)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return decoded, m
}

// checkExact runs entry dynamically and statically and requires exact
// per-category agreement of inclusive counts.
func checkExact(t *testing.T, src, entry string, env expr.Env, args ...vm.Value) {
	t.Helper()
	obj, m := pipeline(t, src, metrics.Config{})

	mach := vm.New(obj)
	if _, err := mach.Run(entry, args...); err != nil {
		t.Fatalf("vm: %v", err)
	}
	dyn, _ := mach.FuncStatsByName(entry)

	static, err := m.Evaluate(entry, env)
	if err != nil {
		t.Fatalf("static eval: %v", err)
	}
	for c := 0; c < int(ir.NumCategories); c++ {
		if int64(dyn.Inclusive[c]) != static.ByCategory[c] {
			t.Errorf("%s category %q: dynamic=%d static=%d",
				entry, ir.Category(c), dyn.Inclusive[c], static.ByCategory[c])
		}
	}
	if int64(dyn.FlopsIncl) != static.Flops {
		t.Errorf("%s flops: dynamic=%d static=%d", entry, dyn.FlopsIncl, static.Flops)
	}
}

func TestExactStraightLine(t *testing.T) {
	checkExact(t, `
double f(double x, double y) {
	double a;
	a = x * y + 2.0;
	a = a / x - y;
	return a;
}`, "f", nil, vm.Float(3), vm.Float(4))
}

func TestExactBasicLoop(t *testing.T) {
	// Paper Listing 1.
	src := `
double kernel(int n) {
	double s;
	int i;
	s = 0.0;
	for (i = 0; i < n; i++)
	{
		s = s + 1.5;
	}
	return s;
}`
	for _, n := range []int64{0, 1, 10, 137} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactTriangularNest(t *testing.T) {
	// Paper Listing 2.
	src := `
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			s = s + 1.0;
		}
	return s;
}`
	checkExact(t, src, "kernel", nil)
}

func TestExactParametricTriangular(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i; int j;
	s = 0.0;
	for (i = 0; i < n; i++)
		for (j = 0; j <= i; j++)
		{
			s = s + 1.0;
		}
	return s;
}`
	for _, n := range []int64{0, 1, 7, 50} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactBranchInLoop(t *testing.T) {
	// Paper Listing 4: if (j > 4) inside the Listing 2 nest.
	src := `
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			if(j > 4)
			{
				s = s + 1.0;
			}
		}
	return s;
}`
	checkExact(t, src, "kernel", nil)
}

func TestExactBranchWithElse(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		if (i < 10) {
			s = s + 1.0;
		} else {
			s = s + 2.0;
			s = s * 1.0001;
		}
	}
	return s;
}`
	for _, n := range []int64{0, 5, 10, 50} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactModuloBranch(t *testing.T) {
	// Paper Listing 5: holes in the polyhedron via the complement trick.
	src := `
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 4; i++)
		for(j = i + 1; j <= 6; j++)
		{
			if(j % 4 != 0)
			{
				s = s + 1.0;
			}
		}
	return s;
}`
	checkExact(t, src, "kernel", nil)
}

func TestExactModuloEqBranchParametric(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0) {
			s = s + 1.0;
		}
	}
	return s;
}`
	for _, n := range []int64{0, 1, 9, 100} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactCallChainInclusive(t *testing.T) {
	src := `
double waxpby(int n, double alpha, double beta) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + alpha * beta;
	}
	return s;
}
double driver(int n) {
	double total; int k;
	total = 0.0;
	for (k = 0; k < 10; k++) {
		total = total + waxpby(n, 1.5, 2.5);
	}
	return total;
}`
	for _, n := range []int64{0, 3, 25} {
		checkExact(t, src, "driver",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactArraysAndMemory(t *testing.T) {
	src := `
double kernel(int n) {
	double a[n];
	double b[n];
	int i;
	for (i = 0; i < n; i++) {
		a[i] = i * 1.0;
		b[i] = 2.0;
	}
	double s;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s += a[i] * b[i];
	}
	return s;
}`
	for _, n := range []int64{1, 16, 100} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactStridedAndDownwardLoops(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i += 3) { s = s + 1.0; }
	for (i = n; i >= 1; i--) { s = s + 2.0; }
	for (i = n; i > 0; i -= 2) { s = s + 3.0; }
	return s;
}`
	for _, n := range []int64{0, 1, 10, 31} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactGuardContinuePattern(t *testing.T) {
	// Path sensitivity: statements after "if (c) continue;" execute on the
	// complement only.
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		if (i < 3) { continue; }
		s = s + 1.0;
	}
	return s;
}`
	for _, n := range []int64{0, 2, 3, 20} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExactCopyPropagation(t *testing.T) {
	// Loop bound via a computed local (miniFE's nrows = nx*ny*nz pattern).
	src := `
double kernel(int nx, int ny, int nz) {
	int nrows;
	double s; int i;
	nrows = nx * ny * nz;
	s = 0.0;
	for (i = 0; i < nrows; i++) {
		s = s + 1.0;
	}
	return s;
}`
	checkExact(t, src, "kernel",
		expr.EnvFromInts(map[string]int64{"nx": 3, "ny": 4, "nz": 5}),
		vm.Int(3), vm.Int(4), vm.Int(5))
}

func TestExactClassMethodCalls(t *testing.T) {
	src := `
class Acc {
public:
	double total;
	void add(double v) {
		total = total + v;
	}
};
double driver(int n) {
	Acc a;
	int i;
	a.total = 0.0;
	for (i = 0; i < n; i++) {
		a.add(1.0);
	}
	return a.total;
}`
	for _, n := range []int64{0, 4, 33} {
		checkExact(t, src, "driver",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}

func TestExternCallSkippedStatically(t *testing.T) {
	src := `
extern double sqrt(double x);
double kernel(int n) {
	double s; int i;
	s = 2.0;
	for (i = 0; i < n; i++) {
		s = s + sqrt(s);
	}
	return s;
}`
	obj, m := pipeline(t, src, metrics.Config{})
	n := int64(10)
	mach := vm.New(obj)
	if _, err := mach.Run("kernel", vm.Int(n)); err != nil {
		t.Fatal(err)
	}
	dyn, _ := mach.FuncStatsByName("kernel")
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"n": n}))
	if err != nil {
		t.Fatal(err)
	}
	// The static model must undercount FPI by exactly the library body's
	// contribution: sqrt performs 6 FPI per call (sqrtsd + a Newton
	// refinement step: mul, sub, mul, div, sub).
	gap := int64(dyn.FPIInclusive()) - static.FPI()
	if gap != 6*n {
		t.Errorf("library FPI gap = %d, want %d", gap, 6*n)
	}
	// Exclusive counts (not crossing the call) must agree exactly.
	staticExcl, err := m.EvaluateExclusive("kernel", expr.EnvFromInts(map[string]int64{"n": n}))
	if err != nil {
		t.Fatal(err)
	}
	if int64(dyn.FPIExclusive()) != staticExcl.FPI() {
		t.Errorf("exclusive FPI: dynamic=%d static=%d", dyn.FPIExclusive(), staticExcl.FPI())
	}
}

func TestAnnotationLpIter(t *testing.T) {
	// A data-dependent loop bound (array element) with an lp_iter
	// annotation parameter.
	src := `
double kernel(int *bounds, int n) {
	double s; int i; int k;
	s = 0.0;
	for (i = 0; i < n; i++) {
		#pragma @Annotation {lp_iter:nnz}
		for (k = 0; k < bounds[i]; k++) {
			s = s + 1.0;
		}
	}
	return s;
}`
	obj, m := pipeline(t, src, metrics.Config{})
	// Dynamic run: bounds[i] = 5 for all i.
	n := int64(8)
	mach := vm.New(obj)
	base := mach.Alloc(uint64(n))
	for i := int64(0); i < n; i++ {
		mach.SetI(base+uint64(i), 5)
	}
	if _, err := mach.Run("kernel", vm.Int(int64(base)), vm.Int(n)); err != nil {
		t.Fatal(err)
	}
	dyn, _ := mach.FuncStatsByName("kernel")
	// Static with nnz = 5 must reproduce the inner-statement FPI exactly.
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"n": n, "nnz": 5}))
	if err != nil {
		t.Fatal(err)
	}
	if static.FPI() != int64(dyn.FPIInclusive()) {
		t.Errorf("FPI with exact annotation: static=%d dynamic=%d", static.FPI(), dyn.FPIInclusive())
	}
	// The annotation parameter must be registered.
	fm, _ := m.Lookup("kernel")
	if len(fm.AnnotParams) != 1 || fm.AnnotParams[0] != "nnz" {
		t.Errorf("AnnotParams = %v", fm.AnnotParams)
	}
}

func TestAnnotationSkip(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		#pragma @Annotation {skip:yes}
		s = s + 1.0;
		s = s + 2.0;
	}
	return s;
}`
	_, m := pipeline(t, src, metrics.Config{})
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"n": 10}))
	if err != nil {
		t.Fatal(err)
	}
	// Only the unskipped statement contributes FPI: 10 adds.
	if static.FPI() != 10 {
		t.Errorf("FPI = %d, want 10 (skip annotation ignored?)", static.FPI())
	}
}

func TestAnnotationBranchFraction(t *testing.T) {
	// Data-dependent branch with a br_frac annotation.
	src := `
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		#pragma @Annotation {br_frac:0.25}
		if (x[i] > 0.5) {
			s = s + 1.0;
		}
	}
	return s;
}`
	_, m := pipeline(t, src, metrics.Config{})
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"n": 100}))
	if err != nil {
		t.Fatal(err)
	}
	if static.FPI() != 25 {
		t.Errorf("FPI = %d, want 25 (br_frac)", static.FPI())
	}
}

func TestAnnotationLoopVars(t *testing.T) {
	// Paper Listing 6: lp_init/lp_cond parameters complete the polyhedral
	// model; values are supplied at evaluation time.
	src := `
double kernel(int *a, int n) {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 4; i++) {
		#pragma @Annotation {lp_init:x,lp_cond:y}
		for(j = a[i]; j <= a[i+6]; j++)
		{
			s = s + 1.0;
		}
	}
	return s;
}`
	_, m := pipeline(t, src, metrics.Config{})
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{
		"n": 0, "x": 2, "y": 6,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// 4 outer iterations x (6-2+1) inner = 20.
	if static.FPI() != 20 {
		t.Errorf("FPI = %d, want 20", static.FPI())
	}
}

func TestNonConvexLoopRejected(t *testing.T) {
	// Paper Listing 3: min/max bounds break convexity; without an
	// annotation the generator must refuse.
	src := `
extern int min(int a, int b);
extern int max(int a, int b);
double kernel() {
	double s; int i; int j;
	s = 0.0;
	for(i = 1; i <= 5; i++)
		for(j = min(6 - i, 3); j <= max(8 - i, i); j++)
		{
			s = s + 1.0;
		}
	return s;
}`
	file, err := parser.ParseFile("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "test.c"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = metrics.Generate(prog, obj, metrics.Config{})
	if err == nil {
		t.Fatal("non-convex loop accepted without annotation")
	}
	if !strings.Contains(err.Error(), "convex") && !strings.Contains(err.Error(), "call") {
		t.Errorf("unexpected error: %v", err)
	}
	// With lp_iter annotations the same program becomes analyzable.
	src2 := strings.Replace(src,
		"for(j = min(6 - i, 3); j <= max(8 - i, i); j++)",
		"#pragma @Annotation {lp_iter:inner}\n\t\tfor(j = min(6 - i, 3); j <= max(8 - i, i); j++)", 1)
	_, m := pipeline(t, src2, metrics.Config{})
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"inner": 4}))
	if err != nil {
		t.Fatal(err)
	}
	if static.FPI() != 20 {
		t.Errorf("FPI = %d, want 20", static.FPI())
	}
}

func TestDataDependentBranchRequiresAnnotationOrLenient(t *testing.T) {
	src := `
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		if (x[i] > 0.5) {
			s = s + 1.0;
		}
	}
	return s;
}`
	file, _ := parser.ParseFile("test.c", src)
	prog, _ := sema.Analyze(file)
	obj, err := cc.Compile(prog, cc.Options{SourceName: "test.c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := metrics.Generate(prog, obj, metrics.Config{}); err == nil {
		t.Error("data-dependent branch accepted in strict mode")
	}
	m, warns, err := metrics.Generate(prog, obj, metrics.Config{Lenient: true})
	if err != nil {
		t.Fatalf("lenient mode failed: %v", err)
	}
	if len(warns) == 0 {
		t.Error("lenient mode produced no warning")
	}
	static, err := m.Evaluate("kernel", expr.EnvFromInts(map[string]int64{"n": 10}))
	if err != nil {
		t.Fatal(err)
	}
	if static.FPI() != 10 { // upper bound: branch always taken
		t.Errorf("lenient FPI = %d, want 10", static.FPI())
	}
}

func TestBreakLoopRequiresAnnotation(t *testing.T) {
	src := `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + 1.0;
		if (s > 100.0) { break; }
	}
	return s;
}`
	file, _ := parser.ParseFile("test.c", src)
	prog, _ := sema.Analyze(file)
	obj, err := cc.Compile(prog, cc.Options{SourceName: "test.c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := metrics.Generate(prog, obj, metrics.Config{Lenient: true}); err == nil {
		t.Error("loop with break accepted without lp_iter")
	}
}

func TestUnboundCallArgumentUsesMangledName(t *testing.T) {
	// The paper's y_16 convention: an argument whose value static analysis
	// cannot derive becomes a user-supplied parameter named <param>_<line>.
	src := `
double inner(int m) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < m; i++) { s = s + 1.0; }
	return s;
}
double outer(int *a) {
	return inner(a[0]);
}`
	_, m := pipeline(t, src, metrics.Config{})
	// a[0] is not static: supply m via the mangled name m_<line>.
	fm, _ := m.Lookup("outer")
	if len(fm.Calls) != 1 {
		t.Fatalf("outer has %d call sites", len(fm.Calls))
	}
	mangled := model.MangledParam("m", fm.Calls[0].Line)
	env := expr.EnvFromInts(map[string]int64{mangled: 7})
	static, err := m.Evaluate("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	if static.FPI() != 7 {
		t.Errorf("FPI = %d, want 7", static.FPI())
	}
	// Without the binding, evaluation reports the mangled name.
	_, err = m.Evaluate("outer", nil)
	if err == nil || !strings.Contains(err.Error(), mangled) {
		t.Errorf("expected unbound-parameter error naming %s, got %v", mangled, err)
	}
}

func TestModelPythonEmission(t *testing.T) {
	src := `
class A {
public:
	int n;
	void foo(double *x, double *y) {
		int i; int j;
		for (i = 0; i < 16; i++) {
			#pragma @Annotation {lp_cond:y2}
			for (j = 0; j < 16; j++) {
				x[i] = x[i] + y[j];
			}
		}
	}
};
int main() {
	A a;
	double p[16];
	double q[16];
	a.foo(p, q);
	return 0;
}`
	_, m := pipeline(t, src, metrics.Config{})
	py := m.EmitPython()
	for _, want := range []string{
		"def handle_function_call(caller, callee, count):",
		"def A_foo_2(", // class_method_argcount naming, Fig. 5
		"def main_0():",
		"handle_function_call(metrics, A_foo_2(",
		"Integer arithmetic instruction",
	} {
		if !strings.Contains(py, want) {
			t.Errorf("python model missing %q\n----\n%s", want, py)
		}
	}
}

func TestCategoryBreakdownMatchesVM(t *testing.T) {
	// Per-category agreement on a kernel mixing int and FP work.
	src := `
double kernel(int n) {
	double a[n];
	double s;
	int i;
	for (i = 0; i < n; i++) {
		a[i] = i * 0.5;
	}
	s = 0.0;
	for (i = 0; i < n; i += 2) {
		s += a[i] / 2.0;
	}
	return s;
}`
	for _, n := range []int64{4, 64, 999} {
		checkExact(t, src, "kernel",
			expr.EnvFromInts(map[string]int64{"n": n}), vm.Int(n))
	}
}
