package metrics

import (
	"fmt"

	"mira/internal/ast"
	"mira/internal/expr"
	"mira/internal/polyhedra"
	"mira/internal/rational"
	"mira/internal/token"
)

// ErrNotStatic reports an expression or control structure that static
// analysis cannot resolve without a user annotation (the situations of
// paper Listings 3 and 6).
type ErrNotStatic struct {
	Pos    token.Pos
	Reason string
}

func (e *ErrNotStatic) Error() string {
	return fmt.Sprintf("%s: not statically analyzable: %s (add a #pragma @Annotation)", e.Pos, e.Reason)
}

// scope tracks name resolution during model generation: enclosing loop
// variables (renamed to be unique within the nest) and copy-propagated
// integer locals.
type scope struct {
	gen      *Generator
	fnParams map[string]bool   // numeric parameters of the current function
	loopVars map[string]string // source name -> unique nest name
	bindings map[string]expr.Expr
	invalid  map[string]bool // locals that lost their binding
	annot    map[string]bool // annotation parameters registered so far
	seq      int
}

func (s *scope) uniqueLoopVar(name string) string {
	s.seq++
	if _, taken := s.loopVars[name]; !taken && !s.fnParams[name] {
		return name
	}
	return fmt.Sprintf("%s__%d", name, s.seq)
}

// convert translates a source expression into a symbolic expression over
// loop variables, function parameters, and constants.
func (s *scope) convert(e ast.Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return expr.Const(x.Value), nil
	case *ast.BoolLit:
		if x.Value {
			return expr.Const(1), nil
		}
		return expr.Const(0), nil
	case *ast.ParenExpr:
		return s.convert(x.X)
	case *ast.Ident:
		if u, ok := s.loopVars[x.Name]; ok {
			return expr.P(u), nil
		}
		if v, ok := s.bindings[x.Name]; ok && !s.invalid[x.Name] {
			return v, nil
		}
		if s.invalid[x.Name] {
			return nil, &ErrNotStatic{Pos: x.Pos(), Reason: fmt.Sprintf("variable %q is reassigned in a loop", x.Name)}
		}
		if g, ok := s.gen.prog.Globals[x.Name]; ok {
			if g.IsConst && g.HasConst && g.Type.Kind != ast.Double {
				return expr.Const(g.ConstI), nil
			}
			// Non-const global scalar: a model parameter.
			if len(g.Dims) == 0 && g.Type.Ptr == 0 && g.Type.Kind == ast.Int {
				return expr.P(x.Name), nil
			}
			return nil, &ErrNotStatic{Pos: x.Pos(), Reason: fmt.Sprintf("global %q is not an integer scalar", x.Name)}
		}
		if s.fnParams[x.Name] {
			return expr.P(x.Name), nil
		}
		return nil, &ErrNotStatic{Pos: x.Pos(), Reason: fmt.Sprintf("value of %q is not statically known", x.Name)}
	case *ast.UnaryExpr:
		if x.Op == token.MINUS {
			v, err := s.convert(x.X)
			if err != nil {
				return nil, err
			}
			return expr.NewNeg(v), nil
		}
		return nil, &ErrNotStatic{Pos: x.Pos(), Reason: fmt.Sprintf("unary %s", x.Op)}
	case *ast.BinaryExpr:
		a, err := s.convert(x.X)
		if err != nil {
			return nil, err
		}
		b, err := s.convert(x.Y)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.PLUS:
			return expr.NewAdd(a, b), nil
		case token.MINUS:
			return expr.NewSub(a, b), nil
		case token.STAR:
			return expr.NewMul(a, b), nil
		case token.SLASH:
			c, ok := expr.ConstVal(b)
			if !ok || c.Sign() == 0 {
				return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "division by a non-constant"}
			}
			return expr.NewFloorDiv(a, c), nil
		default:
			return nil, &ErrNotStatic{Pos: x.Pos(), Reason: fmt.Sprintf("operator %s", x.Op)}
		}
	case *ast.CallExpr:
		// min/max of statically known values stay analyzable; the paper's
		// Listing 3 shows how they can still break convexity, which the
		// polyhedral layer detects downstream.
		if id, ok := x.Fun.(*ast.Ident); ok && len(x.Args) == 2 {
			if id.Name == "min" || id.Name == "fmin" || id.Name == "max" || id.Name == "fmax" {
				a, err := s.convert(x.Args[0])
				if err != nil {
					return nil, err
				}
				b, err := s.convert(x.Args[1])
				if err != nil {
					return nil, err
				}
				if id.Name == "min" || id.Name == "fmin" {
					return expr.NewMin(a, b), nil
				}
				return expr.NewMax(a, b), nil
			}
		}
		return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "loop bound depends on a function call return value"}
	case *ast.IndexExpr:
		return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "loop bound depends on an array element"}
	}
	return nil, &ErrNotStatic{Pos: e.Pos(), Reason: fmt.Sprintf("expression %T", e)}
}

// annotValue converts an annotation value to an expression, registering
// parameter-valued annotations as model parameters.
func (s *scope) annotValue(v *ast.AnnotValue) expr.Expr {
	if v.IsParam {
		s.annot[v.Param] = true
		return expr.P(v.Param)
	}
	r, err := rational.FromFloat(v.Num)
	if err != nil {
		r = rational.Zero
	}
	return expr.ConstRat(r)
}

// scopInfo is an extracted static control part.
type scopInfo struct {
	srcVar string // source loop variable name ("" for annotated iter loops)
	loop   polyhedra.Loop
}

// extractSCoP derives the polyhedral loop from a for statement,
// considering annotations (paper Sec. III-C2, III-C4).
func (s *scope) extractSCoP(st *ast.ForStmt) (*scopInfo, error) {
	ann := st.Annot

	// lp_iter short-circuits everything: a rectangular [1..N] loop.
	if ann != nil && ann.LoopIter != nil {
		v := s.uniqueLoopVar("__iter")
		return &scopInfo{loop: polyhedra.Loop{
			Var: v, Lo: expr.Const(1), Hi: s.annotValue(ann.LoopIter), Step: 1,
		}}, nil
	}

	varName, initE, err := splitInit(st)
	if err != nil {
		return nil, err
	}
	stepVar, step, err := splitPost(st, varName)
	if err != nil {
		return nil, err
	}
	if stepVar != varName {
		return nil, &ErrNotStatic{Pos: st.Pos(), Reason: fmt.Sprintf("loop increments %q but initializes %q", stepVar, varName)}
	}

	// Initial value: annotation overrides a non-static init.
	var lo expr.Expr
	if ann != nil && ann.LoopInit != nil {
		lo = s.annotValue(ann.LoopInit)
	} else {
		lo, err = s.convert(initE)
		if err != nil {
			return nil, err
		}
	}

	// Condition bound.
	var boundE expr.Expr
	var condOp token.Kind
	if ann != nil && ann.LoopCond != nil {
		boundE = s.annotValue(ann.LoopCond)
		condOp = token.LEQ // annotation supplies an inclusive bound
		if step < 0 {
			condOp = token.GEQ
		}
	} else {
		if st.Cond == nil {
			return nil, &ErrNotStatic{Pos: st.Pos(), Reason: "loop has no condition"}
		}
		cmp, ok := st.Cond.(*ast.BinaryExpr)
		if !ok || !cmp.Op.IsCmpOp() {
			return nil, &ErrNotStatic{Pos: st.Cond.Pos(), Reason: "loop condition is not a comparison"}
		}
		lhsVar := identName(cmp.X) == varName
		rhsVar := identName(cmp.Y) == varName
		var raw ast.Expr
		condOp = cmp.Op
		switch {
		case lhsVar:
			raw = cmp.Y
		case rhsVar:
			raw = cmp.X
			condOp = flipCmp(cmp.Op)
		default:
			return nil, &ErrNotStatic{Pos: cmp.Pos(), Reason: fmt.Sprintf("loop condition does not test %q", varName)}
		}
		boundE, err = s.convert(raw)
		if err != nil {
			return nil, err
		}
	}
	if ann != nil && ann.LoopStep != nil {
		sv, okC := expr.ConstVal(s.annotValue(ann.LoopStep))
		iv, okI := sv.Int64()
		if !okC || !okI || iv == 0 {
			return nil, &ErrNotStatic{Pos: ann.Pos, Reason: "lp_step must be a nonzero integer constant"}
		}
		step = iv
	}

	// Normalize to an upward loop [Lo..Hi] with positive step.
	var loFinal, hiFinal expr.Expr
	switch {
	case step > 0:
		loFinal = lo
		switch condOp {
		case token.LT:
			hiFinal = expr.NewSub(boundE, expr.Const(1))
		case token.LEQ:
			hiFinal = boundE
		case token.NEQ:
			hiFinal = expr.NewSub(boundE, expr.Const(1))
		default:
			return nil, &ErrNotStatic{Pos: st.Pos(), Reason: fmt.Sprintf("upward loop with %s condition", condOp)}
		}
	case step < 0:
		hiFinal = lo
		switch condOp {
		case token.GT:
			loFinal = expr.NewAdd(boundE, expr.Const(1))
		case token.GEQ:
			loFinal = boundE
		case token.NEQ:
			loFinal = expr.NewAdd(boundE, expr.Const(1))
		default:
			return nil, &ErrNotStatic{Pos: st.Pos(), Reason: fmt.Sprintf("downward loop with %s condition", condOp)}
		}
		step = -step
	}

	u := s.uniqueLoopVar(varName)
	return &scopInfo{
		srcVar: varName,
		loop:   polyhedra.Loop{Var: u, Lo: loFinal, Hi: hiFinal, Step: step},
	}, nil
}

func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func flipCmp(op token.Kind) token.Kind {
	switch op {
	case token.LT:
		return token.GT
	case token.GT:
		return token.LT
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// splitInit extracts (variable, initial-value expression) from a for init.
func splitInit(st *ast.ForStmt) (string, ast.Expr, error) {
	switch init := st.Init.(type) {
	case *ast.ExprStmt:
		asg, ok := init.X.(*ast.AssignExpr)
		if !ok || asg.Op != token.ASSIGN {
			return "", nil, &ErrNotStatic{Pos: init.Pos(), Reason: "loop init is not a simple assignment"}
		}
		name := identName(asg.LHS)
		if name == "" {
			return "", nil, &ErrNotStatic{Pos: init.Pos(), Reason: "loop init target is not a variable"}
		}
		return name, asg.RHS, nil
	case *ast.VarDecl:
		if len(init.Names) != 1 || init.Names[0].Init == nil {
			return "", nil, &ErrNotStatic{Pos: init.Pos(), Reason: "loop init declaration must declare one initialized variable"}
		}
		return init.Names[0].Name, init.Names[0].Init, nil
	case nil:
		return "", nil, &ErrNotStatic{Pos: st.Pos(), Reason: "loop has no init clause"}
	}
	return "", nil, &ErrNotStatic{Pos: st.Pos(), Reason: "unsupported loop init"}
}

// splitPost extracts (variable, signed constant step) from a for post.
func splitPost(st *ast.ForStmt, wantVar string) (string, int64, error) {
	post := st.Post
	if post == nil {
		return "", 0, &ErrNotStatic{Pos: st.Pos(), Reason: "loop has no increment clause"}
	}
	switch x := post.(type) {
	case *ast.UnaryExpr:
		name := identName(x.X)
		switch x.Op {
		case token.INC:
			return name, 1, nil
		case token.DEC:
			return name, -1, nil
		}
	case *ast.AssignExpr:
		name := identName(x.LHS)
		switch x.Op {
		case token.PLUSEQ, token.MINUSEQ:
			if c, ok := constLit(x.RHS); ok {
				if x.Op == token.MINUSEQ {
					c = -c
				}
				return name, c, nil
			}
		case token.ASSIGN:
			// i = i + c or i = i - c.
			if bin, ok := x.RHS.(*ast.BinaryExpr); ok && identName(bin.X) == name {
				if c, okc := constLit(bin.Y); okc {
					if bin.Op == token.PLUS {
						return name, c, nil
					}
					if bin.Op == token.MINUS {
						return name, -c, nil
					}
				}
			}
		}
	}
	return "", 0, &ErrNotStatic{Pos: post.Pos(), Reason: "loop increment is not a constant step"}
}

func constLit(e ast.Expr) (int64, bool) {
	if il, ok := e.(*ast.IntLit); ok {
		return il.Value, true
	}
	return 0, false
}

// guardSet is a parsed branch condition.
type guardSet struct {
	guards []polyhedra.Guard
	// negate means the parsed guards describe the FALSE branch (the
	// complement trick): e.g. "x != y" parses to the == guards negated.
	negate bool
}

// parseGuards converts an if condition into polyhedral guards.
func (s *scope) parseGuards(cond ast.Expr) (*guardSet, error) {
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return s.parseGuards(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			inner, err := s.parseGuards(x.X)
			if err != nil {
				return nil, err
			}
			inner.negate = !inner.negate
			return inner, nil
		}
	case *ast.BinaryExpr:
		if x.Op == token.ANDAND {
			a, err := s.parseGuards(x.X)
			if err != nil {
				return nil, err
			}
			b, err := s.parseGuards(x.Y)
			if err != nil {
				return nil, err
			}
			if a.negate || b.negate {
				return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "negated conjunct in a compound condition"}
			}
			return &guardSet{guards: append(a.guards, b.guards...)}, nil
		}
		if x.Op.IsCmpOp() {
			return s.parseComparison(x)
		}
	}
	return nil, &ErrNotStatic{Pos: cond.Pos(), Reason: "branch condition is not affine"}
}

func (s *scope) parseComparison(x *ast.BinaryExpr) (*guardSet, error) {
	// Modulo pattern: E % m == k / E % m != k.
	if modE, m, ok := modPattern(x.X); ok && (x.Op == token.EQ || x.Op == token.NEQ) {
		k, okK := constLit(x.Y)
		if !okK {
			return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "modulo comparison with non-constant residue"}
		}
		e, err := s.convert(modE)
		if err != nil {
			return nil, err
		}
		kind := polyhedra.ModEq
		if x.Op == token.NEQ {
			kind = polyhedra.ModNeq
		}
		rem := ((k % m) + m) % m
		return &guardSet{guards: []polyhedra.Guard{{Kind: kind, E: e, Mod: m, Rem: rem}}}, nil
	}

	a, err := s.convert(x.X)
	if err != nil {
		return nil, err
	}
	b, err := s.convert(x.Y)
	if err != nil {
		return nil, err
	}
	ge := func(e expr.Expr) polyhedra.Guard {
		return polyhedra.Guard{Kind: polyhedra.AffineGE, E: e}
	}
	switch x.Op {
	case token.LT: // a < b  <=>  b - a - 1 >= 0
		return &guardSet{guards: []polyhedra.Guard{ge(expr.NewSub(expr.NewSub(b, a), expr.Const(1)))}}, nil
	case token.LEQ:
		return &guardSet{guards: []polyhedra.Guard{ge(expr.NewSub(b, a))}}, nil
	case token.GT:
		return &guardSet{guards: []polyhedra.Guard{ge(expr.NewSub(expr.NewSub(a, b), expr.Const(1)))}}, nil
	case token.GEQ:
		return &guardSet{guards: []polyhedra.Guard{ge(expr.NewSub(a, b))}}, nil
	case token.EQ:
		return &guardSet{guards: []polyhedra.Guard{ge(expr.NewSub(a, b)), ge(expr.NewSub(b, a))}}, nil
	case token.NEQ:
		// != is the complement of ==.
		return &guardSet{
			guards: []polyhedra.Guard{ge(expr.NewSub(a, b)), ge(expr.NewSub(b, a))},
			negate: true,
		}, nil
	}
	return nil, &ErrNotStatic{Pos: x.Pos(), Reason: "unsupported comparison"}
}

// modPattern matches E % m.
func modPattern(e ast.Expr) (ast.Expr, int64, bool) {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.PERCENT {
		return nil, 0, false
	}
	m, okM := constLit(bin.Y)
	if !okM || m <= 0 {
		return nil, 0, false
	}
	return bin.X, m, true
}
