package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Lockdisc enforces the tree's lock discipline with a forward lockset
// analysis over each function's CFG:
//
//  1. Release on all exits: a sync.Mutex/RWMutex acquired on a path
//     must be released (or defer-released) on every path to the
//     function's exit. The classic escape is the early error return
//     between Lock and Unlock — the PR 7 suite could only check
//     syntactic pairing; this check is path-sensitive, so branch
//     unlocks (AnalyzeCtx's style) verify and a missed error path is
//     flagged at the acquisition site.
//
//  2. Guarded access: a struct field annotated `//lint:guarded-by mu`
//     may only be read or written while mu (the sibling mutex named in
//     the annotation, on the same base expression) is held — write- or
//     read-locked — at that program point.
//
// Conventions honored: functions whose name ends in "Locked" assume
// their caller holds the lock and are exempt from the guarded-access
// check (their doc comments say "callers must hold ..."), as are
// constructors (New*/new*), whose receiver is not yet shared. Function
// literals are analyzed as separate functions; a literal that accesses
// guarded state under a lock taken by its *enclosing* function is
// beyond the analysis (locks do not flow into closures) and needs a
// reasoned suppression. TryLock is ignored (its result makes holding
// conditional).
var Lockdisc = &Analyzer{
	Name: "lockdisc",
	Doc: "mutex acquired on a path but not released on all exits, and accesses " +
		"to //lint:guarded-by fields without the guard held — path-sensitive " +
		"lockset analysis of every function",
	Run: runLockdisc,
}

// guardedByRE matches a field annotation: //lint:guarded-by <mutexField>
var guardedByRE = regexp.MustCompile(`^//lint:guarded-by\s+([A-Za-z_]\w*)\s*$`)

func runLockdisc(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "mira/") {
		return nil
	}
	guards := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := guardExempt(fd.Name.Name)
			analyzeLocks(pass, fd.Body, guards, exempt)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					analyzeLocks(pass, fl.Body, guards, exempt)
				}
				return true
			})
		}
	}
	return nil
}

// guardExempt reports whether the named function is exempt from the
// guarded-access check: "...Locked" helpers assume the lock is held,
// and constructors own their receiver exclusively.
func guardExempt(name string) bool {
	return strings.HasSuffix(name, "Locked") ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// collectGuards maps annotated struct-field objects to the name of the
// mutex field guarding them. Annotations are package-local: unexported
// fields cannot be accessed across packages anyway.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field.Doc)
				if guard == "" {
					guard = guardAnnotation(field.Comment)
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if m := guardedByRE.FindStringSubmatch(c.Text); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockState is one (possibly) held lock at a program point.
type lockState struct {
	pos      token.Pos
	must     bool // held on every path reaching this point
	deferred bool // a deferred unlock is registered on every such path
}

// lockMap is the lockset: lock key ("s.mu", or "s.mu/r" for a read
// lock) to its state. Presence means may-held.
type lockMap map[string]lockState

var lockFlow = FlowFuncs[lockMap]{
	Clone: func(s lockMap) lockMap {
		c := make(lockMap, len(s))
		for k, v := range s {
			c[k] = v
		}
		return c
	},
	Join: func(acc, in lockMap) lockMap {
		for k, b := range in {
			if a, ok := acc[k]; ok {
				a.must = a.must && b.must
				a.deferred = a.deferred && b.deferred
				acc[k] = a
			} else {
				b.must = false
				acc[k] = b
			}
		}
		for k, a := range acc {
			if _, ok := in[k]; !ok {
				a.must = false
				acc[k] = a
			}
		}
		return acc
	},
	Equal: func(a, b lockMap) bool {
		if len(a) != len(b) {
			return false
		}
		for k, av := range a {
			bv, ok := b[k]
			if !ok || av.must != bv.must || av.deferred != bv.deferred {
				return false
			}
		}
		return true
	},
	// Transfer is bound per-function in analyzeLocks (it needs the Pass).
}

// analyzeLocks runs the lockset analysis over one function body,
// reporting leaks at exit and unguarded accesses along the way.
func analyzeLocks(pass *Pass, body *ast.BlockStmt, guards map[types.Object]string, exempt bool) {
	cfg := BuildCFG(body, TermInfo(pass.TypesInfo))
	flow := lockFlow
	flow.Transfer = func(n ast.Node, s lockMap) { lockTransfer(pass, n, s) }
	in := Forward(cfg, lockMap{}, flow)

	// Leak check: any lock still (maybe) held at Exit without a
	// deferred release escaped some path. Report once per acquire site.
	reported := map[token.Pos]bool{}
	if exitState, ok := in[cfg.Exit]; ok {
		keys := make([]string, 0, len(exitState))
		for k := range exitState {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			st := exitState[k]
			if st.deferred || reported[st.pos] {
				continue
			}
			reported[st.pos] = true
			how := "is not released on some path to return"
			if st.must {
				how = "is never released before return"
			}
			pass.Reportf(st.pos, "%s acquired here %s; unlock on every exit path or defer the unlock",
				lockName(k), how)
		}
	}

	// Guarded-access check: replay each block's transfer, checking the
	// state right before each node's accesses.
	if exempt || len(guards) == 0 {
		return
	}
	for _, blk := range cfg.Blocks {
		state, ok := in[blk]
		if !ok {
			continue
		}
		s := flow.Clone(state)
		for _, n := range blk.Nodes {
			checkGuardedAccess(pass, n, s, guards)
			lockTransfer(pass, n, s)
		}
	}
}

// lockName renders a lockset key for diagnostics.
func lockName(key string) string {
	if b, ok := strings.CutSuffix(key, "/r"); ok {
		return "read lock " + b
	}
	return "lock " + key
}

// lockTransfer applies one atomic node to the lockset: Lock/RLock
// acquire, Unlock/RUnlock release, and a deferred unlock marks the
// entry satisfied on every path past the defer. Function literals are
// opaque (analyzed separately).
func lockTransfer(pass *Pass, n ast.Node, s lockMap) {
	if ds, ok := n.(*ast.DeferStmt); ok {
		if key, op, ok := lockOp(pass.TypesInfo, ds.Call); ok && (op == "Unlock" || op == "RUnlock") {
			k := key
			if op == "RUnlock" {
				k += "/r"
			}
			if st, held := s[k]; held {
				st.deferred = true
				s[k] = st
			}
		}
		return
	}
	inspectSkippingFuncLits(n, func(x ast.Node) {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		key, op, ok := lockOp(pass.TypesInfo, call)
		if !ok {
			return
		}
		switch op {
		case "Lock":
			s[key] = lockState{pos: call.Pos(), must: true}
		case "RLock":
			s[key+"/r"] = lockState{pos: call.Pos(), must: true}
		case "Unlock":
			delete(s, key)
		case "RUnlock":
			delete(s, key+"/r")
		}
	})
}

// lockOp recognizes a mutex operation call and returns the lock's key
// (the receiver expression's text) and the operation name.
func lockOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprText(sel.X), sel.Sel.Name, true
}

// checkGuardedAccess reports reads/writes of annotated fields while the
// named guard is not must-held (in either write or read mode) on the
// same base expression.
func checkGuardedAccess(pass *Pass, n ast.Node, s lockMap, guards map[types.Object]string) {
	inspectSkippingFuncLits(n, func(x ast.Node) {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return
		}
		guard, guarded := guards[obj]
		if !guarded {
			return
		}
		key := exprText(sel.X) + "." + guard
		if st, held := s[key]; held && st.must {
			return
		}
		if st, held := s[key+"/r"]; held && st.must {
			return
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s (//lint:guarded-by) but %s is not held here",
			exprText(sel.X), sel.Sel.Name, guard, key)
	})
}

// inspectSkippingFuncLits walks the node's subtree without descending
// into function literals: a literal's lock operations belong to its own
// analysis, not its enclosing function's flow.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}
