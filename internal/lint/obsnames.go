package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Obsnames statically enforces the OpenMetrics naming convention on
// every metric registered against internal/obs, complementing the
// runtime exposition linter (obs.Parse) the CI gate already runs: the
// runtime lint only sees series that a given run actually registers,
// while this check covers every registration site in the tree. Names
// must match mira_[a-z0-9_]+; the exposition writer appends the
// reserved sample suffixes itself (_total for counters, _count/_sum for
// summaries), so a family name carrying one would double it; and
// latency summaries must end _seconds (base-unit rule).
var Obsnames = &Analyzer{
	Name: "obsnames",
	Doc: "metric names registered against internal/obs must be literal, match " +
		"mira_[a-z0-9_]+, not carry reserved exposition suffixes (_total/_count/" +
		"_sum/_bucket — the writer appends those), and summaries must end _seconds",
	Run: runObsnames,
}

// obsRegisterMethods are the Registry registration entry points.
var obsRegisterMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Summary":   true,
}

var obsNameRE = regexp.MustCompile(`^mira_[a-z0-9]+(_[a-z0-9]+)*$`)

// reservedSuffixes are appended by the exposition writer or reserved by
// OpenMetrics; a family name must not carry them.
var reservedSuffixes = []string{"_total", "_count", "_sum", "_bucket"}

func runObsnames(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !obsRegisterMethods[sel.Sel.Name] {
				return true
			}
			if !isObsRegistryMethod(pass.TypesInfo, sel) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to Registry.%s must be a string literal so it can be vetted statically", sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkMetricName(pass, lit, sel.Sel.Name, name)
			return true
		})
	}
	return nil
}

// checkMetricName applies the naming convention to one registration.
func checkMetricName(pass *Pass, lit *ast.BasicLit, method, name string) {
	if !obsNameRE.MatchString(name) {
		pass.Reportf(lit.Pos(),
			"metric name %q does not match the mira_[a-z0-9_]+ convention", name)
		return
	}
	for _, suf := range reservedSuffixes {
		if strings.HasSuffix(name, suf) {
			pass.Reportf(lit.Pos(),
				"metric name %q carries reserved exposition suffix %q; the OpenMetrics writer appends sample suffixes itself (register the bare family name)",
				name, suf)
			return
		}
	}
	if method == "Summary" && !strings.HasSuffix(name, "_seconds") {
		pass.Reportf(lit.Pos(),
			"summary %q must end in _seconds (latency summaries observe base-unit seconds)", name)
	}
}

// isObsRegistryMethod reports whether the selector resolves to a method
// on internal/obs.Registry.
func isObsRegistryMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "mira/internal/obs"
}
