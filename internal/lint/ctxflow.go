package lint

import (
	"go/ast"
)

// Ctxflow guards the context plumbing PR 3 threaded end to end: inside
// the request-path packages (engine, report, the serve daemon), minting
// a fresh context with context.Background()/context.TODO() severs the
// caller's cancellation — a dropped client keeps burning workers. The
// context must arrive as a parameter and be forwarded. Allowed escapes:
// func main (the process root owns the root context), and functions
// documented "Deprecated:" (ctx-free compatibility shims over the Ctx
// variants). It also enforces context-first parameter order on exported
// functions, so call sites read uniformly.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Background()/TODO() minted inside request-path packages " +
		"(internal/engine, internal/report, cmd/mira-serve) severs caller " +
		"cancellation (the PR 3 dropped-context bug class); contexts must be " +
		"accepted as the first parameter and forwarded",
	Run: runCtxflow,
}

// ctxflowScope is the request-path package set.
var ctxflowScope = map[string]bool{
	"mira/internal/engine": true,
	"mira/internal/report": true,
	"mira/cmd/mira-serve":  true,
}

func runCtxflow(pass *Pass) error {
	if !ctxflowScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFirst(pass, fd)
			if fd.Name.Name == "main" && fd.Recv == nil && pass.Pkg.Name() == "main" {
				continue // the process root mints the root context
			}
			if docContains(fd.Doc, "Deprecated:") {
				continue // sanctioned ctx-free compatibility shim
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, name := range [...]string{"Background", "TODO"} {
					if isPkgFunc(pass.TypesInfo, call, "context", name) {
						pass.Reportf(call.Pos(),
							"context.%s() inside a request path severs caller cancellation; accept a context.Context parameter and forward it",
							name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxFirst flags exported functions that take a context.Context
// anywhere but first.
func checkCtxFirst(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if isContextType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of exported %s", fd.Name.Name)
		}
		pos += names
	}
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	t, ok := pass.TypesInfo.Types[e]
	return ok && t.Type.String() == "context.Context"
}
