package lint

import (
	"go/ast"
	"go/types"
)

// Goroleak requires every `go` statement in the engine, cluster, and
// serve packages to be tied to a lifecycle: the spawned code must
// observe a context, participate in a WaitGroup, or communicate over a
// channel (a done channel, a bounded queue, a result send). PR 5 and
// PR 8 built the bounded-lifetime discipline this encodes — the
// engine's sweep workers join a WaitGroup, the peer store's replicate
// loop selects on its done channel — and a goroutine with none of these
// is unjoinable: it outlives its owner, leaks on shutdown, and turns
// clean test exits into hangs.
//
// A `go func() {...}()` is judged by its literal's body (and arguments).
// A `go s.worker()` is judged by the callee: if the callee's body shows
// lifecycle evidence, the analyzer exports a LifecycleBound fact on it,
// so spawns of functions defined in dependency packages are checked
// across package boundaries through the vetx fact store.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "go statements in engine/cluster/serve not tied to a ctx, WaitGroup, " +
		"or channel; unjoinable goroutines outlive their owner and hang " +
		"shutdown (the bounded-lifetime discipline of the sweep workers and " +
		"the peer replicate loop)",
	Run:       runGoroleak,
	FactTypes: []Fact{(*LifecycleBound)(nil)},
}

// LifecycleBound marks a function whose body shows lifecycle evidence:
// spawning it with `go` is sanctioned.
type LifecycleBound struct {
	// Evidence names what bounds the lifetime ("selects on a channel",
	// "joins a WaitGroup", ...), for diagnostics and debugging.
	Evidence string
}

// AFact marks LifecycleBound as a fact type.
func (*LifecycleBound) AFact() {}

// goroleakScope is the package set whose goroutines must be bounded.
// Facts are exported from every analyzed package regardless, so a
// scoped package spawning a dependency's function can see its evidence.
var goroleakScope = map[string]bool{
	"mira/internal/engine":  true,
	"mira/internal/cluster": true,
	"mira/cmd/mira-serve":   true,
}

func runGoroleak(pass *Pass) error {
	// Fact export runs everywhere (dependencies included): record every
	// function whose body shows lifecycle evidence.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ev := lifecycleEvidence(pass.TypesInfo, fd.Body); ev != "" {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(obj, &LifecycleBound{Evidence: ev})
				}
			}
		}
	}

	if !goroleakScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Lifecycle material passed as an argument (a ctx, a
			// channel, a *sync.WaitGroup) counts for any spawn form.
			for _, arg := range gs.Call.Args {
				if isLifecycleValue(pass.TypesInfo, arg) {
					return true
				}
			}
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if lifecycleEvidence(pass.TypesInfo, fun.Body) == "" {
					pass.Reportf(gs.Pos(),
						"goroutine is not tied to a ctx, WaitGroup, or channel; it cannot be joined or shut down")
				}
			default:
				obj := calleeObject(pass.TypesInfo, gs.Call)
				if obj == nil {
					pass.Reportf(gs.Pos(),
						"cannot resolve the spawned function; tie the goroutine to a ctx, WaitGroup, or channel")
					return true
				}
				var fact LifecycleBound
				if !pass.ImportObjectFact(obj, &fact) {
					pass.Reportf(gs.Pos(),
						"goroutine runs %s, which is not tied to a ctx, WaitGroup, or channel; it cannot be joined or shut down",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// calleeObject resolves the function or method a call invokes.
func calleeObject(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// lifecycleEvidence scans a function body for proof its lifetime is
// bounded, returning a short description of the first evidence found:
// a context.Context in use, WaitGroup participation, or any channel
// operation (send, receive, or select — a done channel, a bounded
// queue, a result send all qualify).
func lifecycleEvidence(info *types.Info, body *ast.BlockStmt) string {
	evidence := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if evidence != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			evidence = "sends on a channel"
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				evidence = "receives from a channel"
			}
		case *ast.SelectStmt:
			evidence = "selects on a channel"
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					evidence = "ranges over a channel"
				}
			}
		case *ast.CallExpr:
			if fn := calleeObject(info, x); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if named := recvNamed(sig.Recv().Type()); named != nil {
						if isPkgType(named, "sync", "WaitGroup") &&
							(fn.Name() == "Done" || fn.Name() == "Add" || fn.Name() == "Wait") {
							evidence = "joins a WaitGroup"
						}
					}
				}
			}
		case *ast.Ident:
			if obj, ok := info.Uses[x].(*types.Var); ok && isContextValue(obj.Type()) {
				evidence = "observes a context"
			}
		}
		return evidence == ""
	})
	return evidence
}

// isLifecycleValue reports whether the expression's type is lifecycle
// material when handed to a spawned function: a context, a channel, or
// a *sync.WaitGroup.
func isLifecycleValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if isContextValue(t) {
		return true
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok && isPkgType(named, "sync", "WaitGroup") {
			return true
		}
	}
	return false
}

// isContextValue reports whether t is context.Context (by type, not by
// type expression — cf. isContextType, which classifies syntax).
func isContextValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && isPkgType(named, "context", "Context")
}

func recvNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isPkgType(named *types.Named, pkgPath, name string) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
