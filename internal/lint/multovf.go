package lint

import (
	"go/ast"
	"go/token"
)

// Multovf flags raw `+`/`*` arithmetic (and `+=`/`*=`) on count-typed
// int64 values inside the model-evaluation packages. PR 4's silent
// multiplicity overflow shipped exactly this way: at dgemm sweep sizes
// (n^3 flops) unchecked accumulation wrapped negative and the garbage
// landed in every cache built on top. All count accumulation must go
// through the overflow-checked helpers — addChecked, mulChecked,
// accumInto, Metrics.Add — which return model.ErrOverflow instead of
// wrapping.
var Multovf = &Analyzer{
	Name: "multovf",
	Doc: "raw +/* arithmetic on count-typed int64 values in internal/model and " +
		"internal/metrics; route accumulation through addChecked/mulChecked/accumInto " +
		"(PR 4's silent multiplicity overflow)",
	Run: runMultovf,
}

// multovfScope is the package set whose int64 counts are load-bearing.
var multovfScope = map[string]bool{
	"mira/internal/model":   true,
	"mira/internal/metrics": true,
}

// multovfHelpers are the sanctioned overflow-checked primitives; the raw
// arithmetic *inside* them is the one place it belongs.
var multovfHelpers = map[string]bool{
	"addChecked": true,
	"mulChecked": true,
	"accumInto":  true,
	"roundMult":  true,
}

// countFields are the struct fields and indexed collections that hold
// instruction counts; an operand mentioning one marks the expression as
// count arithmetic.
var countFields = map[string]bool{
	"Flops":      true,
	"Instrs":     true,
	"ByCategory": true,
	"Counts":     true,
	"Ops":        true,
}

func runMultovf(pass *Pass) error {
	if !multovfScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || multovfHelpers[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if e.Op != token.ADD && e.Op != token.MUL {
						return true
					}
					t, ok := pass.TypesInfo.Types[e]
					if !ok || !isInt64(t.Type) {
						return true
					}
					if isCountExpr(e.X) || isCountExpr(e.Y) {
						pass.Reportf(e.OpPos,
							"raw %q on count-typed int64 (%s); use addChecked/mulChecked/accumInto so overflow returns ErrOverflow instead of wrapping",
							e.Op.String(), countOperand(e.X, e.Y))
					}
				case *ast.AssignStmt:
					if e.Tok != token.ADD_ASSIGN && e.Tok != token.MUL_ASSIGN {
						return true
					}
					for _, lhs := range e.Lhs {
						t, ok := pass.TypesInfo.Types[lhs]
						if !ok || !isInt64(t.Type) {
							continue
						}
						if isCountExpr(lhs) || (len(e.Rhs) == 1 && isCountExpr(e.Rhs[0])) {
							pass.Reportf(e.TokPos,
								"raw %q on count-typed int64 (%s); use addChecked/mulChecked/accumInto so overflow returns ErrOverflow instead of wrapping",
								e.Tok.String(), exprText(lhs))
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// isCountExpr reports whether e mentions a count field: Metrics.Flops,
// site.Instrs, m.ByCategory[c], sc.Counts[cat], ops[op] over a .Ops map,
// unwrapping parens, unary ops, and nested arithmetic.
func isCountExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return countFields[x.Sel.Name]
	case *ast.IndexExpr:
		return isCountExpr(x.X)
	case *ast.UnaryExpr:
		return isCountExpr(x.X)
	case *ast.BinaryExpr:
		return isCountExpr(x.X) || isCountExpr(x.Y)
	case *ast.StarExpr:
		return isCountExpr(x.X)
	}
	return false
}

// countOperand names whichever operand is the count expression, for the
// diagnostic.
func countOperand(x, y ast.Expr) string {
	if isCountExpr(x) {
		return exprText(x)
	}
	return exprText(y)
}

// exprText renders a short description of an expression for diagnostics.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprText(x.X)
	case *ast.BinaryExpr:
		return exprText(x.X) + x.Op.String() + exprText(x.Y)
	}
	return "expression"
}
