package lint

// cfg.go builds the per-function control-flow graphs the dataflow
// analyzers (lockdisc, errdrop, cachekey) run over. It is an SSA-free
// CFG in the spirit of x/tools/go/cfg, built purely on go/ast: each
// function body becomes basic blocks of *atomic* nodes — simple
// statements plus the scalar parts of compound statements (an if's init
// and cond, a for's init/cond/post, a switch's tag) — connected by
// control-flow edges. Bodies of nested compound statements live in
// their own blocks, so a transfer function sees every node exactly once
// and never has to recurse into sub-statements.
//
// Deliberate limits (documented in README "Static analysis"):
//
//   - panic(), os.Exit, log.Fatal*, and runtime.Goexit terminate their
//     block with no successor: such paths never reach Exit, so exit
//     invariants (locks released, errors checked) are not enforced on
//     paths that abandon the function.
//   - goto is supported for forward and backward jumps to labels in the
//     same function; computed or pathological label flow is not.
//   - Function literals are NOT inlined: a FuncLit appears as part of
//     the atomic node containing it, and analyzers that care analyze
//     its body as a separate function.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of atomic
// nodes with a single entry and a set of successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is one function body's control-flow graph. Entry starts the body;
// Exit is the artificial block every return path (and the fall-off-end
// path) flows into. Blocks holds every block, Entry and Exit included.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the CFG for one function body. info may be nil;
// it is only consulted to recognize terminating calls (os.Exit and
// friends) by their package of origin.
func BuildCFG(body *ast.BlockStmt, info infoLike) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, info: info, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	b.patchGotos()
	return b.cfg
}

// infoLike is the slice of *types.Info the builder needs; taking an
// interface keeps BuildCFG testable without a full type-check.
type infoLike interface {
	isTerminalCall(call *ast.CallExpr) bool
}

// branchTarget is one enclosing breakable/continuable construct.
type branchTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg     *CFG
	info    infoLike
	cur     *Block
	targets []branchTarget
	labels  map[string]*Block
	gotos   []pendingGoto

	// pendingLabel names the label attached to the next loop/switch
	// statement, so labeled break/continue resolve to it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// startBlock makes blk current, linking it from the previous current
// block when that block is still open (used for straight-line splits).
func (b *cfgBuilder) jumpTo(blk *Block) {
	b.edge(b.cur, blk)
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// A label both receives gotos and names the following
		// loop/switch for labeled break/continue.
		target := b.newBlock()
		b.jumpTo(target)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // anything after is unreachable
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.terminal(call) {
			b.cur = b.newBlock() // panic/os.Exit: path abandons the function
		}
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: atomic.
		b.add(s)
	}
}

// terminal reports whether call never returns: panic, or a terminating
// stdlib call recognized through the type info.
func (b *cfgBuilder) terminal(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.info != nil && b.info.isTerminalCall(call)
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.edge(b.cur, t.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo != nil && (label == "" || t.label == label) {
				b.edge(b.cur, t.continueTo)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case token.FALLTHROUGH:
		// Resolved by switchStmt: the clause body's open block falls
		// through to the next clause, which switchStmt wires up.
		return
	}
	b.cur = b.newBlock() // the branch ended this path
}

func (b *cfgBuilder) patchGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	after := b.newBlock()

	b.cur = b.newBlock()
	b.edge(head, b.cur)
	b.stmt(s.Body)
	b.edge(b.cur, after)

	if s.Else != nil {
		b.cur = b.newBlock()
		b.edge(head, b.cur)
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jumpTo(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		b.edge(head, after)
	}

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.targets = append(b.targets, branchTarget{label: label, breakTo: after, continueTo: post})
	b.stmt(s.Body)
	b.targets = b.targets[:len(b.targets)-1]
	b.jumpTo(post)
	if s.Post != nil {
		b.add(s.Post)
	}
	b.edge(post, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	b.jumpTo(head)
	// The RangeStmt itself is the head's atomic node: transfer functions
	// treat it as "read X, assign Key/Value" and never descend into Body.
	b.add(s)
	after := b.newBlock()
	b.edge(head, after) // the range may be empty

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.targets = append(b.targets, branchTarget{label: label, breakTo: after, continueTo: head})
	b.stmt(s.Body)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, head)
	b.cur = after
}

// switchStmt handles both expression and type switches: init and
// tag/assign are atomic in the head, each case clause gets its own
// block, and fallthrough chains clause bodies.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, breakTo: after})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if clauses[i].List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
			b.cur = b.newBlock()
		}
		b.edge(b.cur, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, breakTo: after})
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	// A select without default blocks until some case fires; either way
	// control only continues through a clause, so head has no direct
	// edge to after. A select with no cases blocks forever.
	_ = hasDefault
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}
