// Package lint is mira-vet's analysis framework and analyzer suite: six
// custom static analyses, each encoding an invariant this repository
// learned the hard way (see README "Static analysis" and the per-analyzer
// docs). The framework mirrors the golang.org/x/tools/go/analysis API
// shape — Analyzer, Pass, Reportf — but is built entirely on the standard
// library (go/ast, go/types, and export data produced by `go list
// -export`), because the tree takes no external module dependencies. An
// analyzer written against Pass ports to x/tools/go/analysis mechanically
// should the dependency ever land.
//
// Findings are suppressible at the site with a documented reason:
//
//	//lint:ignore mira/<name> <reason>
//
// placed on the flagged line or the line directly above it. A directive
// without a reason is itself a finding — suppressions must say why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one named static analysis. Run inspects a single
// type-checked package through the Pass and reports findings. Analyzers
// that declare FactTypes are interprocedural: they export facts on the
// package's objects and import facts from its dependencies.
type Analyzer struct {
	// Name is the short analyzer name; diagnostics and suppression
	// directives refer to it as "mira/<name>".
	Name string
	// Doc is the one-paragraph description `mira-vet -list` prints:
	// the invariant enforced and the historical bug that motivated it.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) error
	// FactTypes lists a zero value of each Fact type this analyzer
	// exports or imports. Declaring a type here registers it for gob
	// serialization and marks the analyzer as needing to run on
	// dependency packages (facts-only, diagnostics discarded) so its
	// facts exist before the packages that import them are analyzed.
	FactTypes []Fact
}

// A Pass connects one analyzer to one package of parsed, type-checked
// syntax. The field set intentionally matches x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *Facts
}

// ExportObjectFact attaches fact to obj for downstream packages. The
// fact type must appear in the analyzer's FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts != nil {
		p.facts.set(obj, fact)
	}
}

// ImportObjectFact copies the fact of fact's type previously exported
// on obj (by this analyzer, on this or any dependency package) into
// *fact and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts != nil && p.facts.get(obj, fact)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [mira/%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order: the six
// syntactic analyzers from the original mira-vet, then the five
// dataflow analyzers added with the cfg/dataflow/facts engine.
func All() []*Analyzer {
	return []*Analyzer{
		Multovf,
		Detorder,
		Ctxflow,
		Panicfree,
		Noglobals,
		Obsnames,
		Cachekey,
		Lockdisc,
		Timeinj,
		Goroleak,
		Errdrop,
	}
}

// ignoreRE matches a suppression directive. The reason group is what
// makes a suppression self-documenting; an empty reason is reported.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+mira/([a-z]+)\s*(.*)$`)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	file     string
	line     int
	reason   string
}

// suppressions collects every directive in the package's files.
func suppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, suppression{
					analyzer: m[1],
					file:     pos.Filename,
					line:     pos.Line,
					reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// AnalyzerStat is one analyzer's aggregate cost and yield across a run;
// mira-vet -json surfaces these as mira_vet_findings_total and
// per-analyzer wall-time.
type AnalyzerStat struct {
	Findings int
	Seconds  float64
}

// A Runner executes an analyzer suite over a sequence of packages,
// threading one fact store through all of them. Feed it packages in
// dependency order (as `go list -deps` and Load emit them) so facts
// exported by a dependency exist before its importers run.
type Runner struct {
	Analyzers []*Analyzer
	Facts     *Facts
	Stats     map[string]*AnalyzerStat

	// Now supplies timestamps for the per-analyzer wall-time stats;
	// NewRunner defaults it to time.Now.
	Now func() time.Time
}

// NewRunner builds a Runner with a fresh fact store and registers the
// analyzers' fact types for vetx serialization.
func NewRunner(analyzers []*Analyzer) *Runner {
	RegisterFactTypes(analyzers)
	r := &Runner{
		Analyzers: analyzers,
		Facts:     NewFacts(),
		Stats:     map[string]*AnalyzerStat{},
		Now:       time.Now,
	}
	for _, a := range analyzers {
		r.Stats[a.Name] = &AnalyzerStat{}
	}
	return r
}

// TotalFindings sums findings across analyzers (mira_vet_findings_total).
func (r *Runner) TotalFindings() int {
	total := 0
	//lint:ignore mira/detorder the sum is order-independent
	for _, s := range r.Stats {
		total += s.Findings
	}
	return total
}

// RunPackage runs the suite over one loaded package, applies suppression
// directives, and returns the surviving findings sorted by position.
// Directives missing a reason surface as findings themselves. For a
// FactsOnly package only fact-producing analyzers run and diagnostics
// are discarded — the package is a dependency being mined for facts,
// not a vetting target.
func (r *Runner) RunPackage(pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range r.Analyzers {
		if pkg.FactsOnly && len(a.FactTypes) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     r.Facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		start := r.Now()
		err := a.Run(pass)
		if st := r.Stats[a.Name]; st != nil {
			st.Seconds += r.Now().Sub(start).Seconds()
		}
		if err != nil {
			return nil, fmt.Errorf("mira/%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	if pkg.FactsOnly {
		return nil, nil
	}

	sups := suppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(sups, d) {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if s.reason == "" {
			kept = append(kept, Diagnostic{
				Analyzer: s.analyzer,
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  "lint:ignore directive needs a reason (//lint:ignore mira/" + s.analyzer + " <why>)",
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range kept {
		if st := r.Stats[d.Analyzer]; st != nil {
			st.Findings++
		}
	}
	return kept, nil
}

// RunPackage runs analyzers over one package with a throwaway fact
// store. Cross-package facts do not propagate; use a Runner over a
// dependency-ordered package list when they must.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewRunner(analyzers).RunPackage(pkg)
}

// suppressed reports whether a reasoned directive on the finding's line,
// or on the line directly above it, names the finding's analyzer.
func suppressed(sups []suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.analyzer != d.Analyzer || s.reason == "" || s.file != d.Pos.Filename {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by several analyzers.

// enclosingFunc returns the innermost function declaration containing
// pos, if any.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	var found *ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			found = fd
		}
	}
	return found
}

// isPkgFunc reports whether the call expression resolves to the function
// pkgPath.name (a package-level function, not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isInt64 reports whether t's underlying type is int64.
func isInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// docContains reports whether the declaration's doc comment contains the
// given marker (e.g. "Deprecated:").
func docContains(doc *ast.CommentGroup, marker string) bool {
	return doc != nil && strings.Contains(doc.Text(), marker)
}
