package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errdrop flags discarded error returns in the request-handling and
// persistence packages. The motivating sites are the serve/cluster HTTP
// handlers (an Encode or Write failure mid-response is the only signal
// the peer hung up) and the cachestore write-behind paths (a dropped
// save error silently forfeits the persistent tier). Two checks:
//
//  1. A call whose results include an error, used as a bare expression
//     statement, drops the error invisibly. Write `_ = f()` (or
//     `_, _ = f()`) to discard deliberately — the blank assignment is
//     this repo's sanctioned "best-effort, peer already gone" idiom —
//     or better, count the failure into a metric as forwardProxy does.
//
//  2. An error assigned to a variable but dead on every path to the
//     function's exit (overwritten or abandoned before any read) is a
//     dead store: the call's failure is checked never. Found by
//     backward liveness over the function's CFG.
//
// Exempt: fmt.Print/Printf/Println (stderr/stdout diagnostics), writes
// through writers documented never to fail (hash.Hash, strings.Builder,
// bytes.Buffer), and `go`/`defer` statements (the result is genuinely
// unavailable; deferred Close is conventional).
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "discarded error returns in serve/cluster handlers and store " +
		"write-behind paths — bare call statements dropping an error, and " +
		"error variables dead on every path; discard explicitly with _ = " +
		"or record the failure",
	Run: runErrdrop,
}

// errdropScope is the package set whose dropped errors hide real
// failures: request handling, persistence, and the lint tooling itself
// (self-lint keeps the analyzers honest).
var errdropScope = map[string]bool{
	"mira/internal/cluster":    true,
	"mira/internal/cachestore": true,
	"mira/internal/engine":     true,
	"mira/internal/lint":       true,
	"mira/cmd/mira-serve":      true,
	"mira/cmd/mira-vet":        true,
}

func runErrdrop(pass *Pass) error {
	if !errdropScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			errdropExprStmts(pass, fd.Body)
			errdropDeadStores(pass, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					errdropDeadStores(pass, fl.Type, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// errdropExprStmts reports bare expression-statement calls that drop an
// error result (check 1). It walks the whole body including function
// literals; go/defer statements are skipped by construction because
// their calls are not ExprStmt nodes.
func errdropExprStmts(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callReturnsError(pass.TypesInfo, call) || errdropExempt(pass.TypesInfo, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"result of %s includes an error that is dropped; handle it, count it into a metric, or discard explicitly with _ =",
			callName(call))
		return true
	})
}

// callReturnsError reports whether any of the call's results is the
// built-in error type.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errdropExempt reports whether the dropped error is sanctioned: fmt
// printing to stdout/stderr, or writes through never-failing writers.
func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 &&
				(neverFailingWriter(info, call.Args[0]) || isTerminalWriter(info, call.Args[0]))
		}
	}
	// Methods on never-failing writers: hash.Hash.Write,
	// strings.Builder.WriteString, bytes.Buffer.Write, ...
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if neverFailingWriter(info, sel.X) {
			return true
		}
	}
	// io.WriteString into a never-failing writer.
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" && fn.Name() == "WriteString" {
		return len(call.Args) > 0 && neverFailingWriter(info, call.Args[0])
	}
	return false
}

// isTerminalWriter reports whether e is os.Stderr or os.Stdout:
// diagnostics to the controlling terminal are best-effort by
// convention, same as fmt.Print.
func isTerminalWriter(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stderr" || obj.Name() == "Stdout")
}

// neverFailingWriter reports whether e's type is documented never to
// return a write error: hash.Hash, *strings.Builder, *bytes.Buffer.
func neverFailingWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch types.TypeString(tv.Type, nil) {
	case "hash.Hash", "hash.Hash32", "hash.Hash64",
		"*strings.Builder", "strings.Builder",
		"*bytes.Buffer", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders the called function for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprText(fun.X) + "." + fun.Sel.Name
	}
	return "the call"
}

// errdropDeadStores runs backward liveness over one function body and
// reports error variables assigned from a call but dead at the
// assignment (check 2). Function literals nested inside body are NOT
// descended into for assignments — the caller analyzes each literal as
// its own function — but identifiers a literal captures do count as
// uses, keeping closures conservative.
func errdropDeadStores(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	cfg := BuildCFG(body, TermInfo(pass.TypesInfo))

	// Named results are read by a bare return, so they are live at exit.
	boundary := liveSet{}
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					boundary[obj] = true
				}
			}
		}
	}

	flow := FlowFuncs[liveSet]{
		Clone: func(s liveSet) liveSet {
			c := make(liveSet, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(acc, in liveSet) liveSet {
			for k := range in {
				acc[k] = true
			}
			return acc
		},
		Equal: func(a, b liveSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, s liveSet) { liveTransfer(pass.TypesInfo, n, s, nil) },
	}
	out := Backward(cfg, boundary, flow)

	// Replay each block backward from its OUT state, reporting dead
	// error stores at the precise node. Only variables declared inside
	// this function qualify: an assignment to a captured outer variable
	// (safely's recover closure writing the enclosing named result)
	// escapes the literal and is not dead.
	lo, hi := ftype.Pos(), body.End()
	for _, blk := range cfg.Blocks {
		state, ok := out[blk]
		if !ok {
			continue
		}
		s := flow.Clone(state)
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			liveTransfer(pass.TypesInfo, blk.Nodes[i], s, func(obj types.Object, pos ast.Node) {
				if obj.Pos() < lo || obj.Pos() > hi {
					return
				}
				pass.Reportf(pos.Pos(),
					"error assigned to %s is never checked on any path (dead store); handle it or discard explicitly with _ =",
					obj.Name())
			})
		}
	}
}

// liveSet is the set of variables live at a program point.
type liveSet map[types.Object]bool

// liveTransfer applies one atomic CFG node to the live set, backward.
// When report is non-nil, an error-typed variable assigned from a call
// while dead triggers it.
func liveTransfer(info *types.Info, n ast.Node, s liveSet, report func(types.Object, ast.Node)) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || !isPlainAssign(as) {
		// Everything mentioned is a use; nothing is killed.
		genUses(info, n, s, nil)
		return
	}

	rhsHasCall := false
	for _, r := range as.Rhs {
		if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			rhsHasCall = true
		}
	}
	killed := map[*ast.Ident]bool{}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			// Assignment through a selector/index uses its base.
			genUses(info, lhs, s, nil)
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if report != nil && rhsHasCall && isErrorType(obj.Type()) && !s[obj] {
			report(obj, as)
		}
		killed[id] = true
		delete(s, obj)
	}
	for _, r := range as.Rhs {
		genUses(info, r, s, killed)
	}
}

// isPlainAssign reports whether as is = or := (op-assigns like += both
// read and write their target, so they are treated as pure uses).
func isPlainAssign(as *ast.AssignStmt) bool {
	return as.Tok == token.ASSIGN || as.Tok == token.DEFINE
}

// genUses adds every variable mentioned under n to the live set,
// including mentions inside nested function literals (closure captures
// keep outer variables live). Identifiers in skip are the assignment's
// own targets and are not uses.
func genUses(info *types.Info, n ast.Node, s liveSet, skip map[*ast.Ident]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			s[obj] = true
		}
		return true
	})
}
