// Package daemonobs is an obsnames fixture: it registers metrics
// against the real internal/obs Registry, so the analyzer's
// type-directed method resolution is exercised, not name matching.
package daemonobs

import "mira/internal/obs"

func register(reg *obs.Registry, dynamic string) {
	// Legal family names.
	reg.Counter("mira_eval_requests", "evaluations served")
	reg.Gauge("mira_cache_entries", "resident cache entries")
	reg.Summary("mira_analyze_seconds", "analysis latency")

	// The writer appends _total to counters itself; registering it
	// doubles the suffix in the exposition.
	reg.Counter("mira_eval_requests_total", "evaluations served") // want "reserved exposition suffix \"_total\""

	// Summaries expose _count/_sum samples.
	reg.Summary("mira_analyze_seconds_sum", "analysis latency") // want "reserved exposition suffix \"_sum\""

	// Convention is mira_ snake_case.
	reg.Gauge("miraResidents", "resident entries") // want "does not match the mira_[a-z0-9_]+ convention"

	// Latency summaries observe base-unit seconds.
	reg.Summary("mira_http_latency", "request latency") // want "must end in _seconds"

	// Dynamic names cannot be vetted statically.
	reg.Counter(dynamic, "mystery series") // want "must be a string literal"
}

// notObs proves resolution is type-directed: a same-named method on an
// unrelated type is not a registration site.
type notObs struct{}

func (notObs) Counter(name, help string) {}

func decoy(n notObs) {
	n.Counter("definitely not a metric name", "")
}
