// Package engine is the cachekey fixture's consumer half, type-checked
// as mira/internal/engine: the PR 9 name-vs-content-key poisoning,
// written the way it originally shipped, next to the versioned shapes
// that are legal.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mira/internal/core"
)

// Description mirrors the architecture description: content-addressed
// (it has ContentKey), with a display Name that must never become key
// material.
type Description struct {
	Name      string
	Bandwidth float64
}

// ContentKey is the content address: a one-shot digest of the
// parameters that matter. (Sum256 here is deliberately not a "key
// builder" — the content key IS the address, no format version
// applies.)
func (d *Description) ContentKey() string {
	raw := sha256.Sum256([]byte(fmt.Sprintf("bw=%v", d.Bandwidth)))
	return hex.EncodeToString(raw[:])
}

// badKey is the version bug: a persistent key with no format version,
// so stale artifacts survive format bumps.
func badKey(src string) string { // want "badKey builds a cache key"
	h := sha256.New()
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// goodKey mixes the root version in directly: legal.
func goodKey(src string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|", core.CacheFormatVersion)
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// epochKey mixes in the derived constant: its versioned-ness arrives
// as a VersionConst fact exported while analyzing core.
func epochKey(src string) string {
	h := sha256.New()
	fmt.Fprintf(h, "e%d|", core.KeyEpoch)
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// poisonedKey is the PR 9 bug: the version is present, but the mutable
// display name is key material — two archs sharing a name collide, and
// a renamed arch warms nothing.
func poisonedKey(d *Description, src string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|", core.CacheFormatVersion)
	h.Write([]byte(d.Name)) // want "d.Name used inside a cache-key builder" "arch name flows into hash key material"
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// laundered passes the name through a local first: the taint tracking
// follows the assignment into the hash write.
func laundered(d *Description) string {
	label := d.Name // want "d.Name used inside a cache-key builder"
	h := sha256.New()
	fmt.Fprintf(h, "v%d|", core.CacheFormatVersion)
	h.Write([]byte(label)) // want "arch name flows into hash key material"
	return hex.EncodeToString(h.Sum(nil))
}

// contentKeyed uses the content address: legal.
func contentKeyed(d *Description, src string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|", core.CacheFormatVersion)
	h.Write([]byte(d.ContentKey()))
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// legacyKey keeps the pre-versioning layout for migration reads.
//
//lint:ignore mira/cachekey legacy v2 read path, removed with the migration
func legacyKey(src string) string {
	h := sha256.New()
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}
