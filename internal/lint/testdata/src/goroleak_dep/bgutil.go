// Package bgutil is the dependency half of the goroleak fixture: the
// LifecycleBound facts exported while analyzing this package must
// survive the package boundary for spawns in the main fixture to be
// judged correctly.
package bgutil

var done = make(chan struct{})

// DrainLoop blocks on the done channel: lifecycle-bound, so the
// analyzer exports a LifecycleBound fact on it.
func DrainLoop() {
	<-done
}

// Fire runs once with no tie to any lifecycle: no fact is exported,
// and spawning it is a finding at the go statement.
func Fire() {
	println("fired")
}
