// Package report is a detorder fixture: the PR 4/5 nondeterministic
// table-order bugs, plus the sanctioned collect-sort-iterate idiom.
package report

import (
	"fmt"
	"sort"
)

// tableBad reproduces the PR 4/5 bug: rows accumulate in map iteration
// order and ship straight to the user, differing run to run.
func tableBad(counts map[string]int) []string {
	var rows []string
	for k, v := range counts { // want "appends to rows"
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	return rows
}

// printBad serializes iteration order directly.
func printBad(counts map[string]int) {
	for k, v := range counts { // want "writes output via Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// tableGood is the sanctioned idiom: collect keys, sort, iterate. The
// key-collection loop is itself a range-over-map append, legal because
// the sort after it dominates the output.
func tableGood(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]string, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return rows
}

// sortAfter accumulates in map order but sorts the rows before
// returning them: also legal.
func sortAfter(counts map[string]int) []string {
	var rows []string
	for k, v := range counts {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(rows)
	return rows
}

// reduce consumes the map commutatively — no order-sensitive sink.
func reduce(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}
