// Package engine is a ctxflow fixture type-checked as
// mira/internal/engine: the PR 3 dropped-context bug class.
package engine

import "context"

// Analyze is the bug shape: minting Background severs the caller's
// cancellation, so a dropped client keeps burning workers.
func Analyze(name string) error {
	ctx := context.Background() // want "context.Background() inside a request path"
	return analyzeCtx(ctx, name)
}

// later reproduces the TODO variant; unexported functions are in scope
// too.
func later(name string) error {
	return analyzeCtx(context.TODO(), name) // want "context.TODO() inside a request path"
}

// AnalyzeCtx threads the caller's context: the sanctioned shape.
func AnalyzeCtx(ctx context.Context, name string) error {
	return analyzeCtx(ctx, name)
}

// Evaluate takes the context in the wrong slot.
func Evaluate(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	return analyzeCtx(ctx, name)
}

// Deprecated: use AnalyzeCtx so callers can cancel; this ctx-free shim
// is the sanctioned escape for callers with no lifecycle.
func AnalyzeCompat(name string) error {
	return analyzeCtx(context.Background(), name)
}

func analyzeCtx(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}
