// Package engine is a goroleak fixture type-checked as
// mira/internal/engine: every `go` statement must be tied to a ctx, a
// WaitGroup, or a channel, including spawns of functions defined in
// dependency packages (judged through cross-package facts).
package engine

import (
	"context"
	"sync"

	"mira/internal/bgutil"
)

// fireAndForget is the leak: nothing can join or stop the goroutine,
// so it outlives its owner and hangs shutdown.
func fireAndForget() {
	go func() { // want "goroutine is not tied to a ctx, WaitGroup, or channel"
		println("orphan")
	}()
}

// crossPackageLeak spawns a dependency function with no lifecycle
// evidence: the missing LifecycleBound fact is the finding.
func crossPackageLeak() {
	go bgutil.Fire() // want "goroutine runs Fire"
}

// crossPackageBound spawns a dependency function whose exported fact
// records channel evidence: legal.
func crossPackageBound() {
	go bgutil.DrainLoop()
}

// worker joins a WaitGroup: legal.
func worker(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("work")
	}()
}

// watcher hands the goroutine a context: lifecycle material passed as
// an argument sanctions any spawn form.
func watcher(ctx context.Context) {
	go func(c context.Context) {
		<-c.Done()
	}(ctx)
}

// daemon documents a sanctioned process-lifetime goroutine.
func daemon() {
	//lint:ignore mira/goroleak exits with the process by design
	go func() { println("daemon") }()
}
