// Command fixture type-checks as mira/cmd/mira-serve: func main owns
// the process root context and is exempt; every other function in the
// daemon is request-path.
package main

import "context"

func main() {
	run(context.Background())
}

// handle is a request-path helper: not exempt.
func handle() {
	run(context.Background()) // want "context.Background() inside a request path"
}

func run(ctx context.Context) {
	<-ctx.Done()
}
