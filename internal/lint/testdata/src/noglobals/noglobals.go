// Package registry is a noglobals fixture: the PR 5 package-global
// service state next to the read-only tables and sentinels that must
// stay legal.
package registry

import (
	"errors"
	"sync"
)

// ErrMissing is a sentinel: never written, legal.
var ErrMissing = errors.New("registry: missing")

// categoryNames is a read-only lookup table: never written, legal.
var categoryNames = map[int]string{0: "mem", 1: "fp", 2: "int", 3: "ctl"}

// defaultEngine is the PR 5 bug shape: package-global mutable service
// state, written by a setter, making concurrent use racy and tests
// order-dependent.
var defaultEngine *config // want "defaultEngine is mutable global state (assigned)"

// registerMu holds sync state, which exists only to be mutated.
var registerMu sync.Mutex // want "registerMu is mutable global state (holds sync.Mutex)"

// hits is bumped in place.
var hits int // want "hits is mutable global state (mutated with ++)"

// seen is written through an index expression.
var seen = map[string]bool{} // want "seen is mutable global state (assigned)"

// tuning escapes by address to writers the analysis cannot see.
var tuning config // want "tuning is mutable global state (address-taken)"

type config struct {
	workers int
}

func setDefault(c *config) { defaultEngine = c }

func record(k string) {
	hits++
	seen[k] = true
}

func tuningPtr() *config { return &tuning }

func lookup(cat int) (string, error) {
	if s, ok := categoryNames[cat]; ok {
		return s, nil
	}
	return "", ErrMissing
}
