// Package suppress holds a directive without a reason: it suppresses
// nothing and is itself a finding. The expectations for this fixture
// live in lint_test.go (a // want comment cannot share the directive's
// line — the directive grammar would read it as the reason).
package suppress

//lint:ignore mira/noglobals
var counter int

func bump() { counter++ }
