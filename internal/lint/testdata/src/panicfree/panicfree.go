// Package engine is a panicfree fixture type-checked as
// mira/internal/engine: the PR 2 daemon-killing panic, the Must*
// variant of the same bug, and the sanctioned recover boundary.
package engine

import (
	"errors"
	"regexp"
)

// evalStep is the PR 2 bug shape: hostile input (a zero divisor)
// panics deep in evaluation and kills the resident daemon.
func evalStep(div int) int {
	if div == 0 {
		panic("division by zero") // want "panic inside an engine/daemon package"
	}
	return 100 / div
}

// pattern is the same bug with a nicer name: Must* helpers panic on
// failure.
func pattern(src string) *regexp.Regexp {
	return regexp.MustCompile(src) // want "MustCompile panics on failure"
}

// evalStepSafe returns the error instead: the sanctioned shape.
func evalStepSafe(div int) (int, error) {
	if div == 0 {
		return 0, errors.New("division by zero")
	}
	return 100 / div, nil
}

// instrument is the sanctioned last-resort recover boundary; its
// re-panic is deliberate and suppressed with a documented reason.
func instrument(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			//lint:ignore mira/panicfree sanctioned recover boundary re-panics non-runtime values
			panic(r)
		}
	}()
	f()
	return nil
}
