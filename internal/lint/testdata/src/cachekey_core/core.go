// Package core is the dependency half of the cachekey fixture,
// impersonating mira/internal/core: the root CacheFormatVersion plus a
// derived constant whose versioned-ness travels to other packages as a
// VersionConst fact.
package core

// CacheFormatVersion is the cache format root: every persistent cache
// key must incorporate it so format bumps invalidate old artifacts.
const CacheFormatVersion = 3

// KeyEpoch derives from the root; mentioning it in a key builder is
// version evidence, carried across the package boundary by the fact.
const KeyEpoch = CacheFormatVersion * 100
