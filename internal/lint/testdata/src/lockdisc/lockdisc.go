// Package engine is a lockdisc fixture type-checked as
// mira/internal/engine: the unlock-on-error-path bug class the
// analyzer exists for, plus the //lint:guarded-by field protocol.
package engine

import (
	"errors"
	"sync"
)

var errMissing = errors.New("missing")

// table is a guarded map: every access to m must hold mu.
type table struct {
	mu sync.Mutex
	m  map[string]int //lint:guarded-by mu
}

// lookupLeaky is the original bug shape: the early error return leaves
// with the mutex still held, and the next caller deadlocks.
func (t *table) lookupLeaky(k string) (int, error) {
	t.mu.Lock() // want "lock t.mu acquired here is not released on some path to return"
	v, ok := t.m[k]
	if !ok {
		return 0, errMissing
	}
	t.mu.Unlock()
	return v, nil
}

// lookupNever forgets the unlock entirely.
func (t *table) lookupNever(k string) int {
	t.mu.Lock() // want "lock t.mu acquired here is never released before return"
	return t.m[k]
}

// lookup defers the unlock: released on every path, legal.
func (t *table) lookup(k string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.m[k]
	if !ok {
		return 0, errMissing
	}
	return v, nil
}

// size pairs the lock and unlock in a straight line: legal.
func (t *table) size() int {
	t.mu.Lock()
	n := len(t.m)
	t.mu.Unlock()
	return n
}

// peek reads the guarded map without holding mu.
func (t *table) peek(k string) int {
	return t.m[k] // want "t.m is guarded by mu"
}

// sizeLocked is exempt by convention: the Locked suffix promises the
// caller already holds mu.
func (t *table) sizeLocked() int { return len(t.m) }

// raceyLen documents a sanctioned racy read.
func (t *table) raceyLen() int {
	//lint:ignore mira/lockdisc stats-only read; a stale length is fine
	return len(t.m)
}
