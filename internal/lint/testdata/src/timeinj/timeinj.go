// Package cluster is a timeinj fixture type-checked as
// mira/internal/cluster: the PR 8 wall-clock circuit breaker, written
// the way it originally flaked — Allow read time.Now directly, so the
// cooldown test had to really sleep, and stalled runners turned it
// into a flake.
package cluster

import "time"

// breaker mirrors the circuit breaker's time-dependent state.
type breaker struct {
	openedAt time.Time
	cooldown time.Duration
	now      func() time.Time
}

// allowWallClock is the original bug: the cooldown decision reads the
// wall clock, so no test can control it.
func (b *breaker) allowWallClock() bool {
	return time.Now().Sub(b.openedAt) >= b.cooldown // want "direct time.Now call"
}

// opened stamps the wall clock directly.
func (b *breaker) opened() {
	b.openedAt = time.Now() // want "direct time.Now call"
}

// age measures against the wall clock through Since.
func (b *breaker) age() time.Duration {
	return time.Since(b.openedAt) // want "direct time.Since call"
}

// expire arms a real timer; deadlines must derive from the injected
// clock instead.
func (b *breaker) expire() *time.Timer {
	return time.NewTimer(b.cooldown) // want "direct time.NewTimer call"
}

// allow reads the injectable clock: legal.
func (b *breaker) allow() bool {
	return b.now().Sub(b.openedAt) >= b.cooldown
}

// newBreaker defaults the clock by value reference: referencing
// time.Now (without calling it) is exactly how injection defaults.
func newBreaker(cooldown time.Duration) *breaker {
	b := &breaker{cooldown: cooldown}
	b.now = time.Now
	return b
}

// backoff really sleeps: time.Sleep is deliberately unflagged — retry
// backoff waits for real even under a fake decision clock.
func backoff() { time.Sleep(time.Millisecond) }

// startStamp documents a measured exception.
func startStamp() time.Time {
	//lint:ignore mira/timeinj process start stamp, never compared against the injected clock
	return time.Now()
}
