// Package suppress exercises the suppression directive protocol: a
// reasoned //lint:ignore on the flagged line or the line directly above
// it silences the finding. This fixture expects zero findings — if the
// directive stops working, the noglobals finding on memo surfaces and
// the test fails.
package suppress

// memo is sanctioned shared state: the reasoned ignore suppresses it.
//
//lint:ignore mira/noglobals append-only memo, growth serialized by callers
var memo []string

func push(s string) { memo = append(memo, s) }
