// Package cachestore is an errdrop fixture type-checked as
// mira/internal/cachestore: the dropped write-path error bug class —
// a store that swallows write errors serves stale entries forever.
package cachestore

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

// spill is the original bug shape: both cleanup errors on the write
// failure path vanish silently.
func spill(dir string, raw []byte) error {
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()           // want "result of f.Close includes an error that is dropped"
		os.Remove(f.Name()) // want "result of os.Remove includes an error that is dropped"
		return err
	}
	return f.Close()
}

// spillClean discards explicitly: the underscore is the reviewable
// record that dropping is deliberate.
func spillClean(dir string, raw []byte) error {
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return err
	}
	return f.Close()
}

// flush is the dead-store variant: the first error is overwritten
// before anyone reads it, so a failed write looks like success.
func flush(dir string, raw []byte) error {
	err := writePart(dir, raw) // want "error assigned to err is never checked on any path"
	err = syncDir(dir)
	return err
}

func writePart(dir string, raw []byte) error {
	return os.WriteFile(dir+"/part", raw, 0o644)
}

func syncDir(dir string) error {
	_, err := os.Stat(dir)
	return err
}

// digest writes into a hash: hash.Hash writes never fail and are
// exempt.
func digest(parts []string) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// banner prints diagnostics (fmt.Print* is exempt) and writes into a
// strings.Builder (never fails, exempt).
func banner(b *strings.Builder, msg string) string {
	fmt.Println("cachestore:", msg)
	b.WriteString(msg)
	return b.String()
}

// bestEffortClean documents a sanctioned drop.
func bestEffortClean(path string) {
	//lint:ignore mira/errdrop stray temp files are collected by the next sweep
	os.Remove(path)
}
