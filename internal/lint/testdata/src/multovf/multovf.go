// Package model is a multovf fixture type-checked as
// mira/internal/model: the PR 4 silent multiplicity overflow, written
// exactly the way it originally shipped.
package model

// Metrics mirrors the real count container.
type Metrics struct {
	ByCategory [4]int64
	Flops      int64
	Instrs     int64
}

// site mirrors a per-site count record.
type site struct {
	Counts [4]int64
	Flops  int64
	Instrs int64
	mult   int64
}

// addChecked is a sanctioned helper: the raw arithmetic inside it is the
// one place it belongs.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (s >= a) == (b >= 0) {
		return s, true
	}
	return 0, false
}

// accumulateBad reproduces the PR 4 bug: raw accumulation of
// multiplicity-scaled counts wraps negative at dgemm sweep sizes.
func accumulateBad(total *Metrics, s site) {
	total.Flops = total.Flops + s.Flops*s.mult // want "raw \"+\"" "raw \"*\""
	total.Instrs += s.Instrs                   // want "raw \"+=\""
	for c := range s.Counts {
		total.ByCategory[c] += s.Counts[c] * s.mult // want "raw \"+=\"" "raw \"*\""
	}
}

// scaleMult is legal: mult is not a count field.
func scaleMult(s *site) int64 {
	return s.mult * 2
}

// accumulateGood routes accumulation through the checked helper.
func accumulateGood(total *Metrics, s site) bool {
	f, ok := addChecked(total.Flops, s.Flops)
	if !ok {
		return false
	}
	total.Flops = f
	return true
}
