package lint

// facts.go is the cross-package side of the dataflow engine: an
// analyzer running on package P can attach a Fact to one of P's
// exported objects, and an analyzer running on a package that imports P
// can read it back. In standalone mode (make lint, linttest) facts flow
// through an in-memory store shared across the dependency-ordered
// package walk; under `go vet -vettool` they ride the unitchecker
// protocol — gob-encoded into the .vetx file mira-vet writes for each
// unit and read back from the PackageVetx files of the unit's imports.
// The design mirrors x/tools/go/analysis object facts, minus package
// facts (nothing here needs them).

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is an analyzer-defined datum attached to a types.Object and
// visible to downstream packages. Implementations must be gob-encodable
// and should be declared with pointer receivers so the concrete type
// round-trips through the store.
type Fact interface {
	// AFact is a marker method: it makes fact types self-describing and
	// keeps arbitrary values out of the store.
	AFact()
}

// factKey identifies one fact: the defining package, a stable name for
// the object within it, and the fact's concrete type.
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// Facts is the fact store for one analysis run. It is not safe for
// concurrent use; the runners call it from a single goroutine.
type Facts struct {
	m map[factKey]Fact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: map[factKey]Fact{}}
}

// objFactKey names obj stably across export/import: methods are keyed
// "Recv.Name" so (*PeerStore).replicateLoop and a package function
// replicateLoop cannot collide. Returns "" for objects that cannot
// carry facts (nil, blank, or package-less).
func objFactKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "_" {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + fn.Name()
			}
			return "?." + fn.Name()
		}
	}
	return obj.Name()
}

// set stores fact for obj, replacing any prior fact of the same type.
func (fs *Facts) set(obj types.Object, fact Fact) {
	key := objFactKey(obj)
	if key == "" {
		return
	}
	fs.m[factKey{pkg: obj.Pkg().Path(), obj: key, typ: reflect.TypeOf(fact)}] = fact
}

// get copies the stored fact for obj into the value fact points to and
// reports whether one was found. fact must be a non-nil pointer of the
// same concrete type the producer exported.
func (fs *Facts) get(obj types.Object, fact Fact) bool {
	key := objFactKey(obj)
	if key == "" {
		return false
	}
	stored, ok := fs.m[factKey{pkg: obj.Pkg().Path(), obj: key, typ: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact)
	sv := reflect.ValueOf(stored)
	if dv.Kind() != reflect.Pointer || dv.IsNil() || sv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// wireFact is the gob wire form of one stored fact. Fact is an
// interface field, so every concrete fact type must be registered with
// gob before Encode/Decode — RegisterFactTypes does that from the
// analyzers' FactTypes declarations.
type wireFact struct {
	Pkg  string
	Obj  string
	Fact Fact
}

// RegisterFactTypes registers every fact type the given analyzers
// declare with gob, so fact stores round-trip through vetx files.
// Idempotent: registering the same type twice is a no-op.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes the whole store. The record order is made
// deterministic so vetx files are byte-stable for identical inputs.
func (fs *Facts) Encode() ([]byte, error) {
	records := make([]wireFact, 0, len(fs.m))
	for k, f := range fs.m {
		records = append(records, wireFact{Pkg: k.pkg, Obj: k.obj, Fact: f})
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges an encoded store (one import's vetx payload) into fs.
// Payloads written by tools that predate the fact protocol (or by other
// vet tools) fail gob decoding; the caller treats that as "no facts".
func (fs *Facts) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var records []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, r := range records {
		if r.Fact == nil {
			continue
		}
		fs.m[factKey{pkg: r.Pkg, obj: r.Obj, typ: reflect.TypeOf(r.Fact)}] = r.Fact
	}
	return nil
}

// Len reports the number of stored facts (used by tests and metrics).
func (fs *Facts) Len() int { return len(fs.m) }
