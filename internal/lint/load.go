package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path      string // import path ("mira/internal/model")
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// FactsOnly marks an in-module dependency loaded so fact-producing
	// analyzers can mine it; it is not itself a vetting target and its
	// diagnostics are discarded.
	FactsOnly bool
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -json -deps <patterns>` in dir and
// decodes the package stream. -export materializes export data for every
// dependency in the build cache, which is what lets the loader type-check
// each target package in isolation: imports resolve through compiled
// export data (the unitchecker architecture) instead of re-type-checking
// the world from source.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup over `go list -export` output.
func exportLookup(pkgs []listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists the patterns in the module rooted at dir and returns the
// matched packages parsed and type-checked, in dependency order. Test
// files are not loaded: GoFiles excludes them, so the analyzers vet the
// shipped tree, not its tests.
//
// In-module dependencies of the targets that the patterns did not match
// are returned too, marked FactsOnly: interprocedural analyzers need
// their facts (is this dependency's function lifecycle-bound? does it
// incorporate the version const?) even when the user only asked to vet
// one package. Standard-library and out-of-module dependencies resolve
// through export data alone and are never loaded from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	module := ""
	for _, lp := range pkgs {
		if !lp.DepOnly && lp.Module != nil {
			module = lp.Module.Path
			break
		}
	}
	lookup := exportLookup(pkgs)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range pkgs {
		if lp.Standard {
			continue
		}
		factsOnly := false
		if lp.DepOnly {
			if module == "" || lp.Module == nil || lp.Module.Path != module {
				continue
			}
			factsOnly = true
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = factsOnly
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every .go file in dir as a single package and
// type-checks it under the given import path, resolving its imports
// through export data listed from moduleRoot. This is the fixture
// loader: linttest points it at testdata directories (invisible to `go
// list ./...`) while choosing the import path the analyzer's scoping
// rules see, e.g. a fixture type-checked as "mira/internal/model".
func LoadDir(moduleRoot, dir, importPath string) (*Package, error) {
	pkgs, err := LoadDirs(moduleRoot, []FixturePkg{{Dir: dir, ImportPath: importPath}})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// FixturePkg names one fixture directory and the import path it is
// type-checked under.
type FixturePkg struct {
	Dir        string
	ImportPath string
}

// LoadDirs loads several fixture directories as one dependency-ordered
// package group: list a fixture before the fixtures that import it.
// Imports among the fixtures resolve to the in-memory packages —
// letting a fixture impersonate a real package ("mira/internal/core")
// and be imported by a sibling fixture, which is how cross-package fact
// propagation is tested — while all other imports resolve through
// export data listed from moduleRoot. Fixture-provided paths shadow
// real packages of the same path.
func LoadDirs(moduleRoot string, fixtures []FixturePkg) ([]*Package, error) {
	fset := token.NewFileSet()
	provided := map[string]bool{}
	for _, fx := range fixtures {
		provided[fx.ImportPath] = true
	}

	parsedFiles := make([][]*ast.File, len(fixtures))
	importSet := map[string]bool{}
	for i, fx := range fixtures {
		entries, err := os.ReadDir(fx.Dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(fx.Dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			for _, im := range f.Imports {
				if p := strings.Trim(im.Path.Value, `"`); !provided[p] {
					importSet[p] = true
				}
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no .go files in %s", fx.Dir)
		}
		parsedFiles[i] = files
	}

	var lookup func(string) (io.ReadCloser, error)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(moduleRoot, paths)
		if err != nil {
			return nil, err
		}
		lookup = exportLookup(pkgs)
	} else {
		lookup = func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	imp := &fixtureImporter{
		base: importer.ForCompiler(fset, "gc", lookup),
		pkgs: map[string]*types.Package{},
	}

	out := make([]*Package, len(fixtures))
	for i, fx := range fixtures {
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(fx.ImportPath, fset, parsedFiles[i], info)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fx.ImportPath, err)
		}
		imp.pkgs[fx.ImportPath] = tpkg
		out[i] = &Package{Path: fx.ImportPath, Fset: fset, Files: parsedFiles[i], Types: tpkg, TypesInfo: info}
	}
	return out, nil
}

// fixtureImporter resolves imports to already-checked fixture packages
// first, then to compiled export data.
type fixtureImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	return i.base.Import(path)
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
