package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path      string // import path ("mira/internal/model")
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -json -deps <patterns>` in dir and
// decodes the package stream. -export materializes export data for every
// dependency in the build cache, which is what lets the loader type-check
// each target package in isolation: imports resolve through compiled
// export data (the unitchecker architecture) instead of re-type-checking
// the world from source.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup over `go list -export` output.
func exportLookup(pkgs []listedPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists the patterns in the module rooted at dir and returns every
// matched (non-dependency) package parsed and type-checked. Test files
// are not loaded: GoFiles excludes them, so the analyzers vet the shipped
// tree, not its tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(pkgs)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every .go file in dir as a single package and
// type-checks it under the given import path, resolving its imports
// through export data listed from moduleRoot. This is the fixture
// loader: linttest points it at testdata directories (invisible to `go
// list ./...`) while choosing the import path the analyzer's scoping
// rules see, e.g. a fixture type-checked as "mira/internal/model".
func LoadDir(moduleRoot, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	var lookup func(string) (io.ReadCloser, error)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(moduleRoot, paths)
		if err != nil {
			return nil, err
		}
		lookup = exportLookup(pkgs)
	} else {
		lookup = func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
