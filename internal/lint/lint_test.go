package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"mira/internal/lint"
	"mira/internal/lint/linttest"
)

// Each fixture reproduces its analyzer's motivating historical bug
// (see the fixture doc comments) alongside negative and suppression
// cases; linttest fails both when an analyzer goes quiet and when it
// over-reports, so these tests fail if an analyzer is disabled.

func TestMultovf(t *testing.T) {
	linttest.Run(t, "multovf", "mira/internal/model", lint.Multovf)
}

func TestDetorder(t *testing.T) {
	linttest.Run(t, "detorder", "mira/internal/report", lint.Detorder)
}

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "ctxflow", "mira/internal/engine", lint.Ctxflow)
}

func TestCtxflowMainExempt(t *testing.T) {
	linttest.Run(t, "ctxflow_main", "mira/cmd/mira-serve", lint.Ctxflow)
}

func TestPanicfree(t *testing.T) {
	linttest.Run(t, "panicfree", "mira/internal/engine", lint.Panicfree)
}

func TestNoglobals(t *testing.T) {
	linttest.Run(t, "noglobals", "mira/internal/registry", lint.Noglobals)
}

func TestObsnames(t *testing.T) {
	linttest.Run(t, "obsnames", "mira/internal/daemonobs", lint.Obsnames)
}

func TestTimeinj(t *testing.T) {
	linttest.Run(t, "timeinj", "mira/internal/cluster", lint.Timeinj)
}

func TestLockdisc(t *testing.T) {
	linttest.Run(t, "lockdisc", "mira/internal/engine", lint.Lockdisc)
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, "errdrop", "mira/internal/cachestore", lint.Errdrop)
}

// TestGoroleak runs the two-package goroleak fixture: the dependency
// package is analyzed first so its LifecycleBound facts are in the
// shared fact store when the engine-impersonating package's go
// statements are judged.
func TestGoroleak(t *testing.T) {
	linttest.RunMulti(t, []linttest.Pkg{
		{Dir: "goroleak_dep", ImportPath: "mira/internal/bgutil"},
		{Dir: "goroleak", ImportPath: "mira/internal/engine"},
	}, lint.Goroleak)
}

// TestCachekey runs the two-package cachekey fixture: the core
// impersonator exports the VersionConst facts (root and derived) that
// the engine impersonator's key builders are judged against.
func TestCachekey(t *testing.T) {
	linttest.RunMulti(t, []linttest.Pkg{
		{Dir: "cachekey_core", ImportPath: "mira/internal/core"},
		{Dir: "cachekey_engine", ImportPath: "mira/internal/engine"},
	}, lint.Cachekey)
}

// TestTimeinjOutOfScope re-type-checks the timeinj fixture outside
// internal/cluster: the wall-clock reads must produce zero findings —
// time injection is the cluster's contract, not a global ban.
func TestTimeinjOutOfScope(t *testing.T) {
	root := linttest.ModuleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "timeinj")
	pkg, err := lint.LoadDir(root, dir, "mira/internal/elsewhere")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.Timeinj})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("timeinj fired outside its package scope:\n%v", diags)
	}
}

func TestSuppressionWithReason(t *testing.T) {
	// The fixture has a finding-shaped global under a reasoned ignore;
	// zero expectations means zero surviving findings.
	linttest.Run(t, "suppress", "mira/internal/suppress", lint.Noglobals)
}

// TestSuppressionWithoutReason asserts the two-finding contract of a
// bare directive: it suppresses nothing, and it is reported itself.
// (This cannot be a // want fixture: an expectation appended to the
// directive's line would parse as its reason.)
func TestSuppressionWithoutReason(t *testing.T) {
	root := linttest.ModuleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "suppress_noreason")
	pkg, err := lint.LoadDir(root, dir, "mira/internal/suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.Noglobals})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (bare directive + unsuppressed finding):\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "lint:ignore directive needs a reason") {
		t.Errorf("first finding = %s, want the bare-directive report", diags[0])
	}
	if !strings.Contains(diags[1].Message, "counter is mutable global state") {
		t.Errorf("second finding = %s, want the unsuppressed noglobals finding", diags[1])
	}
}

// TestScopedAnalyzersRespectImportPath re-type-checks the multovf
// fixture under an out-of-scope import path: the same bug-shaped code
// must produce zero findings, proving scoping is by package, not by
// code shape.
func TestScopedAnalyzersRespectImportPath(t *testing.T) {
	root := linttest.ModuleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "multovf")
	pkg, err := lint.LoadDir(root, dir, "mira/internal/elsewhere")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.Multovf})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("multovf fired outside its package scope:\n%v", diags)
	}
}

// TestAllIsComplete pins the suite roster: forgetting to register a new
// analyzer in All() would silently drop it from mira-vet.
func TestAllIsComplete(t *testing.T) {
	want := []string{"multovf", "detorder", "ctxflow", "panicfree", "noglobals", "obsnames",
		"cachekey", "lockdisc", "timeinj", "goroleak", "errdrop"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestLoadTree loads the real module and smoke-checks the loader path
// mira-vet uses: every internal package type-checks against export data.
func TestLoadTree(t *testing.T) {
	root := linttest.ModuleRoot(t)
	pkgs, err := lint.Load(root, "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "mira/internal/lint" {
		t.Fatalf("Load returned %v, want exactly mira/internal/lint", pkgs)
	}
	if pkgs[0].Types == nil || len(pkgs[0].Files) == 0 {
		t.Fatal("loaded package has no type information or files")
	}
}
