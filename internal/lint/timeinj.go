package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Timeinj flags direct wall-clock calls in internal/cluster. PR 8's
// breaker and admission tests were deterministic only because every
// time-dependent component (Breaker, RateLimiter, health registry)
// reads the clock through an injectable `now func() time.Time`; a raw
// time.Now buried in a request path reintroduces the wall-clock flake
// class those tests were built to kill.
//
// Flagged: calls to time.Now, time.Since, time.Until, time.NewTimer,
// time.NewTicker, time.After, time.Tick, and time.AfterFunc anywhere in
// mira/internal/cluster. Referencing time.Now as a *value* stays legal:
// `now = time.Now` is exactly how constructors default the injectable
// clock, and that assignment is the sanctioned pattern, not a call.
// time.Sleep is deliberately not flagged — retry backoff sleeps real
// time by design and tests shrink the durations instead.
var Timeinj = &Analyzer{
	Name: "timeinj",
	Doc: "direct time.Now/Since/NewTimer calls in internal/cluster; route them " +
		"through the component's injectable clock (the wall-clock flake class " +
		"PR 8's deterministic breaker tests eliminated)",
	Run: runTimeinj,
}

// timeinjScope is the package set whose clocks must be injectable.
var timeinjScope = map[string]bool{
	"mira/internal/cluster": true,
}

// timeinjBanned is the set of time-package functions whose direct call
// reads (or schedules against) the wall clock.
var timeinjBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
}

func runTimeinj(pass *Pass) error {
	if !timeinjScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !timeinjBanned[fn.Name()] {
				return true
			}
			hint := "read the component's injectable clock (now func() time.Time) instead"
			if strings.HasPrefix(fn.Name(), "New") || fn.Name() == "After" || fn.Name() == "Tick" || fn.Name() == "AfterFunc" {
				hint = "derive deadlines from the component's injectable clock instead"
			}
			pass.Reportf(call.Pos(),
				"direct time.%s call in internal/cluster; %s so tests stay deterministic",
				fn.Name(), hint)
			return true
		})
	}
	return nil
}
