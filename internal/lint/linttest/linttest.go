// Package linttest is mira-vet's analysistest analogue: it runs
// analyzers over fixture packages under internal/lint/testdata/src and
// diffs the findings against `// want "substring"` expectations embedded
// in the fixtures. Because fixtures live in testdata (invisible to `go
// list ./...`), each one is type-checked under an explicit import path,
// which is how fixtures exercise analyzers whose rules are scoped to
// specific packages (a multovf fixture type-checks as
// "mira/internal/model" without touching the real package).
//
// A fixture line may carry any number of expectations:
//
//	total.Flops += n // want "raw \"+=\""
//
// Every reported diagnostic must be matched by an expectation on its
// line (substring match), and every expectation must be hit — so a
// fixture fails both when the analyzer goes quiet (disabled or broken)
// and when it over-reports.
package linttest

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mira/internal/lint"
)

// wantRE captures the expectation list after a // want marker.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE captures one quoted expectation, escapes included.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// ModuleRoot locates the enclosing module's root directory.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatalf("not inside a module")
	}
	return filepath.Dir(gomod)
}

// Run loads internal/lint/testdata/src/<fixture> as a package with the
// given import path, applies the analyzers (suppression directives
// included, exactly as mira-vet would), and asserts the findings equal
// the fixture's // want expectations.
func Run(t *testing.T, fixture, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunMulti(t, []Pkg{{Dir: fixture, ImportPath: importPath}}, analyzers...)
}

// Pkg names one fixture package for RunMulti: its directory under
// internal/lint/testdata/src and the import path it impersonates.
type Pkg struct {
	Dir        string
	ImportPath string
}

// RunMulti loads several fixture packages — listed dependencies first —
// and runs the analyzers over each through one shared runner, so object
// facts exported while analyzing an early package are importable while
// analyzing a later one, exactly as unitchecker threads .vetx files
// between compilation units. Findings from every package are diffed
// against the union of // want expectations across every fixture
// directory. Fixture import paths shadow real packages: a fixture
// impersonating mira/internal/core is what later fixtures' imports of
// that path resolve to.
func RunMulti(t *testing.T, pkgs []Pkg, analyzers ...*lint.Analyzer) {
	t.Helper()
	root := ModuleRoot(t)
	fixtures := make([]lint.FixturePkg, len(pkgs))
	for i, p := range pkgs {
		fixtures[i] = lint.FixturePkg{
			Dir:        filepath.Join(root, "internal", "lint", "testdata", "src", p.Dir),
			ImportPath: p.ImportPath,
		}
	}
	loaded, err := lint.LoadDirs(root, fixtures)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	runner := lint.NewRunner(analyzers)
	var diags []lint.Diagnostic
	for i, pkg := range loaded {
		ds, err := runner.RunPackage(pkg)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgs[i].Dir, err)
		}
		diags = append(diags, ds...)
	}

	var wants []*expectation
	for _, f := range fixtures {
		wants = append(wants, collectWants(t, f.Dir)...)
	}
	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected finding %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding containing %q, got none",
				w.file, w.line, w.substr)
		}
	}
}

// collectWants scans every fixture file for // want expectations.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: malformed // want (no quoted expectations)", path, i+1)
			}
			for _, q := range quoted {
				substr, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad expectation %s: %v", path, i+1, q, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, substr: substr})
			}
		}
	}
	return wants
}

// match marks and reports the first unmatched expectation on the
// diagnostic's line whose substring occurs in the message.
func match(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}
