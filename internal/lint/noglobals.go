package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Noglobals rejects mutable package-level state under internal/. PR 5
// spent a whole satellite excising exactly this: the experiments package
// kept its engine and sweep context in package globals, which made
// concurrent use racy and tests order-dependent; the rewrite threads
// (ctx, *engine.Engine) through every call instead. State wants to live
// in a struct that is constructed, injected, and owned.
//
// "Mutable" is judged by evidence, not by type shape alone, so read-only
// lookup tables and sentinels stay legal. A package-level var is flagged
// when the package itself proves it mutable:
//
//   - it is assigned, op-assigned, or ++/--'d outside its declaration,
//   - an element or field of it is stored to (table[k] = v, g.field = v),
//   - its address is taken (&v escapes to writers the analysis can't see),
//   - or its type contains sync/sync-atomic state (Mutex, Once, atomic.*),
//     which exists only to be mutated.
//
// //go:embed values are exempt. Genuinely sanctioned state (e.g. a
// mutex-guarded memo) suppresses with //lint:ignore mira/noglobals and a
// reason arguing why the sharing is safe.
var Noglobals = &Analyzer{
	Name: "noglobals",
	Doc: "mutable package-level state under internal/ — written, address-taken, or " +
		"sync/atomic-typed globals (the package-global engine state PR 5 had to " +
		"excise); construct and inject state instead",
	Run: runNoglobals,
}

func runNoglobals(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "mira/internal/") {
		return nil
	}
	globals := map[types.Object]*ast.Ident{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || embedDirective(gd.Doc) || embedDirective(vs.Doc) {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						globals[obj] = name
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return nil
	}

	mutated := map[types.Object]string{}
	note := func(e ast.Expr, how string) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		if _, isGlobal := globals[obj]; isGlobal {
			if _, seen := mutated[obj]; !seen {
				mutated[obj] = how
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					note(lhs, "assigned")
				}
			case *ast.IncDecStmt:
				note(s.X, "mutated with "+s.Tok.String())
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					note(s.X, "address-taken")
				}
			}
			return true
		})
	}

	for obj, name := range globals {
		how, isMutated := mutated[obj]
		if !isMutated {
			if stateful, what := containsSyncState(obj.Type(), map[types.Type]bool{}); stateful {
				how, isMutated = "holds "+what, true
			}
		}
		if isMutated {
			pass.Reportf(name.Pos(),
				"package-level var %s is mutable global state (%s); construct it and inject it (PR 5 excised exactly this)",
				name.Name, how)
		}
	}
	return nil
}

// containsSyncState reports whether t transitively contains sync or
// sync/atomic state — types that exist only to be mutated in place.
func containsSyncState(t types.Type, seen map[types.Type]bool) (bool, string) {
	if seen[t] {
		return false, ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return true, p + "." + named.Obj().Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if ok, what := containsSyncState(u.Field(i).Type(), seen); ok {
				return true, what
			}
		}
	case *types.Array:
		return containsSyncState(u.Elem(), seen)
	case *types.Chan:
		return true, "a channel"
	}
	return false, ""
}

// embedDirective reports whether the doc comment carries a //go:embed
// directive (embed values are write-once at link time).
func embedDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//go:embed") {
			return true
		}
	}
	return false
}
