package lint

import (
	"go/ast"
	"go/types"
)

// Detorder flags `range` loops over maps whose bodies feed
// order-sensitive sinks — appending to a slice declared outside the
// loop, or writing output — without a dominating sort afterwards. Go
// randomizes map iteration order, so such loops produce different
// user-visible output run to run. This is the PR 4/5 bug class:
// model.CategoryTable, experiments.TableII, and dynamic.Report all
// shipped nondeterministic row orders this way. The sanctioned idiom —
// collect keys, sort, iterate — passes, because the sort call after the
// loop dominates the output.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc: "range over a map feeding an order-sensitive sink (append to outer slice, " +
		"print/write) without a later sort in the same function; map order is " +
		"randomized per run (the PR 4/5 nondeterministic-output bugs)",
	Run: runDetorder,
}

// emitNames are function/method names that move bytes toward the user.
var emitNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// sortNames are the sort.*/slices.* calls accepted as a dominating sort.
var sortNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Stable": true,
}

func runDetorder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass.TypesInfo, rs) {
					return true
				}
				sink := orderSensitiveSink(pass.TypesInfo, rs)
				if sink == "" {
					return true
				}
				if sortedAfter(fd.Body, rs) {
					return true
				}
				pass.Reportf(rs.For,
					"range over map %s %s without a dominating sort; map iteration order is randomized — collect keys, sort, then iterate",
					exprText(rs.X), sink)
				return true
			})
		}
	}
	return nil
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	t, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := t.Type.Underlying().(*types.Map)
	return isMap
}

// orderSensitiveSink scans the loop body for an order-sensitive sink and
// describes the first one found ("" if none). Two sinks are recognized:
// append whose destination is declared outside the loop (slice rows
// accumulate in iteration order), and emit calls (printing/writing
// inside the loop serializes iteration order directly).
func orderSensitiveSink(info *types.Info, rs *ast.RangeStmt) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(info, fun) && len(call.Args) > 0 {
				if dest := rootIdent(call.Args[0]); dest != nil && declaredBefore(info, dest, rs) {
					sink = "appends to " + dest.Name
				}
			}
		case *ast.SelectorExpr:
			if emitNames[fun.Sel.Name] {
				sink = "writes output via " + fun.Sel.Name
			}
		}
		return true
	})
	return sink
}

// sortedAfter reports whether a sort call appears lexically after the
// loop inside the enclosing function body — the collect-sort-iterate
// idiom, or a final sort over accumulated rows.
func sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
				(pkg.Name == "sort" || pkg.Name == "slices") && sortNames[sel.Sel.Name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBuiltin reports whether the identifier resolves to a Go builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// rootIdent returns the base identifier of an lvalue-ish expression
// (x, x.f, x[i] all root at x).
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return rootIdent(x.X)
	case *ast.IndexExpr:
		return rootIdent(x.X)
	case *ast.StarExpr:
		return rootIdent(x.X)
	}
	return nil
}

// declaredBefore reports whether id's object is declared before the
// range statement begins (i.e. outlives the loop body).
func declaredBefore(info *types.Info, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() < rs.Pos()
}
