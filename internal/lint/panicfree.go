package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Panicfree keeps panics from escaping the engine and daemon boundary.
// PR 2 hardened exactly this: hostile /eval input (zero-divisor
// FloorDiv) panicked deep in evaluation and killed the resident daemon;
// the fix converts panics to errors at the engine boundary, and
// mira-serve's instrument middleware is the last-resort recover. New
// panic calls (or panicking Must* helpers) inside the engine, report,
// or serve packages reintroduce that bug class: errors must flow as
// errors. The sanctioned recover boundaries suppress with
// //lint:ignore mira/panicfree and a reason.
var Panicfree = &Analyzer{
	Name: "panicfree",
	Doc: "panic() or panicking Must* calls inside internal/engine, " +
		"internal/report, or cmd/mira-serve; panics escaping the engine boundary " +
		"killed the daemon before PR 2 — return errors instead",
	Run: runPanicfree,
}

// panicfreeScope is the boundary package set: everything reachable from
// exported engine/daemon entry points.
var panicfreeScope = map[string]bool{
	"mira/internal/engine": true,
	"mira/internal/report": true,
	"mira/cmd/mira-serve":  true,
}

func runPanicfree(pass *Pass) error {
	if !panicfreeScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "panic" {
						if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
							pass.Reportf(call.Pos(),
								"panic inside an engine/daemon package; convert to an error at the boundary (panics killed the daemon before PR 2)")
						}
					}
				case *ast.SelectorExpr:
					if strings.HasPrefix(fun.Sel.Name, "Must") {
						pass.Reportf(call.Pos(),
							"%s panics on failure inside an engine/daemon package; use the error-returning variant", fun.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}
