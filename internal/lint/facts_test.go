package lint

import (
	"encoding/gob"
	"go/token"
	"go/types"
	"testing"
)

// tfact is a throwaway fact type for the round-trip tests.
type tfact struct{ N int }

func (*tfact) AFact() {}

func TestFactsRoundTrip(t *testing.T) {
	gob.Register(&tfact{})
	pkg := types.NewPackage("example.com/p", "p")
	obj := types.NewVar(token.NoPos, pkg, "V", types.Typ[types.Int])

	fs := NewFacts()
	fs.set(obj, &tfact{N: 7})
	if fs.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fs.Len())
	}
	raw, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}

	fs2 := NewFacts()
	if err := fs2.Decode(raw); err != nil {
		t.Fatal(err)
	}
	var got tfact
	if !fs2.get(obj, &got) || got.N != 7 {
		t.Fatalf("decoded fact = %+v (found=%v), want N=7", got, fs2.get(obj, &got))
	}

	// Encoding must be deterministic: vetx files are cache-keyed bytes.
	raw2, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("Encode is not byte-stable for identical stores")
	}
}

// TestFactsDecodeGarbage: an undecodable payload (another tool's vetx,
// a pre-fact mira-vet) must report an error and leave the store empty —
// callers treat it as "no facts", never as corruption.
func TestFactsDecodeGarbage(t *testing.T) {
	fs := NewFacts()
	if err := fs.Decode([]byte("not a fact store")); err == nil {
		t.Error("Decode accepted garbage")
	}
	if fs.Len() != 0 {
		t.Errorf("garbage decode left %d entries in the store", fs.Len())
	}
}

// TestObjFactKey pins the stable naming scheme: methods are keyed
// "Recv.Name" so a method and a package function cannot collide, and
// objects that cannot carry facts yield "".
func TestObjFactKey(t *testing.T) {
	pkg := types.NewPackage("example.com/p", "p")
	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	method := types.NewFunc(token.NoPos, pkg, "Run", sig)
	if got := objFactKey(method); got != "T.Run" {
		t.Errorf("method key = %q, want %q", got, "T.Run")
	}

	fn := types.NewFunc(token.NoPos, pkg, "Run", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	if got := objFactKey(fn); got != "Run" {
		t.Errorf("function key = %q, want %q", got, "Run")
	}

	if got := objFactKey(nil); got != "" {
		t.Errorf("nil object key = %q, want empty", got)
	}
	blank := types.NewVar(token.NoPos, pkg, "_", types.Typ[types.Int])
	if got := objFactKey(blank); got != "" {
		t.Errorf("blank object key = %q, want empty", got)
	}
}

// TestFactsTypeSeparation: two fact types on the same object live side
// by side; get retrieves by concrete type.
type tfact2 struct{ S string }

func (*tfact2) AFact() {}

func TestFactsTypeSeparation(t *testing.T) {
	pkg := types.NewPackage("example.com/p", "p")
	obj := types.NewVar(token.NoPos, pkg, "V", types.Typ[types.Int])
	fs := NewFacts()
	fs.set(obj, &tfact{N: 1})
	fs.set(obj, &tfact2{S: "two"})
	if fs.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (one per fact type)", fs.Len())
	}
	var a tfact
	var b tfact2
	if !fs.get(obj, &a) || a.N != 1 {
		t.Errorf("tfact = %+v, want N=1", a)
	}
	if !fs.get(obj, &b) || b.S != "two" {
		t.Errorf("tfact2 = %+v, want S=two", b)
	}
}
