package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG parses and type-checks one file and returns the CFG of
// its function f.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	cfg, _ := buildTestCFGInfo(t, src)
	return cfg
}

func buildTestCFGInfo(t *testing.T, src string) (*CFG, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body, TermInfo(info)), info
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

// blockContaining finds the block holding a node the predicate accepts.
func blockContaining(t *testing.T, cfg *CFG, match func(ast.Node) bool) *Block {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m != nil && match(m) {
					found = true
					return false
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatal("no block contains a matching node")
	return nil
}

// isDefineOf matches `name := ...` short declarations.
func isDefineOf(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) == 0 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestCFGBranchAndJoin(t *testing.T) {
	cfg := buildTestCFG(t, `package p
func f(b bool) int {
	x := 0
	if b {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("exit unreachable from entry")
	}
	head := blockContaining(t, cfg, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == "b"
	})
	if len(head.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then, else)", len(head.Succs))
	}
	ret := blockContaining(t, cfg, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	if len(ret.Succs) != 1 || ret.Succs[0] != cfg.Exit {
		t.Fatalf("return block edges = %v, want exactly the exit block", ret.Succs)
	}
	// Both arms join on the return block.
	for _, arm := range head.Succs {
		if !reaches(arm, ret) {
			t.Error("a branch arm does not reach the join block")
		}
	}
}

func TestCFGTerminalCallEndsBlock(t *testing.T) {
	cfg := buildTestCFG(t, `package p
import "os"
func f(b bool) {
	if b {
		os.Exit(2)
	}
	println("alive")
}`)
	dead := blockContaining(t, cfg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Exit"
	})
	if len(dead.Succs) != 0 {
		t.Fatalf("os.Exit block has %d successors, want 0 (never returns)", len(dead.Succs))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildTestCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	head := blockContaining(t, cfg, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		return ok && be.Op == token.LSS
	})
	if len(head.Succs) != 2 {
		t.Fatalf("loop head has %d successors, want 2 (body, after)", len(head.Succs))
	}
	// The body must cycle back to the head (through the post statement).
	backEdge := false
	for _, s := range head.Succs {
		if s != cfg.Exit && reaches(s, head) {
			backEdge = true
		}
	}
	if !backEdge {
		t.Error("no back edge from the loop body to the head")
	}
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Error("exit unreachable: the loop exit edge is missing")
	}
}

// varSet is the toy dataflow state for the solver tests: the set of
// short-declared variable names.
type varSet map[string]bool

func varSetFuncs(join func(acc, in varSet) varSet) FlowFuncs[varSet] {
	return FlowFuncs[varSet]{
		Clone: func(s varSet) varSet {
			out := varSet{}
			for k := range s {
				out[k] = true
			}
			return out
		},
		Join: join,
		Equal: func(a, b varSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, s varSet) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return
			}
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					s[id.Name] = true
				}
			}
		},
	}
}

const branchySrc = `package p
func f(b bool) {
	x := 1
	if b {
		y := 2
		_ = y
	}
	z := 3
	_ = x
	_ = z
}`

// TestForwardJoinSemantics runs the same may/must analysis with union
// and intersection joins: after the optional branch, a may-analysis
// sees the branch-local y, a must-analysis does not.
func TestForwardJoinSemantics(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", branchySrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fd.Body, TermInfo(nil))
	zBlock := blockContaining(t, cfg, isDefineOf("z"))

	union := func(acc, in varSet) varSet {
		for k := range in {
			acc[k] = true
		}
		return acc
	}
	in := Forward(cfg, varSet{}, varSetFuncs(union))
	if !in[zBlock]["x"] || !in[zBlock]["y"] {
		t.Errorf("union join IN at z = %v, want x and y present", in[zBlock])
	}

	intersect := func(acc, in varSet) varSet {
		for k := range acc {
			if !in[k] {
				delete(acc, k)
			}
		}
		return acc
	}
	in = Forward(cfg, varSet{}, varSetFuncs(intersect))
	if !in[zBlock]["x"] {
		t.Errorf("intersection join IN at z = %v, want x (defined on every path)", in[zBlock])
	}
	if in[zBlock]["y"] {
		t.Errorf("intersection join IN at z = %v, y must not survive the optional branch", in[zBlock])
	}
}

// TestBackwardLiveness checks the backward solver with a classic
// liveness transfer: at the branch point both return operands are live;
// past the last use nothing is.
func TestBackwardLiveness(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", `package p
func f(b bool) int {
	x := 1
	y := 2
	if b {
		return x
	}
	return y
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fd.Body, TermInfo(nil))

	live := FlowFuncs[varSet]{
		Clone: func(s varSet) varSet {
			out := varSet{}
			for k := range s {
				out[k] = true
			}
			return out
		},
		Join: func(acc, in varSet) varSet {
			for k := range in {
				acc[k] = true
			}
			return acc
		},
		Equal: func(a, b varSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, s varSet) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						delete(s, id.Name)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if id, ok := r.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
			}
		},
	}
	out := Backward(cfg, varSet{}, live)

	entry := blockContaining(t, cfg, isDefineOf("x"))
	if !out[entry]["x"] || !out[entry]["y"] {
		t.Errorf("OUT at the branch point = %v, want both return operands live", out[entry])
	}
	retX := blockContaining(t, cfg, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		id, ok := ret.Results[0].(*ast.Ident)
		return ok && id.Name == "x"
	})
	if len(out[retX]) != 0 {
		t.Errorf("OUT after return x = %v, want nothing live at exit", out[retX])
	}
}
