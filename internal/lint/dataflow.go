package lint

// dataflow.go holds the generic worklist solvers the flow-sensitive
// analyzers share. States are caller-defined values; the solver only
// needs join/equal/clone/transfer. Both directions run to a fixpoint
// over the CFG from cfg.go, so loops converge as long as the state
// lattice has finite height (all our analyzers use finite key sets).

import (
	"go/ast"
	"go/types"
)

// FlowFuncs bundles the lattice operations for one dataflow problem.
//
//   - Clone must return an independent copy (transfer mutates in place).
//   - Join merges a predecessor's out-state into acc and returns it;
//     it must be commutative and idempotent.
//   - Equal decides convergence.
//   - Transfer applies one atomic CFG node to the state in place.
type FlowFuncs[S any] struct {
	Clone    func(S) S
	Join     func(acc, in S) S
	Equal    func(a, b S) bool
	Transfer func(n ast.Node, s S)
}

// Forward solves a forward dataflow problem and returns each block's
// IN state (the join over predecessors' OUT states; boundary at Entry).
// Analyzers replay Transfer over a block's nodes to recover the state
// at any interior point.
func Forward[S any](cfg *CFG, boundary S, f FlowFuncs[S]) map[*Block]S {
	preds := predecessors(cfg)
	in := make(map[*Block]S, len(cfg.Blocks))
	out := make(map[*Block]S, len(cfg.Blocks))

	work := newWorklist(cfg.Blocks)
	for !work.empty() {
		blk := work.pop()
		var state S
		if blk == cfg.Entry {
			state = f.Clone(boundary)
		} else {
			first := true
			for _, p := range preds[blk] {
				po, ok := out[p]
				if !ok {
					continue // predecessor not yet computed: skip this round
				}
				if first {
					state = f.Clone(po)
					first = false
				} else {
					state = f.Join(state, po)
				}
			}
			if first {
				continue // unreachable or all preds pending
			}
		}
		in[blk] = f.Clone(state)
		for _, n := range blk.Nodes {
			f.Transfer(n, state)
		}
		if prev, ok := out[blk]; ok && f.Equal(prev, state) {
			continue
		}
		out[blk] = state
		for _, s := range blk.Succs {
			work.push(s)
		}
	}
	return in
}

// Backward solves a backward dataflow problem and returns each block's
// OUT state (the join over successors' IN states; boundary at Exit and
// at every dead-end block, i.e. one with no successors). Transfer is
// applied to a block's nodes in reverse order.
func Backward[S any](cfg *CFG, boundary S, f FlowFuncs[S]) map[*Block]S {
	out := make(map[*Block]S, len(cfg.Blocks))
	in := make(map[*Block]S, len(cfg.Blocks))

	work := newWorklist(cfg.Blocks)
	preds := predecessors(cfg)
	for !work.empty() {
		blk := work.pop()
		var state S
		if len(blk.Succs) == 0 {
			// Exit, or a terminal block (panic/os.Exit path).
			state = f.Clone(boundary)
		} else {
			first := true
			for _, s := range blk.Succs {
				si, ok := in[s]
				if !ok {
					continue
				}
				if first {
					state = f.Clone(si)
					first = false
				} else {
					state = f.Join(state, si)
				}
			}
			if first {
				continue
			}
		}
		out[blk] = f.Clone(state)
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			f.Transfer(blk.Nodes[i], state)
		}
		if prev, ok := in[blk]; ok && f.Equal(prev, state) {
			continue
		}
		in[blk] = state
		for _, p := range preds[blk] {
			work.push(p)
		}
	}
	return out
}

func predecessors(cfg *CFG) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// worklist is a FIFO with membership dedup: pushing a queued block is a
// no-op, so the solver visits each dirty block once per generation.
type worklist struct {
	queue  []*Block
	queued map[*Block]bool
}

func newWorklist(blocks []*Block) *worklist {
	w := &worklist{queued: make(map[*Block]bool, len(blocks))}
	for _, b := range blocks {
		w.push(b)
	}
	return w
}

func (w *worklist) empty() bool { return len(w.queue) == 0 }

func (w *worklist) push(b *Block) {
	if !w.queued[b] {
		w.queued[b] = true
		w.queue = append(w.queue, b)
	}
}

func (w *worklist) pop() *Block {
	b := w.queue[0]
	w.queue = w.queue[1:]
	w.queued[b] = false
	return b
}

// termInfo adapts *types.Info to the cfg builder's terminal-call probe.
type termInfo struct {
	info *types.Info
}

// TermInfo wraps a type-checker result for BuildCFG. A nil info yields
// a probe that only recognizes the builtin panic.
func TermInfo(info *types.Info) infoLike {
	if info == nil {
		return termInfo{}
	}
	return termInfo{info: info}
}

// isTerminalCall reports whether the call is a known never-returns
// function: os.Exit, runtime.Goexit, log.Fatal/Fatalf/Fatalln,
// (*log.Logger).Fatal*, or (*testing.common).Fatal*/FailNow/Skip*.
func (t termInfo) isTerminalCall(call *ast.CallExpr) bool {
	if t.info == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := t.info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
			name == "Panic" || name == "Panicf" || name == "Panicln"
	case "testing":
		return name == "Fatal" || name == "Fatalf" || name == "FailNow" ||
			name == "Skip" || name == "Skipf" || name == "SkipNow"
	}
	return false
}
