package lint

import (
	"go/ast"
	"go/types"
)

// Cachekey guards the two key-material invariants every caching layer
// hangs on (PR 9's no-poisoning guarantee):
//
//  1. Version mixing: a cache-key builder — a function that constructs
//     a streaming hash (crypto/sha256.New) and renders it with
//     encoding/hex.EncodeToString — must incorporate the cache format
//     version: reference core.CacheFormatVersion, a constant derived
//     from it, or call a function already known to mix it in. A key
//     built without the version survives format bumps and resurrects
//     stale artifacts as silent mismatches.
//
//  2. Content keys, never names: architecture descriptions are
//     content-addressed (Description.ContentKey). Reading the Name
//     field of a content-addressed type inside a key builder, or
//     writing a Name into any hash.Hash, rebuilds the exact bug the
//     content keys fixed — two archs sharing a name poisoning each
//     other's cache entries.
//
// Derivation is interprocedural: the analyzer exports a VersionConst
// fact on constants transitively derived from core.CacheFormatVersion
// and an IncorporatesVersion fact on functions that mix a versioned
// constant into a hash, so engine.CacheFormatVersion (= core's) and
// helpers called from builders carry their evidence across packages.
// One-shot digests (sha256.Sum256) are not key builders: ContentKey
// itself hashes a canonical encoding and *is* the content address the
// version does not apply to.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "cache-key builders (sha256.New + hex.EncodeToString) that do not mix " +
		"in CacheFormatVersion, and arch Name fields flowing into key material " +
		"instead of content keys (the PR 9 cross-arch poisoning class)",
	Run:       runCachekey,
	FactTypes: []Fact{(*VersionConst)(nil), (*IncorporatesVersion)(nil)},
}

// VersionConst marks a constant transitively derived from
// core.CacheFormatVersion.
type VersionConst struct {
	// Root is true on core.CacheFormatVersion itself.
	Root bool
}

// AFact marks VersionConst as a fact type.
func (*VersionConst) AFact() {}

// IncorporatesVersion marks a function that mixes a versioned constant
// into the key material it builds.
type IncorporatesVersion struct {
	// Via names the versioned constant or callee providing the evidence.
	Via string
}

// AFact marks IncorporatesVersion as a fact type.
func (*IncorporatesVersion) AFact() {}

// cachekeyScope is the package set whose hashes are key material.
var cachekeyScope = map[string]bool{
	"mira/internal/core":       true,
	"mira/internal/engine":     true,
	"mira/internal/cachestore": true,
	"mira/internal/cluster":    true,
}

// cachekeyRootPkg declares where the root version constant lives.
const (
	cachekeyRootPkg   = "mira/internal/core"
	cachekeyRootConst = "CacheFormatVersion"
)

func runCachekey(pass *Pass) error {
	versioned := exportVersionConsts(pass)
	verFuncs := exportVersionFuncs(pass, versioned)

	if !cachekeyScope[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isKeyBuilder(pass.TypesInfo, fd.Body) {
				if !hasVersionEvidence(pass, fd.Body, versioned, verFuncs) {
					pass.Reportf(fd.Name.Pos(),
						"%s builds a cache key (sha256.New + hex.EncodeToString) without mixing in CacheFormatVersion; stale artifacts will survive format bumps",
						fd.Name.Name)
				}
				reportNameReads(pass, fd.Body)
			}
			reportNameHashSinks(pass, fd.Body)
		}
	}
	return nil
}

// exportVersionConsts finds package-level constants derived from the
// root version constant (directly, via a fact from a dependency, or via
// an in-package chain) and exports VersionConst facts. Returns the
// package-local set.
func exportVersionConsts(pass *Pass) map[types.Object]bool {
	versioned := map[types.Object]bool{}
	isVersioned := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if versioned[obj] {
			return true
		}
		if c, ok := obj.(*types.Const); ok && c.Name() == cachekeyRootConst &&
			c.Pkg() != nil && c.Pkg().Path() == cachekeyRootPkg {
			return true
		}
		var fact VersionConst
		return pass.ImportObjectFact(obj, &fact)
	}

	// Iterate to a fixpoint so in-package chains (A = root; B = A)
	// resolve regardless of declaration order.
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					derived := false
					for _, v := range vs.Values {
						ast.Inspect(v, func(n ast.Node) bool {
							if id, ok := n.(*ast.Ident); ok && isVersioned(pass.TypesInfo.Uses[id]) {
								derived = true
							}
							return !derived
						})
					}
					if !derived {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if _, isConst := obj.(*types.Const); isConst && !versioned[obj] {
							versioned[obj] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// The root itself, when this package defines it.
	if pass.Pkg.Path() == cachekeyRootPkg {
		if obj := pass.Pkg.Scope().Lookup(cachekeyRootConst); obj != nil {
			if _, isConst := obj.(*types.Const); isConst {
				pass.ExportObjectFact(obj, &VersionConst{Root: true})
				versioned[obj] = true
			}
		}
	}
	for obj := range versioned {
		pass.ExportObjectFact(obj, &VersionConst{})
	}
	return versioned
}

// exportVersionFuncs exports IncorporatesVersion on every function
// whose body references a versioned constant or calls a function
// already carrying the fact, iterating for in-package call chains.
func exportVersionFuncs(pass *Pass, versioned map[types.Object]bool) map[types.Object]bool {
	verFuncs := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil || verFuncs[obj] {
					continue
				}
				if hasVersionEvidence(pass, fd.Body, versioned, verFuncs) {
					verFuncs[obj] = true
					changed = true
				}
			}
		}
	}
	for obj := range verFuncs {
		pass.ExportObjectFact(obj, &IncorporatesVersion{Via: cachekeyRootConst})
	}
	return verFuncs
}

// hasVersionEvidence reports whether the body (function literals
// included — core.FuncKeys does its mixing inside a closure) mentions a
// versioned constant or calls a version-incorporating function.
func hasVersionEvidence(pass *Pass, body *ast.BlockStmt, versioned, verFuncs map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if versioned[obj] || verFuncs[obj] {
			found = true
			return false
		}
		if c, ok := obj.(*types.Const); ok && c.Name() == cachekeyRootConst &&
			c.Pkg() != nil && c.Pkg().Path() == cachekeyRootPkg {
			found = true
			return false
		}
		var vc VersionConst
		var iv IncorporatesVersion
		if pass.ImportObjectFact(obj, &vc) || pass.ImportObjectFact(obj, &iv) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isKeyBuilder reports whether the body both constructs a streaming
// sha256 hash and hex-encodes a digest — the signature of cache-key
// construction in this tree.
func isKeyBuilder(info *types.Info, body *ast.BlockStmt) bool {
	hasNew, hasHex := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(info, call, "crypto/sha256", "New") {
			hasNew = true
		}
		if isPkgFunc(info, call, "encoding/hex", "EncodeToString") {
			hasHex = true
		}
		return !(hasNew && hasHex)
	})
	return hasNew && hasHex
}

// reportNameReads flags every read of a content-addressed type's Name
// field inside a key-builder body: key material must come from
// ContentKey, never from the mutable, collision-prone name.
func reportNameReads(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isArchNameRead(pass.TypesInfo, sel) {
			pass.Reportf(sel.Pos(),
				"%s.Name used inside a cache-key builder; key material must use the content key (ContentKey/KeyOf), never the name (cross-arch cache poisoning)",
				exprText(sel.X))
		}
		return true
	})
}

// isArchNameRead reports whether sel reads the Name field of a
// content-addressed type — a named type that also has a ContentKey
// method. The structural test keeps the rule honest in fixtures and
// robust to package moves.
func isArchNameRead(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Name" {
		return false
	}
	if _, isField := info.Uses[sel.Sel].(*types.Var); !isField {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named := recvNamed(tv.Type)
	if named == nil {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "ContentKey" {
			return true
		}
	}
	return false
}

// reportNameHashSinks flags arch names flowing into any hash.Hash in
// scope, builder or not: h.Write(name), io.WriteString(h, name), and
// fmt.Fprintf(h, ..., name), with a flow-insensitive taint step through
// single-level local assignments (name := d.Name; h.Write([]byte(name))).
func reportNameHashSinks(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || !isPlainAssign(as) || len(as.Rhs) == 0 {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if !mentionsArchName(pass.TypesInfo, rhs, tainted) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var sunk []ast.Expr
		switch {
		case isHashWriteCall(pass.TypesInfo, call):
			sunk = call.Args
		case isPkgFunc(pass.TypesInfo, call, "io", "WriteString") ||
			isPkgFunc(pass.TypesInfo, call, "fmt", "Fprintf") ||
			isPkgFunc(pass.TypesInfo, call, "fmt", "Fprint") ||
			isPkgFunc(pass.TypesInfo, call, "fmt", "Fprintln"):
			if len(call.Args) > 1 && isHashTyped(pass.TypesInfo, call.Args[0]) {
				sunk = call.Args[1:]
			}
		}
		for _, arg := range sunk {
			if mentionsArchName(pass.TypesInfo, arg, tainted) {
				pass.Reportf(arg.Pos(),
					"arch name flows into hash key material; hash the content key (ContentKey/KeyOf) instead (cross-arch cache poisoning)")
			}
		}
		return true
	})
}

// mentionsArchName reports whether e contains an arch Name read or a
// tainted identifier.
func mentionsArchName(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if isArchNameRead(info, x) {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isHashWriteCall reports whether call is a Write/WriteString method
// call on a hash.Hash-typed receiver.
func isHashWriteCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Write" && sel.Sel.Name != "WriteString") {
		return false
	}
	return isHashTyped(info, sel.X)
}

// isHashTyped reports whether e's static type is one of the hash
// interfaces.
func isHashTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch types.TypeString(tv.Type, nil) {
	case "hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}
