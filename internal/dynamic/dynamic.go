// Package dynamic provides a TAU-like instrumentation interface over the
// virtual machine: per-function profiles with PAPI-style counter names.
// It is the reproduction's counterpart of "TAU in instrumentation mode
// with PAPI counters" (paper Sec. IV): the measurement side of every
// validation table.
//
// Architecture fidelity: when profiling under a description whose
// HasFPCounters is false (the paper's Haswell machine), requesting
// PAPI_FP_INS fails exactly the way the paper describes ("in modern Intel
// Haswell servers, there is no support for FLOP or FPI performance
// hardware counters. Hence, static performance analysis may be the only
// way to produce floating-point-based metrics").
package dynamic

import (
	"fmt"
	"sort"
	"strings"

	"mira/internal/arch"
	"mira/internal/ir"
	"mira/internal/vm"
)

// Counter names the PAPI-style hardware counters the profiler exposes.
type Counter string

// Supported counters.
const (
	PAPI_TOT_INS Counter = "PAPI_TOT_INS" // total instructions
	PAPI_FP_INS  Counter = "PAPI_FP_INS"  // floating-point instructions
	PAPI_FP_OPS  Counter = "PAPI_FP_OPS"  // floating-point operations
	PAPI_BR_INS  Counter = "PAPI_BR_INS"  // branch (control transfer) instructions
	PAPI_LST_INS Counter = "PAPI_LST_INS" // load/store (data movement) instructions
)

// Profile is a TAU-style per-function measurement report.
type Profile struct {
	Arch    *arch.Description
	Machine *vm.Machine
	Rows    []ProfileRow
}

// ProfileRow is one function's measurements.
type ProfileRow struct {
	Function  string
	Calls     uint64
	Exclusive map[Counter]int64
	Inclusive map[Counter]int64
}

// Profiler wraps a machine with counter semantics.
type Profiler struct {
	M    *vm.Machine
	Arch *arch.Description
}

// New creates a profiler; a nil description defaults to frankenstein
// (the paper's counter-capable Nehalem machine).
func New(m *vm.Machine, d *arch.Description) *Profiler {
	if d == nil {
		d = arch.Frankenstein()
	}
	return &Profiler{M: m, Arch: d}
}

// knownCounters is the closed set of counters the profiler models.
var knownCounters = []Counter{PAPI_TOT_INS, PAPI_FP_INS, PAPI_FP_OPS, PAPI_BR_INS, PAPI_LST_INS}

// Known reports whether the profiler models a counter at all —
// distinct from Available, which asks whether this architecture
// supports a (known) counter.
func Known(c Counter) bool {
	for _, k := range knownCounters {
		if c == k {
			return true
		}
	}
	return false
}

// Available reports whether the architecture supports a counter.
func (p *Profiler) Available(c Counter) bool {
	switch c {
	case PAPI_FP_INS, PAPI_FP_OPS:
		return p.Arch.HasFPCounters
	}
	return true
}

// Read returns the inclusive value of a counter for one function. A
// counter the profiler does not model is an error, never a measured
// zero: a typo'd counter name must not masquerade as "this function
// executes no such instructions".
func (p *Profiler) Read(fn string, c Counter) (int64, error) {
	if !Known(c) {
		return 0, fmt.Errorf("dynamic: unknown counter %q (counters: %v)", c, knownCounters)
	}
	if !p.Available(c) {
		return 0, fmt.Errorf("dynamic: %s is not supported on %s (no FP hardware counters; see paper Sec. IV-D1)",
			c, p.Arch.Name)
	}
	st, ok := p.M.FuncStatsByName(fn)
	if !ok {
		return 0, fmt.Errorf("dynamic: no function %q", fn)
	}
	return counterValue(st, c, true), nil
}

func counterValue(st *vm.FuncStats, c Counter, inclusive bool) int64 {
	cats := st.Exclusive
	flops := st.FlopsExcl
	total := st.Total()
	if inclusive {
		cats = st.Inclusive
		flops = st.FlopsIncl
		total = st.TotalInclusive()
	}
	switch c {
	case PAPI_TOT_INS:
		return int64(total)
	case PAPI_FP_INS:
		return int64(cats[ir.CatSSEArith])
	case PAPI_FP_OPS:
		return int64(flops)
	case PAPI_BR_INS:
		return int64(cats[ir.CatIntControl])
	case PAPI_LST_INS:
		return int64(cats[ir.CatIntData] + cats[ir.CatSSEMove])
	}
	return 0
}

// Report builds the full per-function profile, sorted by inclusive total.
func (p *Profiler) Report() *Profile {
	prof := &Profile{Arch: p.Arch, Machine: p.M}
	for i := range p.M.Stats() {
		st := &p.M.Stats()[i]
		if st.Calls == 0 {
			continue
		}
		row := ProfileRow{
			Function:  st.Name,
			Calls:     st.Calls,
			Exclusive: map[Counter]int64{},
			Inclusive: map[Counter]int64{},
		}
		for _, c := range knownCounters {
			if !p.Available(c) {
				continue
			}
			row.Exclusive[c] = counterValue(st, c, false)
			row.Inclusive[c] = counterValue(st, c, true)
		}
		prof.Rows = append(prof.Rows, row)
	}
	sortProfileRows(prof.Rows)
	return prof
}

// sortProfileRows orders rows by inclusive instruction count descending,
// with a function-name tiebreak: tied rows (common in symmetric kernels
// — STREAM's copy/scale pair executes identical counts) must render in
// the same order on every run.
func sortProfileRows(rows []ProfileRow) {
	sort.SliceStable(rows, func(i, j int) bool {
		ti, tj := rows[i].Inclusive[PAPI_TOT_INS], rows[j].Inclusive[PAPI_TOT_INS]
		if ti != tj {
			return ti > tj
		}
		return rows[i].Function < rows[j].Function
	})
}

// String renders the profile in a pprof/TAU-like table.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TAU-style profile on %s (FP counters: %t)\n", p.Arch.Name, p.Arch.HasFPCounters)
	fmt.Fprintf(&sb, "%-28s %-8s %-14s %-14s %-14s\n",
		"Function", "Calls", "TOT_INS(incl)", "FP_INS(incl)", "FP_INS(excl)")
	for _, r := range p.Rows {
		fp := "n/a"
		fpe := "n/a"
		if v, ok := r.Inclusive[PAPI_FP_INS]; ok {
			fp = fmt.Sprintf("%d", v)
			fpe = fmt.Sprintf("%d", r.Exclusive[PAPI_FP_INS])
		}
		fmt.Fprintf(&sb, "%-28s %-8d %-14d %-14s %-14s\n",
			r.Function, r.Calls, r.Inclusive[PAPI_TOT_INS], fp, fpe)
	}
	return sb.String()
}
