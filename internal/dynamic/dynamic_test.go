package dynamic_test

import (
	"strings"
	"testing"

	"mira/internal/arch"
	"mira/internal/cc"
	"mira/internal/dynamic"
	"mira/internal/parser"
	"mira/internal/sema"
	"mira/internal/vm"
)

func machine(t *testing.T, src string) *vm.Machine {
	t.Helper()
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(obj)
}

const profSrc = `
double inner(double x) { return x * x; }
double outer(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) { s = s + inner(1.5); }
	return s;
}`

func TestCountersOnNehalem(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(10)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Frankenstein())
	fp, err := p.Read("outer", dynamic.PAPI_FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 20 { // 10 adds + 10 muls (inclusive)
		t.Errorf("FP_INS = %d, want 20", fp)
	}
	tot, err := p.Read("outer", dynamic.PAPI_TOT_INS)
	if err != nil {
		t.Fatal(err)
	}
	if tot <= fp {
		t.Errorf("TOT_INS = %d", tot)
	}
	br, err := p.Read("outer", dynamic.PAPI_BR_INS)
	if err != nil || br == 0 {
		t.Errorf("BR_INS = %d, %v", br, err)
	}
}

func TestHaswellRefusesFPCounters(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(3)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Arya())
	if _, err := p.Read("outer", dynamic.PAPI_FP_INS); err == nil {
		t.Error("FP_INS readable on Haswell-like arch")
	}
	// Non-FP counters still work.
	if _, err := p.Read("outer", dynamic.PAPI_TOT_INS); err != nil {
		t.Errorf("TOT_INS failed: %v", err)
	}
}

func TestReportFormat(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(5)); err != nil {
		t.Fatal(err)
	}
	rep := dynamic.New(m, arch.Frankenstein()).Report()
	if len(rep.Rows) != 2 { // outer + inner (called functions only)
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0].Function != "outer" {
		t.Errorf("rows not sorted by inclusive total: %+v", rep.Rows[0])
	}
	out := rep.String()
	for _, want := range []string{"TAU-style profile", "outer", "inner", "FP_INS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// On Haswell the FP columns render n/a.
	m2 := machine(t, profSrc)
	if _, err := m2.Run("outer", vm.Int(5)); err != nil {
		t.Fatal(err)
	}
	out2 := dynamic.New(m2, arch.Arya()).Report().String()
	if !strings.Contains(out2, "n/a") {
		t.Errorf("Haswell report shows FP numbers:\n%s", out2)
	}
}

func TestUnknownFunction(t *testing.T) {
	m := machine(t, profSrc)
	p := dynamic.New(m, nil)
	if _, err := p.Read("ghost", dynamic.PAPI_TOT_INS); err == nil {
		t.Error("unknown function accepted")
	}
}

// TestUnknownCounterRejected: a counter the profiler does not model is
// an error, not a silently measured zero — a typo like PAPI_FP_INNS
// must not report "this function executes no FP instructions".
func TestUnknownCounterRejected(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(3)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Frankenstein())
	v, err := p.Read("outer", dynamic.Counter("PAPI_FP_INNS"))
	if err == nil {
		t.Fatalf("typo'd counter accepted, read %d", v)
	}
	if !strings.Contains(err.Error(), "unknown counter") {
		t.Errorf("err = %v, want unknown-counter diagnostic", err)
	}
	if dynamic.Known(dynamic.Counter("PAPI_FP_INNS")) {
		t.Error("Known accepted a typo")
	}
	if !dynamic.Known(dynamic.PAPI_FP_INS) {
		t.Error("Known rejected a real counter")
	}
}

// TestReportTieOrder pins the golden order of tied profile rows: two
// functions with identical inclusive counts sort by name, every run.
func TestReportTieOrder(t *testing.T) {
	const twinSrc = `
double zz_twin(double x) { return x * x; }
double aa_twin(double x) { return x * x; }
double drive(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + zz_twin(1.5) + aa_twin(1.5);
	}
	return s;
}`
	m := machine(t, twinSrc)
	if _, err := m.Run("drive", vm.Int(4)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Frankenstein())
	for run := 0; run < 20; run++ {
		rep := p.Report()
		if len(rep.Rows) != 3 {
			t.Fatalf("rows = %+v", rep.Rows)
		}
		if rep.Rows[0].Function != "drive" {
			t.Fatalf("run %d: top row %q, want drive", run, rep.Rows[0].Function)
		}
		a, z := rep.Rows[1], rep.Rows[2]
		if a.Inclusive[dynamic.PAPI_TOT_INS] != z.Inclusive[dynamic.PAPI_TOT_INS] {
			t.Fatalf("twins not tied: %+v vs %+v", a, z)
		}
		if a.Function != "aa_twin" || z.Function != "zz_twin" {
			t.Fatalf("run %d: tied rows out of name order: %q before %q",
				run, a.Function, z.Function)
		}
	}
}
