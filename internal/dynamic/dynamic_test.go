package dynamic_test

import (
	"strings"
	"testing"

	"mira/internal/arch"
	"mira/internal/cc"
	"mira/internal/dynamic"
	"mira/internal/parser"
	"mira/internal/sema"
	"mira/internal/vm"
)

func machine(t *testing.T, src string) *vm.Machine {
	t.Helper()
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(obj)
}

const profSrc = `
double inner(double x) { return x * x; }
double outer(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) { s = s + inner(1.5); }
	return s;
}`

func TestCountersOnNehalem(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(10)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Frankenstein())
	fp, err := p.Read("outer", dynamic.PAPI_FP_INS)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 20 { // 10 adds + 10 muls (inclusive)
		t.Errorf("FP_INS = %d, want 20", fp)
	}
	tot, err := p.Read("outer", dynamic.PAPI_TOT_INS)
	if err != nil {
		t.Fatal(err)
	}
	if tot <= fp {
		t.Errorf("TOT_INS = %d", tot)
	}
	br, err := p.Read("outer", dynamic.PAPI_BR_INS)
	if err != nil || br == 0 {
		t.Errorf("BR_INS = %d, %v", br, err)
	}
}

func TestHaswellRefusesFPCounters(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(3)); err != nil {
		t.Fatal(err)
	}
	p := dynamic.New(m, arch.Arya())
	if _, err := p.Read("outer", dynamic.PAPI_FP_INS); err == nil {
		t.Error("FP_INS readable on Haswell-like arch")
	}
	// Non-FP counters still work.
	if _, err := p.Read("outer", dynamic.PAPI_TOT_INS); err != nil {
		t.Errorf("TOT_INS failed: %v", err)
	}
}

func TestReportFormat(t *testing.T) {
	m := machine(t, profSrc)
	if _, err := m.Run("outer", vm.Int(5)); err != nil {
		t.Fatal(err)
	}
	rep := dynamic.New(m, arch.Frankenstein()).Report()
	if len(rep.Rows) != 2 { // outer + inner (called functions only)
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0].Function != "outer" {
		t.Errorf("rows not sorted by inclusive total: %+v", rep.Rows[0])
	}
	out := rep.String()
	for _, want := range []string{"TAU-style profile", "outer", "inner", "FP_INS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// On Haswell the FP columns render n/a.
	m2 := machine(t, profSrc)
	if _, err := m2.Run("outer", vm.Int(5)); err != nil {
		t.Fatal(err)
	}
	out2 := dynamic.New(m2, arch.Arya()).Report().String()
	if !strings.Contains(out2, "n/a") {
		t.Errorf("Haswell report shows FP numbers:\n%s", out2)
	}
}

func TestUnknownFunction(t *testing.T) {
	m := machine(t, profSrc)
	p := dynamic.New(m, nil)
	if _, err := p.Read("ghost", dynamic.PAPI_TOT_INS); err == nil {
		t.Error("unknown function accepted")
	}
}
