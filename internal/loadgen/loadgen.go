// Package loadgen is Mira's HTTP load generator: the engine behind
// `mira-bench -load` and the cluster smoke test. It drives a weighted
// mix of operations against a set of target replicas in either a
// closed loop (a fixed worker count, each firing as fast as responses
// return — measures capacity) or an open loop (a target arrival rate
// paced independently of response times — measures behavior at a
// given offered load, the honest way to see queueing collapse), and
// reports per-class outcome counts and latency quantiles from
// log-bucketed histograms.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Op is one operation in the mix.
type Op struct {
	// Name labels the op in results ("query").
	Name string
	// Class is the op's QoS class label ("interactive", "bulk");
	// results aggregate per class.
	Class string
	// Weight is the op's relative frequency in the mix (default 1).
	Weight int
	// Method and Path address the op; Body is the fixed JSON payload.
	Method string
	Path   string
	Body   []byte
}

// Spec describes one load run.
type Spec struct {
	// Targets are the replica base URLs; workers rotate through them.
	Targets []string
	// Ops is the weighted operation mix.
	Ops []Op
	// Concurrency is the worker count (default 16).
	Concurrency int
	// RPS, when positive, switches to an open loop: arrivals are paced
	// at this aggregate rate regardless of response times. Zero means
	// closed loop.
	RPS float64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
}

// ClassStats aggregates one QoS class's outcomes.
type ClassStats struct {
	Class string
	// Sent counts completed request attempts.
	Sent int64
	// OK counts 2xx responses.
	OK int64
	// RateLimited counts 429 responses.
	RateLimited int64
	// Shed counts 503 responses carrying Retry-After — deliberate
	// load shedding, distinct from server failure.
	Shed int64
	// Err5xx counts 5xx responses that were NOT deliberate sheds.
	Err5xx int64
	// Err4xx counts non-429 4xx responses.
	Err4xx int64
	// NetErr counts transport failures (connection refused, timeout).
	NetErr int64
	// Hist holds successful-response latencies.
	Hist *Hist
}

// Result is one load run's outcome.
type Result struct {
	Elapsed time.Duration
	// Classes, sorted by class name.
	Classes []*ClassStats
}

// Class returns the stats for a class label, or nil.
func (r *Result) Class(name string) *ClassStats {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return nil
}

// TotalSent sums attempts across classes.
func (r *Result) TotalSent() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.Sent
	}
	return n
}

// TotalOK sums 2xx responses across classes.
func (r *Result) TotalOK() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.OK
	}
	return n
}

// Throughput reports completed requests (any outcome) per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TotalSent()) / r.Elapsed.Seconds()
}

// Run drives the load described by spec until the duration elapses or
// ctx ends, whichever is first. Per-worker stats merge at the end, so
// the hot path takes no shared locks beyond the pacer channel.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if len(spec.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if len(spec.Ops) == 0 {
		return nil, fmt.Errorf("loadgen: no ops")
	}
	workers := spec.Concurrency
	if workers <= 0 {
		workers = 16
	}
	duration := spec.Duration
	if duration <= 0 {
		duration = 5 * time.Second
	}
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	// One expanded schedule of ops honoring weights, walked round-robin
	// by a shared counter so the mix holds at any worker count.
	var schedule []int
	for i, op := range spec.Ops {
		w := op.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			schedule = append(schedule, i)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	// Open loop: a pacer goroutine drops tokens at the target rate;
	// workers block for a token before each request. Closed loop: a
	// nil pacer channel (never blocks).
	var pacer chan struct{}
	if spec.RPS > 0 {
		pacer = make(chan struct{}, workers)
		// The pacer follows an absolute arrival schedule rather than a
		// ticker: at >1k req/s the inter-arrival gap is sub-millisecond
		// and a ticker silently coalesces missed ticks, capping the
		// delivered rate below the target. Emitting every arrival due
		// since the start keeps the long-run rate exact regardless of
		// scheduler jitter.
		go func() {
			begin := time.Now()
			var issued int64
			for {
				due := int64(time.Since(begin).Seconds() * spec.RPS)
				for ; issued < due; issued++ {
					select {
					case pacer <- struct{}{}:
					default: // workers are saturated; drop the arrival
					}
				}
				next := begin.Add(time.Duration(float64(issued+1) / spec.RPS * float64(time.Second)))
				t := time.NewTimer(time.Until(next))
				select {
				case <-runCtx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
		}()
	}

	client := &http.Client{Timeout: timeout}
	perWorker := make([]map[string]*ClassStats, workers)
	var seq counter
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			stats := map[string]*ClassStats{}
			perWorker[w] = stats
			for {
				if runCtx.Err() != nil {
					return
				}
				if pacer != nil {
					select {
					case <-pacer:
					case <-runCtx.Done():
						return
					}
				}
				n := seq.next()
				op := &spec.Ops[schedule[int(n)%len(schedule)]]
				target := spec.Targets[int(n)%len(spec.Targets)]
				st := stats[op.Class]
				if st == nil {
					st = &ClassStats{Class: op.Class, Hist: NewHist()}
					stats[op.Class] = st
				}
				fire(runCtx, client, target, op, st)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := map[string]*ClassStats{}
	for _, stats := range perWorker {
		if stats == nil {
			continue
		}
		// Merge into name-keyed aggregates; output order is sorted
		// below, not map order.
		//lint:ignore mira/detorder merged is keyed aggregation; output is sorted afterwards
		for class, st := range stats {
			m := merged[class]
			if m == nil {
				m = &ClassStats{Class: class, Hist: NewHist()}
				merged[class] = m
			}
			m.Sent += st.Sent
			m.OK += st.OK
			m.RateLimited += st.RateLimited
			m.Shed += st.Shed
			m.Err5xx += st.Err5xx
			m.Err4xx += st.Err4xx
			m.NetErr += st.NetErr
			m.Hist.Merge(st.Hist)
		}
	}
	res := &Result{Elapsed: elapsed}
	for _, m := range merged {
		res.Classes = append(res.Classes, m)
	}
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Class < res.Classes[j].Class })
	return res, nil
}

// fire sends one request and records its outcome.
func fire(ctx context.Context, client *http.Client, target string, op *Op, st *ClassStats) {
	req, err := http.NewRequestWithContext(ctx, op.Method, target+op.Path, bytes.NewReader(op.Body))
	if err != nil {
		st.Sent++
		st.NetErr++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // run ended mid-request; not an outcome
		}
		st.Sent++
		st.NetErr++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st.Sent++
	switch {
	case resp.StatusCode < 300:
		st.OK++
		st.Hist.Observe(time.Since(start))
	case resp.StatusCode == http.StatusTooManyRequests:
		st.RateLimited++
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		st.Shed++
	case resp.StatusCode >= 500:
		st.Err5xx++
	default:
		st.Err4xx++
	}
}

// counter is a shared atomic sequence.
type counter struct{ n atomic.Int64 }

func (c *counter) next() int64 { return c.n.Add(1) - 1 }
