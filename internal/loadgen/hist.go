package loadgen

import (
	"math"
	"time"
)

// histBuckets is the bucket count: geometric buckets from 1µs with a
// ×1.5 growth factor cover 1µs..~291s in 48 buckets, plenty for HTTP
// latencies while keeping quantile error under ~25% of the value —
// the right trade for a load generator's p99 readout.
const histBuckets = 48

// histGrowth is the per-bucket upper-bound growth factor.
const histGrowth = 1.5

// Hist is a fixed-size geometric latency histogram. It is not safe
// for concurrent use; the load generator keeps one per worker and
// merges at the end.
type Hist struct {
	counts [histBuckets]int64
	total  int64
	max    time.Duration
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// bucketFor maps a latency to its bucket index.
func bucketFor(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us <= 1 {
		return 0
	}
	i := int(math.Log(us)/math.Log(histGrowth)) + 1
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the bucket's upper latency bound.
func bucketUpper(i int) time.Duration {
	return time.Duration(math.Pow(histGrowth, float64(i)) * float64(time.Microsecond))
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.total++
	if d > h.max {
		h.max = d
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.total }

// Max reports the largest observation.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the upper edge of the bucket holding the q-th
// observation, clamped to the recorded maximum.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				return h.max
			}
			return u
		}
	}
	return h.max
}
