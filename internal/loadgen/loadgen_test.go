package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %s", h.Max())
	}
	// Geometric buckets overestimate by at most the growth factor and
	// clamp to the recorded max.
	p50 := h.Quantile(0.50)
	if p50 < 50*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %s, want within [50ms, 80ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %s, want within [99ms, 100ms]", p99)
	}
	if q := h.Quantile(1.0); q != 100*time.Millisecond {
		t.Errorf("p100 = %s, want the max", q)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != time.Second {
		t.Errorf("merged count=%d max=%s", a.Count(), a.Max())
	}
}

// TestRunClassifiesOutcomes drives a closed loop against a server that
// answers each path with a fixed status and checks the per-class
// bookkeeping: 2xx, 429, shed (503+Retry-After), bare 5xx, 4xx.
func TestRunClassifiesOutcomes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.WriteHeader(http.StatusOK)
		case "/limited":
			w.WriteHeader(http.StatusTooManyRequests)
		case "/shed":
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		case "/boom":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Spec{
		Targets: []string{srv.URL},
		Ops: []Op{
			{Name: "ok", Class: "interactive", Method: http.MethodGet, Path: "/ok"},
			{Name: "limited", Class: "limited", Method: http.MethodGet, Path: "/limited"},
			{Name: "shed", Class: "bulk", Method: http.MethodGet, Path: "/shed"},
			{Name: "boom", Class: "broken", Method: http.MethodGet, Path: "/boom"},
			{Name: "missing", Class: "missing", Method: http.MethodGet, Path: "/nope"},
		},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		class string
		field func(*ClassStats) int64
	}{
		{"interactive", func(c *ClassStats) int64 { return c.OK }},
		{"limited", func(c *ClassStats) int64 { return c.RateLimited }},
		{"bulk", func(c *ClassStats) int64 { return c.Shed }},
		{"broken", func(c *ClassStats) int64 { return c.Err5xx }},
		{"missing", func(c *ClassStats) int64 { return c.Err4xx }},
	}
	for _, chk := range checks {
		c := res.Class(chk.class)
		if c == nil {
			t.Fatalf("class %s missing from results", chk.class)
		}
		if chk.field(c) == 0 || chk.field(c) != c.Sent {
			t.Errorf("class %s: expected every outcome in one bucket, got %+v", chk.class, c)
		}
	}
	// A shed is never a 5xx; a rate limit is never a 4xx.
	if c := res.Class("bulk"); c.Err5xx != 0 {
		t.Errorf("sheds double-counted as 5xx: %+v", c)
	}
	if c := res.Class("limited"); c.Err4xx != 0 {
		t.Errorf("rate limits double-counted as 4xx: %+v", c)
	}
	if res.TotalSent() == 0 || res.Throughput() <= 0 {
		t.Errorf("totals: sent=%d throughput=%f", res.TotalSent(), res.Throughput())
	}
}

// TestRunOpenLoopPacing: an open loop at a modest rate sends roughly
// rate x duration requests, not as-fast-as-possible.
func TestRunOpenLoopPacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	res, err := Run(context.Background(), Spec{
		Targets:     []string{srv.URL},
		Ops:         []Op{{Name: "ok", Class: "interactive", Method: http.MethodGet, Path: "/"}},
		Concurrency: 4,
		RPS:         50,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~25 expected; allow generous slack for scheduler jitter, but an
	// unpaced loop would send thousands.
	if res.TotalSent() > 100 {
		t.Errorf("open loop at 50 req/s sent %d requests in 500ms; pacing is not applied", res.TotalSent())
	}
	if res.TotalSent() < 5 {
		t.Errorf("open loop sent only %d requests; pacer stalled", res.TotalSent())
	}
}

// TestRunWeights: op weights shape the mix.
func TestRunWeights(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	res, err := Run(context.Background(), Spec{
		Targets: []string{srv.URL},
		Ops: []Op{
			{Name: "heavy", Class: "heavy", Weight: 9, Method: http.MethodGet, Path: "/"},
			{Name: "light", Class: "light", Weight: 1, Method: http.MethodGet, Path: "/"},
		},
		Concurrency: 2,
		Duration:    250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy, light := res.Class("heavy"), res.Class("light")
	if heavy == nil || light == nil || light.Sent == 0 {
		t.Fatalf("classes missing: %+v", res.Classes)
	}
	ratio := float64(heavy.Sent) / float64(light.Sent)
	if ratio < 5 || ratio > 13 {
		t.Errorf("heavy:light = %.1f, want about 9", ratio)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Ops: []Op{{}}}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := Run(context.Background(), Spec{Targets: []string{"http://x"}}); err == nil {
		t.Error("no ops accepted")
	}
}
