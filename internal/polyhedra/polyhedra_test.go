package polyhedra

import (
	"errors"
	"testing"

	"mira/internal/expr"
	"mira/internal/rational"
)

func mustCount(t *testing.T, n Nest) expr.Expr {
	t.Helper()
	c, err := Count(n)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}

func evalCount(t *testing.T, n Nest, env expr.Env) int64 {
	t.Helper()
	c := mustCount(t, n)
	v, err := expr.EvalInt64(c, env)
	if err != nil {
		t.Fatalf("eval %s: %v", c, err)
	}
	return v
}

// bruteCount enumerates the nest domain directly as a reference oracle.
func bruteCount(t *testing.T, n Nest, env expr.Env) int64 {
	t.Helper()
	var rec func(entries []Entry, env expr.Env) int64
	rec = func(entries []Entry, env expr.Env) int64 {
		if len(entries) == 0 {
			return 1
		}
		e := entries[0]
		if e.Guard != nil {
			g := e.Guard
			switch g.Kind {
			case AffineGE:
				v, err := expr.EvalInt64(g.E, env)
				if err != nil {
					t.Fatalf("brute guard: %v", err)
				}
				if v < 0 {
					return 0
				}
			case ModEq, ModNeq:
				v, err := expr.EvalInt64(g.E, env)
				if err != nil {
					t.Fatalf("brute mod: %v", err)
				}
				r := ((v % g.Mod) + g.Mod) % g.Mod
				if (g.Kind == ModEq) != (r == g.Rem) {
					return 0
				}
			case Scale:
				t.Fatal("brute cannot evaluate Scale")
			}
			return rec(entries[1:], env)
		}
		l := e.Loop
		lo, err := expr.EvalInt64(l.Lo, env)
		if err != nil {
			t.Fatalf("brute lo: %v", err)
		}
		hi, err := expr.EvalInt64(l.Hi, env)
		if err != nil {
			t.Fatalf("brute hi: %v", err)
		}
		var total int64
		for v := lo; v <= hi; v += l.Step {
			total += rec(entries[1:], env.Bind(l.Var, rational.FromInt(v)))
		}
		return total
	}
	return rec(n.Entries, env)
}

func checkAgainstBrute(t *testing.T, n Nest, env expr.Env) {
	t.Helper()
	got := evalCount(t, n, env)
	want := bruteCount(t, n, env)
	if got != want {
		t.Errorf("symbolic=%d brute=%d (%s)", got, want, mustCount(t, n))
	}
}

// Listing 1: for (i = 0; i < 10; i++) — 10 iterations.
func TestListing1BasicLoop(t *testing.T) {
	n := Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(9), Step: 1})
	if got := evalCount(t, n, nil); got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Listing 2: for(i=1..4) for(j=i+1..6) — 14 iterations, closed form.
func TestListing2TriangularNest(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(4), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.NewAdd(expr.V("i"), expr.Const(1)), Hi: expr.Const(6), Step: 1})
	c := mustCount(t, n)
	if _, isNum := c.(expr.Num); !isNum {
		t.Errorf("concrete triangular count not folded: %s", c)
	}
	if got := evalCount(t, n, nil); got != 14 {
		t.Errorf("count = %d, want 14", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Listing 4 / Fig. 4(b): the j > 4 branch constraint shrinks the domain
// from 14 to 8 points.
func TestListing4BranchConstraint(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(4), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.NewAdd(expr.V("i"), expr.Const(1)), Hi: expr.Const(6), Step: 1}).
		WithGuard(Guard{Kind: AffineGE, E: expr.NewSub(expr.V("j"), expr.Const(5))}) // j > 4 <=> j-5 >= 0
	if got := evalCount(t, n, nil); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Listing 5: if (j % 4 != 0) punches holes; complement trick gives
// 14 - 3 = 11.
func TestListing5ModuloHoles(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(4), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.NewAdd(expr.V("i"), expr.Const(1)), Hi: expr.Const(6), Step: 1}).
		WithGuard(Guard{Kind: ModNeq, E: expr.V("j"), Mod: 4, Rem: 0})
	if got := evalCount(t, n, nil); got != 11 {
		t.Errorf("count = %d, want 11", got)
	}
	checkAgainstBrute(t, n, nil)

	// The false branch (j % 4 == 0) must count the 3 excluded points.
	nEq := Nest{Entries: append([]Entry{}, n.Entries[:2]...)}.
		WithGuard(Guard{Kind: ModEq, E: expr.V("j"), Mod: 4, Rem: 0})
	if got := evalCount(t, nEq, nil); got != 3 {
		t.Errorf("false-branch count = %d, want 3", got)
	}
	checkAgainstBrute(t, nEq, nil)
}

// Listing 3: min() lower bound / max() upper bound — non-convex, must be
// rejected with ErrNonConvex.
func TestListing3NonConvexRejected(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(5), Step: 1}).
		WithLoop(Loop{
			Var:  "j",
			Lo:   expr.NewMin(expr.NewSub(expr.Const(6), expr.V("i")), expr.Const(3)),
			Hi:   expr.NewMax(expr.NewSub(expr.Const(8), expr.V("i")), expr.V("i")),
			Step: 1,
		})
	_, err := Count(n)
	if !errors.Is(err, ErrNonConvex) {
		t.Errorf("err = %v, want ErrNonConvex", err)
	}
}

// max() in a lower bound is an intersection — convex and supported.
func TestMaxLowerBoundIsConvex(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(4), Step: 1}).
		WithLoop(Loop{
			Var:  "j",
			Lo:   expr.NewMax(expr.NewAdd(expr.V("i"), expr.Const(1)), expr.Const(5)),
			Hi:   expr.Const(6),
			Step: 1,
		})
	if got := evalCount(t, n, nil); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Parametric rectangular nest: DGEMM-style triple loop over n — closed
// form n^3 with no Sum nodes, evaluated at paper-scale sizes instantly.
func TestParametricRectangular(t *testing.T) {
	mk := func(v string) Loop {
		return Loop{Var: v, Lo: expr.Const(0), Hi: expr.NewSub(expr.P("n"), expr.Const(1)), Step: 1}
	}
	n := Nest{}.WithLoop(mk("i")).WithLoop(mk("j")).WithLoop(mk("k"))
	c := mustCount(t, n)
	if hasSumNode(c) {
		t.Errorf("rectangular count retains Sum: %s", c)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1024})
	got, err := expr.EvalInt64(c, env)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1024) * 1024 * 1024; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	// Clamped at zero for empty domains.
	env = expr.EnvFromInts(map[string]int64{"n": 0})
	if got, _ := expr.EvalInt64(c, env); got != 0 {
		t.Errorf("empty domain count = %d", got)
	}
}

// Parametric triangular nest: i in 0..n-1, j in 0..i — n(n+1)/2 closed
// form via the Faulhaber path after the max(0,·) guard is discharged.
func TestParametricTriangularClosedForm(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.NewSub(expr.P("n"), expr.Const(1)), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.V("i"), Step: 1})
	c := mustCount(t, n)
	if hasSumNode(c) {
		t.Errorf("parametric triangular count retains Sum: %s", c)
	}
	for _, nv := range []int64{1, 5, 100, 100000} {
		env := expr.EnvFromInts(map[string]int64{"n": nv})
		got, err := expr.EvalInt64(c, env)
		if err != nil {
			t.Fatal(err)
		}
		if want := nv * (nv + 1) / 2; got != want {
			t.Errorf("n=%d: count = %d, want %d", nv, got, want)
		}
	}
}

func hasSumNode(e expr.Expr) bool {
	switch x := e.(type) {
	case expr.Sum:
		return true
	case expr.Add:
		for _, t := range x.Terms {
			if hasSumNode(t) {
				return true
			}
		}
	case expr.Mul:
		for _, f := range x.Factors {
			if hasSumNode(f) {
				return true
			}
		}
	case expr.FloorDiv:
		return hasSumNode(x.X)
	case expr.Min:
		return hasSumNode(x.A) || hasSumNode(x.B)
	case expr.Max:
		return hasSumNode(x.A) || hasSumNode(x.B)
	}
	return false
}

// Strided loops: for (i = 0; i <= 10; i += 3) has 4 iterations.
func TestStridedLoop(t *testing.T) {
	n := Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(10), Step: 3})
	if got := evalCount(t, n, nil); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Strided loop with a dependent inner bound: substitution v = lo + s*t.
func TestStridedLoopDependentBody(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(9), Step: 2}).
		WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.V("i"), Step: 1})
	// i = 0,2,4,6,8 -> inner trips 1,3,5,7,9 = 25.
	if got := evalCount(t, n, nil); got != 25 {
		t.Errorf("count = %d, want 25", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Congruence with ==: count multiples of 5 in [1, 100].
func TestModEqCount(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.P("n"), Step: 1}).
		WithGuard(Guard{Kind: ModEq, E: expr.V("i"), Mod: 5, Rem: 0})
	env := expr.EnvFromInts(map[string]int64{"n": 100})
	if got := evalCount(t, n, env); got != 20 {
		t.Errorf("count = %d, want 20", got)
	}
	checkAgainstBrute(t, n, env)
}

// Congruence with an offset expression (i+1) % 3 == 0.
func TestModWithOffset(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(20), Step: 1}).
		WithGuard(Guard{Kind: ModEq, E: expr.NewAdd(expr.V("i"), expr.Const(1)), Mod: 3, Rem: 0})
	// i+1 in {3,6,9,12,15,18,21} -> 7 points.
	if got := evalCount(t, n, nil); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Congruence guard combined with a var-dependent body enumerates exactly.
func TestModWithDependentBody(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(12), Step: 1}).
		WithGuard(Guard{Kind: ModNeq, E: expr.V("i"), Mod: 4, Rem: 0}).
		WithLoop(Loop{Var: "j", Lo: expr.Const(1), Hi: expr.V("i"), Step: 1})
	// sum over i in 1..12, i % 4 != 0, of i = 78 - (4+8+12) = 54.
	if got := evalCount(t, n, nil); got != 54 {
		t.Errorf("count = %d, want 54", got)
	}
	checkAgainstBrute(t, n, nil)
}

// Scale guards implement br_frac annotations.
func TestScaleGuard(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(100), Step: 1}).
		WithGuard(Guard{Kind: Scale, Frac: rational.FromFrac(1, 4)})
	if got := evalCount(t, n, nil); got != 25 {
		t.Errorf("count = %d, want 25", got)
	}
}

// A guard over parameters only cannot be decided statically.
func TestParamOnlyGuardRejected(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(10), Step: 1}).
		WithGuard(Guard{Kind: AffineGE, E: expr.NewSub(expr.P("p"), expr.Const(3))})
	if _, err := Count(n); err == nil {
		t.Error("expected error for parameter-only guard")
	}
}

// A constant guard folds to keep-all or drop-all.
func TestConstantGuardFolds(t *testing.T) {
	base := Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(10), Step: 1})
	kept := base.WithGuard(Guard{Kind: AffineGE, E: expr.Const(5)})
	if got := evalCount(t, kept, nil); got != 10 {
		t.Errorf("kept count = %d", got)
	}
	dropped := base.WithGuard(Guard{Kind: AffineGE, E: expr.Const(-1)})
	if got := evalCount(t, dropped, nil); got != 0 {
		t.Errorf("dropped count = %d", got)
	}
}

// CountPrefix supports loop-header multiplicity computation.
func TestCountPrefix(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(4), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.NewAdd(expr.V("i"), expr.Const(1)), Hi: expr.Const(6), Step: 1})
	c0, err := CountPrefix(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := expr.EvalInt64(c0, nil); v != 1 {
		t.Errorf("prefix 0 = %d, want 1", v)
	}
	c1, err := CountPrefix(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := expr.EvalInt64(c1, nil); v != 4 {
		t.Errorf("prefix 1 = %d, want 4", v)
	}
	c2, err := CountPrefix(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := expr.EvalInt64(c2, nil); v != 14 {
		t.Errorf("prefix 2 = %d, want 14", v)
	}
	if _, err := CountPrefix(n, 3); err == nil {
		t.Error("out-of-range prefix accepted")
	}
}

// Zero-trip and negative-span loops clamp to zero.
func TestEmptyDomains(t *testing.T) {
	n := Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(5), Hi: expr.Const(1), Step: 1})
	if got := evalCount(t, n, nil); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	// Inner empty for some outer values only.
	n2 := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.Const(8), Step: 1}).
		WithLoop(Loop{Var: "j", Lo: expr.V("i"), Hi: expr.Const(4), Step: 1})
	// j from i..4: i=1:4, 2:3, 3:2, 4:1, 5..8:0 -> 10.
	if got := evalCount(t, n2, nil); got != 10 {
		t.Errorf("count = %d, want 10", got)
	}
	checkAgainstBrute(t, n2, nil)
}

// Invalid loops are rejected.
func TestInvalidLoops(t *testing.T) {
	n := Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(9), Step: 0})
	if _, err := Count(n); err == nil {
		t.Error("zero step accepted")
	}
	n = Nest{}.WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(9), Step: -1})
	if _, err := Count(n); err == nil {
		t.Error("negative step accepted")
	}
}

// Randomized cross-check of symbolic counting vs brute enumeration over
// assorted nests with guards.
func TestRandomNestsAgainstBrute(t *testing.T) {
	shapes := []Nest{
		Nest{}.
			WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.P("n"), Step: 1}).
			WithLoop(Loop{Var: "j", Lo: expr.V("i"), Hi: expr.P("n"), Step: 1}),
		Nest{}.
			WithLoop(Loop{Var: "i", Lo: expr.Const(1), Hi: expr.P("n"), Step: 2}).
			WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.NewAdd(expr.V("i"), expr.P("m")), Step: 1}),
		Nest{}.
			WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.P("n"), Step: 1}).
			WithGuard(Guard{Kind: ModNeq, E: expr.V("i"), Mod: 3, Rem: 1}).
			WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.P("m"), Step: 1}),
		Nest{}.
			WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.P("n"), Step: 1}).
			WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.P("m"), Step: 1}).
			WithGuard(Guard{Kind: AffineGE, E: expr.NewSub(expr.V("j"), expr.V("i"))}),
	}
	for si, shape := range shapes {
		for nv := int64(0); nv <= 6; nv++ {
			for mv := int64(0); mv <= 5; mv++ {
				env := expr.EnvFromInts(map[string]int64{"n": nv, "m": mv})
				got := evalCount(t, shape, env)
				want := bruteCount(t, shape, env)
				if got != want {
					t.Errorf("shape %d n=%d m=%d: symbolic=%d brute=%d",
						si, nv, mv, got, want)
				}
			}
		}
	}
}

// Regression: affine guards on strided loops must respect stride phase —
// for i in {0,2,4,...,10}, the guard i > 0 keeps 5 points, not the 6
// lattice points of [1,11].
func TestStridedLoopWithGuardPhase(t *testing.T) {
	n := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.Const(11), Step: 2}).
		WithGuard(Guard{Kind: AffineGE, E: expr.NewSub(expr.V("i"), expr.Const(1))}) // i > 0
	if got := evalCount(t, n, nil); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	checkAgainstBrute(t, n, nil)

	// Parametric variant with a dependent inner loop.
	n2 := Nest{}.
		WithLoop(Loop{Var: "i", Lo: expr.Const(0), Hi: expr.P("n"), Step: 3}).
		WithGuard(Guard{Kind: AffineGE, E: expr.NewSub(expr.V("i"), expr.Const(2))}).
		WithLoop(Loop{Var: "j", Lo: expr.Const(0), Hi: expr.V("i"), Step: 1})
	for nv := int64(0); nv <= 14; nv++ {
		env := expr.EnvFromInts(map[string]int64{"n": nv})
		checkAgainstBrute(t, n2, env)
	}
}
