// Package polyhedra implements the polyhedral iteration-domain model at the
// heart of Mira's loop analysis (paper Sec. II-B, III-C2, III-C3).
//
// A statement's execution context is a Nest: the ordered chain of enclosing
// loops and branch guards. Each loop contributes affine bounds (possibly
// referencing outer loop variables and free parameters — the paper's
// Listing 2); each guard contributes either an affine inequality, which
// shrinks the polyhedron (Fig. 4b), or a congruence constraint, which
// punches periodic holes in it (Listing 5) and is handled exactly via the
// complement trick the paper describes:
//
//	Count(true branch) = Count(loop total) − Count(false branch).
//
// Count returns a symbolic expression for the number of lattice points.
// When bounds are concrete or the body is polynomial, internal/expr reduces
// it to a closed form (Faulhaber), so model evaluation is O(1) in the
// problem size; otherwise the expression retains Sum nodes that enumerate
// on evaluation.
//
// Non-convex domains — min() lower bounds or max() upper bounds, the
// paper's Listing 3 — are detected and reported as ErrNonConvex so the
// caller can request a user annotation.
package polyhedra

import (
	"errors"
	"fmt"

	"mira/internal/expr"
	"mira/internal/rational"
)

// ErrNonConvex reports a loop whose iteration domain is not a convex set
// (paper Fig. 4d). Such loops need a user annotation.
var ErrNonConvex = errors.New("polyhedra: iteration domain is not convex")

// ErrNotAffine reports bounds or guards outside the affine (SCoP) fragment.
var ErrNotAffine = errors.New("polyhedra: constraint is not affine")

// ErrUnsupported reports a structurally valid but unimplemented case.
var ErrUnsupported = errors.New("polyhedra: unsupported constraint form")

// Loop is one loop level of a nest. Bounds are inclusive and must be affine
// in outer loop variables and free parameters. Step must be positive;
// callers normalize downward-counting loops.
type Loop struct {
	Var  string
	Lo   expr.Expr
	Hi   expr.Expr
	Step int64
}

// GuardKind discriminates guard constraint forms.
type GuardKind int

// Guard kinds.
const (
	// AffineGE is E >= 0.
	AffineGE GuardKind = iota
	// ModEq is E % Mod == Rem.
	ModEq
	// ModNeq is E % Mod != Rem.
	ModNeq
	// Scale multiplies the count by a rational factor in [0,1]; it is how
	// br_frac annotations enter the domain.
	Scale
)

// Guard is a branch constraint applied inside the nest.
type Guard struct {
	Kind GuardKind
	E    expr.Expr    // affine expression (AffineGE, ModEq, ModNeq)
	Mod  int64        // modulus for ModEq/ModNeq
	Rem  int64        // residue for ModEq/ModNeq, normalized to [0, Mod)
	Frac rational.Rat // factor for Scale
}

// Entry is one element of a statement's context chain.
type Entry struct {
	Loop  *Loop
	Guard *Guard
}

// Nest is the ordered context of a statement: loops and guards from
// outermost to innermost.
type Nest struct {
	Entries []Entry
}

// WithLoop returns a nest extended by a loop level.
func (n Nest) WithLoop(l Loop) Nest {
	entries := make([]Entry, len(n.Entries), len(n.Entries)+1)
	copy(entries, n.Entries)
	return Nest{Entries: append(entries, Entry{Loop: &l})}
}

// WithGuard returns a nest extended by a guard.
func (n Nest) WithGuard(g Guard) Nest {
	entries := make([]Entry, len(n.Entries), len(n.Entries)+1)
	copy(entries, n.Entries)
	return Nest{Entries: append(entries, Entry{Guard: &g})}
}

// Loops returns the loop levels in order.
func (n Nest) Loops() []*Loop {
	var out []*Loop
	for _, e := range n.Entries {
		if e.Loop != nil {
			out = append(out, e.Loop)
		}
	}
	return out
}

// Depth returns the number of loop levels.
func (n Nest) Depth() int { return len(n.Loops()) }

// Vars returns the loop variable names in nest order.
func (n Nest) Vars() []string {
	var out []string
	for _, l := range n.Loops() {
		out = append(out, l.Var)
	}
	return out
}

// checkConvex rejects min() in lower bounds and max() in upper bounds —
// those describe unions of polyhedra, which break convexity (Listing 3 /
// Fig. 4d). max() in a lower bound and min() in an upper bound are fine
// (intersections preserve convexity).
func checkConvex(l *Loop) error {
	if containsKind(l.Lo, kindMin) {
		return fmt.Errorf("%w: loop %q lower bound %s uses min()", ErrNonConvex, l.Var, l.Lo)
	}
	if containsKind(l.Hi, kindMax) {
		return fmt.Errorf("%w: loop %q upper bound %s uses max()", ErrNonConvex, l.Var, l.Hi)
	}
	return nil
}

type exprKind int

const (
	kindMin exprKind = iota
	kindMax
)

func containsKind(e expr.Expr, k exprKind) bool {
	switch x := e.(type) {
	case expr.Min:
		if k == kindMin {
			return true
		}
		return containsKind(x.A, k) || containsKind(x.B, k)
	case expr.Max:
		if k == kindMax {
			return true
		}
		return containsKind(x.A, k) || containsKind(x.B, k)
	case expr.Add:
		for _, t := range x.Terms {
			if containsKind(t, k) {
				return true
			}
		}
	case expr.Mul:
		for _, f := range x.Factors {
			if containsKind(f, k) {
				return true
			}
		}
	case expr.FloorDiv:
		return containsKind(x.X, k)
	case expr.Sum:
		return containsKind(x.Lo, k) || containsKind(x.Hi, k) || containsKind(x.Body, k)
	}
	return false
}

// Count returns the symbolic number of lattice points in the nest's
// iteration domain: the execution count of a statement at the innermost
// position of the chain.
func Count(n Nest) (expr.Expr, error) {
	return countLevels(n, len(n.Entries))
}

// CountPrefix returns the count for the first k entries of the chain
// (contexts of loop headers at intermediate depths).
func CountPrefix(n Nest, k int) (expr.Expr, error) {
	if k < 0 || k > len(n.Entries) {
		return nil, fmt.Errorf("polyhedra: prefix %d out of range", k)
	}
	return countLevels(Nest{Entries: n.Entries[:k]}, k)
}

// countLevels computes the count over the first k entries.
func countLevels(n Nest, k int) (expr.Expr, error) {
	entries := n.Entries[:k]
	// Collect loops in order and attach each guard to the deepest loop
	// variable it references.
	var loops []*Loop
	guardsFor := map[int][]*Guard{} // loop index -> guards
	var preGuards []*Guard          // guards referencing no loop vars
	var scales []rational.Rat

	for _, e := range entries {
		if e.Loop != nil {
			if err := checkConvex(e.Loop); err != nil {
				return nil, err
			}
			if e.Loop.Step <= 0 {
				return nil, fmt.Errorf("%w: loop %q has non-positive step %d",
					ErrUnsupported, e.Loop.Var, e.Loop.Step)
			}
			loops = append(loops, e.Loop)
			continue
		}
		g := e.Guard
		if g.Kind == Scale {
			scales = append(scales, g.Frac)
			continue
		}
		idx := -1
		for i, l := range loops {
			if expr.DependsOn(g.E, l.Var) {
				idx = i
			}
		}
		if idx >= 0 {
			guardsFor[idx] = append(guardsFor[idx], g)
		} else {
			preGuards = append(preGuards, g)
		}
	}

	// Guards that reference no loop variable must be decidable now.
	for _, g := range preGuards {
		v, err := foldGuard(g)
		if err != nil {
			return nil, err
		}
		if !v {
			return expr.Const(0), nil
		}
	}

	// Fold from the innermost loop outward.
	count := expr.Expr(expr.Const(1))
	for i := len(loops) - 1; i >= 0; i-- {
		var err error
		count, err = countLoopLevel(loops, i, guardsFor[i], count)
		if err != nil {
			return nil, err
		}
	}
	for _, s := range scales {
		count = expr.NewMul(expr.ConstRat(s), count)
	}
	return count, nil
}

// foldGuard decides a guard that references only parameters if it is
// constant; otherwise the static model cannot resolve it.
func foldGuard(g *Guard) (bool, error) {
	c, ok := expr.ConstVal(g.E)
	if !ok {
		return false, fmt.Errorf("%w: branch condition %s depends on free parameters; "+
			"annotate with br_frac or br_count", ErrUnsupported, g.E)
	}
	switch g.Kind {
	case AffineGE:
		return c.Sign() >= 0, nil
	case ModEq, ModNeq:
		cv, okInt := c.Int64()
		if !okInt {
			return false, fmt.Errorf("%w: non-integer mod operand %s", ErrUnsupported, c)
		}
		r := ((cv % g.Mod) + g.Mod) % g.Mod
		if g.Kind == ModEq {
			return r == g.Rem, nil
		}
		return r != g.Rem, nil
	}
	return false, fmt.Errorf("%w: guard kind %d", ErrUnsupported, g.Kind)
}

// countLoopLevel computes sum over loop i's range (with its guards) of the
// inner count.
func countLoopLevel(loops []*Loop, i int, guards []*Guard, inner expr.Expr) (expr.Expr, error) {
	l := loops[i]

	// Guards on strided loops must respect the stride's phase: tightening
	// v's bounds directly would admit lattice points between iteration
	// points. Rewrite v = lo + step*t and count over the unit-stride t.
	if l.Step > 1 && len(guards) > 0 {
		t := freshVar(l.Var)
		vExpr := expr.NewAdd(l.Lo, expr.NewMul(expr.Const(l.Step), expr.P(t)))
		tLoop := &Loop{
			Var:  t,
			Lo:   expr.Const(0),
			Hi:   expr.NewFloorDiv(expr.NewSub(l.Hi, l.Lo), rational.FromInt(l.Step)),
			Step: 1,
		}
		newGuards := make([]*Guard, 0, len(guards))
		for _, g := range guards {
			ng := *g
			ng.E = expr.Substitute(g.E, l.Var, vExpr)
			newGuards = append(newGuards, &ng)
		}
		newInner := expr.Substitute(inner, l.Var, vExpr)
		newLoops := append(append([]*Loop{}, loops[:i]...), tLoop)
		return countLoopLevel(newLoops, i, newGuards, newInner)
	}

	lo, hi := l.Lo, l.Hi
	var mods []*Guard

	// Tighten bounds with affine guards; set aside congruences.
	for _, g := range guards {
		switch g.Kind {
		case AffineGE:
			nlo, nhi, err := tightenBounds(g.E, l.Var, lo, hi)
			if err != nil {
				return nil, err
			}
			lo, hi = nlo, nhi
		case ModEq, ModNeq:
			if l.Step != 1 {
				return nil, fmt.Errorf("%w: congruence guard on strided loop %q",
					ErrUnsupported, l.Var)
			}
			mods = append(mods, g)
		default:
			return nil, fmt.Errorf("%w: guard kind %d at loop level", ErrUnsupported, g.Kind)
		}
	}

	bodyDependsOnVar := expr.DependsOn(inner, l.Var)

	if len(mods) > 0 {
		if bodyDependsOnVar {
			// Enumerate: holes plus a var-dependent body resist closed forms.
			return sumWithModsEnumerated(l, lo, hi, mods, inner)
		}
		trips, err := tripsWithMods(l, lo, hi, mods, loops[:i])
		if err != nil {
			return nil, err
		}
		return expr.NewMul(trips, inner), nil
	}

	if !bodyDependsOnVar {
		trips := tripCount(lo, hi, l.Step, loops[:i])
		return expr.NewMul(trips, inner), nil
	}

	// Body depends on the loop variable: build a summation.
	if l.Step == 1 {
		inner = resolveNonNegGuards(inner, loops[:i+1])
		return expr.NewSum(l.Var, lo, hi, inner), nil
	}
	// Strided with dependent body: substitute v = lo + step*t.
	t := freshVar(l.Var)
	v := expr.NewAdd(lo, expr.NewMul(expr.Const(l.Step), expr.V(t)))
	body := expr.Substitute(inner, l.Var, v)
	tHi := expr.NewFloorDiv(expr.NewSub(hi, lo), rational.FromInt(l.Step))
	return expr.NewSum(t, expr.Const(0), tHi, body), nil
}

func freshVar(base string) string { return "__" + base + "_t" }

// tripCount builds max(0, floor((hi-lo)/step)+1), attempting to discharge
// the max(0, ·) guard by proving the range non-empty over the outer box —
// that unblocks Faulhaber closed forms in enclosing summations.
func tripCount(lo, hi expr.Expr, step int64, outer []*Loop) expr.Expr {
	span := expr.NewSub(hi, lo)
	var raw expr.Expr
	if step == 1 {
		raw = expr.NewAdd(span, expr.Const(1))
	} else {
		raw = expr.NewAdd(expr.NewFloorDiv(span, rational.FromInt(step)), expr.Const(1))
	}
	if proveNonNeg(span, outer) {
		return raw
	}
	return expr.NewMax(expr.Const(0), raw)
}

// resolveNonNegGuards rewrites max(0, E) subtrees to E when E is provably
// nonnegative over the outer domain box.
func resolveNonNegGuards(e expr.Expr, outer []*Loop) expr.Expr {
	switch x := e.(type) {
	case expr.Max:
		if expr.IsZero(x.A) && proveNonNeg(x.B, outer) {
			return resolveNonNegGuards(x.B, outer)
		}
		if expr.IsZero(x.B) && proveNonNeg(x.A, outer) {
			return resolveNonNegGuards(x.A, outer)
		}
		return expr.NewMax(resolveNonNegGuards(x.A, outer), resolveNonNegGuards(x.B, outer))
	case expr.Add:
		terms := make([]expr.Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = resolveNonNegGuards(t, outer)
		}
		return expr.NewAdd(terms...)
	case expr.Mul:
		fs := make([]expr.Expr, len(x.Factors))
		for i, f := range x.Factors {
			fs[i] = resolveNonNegGuards(f, outer)
		}
		return expr.NewMul(fs...)
	}
	return e
}
