package polyhedra

import (
	"fmt"
	"sort"

	"mira/internal/expr"
	"mira/internal/rational"
)

// affineForm is a linear form c0 + sum coeff[v]*v over loop variables and
// parameters.
type affineForm struct {
	c      rational.Rat
	coeffs map[string]rational.Rat
}

func (a affineForm) coeff(v string) rational.Rat {
	if r, ok := a.coeffs[v]; ok {
		return r
	}
	return rational.Zero
}

// toAffine decomposes e into an affine form. It fails for products of
// symbols, floors, mins, maxes, and sums.
func toAffine(e expr.Expr) (affineForm, error) {
	a := affineForm{c: rational.Zero, coeffs: map[string]rational.Rat{}}
	if err := addAffine(&a, e, rational.One); err != nil {
		return affineForm{}, err
	}
	return a, nil
}

func addAffine(a *affineForm, e expr.Expr, scale rational.Rat) error {
	switch x := e.(type) {
	case expr.Num:
		a.c = a.c.Add(x.Val.Mul(scale))
		return nil
	case expr.Param:
		a.coeffs[x.Name] = a.coeff(x.Name).Add(scale)
		return nil
	case expr.Var:
		a.coeffs[x.Name] = a.coeff(x.Name).Add(scale)
		return nil
	case expr.Add:
		for _, t := range x.Terms {
			if err := addAffine(a, t, scale); err != nil {
				return err
			}
		}
		return nil
	case expr.Mul:
		// Exactly one non-constant factor allowed.
		c := scale
		var sym expr.Expr
		for _, f := range x.Factors {
			if n, ok := f.(expr.Num); ok {
				c = c.Mul(n.Val)
				continue
			}
			if sym != nil {
				return fmt.Errorf("%w: product of symbols in %s", ErrNotAffine, e)
			}
			sym = f
		}
		if sym == nil {
			a.c = a.c.Add(c)
			return nil
		}
		return addAffine(a, sym, c)
	}
	return fmt.Errorf("%w: %s", ErrNotAffine, e)
}

// toExpr converts the affine form back to an expression. Symbols render as
// params; the expression engine treats vars and params identically during
// evaluation, and summation binding is by name.
func (a affineForm) toExpr() expr.Expr {
	// NewAdd canonicalizes term order, but build the terms in sorted
	// symbol order anyway so this never silently depends on it.
	vars := make([]string, 0, len(a.coeffs))
	for v := range a.coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	terms := []expr.Expr{expr.ConstRat(a.c)}
	for _, v := range vars {
		if c := a.coeffs[v]; c.Sign() != 0 {
			terms = append(terms, expr.NewMul(expr.ConstRat(c), expr.P(v)))
		}
	}
	return expr.NewAdd(terms...)
}

// tightenBounds intersects the affine constraint E >= 0 with the range of
// variable v, returning updated inclusive bounds:
//
//	a*v + rest >= 0, a > 0  =>  v >= ceil(-rest / a)
//	a*v + rest >= 0, a < 0  =>  v <= floor(rest / -a)
//
// The ceil/floor are exact for integer-valued affine rest with integer a;
// rational coefficients route through FloorDiv expressions.
func tightenBounds(E expr.Expr, v string, lo, hi expr.Expr) (expr.Expr, expr.Expr, error) {
	a, err := toAffine(E)
	if err != nil {
		return nil, nil, err
	}
	av := a.coeff(v)
	if av.Sign() == 0 {
		return nil, nil, fmt.Errorf("%w: guard %s does not constrain %q", ErrUnsupported, E, v)
	}
	rest := affineForm{c: a.c, coeffs: map[string]rational.Rat{}}
	for name, c := range a.coeffs {
		if name != v {
			rest.coeffs[name] = c
		}
	}
	restE := rest.toExpr()
	if av.Sign() > 0 {
		// v >= -rest/a  =>  v >= ceil(-rest/a) = -floor(rest/a) when a
		// divides; use -FloorDiv(rest, a) == ceil(-rest/a) identity:
		// ceil(x/d) == -floor(-x/d).
		bound := ceilDivExpr(expr.NewNeg(restE), av)
		return expr.NewMax(lo, bound), hi, nil
	}
	bound := floorDivExpr(restE, av.Neg())
	return lo, expr.NewMin(hi, bound), nil
}

// floorDivExpr builds floor(x/d), folding when d == 1.
func floorDivExpr(x expr.Expr, d rational.Rat) expr.Expr {
	if d.Equal(rational.One) {
		return x
	}
	return expr.NewFloorDiv(x, d)
}

// ceilDivExpr builds ceil(x/d) == -floor(-x/d).
func ceilDivExpr(x expr.Expr, d rational.Rat) expr.Expr {
	if d.Equal(rational.One) {
		return x
	}
	return expr.NewNeg(expr.NewFloorDiv(expr.NewNeg(x), d))
}

// proveNonNeg attempts to show e >= 0 over the box described by the outer
// loops, assuming free parameters are nonnegative (problem sizes). The
// proof substitutes each loop variable by the endpoint minimizing the
// affine form (lower bound for positive coefficients, upper for negative),
// repeating until no loop variables remain, then requires every parameter
// coefficient and the constant to be nonnegative. Sound but incomplete:
// failures fall back to explicit max(0, ·) guards.
func proveNonNeg(e expr.Expr, outer []*Loop) bool {
	byVar := map[string]*Loop{}
	for _, l := range outer {
		byVar[l.Var] = l
	}
	cur := e
	for iter := 0; iter <= len(outer)+1; iter++ {
		a, err := toAffine(cur)
		if err != nil {
			return false
		}
		// Find the innermost loop var still present; substituting inner
		// vars first keeps remaining bounds expressible in outer vars.
		var pick *Loop
		for i := len(outer) - 1; i >= 0; i-- {
			if a.coeff(outer[i].Var).Sign() != 0 {
				pick = outer[i]
				break
			}
		}
		if pick == nil {
			// Only params and constant remain.
			if a.c.Sign() < 0 {
				return false
			}
			for _, c := range a.coeffs {
				if c.Sign() < 0 {
					return false
				}
			}
			return true
		}
		c := a.coeff(pick.Var)
		var repl expr.Expr
		if c.Sign() > 0 {
			repl = pick.Lo
		} else {
			repl = pick.Hi
		}
		// Bounds containing min/max would not be affine; bail out.
		cur = expr.Substitute(cur, pick.Var, repl)
	}
	return false
}

// tripsWithMods counts points of a unit-step loop over [lo,hi] subject to
// congruence guards, using the exact multiples-counting identity
//
//	#{v in [lo,hi] : v ≡ r (mod m)} = floor((hi-r)/m) - floor((lo-1-r)/m)
//
// and the paper's complement trick for != congruences.
func tripsWithMods(l *Loop, lo, hi expr.Expr, mods []*Guard, outer []*Loop) (expr.Expr, error) {
	total := tripCount(lo, hi, 1, outer)
	if len(mods) == 1 {
		g := mods[0]
		cong, err := congruentCount(g, l.Var, lo, hi)
		if err != nil {
			return nil, err
		}
		if g.Kind == ModEq {
			return cong, nil
		}
		return expr.NewSub(total, cong), nil
	}
	return nil, fmt.Errorf("%w: multiple congruence guards on loop %q", ErrUnsupported, l.Var)
}

// congruentCount counts v in [lo,hi] with E(v) ≡ Rem (mod Mod), where E is
// affine with coefficient exactly 1 on v (forms like v, v+c, v+i+c).
func congruentCount(g *Guard, v string, lo, hi expr.Expr) (expr.Expr, error) {
	a, err := toAffine(g.E)
	if err != nil {
		return nil, err
	}
	if !a.coeff(v).Equal(rational.One) {
		return nil, fmt.Errorf("%w: congruence %s needs unit coefficient on %q",
			ErrUnsupported, g.E, v)
	}
	if g.Mod <= 0 {
		return nil, fmt.Errorf("%w: modulus %d", ErrUnsupported, g.Mod)
	}
	// E = v + rest; E ≡ Rem  <=>  v ≡ Rem - rest (mod m). rest must be a
	// constant for a closed form; otherwise enumeration handles it.
	rest := affineForm{c: a.c, coeffs: map[string]rational.Rat{}}
	for name, c := range a.coeffs {
		if name != v {
			rest.coeffs[name] = c
		}
	}
	if len(rest.coeffs) != 0 {
		return nil, fmt.Errorf("%w: congruence %s mixes loop variables", ErrUnsupported, g.E)
	}
	rc, ok := rest.c.Int64()
	if !ok {
		return nil, fmt.Errorf("%w: non-integer congruence offset %s", ErrUnsupported, rest.c)
	}
	m := g.Mod
	r := (((g.Rem - rc) % m) + m) % m
	// floor((hi-r)/m) - floor((lo-1-r)/m)
	mRat := rational.FromInt(m)
	hiPart := expr.NewFloorDiv(expr.NewSub(hi, expr.Const(r)), mRat)
	loPart := expr.NewFloorDiv(expr.NewSub(expr.NewSub(lo, expr.Const(1)), expr.Const(r)), mRat)
	count := expr.NewSub(hiPart, loPart)
	return expr.NewMax(expr.Const(0), count), nil
}

// sumWithModsEnumerated handles the rare combination of congruence guards
// and a var-dependent body by an explicit summation with an indicator
// rewritten through the complement form: indicator of v ≡ r (mod m) is
// floor((v-r)/m) - floor((v-1-r)/m).
func sumWithModsEnumerated(l *Loop, lo, hi expr.Expr, mods []*Guard, inner expr.Expr) (expr.Expr, error) {
	body := inner
	for _, g := range mods {
		a, err := toAffine(g.E)
		if err != nil {
			return nil, err
		}
		if !a.coeff(l.Var).Equal(rational.One) {
			return nil, fmt.Errorf("%w: congruence %s needs unit coefficient on %q",
				ErrUnsupported, g.E, l.Var)
		}
		offset, ok := a.c.Int64()
		if !ok || len(a.coeffs) > 1 {
			return nil, fmt.Errorf("%w: congruence %s too complex", ErrUnsupported, g.E)
		}
		m := g.Mod
		r := (((g.Rem - offset) % m) + m) % m
		mRat := rational.FromInt(m)
		vE := expr.V(l.Var)
		ind := expr.NewSub(
			expr.NewFloorDiv(expr.NewSub(vE, expr.Const(r)), mRat),
			expr.NewFloorDiv(expr.NewSub(expr.NewSub(vE, expr.Const(1)), expr.Const(r)), mRat),
		)
		if g.Kind == ModNeq {
			ind = expr.NewSub(expr.Const(1), ind)
		}
		body = expr.NewMul(ind, body)
	}
	return expr.NewSum(l.Var, lo, hi, body), nil
}
