package objfile

import (
	"bytes"
	"math/rand"
	"testing"

	"mira/internal/dwarfline"
	"mira/internal/ir"
)

func sampleFile() *File {
	var lb dwarfline.Builder
	lb.Add(0, 1, 1)
	lb.Add(2, 3, 5)
	return &File{
		SourceName: "sample.c",
		Text: []ir.Instr{
			{Op: ir.PUSH, Rd: ir.NoReg, Rs1: ir.NoReg, Rs2: ir.NoReg},
			{Op: ir.MOVRI, Rd: 0, Rs1: ir.NoReg, Rs2: ir.NoReg, Imm: 42},
			{Op: ir.RETI, Rd: ir.NoReg, Rs1: 0, Rs2: ir.NoReg},
			{Op: ir.ADDSD, Rd: 2, Rs1: 0, Rs2: 1},
			{Op: ir.RETF, Rd: ir.NoReg, Rs1: 2, Rs2: ir.NoReg},
		},
		Syms: []Symbol{
			{Name: "main", Start: 0, Count: 3, RegCount: 1, Ret: KindInt},
			{Name: "lib::f", Start: 3, Count: 2, RegCount: 3,
				Params: []ParamKind{KindFloat, KindFloat}, Ret: KindFloat, Extern: true},
		},
		Data: []DataEntry{
			{Name: "g", Addr: 0, Size: 1, Init: []uint64{7}},
			{Name: "arr", Addr: 1, Size: 8},
		},
		MemWords: 9,
		Line:     lb.Table(),
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.SourceName != f.SourceName || g.MemWords != f.MemWords {
		t.Errorf("meta mismatch: %+v", g)
	}
	if len(g.Text) != len(f.Text) {
		t.Fatalf("text len = %d", len(g.Text))
	}
	for i := range f.Text {
		if g.Text[i] != f.Text[i] {
			t.Errorf("instr %d = %+v, want %+v", i, g.Text[i], f.Text[i])
		}
	}
	if len(g.Syms) != 2 || g.Syms[1].Name != "lib::f" || !g.Syms[1].Extern {
		t.Errorf("syms = %+v", g.Syms)
	}
	if len(g.Syms[1].Params) != 2 || g.Syms[1].Params[0] != KindFloat {
		t.Errorf("params = %+v", g.Syms[1].Params)
	}
	if len(g.Data) != 2 || g.Data[0].Init[0] != 7 || g.Data[1].Size != 8 {
		t.Errorf("data = %+v", g.Data)
	}
	if g.Line == nil || len(g.Line.Rows) != 2 {
		t.Errorf("line table = %+v", g.Line)
	}
}

func TestLookupHelpers(t *testing.T) {
	f := sampleFile()
	sym, ok := f.LookupSym("lib::f")
	if !ok || sym.Start != 3 {
		t.Errorf("LookupSym = %+v/%t", sym, ok)
	}
	if _, ok := f.LookupSym("nope"); ok {
		t.Error("found nonexistent symbol")
	}
	at, ok := f.SymAt(4)
	if !ok || at.Name != "lib::f" {
		t.Errorf("SymAt(4) = %+v", at)
	}
	if _, ok := f.SymAt(99); ok {
		t.Error("SymAt past end succeeded")
	}
	text := f.FuncText(sym)
	if len(text) != 2 || text[0].Op != ir.ADDSD {
		t.Errorf("FuncText = %+v", text)
	}
}

func TestDecodeErrors(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
	// Truncations at every prefix length must error, not panic.
	for n := 0; n < len(good)-1; n += 7 {
		if _, err := Decode(good[:n]); err == nil {
			t.Errorf("truncated to %d bytes accepted", n)
		}
	}
}

func TestInvalidOpcodeRejected(t *testing.T) {
	f := sampleFile()
	f.Text[1].Op = ir.Op(60000)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf.Bytes()); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte{}, data...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		// Must never panic; errors are fine.
		Decode(mut)
	}
}
