// Package objfile implements Mira's ELF-like object file container.
//
// The compiler serializes its output into this format and every downstream
// consumer — the disassembler feeding the binary AST, the bridge, and the
// virtual machine — works from the decoded bytes, not from in-memory
// compiler structures. That separation mirrors the paper's pipeline, where
// ROSE disassembles an on-disk ELF produced by an ordinary compiler.
//
// Layout (all little-endian):
//
//	magic "MIRA", version u16, section count u16
//	section table: {name string, offset u64, size u64} ...
//	sections: .text, .symtab, .data, .debug_line, .meta
//
// Strings are uvarint-length-prefixed UTF-8.
package objfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mira/internal/dwarfline"
	"mira/internal/ir"
)

// Magic identifies Mira object files.
var Magic = [4]byte{'M', 'I', 'R', 'A'}

// Version is the current format version.
const Version uint16 = 1

// InstrBytes is the fixed encoded instruction size.
const InstrBytes = 24

// ParamKind describes a parameter or return slot type.
type ParamKind uint8

// Parameter kinds.
const (
	KindVoid  ParamKind = iota
	KindInt             // integers and pointers
	KindFloat           // doubles
)

func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "double"
	}
	return "void"
}

// Symbol describes one function in .text.
type Symbol struct {
	Name     string // qualified source name, e.g. "A::foo" or "main"
	Start    uint64 // first instruction index in .text
	Count    uint64 // number of instructions
	RegCount uint32 // virtual registers used
	Params   []ParamKind
	Ret      ParamKind
	Extern   bool // library function: body invisible to static analysis
}

// End returns one past the last instruction index.
func (s Symbol) End() uint64 { return s.Start + s.Count }

// DataEntry describes one global memory object.
type DataEntry struct {
	Name string
	Addr uint64   // word address
	Size uint64   // words
	Init []uint64 // initial word values; len 0 (zeroed) or Size
}

// File is a decoded object file.
type File struct {
	SourceName string
	Text       []ir.Instr
	Syms       []Symbol
	Data       []DataEntry
	MemWords   uint64 // static memory size (globals); heap begins here
	Line       *dwarfline.Table
}

// LookupSym finds a symbol by name.
func (f *File) LookupSym(name string) (*Symbol, bool) {
	for i := range f.Syms {
		if f.Syms[i].Name == name {
			return &f.Syms[i], true
		}
	}
	return nil, false
}

// SymAt returns the symbol containing instruction index addr.
func (f *File) SymAt(addr uint64) (*Symbol, bool) {
	for i := range f.Syms {
		if addr >= f.Syms[i].Start && addr < f.Syms[i].End() {
			return &f.Syms[i], true
		}
	}
	return nil, false
}

// FuncText returns the instruction slice of sym.
func (f *File) FuncText(sym *Symbol) []ir.Instr {
	return f.Text[sym.Start:sym.End()]
}

// ---------------------------------------------------------------------------
// Encoding

type countingWriter struct {
	w io.Writer
	n uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

func putString(buf *bytes.Buffer, s string) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	buf.Write(tmp[:n])
	buf.WriteString(s)
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

// Encode serializes the file.
func (f *File) Encode(w io.Writer) error {
	text := encodeText(f.Text)
	symtab := encodeSyms(f.Syms)
	data := encodeData(f.Data)
	var line []byte
	if f.Line != nil {
		line = f.Line.Encode()
	}
	meta := encodeMeta(f)

	sections := []struct {
		name string
		body []byte
	}{
		{".text", text},
		{".symtab", symtab},
		{".data", data},
		{".debug_line", line},
		{".meta", meta},
	}

	var hdr bytes.Buffer
	hdr.Write(Magic[:])
	if err := binary.Write(&hdr, binary.LittleEndian, Version); err != nil {
		return err
	}
	if err := binary.Write(&hdr, binary.LittleEndian, uint16(len(sections))); err != nil {
		return err
	}
	// Section table with offsets relative to file start.
	var table bytes.Buffer
	offset := uint64(0)
	var tableSize uint64
	// Two passes: the table size depends on name lengths only, so compute
	// it first.
	for _, s := range sections {
		var tmp bytes.Buffer
		putString(&tmp, s.name)
		tableSize += uint64(tmp.Len()) + 16
	}
	base := uint64(hdr.Len()) + tableSize
	for _, s := range sections {
		putString(&table, s.name)
		if err := binary.Write(&table, binary.LittleEndian, base+offset); err != nil {
			return err
		}
		if err := binary.Write(&table, binary.LittleEndian, uint64(len(s.body))); err != nil {
			return err
		}
		offset += uint64(len(s.body))
	}
	cw := &countingWriter{w: w}
	if _, err := cw.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := cw.Write(table.Bytes()); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := cw.Write(s.body); err != nil {
			return err
		}
	}
	return nil
}

func encodeText(instrs []ir.Instr) []byte {
	out := make([]byte, 0, len(instrs)*InstrBytes)
	var b [InstrBytes]byte
	for _, in := range instrs {
		binary.LittleEndian.PutUint16(b[0:], uint16(in.Op))
		binary.LittleEndian.PutUint16(b[2:], 0)
		binary.LittleEndian.PutUint32(b[4:], uint32(in.Rd))
		binary.LittleEndian.PutUint32(b[8:], uint32(in.Rs1))
		binary.LittleEndian.PutUint32(b[12:], uint32(in.Rs2))
		binary.LittleEndian.PutUint64(b[16:], uint64(in.Imm))
		out = append(out, b[:]...)
	}
	return out
}

func encodeSyms(syms []Symbol) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(syms)))
	for _, s := range syms {
		putString(&buf, s.Name)
		putUvarint(&buf, s.Start)
		putUvarint(&buf, s.Count)
		putUvarint(&buf, uint64(s.RegCount))
		putUvarint(&buf, uint64(len(s.Params)))
		for _, p := range s.Params {
			buf.WriteByte(byte(p))
		}
		buf.WriteByte(byte(s.Ret))
		if s.Extern {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	return buf.Bytes()
}

func encodeData(data []DataEntry) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(data)))
	for _, d := range data {
		putString(&buf, d.Name)
		putUvarint(&buf, d.Addr)
		putUvarint(&buf, d.Size)
		putUvarint(&buf, uint64(len(d.Init)))
		for _, v := range d.Init {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

func encodeMeta(f *File) []byte {
	var buf bytes.Buffer
	putString(&buf, f.SourceName)
	putUvarint(&buf, f.MemWords)
	return buf.Bytes()
}

// ---------------------------------------------------------------------------
// Decoding

type reader struct {
	b   []byte
	off int
}

func (r *reader) remain() int { return len(r.b) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if r.remain() < n {
		return nil, fmt.Errorf("objfile: truncated (need %d bytes, have %d)", n, r.remain())
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("objfile: bad uvarint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Decode parses an object file.
func Decode(data []byte) (*File, error) {
	r := &reader{b: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(magic, Magic[:]) {
		return nil, fmt.Errorf("objfile: bad magic %q", magic)
	}
	verB, err := r.bytes(2)
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(verB); v != Version {
		return nil, fmt.Errorf("objfile: unsupported version %d", v)
	}
	cntB, err := r.bytes(2)
	if err != nil {
		return nil, err
	}
	nsec := int(binary.LittleEndian.Uint16(cntB))
	type sec struct {
		name string
		off  uint64
		size uint64
	}
	secs := make([]sec, nsec)
	for i := range secs {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		offB, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		sizeB, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		secs[i] = sec{name, binary.LittleEndian.Uint64(offB), binary.LittleEndian.Uint64(sizeB)}
	}
	body := func(name string) ([]byte, error) {
		for _, s := range secs {
			if s.name == name {
				if s.off+s.size > uint64(len(data)) {
					return nil, fmt.Errorf("objfile: section %s out of bounds", name)
				}
				return data[s.off : s.off+s.size], nil
			}
		}
		return nil, fmt.Errorf("objfile: missing section %s", name)
	}

	f := &File{}
	textB, err := body(".text")
	if err != nil {
		return nil, err
	}
	if f.Text, err = decodeText(textB); err != nil {
		return nil, err
	}
	symB, err := body(".symtab")
	if err != nil {
		return nil, err
	}
	if f.Syms, err = decodeSyms(symB); err != nil {
		return nil, err
	}
	dataB, err := body(".data")
	if err != nil {
		return nil, err
	}
	if f.Data, err = decodeData(dataB); err != nil {
		return nil, err
	}
	lineB, err := body(".debug_line")
	if err != nil {
		return nil, err
	}
	if len(lineB) > 0 {
		if f.Line, err = dwarfline.Decode(lineB); err != nil {
			return nil, err
		}
	}
	metaB, err := body(".meta")
	if err != nil {
		return nil, err
	}
	mr := &reader{b: metaB}
	if f.SourceName, err = mr.str(); err != nil {
		return nil, err
	}
	if f.MemWords, err = mr.uvarint(); err != nil {
		return nil, err
	}
	return f, nil
}

func decodeText(b []byte) ([]ir.Instr, error) {
	if len(b)%InstrBytes != 0 {
		return nil, fmt.Errorf("objfile: .text size %d not a multiple of %d", len(b), InstrBytes)
	}
	out := make([]ir.Instr, len(b)/InstrBytes)
	for i := range out {
		p := b[i*InstrBytes:]
		out[i] = ir.Instr{
			Op:  ir.Op(binary.LittleEndian.Uint16(p[0:])),
			Rd:  int32(binary.LittleEndian.Uint32(p[4:])),
			Rs1: int32(binary.LittleEndian.Uint32(p[8:])),
			Rs2: int32(binary.LittleEndian.Uint32(p[12:])),
			Imm: int64(binary.LittleEndian.Uint64(p[16:])),
		}
		if !out[i].Op.Valid() {
			return nil, fmt.Errorf("objfile: invalid opcode %d at instruction %d", out[i].Op, i)
		}
	}
	return out, nil
}

func decodeSyms(b []byte) ([]Symbol, error) {
	r := &reader{b: b}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	syms := make([]Symbol, n)
	for i := range syms {
		s := &syms[i]
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Start, err = r.uvarint(); err != nil {
			return nil, err
		}
		if s.Count, err = r.uvarint(); err != nil {
			return nil, err
		}
		rc, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		s.RegCount = uint32(rc)
		np, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		pb, err := r.bytes(int(np))
		if err != nil {
			return nil, err
		}
		s.Params = make([]ParamKind, np)
		for j := range s.Params {
			s.Params[j] = ParamKind(pb[j])
		}
		rb, err := r.bytes(2)
		if err != nil {
			return nil, err
		}
		s.Ret = ParamKind(rb[0])
		s.Extern = rb[1] != 0
	}
	return syms, nil
}

func decodeData(b []byte) ([]DataEntry, error) {
	r := &reader{b: b}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]DataEntry, n)
	for i := range out {
		d := &out[i]
		if d.Name, err = r.str(); err != nil {
			return nil, err
		}
		if d.Addr, err = r.uvarint(); err != nil {
			return nil, err
		}
		if d.Size, err = r.uvarint(); err != nil {
			return nil, err
		}
		ni, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ni > 0 {
			ib, err := r.bytes(int(ni) * 8)
			if err != nil {
				return nil, err
			}
			d.Init = make([]uint64, ni)
			for j := range d.Init {
				d.Init[j] = binary.LittleEndian.Uint64(ib[j*8:])
			}
		}
	}
	return out, nil
}
