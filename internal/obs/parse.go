package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Exposition is a parsed OpenMetrics text payload: sample name → value.
// Sample names carry their suffixes (_total, _count, _sum), so a counter
// family "x" appears as Samples["x_total"].
type Exposition struct {
	Samples map[string]float64
	// Types maps each declared family name to its type string.
	Types map[string]string
}

// Value returns a sample by exact name (0 when absent).
func (e *Exposition) Value(name string) float64 { return e.Samples[name] }

// Parse reads an OpenMetrics text exposition and validates the subset of
// the format Mira emits. It is the lint the CI gate runs against a live
// /metrics scrape, so it is strict where the spec is strict:
//
//   - every sample must belong to a family declared by a preceding
//     "# TYPE" line, and families may not interleave;
//   - a family may declare TYPE (and HELP) at most once;
//   - counter samples must use the _total suffix and be non-negative;
//   - summary samples must use the _count or _sum suffix, with _count a
//     non-negative integer;
//   - sample values must parse as floats, with no duplicate sample names;
//   - the payload must end with exactly one "# EOF" line.
func Parse(text string) (*Exposition, error) {
	exp := &Exposition{Samples: map[string]float64{}, Types: map[string]string{}}
	helped := map[string]bool{}
	sawEOF := false
	current := "" // family the sample block belongs to
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("openmetrics: line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("openmetrics: line %d: TYPE needs a type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "summary", "histogram", "info", "stateset", "unknown", "gaugehistogram":
				default:
					return nil, fmt.Errorf("openmetrics: line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", lineNo, name)
				}
				exp.Types[name] = typ
				current = name
			case "HELP":
				if helped[name] {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate HELP for %q", lineNo, name)
				}
				helped[name] = true
				if current != name {
					if _, declared := exp.Types[name]; !declared {
						return nil, fmt.Errorf("openmetrics: line %d: HELP for undeclared family %q", lineNo, name)
					}
				}
			case "UNIT":
				// accepted, unchecked
			default:
				return nil, fmt.Errorf("openmetrics: line %d: unknown comment %q", lineNo, fields[1])
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp].
		rest := line
		name := rest
		if cut := strings.IndexAny(rest, "{ "); cut >= 0 {
			name = rest[:cut]
		}
		if !nameRE.MatchString(name) {
			return nil, fmt.Errorf("openmetrics: line %d: invalid sample name %q", lineNo, name)
		}
		rest = strings.TrimPrefix(rest, name)
		if strings.HasPrefix(rest, "{") {
			close := strings.Index(rest, "}")
			if close < 0 {
				return nil, fmt.Errorf("openmetrics: line %d: unterminated label set", lineNo)
			}
			rest = rest[close+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("openmetrics: line %d: want `name value [timestamp]`, got %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: bad value %q: %v", lineNo, fields[0], err)
		}
		fam, suffix, err := sampleFamily(name, exp.Types)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
		}
		if fam != current {
			return nil, fmt.Errorf("openmetrics: line %d: sample %q outside its family block (current %q)", lineNo, name, current)
		}
		switch exp.Types[fam] {
		case "counter":
			if suffix != "_total" && suffix != "_created" {
				return nil, fmt.Errorf("openmetrics: line %d: counter sample %q must end in _total", lineNo, name)
			}
			if val < 0 {
				return nil, fmt.Errorf("openmetrics: line %d: negative counter %q", lineNo, name)
			}
		case "summary":
			switch suffix {
			case "_count":
				if val < 0 || val != float64(int64(val)) {
					return nil, fmt.Errorf("openmetrics: line %d: summary count %q must be a non-negative integer", lineNo, name)
				}
			case "_sum", "":
			default:
				return nil, fmt.Errorf("openmetrics: line %d: unexpected summary sample %q", lineNo, name)
			}
		case "gauge":
			if suffix != "" {
				return nil, fmt.Errorf("openmetrics: line %d: gauge sample %q must not be suffixed", lineNo, name)
			}
		}
		if _, dup := exp.Samples[name]; dup {
			return nil, fmt.Errorf("openmetrics: line %d: duplicate sample %q", lineNo, name)
		}
		exp.Samples[name] = val
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	return exp, nil
}

// sampleFamily resolves a sample name to its declared family and suffix.
func sampleFamily(name string, types map[string]string) (fam, suffix string, err error) {
	if _, ok := types[name]; ok {
		return name, "", nil
	}
	for _, suf := range []string{"_total", "_count", "_sum", "_created", "_bucket"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if _, ok := types[base]; ok {
				return base, suf, nil
			}
		}
	}
	return "", "", fmt.Errorf("sample %q has no declared family", name)
}
