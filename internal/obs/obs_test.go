package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("mira_cache_hits", "pipeline cache hits")
	inflight := r.Gauge("mira_inflight", "in-flight analyses")
	lat := r.Summary("mira_analyze_seconds", "analyze latency")
	r.GaugeFunc("mira_memo_entries", "memo entries", func() float64 { return 42 })

	hits.Add(3)
	hits.Inc()
	inflight.Inc()
	inflight.Inc()
	inflight.Dec()
	lat.Observe(0.5)
	lat.Observe(0.25)

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	exp, err := Parse(text)
	if err != nil {
		t.Fatalf("self-exposition fails lint: %v\n----\n%s", err, text)
	}
	checks := map[string]float64{
		"mira_cache_hits_total":      4,
		"mira_inflight":              1,
		"mira_analyze_seconds_count": 2,
		"mira_analyze_seconds_sum":   0.75,
		"mira_memo_entries":          42,
	}
	for name, want := range checks {
		if got := exp.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if exp.Types["mira_cache_hits"] != "counter" || exp.Types["mira_analyze_seconds"] != "summary" {
		t.Errorf("types = %v", exp.Types)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []struct {
		name, text string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n"},
		{"undeclared family", "# TYPE a counter\nb 1\n# EOF\n"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n"},
		{"negative counter", "# TYPE a counter\na_total -1\n# EOF\n"},
		{"bad value", "# TYPE a gauge\na xyz\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"},
		{"duplicate sample", "# TYPE a gauge\na 1\na 2\n# EOF\n"},
		{"interleaved families", "# TYPE a gauge\n# TYPE b gauge\na 1\nb 2\n# EOF\n"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\nx 1\n"},
		{"fractional summary count", "# TYPE s summary\ns_count 1.5\ns_sum 2\n# EOF\n"},
		{"unknown type", "# TYPE a widget\na 1\n# EOF\n"},
	}
	for _, c := range bad {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: accepted:\n%s", c.name, c.text)
		}
	}
}

func TestParseAcceptsLabelsAndTimestamps(t *testing.T) {
	text := "# TYPE a counter\n# HELP a with labels\na_total{shard=\"0\"} 5 1700000000\n# EOF\n"
	exp, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Value("a_total") != 5 {
		t.Errorf("a_total = %v", exp.Value("a_total"))
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add accepted")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration accepted")
		}
	}()
	r.Counter("g", "")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	s := r.Summary("s", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				s.Observe(0.001)
				var sb strings.Builder
				_ = r.WriteOpenMetrics(&sb)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(sb.String()); err != nil {
		t.Fatal(err)
	}
}
