// Package obs is Mira's observability layer: a small metrics registry
// whose counters, gauges, and latency summaries expose in the OpenMetrics
// text exposition format (the format Prometheus scrapes, ending in
// "# EOF"). The analysis engine records cache hits/misses, per-stage
// latency, in-flight analyses, and memo sizes into a Registry; mira-serve
// exposes it at GET /metrics; Parse reads an exposition back, doubling as
// the format lint the CI gate runs.
//
// The registry is deliberately tiny — no labels, no histogram buckets —
// because every series Mira emits is a process-wide scalar. Counters are
// monotonic (OpenMetrics requires the _total sample suffix), gauges move
// both ways or are computed on scrape (GaugeFunc), and summaries track
// observation count and sum, which is what per-stage latency needs for
// rate()-style dashboards.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// kind is the OpenMetrics family type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindSummary
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindSummary:
		return "summary"
	}
	return "unknown"
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// family is one registered metric family.
type family struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	summary *Summary
	fn      func() float64 // GaugeFunc
}

// Registry holds metric families and writes them as one exposition.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family          //lint:guarded-by mu
	byName   map[string]*family //lint:guarded-by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(f *family) {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decrease")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a counter family. The exposition sample
// is name_total; pass the bare family name (no _total suffix).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge is a value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time — the right shape
// for sizes of live structures (memo entries, resident analyses) that
// would otherwise need write-path bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// Summary tracks the count and sum of observations; per-stage latencies
// observe their elapsed seconds here.
type Summary struct {
	mu    sync.Mutex
	count int64   //lint:guarded-by mu
	sum   float64 //lint:guarded-by mu
}

// Observe records one observation.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Snapshot returns the observation count and sum.
func (s *Summary) Snapshot() (count int64, sum float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.sum
}

// Summary registers and returns a summary family (exposes name_count and
// name_sum).
func (r *Registry) Summary(name, help string) *Summary {
	s := &Summary{}
	r.register(&family{name: name, help: help, kind: kindSummary, summary: s})
	return s
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics writes every family in registration order in the
// OpenMetrics text exposition format, terminated by "# EOF".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		var err error
		switch f.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s_total %d\n", f.name, f.counter.Value())
		case kindGauge:
			if f.fn != nil {
				_, err = fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(f.fn()))
			} else {
				_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
			}
		case kindSummary:
			count, sum := f.summary.Snapshot()
			if _, err = fmt.Fprintf(w, "%s_count %d\n", f.name, count); err == nil {
				_, err = fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtFloat(sum))
			}
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// Names returns the registered family names, sorted (for tests and the
// serve-stats printer).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
