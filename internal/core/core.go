// Package core orchestrates the full Mira pipeline of the paper's Fig. 1:
// Input Processor (parse source; compile; decode the object file back from
// bytes), Metric Generator (bridge + polyhedral contexts), and Model
// Generator (parametric model, Python emission), plus access to the
// dynamic-validation machinery.
package core

import (
	"bytes"
	"context"
	"fmt"

	"mira/internal/arch"
	"mira/internal/ast"
	"mira/internal/cc"
	"mira/internal/disasm"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/metrics"
	"mira/internal/model"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
	"mira/internal/vm"
)

// Options configures an analysis run.
type Options struct {
	// DisableOpt compiles without optimizations (ablation mode).
	DisableOpt bool
	// Lenient downgrades unanalyzable branches to warnings.
	Lenient bool
	// Arch selects the architecture description; nil means generic.
	Arch *arch.Description
}

// Pipeline is a fully analyzed program.
type Pipeline struct {
	Name     string
	Source   string
	File     *ast.File
	Prog     *sema.Program
	Obj      *objfile.File
	Model    *model.Model
	Arch     *arch.Description
	Warnings []string
	// FuncKeys maps each function's qualified name to its function-content
	// key (see FuncKeys): the identity of its per-function artifacts in
	// every caching layer.
	FuncKeys map[string]string
}

// Analyze runs the whole static pipeline on MiniC source text. The object
// file is round-tripped through its byte encoding so the model is
// genuinely derived from the binary artifact.
func Analyze(name, source string, opts Options) (*Pipeline, error) {
	return AnalyzeContext(context.Background(), name, source, opts)
}

// AnalyzeContext is Analyze with cancellation: the pipeline checks ctx
// between stages (parse, sema, compile, decode, metrics), so an abandoned
// request stops burning CPU at the next stage boundary. A cancelled run
// returns ctx.Err() (possibly wrapped); callers that cache analysis
// results must not cache it.
func AnalyzeContext(ctx context.Context, name, source string, opts Options) (*Pipeline, error) {
	return analyze(ctx, name, source, nil, opts)
}

// AnalyzeFromObject rebuilds a Pipeline from source text plus a
// previously encoded object file — the warm path of a persistent cache.
// The front end still runs (parse + sema are cheap and the metric
// generator needs the source AST), but the compiler and the encode step
// are skipped: the artifact is decoded from the stored bytes, exactly as
// Analyze decodes its freshly encoded buffer. The caller is responsible
// for only pairing object bytes with the source text and options that
// produced them (a content-addressed store keyed on both does this by
// construction).
func AnalyzeFromObject(name, source string, object []byte, opts Options) (*Pipeline, error) {
	return AnalyzeFromObjectContext(context.Background(), name, source, object, opts)
}

// AnalyzeFromObjectContext is AnalyzeFromObject with the same stage-
// boundary cancellation as AnalyzeContext.
func AnalyzeFromObjectContext(ctx context.Context, name, source string, object []byte, opts Options) (*Pipeline, error) {
	if len(object) == 0 {
		// Distinguish "no artifact" from the compile path explicitly: a
		// truncated store entry must degrade to a recompile at the caller,
		// never silently become one here.
		return nil, fmt.Errorf("core: decode stored object: empty artifact")
	}
	return analyze(ctx, name, source, object, opts)
}

// analyze is the shared pipeline body. object == nil means compile from
// source (round-tripping the artifact through its byte encoding); a
// non-nil object skips the compiler and decodes the stored bytes. Each
// stage boundary is a cancellation point.
func analyze(ctx context.Context, name, source string, object []byte, opts Options) (*Pipeline, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := parser.ParseFile(name, source)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("core: sema: %w", err)
	}
	keys := FuncKeys(prog, opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if object == nil {
		obj, err := cc.Compile(prog, cc.Options{SourceName: name, DisableOpt: opts.DisableOpt})
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		var buf bytes.Buffer
		if err := obj.Encode(&buf); err != nil {
			return nil, fmt.Errorf("core: encode: %w", err)
		}
		object = buf.Bytes()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	decoded, err := objfile.Decode(object)
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, warns, err := metrics.Generate(prog, decoded, metrics.Config{Lenient: opts.Lenient})
	if err != nil {
		return nil, fmt.Errorf("core: metrics: %w", err)
	}
	a := opts.Arch
	if a == nil {
		a = arch.Generic()
	}
	return &Pipeline{
		Name:     name,
		Source:   source,
		File:     file,
		Prog:     prog,
		Obj:      decoded,
		Model:    m,
		Arch:     a,
		Warnings: warns,
		FuncKeys: keys,
	}, nil
}

// EncodeObject re-encodes the pipeline's object file to its portable byte
// form — the artifact a persistent cache stores so a later process can
// AnalyzeFromObject instead of recompiling.
func (p *Pipeline) EncodeObject() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Obj.Encode(&buf); err != nil {
		return nil, fmt.Errorf("core: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// StaticMetrics evaluates the model of fn (inclusive) under env.
func (p *Pipeline) StaticMetrics(fn string, env expr.Env) (model.Metrics, error) {
	return p.Model.Evaluate(fn, env)
}

// StaticMetricsExclusive evaluates body-only metrics.
func (p *Pipeline) StaticMetricsExclusive(fn string, env expr.Env) (model.Metrics, error) {
	return p.Model.EvaluateExclusive(fn, env)
}

// NewMachine returns a fresh VM over the compiled binary for dynamic
// validation runs.
func (p *Pipeline) NewMachine() *vm.Machine { return vm.New(p.Obj) }

// PythonModel emits the generated model as Python source (paper Fig. 5).
func (p *Pipeline) PythonModel() string { return p.Model.EmitPython() }

// Disassembly returns an objdump-style listing of fn.
func (p *Pipeline) Disassembly(fn string) (string, error) {
	sym, ok := p.Obj.LookupSym(fn)
	if !ok {
		return "", fmt.Errorf("core: no symbol %q", fn)
	}
	return disasm.Print(disasm.DisassembleFunc(p.Obj, sym)), nil
}

// SourceDot renders the source AST as a dot graph (paper Fig. 2).
func (p *Pipeline) SourceDot() string { return ast.Dot(p.File) }

// BinaryDot renders fn's binary AST as a dot graph (paper Fig. 3).
func (p *Pipeline) BinaryDot(fn string) (string, error) {
	sym, ok := p.Obj.LookupSym(fn)
	if !ok {
		return "", fmt.Errorf("core: no symbol %q", fn)
	}
	return disasm.Dot(disasm.DisassembleFunc(p.Obj, sym)), nil
}

// FineCategoryCounts buckets fn's static per-opcode counts into the
// architecture description's fine-grained (64-way) categories.
func (p *Pipeline) FineCategoryCounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := p.Model.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return BucketFine(p.Arch, ops), nil
}

// TableIICounts aggregates fn's static metrics into the seven rows the
// paper's Table II reports.
func (p *Pipeline) TableIICounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := p.Model.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return BucketTableII(ops), nil
}

// BucketTableII aggregates per-opcode counts into the paper's Table II
// categories. Shared by every evaluation path (pipeline and the cached
// engine layer) so the bucketing cannot drift.
func BucketTableII(ops map[ir.Op]int64) map[string]int64 {
	out := map[string]int64{}
	for op, n := range ops {
		out[arch.TableIICategory(op).String()] += n
	}
	return out
}

// BucketFine buckets per-opcode counts into an architecture
// description's fine-grained categories.
func BucketFine(d *arch.Description, ops map[ir.Op]int64) map[string]int64 {
	out := map[string]int64{}
	for op, n := range ops {
		out[d.FineCategory(op)] += n
	}
	return out
}
