package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"mira/internal/arch"
	"mira/internal/ast"
	"mira/internal/sema"
)

// CacheFormatVersion is the version of Mira's cache-key scheme, shared by
// every caching layer: it is mixed into the engine's whole-source keys,
// into every function-content key below, and into the cachestore's
// on-disk magic. Bump it whenever the meaning of a key changes (hash
// inputs, artifact encoding, model semantics) so that stale artifacts in
// every layer — live memo, whole-source entries, per-function entries —
// become clean misses at once, never mismatches.
//
// Version history:
//
//	1  whole-source content hashes (PR 1/2)
//	2  function-granular Merkle keys; per-function store entries
//	3  arch content keys replace arch names in key material
const CacheFormatVersion = 3

// FuncKeys computes a content key for every function of an analyzed
// program, under the given analysis options.
//
// The key of a function f is a Merkle-style hash over
//
//	version ‖ options ‖ globals ‖ AST(f) ‖ key(callee₁) ‖ key(callee₂) …
//
// with callees in sema's sorted order. Including the callee closure makes
// the key the identity of f's *inclusive* analysis artifacts: editing a
// callee changes exactly the keys of its transitive callers, so a cache
// keyed this way invalidates precisely what the edit can affect. (The
// call graph is acyclic — sema rejects recursion — so the recursion
// terminates.)
//
// AST(f) is the position-sensitive encoding of ast.HashNode: model sites
// attach to (line, col) pairs and loop parameters are mangled with their
// declaration line, so layout is semantically significant and must be
// part of the identity. The globals hash covers every global variable
// declaration and every class's field layout (positions included):
// global layout, folded constants, and field offsets feed every
// function's compilation. The architecture contributes its content key,
// not its name: two descriptions differing in any parameter produce
// disjoint function keys, so cached artifacts can never cross archs.
func FuncKeys(prog *sema.Program, opts Options) map[string]string {
	base := sha256.New()
	fmt.Fprintf(base, "mira-funckey v%d opt=%t lenient=%t arch=%s\x00",
		CacheFormatVersion, opts.DisableOpt, opts.Lenient, arch.KeyOf(opts.Arch))
	writeGlobalsHash(base, prog)
	prefix := base.Sum(nil)

	keys := make(map[string]string, len(prog.FuncOrder))
	var keyOf func(q string) string
	keyOf = func(q string) string {
		if k, ok := keys[q]; ok {
			return k
		}
		fi := prog.Funcs[q]
		h := sha256.New()
		h.Write(prefix)
		ast.HashNode(h, fi.Decl)
		for _, c := range fi.Callees {
			io.WriteString(h, keyOf(c))
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[q] = k
		return k
	}
	for _, q := range prog.FuncOrder {
		keyOf(q)
	}
	return keys
}

// writeGlobalsHash hashes the whole-file context every function compiles
// against: global variable declarations (in declaration order — order
// determines the .data layout) and class field lists (field offsets feed
// member access in every method and caller).
func writeGlobalsHash(w io.Writer, prog *sema.Program) {
	for _, name := range prog.GlobalOrder {
		gi := prog.Globals[name]
		io.WriteString(w, "G")
		io.WriteString(w, name)
		ast.HashNode(w, gi.Decl)
	}
	for _, d := range prog.File.Decls {
		cd, ok := d.(*ast.ClassDecl)
		if !ok {
			continue
		}
		io.WriteString(w, "C")
		io.WriteString(w, cd.Name)
		for _, f := range cd.Fields {
			ast.HashNode(w, f)
		}
	}
}
