package core_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/core"
	"mira/internal/parser"
	"mira/internal/sema"
)

var incrPrograms = []struct {
	name string
	src  string
}{
	{"stream", benchprogs.Stream},
	{"dgemm", benchprogs.Dgemm},
	{"minife", benchprogs.MiniFE},
	{"fig5", benchprogs.Fig5},
	{"listing1", benchprogs.Listing1},
	{"listing2", benchprogs.Listing2},
	{"listing4", benchprogs.Listing4},
	{"listing5", benchprogs.Listing5},
	{"ablation", benchprogs.Ablation},
}

func mustProgram(t *testing.T, name, src string) *sema.Program {
	t.Helper()
	file, err := parser.ParseFile(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatalf("sema %s: %v", name, err)
	}
	return prog
}

// shiftLine inserts two spaces at the start of the 1-based line, a
// column-only mutation: it always lexes, and with position-sensitive
// AST hashing it changes the content of exactly the tokens on that
// line.
func shiftLine(src string, line int) string {
	lines := strings.Split(src, "\n")
	lines[line-1] = "  " + lines[line-1]
	return strings.Join(lines, "\n")
}

// mutationLine picks the line to shift for a function: the first body
// statement when there is one, else the body's opening brace.
func mutationLine(fi *sema.FuncInfo) int {
	if len(fi.Decl.Body.Stmts) > 0 {
		return fi.Decl.Body.Stmts[0].Pos().Line
	}
	return fi.Decl.Body.BracePos.Line
}

// reverseClosure returns target plus every function that reaches it
// through the static call graph — the set an edit to target may affect,
// and therefore exactly what an incremental analysis must recompile.
func reverseClosure(prog *sema.Program, target string) map[string]bool {
	callers := map[string][]string{}
	for q, fi := range prog.Funcs {
		for _, c := range fi.Callees {
			callers[c] = append(callers[c], q)
		}
	}
	out := map[string]bool{target: true}
	work := []string{target}
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[q] {
			if !out[caller] {
				out[caller] = true
				work = append(work, caller)
			}
		}
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// TestIncrementalMutationProperty is the correctness property of the
// incremental pipeline: for every benchmark program and every defined
// function, mutating that one function and re-analyzing against the
// artifacts of the original source must (a) produce byte-identical
// results to a cold analysis of the mutated source, and (b) recompile
// exactly the mutated function plus its transitive callers, reusing
// everything else.
func TestIncrementalMutationProperty(t *testing.T) {
	opts := core.Options{Lenient: true}
	for _, tc := range incrPrograms {
		t.Run(tc.name, func(t *testing.T) {
			orig, err := core.AnalyzeIncremental(tc.name, tc.src, opts, nil)
			if err != nil {
				t.Fatalf("cold incremental analyze: %v", err)
			}
			if len(orig.Delta.Reused) != 0 {
				t.Fatalf("nil lookup reused %v", orig.Delta.Reused)
			}
			byKey := map[string]*core.FuncArtifact{}
			for _, art := range orig.Artifacts {
				byKey[art.Key] = art
			}
			lookup := func(key string) (*core.FuncArtifact, bool) {
				art, ok := byKey[key]
				return art, ok
			}
			prog := mustProgram(t, tc.name, tc.src)

			for _, target := range prog.FuncOrder {
				fi := prog.Funcs[target]
				if fi.Decl.IsExtern {
					continue
				}
				mutated := shiftLine(tc.src, mutationLine(fi))
				if mutated == tc.src {
					t.Fatalf("%s: mutation did not change the source", target)
				}
				expected := reverseClosure(prog, target)

				incr, err := core.AnalyzeIncremental(tc.name, mutated, opts, lookup)
				if err != nil {
					t.Fatalf("%s: incremental analyze: %v", target, err)
				}
				cold, err := core.Analyze(tc.name, mutated, opts)
				if err != nil {
					t.Fatalf("%s: cold analyze: %v", target, err)
				}

				// (a) Byte-identical results.
				if got, want := incr.Pipeline.PythonModel(), cold.PythonModel(); got != want {
					t.Errorf("%s: incremental python model differs from cold", target)
				}
				gotObj, err := incr.Pipeline.EncodeObject()
				if err != nil {
					t.Fatalf("%s: encode incremental: %v", target, err)
				}
				wantObj, err := cold.EncodeObject()
				if err != nil {
					t.Fatalf("%s: encode cold: %v", target, err)
				}
				if !bytes.Equal(gotObj, wantObj) {
					t.Errorf("%s: incremental object bytes differ from cold", target)
				}
				if got, want := strings.Join(incr.Pipeline.Warnings, "\n"), strings.Join(cold.Warnings, "\n"); got != want {
					t.Errorf("%s: warnings differ: %q vs %q", target, got, want)
				}

				// (b) Recompiled exactly the reverse closure.
				gotCompiled := append([]string{}, incr.Delta.Compiled...)
				sort.Strings(gotCompiled)
				if want := sortedSet(expected); !equalStrings(gotCompiled, want) {
					t.Errorf("%s: recompiled %v, want %v", target, gotCompiled, want)
				}
				if got, want := len(incr.Delta.Reused)+len(incr.Delta.Compiled), len(prog.FuncOrder); got != want {
					t.Errorf("%s: delta covers %d functions, program has %d", target, got, want)
				}

				// Keys of untouched functions are stable; keys inside the
				// closure must change (that is what invalidates them).
				for _, q := range prog.FuncOrder {
					same := incr.Pipeline.FuncKeys[q] == orig.Pipeline.FuncKeys[q]
					if expected[q] && same {
						t.Errorf("%s: key of %s unchanged by mutation", target, q)
					}
					if !expected[q] && !same {
						t.Errorf("%s: key of untouched %s changed", target, q)
					}
				}
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalIdenticalSourceReusesAll re-analyzes an unchanged
// source against its own artifacts: everything reuses, nothing
// compiles, and the results still match a cold run byte for byte.
func TestIncrementalIdenticalSourceReusesAll(t *testing.T) {
	opts := core.Options{Lenient: true}
	src := benchprogs.MiniFE
	orig, err := core.AnalyzeIncremental("minife", src, opts, nil)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	byKey := map[string]*core.FuncArtifact{}
	for _, art := range orig.Artifacts {
		byKey[art.Key] = art
	}
	again, err := core.AnalyzeIncremental("minife", src, opts, func(key string) (*core.FuncArtifact, bool) {
		art, ok := byKey[key]
		return art, ok
	})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if len(again.Delta.Compiled) != 0 {
		t.Fatalf("unchanged source recompiled %v", again.Delta.Compiled)
	}
	if got, want := again.Pipeline.PythonModel(), orig.Pipeline.PythonModel(); got != want {
		t.Fatalf("warm python model differs from cold")
	}
}

// TestIncrementalUnitRoundTrip checks the store representation: a unit
// encoded with EncodeUnit and restored with DecodeUnit must stand in
// for the original in a subsequent incremental analysis (model absent,
// so metrics regenerate — but the linked object is byte-identical).
func TestIncrementalUnitRoundTrip(t *testing.T) {
	opts := core.Options{Lenient: true}
	src := benchprogs.Dgemm
	orig, err := core.AnalyzeIncremental("dgemm", src, opts, nil)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	byKey := map[string]*core.FuncArtifact{}
	for _, art := range orig.Artifacts {
		raw := core.EncodeUnit(art.Unit)
		u, err := core.DecodeUnit(raw)
		if err != nil {
			t.Fatalf("round-trip %s: %v", art.Name, err)
		}
		byKey[art.Key] = &core.FuncArtifact{Key: art.Key, Name: art.Name, Unit: u}
	}
	again, err := core.AnalyzeIncremental("dgemm", src, opts, func(key string) (*core.FuncArtifact, bool) {
		art, ok := byKey[key]
		return art, ok
	})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if len(again.Delta.Compiled) != 0 {
		t.Fatalf("round-tripped units missed: recompiled %v", again.Delta.Compiled)
	}
	gotObj, err := again.Pipeline.EncodeObject()
	if err != nil {
		t.Fatalf("encode warm: %v", err)
	}
	wantObj, err := orig.Pipeline.EncodeObject()
	if err != nil {
		t.Fatalf("encode cold: %v", err)
	}
	if !bytes.Equal(gotObj, wantObj) {
		t.Fatalf("object bytes differ after unit round trip")
	}
	if got, want := again.Pipeline.PythonModel(), orig.Pipeline.PythonModel(); got != want {
		t.Fatalf("python model differs after unit round trip")
	}
}
