// Function-granular incremental analysis: the pipeline body of Analyze,
// restructured so that each function's expensive artifacts — its compiled
// unit and its generated model — can be served from a cache keyed by
// function-content hash (see FuncKeys) instead of being rebuilt. Parsing,
// semantic analysis, linking, and the object-file round trip always run
// on the new source (they are cheap and whole-file by nature); compilation
// and metric generation run only for functions whose content key misses.
//
// The result is bit-identical to a from-scratch Analyze: units link the
// same bytes, models regenerate from the same inputs, and warnings
// concatenate in the same function order.
package core

import (
	"bytes"
	"context"
	"fmt"

	"mira/internal/arch"
	"mira/internal/cc"
	"mira/internal/metrics"
	"mira/internal/model"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
)

// FuncArtifact bundles the cacheable per-function products of the
// pipeline under one function-content key. Unit is always present; Model
// and Warnings may be absent (nil) when the artifact was restored from a
// store that persists only object fragments — the pipeline then reuses
// the unit and regenerates the model.
type FuncArtifact struct {
	Key      string
	Name     string
	Unit     *cc.Unit
	Model    *model.Func
	Warnings []string
}

// Delta reports, for one incremental analysis, which functions were
// served from cache and which were recompiled, in link order.
type Delta struct {
	Reused   []string
	Compiled []string
}

// IncrementalResult is the outcome of AnalyzeIncremental: the finished
// pipeline, the reuse delta, and the complete per-function artifact set
// (cache-ready: every artifact carries its unit, model, and warnings) for
// the caller to retain.
type IncrementalResult struct {
	Pipeline  *Pipeline
	Delta     Delta
	Artifacts map[string]*FuncArtifact // keyed by qualified function name
}

// AnalyzeIncremental runs the pipeline on source, consulting lookup for
// per-function artifacts by function-content key. lookup may be nil
// (every function compiles cold). See AnalyzeIncrementalContext.
func AnalyzeIncremental(name, source string, opts Options, lookup func(key string) (*FuncArtifact, bool)) (*IncrementalResult, error) {
	return AnalyzeIncrementalContext(context.Background(), name, source, opts, lookup)
}

// AnalyzeIncrementalContext is AnalyzeIncremental with the same
// stage-boundary cancellation as AnalyzeContext. A function counts as
// Reused when its compiled unit came from lookup; if the artifact also
// carried a model, metric generation is skipped for it too.
func AnalyzeIncrementalContext(ctx context.Context, name, source string, opts Options, lookup func(key string) (*FuncArtifact, bool)) (*IncrementalResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := parser.ParseFile(name, source)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("core: sema: %w", err)
	}
	keys := FuncKeys(prog, opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	ccOpts := cc.Options{SourceName: name, DisableOpt: opts.DisableOpt}
	order := cc.LinkOrder(prog)
	arts := make(map[string]*FuncArtifact, len(order))
	units := make([]*cc.Unit, 0, len(order))
	var delta Delta
	for _, q := range order {
		key := keys[q]
		if lookup != nil {
			if art, ok := lookup(key); ok && art != nil && art.Unit != nil {
				arts[q] = &FuncArtifact{Key: key, Name: q, Unit: art.Unit, Model: art.Model, Warnings: art.Warnings}
				units = append(units, art.Unit)
				delta.Reused = append(delta.Reused, q)
				continue
			}
		}
		u, cerr := cc.CompileFunc(prog, ccOpts, q)
		if cerr != nil {
			return nil, fmt.Errorf("core: compile: %w", cerr)
		}
		arts[q] = &FuncArtifact{Key: key, Name: q, Unit: u}
		units = append(units, u)
		delta.Compiled = append(delta.Compiled, q)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	obj, err := cc.Link(prog, ccOpts, units)
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	// Round-trip through the byte encoding, exactly as the cold path does:
	// the model must be derived from the portable binary artifact.
	var buf bytes.Buffer
	if err := obj.Encode(&buf); err != nil {
		return nil, fmt.Errorf("core: encode: %w", err)
	}
	decoded, err := objfile.Decode(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	gen := metrics.NewGenerator(prog, decoded, metrics.Config{Lenient: opts.Lenient})
	m := &model.Model{SourceName: decoded.SourceName, Funcs: map[string]*model.Func{}}
	var warns []string
	for _, q := range prog.FuncOrder {
		art := arts[q]
		if art.Model == nil {
			fm, w, gerr := gen.FuncModel(q)
			if gerr != nil {
				return nil, fmt.Errorf("core: metrics: %w", gerr)
			}
			art.Model, art.Warnings = fm, w
		}
		m.Funcs[q] = art.Model
		m.Order = append(m.Order, q)
		warns = append(warns, art.Warnings...)
	}

	a := opts.Arch
	if a == nil {
		a = arch.Generic()
	}
	p := &Pipeline{
		Name:     name,
		Source:   source,
		File:     file,
		Prog:     prog,
		Obj:      decoded,
		Model:    m,
		Arch:     a,
		Warnings: warns,
		FuncKeys: keys,
	}
	return &IncrementalResult{Pipeline: p, Delta: delta, Artifacts: arts}, nil
}

// EncodeUnit serializes a compiled function unit to its portable byte
// form — the per-function object fragment a persistent cache stores.
func EncodeUnit(u *cc.Unit) []byte { return u.EncodeBytes() }

// DecodeUnit deserializes a unit encoded by EncodeUnit. Callers treat an
// error as a cache miss.
func DecodeUnit(raw []byte) (*cc.Unit, error) { return cc.DecodeUnitBytes(raw) }
