package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/vm"
)

const kernelSrc = `
double kernel(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + 1.5;
	}
	return s;
}`

func TestAnalyzePipelineEndToEnd(t *testing.T) {
	p, err := core.Analyze("k.c", kernelSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.File == nil || p.Prog == nil || p.Obj == nil || p.Model == nil {
		t.Fatal("pipeline stage missing")
	}
	met, err := p.StaticMetrics("kernel", expr.EnvFromInts(map[string]int64{"n": 100}))
	if err != nil {
		t.Fatal(err)
	}
	if met.FPI() != 100 {
		t.Errorf("FPI = %d", met.FPI())
	}
	m := p.NewMachine()
	if _, err := m.Run("kernel", vm.Int(100)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.FuncStatsByName("kernel")
	if int64(st.FPIInclusive()) != met.FPI() {
		t.Errorf("static %d != dynamic %d", met.FPI(), st.FPIInclusive())
	}
}

func TestArtifacts(t *testing.T) {
	p, err := core.Analyze("k.c", kernelSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dot := p.SourceDot(); !strings.Contains(dot, "SgForStatement") {
		t.Error("source dot missing loop node")
	}
	bdot, err := p.BinaryDot("kernel")
	if err != nil || !strings.Contains(bdot, "SgAsmFunction") {
		t.Errorf("binary dot: %v", err)
	}
	asm, err := p.Disassembly("kernel")
	if err != nil || !strings.Contains(asm, "addsd") {
		t.Errorf("disassembly: %v\n%s", err, asm)
	}
	if py := p.PythonModel(); !strings.Contains(py, "def kernel_1(n):") {
		t.Error("python model missing function")
	}
	if _, err := p.Disassembly("nope"); err == nil {
		t.Error("missing symbol accepted")
	}
	if _, err := p.BinaryDot("nope"); err == nil {
		t.Error("missing symbol accepted")
	}
}

func TestCategoryAPIs(t *testing.T) {
	p, err := core.Analyze("k.c", kernelSrc, core.Options{Arch: arch.Arya()})
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	fine, err := p.FineCategoryCounts("kernel", env)
	if err != nil {
		t.Fatal(err)
	}
	if fine["SSE2 packed arithmetic"] != 10 {
		t.Errorf("fine = %v", fine)
	}
	t2, err := p.TableIICounts("kernel", env)
	if err != nil {
		t.Fatal(err)
	}
	if t2["SSE2 packed arithmetic instruction"] != 10 {
		t.Errorf("table II = %v", t2)
	}
	var sum int64
	for _, n := range t2 {
		sum += n
	}
	met, _ := p.StaticMetrics("kernel", env)
	if sum != met.Instrs {
		t.Errorf("category sum %d != total %d", sum, met.Instrs)
	}
}

func TestAnalyzeErrorsPropagate(t *testing.T) {
	cases := []string{
		"int f( {",                      // parse
		"int f(int n) { return f(n); }", // sema (recursion)
		"void f() { g(); }",             // compile (unknown callee)
		"void f(double *x, int n) { int i; for (i = 0; i < n; i++) { if (x[i] > 0.0) { x[i] = 0.0; } } }", // metrics (strict)
	}
	for _, src := range cases {
		if _, err := core.Analyze("bad.c", src, core.Options{}); err == nil {
			t.Errorf("Analyze(%q) succeeded", src)
		}
	}
}

// TestAnalyzeFromObject round-trips the warm-start path: the artifact a
// cold Analyze encodes must rebuild — without the compiler — into a
// pipeline whose model evaluates identically.
func TestAnalyzeFromObject(t *testing.T) {
	cold, err := core.Analyze("k.c", kernelSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	object, err := cold.EncodeObject()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.AnalyzeFromObject("k.c", kernelSrc, object, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	cm, err := cold.StaticMetrics("kernel", env)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := warm.StaticMetrics("kernel", env)
	if err != nil {
		t.Fatal(err)
	}
	if cm != wm {
		t.Errorf("warm metrics %+v != cold metrics %+v", wm, cm)
	}
	if cold.PythonModel() != warm.PythonModel() {
		t.Error("warm rebuild emits a different Python model")
	}
	// The rebuilt artifact must also re-encode to the same bytes, so a
	// store round-trip is idempotent.
	again, err := warm.EncodeObject()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(object) {
		t.Error("EncodeObject not stable across decode/encode round-trip")
	}
	// Corrupt bytes must surface as an error, not a bogus pipeline.
	if _, err := core.AnalyzeFromObject("k.c", kernelSrc, object[:len(object)/2], core.Options{}); err == nil {
		t.Error("truncated object accepted")
	}
}

// TestAnalyzeContextCancellation: a dead context stops the pipeline at
// a stage boundary with the context's own error.
func TestAnalyzeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.AnalyzeContext(ctx, "k.c", kernelSrc, core.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// A live context is the plain Analyze path.
	if _, err := core.AnalyzeContext(context.Background(), "k.c", kernelSrc, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Empty stored artifacts error instead of silently recompiling.
	if _, err := core.AnalyzeFromObjectContext(context.Background(), "k.c", kernelSrc, nil, core.Options{}); err == nil {
		t.Error("empty artifact accepted")
	}
}
