package rational

import (
	"testing"
	"testing/quick"
)

func TestBasicArithmetic(t *testing.T) {
	a := FromFrac(1, 2)
	b := FromFrac(1, 3)
	if got := a.Add(b).String(); got != "5/6" {
		t.Errorf("1/2 + 1/3 = %s", got)
	}
	if got := a.Sub(b).String(); got != "1/6" {
		t.Errorf("1/2 - 1/3 = %s", got)
	}
	if got := a.Mul(b).String(); got != "1/6" {
		t.Errorf("1/2 * 1/3 = %s", got)
	}
	if got := a.Div(b).String(); got != "3/2" {
		t.Errorf("1/2 / 1/3 = %s", got)
	}
	if got := a.Neg().String(); got != "-1/2" {
		t.Errorf("-(1/2) = %s", got)
	}
}

func TestZeroValue(t *testing.T) {
	var z Rat
	if z.Sign() != 0 {
		t.Error("zero value sign != 0")
	}
	if got := z.Add(FromInt(3)).String(); got != "3" {
		t.Errorf("0 + 3 = %s", got)
	}
	if !z.IsInt() {
		t.Error("zero not integral")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		num, den    int64
		floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 2, 3, 3},
		{-6, 2, -3, -3},
		{0, 5, 0, 0},
		{1, 3, 0, 1},
		{-1, 3, -1, 0},
	}
	for _, c := range cases {
		r := FromFrac(c.num, c.den)
		if f, _ := r.Floor().Int64(); f != c.floor {
			t.Errorf("floor(%d/%d) = %d, want %d", c.num, c.den, f, c.floor)
		}
		if f, _ := r.Ceil().Int64(); f != c.ceil {
			t.Errorf("ceil(%d/%d) = %d, want %d", c.num, c.den, f, c.ceil)
		}
	}
}

func TestFloorDivMatchesIntegerDivision(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b == 0 {
			return true
		}
		got, ok := FromInt(a).FloorDiv(FromInt(b)).Int64()
		if !ok {
			return false
		}
		// Euclidean-style floor division reference.
		q := a / b
		if (a%b != 0) && ((a < 0) != (b < 0)) {
			q--
		}
		return got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpMinMax(t *testing.T) {
	a, b := FromInt(2), FromInt(5)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp misordered")
	}
	if !a.Min(b).Equal(a) || !a.Max(b).Equal(b) {
		t.Error("Min/Max wrong")
	}
}

func TestInt64Conversion(t *testing.T) {
	if v, ok := FromInt(42).Int64(); !ok || v != 42 {
		t.Errorf("Int64(42) = %d, %t", v, ok)
	}
	if _, ok := FromFrac(1, 2).Int64(); ok {
		t.Error("1/2 converted to int64")
	}
}

func TestFromFloat(t *testing.T) {
	r, err := FromFloat(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != "1/4" {
		t.Errorf("FromFloat(0.25) = %s", got)
	}
}

func TestNumDen(t *testing.T) {
	n, d := FromFrac(6, 4).NumDen()
	if n != 3 || d != 2 {
		t.Errorf("NumDen(6/4) = %d/%d, want 3/2", n, d)
	}
}

func TestPythonString(t *testing.T) {
	if got := FromInt(7).PythonString(); got != "7" {
		t.Errorf("PythonString(7) = %q", got)
	}
	if got := FromFrac(1, 2).PythonString(); got != "(1/2)" {
		t.Errorf("PythonString(1/2) = %q", got)
	}
}

func TestArithmeticProperties(t *testing.T) {
	add := func(a, b int64) bool {
		return FromInt(a).Add(FromInt(b)).Equal(FromInt(b).Add(FromInt(a)))
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error("addition not commutative:", err)
	}
	distr := func(a, b, c int32) bool {
		ra, rb, rc := FromInt(int64(a)), FromInt(int64(b)), FromInt(int64(c))
		lhs := ra.Mul(rb.Add(rc))
		rhs := ra.Mul(rb).Add(ra.Mul(rc))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(distr, nil); err != nil {
		t.Error("distributivity fails:", err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on division by zero")
		}
	}()
	FromInt(1).Div(Zero)
}
