// Package rational provides exact rational arithmetic for the polyhedral
// model and the symbolic expression engine.
//
// It is a thin veneer over math/big.Rat with value semantics tuned for how
// Mira uses numbers: loop bounds, lattice-point counts, and Faulhaber
// (Bernoulli) coefficients. Exactness matters — iteration counts are
// integers and the generated model must reproduce them without float
// drift even at 1e10-scale counts.
package rational

import (
	"fmt"
	"math/big"
)

// Rat is an immutable exact rational number. The zero value is 0.
type Rat struct {
	r *big.Rat // nil means zero
}

// smallInts caches the rationals 0..smallIntMax. Rat values are
// immutable (every operation allocates a fresh big.Rat), so sharing the
// backing pointers is safe, and grid sweeps build environments from
// small integers constantly.
const smallIntMax = 256

var smallInts = func() [smallIntMax + 1]Rat {
	var out [smallIntMax + 1]Rat
	for i := range out {
		out[i] = Rat{big.NewRat(int64(i), 1)}
	}
	return out
}()

// Zero and One are the common constants.
var (
	Zero = FromInt(0)
	One  = FromInt(1)
)

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	if n >= 0 && n <= smallIntMax {
		return smallInts[n]
	}
	return Rat{big.NewRat(n, 1)}
}

// FromFrac returns the rational num/den. It panics if den == 0.
func FromFrac(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	return Rat{big.NewRat(num, den)}
}

// FromFloat converts a float64 exactly; NaN/Inf yield an error.
func FromFloat(f float64) (Rat, error) {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		return Rat{}, fmt.Errorf("rational: cannot represent %g", f)
	}
	return Rat{r}, nil
}

func (a Rat) big() *big.Rat {
	if a.r == nil {
		return new(big.Rat)
	}
	return a.r
}

// Add returns a + b.
func (a Rat) Add(b Rat) Rat { return Rat{new(big.Rat).Add(a.big(), b.big())} }

// Sub returns a - b.
func (a Rat) Sub(b Rat) Rat { return Rat{new(big.Rat).Sub(a.big(), b.big())} }

// Mul returns a * b.
func (a Rat) Mul(b Rat) Rat { return Rat{new(big.Rat).Mul(a.big(), b.big())} }

// Div returns a / b. It panics if b is zero.
func (a Rat) Div(b Rat) Rat {
	if b.Sign() == 0 {
		panic("rational: division by zero")
	}
	return Rat{new(big.Rat).Quo(a.big(), b.big())}
}

// Neg returns -a.
func (a Rat) Neg() Rat { return Rat{new(big.Rat).Neg(a.big())} }

// Cmp returns -1, 0, or 1 according to a <=> b.
func (a Rat) Cmp(b Rat) int { return a.big().Cmp(b.big()) }

// Sign returns the sign of a.
func (a Rat) Sign() int { return a.big().Sign() }

// Equal reports a == b.
func (a Rat) Equal(b Rat) bool { return a.Cmp(b) == 0 }

// IsInt reports whether a is an integer.
func (a Rat) IsInt() bool { return a.big().IsInt() }

// Int64 returns the value as an int64. ok is false when the value is not an
// integer or does not fit.
func (a Rat) Int64() (v int64, ok bool) {
	b := a.big()
	if !b.IsInt() {
		return 0, false
	}
	n := b.Num()
	if !n.IsInt64() {
		return 0, false
	}
	return n.Int64(), true
}

// Floor returns the largest integer <= a.
func (a Rat) Floor() Rat {
	b := a.big()
	q := new(big.Int).Quo(b.Num(), b.Denom())
	if b.Sign() < 0 && !b.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return Rat{new(big.Rat).SetInt(q)}
}

// Ceil returns the smallest integer >= a.
func (a Rat) Ceil() Rat {
	b := a.big()
	q := new(big.Int).Quo(b.Num(), b.Denom())
	if b.Sign() > 0 && !b.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return Rat{new(big.Rat).SetInt(q)}
}

// FloorDiv returns floor(a / b). It panics if b is zero.
func (a Rat) FloorDiv(b Rat) Rat { return a.Div(b).Floor() }

// Max returns the larger of a, b.
func (a Rat) Max(b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// Min returns the smaller of a, b.
func (a Rat) Min(b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// NumDen returns the numerator and denominator in lowest terms. It panics
// if either does not fit in int64 (counts and steps in Mira's models are
// built from int64 source literals, so this cannot occur in practice).
func (a Rat) NumDen() (num, den int64) {
	b := a.big()
	if !b.Num().IsInt64() || !b.Denom().IsInt64() {
		panic("rational: NumDen overflow")
	}
	return b.Num().Int64(), b.Denom().Int64()
}

// Float64 returns the nearest float64 value.
func (a Rat) Float64() float64 {
	f, _ := a.big().Float64()
	return f
}

// String renders the value, as an integer when possible.
func (a Rat) String() string {
	b := a.big()
	if b.IsInt() {
		return b.Num().String()
	}
	return b.RatString()
}

// PythonString renders the value as a Python expression preserving
// exactness (integers plain, fractions as Fraction-free division).
func (a Rat) PythonString() string {
	b := a.big()
	if b.IsInt() {
		return b.Num().String()
	}
	return fmt.Sprintf("(%s/%s)", b.Num().String(), b.Denom().String())
}
