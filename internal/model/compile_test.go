package model

import (
	"errors"
	"testing"

	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/rational"
)

// evalBoth checks the compiled and tree-walk evaluations agree exactly
// (metrics, opcode maps, and evaluability) for one function and env.
func evalBoth(t *testing.T, m *Model, fn string, env expr.Env) {
	t.Helper()
	cm, err := m.Compile(fn)
	if err != nil {
		t.Fatalf("Compile(%s): %v", fn, err)
	}
	met, errW := m.Evaluate(fn, env)
	cmet, errC := cm.Eval(env)
	if (errW == nil) != (errC == nil) {
		t.Fatalf("%s: walker err=%v, compiled err=%v", fn, errW, errC)
	}
	if errW == nil && met != cmet {
		t.Fatalf("%s: walker %+v != compiled %+v", fn, met, cmet)
	}
	ops, errW := m.EvaluateOpcodes(fn, env)
	cops, errC := cm.EvalOps(env)
	if (errW == nil) != (errC == nil) {
		t.Fatalf("%s ops: walker err=%v, compiled err=%v", fn, errW, errC)
	}
	if errW == nil {
		if len(ops) != len(cops) {
			t.Fatalf("%s ops: walker %v != compiled %v", fn, ops, cops)
		}
		for op, n := range ops {
			if cops[op] != n {
				t.Fatalf("%s ops[%v]: walker %d != compiled %d", fn, op, n, cops[op])
			}
		}
	}
}

func TestCompileMatchesWalker(t *testing.T) {
	m := buildModel()
	for _, n := range []int64{0, 1, 7, 1000} {
		evalBoth(t, m, "outer", expr.EnvFromInts(map[string]int64{"n": n}))
		evalBoth(t, m, "inner", expr.EnvFromInts(map[string]int64{"m": n}))
	}
}

func TestCompileExclusiveMatchesWalker(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 9})
	cm, err := m.CompileExclusive("outer")
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.EvaluateExclusive("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cm.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("exclusive: walker %+v != compiled %+v", want, got)
	}
	if got.FPI() != 0 {
		t.Fatalf("exclusive outer should have no FPI (all in callee), got %d", got.FPI())
	}
}

func TestCompileUnknownFunction(t *testing.T) {
	m := buildModel()
	if _, err := m.Compile("nope"); err == nil {
		t.Fatal("Compile of unknown function succeeded")
	}
}

func TestCompileUnboundParameterFailsLikeWalker(t *testing.T) {
	m := buildModel()
	evalBoth(t, m, "outer", expr.Env{}) // n unbound: both must fail
}

// TestCompileMangledFallback exercises the paper's y_16 convention: a
// call with a statically underived argument resolves through the
// mangled parameter name, in both the walker and the compiled form.
func TestCompileMangledFallback(t *testing.T) {
	inner := &Func{
		Name:   "inner",
		Params: []string{"m"},
		Sites: []*Site{{
			Line: 2, Counts: catVec(ir.CatSSEArith, 1),
			Ops: map[ir.Op]int64{ir.ADDSD: 1}, Flops: 1, Instrs: 1,
			Mult: expr.P("m"),
		}},
	}
	outer := &Func{
		Name:   "outer",
		Params: []string{"n"},
		Calls: []*Call{{
			Callee: "inner", Line: 16,
			Mult:     expr.Const(1),
			Args:     map[string]expr.Expr{"m": nil},
			ArgOrder: []string{"m"},
		}},
	}
	m := &Model{Order: []string{"inner", "outer"}, Funcs: map[string]*Func{"inner": inner, "outer": outer}}

	// Bound mangled name: both paths resolve it.
	evalBoth(t, m, "outer", expr.EnvFromInts(map[string]int64{"n": 4, "m_16": 11}))
	// Unbound mangled name: both paths must fail.
	evalBoth(t, m, "outer", expr.EnvFromInts(map[string]int64{"n": 4}))
}

// TestCompileSumVariableCapture: inlining a callee whose summation
// variable shares a name with a caller parameter must not capture —
// substituting m -> Param("k") inside sum(k=...)[...m...] would make
// the caller's k read the summation index (evaluation resolves both
// through one namespace). The compiler alpha-renames the bound
// variable, so walker and compiled agree.
func TestCompileSumVariableCapture(t *testing.T) {
	// g(m): one site executed sum(k=0..m-1) floor((m-k)/2) times — the
	// FloorDiv body keeps the Sum from folding to a closed form.
	sumMult := expr.NewSum("k", expr.Const(0), expr.NewSub(expr.P("m"), expr.Const(1)),
		expr.NewFloorDiv(expr.NewSub(expr.P("m"), expr.V("k")), rational.FromInt(2)))
	if _, isSum := sumMult.(expr.Sum); !isSum {
		t.Fatalf("test setup: multiplicity folded to %s, need a live Sum", sumMult)
	}
	g := &Func{
		Name:   "g",
		Params: []string{"m"},
		Sites: []*Site{{
			Line: 2, Counts: catVec(ir.CatSSEArith, 1),
			Ops: map[ir.Op]int64{ir.ADDSD: 1}, Flops: 1, Instrs: 1,
			Mult: sumMult,
		}},
	}
	// f(k): calls g(k) — the caller's parameter is named like g's
	// summation variable.
	f := &Func{
		Name:   "f",
		Params: []string{"k"},
		Calls: []*Call{{
			Callee: "g", Line: 5,
			Mult:     expr.Const(1),
			Args:     map[string]expr.Expr{"m": expr.P("k")},
			ArgOrder: []string{"m"},
		}},
	}
	m := &Model{Order: []string{"g", "f"}, Funcs: map[string]*Func{"g": g, "f": f}}
	for k := int64(0); k <= 12; k++ {
		evalBoth(t, m, "f", expr.EnvFromInts(map[string]int64{"k": k}))
	}
}

// TestCompileUncomputableArgFallback: an argument expression the
// walkers cannot evaluate at runtime falls back to the mangled
// environment binding (the error hint's own advice); the compiled form
// must honor the same fallback, not fail the query.
func TestCompileUncomputableArgFallback(t *testing.T) {
	g := &Func{
		Name:   "g",
		Params: []string{"m"},
		Sites: []*Site{{
			Line: 2, Counts: catVec(ir.CatSSEArith, 1),
			Ops: map[ir.Op]int64{ir.ADDSD: 1}, Flops: 1, Instrs: 1,
			Mult: expr.P("m"),
		}},
	}
	f := &Func{
		Name:   "f",
		Params: []string{"a"},
		Calls: []*Call{{
			Callee: "g", Line: 9,
			Mult:     expr.Const(1),
			Args:     map[string]expr.Expr{"m": expr.NewAdd(expr.P("a"), expr.Const(1))},
			ArgOrder: []string{"m"},
		}},
	}
	m := &Model{Order: []string{"g", "f"}, Funcs: map[string]*Func{"g": g, "f": f}}

	// a bound: the derived expression computes; m_9 is ignored.
	evalBoth(t, m, "f", expr.EnvFromInts(map[string]int64{"a": 4}))
	evalBoth(t, m, "f", expr.EnvFromInts(map[string]int64{"a": 4, "m_9": 100}))
	// a unbound, m_9 bound: both paths must succeed via the fallback.
	env := expr.EnvFromInts(map[string]int64{"m_9": 5})
	want, err := m.Evaluate("f", env)
	if err != nil {
		t.Fatalf("walker rejected the mangled fallback: %v", err)
	}
	if want.FPI() != 5 {
		t.Fatalf("walker FPI = %d, want 5", want.FPI())
	}
	evalBoth(t, m, "f", env)
	// Neither bound: both paths must fail.
	evalBoth(t, m, "f", expr.Env{})
}

// TestCompileOverflow pins the ErrOverflow contract through the
// compiled path: a multiplicity product past int64 is a typed error,
// not a silent wrap, in walker and compiled form alike.
func TestCompileOverflow(t *testing.T) {
	// inner runs n*n times per call; outer calls it n times: n^3 ADDSD.
	inner := &Func{
		Name:   "inner",
		Params: []string{"m"},
		Sites: []*Site{{
			Line: 2, Counts: catVec(ir.CatSSEArith, 2),
			Ops: map[ir.Op]int64{ir.ADDSD: 2}, Flops: 2, Instrs: 2,
			Mult: expr.NewMul(expr.P("m"), expr.P("m")),
		}},
	}
	outer := &Func{
		Name:   "outer",
		Params: []string{"n"},
		Calls: []*Call{{
			Callee: "inner", Line: 5,
			Mult:     expr.P("n"),
			Args:     map[string]expr.Expr{"m": expr.P("n")},
			ArgOrder: []string{"m"},
		}},
	}
	m := &Model{Order: []string{"inner", "outer"}, Funcs: map[string]*Func{"inner": inner, "outer": outer}}

	cm, err := m.Compile("outer")
	if err != nil {
		t.Fatal(err)
	}
	// 3e6^3 = 2.7e19 > MaxInt64: the count itself wraps.
	env := expr.EnvFromInts(map[string]int64{"n": 3_000_000})
	if _, err := m.Evaluate("outer", env); !errors.Is(err, ErrOverflow) {
		t.Fatalf("walker overflow err = %v, want ErrOverflow", err)
	}
	if _, err := cm.Eval(env); !errors.Is(err, ErrOverflow) {
		t.Fatalf("compiled overflow err = %v, want ErrOverflow", err)
	}
	if err := m.evalOpcodes("outer", env, 0, map[ir.Op]int64{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("opcode walker overflow err = %v, want ErrOverflow", err)
	}
	if _, err := cm.EvalOps(env); !errors.Is(err, ErrOverflow) {
		t.Fatalf("compiled opcode overflow err = %v, want ErrOverflow", err)
	}
	// Just below the wrap boundary both paths still agree exactly.
	evalBoth(t, m, "outer", expr.EnvFromInts(map[string]int64{"n": 1_000_000}))
}

// TestCompileFractionalRounding pins the per-level round-to-nearest
// parity on br_frac-style fractional multiplicities, where collapsing
// the chain into one product would round differently than the walkers.
func TestCompileFractionalRounding(t *testing.T) {
	inner := &Func{
		Name:   "inner",
		Params: []string{"m"},
		Sites: []*Site{{
			Line: 2, Counts: catVec(ir.CatSSEArith, 1),
			Ops: map[ir.Op]int64{ir.ADDSD: 1}, Flops: 1, Instrs: 1,
			// 0.37*m: fractional for most m, rounds per level.
			Mult: expr.NewMul(expr.ConstRat(fr(37, 100)), expr.P("m")),
		}},
	}
	outer := &Func{
		Name:   "outer",
		Params: []string{"n"},
		Calls: []*Call{{
			Callee: "inner", Line: 7,
			// 0.5*n: ties round up, per level, before the product.
			Mult:     expr.NewMul(expr.ConstRat(fr(1, 2)), expr.P("n")),
			Args:     map[string]expr.Expr{"m": expr.P("n")},
			ArgOrder: []string{"m"},
		}},
	}
	m := &Model{Order: []string{"inner", "outer"}, Funcs: map[string]*Func{"inner": inner, "outer": outer}}
	for n := int64(0); n < 25; n++ {
		evalBoth(t, m, "outer", expr.EnvFromInts(map[string]int64{"n": n}))
	}
}

// TestCompileClosedForm checks the collapsed symbolic series: outer's
// FPI is 5 calls x (2n) ADDSD = 10n, readable straight off the expr.
func TestCompileClosedForm(t *testing.T) {
	m := buildModel()
	cm, err := m.Compile("outer")
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.Expr(ExprFPI).String(); got != "10*n" {
		t.Errorf("FPI closed form = %q, want 10*n", got)
	}
	if got := cm.Expr(ExprInstrs).String(); got != "(2 + 10*n)" {
		t.Errorf("instrs closed form = %q, want (2 + 10*n)", got)
	}
	if ps := cm.Params(); len(ps) != 1 || ps[0] != "n" {
		t.Errorf("params = %v, want [n]", ps)
	}
}

// TestCompileConstantFolding: a fully constant model compiles to terms
// with empty chains (everything folded), and still evaluates correctly.
func TestCompileConstantFolding(t *testing.T) {
	f := &Func{
		Name: "leaf",
		Sites: []*Site{
			{Line: 1, Counts: catVec(ir.CatIntData, 3), Instrs: 3, Mult: expr.Const(7),
				Ops: map[ir.Op]int64{ir.PUSH: 3}},
			{Line: 2, Counts: catVec(ir.CatIntData, 1), Instrs: 1, Mult: expr.Const(2),
				Ops: map[ir.Op]int64{ir.POP: 1}},
		},
	}
	m := &Model{Order: []string{"leaf"}, Funcs: map[string]*Func{"leaf": f}}
	cm, err := m.Compile("leaf")
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumExprs() != 0 {
		t.Errorf("constant model interned %d exprs, want 0", cm.NumExprs())
	}
	if cm.NumTerms() != 1 {
		t.Errorf("constant sites did not merge: %d terms, want 1", cm.NumTerms())
	}
	evalBoth(t, m, "leaf", expr.Env{})
}

func fr(num, den int64) rational.Rat { return rational.FromFrac(num, den) }
