// Package model defines Mira's generated performance model: per-function
// metric programs over symbolic multiplicities (paper Sec. III-C, Fig. 5).
//
// A Func mirrors one source function. Each Site pairs the instruction
// counts of one source position (from the bridge) with a symbolic
// execution-count expression (from the polyhedral model). Each Call records
// a callee invocation with its multiplicity and argument bindings; calls
// combine caller and callee metrics exactly like the paper's
// handle_function_call helper.
//
// The model is dual-form: it evaluates directly in Go (used by the
// validation harness and benches), and it emits Python source matching the
// paper's artifact style (see python.go).
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/rational"
)

// ErrOverflow is the typed error every evaluation path (tree walkers and
// the compiled path) returns when an instruction count or multiplicity
// no longer fits in int64. At sweep-scale sizes (dgemm n^3 flops) raw
// accumulation silently wraps negative and poisons every cache built on
// top; check with errors.Is.
var ErrOverflow = errors.New("count overflows int64")

// addChecked returns a+b, reporting overflow instead of wrapping.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulChecked returns a*b, reporting overflow instead of wrapping.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// |MinInt64| is not representable; the only safe partner is 1.
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Metrics is an evaluated instruction-count vector.
type Metrics struct {
	ByCategory [ir.NumCategories]int64
	Flops      int64
	Instrs     int64
}

// FPI returns the floating-point instruction count (PAPI_FP_INS analogue:
// the SSE2 packed/scalar arithmetic category).
func (m Metrics) FPI() int64 { return m.ByCategory[ir.CatSSEArith] }

// Add accumulates other scaled by mult, returning ErrOverflow instead of
// wrapping when any component leaves int64 range.
func (m *Metrics) Add(other Metrics, mult int64) error {
	saved := *m
	for c := range m.ByCategory {
		if !accumInto(&m.ByCategory[c], other.ByCategory[c], mult) {
			*m = saved
			return ErrOverflow
		}
	}
	if !accumInto(&m.Flops, other.Flops, mult) || !accumInto(&m.Instrs, other.Instrs, mult) {
		*m = saved
		return ErrOverflow
	}
	return nil
}

// accumInto adds n*mult into *dst, reporting overflow instead of
// wrapping. The one accumulation primitive shared by the tree walkers
// and the compiled path — their overflow policies must never diverge.
func accumInto(dst *int64, n, mult int64) bool {
	p, ok := mulChecked(n, mult)
	if !ok {
		return false
	}
	s, ok := addChecked(*dst, p)
	if !ok {
		return false
	}
	*dst = s
	return true
}

// Site is the cost of one source position.
type Site struct {
	Line, Col int
	Desc      string // source fragment or role, for readability
	Counts    [ir.NumCategories]int64
	Ops       map[ir.Op]int64 // per-opcode counts, for fine categorization
	Flops     int64
	Instrs    int64
	Mult      expr.Expr
}

// Call is one call site.
type Call struct {
	Callee    string
	Line, Col int
	Mult      expr.Expr
	// Args binds callee parameter names to caller-side expressions. A nil
	// entry means the argument could not be derived statically; its value
	// is looked up in the environment under MangledParam(name, line) — the
	// paper's "y_16" convention.
	Args map[string]expr.Expr
	// ArgOrder preserves the callee's declared parameter order.
	ArgOrder []string
}

// MangledParam names an unresolved call argument after the paper's
// convention: parameter name + call line.
func MangledParam(param string, line int) string {
	return fmt.Sprintf("%s_%d", param, line)
}

// Func is the model of one source function.
type Func struct {
	Name   string
	Params []string // declared numeric parameters, in order
	Extern bool     // library function: no visible body (counts are zero)
	Sites  []*Site
	Calls  []*Call
	// AnnotParams lists annotation-introduced parameters.
	AnnotParams []string
}

// Model is the whole-program model.
type Model struct {
	SourceName string
	Order      []string
	Funcs      map[string]*Func
}

// Lookup returns a function model.
func (m *Model) Lookup(name string) (*Func, bool) {
	f, ok := m.Funcs[name]
	return f, ok
}

// FreeParams returns every parameter name the function's expressions
// reference, sorted — the values callers (or users) must supply.
func (f *Func) FreeParams() []string {
	set := map[string]bool{}
	for _, s := range f.Sites {
		for _, p := range expr.Params(s.Mult) {
			set[p] = true
		}
	}
	for _, c := range f.Calls {
		for _, p := range expr.Params(c.Mult) {
			set[p] = true
		}
		for _, a := range c.Args {
			if a != nil {
				for _, p := range expr.Params(a) {
					set[p] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// roundMult converts an evaluated multiplicity to an integer count.
// Fractional multiplicities arise from br_frac annotations; every model
// walker must round identically — to nearest, ties up — or the per-opcode
// view (Table II, the fine categories) silently drifts from Evaluate.
// A multiplicity whose rounded value leaves int64 range is ErrOverflow
// (it used to silently become whatever big.Int.Int64 truncates to).
var oneHalf = rational.FromFrac(1, 2)

func roundMult(mult rational.Rat) (int64, error) {
	if mi, ok := mult.Int64(); ok {
		return mi, nil
	}
	mi, ok := mult.Add(oneHalf).Floor().Int64()
	if !ok {
		return 0, fmt.Errorf("multiplicity %s: %w", mult, ErrOverflow)
	}
	return mi, nil
}

// bindEnv builds the callee environment for one call from the caller's:
// inherit everything, then override with statically derived argument
// bindings. Arguments the analysis could not derive (nil expressions) and
// arguments whose expressions are not computable in this environment fall
// back to the mangled-name convention (paper's "y_16"); when the mangled
// name is also unbound, a nil argument deletes the parameter so the callee
// reports it unbound, while an uncomputable expression is a hard error.
// unresolved lists the mangled names the environment did not supply, for
// diagnostics on callee failure. Both model walkers must build callee
// environments through this one helper — a caller-scope binding leaking
// through for one walker but not the other evaluates the same program in
// two different environments.
func (c *Call) bindEnv(env expr.Env) (childEnv expr.Env, unresolved []string, err error) {
	childEnv = make(expr.Env, len(env)+len(c.Args))
	for k, v := range env {
		childEnv[k] = v
	}
	for param, argE := range c.Args {
		if argE == nil {
			mangled := MangledParam(param, c.Line)
			if v, ok := env[mangled]; ok {
				childEnv[param] = v
			} else {
				delete(childEnv, param)
				unresolved = append(unresolved, mangled)
			}
			continue
		}
		v, evalErr := expr.Eval(argE, env)
		if evalErr != nil {
			// Not computable in this environment; fall back to the
			// mangled-name convention.
			mangled := MangledParam(param, c.Line)
			if mv, ok := env[mangled]; ok {
				childEnv[param] = mv
				continue
			}
			return nil, nil, fmt.Errorf("argument %q of %s at line %d: %w (bind %q to supply it)",
				param, c.Callee, c.Line, evalErr, mangled)
		}
		childEnv[param] = v
	}
	// c.Args is a map: sort the hint so the same failing query produces
	// the same diagnostic bytes on every call (identical queries must be
	// byte-identical — they are cached and compared).
	sort.Strings(unresolved)
	return childEnv, unresolved, nil
}

// EvalOptions tunes evaluation.
type EvalOptions struct {
	// Exclusive skips callee contributions.
	Exclusive bool
	// MaxDepth bounds call recursion (defensive; sema rejects recursion).
	MaxDepth int
}

// Evaluate computes the inclusive metrics of function name under the given
// parameter environment. Callee environments inherit the caller's and are
// overridden by statically derived argument bindings; unresolved arguments
// are looked up under their mangled names.
func (m *Model) Evaluate(name string, env expr.Env) (Metrics, error) {
	return m.eval(name, env, EvalOptions{MaxDepth: 64}, 0)
}

// EvaluateExclusive computes body-only metrics.
func (m *Model) EvaluateExclusive(name string, env expr.Env) (Metrics, error) {
	return m.eval(name, env, EvalOptions{Exclusive: true, MaxDepth: 64}, 0)
}

func (m *Model) eval(name string, env expr.Env, opts EvalOptions, depth int) (Metrics, error) {
	var out Metrics
	if depth > opts.MaxDepth {
		return out, fmt.Errorf("model: call depth exceeds %d at %q", opts.MaxDepth, name)
	}
	f, ok := m.Funcs[name]
	if !ok {
		return out, fmt.Errorf("model: no function %q", name)
	}
	if f.Extern {
		return out, nil // invisible to static analysis (paper Sec. IV-D1)
	}
	for _, s := range f.Sites {
		mult, err := expr.Eval(s.Mult, env)
		if err != nil {
			return out, fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
		mi, err := roundMult(mult)
		if err != nil {
			return out, fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
		if err := out.Add(Metrics{ByCategory: s.Counts, Flops: s.Flops, Instrs: s.Instrs}, mi); err != nil {
			return out, fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
	}
	if opts.Exclusive {
		return out, nil
	}
	for _, call := range f.Calls {
		mult, err := expr.Eval(call.Mult, env)
		if err != nil {
			return out, fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
		}
		mi, err := roundMult(mult)
		if err != nil {
			return out, fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
		}
		if mi == 0 {
			continue
		}
		childEnv, unresolved, err := call.bindEnv(env)
		if err != nil {
			return out, fmt.Errorf("model: %s: %w", name, err)
		}
		sub, err := m.eval(call.Callee, childEnv, opts, depth+1)
		if err != nil {
			if len(unresolved) > 0 {
				return out, fmt.Errorf("%w (call at line %d has statically unresolved arguments; "+
					"bind them in the environment as %v — the paper's y_16 convention)",
					err, call.Line, unresolved)
			}
			return out, err
		}
		if err := out.Add(sub, mi); err != nil {
			return out, fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
		}
	}
	return out, nil
}

// EvaluateOpcodes computes inclusive per-opcode counts of function name
// under env — the granularity the architecture description file's 64
// categories (and Table II / Fig. 6) consume.
func (m *Model) EvaluateOpcodes(name string, env expr.Env) (map[ir.Op]int64, error) {
	out := map[ir.Op]int64{}
	err := m.evalOpcodes(name, env, 0, out)
	return out, err
}

func (m *Model) evalOpcodes(name string, env expr.Env, depth int, acc map[ir.Op]int64) error {
	if depth > 64 {
		return fmt.Errorf("model: call depth exceeded at %q", name)
	}
	f, ok := m.Funcs[name]
	if !ok {
		return fmt.Errorf("model: no function %q", name)
	}
	if f.Extern {
		return nil
	}
	for _, s := range f.Sites {
		mult, err := expr.Eval(s.Mult, env)
		if err != nil {
			return fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
		mi, err := roundMult(mult)
		if err != nil {
			return fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
		for op, n := range s.Ops {
			if err := accumOp(acc, op, n, mi); err != nil {
				return fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
			}
		}
	}
	for _, call := range f.Calls {
		mult, err := expr.Eval(call.Mult, env)
		if err != nil {
			return fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
		}
		mi, err := roundMult(mult)
		if err != nil {
			return fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
		}
		if mi == 0 {
			continue
		}
		childEnv, unresolved, err := call.bindEnv(env)
		if err != nil {
			return fmt.Errorf("model: %s: %w", name, err)
		}
		sub := map[ir.Op]int64{}
		if err := m.evalOpcodes(call.Callee, childEnv, depth+1, sub); err != nil {
			if len(unresolved) > 0 {
				return fmt.Errorf("%w (call at line %d has statically unresolved arguments; "+
					"bind them in the environment as %v — the paper's y_16 convention)",
					err, call.Line, unresolved)
			}
			return err
		}
		for op, n := range sub {
			if err := accumOp(acc, op, n, mi); err != nil {
				return fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
			}
		}
	}
	return nil
}

// accumOp adds n*mult into acc[op] with overflow checks. A zero
// contribution is a no-op: it must not materialize a zero-valued key,
// which would leak "category: 0" rows into the bucketed views and make
// the map's key set depend on which multiplicities happened to round to
// zero.
func accumOp(acc map[ir.Op]int64, op ir.Op, n, mult int64) error {
	p, ok := mulChecked(n, mult)
	if !ok {
		return ErrOverflow
	}
	if p == 0 {
		return nil
	}
	s, ok := addChecked(acc[op], p)
	if !ok {
		return ErrOverflow
	}
	acc[op] = s
	return nil
}

// CategoryTable returns the evaluated metrics as sorted (category, count)
// rows — the shape of the paper's Table II.
func CategoryTable(met Metrics) []struct {
	Category string
	Count    int64
} {
	var rows []struct {
		Category string
		Count    int64
	}
	for c := 0; c < int(ir.NumCategories); c++ {
		if met.ByCategory[c] == 0 {
			continue
		}
		rows = append(rows, struct {
			Category string
			Count    int64
		}{ir.Category(c).String(), met.ByCategory[c]})
	}
	// Count-descending with a name tiebreak: tied rows must render in the
	// same order on every run (outputs are cached and byte-compared).
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Category < rows[j].Category
	})
	return rows
}
