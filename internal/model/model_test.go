package model

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/rational"
)

// buildModel constructs a small two-function model by hand:
//
//	inner(m): loop of m ADDSD
//	outer(n): calls inner(n*2) five times
func buildModel() *Model {
	inner := &Func{
		Name:   "inner",
		Params: []string{"m"},
		Sites: []*Site{
			{
				Line: 2, Col: 1, Desc: "s = s + 1.0",
				Counts: catVec(ir.CatSSEArith, 1),
				Ops:    map[ir.Op]int64{ir.ADDSD: 1},
				Flops:  1, Instrs: 1,
				Mult: expr.P("m"),
			},
		},
	}
	outer := &Func{
		Name:   "outer",
		Params: []string{"n"},
		Sites: []*Site{
			{
				Line: 10, Col: 1, Desc: "prologue",
				Counts: catVec(ir.CatIntData, 2),
				Ops:    map[ir.Op]int64{ir.PUSH: 1, ir.POP: 1},
				Instrs: 2,
				Mult:   expr.Const(1),
			},
		},
		Calls: []*Call{
			{
				Callee: "inner", Line: 12,
				Mult:     expr.Const(5),
				Args:     map[string]expr.Expr{"m": expr.NewMul(expr.Const(2), expr.P("n"))},
				ArgOrder: []string{"m"},
			},
		},
	}
	lib := &Func{Name: "sqrt", Params: []string{"x"}, Extern: true}
	return &Model{
		SourceName: "hand.c",
		Order:      []string{"inner", "outer", "sqrt"},
		Funcs:      map[string]*Func{"inner": inner, "outer": outer, "sqrt": lib},
	}
}

func catVec(c ir.Category, n int64) [ir.NumCategories]int64 {
	var v [ir.NumCategories]int64
	v[c] = n
	return v
}

func TestEvaluateInclusive(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	met, err := m.Evaluate("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	// 5 calls x (2*10) ADDSD = 100 FPI plus 2 prologue instructions.
	if met.FPI() != 100 {
		t.Errorf("FPI = %d, want 100", met.FPI())
	}
	if met.Instrs != 102 {
		t.Errorf("instrs = %d, want 102", met.Instrs)
	}
}

func TestEvaluateExclusive(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	met, err := m.EvaluateExclusive("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	if met.FPI() != 0 || met.Instrs != 2 {
		t.Errorf("exclusive = %+v", met)
	}
}

func TestEvaluateOpcodes(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 3})
	ops, err := m.EvaluateOpcodes("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	if ops[ir.ADDSD] != 30 || ops[ir.PUSH] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestExternIsZero(t *testing.T) {
	m := buildModel()
	met, err := m.Evaluate("sqrt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.Instrs != 0 {
		t.Errorf("extern metrics = %+v", met)
	}
}

func TestMissingFunction(t *testing.T) {
	m := buildModel()
	if _, err := m.Evaluate("ghost", nil); err == nil {
		t.Error("missing function accepted")
	}
}

func TestUnboundParameterError(t *testing.T) {
	m := buildModel()
	_, err := m.Evaluate("outer", nil) // n unbound
	if err == nil || !strings.Contains(err.Error(), "n") {
		t.Errorf("err = %v", err)
	}
}

func TestFreeParams(t *testing.T) {
	m := buildModel()
	ps := m.Funcs["outer"].FreeParams()
	if len(ps) != 1 || ps[0] != "n" {
		t.Errorf("free params = %v", ps)
	}
}

func TestMetricsAdd(t *testing.T) {
	var a Metrics
	b := Metrics{Flops: 2, Instrs: 5}
	b.ByCategory[ir.CatSSEArith] = 3
	if err := a.Add(b, 4); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if a.Flops != 8 || a.Instrs != 20 || a.FPI() != 12 {
		t.Errorf("a = %+v", a)
	}
}

func TestMetricsAddOverflow(t *testing.T) {
	var a Metrics
	b := Metrics{Instrs: 3}
	// 3 * (MaxInt64/2) overflows in the multiply.
	if err := a.Add(b, math.MaxInt64/2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Add overflow err = %v, want ErrOverflow", err)
	}
	if a.Instrs != 0 {
		t.Errorf("failed Add mutated the receiver: %+v", a)
	}
	// Accumulation overflow: two adds that each fit but whose sum wraps.
	a = Metrics{Instrs: math.MaxInt64 - 1}
	if err := a.Add(Metrics{Instrs: 2}, 1); !errors.Is(err, ErrOverflow) {
		t.Fatalf("accumulate overflow err = %v, want ErrOverflow", err)
	}
}

func TestCategoryTable(t *testing.T) {
	met := Metrics{}
	met.ByCategory[ir.CatSSEArith] = 5
	met.ByCategory[ir.CatIntData] = 50
	rows := CategoryTable(met)
	if len(rows) != 2 || rows[0].Count != 50 {
		t.Errorf("rows = %+v", rows)
	}
}

// TestCategoryTableTieOrder is the golden order for tied counts: rows
// with equal counts sort by category name, so the rendered table is
// byte-identical on every run (unstable sort.Slice used to shuffle
// them).
func TestCategoryTableTieOrder(t *testing.T) {
	met := Metrics{}
	met.ByCategory[ir.CatSSEArith] = 7
	met.ByCategory[ir.CatIntData] = 7
	met.ByCategory[ir.CatIntArith] = 7
	met.ByCategory[ir.CatIntControl] = 9
	want := []string{
		ir.CatIntControl.String(), // 9 first
		// The three tied at 7, alphabetically:
		ir.CatIntArith.String(),
		ir.CatIntData.String(),
		ir.CatSSEArith.String(),
	}
	sort.Strings(want[1:])
	for run := 0; run < 20; run++ {
		rows := CategoryTable(met)
		if len(rows) != 4 {
			t.Fatalf("rows = %+v", rows)
		}
		for i, w := range want {
			if rows[i].Category != w {
				t.Fatalf("run %d: row %d = %q, want %q (tied rows must sort by name)",
					run, i, rows[i].Category, w)
			}
		}
	}
}

func TestMangledParam(t *testing.T) {
	if got := MangledParam("y", 16); got != "y_16" {
		t.Errorf("MangledParam = %q, want y_16 (the paper's convention)", got)
	}
}

func TestPythonEmission(t *testing.T) {
	m := buildModel()
	py := m.EmitPython()
	for _, want := range []string{
		"def handle_function_call(caller, callee, count):",
		"def inner_1(m):",
		"def outer_1(n):",
		"def sqrt_1(x):",
		"external library function",
		"handle_function_call(metrics, inner_1(2*n), 5)",
		"SSE2 packed arithmetic instruction",
	} {
		if !strings.Contains(py, want) {
			t.Errorf("python missing %q\n----\n%s", want, py)
		}
	}
}

func TestPyFuncNameConventions(t *testing.T) {
	cases := []struct {
		f    *Func
		want string
	}{
		{&Func{Name: "A::foo", Params: []string{"x", "y"}}, "A_foo_2"},
		{&Func{Name: "main"}, "main_0"},
		{&Func{Name: "MatVec::operator()", Params: []string{"n", "A", "x", "y"}}, "MatVec_operator_call_4"},
	}
	for _, c := range cases {
		if got := PyFuncName(c.f); got != c.want {
			t.Errorf("PyFuncName(%s) = %q, want %q", c.f.Name, got, c.want)
		}
	}
}

// opsTotal sums a per-opcode count map — the instruction total the
// opcode walker implies.
func opsTotal(ops map[ir.Op]int64) int64 {
	var n int64
	for _, c := range ops {
		n += c
	}
	return n
}

// fracModel builds a model whose multiplicities are fractional (the
// br_frac shape): a site executed n/4 times and a callee invoked 5/2
// times. Both walkers must round these identically.
func fracModel() *Model {
	leaf := &Func{
		Name: "leaf",
		Sites: []*Site{
			{
				Line: 2, Col: 1, Desc: "body",
				Counts: catVec(ir.CatSSEArith, 1),
				Ops:    map[ir.Op]int64{ir.ADDSD: 1},
				Flops:  1, Instrs: 1,
				Mult: expr.Const(7),
			},
		},
	}
	top := &Func{
		Name:   "top",
		Params: []string{"n"},
		Sites: []*Site{
			{
				Line: 10, Col: 1, Desc: "guarded",
				Counts: catVec(ir.CatSSEArith, 1),
				Ops:    map[ir.Op]int64{ir.MULSD: 1},
				Flops:  1, Instrs: 1,
				// n/4 executions: fractional for n not divisible by 4.
				Mult: expr.NewMul(expr.ConstRat(rational.FromFrac(1, 4)), expr.P("n")),
			},
		},
		Calls: []*Call{
			{
				Callee: "leaf", Line: 12,
				// 5/2 invocations: rounds to 3, truncates to 2.
				Mult: expr.ConstRat(rational.FromFrac(5, 2)),
				Args: map[string]expr.Expr{},
			},
		},
	}
	return &Model{
		SourceName: "frac.c",
		Order:      []string{"leaf", "top"},
		Funcs:      map[string]*Func{"leaf": leaf, "top": top},
	}
}

// TestFractionalMultiplicityAgreement is the regression test for the
// rounding divergence: evalOpcodes used to truncate fractional
// multiplicities where eval rounded to nearest, so Table II totals
// disagreed with Evaluate on br_frac-annotated programs.
func TestFractionalMultiplicityAgreement(t *testing.T) {
	m := fracModel()
	for _, n := range []int64{1, 2, 3, 5, 6, 7, 101, 102, 103} {
		env := expr.EnvFromInts(map[string]int64{"n": n})
		met, err := m.Evaluate("top", env)
		if err != nil {
			t.Fatalf("n=%d: Evaluate: %v", n, err)
		}
		ops, err := m.EvaluateOpcodes("top", env)
		if err != nil {
			t.Fatalf("n=%d: EvaluateOpcodes: %v", n, err)
		}
		if got := opsTotal(ops); got != met.Instrs {
			t.Errorf("n=%d: opcode total %d != Evaluate instrs %d", n, got, met.Instrs)
		}
	}
	// Spot-check the rounding direction: n=2 gives site mult 1/2 -> 1
	// (round to nearest, ties up) and call mult 5/2 -> 3 calls of 7.
	env := expr.EnvFromInts(map[string]int64{"n": 2})
	met, err := m.Evaluate("top", env)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1 + 3*7); met.Instrs != want {
		t.Errorf("Instrs = %d, want %d", met.Instrs, want)
	}
	ops, err := m.EvaluateOpcodes("top", env)
	if err != nil {
		t.Fatal(err)
	}
	if ops[ir.ADDSD] != 21 || ops[ir.MULSD] != 1 {
		t.Errorf("ops = %v, want ADDSD=21 MULSD=1", ops)
	}
}

// bindModel builds a caller whose argument expression is not computable
// (it references an unbound name) while the caller's own scope binds the
// callee's parameter name — the shape where evalOpcodes used to leak the
// stale caller binding into the callee instead of applying the
// mangled-name fallback.
func bindModel() *Model {
	callee := &Func{
		Name:   "callee",
		Params: []string{"m"},
		Sites: []*Site{
			{
				Line: 2, Col: 1, Desc: "body",
				Counts: catVec(ir.CatSSEArith, 1),
				Ops:    map[ir.Op]int64{ir.ADDSD: 1},
				Flops:  1, Instrs: 1,
				Mult: expr.P("m"),
			},
		},
	}
	caller := &Func{
		Name:   "caller",
		Params: []string{"m"}, // same name as the callee's parameter
		Calls: []*Call{
			{
				Callee: "callee", Line: 12,
				Mult:     expr.Const(1),
				Args:     map[string]expr.Expr{"m": expr.P("q")}, // q never bound
				ArgOrder: []string{"m"},
			},
		},
	}
	return &Model{
		SourceName: "bind.c",
		Order:      []string{"callee", "caller"},
		Funcs:      map[string]*Func{"callee": callee, "caller": caller},
	}
}

// TestCallArgBindingAgreement is the regression test for the argument-
// binding divergence: with the mangled name bound, both walkers must use
// it (not the caller-scope value); without it, both must fail the same
// way rather than one walker silently reusing the caller's binding.
func TestCallArgBindingAgreement(t *testing.T) {
	m := bindModel()

	// Mangled name supplied: callee sees m_12=100, not the caller's m=5.
	env := expr.EnvFromInts(map[string]int64{"m": 5, "m_12": 100})
	met, err := m.Evaluate("caller", env)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if met.Instrs != 100 {
		t.Errorf("Evaluate instrs = %d, want 100 (mangled binding)", met.Instrs)
	}
	ops, err := m.EvaluateOpcodes("caller", env)
	if err != nil {
		t.Fatalf("EvaluateOpcodes: %v", err)
	}
	if ops[ir.ADDSD] != 100 {
		t.Errorf("EvaluateOpcodes ADDSD = %d, want 100 (stale caller-scope binding leaked?)", ops[ir.ADDSD])
	}

	// Mangled name absent: both walkers must report the uncomputable
	// argument, not fall back to the caller's m.
	env = expr.EnvFromInts(map[string]int64{"m": 5})
	if _, err := m.Evaluate("caller", env); err == nil || !strings.Contains(err.Error(), "m_12") {
		t.Errorf("Evaluate err = %v, want mangled-name diagnostic", err)
	}
	if _, err := m.EvaluateOpcodes("caller", env); err == nil || !strings.Contains(err.Error(), "m_12") {
		t.Errorf("EvaluateOpcodes err = %v, want mangled-name diagnostic", err)
	}
}
