package model

import (
	"strings"
	"testing"

	"mira/internal/expr"
	"mira/internal/ir"
)

// buildModel constructs a small two-function model by hand:
//
//	inner(m): loop of m ADDSD
//	outer(n): calls inner(n*2) five times
func buildModel() *Model {
	inner := &Func{
		Name:   "inner",
		Params: []string{"m"},
		Sites: []*Site{
			{
				Line: 2, Col: 1, Desc: "s = s + 1.0",
				Counts: catVec(ir.CatSSEArith, 1),
				Ops:    map[ir.Op]int64{ir.ADDSD: 1},
				Flops:  1, Instrs: 1,
				Mult: expr.P("m"),
			},
		},
	}
	outer := &Func{
		Name:   "outer",
		Params: []string{"n"},
		Sites: []*Site{
			{
				Line: 10, Col: 1, Desc: "prologue",
				Counts: catVec(ir.CatIntData, 2),
				Ops:    map[ir.Op]int64{ir.PUSH: 1, ir.POP: 1},
				Instrs: 2,
				Mult:   expr.Const(1),
			},
		},
		Calls: []*Call{
			{
				Callee: "inner", Line: 12,
				Mult:     expr.Const(5),
				Args:     map[string]expr.Expr{"m": expr.NewMul(expr.Const(2), expr.P("n"))},
				ArgOrder: []string{"m"},
			},
		},
	}
	lib := &Func{Name: "sqrt", Params: []string{"x"}, Extern: true}
	return &Model{
		SourceName: "hand.c",
		Order:      []string{"inner", "outer", "sqrt"},
		Funcs:      map[string]*Func{"inner": inner, "outer": outer, "sqrt": lib},
	}
}

func catVec(c ir.Category, n int64) [ir.NumCategories]int64 {
	var v [ir.NumCategories]int64
	v[c] = n
	return v
}

func TestEvaluateInclusive(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	met, err := m.Evaluate("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	// 5 calls x (2*10) ADDSD = 100 FPI plus 2 prologue instructions.
	if met.FPI() != 100 {
		t.Errorf("FPI = %d, want 100", met.FPI())
	}
	if met.Instrs != 102 {
		t.Errorf("instrs = %d, want 102", met.Instrs)
	}
}

func TestEvaluateExclusive(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	met, err := m.EvaluateExclusive("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	if met.FPI() != 0 || met.Instrs != 2 {
		t.Errorf("exclusive = %+v", met)
	}
}

func TestEvaluateOpcodes(t *testing.T) {
	m := buildModel()
	env := expr.EnvFromInts(map[string]int64{"n": 3})
	ops, err := m.EvaluateOpcodes("outer", env)
	if err != nil {
		t.Fatal(err)
	}
	if ops[ir.ADDSD] != 30 || ops[ir.PUSH] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestExternIsZero(t *testing.T) {
	m := buildModel()
	met, err := m.Evaluate("sqrt", nil)
	if err != nil {
		t.Fatal(err)
	}
	if met.Instrs != 0 {
		t.Errorf("extern metrics = %+v", met)
	}
}

func TestMissingFunction(t *testing.T) {
	m := buildModel()
	if _, err := m.Evaluate("ghost", nil); err == nil {
		t.Error("missing function accepted")
	}
}

func TestUnboundParameterError(t *testing.T) {
	m := buildModel()
	_, err := m.Evaluate("outer", nil) // n unbound
	if err == nil || !strings.Contains(err.Error(), "n") {
		t.Errorf("err = %v", err)
	}
}

func TestFreeParams(t *testing.T) {
	m := buildModel()
	ps := m.Funcs["outer"].FreeParams()
	if len(ps) != 1 || ps[0] != "n" {
		t.Errorf("free params = %v", ps)
	}
}

func TestMetricsAdd(t *testing.T) {
	var a Metrics
	b := Metrics{Flops: 2, Instrs: 5}
	b.ByCategory[ir.CatSSEArith] = 3
	a.Add(b, 4)
	if a.Flops != 8 || a.Instrs != 20 || a.FPI() != 12 {
		t.Errorf("a = %+v", a)
	}
}

func TestCategoryTable(t *testing.T) {
	met := Metrics{}
	met.ByCategory[ir.CatSSEArith] = 5
	met.ByCategory[ir.CatIntData] = 50
	rows := CategoryTable(met)
	if len(rows) != 2 || rows[0].Count != 50 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestMangledParam(t *testing.T) {
	if got := MangledParam("y", 16); got != "y_16" {
		t.Errorf("MangledParam = %q, want y_16 (the paper's convention)", got)
	}
}

func TestPythonEmission(t *testing.T) {
	m := buildModel()
	py := m.EmitPython()
	for _, want := range []string{
		"def handle_function_call(caller, callee, count):",
		"def inner_1(m):",
		"def outer_1(n):",
		"def sqrt_1(x):",
		"external library function",
		"handle_function_call(metrics, inner_1(2*n), 5)",
		"SSE2 packed arithmetic instruction",
	} {
		if !strings.Contains(py, want) {
			t.Errorf("python missing %q\n----\n%s", want, py)
		}
	}
}

func TestPyFuncNameConventions(t *testing.T) {
	cases := []struct {
		f    *Func
		want string
	}{
		{&Func{Name: "A::foo", Params: []string{"x", "y"}}, "A_foo_2"},
		{&Func{Name: "main"}, "main_0"},
		{&Func{Name: "MatVec::operator()", Params: []string{"n", "A", "x", "y"}}, "MatVec_operator_call_4"},
	}
	for _, c := range cases {
		if got := PyFuncName(c.f); got != c.want {
			t.Errorf("PyFuncName(%s) = %q, want %q", c.f.Name, got, c.want)
		}
	}
}
