// Symbolic compilation: partial evaluation of a model's call tree into a
// closed form (paper Sec. IV-D1: "the model ... can be evaluated at low
// computational cost").
//
// The tree walkers in model.go re-walk every function body, re-copy every
// callee environment, and re-evaluate every multiplicity on each query.
// That is fine for one point, and the engine memoizes repeated points —
// but a parameter sweep visits each point exactly once, so the memo never
// hits and a 10k-point grid costs 10k full tree walks. Compile does the
// walk once, symbolically:
//
//   - callee models are inlined through the same argument-binding rules
//     as bindEnv, with the whole binding environment substituted
//     simultaneously into the callee's expressions,
//   - constant multiplicities fold at compile time (a constant-trip call
//     chain collapses into pre-scaled counts),
//   - sites reached with an identical multiplicity chain merge into one
//     term, and
//   - the surviving symbolic multiplicities are interned so a chain
//     shared by many terms evaluates once per point.
//
// The result evaluates with no recursion and no environment copying: a
// flat pass over terms, each term a handful of int64 multiplies against
// per-point values of the interned expressions.
//
// Fidelity contract: CompiledModel.Eval returns exactly Evaluate's
// metrics (and EvalOps exactly EvaluateOpcodes'), including the walkers'
// per-level round-to-nearest of each multiplicity, the skip of a subtree
// whose call multiplicity rounds to zero, ErrOverflow on counts that
// leave int64, and bindEnv's runtime fallback from an uncomputable
// derived argument to its mangled environment binding (expr.Fallback
// carries that behavior into the compiled form). The two paths succeed
// together with equal values or fail together; only error wording may
// differ.
package model

import (
	"fmt"
	"sort"

	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/rational"
)

// maxCompileDepth mirrors the walkers' recursion bound (defensive; sema
// rejects recursive programs).
const maxCompileDepth = 64

// chainElem is one link of a term's multiplicity chain: an index into
// the compiled model's interned expressions. A probe element reproduces
// the walkers' eager argument evaluation in bindEnv — it is evaluated
// for its error (an unbound parameter must fail the query exactly where
// the tree walk fails it) but its value never enters the product.
type chainElem struct {
	idx   int
	probe bool
}

// term is one merged group of sites sharing a multiplicity chain. Counts
// are pre-scaled by every constant multiplicity folded at compile time;
// the chain holds only the symbolic remainder, outermost first, each
// element rounded independently per point exactly as the walkers round
// each level of the call tree. cats is the sparse form of counts
// (nonzero categories only), derived once at the end of compilation —
// the per-point hot loop iterates it instead of the dense vector.
type term struct {
	chain  []chainElem
	counts [ir.NumCategories]int64
	cats   []catCount
	flops  int64
	instrs int64
	ops    map[ir.Op]int64
}

// catCount is one nonzero (category, count) entry of a term.
type catCount struct {
	cat int
	n   int64
}

// CompiledModel is one function's call tree partially evaluated to
// closed form. Build with Model.Compile / Model.CompileExclusive; safe
// for concurrent use (immutable after compilation).
type CompiledModel struct {
	fn        string
	exclusive bool
	params    []string
	exprs     []expr.Expr
	terms     []term
	// model backs the failure path: a point the flat pass cannot
	// evaluate is re-run through the tree walker, which owns the full
	// runtime semantics of failure — bindEnv's fallback from an
	// uncomputable derived argument to its mangled environment binding
	// (the paper's y_16 convention), and the canonical error wording.
	model *Model
}

// Fn returns the compiled function's name.
func (cm *CompiledModel) Fn() string { return cm.fn }

// Exclusive reports whether the compilation was body-only.
func (cm *CompiledModel) Exclusive() bool { return cm.exclusive }

// Params returns the free parameters the compiled form evaluates over,
// sorted — the axes a sweep must bind.
func (cm *CompiledModel) Params() []string {
	out := make([]string, len(cm.params))
	copy(out, cm.params)
	return out
}

// NumTerms reports the merged term count (compilation quality metric).
func (cm *CompiledModel) NumTerms() int { return len(cm.terms) }

// NumExprs reports the count of distinct interned multiplicity
// expressions — the per-point symbolic evaluation cost.
func (cm *CompiledModel) NumExprs() int { return len(cm.exprs) }

// Compile partially evaluates fn's inclusive call tree to closed form.
func (m *Model) Compile(fn string) (*CompiledModel, error) {
	return m.compile(fn, false)
}

// CompileExclusive compiles fn's body-only (callee-free) metrics.
func (m *Model) CompileExclusive(fn string) (*CompiledModel, error) {
	return m.compile(fn, true)
}

func (m *Model) compile(fn string, exclusive bool) (*CompiledModel, error) {
	if _, ok := m.Funcs[fn]; !ok {
		return nil, fmt.Errorf("model: no function %q", fn)
	}
	c := &compiler{
		m:       m,
		cm:      &CompiledModel{fn: fn, exclusive: exclusive, model: m},
		exprIdx: map[string]int{},
		termIdx: map[string]int{},
	}
	if err := c.inline(fn, nil, nil, 1, exclusive, 0); err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, e := range c.cm.exprs {
		for _, p := range expr.Params(e) {
			set[p] = true
		}
	}
	c.cm.params = make([]string, 0, len(set))
	for p := range set {
		c.cm.params = append(c.cm.params, p)
	}
	sort.Strings(c.cm.params)
	for i := range c.cm.terms {
		t := &c.cm.terms[i]
		for cat, n := range t.counts {
			if n != 0 {
				t.cats = append(t.cats, catCount{cat: cat, n: n})
			}
		}
	}
	return c.cm, nil
}

type compiler struct {
	m       *Model
	cm      *CompiledModel
	exprIdx map[string]int // canonical expr string -> index into cm.exprs
	termIdx map[string]int // chain signature -> index into cm.terms
}

// intern deduplicates a multiplicity expression by its canonical string.
func (c *compiler) intern(e expr.Expr) int {
	key := e.String()
	if i, ok := c.exprIdx[key]; ok {
		return i
	}
	i := len(c.cm.exprs)
	c.cm.exprs = append(c.cm.exprs, e)
	c.exprIdx[key] = i
	return i
}

// appendElem extends a chain without aliasing the parent's backing array
// (sibling sites and calls share the inherited prefix).
func appendElem(chain []chainElem, idx int, probe bool) []chainElem {
	out := make([]chainElem, len(chain)+1)
	copy(out, chain)
	out[len(chain)] = chainElem{idx: idx, probe: probe}
	return out
}

// foldMult handles one substituted multiplicity: a constant rounds and
// folds into the running constant factor (a zero prunes the whole
// subtree, matching the walkers' skip), anything symbolic — including a
// constant whose rounding overflows, which must only fail queries that
// actually reach it — extends the chain. The returned prune flag means
// the multiplicity is constant zero.
func (c *compiler) foldMult(me expr.Expr, chain []chainElem, constMult int64) (_ []chainElem, _ int64, prune bool) {
	if v, ok := expr.ConstVal(me); ok {
		if mi, err := roundMult(v); err == nil {
			if mi == 0 {
				return chain, constMult, true
			}
			if p, ok := mulChecked(constMult, mi); ok {
				return chain, p, false
			}
		}
	}
	return appendElem(chain, c.intern(me), false), constMult, false
}

// inline descends fn's model under a symbolic environment (parameter ->
// expression over the root function's parameter space), emitting one
// term per reached site. chain and constMult carry the multiplicities
// accumulated from the root down to this function.
func (c *compiler) inline(name string, sym map[string]expr.Expr, chain []chainElem, constMult int64, exclusive bool, depth int) error {
	if depth > maxCompileDepth {
		return fmt.Errorf("model: call depth exceeds %d at %q", maxCompileDepth, name)
	}
	f, ok := c.m.Funcs[name]
	if !ok {
		return fmt.Errorf("model: no function %q", name)
	}
	if f.Extern {
		return nil // invisible to static analysis (paper Sec. IV-D1)
	}
	for _, s := range f.Sites {
		tChain, tConst, prune := c.foldMult(expr.SubstituteAll(s.Mult, sym), chain, constMult)
		if prune {
			continue
		}
		if err := c.emit(tChain, tConst, s); err != nil {
			return fmt.Errorf("model: %s line %d: %w", name, s.Line, err)
		}
	}
	if exclusive {
		return nil
	}
	for _, call := range f.Calls {
		cChain, cConst, prune := c.foldMult(expr.SubstituteAll(call.Mult, sym), chain, constMult)
		if prune {
			continue // the walkers skip a zero-multiplicity call entirely
		}
		childSym := make(map[string]expr.Expr, len(sym)+len(call.Args))
		for k, v := range sym {
			childSym[k] = v
		}
		for _, param := range argOrder(call) {
			argE := call.Args[param]
			if argE == nil {
				// Statically underived argument: defer to the runtime
				// environment under the paper's mangled-name convention,
				// exactly like bindEnv's fallback lookup.
				childSym[param] = expr.P(MangledParam(param, call.Line))
				continue
			}
			se := expr.SubstituteAll(argE, sym)
			if _, isConst := expr.ConstVal(se); !isConst {
				// bindEnv evaluates every derived argument eagerly, even
				// ones the callee never reads; probe it so an argument
				// the walkers cannot resolve fails the flat pass too
				// (which then defers to the walker — see Eval — for
				// bindEnv's mangled-name fallback and error wording).
				cChain = appendElem(cChain, c.intern(se), true)
			}
			childSym[param] = se
		}
		before := len(c.cm.terms)
		if err := c.inline(call.Callee, childSym, cChain, cConst, false, depth+1); err != nil {
			return err
		}
		if len(c.cm.terms) == before && len(cChain) > len(chain) {
			// The callee contributed nothing countable (extern, empty, or
			// fully merged) but the walkers still evaluate this call's
			// multiplicity and arguments: keep a zero-count guard term so
			// their runtime errors surface identically.
			if err := c.emit(cChain, 1, nil); err != nil {
				return fmt.Errorf("model: %s call to %s at line %d: %w", name, call.Callee, call.Line, err)
			}
		}
	}
	return nil
}

// chainKey builds the merge signature of a chain. Interned indices are
// canonical, so the index sequence (with probe markers) is the identity.
func chainKey(chain []chainElem) string {
	b := make([]byte, 0, len(chain)*4)
	for _, el := range chain {
		if el.probe {
			b = append(b, 'p')
		} else {
			b = append(b, 'm')
		}
		for v := el.idx; ; v >>= 7 {
			b = append(b, byte(v&0x7f))
			if v < 1<<7 {
				break
			}
		}
		b = append(b, '.')
	}
	return string(b)
}

// emit records one site (or, with s == nil, an error-parity guard)
// reached with the given chain, scaling its counts by the folded
// constant multiplicity and merging it into an existing term with the
// same chain when possible. A compile-time overflow in the scale falls
// back to carrying the constant as a chain element, so it only fails
// evaluations that actually reach the term — a parent multiplicity can
// still zero it out at runtime, exactly as in the tree walk.
func (c *compiler) emit(chain []chainElem, constMult int64, s *Site) error {
	var t term
	t.chain = chain
	if s != nil {
		scaled, ok := scaleSite(s, constMult)
		if !ok {
			t.chain = appendElem(chain, c.intern(expr.Num{Val: rational.FromInt(constMult)}), false)
			scaled, _ = scaleSite(s, 1)
		}
		t = term{chain: t.chain, counts: scaled.counts, flops: scaled.flops, instrs: scaled.instrs, ops: scaled.ops}
	}
	key := chainKey(t.chain)
	if i, ok := c.termIdx[key]; ok {
		if mergeTerm(&c.cm.terms[i], &t) {
			return nil
		}
		// Merged counts would overflow int64 at compile time; keep the
		// term separate so the (equally inevitable) runtime overflow is
		// reported by the checked accumulation instead.
	}
	c.cm.terms = append(c.cm.terms, t)
	if _, ok := c.termIdx[key]; !ok {
		c.termIdx[key] = len(c.cm.terms) - 1
	}
	return nil
}

type scaledSite struct {
	counts [ir.NumCategories]int64
	flops  int64
	instrs int64
	ops    map[ir.Op]int64
}

// scaleSite multiplies a site's counts by a constant multiplicity,
// reporting overflow instead of wrapping.
func scaleSite(s *Site, mult int64) (scaledSite, bool) {
	var out scaledSite
	for cat, n := range s.Counts {
		p, ok := mulChecked(n, mult)
		if !ok {
			return out, false
		}
		out.counts[cat] = p
	}
	var ok bool
	if out.flops, ok = mulChecked(s.Flops, mult); !ok {
		return out, false
	}
	if out.instrs, ok = mulChecked(s.Instrs, mult); !ok {
		return out, false
	}
	if len(s.Ops) > 0 {
		out.ops = make(map[ir.Op]int64, len(s.Ops))
		for op, n := range s.Ops {
			p, ok := mulChecked(n, mult)
			if !ok {
				return out, false
			}
			out.ops[op] = p
		}
	}
	return out, true
}

// mergeTerm folds src into dst (same chain); false on overflow.
func mergeTerm(dst, src *term) bool {
	merged := *dst
	var ok bool
	for cat := range merged.counts {
		if merged.counts[cat], ok = addChecked(merged.counts[cat], src.counts[cat]); !ok {
			return false
		}
	}
	if merged.flops, ok = addChecked(merged.flops, src.flops); !ok {
		return false
	}
	if merged.instrs, ok = addChecked(merged.instrs, src.instrs); !ok {
		return false
	}
	ops := merged.ops
	if len(src.ops) > 0 {
		ops = make(map[ir.Op]int64, len(merged.ops)+len(src.ops))
		for op, n := range merged.ops {
			ops[op] = n
		}
		for op, n := range src.ops {
			s, ok := addChecked(ops[op], n)
			if !ok {
				return false
			}
			ops[op] = s
		}
	}
	merged.ops = ops
	*dst = merged
	return true
}

// argOrder lists a call's bound parameters in the callee's declared
// order (the deterministic order bindEnv's map iteration lacks), with
// any stragglers outside ArgOrder appended sorted.
func argOrder(call *Call) []string {
	out := make([]string, 0, len(call.Args))
	seen := make(map[string]bool, len(call.Args))
	for _, p := range call.ArgOrder {
		if _, ok := call.Args[p]; ok && !seen[p] {
			out = append(out, p)
			seen[p] = true
		}
	}
	var rest []string
	for p := range call.Args {
		if !seen[p] {
			rest = append(rest, p)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// ---------------------------------------------------------------------------
// Evaluation

// scratch is the per-evaluation workspace: lazily computed raw and
// rounded values of the interned expressions. Lazy matters for parity:
// an expression guarded by an outer zero multiplicity must not be
// evaluated at all, because the tree walk never reaches it.
type scratch struct {
	env   expr.Env
	exprs []expr.Expr
	cells []scratchCell
}

type scratchCell struct {
	raw     rational.Rat
	rounded int64
	flags   uint8
}

const (
	rawDone     = 1 << 0
	roundedDone = 1 << 1
)

func (cm *CompiledModel) newScratch(env expr.Env) *scratch {
	return &scratch{
		env:   env,
		exprs: cm.exprs,
		cells: make([]scratchCell, len(cm.exprs)),
	}
}

func (sc *scratch) value(idx int) (rational.Rat, error) {
	cell := &sc.cells[idx]
	if cell.flags&rawDone == 0 {
		v, err := expr.Eval(sc.exprs[idx], sc.env)
		if err != nil {
			return rational.Rat{}, err
		}
		cell.raw = v
		cell.flags |= rawDone
	}
	return cell.raw, nil
}

func (sc *scratch) roundedValue(idx int) (int64, error) {
	cell := &sc.cells[idx]
	if cell.flags&roundedDone == 0 {
		v, err := sc.value(idx)
		if err != nil {
			return 0, err
		}
		mi, err := roundMult(v)
		if err != nil {
			return 0, err
		}
		cell.rounded = mi
		cell.flags |= roundedDone
	}
	return cell.rounded, nil
}

// chainMult evaluates a term's multiplicity chain left to right —
// outermost first, exactly the order the tree walk encounters them — and
// returns the product of the rounded values. A zero short-circuits
// before any later element is touched (the walkers skip the subtree),
// and probes are evaluated for effect only.
func (sc *scratch) chainMult(chain []chainElem) (int64, error) {
	mult := int64(1)
	for _, el := range chain {
		if el.probe {
			if _, err := sc.value(el.idx); err != nil {
				return 0, err
			}
			continue
		}
		mi, err := sc.roundedValue(el.idx)
		if err != nil {
			return 0, err
		}
		if mi == 0 {
			return 0, nil
		}
		p, ok := mulChecked(mult, mi)
		if !ok {
			return 0, ErrOverflow
		}
		mult = p
	}
	return mult, nil
}

// Eval computes the compiled function's metrics under env: a flat pass
// over the merged terms, with no recursion and no environment copying.
// Results are byte-identical to the tree-walk Evaluate (or
// EvaluateExclusive for an exclusive compilation): a point the flat
// pass cannot evaluate — an unbound parameter, an overflow, a derived
// argument needing bindEnv's mangled-name fallback — is re-run through
// the walker, whose outcome (a fallback-resolved success or the
// canonical error) is definitive. The slow path costs one tree walk,
// exactly the pre-compilation price, and only for failing points.
func (cm *CompiledModel) Eval(env expr.Env) (Metrics, error) {
	var out Metrics
	sc := cm.newScratch(env)
	for i := range cm.terms {
		t := &cm.terms[i]
		mult, err := sc.chainMult(t.chain)
		if err != nil {
			return cm.walkMetrics(env)
		}
		if mult == 0 {
			continue
		}
		// Inline sparse accumulation: only the term's nonzero categories,
		// no snapshot (a failed point is re-answered by the walker, so
		// partial mutation of out is discarded anyway).
		ok := true
		for _, cc := range t.cats {
			if ok = accumInto(&out.ByCategory[cc.cat], cc.n, mult); !ok {
				break
			}
		}
		if !ok || !accumInto(&out.Flops, t.flops, mult) || !accumInto(&out.Instrs, t.instrs, mult) {
			return cm.walkMetrics(env)
		}
	}
	return out, nil
}

// walkMetrics is Eval's failure path: the tree walk owns the full
// runtime semantics (mangled-name argument fallback, error wording).
func (cm *CompiledModel) walkMetrics(env expr.Env) (Metrics, error) {
	if cm.exclusive {
		return cm.model.EvaluateExclusive(cm.fn, env)
	}
	return cm.model.Evaluate(cm.fn, env)
}

// EvalOps computes the compiled per-opcode counts under env, identical
// to the tree-walk EvaluateOpcodes (with the same walker failure path
// as Eval; an exclusive compilation has no opcode walker counterpart,
// so its rare failures surface directly). The returned map is fresh.
func (cm *CompiledModel) EvalOps(env expr.Env) (map[ir.Op]int64, error) {
	out := map[ir.Op]int64{}
	sc := cm.newScratch(env)
	walk := func(flatErr error) (map[ir.Op]int64, error) {
		if cm.exclusive {
			return nil, fmt.Errorf("model: compiled %s: %w", cm.fn, flatErr)
		}
		return cm.model.EvaluateOpcodes(cm.fn, env)
	}
	for i := range cm.terms {
		t := &cm.terms[i]
		if len(t.ops) == 0 && len(t.chain) == 0 {
			continue
		}
		mult, err := sc.chainMult(t.chain)
		if err != nil {
			return walk(err)
		}
		if mult == 0 {
			continue
		}
		for op, n := range t.ops {
			if err := accumOp(out, op, n, mult); err != nil {
				return walk(err)
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Closed forms

// MetricExpr identifies a closed-form series of the compiled model.
type MetricExpr int

// The closed-form series.
const (
	ExprInstrs MetricExpr = iota
	ExprFlops
	ExprFPI
)

// CategoryExpr returns the symbolic closed form of one instruction
// category: the sum over terms of count × multiplicity chain, collapsed
// through the expression simplifier into a single polynomial-ish
// expression over Params. For integer-valued multiplicities (everything
// except br_frac fractions) evaluating it equals Eval's category count;
// fractional multiplicities make it the un-rounded idealization — use
// Eval for numbers, this for reading the model's shape.
func (cm *CompiledModel) CategoryExpr(cat ir.Category) expr.Expr {
	return cm.closedForm(func(t *term) int64 { return t.counts[cat] })
}

// Expr returns the named closed-form series (see CategoryExpr for the
// rounding caveat).
func (cm *CompiledModel) Expr(which MetricExpr) expr.Expr {
	switch which {
	case ExprFlops:
		return cm.closedForm(func(t *term) int64 { return t.flops })
	case ExprFPI:
		return cm.CategoryExpr(ir.CatSSEArith)
	default:
		return cm.closedForm(func(t *term) int64 { return t.instrs })
	}
}

func (cm *CompiledModel) closedForm(pick func(*term) int64) expr.Expr {
	var terms []expr.Expr
	for i := range cm.terms {
		t := &cm.terms[i]
		n := pick(t)
		if n == 0 {
			continue
		}
		factors := []expr.Expr{expr.Const(n)}
		for _, el := range t.chain {
			if !el.probe {
				factors = append(factors, cm.exprs[el.idx])
			}
		}
		terms = append(terms, expr.NewMul(factors...))
	}
	return expr.NewAdd(terms...)
}
