// Package disasm decodes the .text of a Mira object file into a binary
// AST: functions of basic blocks of instructions, each annotated with the
// source position recovered from the DWARF-style line table.
//
// This is the counterpart of ROSE's disassembler in the paper's Input
// Processor (Fig. 3 shows the SgAsmFunction / SgAsmBlock /
// SgAsmX86Instruction shape this package reproduces).
package disasm

import (
	"fmt"
	"sort"
	"strings"

	"mira/internal/ir"
	"mira/internal/objfile"
)

// AsmInstruction is one decoded instruction with provenance.
type AsmInstruction struct {
	Addr  uint64 // global instruction index
	Instr ir.Instr
	Line  int32
	Col   int32
}

// AsmBlock is a straight-line run of instructions (leader-based basic
// blocks: boundaries at jump targets and after control transfers).
type AsmBlock struct {
	Start  uint64
	Instrs []AsmInstruction
}

// AsmFunction is one function of the binary AST.
type AsmFunction struct {
	Sym    objfile.Symbol
	Blocks []*AsmBlock
}

// Instrs returns the function's instructions in address order.
func (f *AsmFunction) Instrs() []AsmInstruction {
	var out []AsmInstruction
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// Disassemble decodes every function in the object file.
func Disassemble(obj *objfile.File) []*AsmFunction {
	var out []*AsmFunction
	for i := range obj.Syms {
		out = append(out, DisassembleFunc(obj, &obj.Syms[i]))
	}
	return out
}

// DisassembleFunc decodes one function into basic blocks.
func DisassembleFunc(obj *objfile.File, sym *objfile.Symbol) *AsmFunction {
	text := obj.FuncText(sym)
	leaders := map[int64]bool{0: true}
	for idx, in := range text {
		if in.IsJump() {
			leaders[in.Imm] = true
			leaders[int64(idx)+1] = true
		}
		if in.IsReturn() {
			leaders[int64(idx)+1] = true
		}
	}
	var cuts []int64
	for l := range leaders {
		if l >= 0 && l < int64(len(text)) {
			cuts = append(cuts, l)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	fn := &AsmFunction{Sym: *sym}
	for ci, start := range cuts {
		end := int64(len(text))
		if ci+1 < len(cuts) {
			end = cuts[ci+1]
		}
		blk := &AsmBlock{Start: sym.Start + uint64(start)}
		for idx := start; idx < end; idx++ {
			ai := AsmInstruction{
				Addr:  sym.Start + uint64(idx),
				Instr: text[idx],
			}
			if obj.Line != nil {
				if row, ok := obj.Line.Lookup(ai.Addr); ok {
					ai.Line, ai.Col = row.Line, row.Col
				}
			}
			blk.Instrs = append(blk.Instrs, ai)
		}
		fn.Blocks = append(fn.Blocks, blk)
	}
	return fn
}

// Print renders an objdump-style listing of the function.
func Print(fn *AsmFunction) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:  (%d instructions, %d blocks)\n",
		fn.Sym.Name, fn.Sym.Count, len(fn.Blocks))
	for _, b := range fn.Blocks {
		fmt.Fprintf(&sb, ".L%d:\n", b.Start-fn.Sym.Start)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %6d:  %-36s ; line %d:%d  [%s]\n",
				in.Addr, in.Instr.String(), in.Line, in.Col, in.Instr.Op.Cat())
		}
	}
	return sb.String()
}

// Dot renders the binary AST fragment as a Graphviz graph in the style of
// the paper's Fig. 3 (SgAsmFunction -> SgAsmBlock -> SgAsmX86Instruction).
func Dot(fn *AsmFunction) string {
	var sb strings.Builder
	sb.WriteString("digraph binast {\n  node [shape=box, fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&sb, "  f [label=\"SgAsmFunction %s\"];\n", fn.Sym.Name)
	for bi, b := range fn.Blocks {
		fmt.Fprintf(&sb, "  b%d [label=\"SgAsmBlock 0x%x\"];\n  f -> b%d;\n", bi, b.Start, bi)
		for ii, in := range b.Instrs {
			fmt.Fprintf(&sb, "  b%d_i%d [label=\"SgAsmX86Instruction %s\"];\n  b%d -> b%d_i%d;\n",
				bi, ii, in.Instr.Op.Mnemonic(), bi, bi, ii)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
