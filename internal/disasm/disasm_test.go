package disasm_test

import (
	"strings"
	"testing"

	"mira/internal/cc"
	"mira/internal/disasm"
	"mira/internal/ir"
	"mira/internal/objfile"
	"mira/internal/parser"
	"mira/internal/sema"
)

func compile(t *testing.T, src string) *objfile.File {
	t.Helper()
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Compile(prog, cc.Options{SourceName: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

const loopSrc = `
double f(int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + 1.0;
	}
	return s;
}`

func TestBasicBlockStructure(t *testing.T) {
	obj := compile(t, loopSrc)
	fns := disasm.Disassemble(obj)
	if len(fns) != 1 {
		t.Fatalf("got %d functions", len(fns))
	}
	fn := fns[0]
	// A counted loop yields at least 4 blocks: entry, cond, body+post, exit.
	if len(fn.Blocks) < 4 {
		t.Errorf("blocks = %d, want >= 4", len(fn.Blocks))
	}
	// Block boundaries: every jump target starts a block.
	starts := map[uint64]bool{}
	for _, b := range fn.Blocks {
		starts[b.Start] = true
	}
	for _, in := range fn.Instrs() {
		if in.Instr.IsJump() {
			if !starts[uint64(in.Instr.Imm)+fn.Sym.Start] {
				t.Errorf("jump target %d does not start a block", in.Instr.Imm)
			}
		}
	}
	// Instruction count must match the symbol.
	if got := len(fn.Instrs()); got != int(fn.Sym.Count) {
		t.Errorf("instr count = %d, want %d", got, fn.Sym.Count)
	}
}

func TestLineInfoAttached(t *testing.T) {
	obj := compile(t, loopSrc)
	fn := disasm.Disassemble(obj)[0]
	var fpLine int32
	for _, in := range fn.Instrs() {
		if in.Instr.Op == ir.ADDSD {
			fpLine = in.Line
		}
	}
	if fpLine != 6 { // "s = s + 1.0;" line
		t.Errorf("ADDSD at line %d, want 6", fpLine)
	}
}

func TestPrintListing(t *testing.T) {
	obj := compile(t, loopSrc)
	fn := disasm.Disassemble(obj)[0]
	out := disasm.Print(fn)
	for _, want := range []string{"f:", "addsd", "jge", "ret", "line 6", ".L0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestDotOutput(t *testing.T) {
	obj := compile(t, loopSrc)
	fn := disasm.Disassemble(obj)[0]
	dot := disasm.Dot(fn)
	for _, want := range []string{"SgAsmFunction f", "SgAsmBlock", "SgAsmX86Instruction mov", "digraph"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
}

func TestMultiFunctionDisassembly(t *testing.T) {
	obj := compile(t, `
extern double sqrt(double x);
double a(double x) { return sqrt(x); }
double b(double x) { return a(x) * 2.0; }
`)
	fns := disasm.Disassemble(obj)
	names := map[string]bool{}
	for _, fn := range fns {
		names[fn.Sym.Name] = true
	}
	for _, want := range []string{"a", "b", "sqrt"} {
		if !names[want] {
			t.Errorf("missing function %q", want)
		}
	}
	// The call in b references a's symbol index.
	var bFn *disasm.AsmFunction
	for _, fn := range fns {
		if fn.Sym.Name == "b" {
			bFn = fn
		}
	}
	foundCall := false
	for _, in := range bFn.Instrs() {
		if in.Instr.Op == ir.CALL {
			callee := obj.Syms[in.Instr.Imm].Name
			if callee == "a" {
				foundCall = true
			}
		}
	}
	if !foundCall {
		t.Error("call to a not found in b")
	}
}
