// Package token defines the lexical tokens of the MiniC language and the
// source positions used throughout the Mira pipeline.
//
// MiniC is the C/C++ subset Mira's front end accepts: functions, classes
// with member functions (including operator()), scalar and array types,
// for/while loops, branches, and #pragma @Annotation directives. Positions
// carry both line and column because the source-to-binary bridge
// (internal/bridge) resolves instructions to statement sub-parts — e.g. the
// init/cond/increment clauses of a for statement share a line but not a
// column.
package token

import "fmt"

// Pos is a source position. The zero Pos is invalid.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

// Valid reports whether the position is set.
func (p Pos) Valid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.Valid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p occurs before q in the source.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT     // foo
	INTLIT    // 123
	FLOATLIT  // 1.5, 1e-9
	STRINGLIT // "abc"
	CHARLIT   // 'a'

	// Operators and delimiters.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	ASSIGN   // =
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	INC      // ++
	DEC      // --
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LEQ      // <=
	GEQ      // >=
	ANDAND   // &&
	OROR     // ||
	NOT      // !
	AMP      // &
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	ARROW    // ->
	COLON    // :
	SCOPE    // ::
	QUESTION // ?

	// Keywords.
	KWINT
	KWLONG
	KWDOUBLE
	KWFLOAT
	KWVOID
	KWBOOL
	KWCHAR
	KWIF
	KWELSE
	KWFOR
	KWWHILE
	KWDO
	KWRETURN
	KWBREAK
	KWCONTINUE
	KWCONST
	KWCLASS
	KWSTRUCT
	KWPUBLIC
	KWPRIVATE
	KWOPERATOR
	KWEXTERN
	KWTRUE
	KWFALSE
	KWUNSIGNED
	KWSTATIC

	// PRAGMA is a whole "#pragma ..." directive; the text after "#pragma"
	// is carried in the token literal.
	PRAGMA
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INTLIT: "INTLIT", FLOATLIT: "FLOATLIT",
	STRINGLIT: "STRINGLIT", CHARLIT: "CHARLIT",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	INC: "++", DEC: "--",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", AMP: "&",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", SEMI: ";", DOT: ".", ARROW: "->", COLON: ":", SCOPE: "::",
	QUESTION: "?",
	KWINT:    "int", KWLONG: "long", KWDOUBLE: "double", KWFLOAT: "float",
	KWVOID: "void", KWBOOL: "bool", KWCHAR: "char",
	KWIF: "if", KWELSE: "else", KWFOR: "for", KWWHILE: "while", KWDO: "do",
	KWRETURN: "return", KWBREAK: "break", KWCONTINUE: "continue",
	KWCONST: "const", KWCLASS: "class", KWSTRUCT: "struct",
	KWPUBLIC: "public", KWPRIVATE: "private", KWOPERATOR: "operator",
	KWEXTERN: "extern", KWTRUE: "true", KWFALSE: "false",
	KWUNSIGNED: "unsigned", KWSTATIC: "static",
	PRAGMA: "#pragma",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"int": KWINT, "long": KWLONG, "double": KWDOUBLE, "float": KWFLOAT,
	"void": KWVOID, "bool": KWBOOL, "char": KWCHAR,
	"if": KWIF, "else": KWELSE, "for": KWFOR, "while": KWWHILE, "do": KWDO,
	"return": KWRETURN, "break": KWBREAK, "continue": KWCONTINUE,
	"const": KWCONST, "class": KWCLASS, "struct": KWSTRUCT,
	"public": KWPUBLIC, "private": KWPRIVATE, "operator": KWOPERATOR,
	"extern": KWEXTERN, "true": KWTRUE, "false": KWFALSE,
	"unsigned": KWUNSIGNED, "static": KWSTATIC,
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, literals, and PRAGMA payloads
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRINGLIT, CHARLIT, PRAGMA:
		return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Lit, t.Pos)
	default:
		return fmt.Sprintf("%s@%s", t.Kind, t.Pos)
	}
}

// IsType reports whether the kind starts a type name.
func (k Kind) IsType() bool {
	switch k {
	case KWINT, KWLONG, KWDOUBLE, KWFLOAT, KWVOID, KWBOOL, KWCHAR, KWUNSIGNED:
		return true
	}
	return false
}

// IsAssignOp reports whether the kind is an assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		return true
	}
	return false
}

// IsCmpOp reports whether the kind is a comparison operator.
func (k Kind) IsCmpOp() bool {
	switch k {
	case EQ, NEQ, LT, GT, LEQ, GEQ:
		return true
	}
	return false
}
