// Package pbound reimplements the PBound baseline (Narayanan, Norris,
// Hovland 2010), the paper's Related Work comparison point: a *source-only*
// static estimator of floating-point operations and memory accesses.
//
// PBound never looks at the binary, so it counts every operation the
// source spells out — including subexpressions the compiler constant-folds
// and loop-invariant work the compiler hoists. That is precisely the
// paper's critique ("it cannot capture compiler optimizations and hence
// produces less accurate estimates"), and the ablation benchmark
// quantifies it against Mira's binary-aware counts.
//
// The estimator walks the source AST, counting per-statement source-level
// FP operations, loads, and stores, and multiplies by loop trip counts
// derived from the same SCoP fragment Mira uses (shared grammar, separate
// implementation: PBound's loop handling is intentionally simpler —
// branches are counted as always taken, producing upper bounds).
package pbound

import (
	"fmt"

	"mira/internal/ast"
	"mira/internal/expr"
	"mira/internal/sema"
	"mira/internal/token"
)

// Estimate is a source-level operation-count bound for one function.
type Estimate struct {
	Name   string
	Flops  expr.Expr // source FP add/sub/mul/div operations
	Loads  expr.Expr // array-element reads
	Stores expr.Expr // array-element writes
}

// Report holds per-function estimates.
type Report struct {
	Funcs map[string]*Estimate
	prog  *sema.Program
	calls map[string][]callRec
}

// Analyze builds PBound estimates for every defined function.
func Analyze(prog *sema.Program) (*Report, error) {
	r := &Report{Funcs: map[string]*Estimate{}, prog: prog}
	for _, q := range prog.FuncOrder {
		fi := prog.Funcs[q]
		if fi.Decl.Body == nil {
			r.Funcs[q] = &Estimate{Name: q, Flops: expr.Const(0), Loads: expr.Const(0), Stores: expr.Const(0)}
			continue
		}
		est, err := r.analyzeFunc(fi)
		if err != nil {
			return nil, fmt.Errorf("pbound: %s: %w", q, err)
		}
		r.Funcs[q] = est
	}
	return r, nil
}

// Counts is an evaluated PBound estimate at one (function, env) point:
// the source-level upper bounds on FP operations, array-element loads,
// and array-element stores, all inclusive of callees. It is the value a
// KindPBound query returns, so the fields carry wire tags.
type Counts struct {
	Flops  int64 `json:"flops"`
	Loads  int64 `json:"loads"`
	Stores int64 `json:"stores"`
}

// EvalCounts evaluates all three inclusive bounds of fn under env.
func (r *Report) EvalCounts(fn string, env expr.Env) (Counts, error) {
	var c Counts
	var err error
	if c.Flops, err = r.EvalFlops(fn, env); err != nil {
		return Counts{}, err
	}
	if c.Loads, err = r.EvalLoads(fn, env); err != nil {
		return Counts{}, err
	}
	if c.Stores, err = r.EvalStores(fn, env); err != nil {
		return Counts{}, err
	}
	return c, nil
}

// EvalFlops evaluates the inclusive FP-operation bound of fn, following
// calls (callee params bound from caller expressions when derivable).
func (r *Report) EvalFlops(fn string, env expr.Env) (int64, error) {
	return r.evalInclusive(fn, env, func(e *Estimate) expr.Expr { return e.Flops }, 0)
}

// EvalLoads evaluates the inclusive load bound.
func (r *Report) EvalLoads(fn string, env expr.Env) (int64, error) {
	return r.evalInclusive(fn, env, func(e *Estimate) expr.Expr { return e.Loads }, 0)
}

// EvalStores evaluates the inclusive store bound.
func (r *Report) EvalStores(fn string, env expr.Env) (int64, error) {
	return r.evalInclusive(fn, env, func(e *Estimate) expr.Expr { return e.Stores }, 0)
}

type callRec struct {
	callee string
	mult   expr.Expr
	args   map[string]expr.Expr
}

func (r *Report) evalInclusive(fn string, env expr.Env, pick func(*Estimate) expr.Expr, depth int) (int64, error) {
	if depth > 64 {
		return 0, fmt.Errorf("pbound: call depth exceeded at %q", fn)
	}
	est, ok := r.Funcs[fn]
	if !ok {
		return 0, fmt.Errorf("pbound: no function %q", fn)
	}
	total, err := expr.EvalInt64(pick(est), env)
	if err != nil {
		return 0, fmt.Errorf("pbound: %s: %w", fn, err)
	}
	for _, c := range r.calls[fn] {
		mult, err := expr.EvalInt64(c.mult, env)
		if err != nil {
			return 0, fmt.Errorf("pbound: %s -> %s: %w", fn, c.callee, err)
		}
		if mult == 0 {
			continue
		}
		childEnv := make(expr.Env, len(env))
		for k, v := range env {
			childEnv[k] = v
		}
		for p, a := range c.args {
			if a == nil {
				delete(childEnv, p)
				continue
			}
			if v, err := expr.Eval(a, env); err == nil {
				childEnv[p] = v
			}
		}
		sub, err := r.evalInclusive(c.callee, childEnv, pick, depth+1)
		if err != nil {
			return 0, err
		}
		total += sub * mult
	}
	return total, nil
}

type walker struct {
	rep       *Report
	fi        *sema.FuncInfo
	params    map[string]bool
	floatVars map[string]bool // double-typed locals and params
	loops     map[string]string
	seq       int
	flops     expr.Expr
	loads     expr.Expr
	stores    expr.Expr
	calls     []callRec
}

func (r *Report) analyzeFunc(fi *sema.FuncInfo) (*Estimate, error) {
	w := &walker{
		rep:       r,
		fi:        fi,
		params:    map[string]bool{},
		floatVars: map[string]bool{},
		loops:     map[string]string{},
		flops:     expr.Const(0),
		loads:     expr.Const(0),
		stores:    expr.Const(0),
	}
	for _, p := range fi.Decl.Params {
		if p.Type.Ptr == 0 && p.Type.Kind == ast.Int {
			w.params[p.Name] = true
		}
		if p.Type.Ptr == 0 && p.Type.Kind == ast.Double {
			w.floatVars[p.Name] = true
		}
	}
	// Source-level type information: double-typed declarations.
	ast.Walk(fi.Decl.Body, func(n ast.Node) bool {
		vd, ok := n.(*ast.VarDecl)
		if ok && vd.Type.Kind == ast.Double && vd.Type.Ptr == 0 {
			for _, d := range vd.Names {
				if len(d.Dims) == 0 {
					w.floatVars[d.Name] = true
				}
			}
		}
		return true
	})
	if err := w.walkStmt(fi.Decl.Body, expr.Const(1)); err != nil {
		return nil, err
	}
	if r.calls == nil {
		r.calls = map[string][]callRec{}
	}
	r.calls[fi.QName] = w.calls
	return &Estimate{Name: fi.QName, Flops: w.flops, Loads: w.loads, Stores: w.stores}, nil
}

func (w *walker) walkStmt(s ast.Stmt, mult expr.Expr) error {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range st.Stmts {
			if err := w.walkStmt(inner, mult); err != nil {
				return err
			}
		}
	case *ast.ExprStmt:
		w.countExpr(st.X, mult, false)
	case *ast.VarDecl:
		for _, d := range st.Names {
			if d.Init != nil {
				w.countExpr(d.Init, mult, false)
			}
		}
	case *ast.ReturnStmt:
		if st.X != nil {
			w.countExpr(st.X, mult, false)
		}
	case *ast.IfStmt:
		// Upper bound: both branches counted fully at the parent
		// multiplicity (PBound computes best-case/upper bounds and has no
		// polyhedral branch machinery).
		w.countExpr(st.Cond, mult, false)
		if err := w.walkStmt(st.Then, mult); err != nil {
			return err
		}
		if st.Else != nil {
			return w.walkStmt(st.Else, mult)
		}
	case *ast.ForStmt:
		trips, varName, uname, err := w.loopTrips(st)
		if err != nil {
			return err
		}
		inner := expr.NewMul(mult, trips)
		if st.Init != nil {
			if es, ok := st.Init.(*ast.ExprStmt); ok {
				w.countExpr(es.X, mult, false)
			}
		}
		if varName != "" {
			saved, had := w.loops[varName]
			w.loops[varName] = uname
			err = w.walkStmt(st.Body, inner)
			if had {
				w.loops[varName] = saved
			} else {
				delete(w.loops, varName)
			}
			return err
		}
		return w.walkStmt(st.Body, inner)
	case *ast.WhileStmt:
		// Source-only tools cannot bound while loops; PBound treats one
		// iteration (documented limitation of the baseline).
		return w.walkStmt(st.Body, mult)
	}
	return nil
}

// loopTrips derives a trip-count expression from the loop SCoP. PBound's
// version supports the same init/cond/step grammar as Mira but without
// annotations or convexity diagnostics.
func (w *walker) loopTrips(st *ast.ForStmt) (expr.Expr, string, string, error) {
	varName := ""
	var initE ast.Expr
	switch init := st.Init.(type) {
	case *ast.ExprStmt:
		if asg, ok := init.X.(*ast.AssignExpr); ok && asg.Op == token.ASSIGN {
			if id, ok := asg.LHS.(*ast.Ident); ok {
				varName = id.Name
				initE = asg.RHS
			}
		}
	case *ast.VarDecl:
		if len(init.Names) == 1 && init.Names[0].Init != nil {
			varName = init.Names[0].Name
			initE = init.Names[0].Init
		}
	}
	if varName == "" || st.Cond == nil || st.Post == nil {
		return expr.Const(1), "", "", nil // unbounded: PBound assumes once
	}
	step := int64(1)
	if un, ok := st.Post.(*ast.UnaryExpr); ok && un.Op == token.DEC {
		step = -1
	}
	if asg, ok := st.Post.(*ast.AssignExpr); ok {
		if c, okc := asg.RHS.(*ast.IntLit); okc {
			if asg.Op == token.PLUSEQ {
				step = c.Value
			} else if asg.Op == token.MINUSEQ {
				step = -c.Value
			}
		}
	}
	lo, err := w.convert(initE)
	if err != nil {
		return expr.Const(1), "", "", nil
	}
	cmp, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return expr.Const(1), "", "", nil
	}
	bound, err := w.convert(cmp.Y)
	if err != nil {
		return expr.Const(1), "", "", nil
	}
	w.seq++
	uname := fmt.Sprintf("%s_pb%d", varName, w.seq)
	var trips expr.Expr
	if step > 0 {
		hi := bound
		if cmp.Op == token.LT {
			hi = expr.NewSub(bound, expr.Const(1))
		}
		trips = expr.Trips(lo, hi, step)
	} else {
		loB := bound
		if cmp.Op == token.GT {
			loB = expr.NewAdd(bound, expr.Const(1))
		}
		trips = expr.Trips(loB, lo, -step)
	}
	// Rename the loop variable in the trip expression if it leaks (bounds
	// depending on outer loop variables evaluate through the env; PBound
	// approximates those with the outer variable's upper bound and is
	// therefore a bound, not an exact count).
	_ = uname
	return trips, varName, uname, nil
}

func (w *walker) convert(e ast.Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return expr.Const(x.Value), nil
	case *ast.ParenExpr:
		return w.convert(x.X)
	case *ast.Ident:
		if _, isLoop := w.loops[x.Name]; isLoop {
			// Outer-loop-dependent bound: approximate with the variable
			// treated as a free parameter bound to its maximum; for the
			// upper-bound semantics of PBound this keeps estimates sound
			// in the common decreasing-extent case.
			return expr.P(x.Name), nil
		}
		if w.params[x.Name] {
			return expr.P(x.Name), nil
		}
		if g, ok := w.rep.prog.Globals[x.Name]; ok && g.IsConst && g.HasConst && g.Type.Kind != ast.Double {
			return expr.Const(g.ConstI), nil
		}
		return nil, fmt.Errorf("pbound: unknown %q", x.Name)
	case *ast.BinaryExpr:
		a, err := w.convert(x.X)
		if err != nil {
			return nil, err
		}
		b, err := w.convert(x.Y)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.PLUS:
			return expr.NewAdd(a, b), nil
		case token.MINUS:
			return expr.NewSub(a, b), nil
		case token.STAR:
			return expr.NewMul(a, b), nil
		}
	}
	return nil, fmt.Errorf("pbound: cannot convert %T", e)
}

// countExpr tallies source-level FP operations and memory accesses.
// isStore marks the expression as an assignment target.
func (w *walker) countExpr(e ast.Expr, mult expr.Expr, isStore bool) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if w.isFP(x) {
			switch x.Op {
			case token.PLUS, token.MINUS, token.STAR, token.SLASH:
				w.flops = expr.NewAdd(w.flops, mult)
			}
		}
		w.countExpr(x.X, mult, false)
		w.countExpr(x.Y, mult, false)
	case *ast.UnaryExpr:
		w.countExpr(x.X, mult, false)
	case *ast.ParenExpr:
		w.countExpr(x.X, mult, isStore)
	case *ast.AssignExpr:
		if x.Op != token.ASSIGN && w.isFP(x) {
			w.flops = expr.NewAdd(w.flops, mult) // compound op is one FP op
		}
		w.countExpr(x.LHS, mult, true)
		w.countExpr(x.RHS, mult, false)
	case *ast.IndexExpr:
		if isStore {
			w.stores = expr.NewAdd(w.stores, mult)
		} else {
			w.loads = expr.NewAdd(w.loads, mult)
		}
		w.countExpr(x.Index, mult, false)
		// Base expression loads nothing itself.
	case *ast.CallExpr:
		w.recordCall(x, mult)
		for _, a := range x.Args {
			w.countExpr(a, mult, false)
		}
	case *ast.CondExpr:
		w.countExpr(x.Cond, mult, false)
		w.countExpr(x.Then, mult, false)
		w.countExpr(x.Else, mult, false)
	case *ast.MemberExpr:
		w.countExpr(x.X, mult, false)
	}
}

func (w *walker) recordCall(call *ast.CallExpr, mult expr.Expr) {
	callee, err := w.rep.prog.ResolveCall(call, func(e ast.Expr) (string, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return "", false
		}
		for _, p := range w.fi.Decl.Params {
			if p.Name == id.Name && p.Type.Kind == ast.Class {
				return p.Type.ClassName, true
			}
		}
		var found string
		ast.Walk(w.fi.Decl.Body, func(n ast.Node) bool {
			vd, ok := n.(*ast.VarDecl)
			if ok && vd.Type.Kind == ast.Class {
				for _, d := range vd.Names {
					if d.Name == id.Name {
						found = vd.Type.ClassName
					}
				}
			}
			return found == ""
		})
		return found, found != ""
	})
	if err != nil {
		return
	}
	fi := w.rep.prog.Funcs[callee]
	rec := callRec{callee: callee, mult: mult, args: map[string]expr.Expr{}}
	for i, p := range fi.Decl.Params {
		if i < len(call.Args) {
			if v, cerr := w.convert(call.Args[i]); cerr == nil {
				rec.args[p.Name] = v
				continue
			}
		}
		rec.args[p.Name] = nil
	}
	w.calls = append(w.calls, rec)
}

// isFP decides whether an operation is floating-point from source-level
// type information: FP literals, double-typed scalars, array accesses
// (the workloads' arrays are double), and calls to double-returning
// functions.
func (w *walker) isFP(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.FloatLit:
		return true
	case *ast.BinaryExpr:
		return w.isFP(x.X) || w.isFP(x.Y)
	case *ast.UnaryExpr:
		return w.isFP(x.X)
	case *ast.ParenExpr:
		return w.isFP(x.X)
	case *ast.AssignExpr:
		return w.isFP(x.LHS) || w.isFP(x.RHS)
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		return w.floatVars[x.Name]
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if fi, found := w.rep.prog.Funcs[id.Name]; found {
				return fi.Decl.RetType.Kind == ast.Double && fi.Decl.RetType.Ptr == 0
			}
		}
		return false
	}
	return false
}
