package pbound_test

import (
	"testing"

	"mira/internal/expr"
	"mira/internal/parser"
	"mira/internal/pbound"
	"mira/internal/sema"
)

func analyze(t *testing.T, src string) *pbound.Report {
	t.Helper()
	file, err := parser.ParseFile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pbound.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimpleKernelCounts(t *testing.T) {
	rep := analyze(t, `
void axpy(double *x, double *y, int n, double a) {
	int i;
	for (i = 0; i < n; i++) {
		y[i] = a * x[i] + y[i];
	}
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 100})
	flops, err := rep.EvalFlops("axpy", env)
	if err != nil {
		t.Fatal(err)
	}
	if flops != 200 { // mul + add per element
		t.Errorf("flops = %d, want 200", flops)
	}
	loads, _ := rep.EvalLoads("axpy", env)
	if loads != 200 { // x[i], y[i]
		t.Errorf("loads = %d, want 200", loads)
	}
	stores, _ := rep.EvalStores("axpy", env)
	if stores != 100 {
		t.Errorf("stores = %d, want 100", stores)
	}
}

func TestSourceLevelOvercounting(t *testing.T) {
	// PBound counts the constant-foldable subexpression every iteration.
	rep := analyze(t, `
void k(double *x, int n) {
	int i;
	for (i = 0; i < n; i++) {
		x[i] = x[i] * (2.0 * 3.14 / 360.0);
	}
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	flops, err := rep.EvalFlops("k", env)
	if err != nil {
		t.Fatal(err)
	}
	// Source spells 3 FP ops per iteration; the optimized binary performs
	// 1. PBound reports the source-level 30.
	if flops != 30 {
		t.Errorf("flops = %d, want 30 (source-level)", flops)
	}
}

func TestInclusiveCalls(t *testing.T) {
	rep := analyze(t, `
double helper(double *x, int m) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < m; i++) { s = s + x[i]; }
	return s;
}
double driver(double *x, int n) {
	double t; int k;
	t = 0.0;
	for (k = 0; k < 4; k++) {
		t = t + helper(x, n);
	}
	return t;
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 25})
	flops, err := rep.EvalFlops("driver", env)
	if err != nil {
		t.Fatal(err)
	}
	// helper: 25 adds per call, 4 calls; driver: 4 adds.
	if flops != 4*25+4 {
		t.Errorf("flops = %d, want 104", flops)
	}
}

func TestBranchesCountedAsUpperBound(t *testing.T) {
	rep := analyze(t, `
void k(double *x, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (i % 2 == 0) {
			x[i] = x[i] + 1.0;
		} else {
			x[i] = x[i] - 1.0;
		}
	}
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	flops, _ := rep.EvalFlops("k", env)
	// Both branches counted: 2 FP ops per iteration (upper bound).
	if flops != 20 {
		t.Errorf("flops = %d, want 20 (both branches)", flops)
	}
}

func TestStridedAndDownwardTrips(t *testing.T) {
	rep := analyze(t, `
void k(double *x, int n) {
	int i;
	for (i = 0; i < n; i += 2) { x[i] = x[i] + 1.0; }
	for (i = n; i >= 1; i--) { x[i] = x[i] + 1.0; }
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 10})
	flops, _ := rep.EvalFlops("k", env)
	if flops != 5+10 {
		t.Errorf("flops = %d, want 15", flops)
	}
}

// TestEvalCounts: the bundled query-point evaluation agrees with the
// three per-metric evaluators it wraps.
func TestEvalCounts(t *testing.T) {
	rep := analyze(t, `
void k(double *x, double *y, int n) {
	int i;
	for (i = 0; i < n; i++) { y[i] = x[i] * 2.0 + 1.0; }
}`)
	env := expr.EnvFromInts(map[string]int64{"n": 8})
	c, err := rep.EvalCounts("k", env)
	if err != nil {
		t.Fatal(err)
	}
	flops, _ := rep.EvalFlops("k", env)
	loads, _ := rep.EvalLoads("k", env)
	stores, _ := rep.EvalStores("k", env)
	if c != (pbound.Counts{Flops: flops, Loads: loads, Stores: stores}) {
		t.Errorf("EvalCounts = %+v, want {%d %d %d}", c, flops, loads, stores)
	}
	if c.Flops != 16 || c.Loads != 8 || c.Stores != 8 {
		t.Errorf("counts = %+v, want {16 8 8}", c)
	}
	if _, err := rep.EvalCounts("nosuch", env); err == nil {
		t.Error("unknown function accepted")
	}
}
