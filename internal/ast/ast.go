// Package ast defines the MiniC source abstract syntax tree.
//
// The tree mirrors the role of ROSE's source AST in the paper (Fig. 2): it
// preserves high-level structure — classes, functions, loop SCoPs, branch
// conditions, variable names — together with exact source positions, which
// the bridge (internal/bridge) later uses to associate compiled instructions
// with statements. User annotations (paper Sec. III-C4) are parsed from
// "#pragma @Annotation {...}" directives and attached to the following
// statement.
package ast

import (
	"fmt"
	"strings"

	"mira/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
	nodeName() string
}

// ---------------------------------------------------------------------------
// Types

// BasicKind enumerates MiniC scalar types.
type BasicKind int

// Basic type kinds.
const (
	Invalid BasicKind = iota
	Void
	Int    // 64-bit signed (int and long are both modeled as 64-bit)
	Double // 64-bit float (float is widened to double)
	Bool
	Class // user-defined class type; Type.ClassName holds the name
)

func (k BasicKind) String() string {
	switch k {
	case Void:
		return "void"
	case Int:
		return "int"
	case Double:
		return "double"
	case Bool:
		return "bool"
	case Class:
		return "class"
	}
	return "invalid"
}

// Type is a MiniC type: a basic kind plus pointer depth.
type Type struct {
	Kind      BasicKind
	Ptr       int    // pointer indirection level
	ClassName string // set when Kind == Class
}

func (t Type) String() string {
	base := t.Kind.String()
	if t.Kind == Class {
		base = t.ClassName
	}
	return base + strings.Repeat("*", t.Ptr)
}

// IsNumeric reports whether the type is a scalar number.
func (t Type) IsNumeric() bool {
	return t.Ptr == 0 && (t.Kind == Int || t.Kind == Double || t.Kind == Bool)
}

// IsPointer reports whether the type has pointer indirection.
func (t Type) IsPointer() bool { return t.Ptr > 0 }

// Elem returns the pointee type.
func (t Type) Elem() Type {
	if t.Ptr == 0 {
		return Type{Kind: Invalid}
	}
	e := t
	e.Ptr--
	return e
}

// TypeOf constructors for common cases.
var (
	TypeInt    = Type{Kind: Int}
	TypeDouble = Type{Kind: Double}
	TypeBool   = Type{Kind: Bool}
	TypeVoid   = Type{Kind: Void}
)

// ---------------------------------------------------------------------------
// Declarations

// File is a parsed translation unit.
type File struct {
	Name    string // file name used in diagnostics and the line table
	Decls   []Decl
	FilePos token.Pos
}

func (f *File) Pos() token.Pos { return f.FilePos }
func (*File) nodeName() string { return "File" }

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// ClassDecl declares a class with fields and methods.
type ClassDecl struct {
	Name     string
	Fields   []*VarDecl
	Methods  []*FuncDecl
	ClassPos token.Pos
}

func (d *ClassDecl) Pos() token.Pos { return d.ClassPos }
func (*ClassDecl) nodeName() string { return "ClassDecl" }
func (*ClassDecl) declNode()        {}

// Param is a function parameter.
type Param struct {
	Name     string
	Type     Type
	IsArray  bool // declared with [] suffix: decays to pointer
	ParamPos token.Pos
}

func (p *Param) Pos() token.Pos { return p.ParamPos }
func (*Param) nodeName() string { return "Param" }

// FuncDecl declares a function or a class method.
type FuncDecl struct {
	Name       string // "operator()" for call operators
	ClassName  string // non-empty for methods
	RetType    Type
	Params     []*Param
	Body       *BlockStmt // nil for extern declarations
	IsExtern   bool       // extern library function: body invisible to static analysis
	IsOperator bool
	FuncPos    token.Pos
}

func (d *FuncDecl) Pos() token.Pos { return d.FuncPos }
func (*FuncDecl) nodeName() string { return "FuncDecl" }
func (*FuncDecl) declNode()        {}

// QualifiedName returns the model-facing function name, e.g. "A::foo".
func (d *FuncDecl) QualifiedName() string {
	if d.ClassName != "" {
		return d.ClassName + "::" + d.Name
	}
	return d.Name
}

// Declarator is one declared name within a VarDecl.
type Declarator struct {
	Name    string
	Dims    []Expr // array dimensions, outermost first; empty for scalars
	Init    Expr   // optional initializer
	NamePos token.Pos
}

func (d *Declarator) Pos() token.Pos { return d.NamePos }
func (*Declarator) nodeName() string { return "Declarator" }

// VarDecl declares one or more variables. It appears both at top level
// (globals) and as a statement (locals).
type VarDecl struct {
	Type    Type
	IsConst bool
	Names   []*Declarator
	Annot   *Annotation
	DeclPos token.Pos
}

func (d *VarDecl) Pos() token.Pos { return d.DeclPos }
func (*VarDecl) nodeName() string { return "VarDecl" }
func (*VarDecl) declNode()        {}
func (*VarDecl) stmtNode()        {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts    []Stmt
	Annot    *Annotation
	BracePos token.Pos
}

func (s *BlockStmt) Pos() token.Pos { return s.BracePos }
func (*BlockStmt) nodeName() string { return "BlockStmt" }
func (*BlockStmt) stmtNode()        {}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X     Expr
	Annot *Annotation
}

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (*ExprStmt) nodeName() string { return "ExprStmt" }
func (*ExprStmt) stmtNode()        {}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	SemiPos token.Pos
}

func (s *EmptyStmt) Pos() token.Pos { return s.SemiPos }
func (*EmptyStmt) nodeName() string { return "EmptyStmt" }
func (*EmptyStmt) stmtNode()        {}

// IfStmt is a branch. Annot carries a user annotation attached via #pragma.
type IfStmt struct {
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
	Annot *Annotation
	IfPos token.Pos
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (*IfStmt) nodeName() string { return "IfStmt" }
func (*IfStmt) stmtNode()        {}

// ForStmt is a C-style for loop. Init may be a VarDecl or ExprStmt; Cond and
// Post may be nil. The SCoP (static control part) that the polyhedral model
// consumes is exactly (Init, Cond, Post).
type ForStmt struct {
	Init   Stmt // may be nil or *EmptyStmt
	Cond   Expr // may be nil
	Post   Expr // may be nil
	Body   Stmt
	Annot  *Annotation
	ForPos token.Pos
}

func (s *ForStmt) Pos() token.Pos { return s.ForPos }
func (*ForStmt) nodeName() string { return "ForStmt" }
func (*ForStmt) stmtNode()        {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond     Expr
	Body     Stmt
	Annot    *Annotation
	WhilePos token.Pos
}

func (s *WhileStmt) Pos() token.Pos { return s.WhilePos }
func (*WhileStmt) nodeName() string { return "WhileStmt" }
func (*WhileStmt) stmtNode()        {}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X         Expr // may be nil
	ReturnPos token.Pos
}

func (s *ReturnStmt) Pos() token.Pos { return s.ReturnPos }
func (*ReturnStmt) nodeName() string { return "ReturnStmt" }
func (*ReturnStmt) stmtNode()        {}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	BreakPos token.Pos
}

func (s *BreakStmt) Pos() token.Pos { return s.BreakPos }
func (*BreakStmt) nodeName() string { return "BreakStmt" }
func (*BreakStmt) stmtNode()        {}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct {
	ContinuePos token.Pos
}

func (s *ContinueStmt) Pos() token.Pos { return s.ContinuePos }
func (*ContinueStmt) nodeName() string { return "ContinueStmt" }
func (*ContinueStmt) stmtNode()        {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident is a name reference.
type Ident struct {
	Name    string
	NamePos token.Pos
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (*Ident) nodeName() string { return "Ident" }
func (*Ident) exprNode()        {}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (*IntLit) nodeName() string { return "IntLit" }
func (*IntLit) exprNode()        {}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value  float64
	LitPos token.Pos
}

func (e *FloatLit) Pos() token.Pos { return e.LitPos }
func (*FloatLit) nodeName() string { return "FloatLit" }
func (*FloatLit) exprNode()        {}

// BoolLit is true/false.
type BoolLit struct {
	Value  bool
	LitPos token.Pos
}

func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (*BoolLit) nodeName() string { return "BoolLit" }
func (*BoolLit) exprNode()        {}

// StringLit is a string literal (used only as printf-style call arguments).
type StringLit struct {
	Value  string
	LitPos token.Pos
}

func (e *StringLit) Pos() token.Pos { return e.LitPos }
func (*StringLit) nodeName() string { return "StringLit" }
func (*StringLit) exprNode()        {}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (*BinaryExpr) nodeName() string { return "BinaryExpr" }
func (*BinaryExpr) exprNode()        {}

// UnaryExpr is a prefix or postfix unary operation. For INC/DEC, Postfix
// distinguishes i++ from ++i.
type UnaryExpr struct {
	Op      token.Kind
	X       Expr
	Postfix bool
	OpPos   token.Pos
}

func (e *UnaryExpr) Pos() token.Pos {
	if e.Postfix {
		return e.X.Pos()
	}
	return e.OpPos
}
func (*UnaryExpr) nodeName() string { return "UnaryExpr" }
func (*UnaryExpr) exprNode()        {}

// AssignExpr is an assignment, possibly compound (+=, -=, *=, /=).
type AssignExpr struct {
	Op  token.Kind
	LHS Expr
	RHS Expr
}

func (e *AssignExpr) Pos() token.Pos { return e.LHS.Pos() }
func (*AssignExpr) nodeName() string { return "AssignExpr" }
func (*AssignExpr) exprNode()        {}

// CallExpr is a function, method, or operator() call. Fun is an *Ident for
// free functions, a *MemberExpr for o.method(...) calls, or an arbitrary
// expression of class type for operator() application like A(i, j).
type CallExpr struct {
	Fun  Expr
	Args []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.Fun.Pos() }
func (*CallExpr) nodeName() string { return "CallExpr" }
func (*CallExpr) exprNode()        {}

// IndexExpr is a subscript x[i].
type IndexExpr struct {
	X     Expr
	Index Expr
}

func (e *IndexExpr) Pos() token.Pos { return e.X.Pos() }
func (*IndexExpr) nodeName() string { return "IndexExpr" }
func (*IndexExpr) exprNode()        {}

// MemberExpr is a field or method selection x.sel (or x->sel).
type MemberExpr struct {
	X     Expr
	Sel   string
	Arrow bool
}

func (e *MemberExpr) Pos() token.Pos { return e.X.Pos() }
func (*MemberExpr) nodeName() string { return "MemberExpr" }
func (*MemberExpr) exprNode()        {}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	X        Expr
	ParenPos token.Pos
}

func (e *ParenExpr) Pos() token.Pos { return e.ParenPos }
func (*ParenExpr) nodeName() string { return "ParenExpr" }
func (*ParenExpr) exprNode()        {}

// CondExpr is the ternary operator cond ? a : b.
type CondExpr struct {
	Cond, Then, Else Expr
}

func (e *CondExpr) Pos() token.Pos { return e.Cond.Pos() }
func (*CondExpr) nodeName() string { return "CondExpr" }
func (*CondExpr) exprNode()        {}

// ---------------------------------------------------------------------------
// Traversal

// Walk calls fn for node and, if fn returns true, recursively for each
// child. Nil children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
	case *ClassDecl:
		for _, f := range x.Fields {
			Walk(f, fn)
		}
		for _, m := range x.Methods {
			Walk(m, fn)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *VarDecl:
		for _, d := range x.Names {
			Walk(d, fn)
		}
	case *Declarator:
		for _, dim := range x.Dims {
			Walk(dim, fn)
		}
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *AssignExpr:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *MemberExpr:
		Walk(x.X, fn)
	case *ParenExpr:
		Walk(x.X, fn)
	case *CondExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	}
}

// Funcs returns every function declaration in the file, including class
// methods, in source order.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *FuncDecl:
			out = append(out, x)
		case *ClassDecl:
			out = append(out, x.Methods...)
		}
	}
	return out
}

// LookupFunc finds a function by qualified name.
func (f *File) LookupFunc(qname string) *FuncDecl {
	for _, fd := range f.Funcs() {
		if fd.QualifiedName() == qname {
			return fd
		}
	}
	return nil
}

// LookupClass finds a class declaration by name.
func (f *File) LookupClass(name string) *ClassDecl {
	for _, d := range f.Decls {
		if c, ok := d.(*ClassDecl); ok && c.Name == name {
			return c
		}
	}
	return nil
}

// ExprString renders an expression as compact source text, used in
// diagnostics and in the generated model's comments.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *FloatLit:
		// Keep float literals textually distinct from equal-valued integer
		// literals: ExprString doubles as a structural key (e.g. the
		// compiler's LICM cache), where "2" and "2.0" must not collide.
		s := fmt.Sprintf("%g", x.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		return fmt.Sprintf("%t", x.Value)
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.X), x.Op, ExprString(x.Y))
	case *UnaryExpr:
		if x.Postfix {
			return ExprString(x.X) + x.Op.String()
		}
		return x.Op.String() + ExprString(x.X)
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.LHS), x.Op, ExprString(x.RHS))
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", ExprString(x.Fun), strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(x.X), ExprString(x.Index))
	case *MemberExpr:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return ExprString(x.X) + sep + x.Sel
	case *ParenExpr:
		return "(" + ExprString(x.X) + ")"
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", ExprString(x.Cond), ExprString(x.Then), ExprString(x.Else))
	}
	return "?"
}
