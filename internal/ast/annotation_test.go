package ast

import (
	"testing"

	"mira/internal/token"
)

var annPos = token.Pos{Line: 5, Col: 1}

func TestParseAnnotationSkip(t *testing.T) {
	ann, err := ParseAnnotation("@Annotation {skip:yes}", annPos)
	if err != nil {
		t.Fatal(err)
	}
	if !ann.Skip {
		t.Error("Skip = false, want true")
	}
}

func TestParseAnnotationLoopVars(t *testing.T) {
	// The paper's Listing 6 example: {lp_init:x,lp_cond:y}.
	ann, err := ParseAnnotation("@Annotation {lp_init:x,lp_cond:y}", annPos)
	if err != nil {
		t.Fatal(err)
	}
	if ann.LoopInit == nil || !ann.LoopInit.IsParam || ann.LoopInit.Param != "x" {
		t.Errorf("LoopInit = %v, want param x", ann.LoopInit)
	}
	if ann.LoopCond == nil || !ann.LoopCond.IsParam || ann.LoopCond.Param != "y" {
		t.Errorf("LoopCond = %v, want param y", ann.LoopCond)
	}
	params := ann.Params()
	if len(params) != 2 || params[0] != "x" || params[1] != "y" {
		t.Errorf("Params() = %v", params)
	}
}

func TestParseAnnotationNumeric(t *testing.T) {
	ann, err := ParseAnnotation("@Annotation {lp_iter:100, br_frac:0.25}", annPos)
	if err != nil {
		t.Fatal(err)
	}
	if ann.LoopIter == nil || ann.LoopIter.IsParam || ann.LoopIter.Num != 100 {
		t.Errorf("LoopIter = %v", ann.LoopIter)
	}
	if ann.BranchFrac == nil || ann.BranchFrac.Num != 0.25 {
		t.Errorf("BranchFrac = %v", ann.BranchFrac)
	}
}

func TestParseAnnotationErrors(t *testing.T) {
	cases := []string{
		"@Annotation",               // no body
		"@Annotation {}",            // empty
		"@Annotation {bogus:1}",     // unknown key
		"@Annotation {skip:maybe}",  // bad bool
		"@Annotation {br_frac:1.5}", // out of range
		"@Annotation {lp_iter:}",    // empty value
		"@Annotation {lp_iter:a+b}", // not ident or number
		"@Annotation lp_iter:5",     // missing braces
		"@Annotation {lp_iter}",     // missing colon
		"@NotAnnotation {skip:yes}", // wrong directive
	}
	for _, c := range cases {
		if _, err := ParseAnnotation(c, annPos); err == nil {
			t.Errorf("ParseAnnotation(%q) succeeded, want error", c)
		}
	}
}

func TestIsAnnotationPragma(t *testing.T) {
	if !IsAnnotationPragma("@Annotation {skip:yes}") {
		t.Error("@Annotation not recognized")
	}
	if IsAnnotationPragma("omp parallel for") {
		t.Error("omp pragma misrecognized as annotation")
	}
}

func TestAnnotValueString(t *testing.T) {
	v := &AnnotValue{Param: "n", IsParam: true}
	if v.String() != "n" {
		t.Errorf("String() = %q", v.String())
	}
	v = &AnnotValue{Num: 2.5}
	if v.String() != "2.5" {
		t.Errorf("String() = %q", v.String())
	}
	var nilv *AnnotValue
	if nilv.String() != "<nil>" {
		t.Errorf("nil String() = %q", nilv.String())
	}
}
