package ast

import (
	"encoding/binary"
	"io"
	"math"

	"mira/internal/token"
)

// HashNode writes a canonical binary encoding of n — structure, values,
// AND source positions — to w, which is typically a hash.Hash. It is the
// basis of the function-content keys used by the incremental pipeline.
//
// Positions are deliberately part of the encoding: Mira's models are
// position-sensitive. Site multiplicities attach to (line, col) pairs,
// the DWARF-style line table keys instructions by position, and loop
// variables are mangled with their declaration line (the "y_16"
// convention from the paper's Fig. 5). Two functions whose token spelling
// matches but whose layout differs therefore produce different models,
// and must produce different hashes.
//
// Every syntactic field participates, including annotations (their raw
// payload fully determines the parsed form) — an encoding that skipped
// any model-relevant field would alias distinct functions to one cache
// key and serve a wrong cached model.
func HashNode(w io.Writer, n Node) {
	h := hasher{w: w}
	h.node(n)
}

type hasher struct {
	w io.Writer
}

func (h *hasher) bytes(b []byte) { h.w.Write(b) }

func (h *hasher) tag(t byte) { h.bytes([]byte{t}) }

func (h *hasher) bool(v bool) {
	if v {
		h.tag(1)
	} else {
		h.tag(0)
	}
}

func (h *hasher) int(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	h.bytes(buf[:n])
}

func (h *hasher) uint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	h.bytes(buf[:n])
}

func (h *hasher) str(s string) {
	h.uint(uint64(len(s)))
	h.bytes([]byte(s))
}

func (h *hasher) pos(p token.Pos) {
	h.int(int64(p.Line))
	h.int(int64(p.Col))
}

func (h *hasher) typ(t Type) {
	h.int(int64(t.Kind))
	h.int(int64(t.Ptr))
	h.str(t.ClassName)
}

func (h *hasher) annot(a *Annotation) {
	if a == nil {
		h.tag(0)
		return
	}
	h.tag(1)
	h.pos(a.Pos)
	// Raw is the full payload the parsed fields derive from; hashing it
	// covers every key/value including future additions.
	h.str(a.Raw)
}

// node writes one node (and its subtree). A nil node writes a distinct
// marker so optional children cannot alias shifted siblings.
func (h *hasher) node(n Node) {
	if n == nil || isNilNode(n) {
		h.tag(0)
		return
	}
	switch x := n.(type) {
	case *File:
		h.tag(1)
		h.uint(uint64(len(x.Decls)))
		for _, d := range x.Decls {
			h.node(d)
		}
	case *ClassDecl:
		h.tag(2)
		h.pos(x.ClassPos)
		h.str(x.Name)
		h.uint(uint64(len(x.Fields)))
		for _, f := range x.Fields {
			h.node(f)
		}
		h.uint(uint64(len(x.Methods)))
		for _, m := range x.Methods {
			h.node(m)
		}
	case *FuncDecl:
		h.tag(3)
		h.pos(x.FuncPos)
		h.str(x.Name)
		h.str(x.ClassName)
		h.typ(x.RetType)
		h.bool(x.IsExtern)
		h.bool(x.IsOperator)
		h.uint(uint64(len(x.Params)))
		for _, p := range x.Params {
			h.node(p)
		}
		h.node(x.Body)
	case *Param:
		h.tag(4)
		h.pos(x.ParamPos)
		h.str(x.Name)
		h.typ(x.Type)
		h.bool(x.IsArray)
	case *VarDecl:
		h.tag(5)
		h.pos(x.DeclPos)
		h.typ(x.Type)
		h.bool(x.IsConst)
		h.annot(x.Annot)
		h.uint(uint64(len(x.Names)))
		for _, d := range x.Names {
			h.node(d)
		}
	case *Declarator:
		h.tag(6)
		h.pos(x.NamePos)
		h.str(x.Name)
		h.uint(uint64(len(x.Dims)))
		for _, dim := range x.Dims {
			h.node(dim)
		}
		h.node(x.Init)
	case *BlockStmt:
		h.tag(7)
		h.pos(x.BracePos)
		h.annot(x.Annot)
		h.uint(uint64(len(x.Stmts)))
		for _, s := range x.Stmts {
			h.node(s)
		}
	case *ExprStmt:
		h.tag(8)
		h.annot(x.Annot)
		h.node(x.X)
	case *EmptyStmt:
		h.tag(9)
		h.pos(x.SemiPos)
	case *IfStmt:
		h.tag(10)
		h.pos(x.IfPos)
		h.annot(x.Annot)
		h.node(x.Cond)
		h.node(x.Then)
		h.node(x.Else)
	case *ForStmt:
		h.tag(11)
		h.pos(x.ForPos)
		h.annot(x.Annot)
		h.node(x.Init)
		h.node(x.Cond)
		h.node(x.Post)
		h.node(x.Body)
	case *WhileStmt:
		h.tag(12)
		h.pos(x.WhilePos)
		h.annot(x.Annot)
		h.node(x.Cond)
		h.node(x.Body)
	case *ReturnStmt:
		h.tag(13)
		h.pos(x.ReturnPos)
		h.node(x.X)
	case *BreakStmt:
		h.tag(14)
		h.pos(x.BreakPos)
	case *ContinueStmt:
		h.tag(15)
		h.pos(x.ContinuePos)
	case *Ident:
		h.tag(16)
		h.pos(x.NamePos)
		h.str(x.Name)
	case *IntLit:
		h.tag(17)
		h.pos(x.LitPos)
		h.int(x.Value)
	case *FloatLit:
		h.tag(18)
		h.pos(x.LitPos)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x.Value))
		h.bytes(buf[:])
	case *BoolLit:
		h.tag(19)
		h.pos(x.LitPos)
		h.bool(x.Value)
	case *StringLit:
		h.tag(20)
		h.pos(x.LitPos)
		h.str(x.Value)
	case *BinaryExpr:
		h.tag(21)
		h.int(int64(x.Op))
		h.node(x.X)
		h.node(x.Y)
	case *UnaryExpr:
		h.tag(22)
		h.pos(x.OpPos)
		h.int(int64(x.Op))
		h.bool(x.Postfix)
		h.node(x.X)
	case *AssignExpr:
		h.tag(23)
		h.int(int64(x.Op))
		h.node(x.LHS)
		h.node(x.RHS)
	case *CallExpr:
		h.tag(24)
		h.node(x.Fun)
		h.uint(uint64(len(x.Args)))
		for _, a := range x.Args {
			h.node(a)
		}
	case *IndexExpr:
		h.tag(25)
		h.node(x.X)
		h.node(x.Index)
	case *MemberExpr:
		h.tag(26)
		h.str(x.Sel)
		h.bool(x.Arrow)
		h.node(x.X)
	case *ParenExpr:
		h.tag(27)
		h.pos(x.ParenPos)
		h.node(x.X)
	case *CondExpr:
		h.tag(28)
		h.node(x.Cond)
		h.node(x.Then)
		h.node(x.Else)
	default:
		// Unknown future node kinds must not silently alias: emit a
		// distinct tag plus the node's name and position.
		h.tag(255)
		h.str(n.nodeName())
		h.pos(n.Pos())
	}
}

// isNilNode reports whether n is a typed nil inside a non-nil interface
// (e.g. a nil *BlockStmt stored in a Stmt field).
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *File:
		return x == nil
	case *ClassDecl:
		return x == nil
	case *FuncDecl:
		return x == nil
	case *Param:
		return x == nil
	case *VarDecl:
		return x == nil
	case *Declarator:
		return x == nil
	case *BlockStmt:
		return x == nil
	case *ExprStmt:
		return x == nil
	case *EmptyStmt:
		return x == nil
	case *IfStmt:
		return x == nil
	case *ForStmt:
		return x == nil
	case *WhileStmt:
		return x == nil
	case *ReturnStmt:
		return x == nil
	case *BreakStmt:
		return x == nil
	case *ContinueStmt:
		return x == nil
	case *Ident:
		return x == nil
	case *IntLit:
		return x == nil
	case *FloatLit:
		return x == nil
	case *BoolLit:
		return x == nil
	case *StringLit:
		return x == nil
	case *BinaryExpr:
		return x == nil
	case *UnaryExpr:
		return x == nil
	case *AssignExpr:
		return x == nil
	case *CallExpr:
		return x == nil
	case *IndexExpr:
		return x == nil
	case *MemberExpr:
		return x == nil
	case *ParenExpr:
		return x == nil
	case *CondExpr:
		return x == nil
	}
	return false
}
