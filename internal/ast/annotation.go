package ast

import (
	"fmt"
	"strconv"
	"strings"

	"mira/internal/token"
)

// Annotation is a parsed "#pragma @Annotation {...}" directive (paper
// Sec. III-C4). The paper defines three annotation kinds, all supported:
//
//  1. an estimated branch proportion or an explicit iteration count that
//     short-circuits loop/branch modeling ("br_frac", "br_count",
//     "lp_iter"),
//  2. variables supplying a loop's initial value, condition bound, or step
//     so the polyhedral model can be completed ("lp_init", "lp_cond",
//     "lp_step"), and
//  3. a skip flag excluding a structure from the model ("skip").
//
// Values may be integers, floating-point fractions, or identifiers; an
// identifier value becomes a parameter of the generated model, exactly as
// variables x and y do in the paper's Listing 6.
type Annotation struct {
	Pos  token.Pos
	Raw  string // the payload text inside {...}
	Skip bool   // {skip:yes}

	LoopInit *AnnotValue // {lp_init:...} loop initial value
	LoopCond *AnnotValue // {lp_cond:...} loop bound (inclusive upper bound)
	LoopStep *AnnotValue // {lp_step:...} loop step
	LoopIter *AnnotValue // {lp_iter:...} explicit iteration count

	BranchFrac  *AnnotValue // {br_frac:...} fraction of iterations taking the branch
	BranchCount *AnnotValue // {br_count:...} explicit branch-taken count
}

// AnnotValue is a single annotation value: either a numeric constant or a
// parameter name.
type AnnotValue struct {
	Param   string  // parameter name when the value is an identifier
	Num     float64 // numeric value when Param == ""
	IsParam bool
}

func (v *AnnotValue) String() string {
	if v == nil {
		return "<nil>"
	}
	if v.IsParam {
		return v.Param
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// IsAnnotationPragma reports whether a pragma payload is an @Annotation
// directive (as opposed to, e.g., "#pragma omp ...", which Mira ignores).
func IsAnnotationPragma(payload string) bool {
	return strings.HasPrefix(strings.TrimSpace(payload), "@Annotation")
}

// ParseAnnotation parses the payload of "#pragma @Annotation {k:v, ...}".
func ParseAnnotation(payload string, pos token.Pos) (*Annotation, error) {
	body := strings.TrimSpace(payload)
	if !strings.HasPrefix(body, "@Annotation") {
		return nil, fmt.Errorf("%s: not an @Annotation pragma: %q", pos, payload)
	}
	body = strings.TrimSpace(strings.TrimPrefix(body, "@Annotation"))
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("%s: annotation body must be {key:value,...}, got %q", pos, body)
	}
	inner := body[1 : len(body)-1]
	ann := &Annotation{Pos: pos, Raw: inner}
	if strings.TrimSpace(inner) == "" {
		return nil, fmt.Errorf("%s: empty annotation", pos)
	}
	for _, kv := range splitTopLevel(inner, ',') {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s: malformed annotation entry %q", pos, kv)
		}
		key := strings.TrimSpace(parts[0])
		val := strings.TrimSpace(parts[1])
		if err := ann.set(key, val, pos); err != nil {
			return nil, err
		}
	}
	return ann, nil
}

func (a *Annotation) set(key, val string, pos token.Pos) error {
	switch key {
	case "skip":
		switch val {
		case "yes", "true", "1":
			a.Skip = true
		case "no", "false", "0":
			a.Skip = false
		default:
			return fmt.Errorf("%s: skip must be yes/no, got %q", pos, val)
		}
		return nil
	case "lp_init", "lp_cond", "lp_step", "lp_iter", "br_frac", "br_count":
		v, err := parseAnnotValue(val, pos)
		if err != nil {
			return err
		}
		switch key {
		case "lp_init":
			a.LoopInit = v
		case "lp_cond":
			a.LoopCond = v
		case "lp_step":
			a.LoopStep = v
		case "lp_iter":
			a.LoopIter = v
		case "br_frac":
			if !v.IsParam && (v.Num < 0 || v.Num > 1) {
				return fmt.Errorf("%s: br_frac must be in [0,1], got %g", pos, v.Num)
			}
			a.BranchFrac = v
		case "br_count":
			a.BranchCount = v
		}
		return nil
	}
	return fmt.Errorf("%s: unknown annotation key %q", pos, key)
}

func parseAnnotValue(val string, pos token.Pos) (*AnnotValue, error) {
	if val == "" {
		return nil, fmt.Errorf("%s: empty annotation value", pos)
	}
	if n, err := strconv.ParseFloat(val, 64); err == nil {
		return &AnnotValue{Num: n}, nil
	}
	if !isIdentText(val) {
		return nil, fmt.Errorf("%s: annotation value %q is neither a number nor an identifier", pos, val)
	}
	return &AnnotValue{Param: val, IsParam: true}, nil
}

func isIdentText(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// splitTopLevel splits s on sep, ignoring separators nested inside (), [],
// or {} groups.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Params returns the parameter names referenced by the annotation, in a
// stable order.
func (a *Annotation) Params() []string {
	var out []string
	add := func(v *AnnotValue) {
		if v != nil && v.IsParam {
			out = append(out, v.Param)
		}
	}
	add(a.LoopInit)
	add(a.LoopCond)
	add(a.LoopStep)
	add(a.LoopIter)
	add(a.BranchFrac)
	add(a.BranchCount)
	return out
}
