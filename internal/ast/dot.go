package ast

import (
	"fmt"
	"strings"
)

// Dot renders the subtree rooted at n as a Graphviz dot graph, mirroring the
// ROSE-generated dot output shown in the paper's Fig. 2. Node labels use
// ROSE-style Sg names (SgForStatement, SgExprStatement, ...) so that the
// output is directly comparable with the paper's figures.
func Dot(n Node) string {
	var b strings.Builder
	b.WriteString("digraph ast {\n  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var emit func(n Node) int
	emit = func(n Node) int {
		my := id
		id++
		fmt.Fprintf(&b, "  n%d [label=%q];\n", my, roseName(n))
		for _, c := range children(n) {
			ci := emit(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", my, ci)
		}
		return my
	}
	if n != nil {
		emit(n)
	}
	b.WriteString("}\n")
	return b.String()
}

// roseName maps our node types to ROSE-like class names with a short
// descriptive payload.
func roseName(n Node) string {
	switch x := n.(type) {
	case *File:
		return "SgSourceFile " + x.Name
	case *ClassDecl:
		return "SgClassDeclaration " + x.Name
	case *FuncDecl:
		return "SgFunctionDeclaration " + x.QualifiedName()
	case *Param:
		return "SgInitializedName " + x.Name
	case *VarDecl:
		names := make([]string, len(x.Names))
		for i, d := range x.Names {
			names[i] = d.Name
		}
		return "SgVariableDeclaration " + strings.Join(names, ",")
	case *Declarator:
		return "SgInitializedName " + x.Name
	case *BlockStmt:
		return "SgBasicBlock"
	case *ExprStmt:
		return "SgExprStatement"
	case *EmptyStmt:
		return "SgNullStatement"
	case *IfStmt:
		return "SgIfStmt"
	case *ForStmt:
		return "SgForStatement"
	case *WhileStmt:
		return "SgWhileStmt"
	case *ReturnStmt:
		return "SgReturnStmt"
	case *BreakStmt:
		return "SgBreakStmt"
	case *ContinueStmt:
		return "SgContinueStmt"
	case *Ident:
		return "SgVarRefExp " + x.Name
	case *IntLit:
		return fmt.Sprintf("SgIntVal %d", x.Value)
	case *FloatLit:
		return fmt.Sprintf("SgDoubleVal %g", x.Value)
	case *BoolLit:
		return fmt.Sprintf("SgBoolValExp %t", x.Value)
	case *StringLit:
		return "SgStringVal"
	case *BinaryExpr:
		return "SgBinaryOp " + x.Op.String()
	case *UnaryExpr:
		if x.Op.String() == "++" {
			return "SgPlusPlusOp"
		}
		if x.Op.String() == "--" {
			return "SgMinusMinusOp"
		}
		return "SgUnaryOp " + x.Op.String()
	case *AssignExpr:
		return "SgAssignOp " + x.Op.String()
	case *CallExpr:
		return "SgFunctionCallExp"
	case *IndexExpr:
		return "SgPntrArrRefExp"
	case *MemberExpr:
		return "SgDotExp ." + x.Sel
	case *ParenExpr:
		return "SgParenExp"
	case *CondExpr:
		return "SgConditionalExp"
	}
	return fmt.Sprintf("%T", n)
}

// children returns the direct child nodes of n in source order.
func children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		switch v := c.(type) {
		case nil:
		case Expr:
			if v != nil {
				out = append(out, c)
			}
		case Stmt:
			if v != nil {
				out = append(out, c)
			}
		default:
			out = append(out, c)
		}
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			add(d)
		}
	case *ClassDecl:
		for _, f := range x.Fields {
			add(f)
		}
		for _, m := range x.Methods {
			add(m)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			add(p)
		}
		if x.Body != nil {
			add(x.Body)
		}
	case *VarDecl:
		for _, d := range x.Names {
			add(d)
		}
	case *Declarator:
		for _, dim := range x.Dims {
			add(dim)
		}
		if x.Init != nil {
			add(x.Init)
		}
	case *BlockStmt:
		for _, s := range x.Stmts {
			add(s)
		}
	case *ExprStmt:
		add(x.X)
	case *IfStmt:
		add(x.Cond)
		add(x.Then)
		if x.Else != nil {
			add(x.Else)
		}
	case *ForStmt:
		if x.Init != nil {
			add(x.Init)
		}
		if x.Cond != nil {
			add(x.Cond)
		}
		if x.Post != nil {
			add(x.Post)
		}
		add(x.Body)
	case *WhileStmt:
		add(x.Cond)
		add(x.Body)
	case *ReturnStmt:
		if x.X != nil {
			add(x.X)
		}
	case *BinaryExpr:
		add(x.X)
		add(x.Y)
	case *UnaryExpr:
		add(x.X)
	case *AssignExpr:
		add(x.LHS)
		add(x.RHS)
	case *CallExpr:
		add(x.Fun)
		for _, a := range x.Args {
			add(a)
		}
	case *IndexExpr:
		add(x.X)
		add(x.Index)
	case *MemberExpr:
		add(x.X)
	case *ParenExpr:
		add(x.X)
	case *CondExpr:
		add(x.Cond)
		add(x.Then)
		add(x.Else)
	}
	return out
}
