package engine

import (
	"mira/internal/obs"
)

// metricsSet groups the engine's observability instruments. Every engine
// has one (over a private registry when the caller supplied none), so the
// hot paths never nil-check.
//
// Exposed series, in OpenMetrics terms:
//
//	mira_pipeline_cache_hits/misses_total   live (in-process) cache
//	mira_store_hits/misses/errors_total     persistent CacheStore
//	mira_incremental_hits/misses_total      function-granular reuse
//	mira_eval_memo_hits/misses_total        (function, env) memo
//	mira_analyze_seconds                    cold compile latency (summary)
//	mira_rebuild_seconds                    warm store-rebuild latency
//	mira_eval_seconds                       model evaluation latency
//	mira_compile_seconds                    symbolic compilation latency
//	mira_sweep_seconds                      whole-sweep latency
//	mira_sweep_points_total                 compiled sweep points evaluated
//	mira_analyses_inflight                  gauge
//	mira_resident_analyses                  gauge (scrape-computed)
//	mira_function_memo_entries              gauge (scrape-computed)
//	mira_eval_memo_entries                  gauge (scrape-computed)
//	mira_arch_registry_entries              gauge (scrape-computed)
type metricsSet struct {
	pipeHits    *obs.Counter
	pipeMisses  *obs.Counter
	storeHits   *obs.Counter
	storeMisses *obs.Counter
	storeErrors *obs.Counter
	incrHits    *obs.Counter
	incrMisses  *obs.Counter
	evalHits    *obs.Counter
	evalMisses  *obs.Counter
	evictions   *obs.Counter
	sweepPoints *obs.Counter

	analyze *obs.Summary
	rebuild *obs.Summary
	eval    *obs.Summary
	compile *obs.Summary
	sweep   *obs.Summary

	inflight *obs.Gauge
}

func newMetricsSet(r *obs.Registry) *metricsSet {
	return &metricsSet{
		pipeHits:    r.Counter("mira_pipeline_cache_hits", "analyses served from the live content-hash cache"),
		pipeMisses:  r.Counter("mira_pipeline_cache_misses", "analyses that missed the live cache"),
		storeHits:   r.Counter("mira_store_hits", "analyses rebuilt from the persistent cache store"),
		storeMisses: r.Counter("mira_store_misses", "persistent-store lookups that missed"),
		storeErrors: r.Counter("mira_store_errors", "persistent-store entries that failed to load, verify, or save"),
		incrHits:    r.Counter("mira_incremental_hits", "functions reused from the function memo during incremental analysis"),
		incrMisses:  r.Counter("mira_incremental_misses", "functions recompiled during incremental analysis"),
		evalHits:    r.Counter("mira_eval_memo_hits", "model evaluations served from the (function, env) memo"),
		evalMisses:  r.Counter("mira_eval_memo_misses", "model evaluations that walked the model"),
		evictions:   r.Counter("mira_cache_evictions", "live-cache entries evicted under the MaxResident bound"),
		sweepPoints: r.Counter("mira_sweep_points", "grid points evaluated by compiled sweeps"),
		analyze:     r.Summary("mira_analyze_seconds", "cold pipeline analysis latency"),
		rebuild:     r.Summary("mira_rebuild_seconds", "warm rebuild-from-store latency"),
		eval:        r.Summary("mira_eval_seconds", "model evaluation latency (memo misses)"),
		compile:     r.Summary("mira_compile_seconds", "symbolic model compilation latency"),
		sweep:       r.Summary("mira_sweep_seconds", "whole-sweep latency (grid expansion through last point)"),
		inflight:    r.Gauge("mira_analyses_inflight", "pipeline analyses currently running"),
	}
}

// registerEngineGauges adds the scrape-computed gauges that walk the
// engine's live cache. Registered from New, after the engine exists.
func registerEngineGauges(r *obs.Registry, e *Engine) {
	r.GaugeFunc("mira_resident_analyses", "completed analyses resident in the live cache", func() float64 {
		return float64(e.residentStats())
	})
	r.GaugeFunc("mira_function_memo_entries", "per-function memo cells resident in the engine", func() float64 {
		cells, _ := e.funcMemoStats()
		return float64(cells)
	})
	r.GaugeFunc("mira_eval_memo_entries", "total memoized evaluation entries across the function memo", func() float64 {
		_, entries := e.funcMemoStats()
		return float64(entries)
	})
	r.GaugeFunc("mira_arch_registry_entries", "architecture descriptions resolvable through the engine's registry", func() float64 {
		return float64(e.registry.Len())
	})
}

// residentStats counts completed successful analyses. Only calls whose
// done channel is closed are touched, so the walk never races with a
// writer or blocks on an in-flight compile.
func (e *Engine) residentStats() (resident int) {
	e.mu.Lock()
	calls := make([]*call, 0, len(e.calls))
	//lint:ignore mira/detorder snapshot order is irrelevant: the walk only counts residents
	for _, c := range e.calls {
		calls = append(calls, c)
	}
	e.mu.Unlock()
	for _, c := range calls {
		select {
		case <-c.done:
			if c.a != nil {
				resident++
			}
		default:
		}
	}
	return resident
}
