package engine_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mira/internal/arch"
	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/parser"
	"mira/internal/pbound"
	"mira/internal/sema"
)

func TestQueryKindNames(t *testing.T) {
	kinds := []engine.QueryKind{
		engine.KindStatic, engine.KindStaticExclusive, engine.KindCategories,
		engine.KindFineCategories, engine.KindRoofline, engine.KindPBound,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
		back, err := engine.ParseKind(name)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, back, err, k)
		}
	}
	if _, err := engine.ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
	if s := engine.QueryKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// TestRunMatchesDirectMethods: every query kind returns exactly what the
// corresponding direct method returns, evaluated as one batch.
func TestRunMatchesDirectMethods(t *testing.T) {
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 64})
	results := a.Run(context.Background(), []engine.Query{
		{Fn: "scale", Env: env, Kind: engine.KindStatic},
		{Fn: "scale", Env: env, Kind: engine.KindStaticExclusive},
		{Fn: "scale", Env: env, Kind: engine.KindCategories},
		{Fn: "scale", Env: env, Kind: engine.KindFineCategories},
		{Fn: "scale", Env: env, Kind: engine.KindRoofline},
		{Fn: "scale", Env: env, Kind: engine.KindPBound},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d (%s): %v", i, r.Query.Kind, r.Err)
		}
	}

	met, _ := a.StaticMetrics("scale", env)
	if *results[0].Metrics != met {
		t.Errorf("static: %+v != %+v", *results[0].Metrics, met)
	}
	excl, _ := a.StaticMetricsExclusive("scale", env)
	if *results[1].Metrics != excl {
		t.Errorf("exclusive: %+v != %+v", *results[1].Metrics, excl)
	}
	cats, _ := a.TableIICounts("scale", env)
	if !reflect.DeepEqual(results[2].Categories, cats) {
		t.Errorf("categories: %v != %v", results[2].Categories, cats)
	}
	fine, _ := a.FineCategoryCounts("scale", env)
	if !reflect.DeepEqual(results[3].Categories, fine) {
		t.Errorf("fine: %v != %v", results[3].Categories, fine)
	}
	if results[4].Roofline.Function != "scale" || results[4].Roofline.InstrAI <= 0 {
		t.Errorf("roofline: %+v", results[4].Roofline)
	}

	// PBound must match a hand-rolled source-only pipeline.
	file, err := parser.ParseFile("scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(file)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pbound.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.EvalCounts("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	if *results[5].PBound != want {
		t.Errorf("pbound: %+v != %+v", *results[5].PBound, want)
	}
}

// TestRunPerQueryErrors: bad cells fail alone; the batch completes.
func TestRunPerQueryErrors(t *testing.T) {
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 8})
	results := a.Run(context.Background(), []engine.Query{
		{Fn: "nosuch", Env: env, Kind: engine.KindStatic},
		{Fn: "scale", Env: nil, Kind: engine.KindStatic}, // n unbound
		{Fn: "scale", Env: env, Kind: engine.QueryKind(42)},
		{Fn: "scale", Env: env, Kind: engine.KindRoofline, Arch: "pdp11"},
		{Fn: "scale", Env: env, Kind: engine.KindStatic},
	})
	for i := 0; i < 4; i++ {
		if results[i].Err == nil {
			t.Errorf("query %d: expected error", i)
		}
	}
	if results[4].Err != nil || results[4].Metrics.FPI() != 8 {
		t.Errorf("healthy trailing query: %+v", results[4])
	}
}

// TestRooflineArchOverride: the per-query Arch field changes the machine
// whose roofline the function lands on.
func TestRooflineArchOverride(t *testing.T) {
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	res := a.Run(context.Background(), []engine.Query{
		{Fn: "scale", Env: env, Kind: engine.KindRoofline, Arch: "arya"},
		{Fn: "scale", Env: env, Kind: engine.KindRoofline, Arch: "frankenstein"},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("roofline errors: %v, %v", res[0].Err, res[1].Err)
	}
	if res[0].Roofline.RidgeAI == res[1].Roofline.RidgeAI {
		t.Error("arch override had no effect on the ridge point")
	}
	if res[0].Roofline.InstrAI != res[1].Roofline.InstrAI {
		t.Error("instruction AI is machine-independent and must not change")
	}

	// An in-process description value — modified, so Lookup could never
	// reproduce it — must be honored verbatim, taking precedence over
	// the named form.
	custom := arch.Arya()
	custom.MemBandwidthGBs *= 2
	cres := a.RunOne(context.Background(), engine.Query{
		Fn: "scale", Env: env, Kind: engine.KindRoofline, Arch: "frankenstein", ArchDesc: custom,
	})
	if cres.Err != nil {
		t.Fatal(cres.Err)
	}
	if want := custom.PeakGFlops() / custom.MemBandwidthGBs; cres.Roofline.RidgeAI != want {
		t.Errorf("custom description ignored: ridge %v, want %v", cres.Roofline.RidgeAI, want)
	}
}

// TestRunCancelledContext: a cancelled ctx yields per-query
// context.Canceled errors for every unevaluated cell, immediately.
func TestRunCancelledContext(t *testing.T) {
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := expr.EnvFromInts(map[string]int64{"n": 8})
	results := a.Run(ctx, []engine.Query{
		{Fn: "scale", Env: env, Kind: engine.KindStatic},
		{Fn: "scale", Env: env, Kind: engine.KindPBound},
	})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("query %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if hits, misses := a.EvalStats(); hits != 0 || misses != 0 {
		t.Errorf("cancelled batch still evaluated: %d hits / %d misses", hits, misses)
	}
}

// TestRunAllQueryMatrix: an engine-level matrix over two programs —
// shared compiles, per-job errors, key-based references.
func TestRunAllQueryMatrix(t *testing.T) {
	e := engine.New(engine.Options{Workers: 4})
	env := expr.EnvFromInts(map[string]int64{"n": 16})
	a, err := e.AnalyzeCtx(context.Background(), "seed.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []engine.QueryJob{
		{Name: "a.c", Source: scaleSrc, Query: engine.Query{Fn: "scale", Env: env, Kind: engine.KindStatic}},
		{Name: "b.c", Source: scaleSrc, Query: engine.Query{Fn: "scale", Env: env, Kind: engine.KindCategories}},
		{Name: "c.c", Source: axpySrc, Query: engine.Query{Fn: "axpy", Env: env, Kind: engine.KindStatic}},
		{Key: a.Key(), Query: engine.Query{Fn: "scale", Env: env, Kind: engine.KindPBound}},
		{Key: "deadbeef", Query: engine.Query{Fn: "scale", Env: env, Kind: engine.KindStatic}},
		{Query: engine.Query{Fn: "scale", Env: env, Kind: engine.KindStatic}},
		{Name: "bad.c", Source: "int f( {", Query: engine.Query{Fn: "f", Env: env, Kind: engine.KindStatic}},
	}
	results := e.RunAll(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].Metrics.FPI() != 16 {
		t.Errorf("job 0: %+v, %v", results[0].Metrics, results[0].Err)
	}
	if results[1].Err != nil || len(results[1].Categories) == 0 {
		t.Errorf("job 1: %v", results[1].Err)
	}
	if results[2].Err != nil || results[2].Metrics.FPI() != 32 {
		t.Errorf("job 2: %+v, %v", results[2].Metrics, results[2].Err)
	}
	if results[3].Err != nil || results[3].PBound == nil {
		t.Errorf("job 3 (by key): %v", results[3].Err)
	}
	for i := 4; i <= 6; i++ {
		if results[i].Err == nil {
			t.Errorf("job %d: expected error", i)
		}
	}
	// scaleSrc appeared under seed.c, a.c, and b.c: one compile total.
	if _, misses := e.Stats(); misses != 3 { // seed + axpy + bad
		t.Errorf("misses = %d, want 3 (scale compiled once, axpy once, bad once)", misses)
	}
}
