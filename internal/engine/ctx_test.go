package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mira/internal/engine"
)

// blockingStore is a CacheStore whose Load parks until released — a
// deterministic way to hold an analysis in-flight (and its worker slot
// occupied) while a test cancels other callers.
type blockingStore struct {
	entered chan string   // receives the key of each Load call
	release chan struct{} // closed to let all Loads proceed (as misses)
}

func newBlockingStore() *blockingStore {
	return &blockingStore{entered: make(chan string, 16), release: make(chan struct{})}
}

func (s *blockingStore) Load(key string) (*engine.Entry, bool) {
	s.entered <- key
	<-s.release
	return nil, false
}

func (s *blockingStore) Store(string, *engine.Entry) error { return nil }

// await fails the test if ch doesn't deliver within a generous bound —
// "promptly" for a cancellation that should take microseconds.
func await[T any](t *testing.T, what string, ch <-chan T) T {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: timed out", what)
		panic("unreachable")
	}
}

// TestSingleflightWaitCancellation: a caller abandoning a duplicate-key
// wait returns ctx.Err() immediately while the owning compile continues
// and still lands in the cache.
func TestSingleflightWaitCancellation(t *testing.T) {
	store := newBlockingStore()
	e := engine.New(engine.Options{Store: store})

	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.AnalyzeCtx(context.Background(), "owner.c", scaleSrc)
		ownerDone <- err
	}()
	await(t, "owner entering build", store.entered)

	// The duplicate-key waiter abandons the wait.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.AnalyzeCtx(ctx, "waiter.c", scaleSrc)
		waiterDone <- err
	}()
	cancel()
	if err := await(t, "cancelled waiter", waiterDone); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}

	// The owner was never disturbed; its result is cached and a retry
	// with a live context is a pure hit.
	close(store.release)
	if err := await(t, "owner completing", ownerDone); err != nil {
		t.Fatal(err)
	}
	a, err := e.AnalyzeCtx(context.Background(), "retry.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "retry.c" {
		t.Errorf("retry name = %q", a.Name)
	}
	if hits, _ := e.Stats(); hits != 1 {
		t.Errorf("hits = %d, want 1 (the retry)", hits)
	}
}

// TestWorkerQueueCancellation: a caller cancelled while queued for a
// worker slot withdraws, and the cancellation is not cached — the same
// source analyzed again with a live context succeeds.
func TestWorkerQueueCancellation(t *testing.T) {
	store := newBlockingStore()
	e := engine.New(engine.Options{Workers: 1, Store: store})

	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.AnalyzeCtx(context.Background(), "owner.c", scaleSrc)
		ownerDone <- err
	}()
	await(t, "owner occupying the only worker", store.entered)

	ctx, cancel := context.WithCancel(context.Background())
	queuedDone := make(chan error, 1)
	go func() {
		_, err := e.AnalyzeCtx(ctx, "queued.c", axpySrc)
		queuedDone <- err
	}()
	cancel()
	if err := await(t, "cancelled queued caller", queuedDone); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v, want context.Canceled", err)
	}

	close(store.release)
	if err := await(t, "owner completing", ownerDone); err != nil {
		t.Fatal(err)
	}
	// The withdrawn slot must not have poisoned the cache.
	a, err := e.AnalyzeCtx(context.Background(), "queued.c", axpySrc)
	if err != nil {
		t.Fatalf("cancellation was cached: %v", err)
	}
	if a.Name != "queued.c" {
		t.Errorf("name = %q", a.Name)
	}
}

// TestAnalyzeAllPerItemCancellation: a cancelled batch reports ctx.Err()
// per item instead of aborting or hanging.
func TestAnalyzeAllPerItemCancellation(t *testing.T) {
	e := engine.New(engine.Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := e.AnalyzeAll(ctx, []engine.Job{
		{Name: "a.c", Source: scaleSrc},
		{Name: "b.c", Source: axpySrc},
	})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	// The same batch with a live context recovers fully.
	if err := engine.Errors(e.AnalyzeAll(context.Background(), []engine.Job{
		{Name: "a.c", Source: scaleSrc},
		{Name: "b.c", Source: axpySrc},
	})); err != nil {
		t.Fatal(err)
	}
}

// TestForEachCtxStopsScheduling: cancellation surfaces as the sweep
// error and in-flight work is not abandoned mid-item.
func TestForEachCtxStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := engine.ForEachCtx(ctx, 4, 100, func(i int) error {
		ran++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("cancelled sweep still ran %d items", ran)
	}
}
