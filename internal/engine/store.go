package engine

import "sync"

// Entry is one persisted analysis artifact: the inputs plus the encoded
// object file — enough for a later process to rebuild the pipeline with
// core.AnalyzeFromObject instead of recompiling. Source rides along even
// though the cache key already fingerprints it: a self-contained entry
// lets stores verify integrity and the engine cross-check that a loaded
// entry really belongs to the request before trusting it.
type Entry struct {
	Name   string
	Source string
	Object []byte
}

// CacheStore persists compiled artifacts keyed by the engine's content
// hash. Implementations must be safe for concurrent use and must treat
// unreadable or corrupt entries as misses (Load ok=false), never as
// errors — a damaged cache degrades to a recompile, it does not take the
// service down. Store errors are reported so callers can count them, but
// the engine treats a failed Store as advisory: the analysis it just
// built is still served.
type CacheStore interface {
	Load(key string) (*Entry, bool)
	Store(key string, e *Entry) error
}

// FuncEntry is one persisted per-function artifact: a compiled unit (an
// object-file fragment with unresolved, name-based call sites) in its
// portable encoding, stored under the function-content key computed by
// core.FuncKeys. The function's qualified name rides along for
// diagnostics; the key alone is the identity.
type FuncEntry struct {
	Name string
	Unit []byte
}

// FuncStore is the optional function-granular extension of CacheStore:
// per-function object fragments keyed by function-content hash, so an
// edit to one function re-persists one small entry instead of the whole
// artifact, and unchanged functions restore across processes and across
// *different* source files sharing code. The corruption contract matches
// CacheStore: a damaged entry is a miss (that one function recompiles),
// never an error, and never affects sibling entries.
type FuncStore interface {
	LoadFunc(key string) (*FuncEntry, bool)
	StoreFunc(key string, e *FuncEntry) error
}

// MemoryStore is the in-process CacheStore: a mutex-guarded map, the
// persistence shape the engine's live cache had before the interface was
// extracted. It buys nothing over the engine's own singleflight map for
// a single engine, but gives tests and multi-engine setups a shared
// store with zero I/O. It also implements FuncStore.
type MemoryStore struct {
	mu    sync.Mutex
	m     map[string]*Entry
	funcs map[string]*FuncEntry
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: map[string]*Entry{}, funcs: map[string]*FuncEntry{}}
}

// Load returns the entry stored under key.
func (s *MemoryStore) Load(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	return e, ok
}

// Store saves e under key.
func (s *MemoryStore) Store(key string, e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = e
	return nil
}

// LoadFunc returns the per-function entry stored under key.
func (s *MemoryStore) LoadFunc(key string) (*FuncEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.funcs[key]
	return e, ok
}

// StoreFunc saves e under key.
func (s *MemoryStore) StoreFunc(key string, e *FuncEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.funcs[key] = e
	return nil
}

// Len reports the number of stored whole-source entries.
func (s *MemoryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// FuncLen reports the number of stored per-function entries.
func (s *MemoryStore) FuncLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.funcs)
}
