package engine

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/model"
	"mira/internal/pbound"
)

// Analysis wraps an analyzed pipeline with a memoized evaluation layer.
// The model evaluator is pure but walks the whole call tree and its
// polyhedral multiplicities on every query; experiments ask for the same
// (function, env) point dozens of times (Table II, Fig. 6, the sweeps),
// so repeated queries here cost one map lookup. All methods are safe for
// concurrent use.
//
// The memo itself lives behind a pointer so that two Analysis values for
// the same content under different caller names (see Engine.Analyze's
// cross-name cache hits) share one evaluation cache: a query answered
// for a.c never re-walks the model for an identical b.c.
type Analysis struct {
	*core.Pipeline

	memo *memoStore

	// met mirrors the counters into the owning engine's observability
	// registry; nil for standalone NewAnalysis wrappers.
	met *metricsSet
	// key is the engine content hash this analysis is cached under;
	// empty for standalone wrappers.
	key string
	// workers is the owning engine's parallelism bound, inherited by
	// Sweep's fan-out; zero (standalone wrappers) means GOMAXPROCS.
	workers int
}

// memoStore is the shared evaluation cache behind one analyzed content
// hash: metric and opcode memo maps, the lazily built PBound report with
// its own per-point memo, and the hit/miss counters.
type memoStore struct {
	mu      sync.RWMutex
	metrics map[evalKey]model.Metrics
	opcodes map[evalKey]map[ir.Op]int64
	pbounds map[evalKey]pbound.Counts

	// compiled caches the symbolic compilations (one per function and
	// exclusivity), singleflighted: a sweep storm over one function
	// compiles it once.
	compiledMu sync.Mutex
	compiled   map[compiledKey]*compiledSlot

	// pbOnce guards the lazy source-only PBound baseline report, built
	// from the pipeline's sema program the first time a KindPBound query
	// arrives.
	pbOnce sync.Once
	pb     *pbound.Report
	pbErr  error

	evalHits   atomic.Int64
	evalMisses atomic.Int64
}

func newMemoStore() *memoStore {
	return &memoStore{
		metrics:  map[evalKey]model.Metrics{},
		opcodes:  map[evalKey]map[ir.Op]int64{},
		pbounds:  map[evalKey]pbound.Counts{},
		compiled: map[compiledKey]*compiledSlot{},
	}
}

// compiledKey identifies one cached compilation.
type compiledKey struct {
	fn        string
	exclusive bool
}

// compiledSlot is a singleflight cell for one compilation.
type compiledSlot struct {
	once sync.Once
	cm   *model.CompiledModel
	err  error
}

// Compiled returns fn's symbolic compilation (see model.Compile),
// cached per content hash: the partial evaluation of the call tree runs
// once and every later sweep reuses it. Compilation panics (expr
// constructor contract violations reachable through hostile source) are
// converted to errors like every other evaluation at this boundary.
func (a *Analysis) Compiled(fn string, exclusive bool) (*model.CompiledModel, error) {
	m := a.memo
	key := compiledKey{fn: fn, exclusive: exclusive}
	m.compiledMu.Lock()
	slot, ok := m.compiled[key]
	if !ok {
		slot = &compiledSlot{}
		m.compiled[key] = slot
	}
	m.compiledMu.Unlock()
	slot.once.Do(func() {
		start := time.Now()
		slot.cm, slot.err = safely("compilation", func() (*model.CompiledModel, error) {
			if exclusive {
				return a.Model.CompileExclusive(fn)
			}
			return a.Model.Compile(fn)
		})
		if a.met != nil && slot.err == nil {
			a.met.compile.Observe(time.Since(start).Seconds())
		}
	})
	return slot.cm, slot.err
}

// Key returns the engine's content-hash cache key for this analysis
// (empty for analyses not produced by an Engine). Serving layers hand it
// to clients so later queries can reference the program without
// resending — and without re-hashing — its source.
func (a *Analysis) Key() string { return a.key }

// evalKey identifies one memoized query point.
type evalKey struct {
	fn        string
	env       string // canonical fingerprint, see envFingerprint
	exclusive bool
}

// NewAnalysis wraps an already-built pipeline in a fresh memo layer.
// Engine-produced analyses are shared and cached; this is for callers
// that ran core.Analyze themselves and want memoized queries.
func NewAnalysis(p *core.Pipeline) *Analysis {
	return &Analysis{Pipeline: p, memo: newMemoStore()}
}

// newAnalysis wraps a pipeline with the engine's metrics and cache key
// attached.
func (e *Engine) newAnalysis(p *core.Pipeline, key string) *Analysis {
	a := NewAnalysis(p)
	a.met = e.met
	a.key = key
	a.workers = e.workers
	return a
}

// withName returns a view of the analysis whose Pipeline carries name —
// what a caller whose identical content hit another requester's cache
// entry sees, mirroring how the error path annotates provenance. The
// view shares the memo layer (and the underlying immutable artifacts)
// with the original; only the reported name differs.
func (a *Analysis) withName(name string) *Analysis {
	if name == "" || name == a.Pipeline.Name {
		return a
	}
	p := *a.Pipeline
	p.Name = name
	return &Analysis{Pipeline: &p, memo: a.memo, met: a.met, key: a.key, workers: a.workers}
}

// memoLen reports the number of memoized evaluation entries.
func (a *Analysis) memoLen() int {
	m := a.memo
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.metrics) + len(m.opcodes) + len(m.pbounds)
}

// observeEval records one memo outcome into the engine registry (no-op
// for standalone analyses). seconds is only meaningful for misses.
func (a *Analysis) observeEval(hit bool, seconds float64) {
	if hit {
		a.memo.evalHits.Add(1)
	} else {
		a.memo.evalMisses.Add(1)
	}
	if a.met == nil {
		return
	}
	if hit {
		a.met.evalHits.Inc()
	} else {
		a.met.evalMisses.Inc()
		a.met.eval.Observe(seconds)
	}
}

// envFingerprint canonicalizes an environment: sorted name=value pairs
// of exact rationals. Two envs binding the same values fingerprint
// identically regardless of construction order.
func envFingerprint(env expr.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(env[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// StaticMetrics evaluates fn (inclusive) under env, memoized.
func (a *Analysis) StaticMetrics(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, false)
}

// StaticMetricsExclusive evaluates body-only metrics, memoized.
func (a *Analysis) StaticMetricsExclusive(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, true)
}

func (a *Analysis) cachedMetrics(fn string, env expr.Env, exclusive bool) (model.Metrics, error) {
	m := a.memo
	key := evalKey{fn: fn, env: envFingerprint(env), exclusive: exclusive}
	m.mu.RLock()
	met, ok := m.metrics[key]
	m.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return met, nil
	}
	start := time.Now()
	met, err := safely("evaluation", func() (model.Metrics, error) {
		if exclusive {
			return a.Pipeline.StaticMetricsExclusive(fn, env)
		}
		return a.Pipeline.StaticMetrics(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		// Errors are not cached: they are rare (bad function name or an
		// unbound parameter) and carry no reuse value.
		return met, err
	}
	m.mu.Lock()
	m.metrics[key] = met
	m.mu.Unlock()
	return met, nil
}

// EvaluateOpcodes returns fn's inclusive per-opcode counts under env,
// memoized. The returned map is a fresh copy the caller may mutate.
func (a *Analysis) EvaluateOpcodes(fn string, env expr.Env) (map[ir.Op]int64, error) {
	m := a.memo
	key := evalKey{fn: fn, env: envFingerprint(env)}
	m.mu.RLock()
	ops, ok := m.opcodes[key]
	m.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return copyOps(ops), nil
	}
	start := time.Now()
	ops, err := safely("evaluation", func() (map[ir.Op]int64, error) {
		return a.Model.EvaluateOpcodes(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.opcodes[key] = ops
	m.mu.Unlock()
	return copyOps(ops), nil
}

func copyOps(ops map[ir.Op]int64) map[ir.Op]int64 {
	out := make(map[ir.Op]int64, len(ops))
	for op, n := range ops {
		out[op] = n
	}
	return out
}

// TableIICounts aggregates fn's counts into the paper's Table II rows,
// served from the opcode memo.
func (a *Analysis) TableIICounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return core.BucketTableII(ops), nil
}

// FineCategoryCounts buckets fn's counts into the architecture
// description's fine-grained categories, served from the opcode memo.
func (a *Analysis) FineCategoryCounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return core.BucketFine(a.Arch, ops), nil
}

// pboundReport lazily builds (once per content hash) the source-only
// PBound baseline report from the pipeline's sema program. The walk is
// panic-guarded like every other evaluation path at this boundary.
func (a *Analysis) pboundReport() (*pbound.Report, error) {
	m := a.memo
	m.pbOnce.Do(func() {
		m.pb, m.pbErr = safely("pbound analysis", func() (*pbound.Report, error) {
			return pbound.Analyze(a.Prog)
		})
	})
	return m.pb, m.pbErr
}

// PBoundCounts evaluates the source-only PBound bounds of fn under env,
// memoized like every other query point.
func (a *Analysis) PBoundCounts(fn string, env expr.Env) (pbound.Counts, error) {
	rep, err := a.pboundReport()
	if err != nil {
		return pbound.Counts{}, err
	}
	m := a.memo
	key := evalKey{fn: fn, env: envFingerprint(env)}
	m.mu.RLock()
	c, ok := m.pbounds[key]
	m.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return c, nil
	}
	start := time.Now()
	c, err = safely("pbound evaluation", func() (pbound.Counts, error) {
		return rep.EvalCounts(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		return pbound.Counts{}, err
	}
	m.mu.Lock()
	m.pbounds[key] = c
	m.mu.Unlock()
	return c, nil
}

// EvalStats reports the memoized evaluation layer's hit/miss counters.
func (a *Analysis) EvalStats() (hits, misses int64) {
	return a.memo.evalHits.Load(), a.memo.evalMisses.Load()
}
