package engine

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/model"
	"mira/internal/pbound"
	"mira/internal/roofline"
)

// Analysis wraps an analyzed pipeline with a memoized evaluation layer.
// The model evaluator is pure but walks the whole call tree and its
// polyhedral multiplicities on every query; experiments ask for the same
// (function, env) point dozens of times (Table II, Fig. 6, the sweeps),
// so repeated queries here cost one map lookup. All methods are safe for
// concurrent use.
//
// Memoized results are keyed by *function-content hash* (core.FuncKeys),
// not by (source, function): the engine keeps one memo cell per function
// key, shared by every analysis whose function resolves to that key. An
// edit that leaves a function (and its callee closure) untouched
// therefore keeps its entire evaluation memo and its symbolic
// compilation — the function-granular extension of the pipeline cache.
type Analysis struct {
	*core.Pipeline

	// eng is the owning engine, the home of the shared per-function memo
	// cells; nil for standalone NewAnalysis wrappers.
	eng *Engine

	// sh is per-content state shared between name views of one analysis:
	// the lazily built PBound report, this analysis's hit/miss counters,
	// and fallback memo cells for queries that resolve to no function key.
	sh *analysisShared

	// met mirrors the counters into the owning engine's observability
	// registry; nil for standalone NewAnalysis wrappers.
	met *metricsSet
	// key is the engine content hash this analysis is cached under;
	// empty for standalone wrappers.
	key string
	// archKey is the content key of the pipeline's own architecture
	// description, precomputed so arch-dependent memo probes need no
	// per-query hashing.
	archKey string
	// workers is the owning engine's parallelism bound, inherited by
	// Sweep's fan-out; zero (standalone wrappers) means GOMAXPROCS.
	workers int
	// delta records the incremental build's reuse outcome; nil when the
	// analysis was not produced by the incremental path (standalone
	// wrappers, whole-source store rebuilds).
	delta *core.Delta
}

// analysisShared is the state shared by every name view of one analyzed
// content hash.
type analysisShared struct {
	mu    sync.Mutex
	local map[string]*funcEntry // fallback cells, keyed by function name

	// pbOnce guards the lazy source-only PBound baseline report, built
	// from the pipeline's sema program the first time a KindPBound query
	// arrives.
	pbOnce sync.Once
	pb     *pbound.Report
	pbErr  error

	// regOnce guards the lazily built architecture registry standalone
	// analyses (no owning engine) resolve named arch overrides against.
	regOnce sync.Once
	reg     *arch.Registry

	evalHits   atomic.Int64
	evalMisses atomic.Int64
}

// funcEntry is one function-content key's live cache cell: the compiled
// unit + generated model artifact (when known), the (env, exclusivity)
// evaluation memos, and the singleflighted symbolic compilations. Cells
// live in the engine's function memo, shared across every source version
// that contains the function.
type funcEntry struct {
	mu      sync.RWMutex
	art     *core.FuncArtifact
	metrics map[fevalKey]model.Metrics
	opcodes map[fevalKey]map[ir.Op]int64
	pbounds map[fevalKey]pbound.Counts

	// rooflines and finecats memoize the arch-dependent query kinds.
	// Their key carries the architecture description's *content key*, so
	// two descriptions differing in any single parameter (say bandwidth)
	// occupy distinct entries — the memo can never serve one arch's
	// roofline for another.
	rooflines map[archPointKey]roofline.Analysis
	finecats  map[archPointKey]map[string]int64

	// compiled caches the symbolic compilations (one per exclusivity),
	// singleflighted: a sweep storm over one function compiles it once.
	compiledMu sync.Mutex
	compiled   map[bool]*compiledSlot //lint:guarded-by compiledMu
}

// fevalKey identifies one memoized query point within a function cell.
type fevalKey struct {
	env       string // canonical fingerprint, see envFingerprint
	exclusive bool
}

// archPointKey identifies one arch-dependent memoized query point: the
// canonical env fingerprint plus the architecture description's content
// key (arch.Description.ContentKey).
type archPointKey struct {
	env  string
	arch string // description content key, never a name
}

func newFuncEntry() *funcEntry {
	return &funcEntry{
		metrics:   map[fevalKey]model.Metrics{},
		opcodes:   map[fevalKey]map[ir.Op]int64{},
		pbounds:   map[fevalKey]pbound.Counts{},
		rooflines: map[archPointKey]roofline.Analysis{},
		finecats:  map[archPointKey]map[string]int64{},
		compiled:  map[bool]*compiledSlot{},
	}
}

// artifact returns the cell's per-function artifact, if adopted.
func (fe *funcEntry) artifact() *core.FuncArtifact {
	fe.mu.RLock()
	defer fe.mu.RUnlock()
	return fe.art
}

// adopt installs (or upgrades) the cell's artifact. A model-carrying
// artifact never downgrades to a unit-only one.
func (fe *funcEntry) adopt(art *core.FuncArtifact) {
	fe.mu.Lock()
	if fe.art == nil || (fe.art.Model == nil && art.Model != nil) {
		fe.art = art
	}
	fe.mu.Unlock()
}

// memoLen reports the number of memoized evaluation entries in the cell.
func (fe *funcEntry) memoLen() int {
	fe.mu.RLock()
	defer fe.mu.RUnlock()
	return len(fe.metrics) + len(fe.opcodes) + len(fe.pbounds) +
		len(fe.rooflines) + len(fe.finecats)
}

// compiledSlot is a singleflight cell for one compilation.
type compiledSlot struct {
	once sync.Once
	cm   *model.CompiledModel
	err  error
}

// memoFor resolves the memo cell for fn: the engine's shared cell under
// fn's function-content key when this analysis belongs to an engine, or
// a private per-analysis cell otherwise (standalone wrappers, unknown
// function names).
func (a *Analysis) memoFor(fn string) *funcEntry {
	if a.eng != nil && a.Pipeline.FuncKeys != nil {
		if k, ok := a.Pipeline.FuncKeys[fn]; ok {
			return a.eng.funcCell(k)
		}
	}
	a.sh.mu.Lock()
	defer a.sh.mu.Unlock()
	if a.sh.local == nil {
		a.sh.local = map[string]*funcEntry{}
	}
	fe := a.sh.local[fn]
	if fe == nil {
		fe = newFuncEntry()
		a.sh.local[fn] = fe
	}
	return fe
}

// Compiled returns fn's symbolic compilation (see model.Compile), cached
// per function-content key: the partial evaluation of the call tree runs
// once, and every later sweep — from this analysis or any other source
// version sharing the function — reuses it. Compilation panics (expr
// constructor contract violations reachable through hostile source) are
// converted to errors like every other evaluation at this boundary.
func (a *Analysis) Compiled(fn string, exclusive bool) (*model.CompiledModel, error) {
	fe := a.memoFor(fn)
	fe.compiledMu.Lock()
	slot, ok := fe.compiled[exclusive]
	if !ok {
		slot = &compiledSlot{}
		fe.compiled[exclusive] = slot
	}
	fe.compiledMu.Unlock()
	slot.once.Do(func() {
		start := time.Now()
		slot.cm, slot.err = safely("compilation", func() (*model.CompiledModel, error) {
			if exclusive {
				return a.Model.CompileExclusive(fn)
			}
			return a.Model.Compile(fn)
		})
		if a.met != nil && slot.err == nil {
			a.met.compile.Observe(time.Since(start).Seconds())
		}
	})
	return slot.cm, slot.err
}

// Key returns the engine's content-hash cache key for this analysis
// (empty for analyses not produced by an Engine). Serving layers hand it
// to clients so later queries can reference the program without
// resending — and without re-hashing — its source.
func (a *Analysis) Key() string { return a.key }

// Delta reports which functions the incremental build reused versus
// recompiled, in link order; nil when no incremental pipeline ran for
// this caller's request (standalone wrappers, whole-source store
// rebuilds, live-cache hits).
func (a *Analysis) Delta() *core.Delta { return a.delta }

// withoutDelta returns a view of the analysis with no reuse delta — what
// a cache hit serves, since no pipeline ran for that caller. The view
// shares the memo layer like every other view.
func (a *Analysis) withoutDelta() *Analysis {
	if a.delta == nil {
		return a
	}
	v := *a
	v.delta = nil
	return &v
}

// NewAnalysis wraps an already-built pipeline in a fresh memo layer.
// Engine-produced analyses are shared and cached; this is for callers
// that ran core.Analyze themselves and want memoized queries.
func NewAnalysis(p *core.Pipeline) *Analysis {
	return &Analysis{Pipeline: p, sh: &analysisShared{}, archKey: arch.KeyOf(p.Arch)}
}

// newAnalysis wraps a pipeline with the engine's metrics and cache key
// attached.
func (e *Engine) newAnalysis(p *core.Pipeline, key string) *Analysis {
	a := NewAnalysis(p)
	a.eng = e
	a.met = e.met
	a.key = key
	a.archKey = e.archKey
	a.workers = e.workers
	return a
}

// registry resolves named architecture overrides: the owning engine's
// injected registry, or (for standalone wrappers) a lazily built
// registry of the embedded profiles shared by every name view.
func (a *Analysis) registry() *arch.Registry {
	if a.eng != nil {
		return a.eng.registry
	}
	a.sh.regOnce.Do(func() { a.sh.reg = arch.NewRegistry() })
	return a.sh.reg
}

// withName returns a view of the analysis whose Pipeline carries name —
// what a caller whose identical content hit another requester's cache
// entry sees, mirroring how the error path annotates provenance. The
// view shares the memo layer (and the underlying immutable artifacts)
// with the original; only the reported name differs.
func (a *Analysis) withName(name string) *Analysis {
	if name == "" || name == a.Pipeline.Name {
		return a
	}
	p := *a.Pipeline
	p.Name = name
	return &Analysis{Pipeline: &p, eng: a.eng, sh: a.sh, met: a.met, key: a.key, archKey: a.archKey, workers: a.workers, delta: a.delta}
}

// observeEval records one memo outcome into the engine registry (no-op
// for standalone analyses). seconds is only meaningful for misses.
func (a *Analysis) observeEval(hit bool, seconds float64) {
	if hit {
		a.sh.evalHits.Add(1)
	} else {
		a.sh.evalMisses.Add(1)
	}
	if a.met == nil {
		return
	}
	if hit {
		a.met.evalHits.Inc()
	} else {
		a.met.evalMisses.Inc()
		a.met.eval.Observe(seconds)
	}
}

// envFingerprint canonicalizes an environment: sorted name=value pairs
// of exact rationals. Two envs binding the same values fingerprint
// identically regardless of construction order.
func envFingerprint(env expr.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(env[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// StaticMetrics evaluates fn (inclusive) under env, memoized.
func (a *Analysis) StaticMetrics(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, false)
}

// StaticMetricsExclusive evaluates body-only metrics, memoized.
func (a *Analysis) StaticMetricsExclusive(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, true)
}

func (a *Analysis) cachedMetrics(fn string, env expr.Env, exclusive bool) (model.Metrics, error) {
	fe := a.memoFor(fn)
	key := fevalKey{env: envFingerprint(env), exclusive: exclusive}
	fe.mu.RLock()
	met, ok := fe.metrics[key]
	fe.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return met, nil
	}
	start := time.Now()
	met, err := safely("evaluation", func() (model.Metrics, error) {
		if exclusive {
			return a.Pipeline.StaticMetricsExclusive(fn, env)
		}
		return a.Pipeline.StaticMetrics(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		// Errors are not cached: they are rare (bad function name or an
		// unbound parameter) and carry no reuse value.
		return met, err
	}
	fe.mu.Lock()
	fe.metrics[key] = met
	fe.mu.Unlock()
	return met, nil
}

// EvaluateOpcodes returns fn's inclusive per-opcode counts under env,
// memoized. The returned map is a fresh copy the caller may mutate.
func (a *Analysis) EvaluateOpcodes(fn string, env expr.Env) (map[ir.Op]int64, error) {
	fe := a.memoFor(fn)
	key := fevalKey{env: envFingerprint(env)}
	fe.mu.RLock()
	ops, ok := fe.opcodes[key]
	fe.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return copyOps(ops), nil
	}
	start := time.Now()
	ops, err := safely("evaluation", func() (map[ir.Op]int64, error) {
		return a.Model.EvaluateOpcodes(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	fe.mu.Lock()
	fe.opcodes[key] = ops
	fe.mu.Unlock()
	return copyOps(ops), nil
}

func copyOps(ops map[ir.Op]int64) map[ir.Op]int64 {
	out := make(map[ir.Op]int64, len(ops))
	for op, n := range ops {
		out[op] = n
	}
	return out
}

// TableIICounts aggregates fn's counts into the paper's Table II rows,
// served from the opcode memo.
func (a *Analysis) TableIICounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return core.BucketTableII(ops), nil
}

// FineCategoryCounts buckets fn's counts into the architecture
// description's fine-grained categories, memoized under the analysis's
// own architecture.
func (a *Analysis) FineCategoryCounts(fn string, env expr.Env) (map[string]int64, error) {
	return a.cachedFineCats(fn, env, a.Arch, a.archKey)
}

// cachedFineCats buckets fn's counts into d's fine categories, memoized
// under (env, d's content key). archKey must be d.ContentKey() — callers
// pass it precomputed so a memo probe never re-hashes the description.
// The returned map is a fresh copy the caller may mutate.
func (a *Analysis) cachedFineCats(fn string, env expr.Env, d *arch.Description, archKey string) (map[string]int64, error) {
	fe := a.memoFor(fn)
	key := archPointKey{env: envFingerprint(env), arch: archKey}
	fe.mu.RLock()
	cats, ok := fe.finecats[key]
	fe.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return copyCats(cats), nil
	}
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	cats = core.BucketFine(d, ops)
	fe.mu.Lock()
	fe.finecats[key] = cats
	fe.mu.Unlock()
	return copyCats(cats), nil
}

func copyCats(cats map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(cats))
	for c, n := range cats {
		out[c] = n
	}
	return out
}

// cachedRoofline computes fn's roofline assessment against d, memoized
// under (env, d's content key) like cachedFineCats. The memo stores the
// analysis by value; callers get a private copy.
func (a *Analysis) cachedRoofline(fn string, env expr.Env, d *arch.Description, archKey string) (*roofline.Analysis, error) {
	fe := a.memoFor(fn)
	key := archPointKey{env: envFingerprint(env), arch: archKey}
	fe.mu.RLock()
	roof, ok := fe.rooflines[key]
	fe.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return &roof, nil
	}
	met, err := a.cachedMetrics(fn, env, false)
	if err != nil {
		return nil, err
	}
	r, err := roofline.Analyze(fn, met, d)
	if err != nil {
		return nil, err
	}
	fe.mu.Lock()
	fe.rooflines[key] = *r
	fe.mu.Unlock()
	return r, nil
}

// pboundReport lazily builds (once per content hash) the source-only
// PBound baseline report from the pipeline's sema program. The walk is
// panic-guarded like every other evaluation path at this boundary.
func (a *Analysis) pboundReport() (*pbound.Report, error) {
	sh := a.sh
	sh.pbOnce.Do(func() {
		sh.pb, sh.pbErr = safely("pbound analysis", func() (*pbound.Report, error) {
			return pbound.Analyze(a.Prog)
		})
	})
	return sh.pb, sh.pbErr
}

// PBoundCounts evaluates the source-only PBound bounds of fn under env,
// memoized like every other query point. The memo cell is the function's
// content key, so the counts — a pure function of fn's source subtree
// and callee closure — survive edits elsewhere in the file.
func (a *Analysis) PBoundCounts(fn string, env expr.Env) (pbound.Counts, error) {
	rep, err := a.pboundReport()
	if err != nil {
		return pbound.Counts{}, err
	}
	fe := a.memoFor(fn)
	key := fevalKey{env: envFingerprint(env)}
	fe.mu.RLock()
	c, ok := fe.pbounds[key]
	fe.mu.RUnlock()
	if ok {
		a.observeEval(true, 0)
		return c, nil
	}
	start := time.Now()
	c, err = safely("pbound evaluation", func() (pbound.Counts, error) {
		return rep.EvalCounts(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		return pbound.Counts{}, err
	}
	fe.mu.Lock()
	fe.pbounds[key] = c
	fe.mu.Unlock()
	return c, nil
}

// EvalStats reports this analysis's memoized-evaluation hit/miss
// counters (shared across name views; hits served from another source
// version's shared cell count as hits here).
func (a *Analysis) EvalStats() (hits, misses int64) {
	return a.sh.evalHits.Load(), a.sh.evalMisses.Load()
}
