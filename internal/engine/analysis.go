package engine

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/model"
)

// Analysis wraps an analyzed pipeline with a memoized evaluation layer.
// The model evaluator is pure but walks the whole call tree and its
// polyhedral multiplicities on every query; experiments ask for the same
// (function, env) point dozens of times (Table II, Fig. 6, the sweeps),
// so repeated queries here cost one map lookup. All methods are safe for
// concurrent use.
type Analysis struct {
	*core.Pipeline

	mu      sync.RWMutex
	metrics map[evalKey]model.Metrics
	opcodes map[evalKey]map[ir.Op]int64

	evalHits   atomic.Int64
	evalMisses atomic.Int64

	// met mirrors the counters into the owning engine's observability
	// registry; nil for standalone NewAnalysis wrappers.
	met *metricsSet
	// key is the engine content hash this analysis is cached under;
	// empty for standalone wrappers.
	key string
}

// Key returns the engine's content-hash cache key for this analysis
// (empty for analyses not produced by an Engine). Serving layers hand it
// to clients so later queries can reference the program without
// resending — and without re-hashing — its source.
func (a *Analysis) Key() string { return a.key }

// evalKey identifies one memoized query point.
type evalKey struct {
	fn        string
	env       string // canonical fingerprint, see envFingerprint
	exclusive bool
}

// NewAnalysis wraps an already-built pipeline in a fresh memo layer.
// Engine-produced analyses are shared and cached; this is for callers
// that ran core.Analyze themselves and want memoized queries.
func NewAnalysis(p *core.Pipeline) *Analysis {
	return &Analysis{
		Pipeline: p,
		metrics:  map[evalKey]model.Metrics{},
		opcodes:  map[evalKey]map[ir.Op]int64{},
	}
}

// newAnalysis wraps a pipeline with the engine's metrics and cache key
// attached.
func (e *Engine) newAnalysis(p *core.Pipeline, key string) *Analysis {
	a := NewAnalysis(p)
	a.met = e.met
	a.key = key
	return a
}

// memoLen reports the number of memoized evaluation entries.
func (a *Analysis) memoLen() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.metrics) + len(a.opcodes)
}

// observeEval records one memo outcome into the engine registry (no-op
// for standalone analyses). seconds is only meaningful for misses.
func (a *Analysis) observeEval(hit bool, seconds float64) {
	if a.met == nil {
		return
	}
	if hit {
		a.met.evalHits.Inc()
	} else {
		a.met.evalMisses.Inc()
		a.met.eval.Observe(seconds)
	}
}

// envFingerprint canonicalizes an environment: sorted name=value pairs
// of exact rationals. Two envs binding the same values fingerprint
// identically regardless of construction order.
func envFingerprint(env expr.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(env[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// StaticMetrics evaluates fn (inclusive) under env, memoized.
func (a *Analysis) StaticMetrics(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, false)
}

// StaticMetricsExclusive evaluates body-only metrics, memoized.
func (a *Analysis) StaticMetricsExclusive(fn string, env expr.Env) (model.Metrics, error) {
	return a.cachedMetrics(fn, env, true)
}

func (a *Analysis) cachedMetrics(fn string, env expr.Env, exclusive bool) (model.Metrics, error) {
	key := evalKey{fn: fn, env: envFingerprint(env), exclusive: exclusive}
	a.mu.RLock()
	met, ok := a.metrics[key]
	a.mu.RUnlock()
	if ok {
		a.evalHits.Add(1)
		a.observeEval(true, 0)
		return met, nil
	}
	a.evalMisses.Add(1)
	start := time.Now()
	met, err := safely("evaluation", func() (model.Metrics, error) {
		if exclusive {
			return a.Pipeline.StaticMetricsExclusive(fn, env)
		}
		return a.Pipeline.StaticMetrics(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		// Errors are not cached: they are rare (bad function name or an
		// unbound parameter) and carry no reuse value.
		return met, err
	}
	a.mu.Lock()
	a.metrics[key] = met
	a.mu.Unlock()
	return met, nil
}

// EvaluateOpcodes returns fn's inclusive per-opcode counts under env,
// memoized. The returned map is a fresh copy the caller may mutate.
func (a *Analysis) EvaluateOpcodes(fn string, env expr.Env) (map[ir.Op]int64, error) {
	key := evalKey{fn: fn, env: envFingerprint(env)}
	a.mu.RLock()
	ops, ok := a.opcodes[key]
	a.mu.RUnlock()
	if ok {
		a.evalHits.Add(1)
		a.observeEval(true, 0)
		return copyOps(ops), nil
	}
	a.evalMisses.Add(1)
	start := time.Now()
	ops, err := safely("evaluation", func() (map[ir.Op]int64, error) {
		return a.Model.EvaluateOpcodes(fn, env)
	})
	a.observeEval(false, time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.opcodes[key] = ops
	a.mu.Unlock()
	return copyOps(ops), nil
}

func copyOps(ops map[ir.Op]int64) map[ir.Op]int64 {
	out := make(map[ir.Op]int64, len(ops))
	for op, n := range ops {
		out[op] = n
	}
	return out
}

// TableIICounts aggregates fn's counts into the paper's Table II rows,
// served from the opcode memo.
func (a *Analysis) TableIICounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return core.BucketTableII(ops), nil
}

// FineCategoryCounts buckets fn's counts into the architecture
// description's fine-grained categories, served from the opcode memo.
func (a *Analysis) FineCategoryCounts(fn string, env expr.Env) (map[string]int64, error) {
	ops, err := a.EvaluateOpcodes(fn, env)
	if err != nil {
		return nil, err
	}
	return core.BucketFine(a.Arch, ops), nil
}

// EvalStats reports the memoized evaluation layer's hit/miss counters.
func (a *Analysis) EvalStats() (hits, misses int64) {
	return a.evalHits.Load(), a.evalMisses.Load()
}
