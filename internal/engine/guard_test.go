package engine

import (
	"strings"
	"testing"

	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/ir"
	"mira/internal/model"
	"mira/internal/rational"
)

// panicPipeline hand-builds a pipeline whose model panics on evaluation:
// a FloorDiv with a zero divisor constructed directly (bypassing the
// NewFloorDiv contract check), which hits rational's division-by-zero
// panic at eval time. No source program can produce this through the
// front end — the point is that a resident service must survive even
// model state that violates the constructors' contracts.
func panicPipeline() *core.Pipeline {
	f := &model.Func{
		Name: "boom",
		Sites: []*model.Site{{
			Line: 1, Col: 1, Desc: "zero-divisor floor division",
			Ops:    map[ir.Op]int64{ir.ADDSD: 1},
			Instrs: 1,
			Mult:   expr.FloorDiv{X: expr.P("n"), D: rational.Zero},
		}},
	}
	return &core.Pipeline{
		Name:  "boom.c",
		Model: &model.Model{SourceName: "boom.c", Order: []string{"boom"}, Funcs: map[string]*model.Func{"boom": f}},
	}
}

// TestEvalPanicBecomesError checks the engine boundary converts eval-time
// panics (the ISSUE's floor-division-by-zero case) into errors on both
// evaluation paths, so a hostile /eval request gets a 4xx instead of
// killing the daemon.
func TestEvalPanicBecomesError(t *testing.T) {
	e := New(Options{})
	a := e.newAnalysis(panicPipeline(), "")
	env := expr.EnvFromInts(map[string]int64{"n": 7})

	if _, err := a.StaticMetrics("boom", env); err == nil {
		t.Fatal("eval panic not converted to error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want panic conversion", err)
	}
	if _, err := a.EvaluateOpcodes("boom", env); err == nil {
		t.Fatal("opcode eval panic not converted to error")
	}
	// The analysis must remain usable after a panic (no poisoned locks).
	if _, err := a.StaticMetrics("missing", env); err == nil || strings.Contains(err.Error(), "panicked") {
		t.Errorf("post-panic query err = %v, want ordinary lookup error", err)
	}
}

// TestSafelyPassesThrough checks non-panicking calls are untouched.
func TestSafelyPassesThrough(t *testing.T) {
	v, err := safely("test", func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Errorf("safely = %d, %v", v, err)
	}
	_, err = safely("test", func() (int, error) {
		panic("expr: Trips requires positive step")
	})
	if err == nil || !strings.Contains(err.Error(), "Trips") {
		t.Errorf("err = %v, want wrapped panic message", err)
	}
}
