package engine_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/obs"
)

// scrape renders an engine's registry and returns the parsed samples.
func scrape(t *testing.T, e *engine.Engine) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := e.Obs().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.Parse(sb.String())
	if err != nil {
		t.Fatalf("engine exposition fails lint: %v\n----\n%s", err, sb.String())
	}
	return exp.Samples
}

// TestCacheStoreWarmRestart simulates a process restart: a second engine
// sharing the first's CacheStore must serve the same source from the
// stored artifact (a store hit, no recompile) and evaluate identically.
func TestCacheStoreWarmRestart(t *testing.T) {
	store := engine.NewMemoryStore()
	env := expr.EnvFromInts(map[string]int64{"n": 500})

	cold := engine.New(engine.Options{Store: store})
	a1, err := cold.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := a1.StaticMetrics("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d entries after cold analyze, want 1", store.Len())
	}
	s := scrape(t, cold)
	if s["mira_store_misses_total"] != 1 || s["mira_store_hits_total"] != 0 {
		t.Errorf("cold engine store counters = misses %v hits %v, want 1/0",
			s["mira_store_misses_total"], s["mira_store_hits_total"])
	}
	if s["mira_analyze_seconds_count"] != 1 {
		t.Errorf("cold engine analyze count = %v, want 1", s["mira_analyze_seconds_count"])
	}

	warm := engine.New(engine.Options{Store: store})
	a2, err := warm.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := a2.StaticMetrics("scale", env)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("warm metrics %+v != cold metrics %+v", m2, m1)
	}
	s = scrape(t, warm)
	if s["mira_store_hits_total"] != 1 {
		t.Errorf("warm engine store hits = %v, want 1", s["mira_store_hits_total"])
	}
	if s["mira_analyze_seconds_count"] != 0 {
		t.Errorf("warm engine ran the compiler %v times, want 0 (rebuild path)",
			s["mira_analyze_seconds_count"])
	}
	if s["mira_rebuild_seconds_count"] != 1 {
		t.Errorf("warm engine rebuild count = %v, want 1", s["mira_rebuild_seconds_count"])
	}
}

// TestCacheStoreCorruptEntryDegrades plants damaged artifacts and checks
// the engine recompiles instead of failing or crashing.
func TestCacheStoreCorruptEntryDegrades(t *testing.T) {
	store := engine.NewMemoryStore()
	probe := engine.New(engine.Options{})
	key := probe.Key(scaleSrc)

	cases := []*engine.Entry{
		{Name: "scale.c", Source: scaleSrc, Object: []byte("not an object file")},
		{Name: "scale.c", Source: scaleSrc, Object: nil},
		{Name: "scale.c", Source: "something else entirely", Object: []byte{1, 2, 3}},
	}
	for i, ent := range cases {
		if err := store.Store(key, ent); err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.Options{Store: store})
		a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
		if err != nil {
			t.Fatalf("case %d: corrupt store entry broke analysis: %v", i, err)
		}
		if _, err := a.StaticMetrics("scale", expr.EnvFromInts(map[string]int64{"n": 10})); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		s := scrape(t, e)
		if s["mira_store_errors_total"] != 1 {
			t.Errorf("case %d: store errors = %v, want 1", i, s["mira_store_errors_total"])
		}
		if s["mira_store_hits_total"] != 0 {
			t.Errorf("case %d: corrupt entry counted as hit", i)
		}
		// The recompile must repair the store in place.
		fixed, ok := store.Load(key)
		if !ok || len(fixed.Object) == 0 || fixed.Source != scaleSrc {
			t.Errorf("case %d: store not repaired after recompile", i)
		}
	}
}

// TestCacheStoreConcurrentRoundTrip hammers one shared store from many
// goroutines across two engines — the -race gate checks the store and
// the rebuild path are sound under contention.
func TestCacheStoreConcurrentRoundTrip(t *testing.T) {
	store := engine.NewMemoryStore()
	engines := []*engine.Engine{
		engine.New(engine.Options{Store: store, Workers: 4}),
		engine.New(engine.Options{Store: store, Workers: 4}),
	}
	env := expr.EnvFromInts(map[string]int64{"n": 64})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := engines[g%2]
			for i := 0; i < 4; i++ {
				a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
				if err != nil {
					errs <- err
					return
				}
				if _, err := a.StaticMetrics("scale", env); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", store.Len())
	}
}

// TestLookupByKey covers the /eval-by-key handle: present after a
// completed analysis, absent before, absent for failures.
func TestLookupByKey(t *testing.T) {
	e := engine.New(engine.Options{})
	key := e.Key(scaleSrc)
	if _, ok := e.Lookup(key); ok {
		t.Error("Lookup hit before any analysis")
	}
	if _, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc); err != nil {
		t.Fatal(err)
	}
	a, ok := e.Lookup(key)
	if !ok || a == nil {
		t.Fatal("Lookup missed a completed analysis")
	}
	if _, err := e.AnalyzeCtx(context.Background(), "bad.c", "int f( {"); err == nil {
		t.Fatal("parse error accepted")
	}
	if _, ok := e.Lookup(e.Key("int f( {")); ok {
		t.Error("Lookup returned a failed analysis")
	}
}

// TestMaxResidentEviction bounds the live cache: a flood of distinct
// sources must not grow it past the bound, evicted programs must still
// re-analyze (via the store, no recompile), and holders of evicted
// analyses must keep working.
func TestMaxResidentEviction(t *testing.T) {
	store := engine.NewMemoryStore()
	e := engine.New(engine.Options{Store: store, MaxResident: 3})
	env := expr.EnvFromInts(map[string]int64{"n": 9})

	src := func(i int) string {
		return fmt.Sprintf("double f(double *x, int n) { double s; int i; s = %d.0; for (i = 0; i < n; i++) { s = s + x[i]; } return s; }", i)
	}
	first, err := e.AnalyzeCtx(context.Background(), "p0.c", src(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if _, err := e.AnalyzeCtx(context.Background(), fmt.Sprintf("p%d.c", i), src(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := scrape(t, e)
	if got := s["mira_resident_analyses"]; got > 3 {
		t.Errorf("resident analyses = %v, want <= 3", got)
	}
	if s["mira_cache_evictions_total"] < 7 {
		t.Errorf("evictions = %v, want >= 7", s["mira_cache_evictions_total"])
	}
	// An evicted Analysis held by a caller stays fully usable.
	if _, err := first.StaticMetrics("f", env); err != nil {
		t.Errorf("evicted analysis unusable: %v", err)
	}
	// Re-requesting an evicted program restores from the store, not the
	// compiler: every one of the 10 sources was persisted exactly once.
	if store.Len() != 10 {
		t.Fatalf("store has %d entries, want 10", store.Len())
	}
	before := s["mira_analyze_seconds_count"]
	if _, err := e.AnalyzeCtx(context.Background(), "p0.c", src(0)); err != nil {
		t.Fatal(err)
	}
	s = scrape(t, e)
	if s["mira_analyze_seconds_count"] != before {
		t.Error("re-analysis of an evicted program recompiled instead of restoring")
	}
	if s["mira_store_hits_total"] == 0 {
		t.Error("no store hit recorded for the evicted program")
	}
}
