package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/core"
	"mira/internal/engine"
	"mira/internal/expr"
)

const scaleSrc = `
double scale(double *x, int n, double a) {
	int i;
	for (i = 0; i < n; i++) {
		x[i] = a * x[i];
	}
	return x[0];
}`

const axpySrc = `
double axpy(double *x, double *y, int n, double a) {
	int i;
	for (i = 0; i < n; i++) {
		y[i] = a * x[i] + y[i];
	}
	return y[0];
}`

func TestAnalyzeContentDedup(t *testing.T) {
	e := engine.New(engine.Options{})
	a1, err := e.AnalyzeCtx(context.Background(), "one.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.AnalyzeCtx(context.Background(), "two.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The second caller gets a view of the first compile — same model and
	// object artifacts, same memo layer — carrying its own name.
	if a1.Model != a2.Model || a1.Obj != a2.Obj {
		t.Error("identical source under two names was compiled twice")
	}
	if a1.Name != "one.c" || a2.Name != "two.c" {
		t.Errorf("names = %q, %q; want each caller's own", a1.Name, a2.Name)
	}
	if hits, misses := e.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// Shared memo: an evaluation through one view is a hit through the
	// other.
	env := expr.EnvFromInts(map[string]int64{"n": 7})
	if _, err := a1.StaticMetrics("scale", env); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.StaticMetrics("scale", env); err != nil {
		t.Fatal(err)
	}
	if hits, misses := a2.EvalStats(); hits != 1 || misses != 1 {
		t.Errorf("eval stats across views = %d/%d, want 1 hit / 1 miss", hits, misses)
	}
	if _, err := e.AnalyzeCtx(context.Background(), "three.c", axpySrc); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestAnalyzeCachesFailures(t *testing.T) {
	e := engine.New(engine.Options{})
	_, err1 := e.AnalyzeCtx(context.Background(), "bad.c", "int f( {")
	if err1 == nil {
		t.Fatal("expected parse error")
	}
	_, err2 := e.AnalyzeCtx(context.Background(), "bad.c", "int f( {")
	if err2 == nil || err2.Error() != err1.Error() {
		t.Errorf("cached failure differs: %v vs %v", err1, err2)
	}
	// A different name hitting the same failing content gets the cached
	// error annotated with its provenance, since the diagnostic's
	// positions cite the first requester's file.
	_, err3 := e.AnalyzeCtx(context.Background(), "other.c", "int f( {")
	if err3 == nil || !errors.Is(err3, err1) {
		t.Errorf("cached failure under new name does not wrap original: %v", err3)
	}
	if err3 != nil && !strings.Contains(err3.Error(), "bad.c") {
		t.Errorf("annotated error does not name the original file: %v", err3)
	}
	if hits, misses := e.Stats(); hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestAnalyzeAllPerItemErrors(t *testing.T) {
	e := engine.New(engine.Options{Workers: 4})
	jobs := []engine.Job{
		{Name: "scale.c", Source: scaleSrc},
		{Name: "broken.c", Source: "double f() { return 1.0 }"},
		{Name: "axpy.c", Source: axpySrc},
	}
	results := e.AnalyzeAll(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Job != jobs[i] {
			t.Errorf("result %d out of order: %v", i, r.Job.Name)
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("broken job succeeded")
	}
	err := engine.Errors(results)
	if err == nil {
		t.Fatal("Errors() == nil despite a failed job")
	}
	if want := "broken.c"; !errors.Is(err, results[1].Err) {
		t.Errorf("joined error does not wrap the item failure (want %s): %v", want, err)
	}
}

// TestConcurrentBatchAndEvalMatchesSerial is the concurrency/race gate:
// batch analysis with duplicated content plus hammering the memoized
// evaluation layer from many goroutines must produce exactly the results
// of the serial, uncached path. Run under `go test -race`.
func TestConcurrentBatchAndEvalMatchesSerial(t *testing.T) {
	sources := map[string]string{
		"scale.c":  scaleSrc,
		"axpy.c":   axpySrc,
		"stream.c": benchprogs.Stream,
	}

	// Serial ground truth straight through core, no caching.
	type truth struct {
		metrics map[int64]int64 // n -> FPI
		ops     map[int64]int64 // n -> total opcode count
	}
	fns := map[string]string{"scale.c": "scale", "axpy.c": "axpy", "stream.c": "stream"}
	ns := []int64{8, 100, 1000}
	want := map[string]truth{}
	for name, src := range sources {
		p, err := core.Analyze(name, src, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr := truth{metrics: map[int64]int64{}, ops: map[int64]int64{}}
		for _, n := range ns {
			env := expr.EnvFromInts(map[string]int64{"n": n})
			met, err := p.StaticMetrics(fns[name], env)
			if err != nil {
				t.Fatal(err)
			}
			tr.metrics[n] = met.FPI()
			ops, err := p.Model.EvaluateOpcodes(fns[name], env)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range ops {
				tr.ops[n] += c
			}
		}
		want[name] = tr
	}

	// Concurrent path: a batch with every source duplicated under two
	// names, then parallel repeated evaluations on the shared analyses.
	e := engine.New(engine.Options{Workers: 4})
	var jobs []engine.Job
	for name, src := range sources {
		jobs = append(jobs, engine.Job{Name: name, Source: src})
		jobs = append(jobs, engine.Job{Name: "dup-" + name, Source: src})
	}
	results := e.AnalyzeAll(context.Background(), jobs)
	if err := engine.Errors(results); err != nil {
		t.Fatal(err)
	}
	if _, misses := e.Stats(); misses != int64(len(sources)) {
		t.Errorf("misses = %d, want %d (content dedup failed)", misses, len(sources))
	}

	var wg sync.WaitGroup
	errc := make(chan error, 1)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for _, r := range results {
		base := r.Job.Name
		if len(base) > 4 && base[:4] == "dup-" {
			base = base[4:]
		}
		fn, tr := fns[base], want[base]
		for _, n := range ns {
			for rep := 0; rep < 8; rep++ {
				wg.Add(1)
				go func(a *engine.Analysis, n int64) {
					defer wg.Done()
					env := expr.EnvFromInts(map[string]int64{"n": n})
					met, err := a.StaticMetrics(fn, env)
					if err != nil {
						report(err)
						return
					}
					if met.FPI() != tr.metrics[n] {
						report(fmt.Errorf("%s n=%d: FPI %d != serial %d", fn, n, met.FPI(), tr.metrics[n]))
					}
					ops, err := a.EvaluateOpcodes(fn, env)
					if err != nil {
						report(err)
						return
					}
					var total int64
					for _, c := range ops {
						total += c
					}
					if total != tr.ops[n] {
						report(fmt.Errorf("%s n=%d: opcode total %d != serial %d", fn, n, total, tr.ops[n]))
					}
					// Mutating the returned copy must not poison the memo.
					for op := range ops {
						ops[op] = -1
					}
				}(r.Analysis, n)
			}
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Every (fn, env) point was computed at most once per distinct
	// analysis; the rest of the traffic hit the memo.
	for _, r := range results[:1] {
		hits, misses := r.Analysis.EvalStats()
		if misses > int64(2*len(ns)) {
			t.Errorf("eval misses = %d, want <= %d", misses, 2*len(ns))
		}
		if hits == 0 {
			t.Error("no eval cache hits under repeated identical queries")
		}
	}
}

func TestEnvFingerprintOrderIndependent(t *testing.T) {
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "axpy.c", axpySrc)
	if err != nil {
		t.Fatal(err)
	}
	// Two envs with identical bindings built in different insertion
	// orders must hit the same memo slot.
	e1 := expr.Env{}
	e1["n"] = expr.EnvFromInts(map[string]int64{"n": 64})["n"]
	e1["a"] = expr.EnvFromInts(map[string]int64{"a": 3})["a"]
	e2 := expr.Env{}
	e2["a"] = expr.EnvFromInts(map[string]int64{"a": 3})["a"]
	e2["n"] = expr.EnvFromInts(map[string]int64{"n": 64})["n"]
	if _, err := a.StaticMetrics("axpy", e1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StaticMetrics("axpy", e2); err != nil {
		t.Fatal(err)
	}
	hits, misses := a.EvalStats()
	if hits != 1 || misses != 1 {
		t.Errorf("eval stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestForEach(t *testing.T) {
	// No failures: every index runs exactly once at every worker count.
	for _, workers := range []int{1, 3, 16} {
		n := 50
		var ran atomic.Int64
		seen := make([]bool, n)
		var mu sync.Mutex
		err := engine.ForEachCtx(context.Background(), workers, n, func(i int) error {
			ran.Add(1)
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		if ran.Load() != int64(n) {
			t.Errorf("workers=%d: ran %d of %d", workers, ran.Load(), n)
		}
		for i, s := range seen {
			if !s {
				t.Errorf("workers=%d: index %d never ran", workers, i)
			}
		}
	}

	// A failure reports the lowest-index error among the items that ran
	// and stops scheduling new ones.
	for _, workers := range []int{1, 3, 16} {
		var ran atomic.Int64
		err := engine.ForEachCtx(context.Background(), workers, 50, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 31 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Errorf("workers=%d: err = %v, want boom 7 (lowest index)", workers, err)
		}
		if workers == 1 && ran.Load() != 8 {
			t.Errorf("serial: ran %d items, want early exit after index 7", ran.Load())
		}
	}
	if err := engine.ForEachCtx(context.Background(), 4, 0, func(int) error { return fmt.Errorf("no") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
}
