package engine

import (
	"context"
	"fmt"

	"mira/internal/arch"
	"mira/internal/expr"
	"mira/internal/model"
	"mira/internal/pbound"
	"mira/internal/roofline"
)

// QueryKind selects what a Query evaluates. The enum spans every metric
// shape the paper's evaluation section reports: the static model
// (inclusive and body-only), the Table II aggregate categories, the
// architecture description's fine 64-way categories, the Sec. IV-D2
// roofline assessment, and the PBound source-only baseline.
type QueryKind int

const (
	// KindStatic evaluates fn's inclusive static metrics.
	KindStatic QueryKind = iota
	// KindStaticExclusive evaluates fn's body-only metrics.
	KindStaticExclusive
	// KindCategories buckets counts into the paper's Table II rows.
	KindCategories
	// KindFineCategories buckets counts into the architecture
	// description's fine-grained (64-way) categories.
	KindFineCategories
	// KindRoofline computes the roofline assessment (arithmetic
	// intensity, ridge point, attainable GFLOP/s).
	KindRoofline
	// KindPBound evaluates the source-only PBound baseline bounds.
	KindPBound

	numQueryKinds
)

var kindNames = [numQueryKinds]string{
	KindStatic:          "static",
	KindStaticExclusive: "static_exclusive",
	KindCategories:      "categories",
	KindFineCategories:  "fine_categories",
	KindRoofline:        "roofline",
	KindPBound:          "pbound",
}

// String returns the kind's wire name.
func (k QueryKind) String() string {
	if k < 0 || k >= numQueryKinds {
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind maps a wire name back to its QueryKind.
func ParseKind(s string) (QueryKind, error) {
	for k, name := range kindNames {
		if s == name {
			return QueryKind(k), nil
		}
	}
	return 0, fmt.Errorf("engine: unknown query kind %q (kinds: %s, %s, %s, %s, %s, %s)",
		s, KindStatic, KindStaticExclusive, KindCategories, KindFineCategories, KindRoofline, KindPBound)
}

// Query is one cell of a query matrix: evaluate Kind for function Fn
// under Env. The zero Kind is KindStatic, so the legacy one-metric calls
// are literally one-element queries.
type Query struct {
	Fn   string
	Env  expr.Env
	Kind QueryKind
	// Arch optionally names a registered architecture description (an
	// embedded profile or one loaded into the registry) overriding the
	// analysis's own for KindFineCategories and KindRoofline; empty
	// means the analysis's. This is the wire-friendly form /query
	// exposes.
	Arch string
	// ArchDesc overrides with an in-process description value (file-
	// loaded or modified ones Lookup cannot name). Takes precedence
	// over Arch.
	ArchDesc *arch.Description
}

// QueryResult is one evaluated cell. Err is per-query: a failed cell
// never aborts the rest of its batch. Exactly one of the value fields is
// set on success, matching Query.Kind.
type QueryResult struct {
	Query      Query
	Metrics    *model.Metrics     // KindStatic, KindStaticExclusive
	Categories map[string]int64   // KindCategories, KindFineCategories
	Roofline   *roofline.Analysis // KindRoofline
	PBound     *pbound.Counts     // KindPBound
	Err        error
}

// Run evaluates an entire query matrix in one pass with per-query
// errors. Every cell shares the analysis's (function, env) memo, so a
// matrix that sweeps kinds over few evaluation points costs few model
// walks. Cancelling ctx makes the remaining cells return ctx.Err()
// immediately; cells already evaluated keep their results.
func (a *Analysis) Run(ctx context.Context, queries []Query) []QueryResult {
	out := make([]QueryResult, len(queries))
	for i, q := range queries {
		out[i] = a.RunOne(ctx, q)
	}
	return out
}

// RunOne evaluates a single query cell, honoring ctx.
func (a *Analysis) RunOne(ctx context.Context, q Query) QueryResult {
	r := QueryResult{Query: q}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	switch q.Kind {
	case KindStatic, KindStaticExclusive:
		met, err := a.cachedMetrics(q.Fn, q.Env, q.Kind == KindStaticExclusive)
		if err != nil {
			r.Err = err
			return r
		}
		r.Metrics = &met
	case KindCategories:
		cats, err := a.TableIICounts(q.Fn, q.Env)
		if err != nil {
			r.Err = err
			return r
		}
		r.Categories = cats
	case KindFineCategories:
		d, key, err := a.queryArch(q)
		if err != nil {
			r.Err = err
			return r
		}
		cats, err := a.cachedFineCats(q.Fn, q.Env, d, key)
		if err != nil {
			r.Err = err
			return r
		}
		r.Categories = cats
	case KindRoofline:
		d, key, err := a.queryArch(q)
		if err != nil {
			r.Err = err
			return r
		}
		roof, err := a.cachedRoofline(q.Fn, q.Env, d, key)
		if err != nil {
			r.Err = err
			return r
		}
		r.Roofline = roof
	case KindPBound:
		c, err := a.PBoundCounts(q.Fn, q.Env)
		if err != nil {
			r.Err = err
			return r
		}
		r.PBound = &c
	default:
		r.Err = fmt.Errorf("engine: unknown query kind %d", q.Kind)
	}
	return r
}

// queryArch resolves the query's architecture description and its
// content key: the in-process override first, then the registry-resolved
// name, then the analysis's own. Registry and analysis keys are
// precomputed; only ad-hoc ArchDesc overrides hash here.
func (a *Analysis) queryArch(q Query) (*arch.Description, string, error) {
	if q.ArchDesc != nil {
		return q.ArchDesc, q.ArchDesc.ContentKey(), nil
	}
	if q.Arch == "" {
		return a.Arch, a.archKey, nil
	}
	e, err := a.registry().LookupEntry(q.Arch)
	if err != nil {
		return nil, "", err
	}
	return e.Desc, e.Key, nil
}

// QueryJob is one cell of an engine-level query matrix: a program
// (inline Source, or the Key of an already-analyzed one) plus the query
// to evaluate against it.
type QueryJob struct {
	// Name labels the program for diagnostics; used with Source.
	Name string
	// Source is the program text; analyzed through the engine's
	// content-hash cache, so N jobs over one program compile it once.
	Source string
	// Key references an already-analyzed program instead of Source.
	Key   string
	Query Query
}

// QueryJobResult pairs a job with its evaluated cell.
type QueryJobResult struct {
	Job QueryJob
	QueryResult
}

// RunAll evaluates an engine-level query matrix: every job fans out over
// the worker pool, jobs naming the same source share one compile via the
// content-hash cache, and jobs hitting the same (function, env) point
// share the analysis memo. Errors — analysis failures, bad cells,
// cancellation — are per-job. After ctx is cancelled every remaining job
// completes immediately with ctx.Err().
func (e *Engine) RunAll(ctx context.Context, jobs []QueryJob) []QueryJobResult {
	out := make([]QueryJobResult, len(jobs))
	done := make([]bool, len(jobs))
	// The worker fn never fails (per-item errors land in out[i]);
	// cancellation is detected via done[] below, not the return value.
	_ = ForEachCtx(ctx, e.workers, len(jobs), func(i int) error {
		done[i] = true
		j := jobs[i]
		out[i].Job = j
		out[i].Query = j.Query
		a, err := e.resolveJob(ctx, j)
		if err != nil {
			out[i].Err = err
			return nil
		}
		out[i].QueryResult = a.RunOne(ctx, j.Query)
		return nil
	})
	// Cancellation stops the sweep from scheduling; jobs it never
	// reached still report the cancellation per item.
	for i := range out {
		if !done[i] {
			out[i] = QueryJobResult{Job: jobs[i], QueryResult: QueryResult{Query: jobs[i].Query, Err: ctx.Err()}}
		}
	}
	return out
}

// resolveJob produces the analysis a job queries against.
func (e *Engine) resolveJob(ctx context.Context, j QueryJob) (*Analysis, error) {
	switch {
	case j.Source != "":
		return e.AnalyzeCtx(ctx, j.Name, j.Source)
	case j.Key != "":
		if a, ok := e.Lookup(j.Key); ok {
			return a, nil
		}
		return nil, fmt.Errorf("engine: unknown analysis key %q", j.Key)
	default:
		return nil, fmt.Errorf("engine: query job needs Source or Key")
	}
}
