package engine_test

import (
	"context"
	"testing"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/engine"
	"mira/internal/expr"
)

// nearTwin returns two descriptions differing in exactly one parameter
// (memory bandwidth) — the minimal pair that must never share a cache
// entry, a memo cell, or a roofline result anywhere in the system.
func nearTwin() (*arch.Description, *arch.Description) {
	d1 := arch.Arya()
	d2 := arch.Arya()
	d2.MemBandwidthGBs = d1.MemBandwidthGBs * 2
	return d1, d2
}

// TestArchContentKeyPartitionsCaches is the end-to-end no-poisoning
// regression test at the engine layer: two engines whose architectures
// differ in a single parameter — same name, same everything else — must
// produce distinct whole-source cache keys, distinct function-content
// keys, distinct entries in a shared persistent store, and distinct
// roofline results.
func TestArchContentKeyPartitionsCaches(t *testing.T) {
	d1, d2 := nearTwin()
	store := engine.NewMemoryStore()
	e1 := engine.New(engine.Options{Core: core.Options{Arch: d1}, Store: store})
	e2 := engine.New(engine.Options{Core: core.Options{Arch: d2}, Store: store})

	if e1.Key(scaleSrc) == e2.Key(scaleSrc) {
		t.Fatal("one-parameter arch twins share a whole-source cache key")
	}

	a1, err := e1.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e2.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k1, k2 := a1.FuncKeys["scale"], a2.FuncKeys["scale"]; k1 == "" || k1 == k2 {
		t.Errorf("function keys %q vs %q: arch twins must not share per-function entries", k1, k2)
	}
	if store.Len() != 2 {
		t.Errorf("shared store holds %d whole-source entries, want 2 (one per arch)", store.Len())
	}

	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	q := engine.Query{Fn: "scale", Env: env, Kind: engine.KindRoofline}
	r1 := a1.RunOne(context.Background(), q)
	r2 := a2.RunOne(context.Background(), q)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("roofline errors: %v, %v", r1.Err, r2.Err)
	}
	if r1.Roofline.RidgeAI == r2.Roofline.RidgeAI {
		t.Error("roofline served across arch twins: ridge points are equal")
	}

	// A second engine over the same description warm-starts from the
	// shared store — the partition is by content, not by engine — and
	// the warm path writes no third entry.
	e3 := engine.New(engine.Options{Core: core.Options{Arch: d1}, Store: store})
	if _, err := e3.AnalyzeCtx(context.Background(), "scale.c", scaleSrc); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d entries after a warm restart, want 2 still", store.Len())
	}
}

// TestArchDescMemoPartition: within ONE analysis, per-query ArchDesc
// overrides differing in one parameter must occupy distinct memo
// entries — a memo hit for d2 after querying d1 would be poisoning.
func TestArchDescMemoPartition(t *testing.T) {
	d1, d2 := nearTwin()
	e := engine.New(engine.Options{})
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	run := func(d *arch.Description) *engine.QueryResult {
		r := a.RunOne(context.Background(), engine.Query{
			Fn: "scale", Env: env, Kind: engine.KindRoofline, ArchDesc: d,
		})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return &r
	}
	first := run(d1)
	second := run(d2)
	if first.Roofline.RidgeAI == second.Roofline.RidgeAI {
		t.Fatal("d2 roofline served from d1's memo entry")
	}
	// Re-querying d1 must reproduce the original — and as a memo hit.
	hitsBefore, _ := a.EvalStats()
	again := run(d1)
	if again.Roofline.RidgeAI != first.Roofline.RidgeAI {
		t.Error("d1 re-query changed after d2 was queried")
	}
	if hitsAfter, _ := a.EvalStats(); hitsAfter == hitsBefore {
		t.Error("d1 re-query did not hit the memo")
	}

	// Fine categories ride the same arch-keyed memo: both twins must
	// resolve (identical taxonomies, so equal counts) without error.
	for _, d := range []*arch.Description{d1, d2} {
		r := a.RunOne(context.Background(), engine.Query{
			Fn: "scale", Env: env, Kind: engine.KindFineCategories, ArchDesc: d,
		})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestRegistryResolvedQueries: named arch overrides resolve through the
// injected registry, including custom registered descriptions, and the
// unknown-name error lists the registry's contents.
func TestRegistryResolvedQueries(t *testing.T) {
	reg := arch.NewRegistry()
	custom := arch.Generic()
	custom.Name = "testbox"
	custom.MemBandwidthGBs = 10
	if err := reg.Register(custom); err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Options{Registry: reg})
	if e.Registry().Len() != reg.Len() {
		t.Fatal("injected registry not used")
	}
	a, err := e.AnalyzeCtx(context.Background(), "scale.c", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EnvFromInts(map[string]int64{"n": 1000})
	r := a.RunOne(context.Background(), engine.Query{
		Fn: "scale", Env: env, Kind: engine.KindRoofline, Arch: "testbox",
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if want := custom.PeakGFlops() / custom.MemBandwidthGBs; r.Roofline.RidgeAI != want {
		t.Errorf("ridge %v, want %v (custom registered description)", r.Roofline.RidgeAI, want)
	}

	// Sweeps resolve through the same registry.
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn:   "scale",
		Kind: engine.KindRoofline,
		Base: map[string]int64{"n": 64},
		Archs: []string{
			"testbox", "skylake",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Err != nil || res.Points[1].Err != nil {
		t.Fatalf("sweep points: %+v", res.Points)
	}
	if res.Points[0].Roofline.RidgeAI == res.Points[1].Roofline.RidgeAI {
		t.Error("sweep archs resolved to the same machine")
	}
}
