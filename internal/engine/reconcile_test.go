package engine_test

import (
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/core"
	"mira/internal/expr"
)

// reconcilePrograms lists every embedded workload plus a br_frac-
// annotated kernel: fractional multiplicities are where truncate-vs-
// round (and compiled-vs-walker rounding-order) divergences bite.
var reconcilePrograms = []struct {
	name   string
	source string
}{
	{"stream.c", benchprogs.Stream},
	{"dgemm.c", benchprogs.Dgemm},
	{"minife.c", benchprogs.MiniFE},
	{"fig5.c", benchprogs.Fig5},
	{"listing1.c", benchprogs.Listing1},
	{"listing2.c", benchprogs.Listing2},
	{"listing4.c", benchprogs.Listing4},
	{"listing5.c", benchprogs.Listing5},
	{"ablation.c", benchprogs.Ablation},
	{"brfrac.c", `
double work(double v) {
	double t;
	t = v * 2.0 + 1.0;
	return t;
}
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		#pragma @Annotation {br_frac:0.37}
		if (x[i] > 0.5) {
			s = s + work(x[i]);
		}
	}
	return s;
}`},
}

// TestEvaluateOpcodesReconciles checks, for every benchprogs program and
// every function its model defines, that the two model walkers agree:
// the sum of EvaluateOpcodes' per-opcode counts must equal Evaluate's
// instruction total, and the two must succeed or fail together. This is
// the guard against the walkers drifting apart (rounding, argument
// binding) — a divergence here poisons Table II and every persisted
// cache entry derived from it.
func TestEvaluateOpcodesReconciles(t *testing.T) {
	// A generous environment superset: every parameter any benchprogs
	// function declares, at sizes small enough to enumerate quickly.
	env := expr.EnvFromInts(map[string]int64{
		"n": 60, "nrep": 3,
		"nx": 6, "ny": 6, "nz": 6,
		"max_iter": 5, "nnz_row": 19,
	})
	for _, prog := range reconcilePrograms {
		p, err := core.Analyze(prog.name, prog.source, core.Options{})
		if err != nil {
			t.Fatalf("%s: analyze: %v", prog.name, err)
		}
		for _, fn := range p.Model.Order {
			met, errEval := p.Model.Evaluate(fn, env)
			ops, errOps := p.Model.EvaluateOpcodes(fn, env)
			if (errEval == nil) != (errOps == nil) {
				t.Errorf("%s %s: walkers disagree on evaluability: Evaluate err=%v, EvaluateOpcodes err=%v",
					prog.name, fn, errEval, errOps)
				continue
			}
			if errEval != nil {
				continue // both failed (e.g. unresolved call argument): consistent
			}
			var total int64
			for _, c := range ops {
				total += c
			}
			if total != met.Instrs {
				t.Errorf("%s %s: opcode total %d != Evaluate instrs %d",
					prog.name, fn, total, met.Instrs)
			}
		}
	}
}

// TestCompiledReconciles is the compiled-path property test: for every
// benchprogs program, every function its model defines, and a grid of
// environments (small, large, and degenerate-zero sizes), the symbolic
// compilation must be byte-identical to the tree walkers — same
// metrics, same per-opcode counts, exclusive included, and the two
// paths must succeed or fail together. A divergence here would poison
// every sweep built on the compiled path.
func TestCompiledReconciles(t *testing.T) {
	grid := []map[string]int64{
		{"n": 0, "nrep": 0, "nx": 0, "ny": 0, "nz": 0, "max_iter": 0, "nnz_row": 0},
		{"n": 1, "nrep": 1, "nx": 1, "ny": 1, "nz": 1, "max_iter": 1, "nnz_row": 1},
		{"n": 7, "nrep": 2, "nx": 2, "ny": 3, "nz": 4, "max_iter": 3, "nnz_row": 9},
		{"n": 60, "nrep": 3, "nx": 6, "ny": 6, "nz": 6, "max_iter": 5, "nnz_row": 19},
		// Large sizes stress the closed forms; the brick stays modest
		// because miniFE's assemble makes the *walker* enumerate sums.
		{"n": 1_000_000, "nrep": 10, "nx": 10, "ny": 9, "nz": 8, "max_iter": 20, "nnz_row": 25},
	}
	for _, prog := range reconcilePrograms {
		p, err := core.Analyze(prog.name, prog.source, core.Options{})
		if err != nil {
			t.Fatalf("%s: analyze: %v", prog.name, err)
		}
		for _, fn := range p.Model.Order {
			cm, errC := p.Model.Compile(fn)
			cmx, errCX := p.Model.CompileExclusive(fn)
			if errC != nil || errCX != nil {
				t.Errorf("%s %s: compile errs %v / %v", prog.name, fn, errC, errCX)
				continue
			}
			for gi, point := range grid {
				env := expr.EnvFromInts(point)

				met, errW := p.Model.Evaluate(fn, env)
				cmet, errE := cm.Eval(env)
				if (errW == nil) != (errE == nil) {
					t.Errorf("%s %s grid %d: evaluability diverges: walker %v, compiled %v",
						prog.name, fn, gi, errW, errE)
					continue
				}
				if errW == nil && met != cmet {
					t.Errorf("%s %s grid %d: walker %+v != compiled %+v", prog.name, fn, gi, met, cmet)
				}

				metx, errWX := p.Model.EvaluateExclusive(fn, env)
				cmetx, errEX := cmx.Eval(env)
				if (errWX == nil) != (errEX == nil) {
					t.Errorf("%s %s grid %d: exclusive evaluability diverges: walker %v, compiled %v",
						prog.name, fn, gi, errWX, errEX)
				} else if errWX == nil && metx != cmetx {
					t.Errorf("%s %s grid %d: exclusive walker %+v != compiled %+v", prog.name, fn, gi, metx, cmetx)
				}

				ops, errWO := p.Model.EvaluateOpcodes(fn, env)
				cops, errEO := cm.EvalOps(env)
				if (errWO == nil) != (errEO == nil) {
					t.Errorf("%s %s grid %d: opcode evaluability diverges: walker %v, compiled %v",
						prog.name, fn, gi, errWO, errEO)
					continue
				}
				if errWO != nil {
					continue
				}
				if len(ops) != len(cops) {
					t.Errorf("%s %s grid %d: opcode key sets differ: walker %d keys, compiled %d",
						prog.name, fn, gi, len(ops), len(cops))
					continue
				}
				for op, n := range ops {
					if cops[op] != n {
						t.Errorf("%s %s grid %d: ops[%v]: walker %d != compiled %d",
							prog.name, fn, gi, op, n, cops[op])
					}
				}
			}
		}
	}
}
