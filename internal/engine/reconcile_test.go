package engine_test

import (
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/core"
	"mira/internal/expr"
)

// TestEvaluateOpcodesReconciles checks, for every benchprogs program and
// every function its model defines, that the two model walkers agree:
// the sum of EvaluateOpcodes' per-opcode counts must equal Evaluate's
// instruction total, and the two must succeed or fail together. This is
// the guard against the walkers drifting apart (rounding, argument
// binding) — a divergence here poisons Table II and every persisted
// cache entry derived from it.
func TestEvaluateOpcodesReconciles(t *testing.T) {
	// A generous environment superset: every parameter any benchprogs
	// function declares, at sizes small enough to enumerate quickly.
	env := expr.EnvFromInts(map[string]int64{
		"n": 60, "nrep": 3,
		"nx": 6, "ny": 6, "nz": 6,
		"max_iter": 5, "nnz_row": 19,
	})
	programs := []struct {
		name   string
		source string
	}{
		{"stream.c", benchprogs.Stream},
		{"dgemm.c", benchprogs.Dgemm},
		{"minife.c", benchprogs.MiniFE},
		{"fig5.c", benchprogs.Fig5},
		{"listing1.c", benchprogs.Listing1},
		{"listing2.c", benchprogs.Listing2},
		{"listing4.c", benchprogs.Listing4},
		{"listing5.c", benchprogs.Listing5},
		{"ablation.c", benchprogs.Ablation},
		// A br_frac-annotated kernel: fractional multiplicities are where
		// the truncate-vs-round divergence used to bite.
		{"brfrac.c", `
double work(double v) {
	double t;
	t = v * 2.0 + 1.0;
	return t;
}
double kernel(double *x, int n) {
	double s; int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		#pragma @Annotation {br_frac:0.37}
		if (x[i] > 0.5) {
			s = s + work(x[i]);
		}
	}
	return s;
}`},
	}
	for _, prog := range programs {
		p, err := core.Analyze(prog.name, prog.source, core.Options{})
		if err != nil {
			t.Fatalf("%s: analyze: %v", prog.name, err)
		}
		for _, fn := range p.Model.Order {
			met, errEval := p.Model.Evaluate(fn, env)
			ops, errOps := p.Model.EvaluateOpcodes(fn, env)
			if (errEval == nil) != (errOps == nil) {
				t.Errorf("%s %s: walkers disagree on evaluability: Evaluate err=%v, EvaluateOpcodes err=%v",
					prog.name, fn, errEval, errOps)
				continue
			}
			if errEval != nil {
				continue // both failed (e.g. unresolved call argument): consistent
			}
			var total int64
			for _, c := range ops {
				total += c
			}
			if total != met.Instrs {
				t.Errorf("%s %s: opcode total %d != Evaluate instrs %d",
					prog.name, fn, total, met.Instrs)
			}
		}
	}
}
