package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/expr"
	"mira/internal/model"
	"mira/internal/pbound"
	"mira/internal/roofline"
)

// MaxSweepPoints bounds one sweep's expanded grid (axes × explicit
// points × architectures). 64k points is two orders of magnitude past
// the paper's largest table; bigger studies split into chunks the
// caller schedules.
const MaxSweepPoints = 65536

// ErrSweepTooLarge is the typed error a Sweep returns when the grid
// would expand past MaxSweepPoints (check with errors.Is; serving
// layers map it to 413 and tell the client to split the study).
var ErrSweepTooLarge = errors.New("sweep grid too large")

// sweepChunk is the fan-out granularity: points are evaluated in runs
// of this size per worker-pool slot, so a 10k-point sweep costs ~tens
// of scheduling events, not 10k, while cancellation still lands within
// one chunk.
const sweepChunk = 64

// SweepAxis is one sweep dimension: a parameter name and the values it
// takes. The grid is the cross product of all axes.
type SweepAxis struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// SweepSpec describes a parameter sweep of one function: evaluate Kind
// at every point of a grid. The grid is either the cross product of
// Axes or the explicit Points list (exactly one must be given), each
// point optionally completed by the fixed Base bindings. For
// architecture-dependent kinds (roofline, fine categories), Archs
// multiplies the grid by one cell per named description.
type SweepSpec struct {
	Fn   string
	Kind QueryKind
	// Axes are crossed to form the grid.
	Axes []SweepAxis
	// Points lists explicit environments instead of a cross product —
	// for grids whose parameters move together (miniFE's n = nx*ny*nz).
	Points []map[string]int64
	// Base binds parameters shared by every point (a point overrides).
	Base map[string]int64
	// Archs names registered architecture descriptions to sweep across
	// for KindRoofline / KindFineCategories; empty means the analysis's
	// own. At most one may be given for arch-independent kinds.
	Archs []string
	// ArchDesc overrides with one in-process description value (takes
	// precedence over Archs), mirroring Query.ArchDesc.
	ArchDesc *arch.Description
}

// SweepPoint is one evaluated grid cell. Err is per-point — an
// overflowing size or a cancelled context fails the cell, never the
// sweep. Exactly one value field is set on success, matching the
// sweep's kind.
type SweepPoint struct {
	Env        map[string]int64   `json:"env"`
	Arch       string             `json:"arch,omitempty"`
	Metrics    *model.Metrics     `json:"metrics,omitempty"`
	Categories map[string]int64   `json:"categories,omitempty"`
	Roofline   *roofline.Analysis `json:"roofline,omitempty"`
	PBound     *pbound.Counts     `json:"pbound,omitempty"`
	Err        error              `json:"-"`
}

// SweepResult is a completed sweep: every grid point in expansion order
// (axes vary rightmost-fastest, architectures outermost).
type SweepResult struct {
	Fn     string
	Kind   QueryKind
	Points []SweepPoint
}

// Errs returns the per-point failures, nil when every point succeeded.
func (r *SweepResult) Errs() []error {
	var out []error
	for i := range r.Points {
		if err := r.Points[i].Err; err != nil {
			out = append(out, err)
		}
	}
	return out
}

// Sweep evaluates spec's grid against the analysis. The function's
// model is compiled to closed form once (cached per content hash) and
// each point is then a flat expression evaluation — no tree walk, no
// (function, env) memo churn — fanned out over the worker bound in
// chunks. The error return covers the spec itself (unknown function or
// kind, bad grid, too many points): bad-request material. Everything
// per-point, including cancellation of ctx, lands in SweepPoint.Err;
// points not yet evaluated when ctx dies carry ctx.Err().
func (a *Analysis) Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if spec.Fn == "" {
		return nil, fmt.Errorf("engine: sweep needs a function")
	}
	if spec.Kind < 0 || spec.Kind >= numQueryKinds {
		return nil, fmt.Errorf("engine: unknown query kind %d", spec.Kind)
	}
	envs, err := expandSweepGrid(spec)
	if err != nil {
		return nil, err
	}
	archs, err := a.sweepArchs(spec)
	if err != nil {
		return nil, err
	}
	total := len(envs) * len(archs)
	if total > MaxSweepPoints {
		return nil, fmt.Errorf("engine: sweep expands to %d points (%d envs x %d archs), exceeding the limit of %d: %w",
			total, len(envs), len(archs), MaxSweepPoints, ErrSweepTooLarge)
	}

	ev, err := a.sweepEvaluator(spec)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res := &SweepResult{Fn: spec.Fn, Kind: spec.Kind, Points: make([]SweepPoint, total)}
	for ai := range archs {
		for ei := range envs {
			p := &res.Points[ai*len(envs)+ei]
			p.Env = envs[ei]
			p.Arch = archs[ai].name
		}
	}
	chunks := (total + sweepChunk - 1) / sweepChunk
	_ = ForEachCtx(ctx, a.workers, chunks, func(ci int) error {
		lo, hi := ci*sweepChunk, (ci+1)*sweepChunk
		if hi > total {
			hi = total
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				res.Points[i].Err = err
				continue
			}
			p := &res.Points[i]
			ev(p, archs[i/len(envs)].desc)
		}
		return nil // per-point errors never abort the sweep
	})
	// Chunks never scheduled after cancellation left their points
	// untouched: mark them with the context error so every point
	// reports an outcome.
	if ctxErr := ctx.Err(); ctxErr != nil {
		for i := range res.Points {
			p := &res.Points[i]
			if p.Err == nil && p.Metrics == nil && p.Categories == nil && p.Roofline == nil && p.PBound == nil {
				p.Err = ctxErr
			}
		}
	}
	if a.met != nil {
		a.met.sweepPoints.Add(int64(total))
		a.met.sweep.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

// sweepArch pairs a wire name with its resolved description.
type sweepArch struct {
	name string
	desc *arch.Description
}

// sweepArchs resolves the architecture cells of a sweep against the
// analysis's registry.
func (a *Analysis) sweepArchs(spec SweepSpec) ([]sweepArch, error) {
	usesArch := spec.Kind == KindRoofline || spec.Kind == KindFineCategories
	if !usesArch && (len(spec.Archs) > 1 || (len(spec.Archs) == 1 && spec.ArchDesc != nil)) {
		return nil, fmt.Errorf("engine: kind %s does not vary by architecture; drop the archs axis", spec.Kind)
	}
	if spec.ArchDesc != nil {
		return []sweepArch{{name: spec.ArchDesc.Name, desc: spec.ArchDesc}}, nil
	}
	if len(spec.Archs) == 0 {
		return []sweepArch{{desc: a.Arch}}, nil
	}
	out := make([]sweepArch, len(spec.Archs))
	for i, name := range spec.Archs {
		d, err := a.registry().Lookup(name)
		if err != nil {
			return nil, err
		}
		out[i] = sweepArch{name: name, desc: d}
	}
	return out, nil
}

// expandSweepGrid builds the environment list: the cross product of the
// axes (rightmost axis varying fastest) or the explicit points, each
// completed by the base bindings.
func expandSweepGrid(spec SweepSpec) ([]map[string]int64, error) {
	if len(spec.Axes) > 0 && len(spec.Points) > 0 {
		return nil, fmt.Errorf("engine: sweep takes axes or explicit points, not both")
	}
	if len(spec.Points) > 0 {
		if len(spec.Points) > MaxSweepPoints {
			return nil, fmt.Errorf("engine: %d explicit points exceeds the limit of %d: %w",
				len(spec.Points), MaxSweepPoints, ErrSweepTooLarge)
		}
		out := make([]map[string]int64, len(spec.Points))
		for i, p := range spec.Points {
			out[i] = mergeEnv(spec.Base, p)
		}
		return out, nil
	}
	if len(spec.Axes) == 0 {
		if len(spec.Base) == 0 {
			return nil, fmt.Errorf("engine: sweep needs axes or explicit points")
		}
		// A base with no axes is the degenerate one-point sweep.
		return []map[string]int64{mergeEnv(spec.Base, nil)}, nil
	}
	total := 1
	seen := map[string]bool{}
	for _, ax := range spec.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("engine: sweep axis needs a name")
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("engine: duplicate sweep axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("engine: sweep axis %q has no values", ax.Name)
		}
		if total > MaxSweepPoints/len(ax.Values) {
			return nil, fmt.Errorf("engine: sweep grid exceeds the limit of %d points: %w", MaxSweepPoints, ErrSweepTooLarge)
		}
		total *= len(ax.Values)
	}
	out := make([]map[string]int64, 0, total)
	idx := make([]int, len(spec.Axes))
	for {
		env := mergeEnv(spec.Base, nil)
		for i, ax := range spec.Axes {
			env[ax.Name] = ax.Values[idx[i]]
		}
		out = append(out, env)
		// Odometer increment, rightmost fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(spec.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

func mergeEnv(base, point map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(base)+len(point)+1)
	for k, v := range base {
		out[k] = v
	}
	for k, v := range point {
		out[k] = v
	}
	return out
}

// pointEvaluator computes one grid cell in place.
type pointEvaluator func(p *SweepPoint, d *arch.Description)

// sweepEvaluator prepares the per-point evaluation for the spec's kind,
// doing every once-per-sweep step (symbolic compilation, the PBound
// report) up front.
func (a *Analysis) sweepEvaluator(spec SweepSpec) (pointEvaluator, error) {
	fn := spec.Fn
	switch spec.Kind {
	case KindStatic, KindStaticExclusive:
		cm, err := a.Compiled(fn, spec.Kind == KindStaticExclusive)
		if err != nil {
			return nil, err
		}
		return func(p *SweepPoint, _ *arch.Description) {
			met, err := cm.Eval(expr.EnvFromInts(p.Env))
			if err != nil {
				p.Err = err
				return
			}
			p.Metrics = &met
		}, nil
	case KindRoofline:
		cm, err := a.Compiled(fn, false)
		if err != nil {
			return nil, err
		}
		return func(p *SweepPoint, d *arch.Description) {
			met, err := cm.Eval(expr.EnvFromInts(p.Env))
			if err != nil {
				p.Err = err
				return
			}
			roof, err := roofline.Analyze(fn, met, d)
			if err != nil {
				p.Err = err
				return
			}
			p.Roofline = roof
		}, nil
	case KindCategories, KindFineCategories:
		cm, err := a.Compiled(fn, false)
		if err != nil {
			return nil, err
		}
		fine := spec.Kind == KindFineCategories
		return func(p *SweepPoint, d *arch.Description) {
			ops, err := cm.EvalOps(expr.EnvFromInts(p.Env))
			if err != nil {
				p.Err = err
				return
			}
			if fine {
				p.Categories = core.BucketFine(d, ops)
			} else {
				p.Categories = core.BucketTableII(ops)
			}
		}, nil
	case KindPBound:
		rep, err := a.pboundReport()
		if err != nil {
			return nil, err
		}
		return func(p *SweepPoint, _ *arch.Description) {
			c, err := safely("pbound evaluation", func() (pbound.Counts, error) {
				return rep.EvalCounts(fn, expr.EnvFromInts(p.Env))
			})
			if err != nil {
				p.Err = err
				return
			}
			p.PBound = &c
		}, nil
	default:
		return nil, fmt.Errorf("engine: unknown query kind %d", spec.Kind)
	}
}

// SweepSeries extracts one int64 series from a sweep's points (FPI,
// flops, instrs, or a named category), in grid order — the shape the
// clustering and what-if consumers feed on. A point that failed
// contributes its error.
func (r *SweepResult) SweepSeries(pick func(*SweepPoint) (int64, bool)) ([]int64, error) {
	out := make([]int64, len(r.Points))
	for i := range r.Points {
		p := &r.Points[i]
		if p.Err != nil {
			return nil, fmt.Errorf("point %s: %w", formatEnv(p.Env), p.Err)
		}
		v, ok := pick(p)
		if !ok {
			return nil, fmt.Errorf("point %s: kind %s carries no such series", formatEnv(p.Env), r.Kind)
		}
		out[i] = v
	}
	return out, nil
}

// FPISeries is the floating-point-instruction series of a metrics-kind
// sweep — Fig. 7's y-axis.
func (r *SweepResult) FPISeries() ([]int64, error) {
	return r.SweepSeries(func(p *SweepPoint) (int64, bool) {
		if p.Metrics == nil {
			return 0, false
		}
		return p.Metrics.FPI(), true
	})
}

func formatEnv(env map[string]int64) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	s := "{"
	for i, k := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, env[k])
	}
	return s + "}"
}
