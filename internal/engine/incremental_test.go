package engine_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/engine"
	"mira/internal/obs"
)

// TestDeltaSemantics pins when an Analysis carries a reuse delta: an
// incremental build reports exactly what it compiled and reused, a
// live-cache hit for identical content carries no delta at all (nothing
// ran, so nothing "changed"), and an edit reports only its blast
// radius.
func TestDeltaSemantics(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})

	a1, err := e.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE)
	if err != nil {
		t.Fatal(err)
	}
	d1 := a1.Delta()
	if d1 == nil {
		t.Fatal("cold build carries no delta")
	}
	if len(d1.Reused) != 0 {
		t.Errorf("cold build reused %v", d1.Reused)
	}
	total := len(d1.Compiled)
	if total == 0 {
		t.Fatal("cold build compiled nothing")
	}

	// Identical content again: served from the live cache, no pipeline
	// ran, so no delta — a -watch caller prints "unchanged".
	a2, err := e.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE)
	if err != nil {
		t.Fatal(err)
	}
	if d := a2.Delta(); d != nil {
		t.Errorf("live-cache hit carries delta %+v", d)
	}

	// A column shift inside minife: only that function recompiles.
	mutated := strings.Replace(benchprogs.MiniFE, "return cg_solve", " return cg_solve", 1)
	a3, err := e.AnalyzeCtx(context.Background(), "minife.c", mutated)
	if err != nil {
		t.Fatal(err)
	}
	d3 := a3.Delta()
	if d3 == nil {
		t.Fatal("edited build carries no delta")
	}
	if len(d3.Compiled) != 1 || d3.Compiled[0] != "minife" {
		t.Errorf("edit recompiled %v, want [minife]", d3.Compiled)
	}
	if got := len(d3.Reused) + len(d3.Compiled); got != total {
		t.Errorf("delta covers %d functions, cold build had %d", got, total)
	}

	var sb strings.Builder
	if err := e.Obs().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exp.Value("mira_incremental_hits_total"), float64(len(d3.Reused)); got != want {
		t.Errorf("mira_incremental_hits_total = %v, want %v", got, want)
	}
	if got, want := exp.Value("mira_incremental_misses_total"), float64(total+1); got != want {
		t.Errorf("mira_incremental_misses_total = %v, want %v", got, want)
	}
	if exp.Value("mira_function_memo_entries") == 0 {
		t.Error("mira_function_memo_entries gauge is zero with resident functions")
	}
}

// TestMemoryStoreFuncRoundTrip covers the per-function half of
// MemoryStore, and that two engines sharing it hand compiled functions
// across: the second engine's cold build of the same source reuses
// every function from the store.
func TestMemoryStoreFuncRoundTrip(t *testing.T) {
	store := engine.NewMemoryStore()
	if _, ok := store.LoadFunc("missing"); ok {
		t.Fatal("hit on empty store")
	}
	store.StoreFunc("k1", &engine.FuncEntry{Name: "f", Unit: []byte{1, 2}})
	got, ok := store.LoadFunc("k1")
	if !ok || got.Name != "f" || string(got.Unit) != "\x01\x02" {
		t.Fatalf("round-trip mismatch: %+v ok=%v", got, ok)
	}
	if store.FuncLen() != 1 {
		t.Errorf("FuncLen = %d, want 1", store.FuncLen())
	}

	e1 := engine.New(engine.Options{Store: store, Workers: 1})
	if _, err := e1.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE); err != nil {
		t.Fatal(err)
	}
	if store.FuncLen() < 2 {
		t.Fatalf("FuncLen = %d after analysis, want every compiled function", store.FuncLen())
	}

	// A second engine over the same store, analyzing the source with a
	// trailing newline added: the whole-source key changes (so neither
	// the live cache nor the whole-source entry can serve it) while
	// every function-content key stays identical — each function must
	// come from the per-function store.
	e2 := engine.New(engine.Options{Store: store, Workers: 1})
	a, err := e2.AnalyzeCtx(context.Background(), "minife.c", benchprogs.MiniFE+"\n")
	if err != nil {
		t.Fatal(err)
	}
	d := a.Delta()
	if d == nil {
		t.Fatal("no delta from store-backed build")
	}
	if len(d.Compiled) != 0 {
		c := append([]string{}, d.Compiled...)
		sort.Strings(c)
		t.Errorf("store-backed build recompiled %v, want none", c)
	}
}
