package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mira/internal/benchprogs"
	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/model"
)

func analyzeT(t *testing.T, e *engine.Engine, name, src string) *engine.Analysis {
	t.Helper()
	a, err := e.AnalyzeCtx(context.Background(), name, src)
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	return a
}

func TestSweepStaticMatchesTreeWalk(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "stream.c", benchprogs.Stream)
	sizes := []int64{0, 1, 100, 10_000, 1_000_000}
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn:   "stream",
		Kind: engine.KindStatic,
		Axes: []engine.SweepAxis{{Name: "n", Values: sizes}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(sizes) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(sizes))
	}
	for i, n := range sizes {
		p := res.Points[i]
		if p.Err != nil {
			t.Fatalf("point n=%d: %v", n, p.Err)
		}
		if p.Env["n"] != n {
			t.Fatalf("point %d env = %v, want n=%d (grid order)", i, p.Env, n)
		}
		want, err := a.Pipeline.StaticMetrics("stream", expr.EnvFromInts(map[string]int64{"n": n}))
		if err != nil {
			t.Fatal(err)
		}
		if *p.Metrics != want {
			t.Fatalf("n=%d: sweep %+v != walker %+v", n, *p.Metrics, want)
		}
	}
	fpi, err := res.FPISeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(fpi) != len(sizes) || fpi[2] >= fpi[3] {
		t.Fatalf("FPI series not scaling: %v", fpi)
	}
}

func TestSweepGridExpansion(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "dgemm.c", benchprogs.Dgemm)
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn:   "dgemm_bench",
		Kind: engine.KindStatic,
		Axes: []engine.SweepAxis{
			{Name: "n", Values: []int64{8, 16}},
			{Name: "nrep", Values: []int64{1, 2, 3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	// Rightmost axis varies fastest.
	wantOrder := [][2]int64{{8, 1}, {8, 2}, {8, 3}, {16, 1}, {16, 2}, {16, 3}}
	for i, w := range wantOrder {
		p := res.Points[i]
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
		if p.Env["n"] != w[0] || p.Env["nrep"] != w[1] {
			t.Fatalf("point %d env = %v, want n=%d nrep=%d", i, p.Env, w[0], w[1])
		}
	}
	// FPI doubles with nrep at fixed n.
	if res.Points[1].Metrics.FPI() != 2*res.Points[0].Metrics.FPI() {
		t.Fatalf("nrep scaling broken: %d vs %d", res.Points[1].Metrics.FPI(), res.Points[0].Metrics.FPI())
	}
}

func TestSweepBaseAndPoints(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "dgemm.c", benchprogs.Dgemm)
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn:     "dgemm_bench",
		Kind:   engine.KindStatic,
		Base:   map[string]int64{"nrep": 4},
		Points: []map[string]int64{{"n": 8}, {"n": 16}, {"n": 16, "nrep": 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i].Err != nil {
			t.Fatalf("point %d: %v", i, res.Points[i].Err)
		}
	}
	// Point 2 overrides the base nrep: 4x fewer FPI than point 1.
	if res.Points[1].Metrics.FPI() != 4*res.Points[2].Metrics.FPI() {
		t.Fatalf("base/point override broken: %d vs %d",
			res.Points[1].Metrics.FPI(), res.Points[2].Metrics.FPI())
	}
}

func TestSweepSpecErrors(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "stream.c", benchprogs.Stream)
	ctx := context.Background()
	big := make([]int64, 300)
	for i := range big {
		big[i] = int64(i)
	}
	cases := []struct {
		name string
		spec engine.SweepSpec
	}{
		{"no fn", engine.SweepSpec{Kind: engine.KindStatic, Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}}},
		{"unknown fn", engine.SweepSpec{Fn: "ghost", Kind: engine.KindStatic, Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}}},
		{"bad kind", engine.SweepSpec{Fn: "stream", Kind: engine.QueryKind(99), Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}}},
		{"no grid", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic}},
		{"axes and points", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic,
			Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}, Points: []map[string]int64{{"n": 1}}}},
		{"unnamed axis", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic, Axes: []engine.SweepAxis{{Values: []int64{1}}}}},
		{"empty axis", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic, Axes: []engine.SweepAxis{{Name: "n"}}}},
		{"duplicate axis", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic,
			Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}, {Name: "n", Values: []int64{2}}}}},
		{"too many points", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic,
			Axes: []engine.SweepAxis{{Name: "a", Values: big}, {Name: "b", Values: big}}}},
		{"archs on static", engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic,
			Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}, Archs: []string{"arya", "generic"}}},
		{"unknown arch", engine.SweepSpec{Fn: "stream", Kind: engine.KindRoofline,
			Axes: []engine.SweepAxis{{Name: "n", Values: []int64{1}}}, Archs: []string{"nope"}}},
	}
	for _, tc := range cases {
		if _, err := a.Sweep(ctx, tc.spec); err == nil {
			t.Errorf("%s: sweep accepted", tc.name)
		}
	}
}

// TestSweepPerPointOverflow: a grid crossing the int64 wrap boundary
// fails exactly the overflowing cells with ErrOverflow while the rest
// of the sweep evaluates.
func TestSweepPerPointOverflow(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "dgemm.c", benchprogs.Dgemm)
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn:   "dgemm_bench",
		Kind: engine.KindStatic,
		Base: map[string]int64{"nrep": 1},
		// 64 is fine; 3e6 cubes past MaxInt64.
		Axes: []engine.SweepAxis{{Name: "n", Values: []int64{64, 3_000_000}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Err != nil {
		t.Fatalf("small point failed: %v", res.Points[0].Err)
	}
	if !errors.Is(res.Points[1].Err, model.ErrOverflow) {
		t.Fatalf("huge point err = %v, want ErrOverflow", res.Points[1].Err)
	}
}

func TestSweepKindsMatchQueries(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "dgemm.c", benchprogs.Dgemm)
	env := map[string]int64{"n": 24, "nrep": 2}
	exprEnv := expr.EnvFromInts(env)

	// Categories.
	res, err := a.Sweep(context.Background(), engine.SweepSpec{
		Fn: "dgemm_bench", Kind: engine.KindCategories, Points: []map[string]int64{env},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCats, err := a.TableIICounts("dgemm_bench", exprEnv)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Points[0].Categories) != fmt.Sprint(wantCats) {
		t.Fatalf("categories sweep %v != query %v", res.Points[0].Categories, wantCats)
	}

	// Roofline across two architectures.
	res, err = a.Sweep(context.Background(), engine.SweepSpec{
		Fn: "dgemm_bench", Kind: engine.KindRoofline,
		Points: []map[string]int64{env},
		Archs:  []string{"arya", "frankenstein"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("arch sweep points = %d, want 2", len(res.Points))
	}
	for i, name := range []string{"arya", "frankenstein"} {
		p := res.Points[i]
		if p.Err != nil {
			t.Fatalf("%s: %v", name, p.Err)
		}
		if p.Arch != name || p.Roofline == nil {
			t.Fatalf("point %d = %+v, want arch %s with roofline", i, p, name)
		}
	}
	if res.Points[0].Roofline.AttainableGFlops == res.Points[1].Roofline.AttainableGFlops {
		t.Fatal("distinct architectures produced identical rooflines")
	}

	// PBound.
	res, err = a.Sweep(context.Background(), engine.SweepSpec{
		Fn: "dgemm", Kind: engine.KindPBound, Points: []map[string]int64{env},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPB, err := a.PBoundCounts("dgemm", exprEnv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Err != nil || *res.Points[0].PBound != wantPB {
		t.Fatalf("pbound sweep %+v (err %v) != query %+v", res.Points[0].PBound, res.Points[0].Err, wantPB)
	}
}

// TestSweepCancellation: a context cancelled before (and during) a
// sweep yields per-point context errors, never a hang and never a
// spec-level failure.
func TestSweepCancellation(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "stream.c", benchprogs.Stream)
	sizes := make([]int64, 4096)
	for i := range sizes {
		sizes[i] = int64(i + 1)
	}
	spec := engine.SweepSpec{Fn: "stream", Kind: engine.KindStatic,
		Axes: []engine.SweepAxis{{Name: "n", Values: sizes}}}

	// Pre-cancelled: every point must carry the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := a.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if !errors.Is(res.Points[i].Err, context.Canceled) {
			t.Fatalf("point %d err = %v, want context.Canceled", i, res.Points[i].Err)
		}
	}

	// Cancelled mid-flight: every point must report either a result or
	// the context error — nothing silently empty.
	ctx, cancel = context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cancel() // races the sweep deliberately
	}()
	res, err = a.Sweep(ctx, spec)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		p := res.Points[i]
		if p.Err == nil && p.Metrics == nil {
			t.Fatalf("point %d has neither result nor error", i)
		}
		if p.Err != nil && !errors.Is(p.Err, context.Canceled) {
			t.Fatalf("point %d err = %v", i, p.Err)
		}
	}
}

// TestSweepCompiledOnce: the symbolic compilation is cached on the
// shared memo — two sweeps (and cross-name cache-hit views) compile
// the function once.
func TestSweepCompiledOnce(t *testing.T) {
	e := engine.New(engine.Options{})
	a := analyzeT(t, e, "stream.c", benchprogs.Stream)
	cm1, err := a.Compiled("stream", false)
	if err != nil {
		t.Fatal(err)
	}
	b := analyzeT(t, e, "copy.c", benchprogs.Stream) // same content, new name
	cm2, err := b.Compiled("stream", false)
	if err != nil {
		t.Fatal(err)
	}
	if cm1 != cm2 {
		t.Fatal("compilation not shared across cache-hit views")
	}
}
