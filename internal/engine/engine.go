// Package engine turns the one-shot core.Analyze pipeline into a
// concurrent, cache-backed analysis service. It provides three layers:
//
//   - a worker-pool batch API (AnalyzeAll) that analyzes many named
//     sources with bounded parallelism and per-item error collection,
//   - a content-hash pipeline cache with singleflight-style dedup, so
//     identical source text is parsed/compiled/decoded at most once no
//     matter how many callers race for it, and
//   - a memoized evaluation layer (Analysis) keyed on (function, env)
//     that makes repeated model queries O(map lookup).
//
// The underlying pipeline is immutable after construction and the model
// evaluator is pure, so one cached Analysis can safely serve any number
// of concurrent readers.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mira/internal/core"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of pipeline analyses running at once.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// Core is passed through to every core.Analyze call.
	Core core.Options
}

// Engine is a concurrent analysis service over the core pipeline.
type Engine struct {
	opts    Options
	workers int
	sem     chan struct{} // bounds concurrent core.Analyze work

	mu    sync.Mutex
	calls map[string]*call // content hash -> in-flight or completed

	hits   atomic.Int64
	misses atomic.Int64
}

// call is one singleflight slot: the first requester of a content hash
// does the work; everyone else blocks on done and shares the outcome.
type call struct {
	done chan struct{}
	name string // the first requester's program name
	a    *Analysis
	err  error
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		opts:    opts,
		workers: w,
		sem:     make(chan struct{}, w),
		calls:   map[string]*call{},
	}
}

// Workers reports the engine's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// cacheKey fingerprints the analysis inputs that determine the pipeline:
// the source text plus every core option that changes compilation. The
// program name is deliberately excluded — identical text under two names
// is the same program and shares one compile.
func (e *Engine) cacheKey(source string) string {
	h := sha256.New()
	h.Write([]byte(source))
	archName := "generic"
	if e.opts.Core.Arch != nil {
		archName = e.opts.Core.Arch.Name
	}
	fmt.Fprintf(h, "\x00opt=%t lenient=%t arch=%s",
		e.opts.Core.DisableOpt, e.opts.Core.Lenient, archName)
	return hex.EncodeToString(h.Sum(nil))
}

// Analyze runs the full pipeline on source, or returns the cached
// Analysis if the same content (under the same options) was already
// analyzed. Concurrent requests for the same content are deduplicated:
// exactly one does the work. Failures are cached too — the pipeline is
// deterministic, so retrying identical input cannot succeed.
func (e *Engine) Analyze(name, source string) (*Analysis, error) {
	key := e.cacheKey(source)
	e.mu.Lock()
	if c, ok := e.calls[key]; ok {
		e.mu.Unlock()
		<-c.done
		e.hits.Add(1)
		if c.err != nil && name != c.name {
			// The cached diagnostic cites the first requester's file
			// name; make the provenance visible to this caller.
			return nil, fmt.Errorf("identical content to %s: %w", c.name, c.err)
		}
		return c.a, c.err
	}
	c := &call{done: make(chan struct{}), name: name}
	e.calls[key] = c
	e.mu.Unlock()
	e.misses.Add(1)

	e.sem <- struct{}{}
	p, err := core.Analyze(name, source, e.opts.Core)
	<-e.sem

	if err != nil {
		c.err = err
	} else {
		c.a = NewAnalysis(p)
	}
	close(c.done)
	return c.a, c.err
}

// Job names one source text for batch analysis.
type Job struct {
	Name   string
	Source string
}

// Result is one batch outcome. Exactly one of Analysis/Err is set.
type Result struct {
	Job      Job
	Analysis *Analysis
	Err      error
}

// AnalyzeAll analyzes every job with bounded parallelism and returns
// results in job order. Errors are collected per item, never short-
// circuiting the batch; use Errors to aggregate them.
func (e *Engine) AnalyzeAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	ForEach(e.workers, len(jobs), func(i int) error {
		a, err := e.Analyze(jobs[i].Name, jobs[i].Source)
		results[i] = Result{Job: jobs[i], Analysis: a, Err: err}
		return nil
	})
	return results
}

// Errors joins the per-item failures of a batch, annotated with the job
// name; nil when every job succeeded.
func Errors(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Job.Name, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Stats reports pipeline-cache hit/miss counters. A hit is any Analyze
// call served from the content-hash cache (including waiting on an
// in-flight compile of the same content).
func (e *Engine) Stats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// ForEach runs fn(0..n-1) on at most workers goroutines and waits for
// started work to finish. The first failure stops new indices from being
// scheduled (in-flight items run to completion); the returned error is
// the lowest-index failure among the items that ran, so a given failing
// input reports the same error regardless of schedule.
func ForEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if errs[i] = fn(i); errs[i] != nil {
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
