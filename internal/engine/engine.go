// Package engine turns the one-shot core.Analyze pipeline into a
// concurrent, cache-backed analysis service. It provides four layers:
//
//   - a worker-pool batch API (AnalyzeAll) that analyzes many named
//     sources with bounded parallelism and per-item error collection,
//   - a content-hash pipeline cache with singleflight-style dedup, so
//     identical source text is parsed/compiled/decoded at most once no
//     matter how many callers race for it,
//   - a function-granular memo beneath it: every compiled unit and
//     generated model is kept under its function-content key
//     (core.FuncKeys), so analyzing an *edited* source recompiles only
//     the functions whose key changed and reuses everything else,
//   - a pluggable persistent CacheStore beneath the live caches: compiled
//     artifacts survive the process, and a warm restart decodes the
//     stored object file (or per-function fragments, for stores that
//     implement FuncStore) instead of recompiling (see cachestore for the
//     content-addressed on-disk implementation), and
//   - a memoized evaluation layer (Analysis) keyed on (function-content
//     key, env) that makes repeated model queries O(map lookup) — across
//     source versions, since the memo cells live under function keys.
//
// Every layer reports into an obs.Registry — cache hits and misses,
// per-stage latency, in-flight analyses, memo sizes — which mira-serve
// exposes at /metrics in OpenMetrics text format. Panics reachable
// through hostile inputs are converted to errors at this boundary so a
// resident server survives them.
//
// The underlying pipeline is immutable after construction and the model
// evaluator is pure, so one cached Analysis can safely serve any number
// of concurrent readers.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/arch"
	"mira/internal/core"
	"mira/internal/obs"
)

// CacheFormatVersion is the cache-key format version shared by every
// caching layer (see core.CacheFormatVersion): it is mixed into the
// engine's whole-source keys and into every function-content key, and
// the cachestore derives its on-disk magic from it. Entries written
// under another version read as clean misses everywhere.
const CacheFormatVersion = core.CacheFormatVersion

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of pipeline analyses running at once.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// Core is passed through to every core.Analyze call.
	Core core.Options
	// Registry resolves architecture names in queries, sweeps, and
	// reports. Nil means a fresh arch.NewRegistry() of the embedded
	// profiles; serving layers that load custom descriptions (-arch-dir)
	// inject the loaded registry here. The registry must not be mutated
	// after the engine is built.
	Registry *arch.Registry
	// Store, when non-nil, persists compiled artifacts across engines
	// (and, with a disk-backed store, across process restarts): a live-
	// cache miss consults the store and rebuilds from the stored object
	// file instead of recompiling.
	Store CacheStore
	// MaxResident bounds the number of entries (successes and cached
	// failures) the live cache keeps; zero means unlimited. When the
	// bound is exceeded, completed entries are evicted arbitrarily —
	// callers holding an evicted Analysis keep a fully usable (immutable)
	// object, and re-analyzing the same source recompiles or restores
	// from the Store. A network-facing service must set this: untrusted
	// clients can otherwise grow the cache without limit.
	MaxResident int
	// MaxResidentFuncs bounds the number of per-function memo cells (the
	// compiled units, generated models, and evaluation memos kept under
	// function-content keys); zero means unlimited. Like MaxResident,
	// victims are arbitrary and eviction is safe: an evicted function's
	// next appearance recompiles (or restores from a FuncStore), and any
	// analysis still holding the cell keeps a fully usable object.
	MaxResidentFuncs int
	// Obs receives the engine's metrics (cache hit/miss counters,
	// per-stage latency, in-flight and memo-size gauges). Nil means a
	// private registry, reachable via Engine.Obs. A registry can host at
	// most one engine: a second New with the same registry panics on the
	// duplicate metric names.
	Obs *obs.Registry
}

// Engine is a concurrent analysis service over the core pipeline.
type Engine struct {
	opts    Options
	workers int
	sem     chan struct{} // bounds concurrent core.Analyze work
	store   CacheStore
	reg     *obs.Registry
	met     *metricsSet

	// registry resolves architecture names; archKey is the content key
	// of the engine's own architecture (Options.Core.Arch), precomputed
	// once — it is mixed into every whole-source cache key.
	registry *arch.Registry
	archKey  string

	mu sync.Mutex
	// content hash -> in-flight or completed
	//lint:guarded-by mu
	calls map[string]*call

	// funcs is the function-granular memo: one cell per function-content
	// key, holding the compiled unit + model artifact and the evaluation
	// memos, shared by every source version containing that function.
	funcMu sync.Mutex
	funcs  map[string]*funcEntry //lint:guarded-by funcMu

	hits   atomic.Int64
	misses atomic.Int64
}

// call is one singleflight slot: the first requester of a content hash
// does the work; everyone else blocks on done and shares the outcome.
type call struct {
	done chan struct{}
	name string // the first requester's program name
	a    *Analysis
	err  error
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	registry := opts.Registry
	if registry == nil {
		registry = arch.NewRegistry()
	}
	e := &Engine{
		opts:     opts,
		workers:  w,
		sem:      make(chan struct{}, w),
		store:    opts.Store,
		reg:      reg,
		met:      newMetricsSet(reg),
		registry: registry,
		archKey:  arch.KeyOf(opts.Core.Arch),
		calls:    map[string]*call{},
		funcs:    map[string]*funcEntry{},
	}
	registerEngineGauges(reg, e)
	return e
}

// Workers reports the engine's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// Obs returns the registry the engine's metrics live in (the one passed
// via Options.Obs, or the engine's private registry).
func (e *Engine) Obs() *obs.Registry { return e.reg }

// Registry returns the architecture registry queries resolve names
// against (the one passed via Options.Registry, or the builtin one).
func (e *Engine) Registry() *arch.Registry { return e.registry }

// cacheKey fingerprints the analysis inputs that determine the pipeline:
// the cache format version, the source text, and every core option that
// changes compilation. The architecture enters as its *content key*, not
// its name, so two descriptions differing in a single parameter can
// never share an entry — locally, on disk, or through a peer tier. The
// program name is deliberately excluded — identical text under two names
// is the same program and shares one compile. The version term means a
// format bump turns every key written under the old scheme into a clean
// miss.
func (e *Engine) cacheKey(source string) string {
	h := sha256.New()
	h.Write([]byte(source))
	fmt.Fprintf(h, "\x00v=%d opt=%t lenient=%t arch=%s",
		CacheFormatVersion, e.opts.Core.DisableOpt, e.opts.Core.Lenient, e.archKey)
	return hex.EncodeToString(h.Sum(nil))
}

// funcCell returns (creating if needed) the engine's memo cell for one
// function-content key. A freshly created cell may immediately become an
// eviction victim under MaxResidentFuncs; the returned pointer stays
// valid and usable either way — residency only affects future reuse.
func (e *Engine) funcCell(key string) *funcEntry {
	e.funcMu.Lock()
	defer e.funcMu.Unlock()
	fe := e.funcs[key]
	if fe == nil {
		fe = newFuncEntry()
		e.funcs[key] = fe
		e.evictFuncsLocked()
	}
	return fe
}

// lookupFuncArtifact serves core.AnalyzeIncrementalContext's per-function
// cache probe: the live memo first, then a FuncStore-capable persistent
// store (decoding the stored unit; a corrupt fragment counts as a store
// error and degrades to a recompile of that one function).
func (e *Engine) lookupFuncArtifact(key string) (*core.FuncArtifact, bool) {
	e.funcMu.Lock()
	fe := e.funcs[key]
	e.funcMu.Unlock()
	if fe != nil {
		if art := fe.artifact(); art != nil && art.Unit != nil {
			return art, true
		}
	}
	if fs, ok := e.store.(FuncStore); ok {
		if ent, ok := fs.LoadFunc(key); ok && ent != nil {
			u, err := core.DecodeUnit(ent.Unit)
			if err == nil {
				return &core.FuncArtifact{Key: key, Name: ent.Name, Unit: u}, true
			}
			e.met.storeErrors.Inc()
		}
	}
	return nil, false
}

// adoptArtifacts installs an incremental build's complete artifact set
// into the function memo (model-carrying artifacts never downgrade) and
// persists the newly compiled units to a FuncStore-capable store.
func (e *Engine) adoptArtifacts(res *core.IncrementalResult) {
	compiled := make(map[string]bool, len(res.Delta.Compiled))
	for _, q := range res.Delta.Compiled {
		compiled[q] = true
	}
	e.funcMu.Lock()
	for _, art := range res.Artifacts {
		fe := e.funcs[art.Key]
		if fe == nil {
			fe = newFuncEntry()
			e.funcs[art.Key] = fe
		}
		fe.adopt(art)
	}
	e.evictFuncsLocked()
	e.funcMu.Unlock()
	fs, ok := e.store.(FuncStore)
	if !ok {
		return
	}
	for _, art := range res.Artifacts {
		if !compiled[art.Name] {
			continue
		}
		if err := fs.StoreFunc(art.Key, &FuncEntry{Name: art.Name, Unit: core.EncodeUnit(art.Unit)}); err != nil {
			e.met.storeErrors.Inc()
		}
	}
}

// evictFuncsLocked trims the function memo to Options.MaxResidentFuncs
// (arbitrary victims, same contract as evictLocked). Callers must hold
// e.funcMu.
func (e *Engine) evictFuncsLocked() {
	max := e.opts.MaxResidentFuncs
	if max <= 0 || len(e.funcs) <= max {
		return
	}
	for k := range e.funcs {
		if len(e.funcs) <= max {
			return
		}
		delete(e.funcs, k)
		e.met.evictions.Inc()
	}
}

// funcMemoStats reports the number of resident function cells and the
// total memoized evaluation entries across them. Cells are snapshotted
// under funcMu and walked outside it, so a scrape never blocks a build.
func (e *Engine) funcMemoStats() (cells, entries int) {
	e.funcMu.Lock()
	list := make([]*funcEntry, 0, len(e.funcs))
	//lint:ignore mira/detorder snapshot order is irrelevant: entries are summed, never emitted
	for _, fe := range e.funcs {
		list = append(list, fe)
	}
	e.funcMu.Unlock()
	for _, fe := range list {
		entries += fe.memoLen()
	}
	return len(list), entries
}

// AnalyzeCtx runs the full pipeline on source, or returns the cached
// Analysis if the same content (under the same options) was already
// analyzed. Concurrent requests for the same content are deduplicated:
// exactly one does the work. On a live-cache miss, a configured
// CacheStore is consulted first: a stored artifact is decoded and the
// model regenerated, skipping the compiler entirely. Failures are cached
// too — the pipeline is deterministic, so retrying identical input
// cannot succeed.
//
// Cancellation is honored at every wait point: a
// caller abandoning a duplicate-key wait returns ctx.Err() immediately
// and leaks nothing (the owning compile continues and lands in the cache
// for future requesters); a caller cancelled while queued for a worker
// slot withdraws its cache slot; and the build itself stops at the next
// pipeline stage boundary. Cancellation outcomes are never cached —
// retrying the same source with a live context recompiles — though
// waiters sharing a singleflight slot whose owner was cancelled do share
// that cancellation error for the one round.
func (e *Engine) AnalyzeCtx(ctx context.Context, name, source string) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := e.cacheKey(source)
	e.mu.Lock()
	if c, ok := e.calls[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		e.hits.Add(1)
		e.met.pipeHits.Inc()
		a, err := c.view(name)
		if err != nil {
			return nil, err
		}
		// A cache hit ran no pipeline: the build's reuse delta belongs to
		// the requester that built the entry, not to this caller.
		return a.withoutDelta(), nil
	}
	c := &call{done: make(chan struct{}), name: name}
	e.calls[key] = c
	e.evictLocked()
	e.mu.Unlock()
	e.misses.Add(1)
	e.met.pipeMisses.Inc()

	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		c.err = ctx.Err()
		e.uncache(key, c)
		close(c.done)
		return nil, c.err
	}
	e.met.inflight.Inc()
	c.a, c.err = e.build(ctx, name, source, key)
	e.met.inflight.Dec()
	<-e.sem

	if isCancellation(c.err) {
		e.uncache(key, c)
	}
	close(c.done)
	return c.a, c.err
}

// view finalizes a completed call for a caller named name. Cross-name
// hits surface the caller's own name on both paths: errors are annotated
// with the first requester's provenance, and successes return an
// Analysis view whose Pipeline carries the caller's name while sharing
// the first requester's memo layer.
func (c *call) view(name string) (*Analysis, error) {
	if c.err != nil {
		if name != c.name {
			// The cached diagnostic cites the first requester's file
			// name; make the provenance visible to this caller.
			return nil, fmt.Errorf("identical content to %s: %w", c.name, c.err)
		}
		return nil, c.err
	}
	return c.a.withName(name), nil
}

// uncache removes a call that completed with a cancellation — an outcome
// of the caller's context, not of the input, so it must not poison the
// content-hash cache for future requesters.
func (e *Engine) uncache(key string, c *call) {
	e.mu.Lock()
	if e.calls[key] == c {
		delete(e.calls, key)
	}
	e.mu.Unlock()
}

// isCancellation reports whether err is a context cancellation or
// deadline expiry (possibly wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// build produces the Analysis for one live-cache miss: try the
// persistent store's whole-source artifact (warm path: decode + model
// regeneration, no compiler), fall back to the function-granular
// incremental pipeline — which consults the function memo and any
// FuncStore so only changed functions recompile — and persist the fresh
// artifacts (whole-source and per-function) for the next process. All
// paths are panic-guarded — expr constructor contract violations
// reachable through hostile source must surface as errors at this
// boundary, not kill a resident server.
func (e *Engine) build(ctx context.Context, name, source, key string) (*Analysis, error) {
	if e.store != nil {
		if ent, ok := e.store.Load(key); ok {
			// Trust nothing: the entry must be for this exact source.
			if ent.Source == source {
				start := time.Now()
				p, err := safely("rebuild", func() (*core.Pipeline, error) {
					return core.AnalyzeFromObjectContext(ctx, name, source, ent.Object, e.opts.Core)
				})
				if isCancellation(err) {
					return nil, err
				}
				if err == nil {
					e.met.rebuild.Observe(time.Since(start).Seconds())
					e.met.storeHits.Inc()
					return e.newAnalysis(p, key), nil
				}
			}
			// Corrupt, stale, or mismatched entry: degrade to recompile.
			e.met.storeErrors.Inc()
		} else {
			e.met.storeMisses.Inc()
		}
	}
	start := time.Now()
	res, err := safely("analysis", func() (*core.IncrementalResult, error) {
		return core.AnalyzeIncrementalContext(ctx, name, source, e.opts.Core, e.lookupFuncArtifact)
	})
	if err != nil {
		return nil, err
	}
	e.met.analyze.Observe(time.Since(start).Seconds())
	e.met.incrHits.Add(int64(len(res.Delta.Reused)))
	e.met.incrMisses.Add(int64(len(res.Delta.Compiled)))
	e.adoptArtifacts(res)
	if e.store != nil {
		if object, encErr := res.Pipeline.EncodeObject(); encErr == nil {
			if err := e.store.Store(key, &Entry{Name: name, Source: source, Object: object}); err != nil {
				e.met.storeErrors.Inc()
			}
		} else {
			e.met.storeErrors.Inc()
		}
	}
	a := e.newAnalysis(res.Pipeline, key)
	a.delta = &res.Delta
	return a, nil
}

// safely converts a panic from fn into an error. The expr package's
// constructors enforce contracts by panicking (zero floor-div divisors,
// non-positive loop steps); hostile inputs to a resident service can
// reach them, and the engine boundary is where they become 4xx material
// instead of a dead process.
func safely[T any](what string, fn func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: %s panicked: %v", what, r)
		}
	}()
	return fn()
}

// evictLocked trims the live cache to Options.MaxResident by deleting
// completed entries (map order, i.e. arbitrary victims). In-flight calls
// are never touched — their waiters hold the call pointer and the
// singleflight contract must hold. Callers must hold e.mu.
func (e *Engine) evictLocked() {
	max := e.opts.MaxResident
	if max <= 0 || len(e.calls) <= max {
		return
	}
	for k, c := range e.calls {
		if len(e.calls) <= max {
			return
		}
		select {
		case <-c.done:
			delete(e.calls, k)
			e.met.evictions.Inc()
		default:
		}
	}
}

// Key returns the content-hash cache key Analyze would use for source —
// the handle mira-serve hands to clients so /eval can reference an
// already-analyzed program without resending its text.
func (e *Engine) Key(source string) string { return e.cacheKey(source) }

// Lookup returns the completed Analysis cached under key, if any.
// In-flight analyses are not waited for.
func (e *Engine) Lookup(key string) (*Analysis, bool) {
	e.mu.Lock()
	c, ok := e.calls[key]
	e.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-c.done:
		return c.a, c.a != nil
	default:
		return nil, false
	}
}

// Job names one source text for batch analysis.
type Job struct {
	Name   string
	Source string
}

// Result is one batch outcome. Exactly one of Analysis/Err is set.
type Result struct {
	Job      Job
	Analysis *Analysis
	Err      error
}

// AnalyzeAll analyzes every job with bounded parallelism and returns
// results in job order. Errors are collected per item, never short-
// circuiting the batch; use Errors to aggregate them. Cancelling ctx
// makes every not-yet-analyzed job complete immediately with a per-item
// ctx.Err().
func (e *Engine) AnalyzeAll(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	done := make([]bool, len(jobs))
	// The worker fn never fails (per-item errors land in results[i]);
	// cancellation is detected via done[] below, not the return value.
	_ = ForEachCtx(ctx, e.workers, len(jobs), func(i int) error {
		done[i] = true
		a, err := e.AnalyzeCtx(ctx, jobs[i].Name, jobs[i].Source)
		results[i] = Result{Job: jobs[i], Analysis: a, Err: err}
		return nil
	})
	// Cancellation stops the sweep from scheduling; jobs it never
	// reached still report the cancellation per item.
	for i := range results {
		if !done[i] {
			results[i] = Result{Job: jobs[i], Err: ctx.Err()}
		}
	}
	return results
}

// Errors joins the per-item failures of a batch, annotated with the job
// name; nil when every job succeeded.
func Errors(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Job.Name, r.Err))
		}
	}
	return errors.Join(errs...)
}

// Stats reports pipeline-cache hit/miss counters. A hit is any Analyze
// call served from the content-hash cache (including waiting on an
// in-flight compile of the same content).
func (e *Engine) Stats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// ForEachCtx runs fn(0..n-1) on at most workers goroutines and waits for
// started work to finish. The first failure stops new indices from being
// scheduled (in-flight items run to completion); the returned error is
// the lowest-index failure among the items that ran, so a given failing
// input reports the same error regardless of schedule. Once ctx is done,
// no new index is scheduled and the sweep reports ctx.Err() like any
// other lowest-index failure.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	run := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if errs[i] = run(i); errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !stop.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if errs[i] = run(i); errs[i] != nil {
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
