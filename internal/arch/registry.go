package arch

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one registered description with its content key.
type Entry struct {
	Name string
	Key  string
	Desc *Description
}

// Registry resolves architecture names to descriptions. It is seeded
// with the embedded machine profiles (plus their historical aliases)
// and can grow with file-loaded descriptions via Register/LoadDir.
// A registry is immutable after its construction phase: build it, load
// any description directories, then inject it (engine.Options.Registry)
// and treat it as read-only — concurrent lookups are then safe without
// locks, matching the repo's no-mutable-globals invariant.
type Registry struct {
	order   []string // registration order, builtins first
	entries map[string]Entry
	aliases map[string]string
}

// builtins constructs the embedded profiles, in listing order. Every
// call builds fresh values, so registry entries are never shared with a
// caller that might mutate the result of Arya()/Frankenstein()/Generic().
func builtins() []*Description {
	return []*Description{
		Arya(),
		Frankenstein(),
		Generic(),
		Skylake(),
		Icelake(),
		Zen2(),
		Graviton2(),
		Graviton3(),
		KNL(),
		Volta(),
	}
}

// NewRegistry builds a registry seeded with the embedded profiles and
// the historical microarchitecture aliases ("haswell" for arya,
// "nehalem" for frankenstein; the empty name resolves to generic).
func NewRegistry() *Registry {
	r := &Registry{
		entries: map[string]Entry{},
		aliases: map[string]string{
			"haswell": "arya",
			"nehalem": "frankenstein",
			"":        "generic",
		},
	}
	for _, d := range builtins() {
		if err := r.Register(d); err != nil {
			// The embedded profiles validate by construction (and are
			// pinned by tests); a failure here is a programming error.
			panic(fmt.Sprintf("arch: builtin %s: %v", d.Name, err))
		}
	}
	return r
}

// Register validates d, computes its content key, and adds it under its
// name. Names are unique: registering over an existing entry (builtin
// or loaded) is an error, so a custom description can never silently
// shadow an embedded profile.
func (r *Registry) Register(d *Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, ok := r.entries[d.Name]; ok {
		return fmt.Errorf("arch: %q is already registered", d.Name)
	}
	if _, ok := r.aliases[d.Name]; ok {
		return fmt.Errorf("arch: %q is a registered alias", d.Name)
	}
	r.entries[d.Name] = Entry{Name: d.Name, Key: d.ContentKey(), Desc: d}
	r.order = append(r.order, d.Name)
	return nil
}

// LoadDir registers every *.json description in dir (sorted filename
// order, so registration is deterministic) and returns how many it
// loaded. Any unparsable, invalid, or name-colliding file fails the
// whole load: a serving process should refuse to start on a bad
// description rather than silently drop it.
func (r *Registry) LoadDir(dir string) (int, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("arch: %w", err)
	}
	n := 0
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, f.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("arch: %w", err)
		}
		d, err := FromJSON(data)
		if err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		if err := r.Register(d); err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		n++
	}
	return n, nil
}

// LookupEntry resolves a name (or alias) to its entry — description
// plus content key, the pair every caching layer needs together.
func (r *Registry) LookupEntry(name string) (Entry, error) {
	if canonical, ok := r.aliases[name]; ok {
		name = canonical
	}
	if e, ok := r.entries[name]; ok {
		return e, nil
	}
	return Entry{}, fmt.Errorf("arch: unknown architecture %q (builtins: %s)",
		name, strings.Join(r.Names(), ", "))
}

// Lookup resolves a name (or alias) to its description.
func (r *Registry) Lookup(name string) (*Description, error) {
	e, err := r.LookupEntry(name)
	if err != nil {
		return nil, err
	}
	return e.Desc, nil
}

// Resolve accepts either a registered name or a path to a JSON
// description file — the form CLI -arch flags take. A path is detected
// by a .json suffix or a path separator; the loaded description is
// validated but not registered.
func (r *Registry) Resolve(nameOrPath string) (*Description, error) {
	if strings.HasSuffix(nameOrPath, ".json") || strings.ContainsRune(nameOrPath, os.PathSeparator) {
		data, err := os.ReadFile(nameOrPath)
		if err != nil {
			return nil, fmt.Errorf("arch: %w", err)
		}
		return FromJSON(data)
	}
	return r.Lookup(nameOrPath)
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	sort.Strings(out)
	return out
}

// Entries returns every registered entry, sorted by name.
func (r *Registry) Entries() []Entry {
	out := make([]Entry, 0, len(r.entries))
	for _, name := range r.Names() {
		out = append(out, r.entries[name])
	}
	return out
}

// Len reports how many descriptions are registered.
func (r *Registry) Len() int { return len(r.entries) }

// Resolve is Registry.Resolve over a fresh builtin registry — the
// one-shot helper CLIs use for a -arch flag taking a name or a JSON
// file path.
func Resolve(nameOrPath string) (*Description, error) {
	return NewRegistry().Resolve(nameOrPath)
}

// The embedded profiles beyond the paper's two machines and the neutral
// default. Core counts, clocks, per-core FP issue widths, and bandwidth
// are the published figures for a representative SKU of each
// microarchitecture class, rounded to the paper's precision; all share
// the description file's 64-category x86 taxonomy (the reproduction's
// ISA), which is what the model generator buckets against regardless of
// the physical ISA the numbers came from.

// Skylake describes a Skylake-SP-class node: two 24-core Xeon Platinum
// 8160 at 2.1 GHz with AVX-512 (8 doubles, 32 FLOPs/cycle/core) and six
// DDR4-2666 channels per socket. Like Haswell, no FP_INS counter.
func Skylake() *Description {
	return builtin("skylake", 48, 2.1, 8, 32, 256, false)
}

// Icelake describes an Ice Lake-SP-class node: two 32-core Xeon
// Platinum 8358 at 2.6 GHz, AVX-512, eight DDR4-3200 channels per
// socket.
func Icelake() *Description {
	return builtin("icelake", 64, 2.6, 8, 32, 409.6, false)
}

// Zen2 describes a Zen-class node: a 64-core EPYC 7702 (Rome) at
// 2.25 GHz base with AVX2 (4 doubles, 16 FLOPs/cycle/core) and eight
// DDR4-3200 channels. AMD exposes retired-FLOP counters.
func Zen2() *Description {
	return builtin("zen2", 64, 2.25, 4, 16, 204.8, true)
}

// Graviton2 describes an AWS Graviton2 (Neoverse N1) node: 64 cores at
// 2.5 GHz, two 128-bit NEON FMA pipes (2 doubles, 8 FLOPs/cycle/core),
// eight DDR4-3200 channels.
func Graviton2() *Description {
	return builtin("graviton2", 64, 2.5, 2, 8, 204.8, false)
}

// Graviton3 describes an AWS Graviton3 (Neoverse V1) node: 64 cores at
// 2.6 GHz, 256-bit SVE (4 doubles, 16 FLOPs/cycle/core), DDR5-4800.
func Graviton3() *Description {
	return builtin("graviton3", 64, 2.6, 4, 16, 307.2, false)
}

// KNL describes a Knights Landing node: a 68-core Xeon Phi 7250 at
// 1.4 GHz, dual AVX-512 units, with MCDRAM as the roofline bandwidth.
func KNL() *Description {
	return builtin("knl", 68, 1.4, 8, 32, 490, false)
}

// Volta describes a GPU-roofline-class accelerator: a V100's 80 SMs
// ("cores") at 1.53 GHz, 32 FP64 lanes per SM issuing an FMA each cycle
// (64 FLOPs/cycle/SM), HBM2 bandwidth, and a 128-byte memory
// transaction size. The roofline machinery only needs peak and
// bandwidth, so a GPU fits the same description schema.
func Volta() *Description {
	d := builtin("volta", 80, 1.53, 32, 64, 900, false)
	d.CacheLineBytes = 128
	return d
}
