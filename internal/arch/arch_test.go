package arch

import (
	"errors"
	"testing"

	"mira/internal/ir"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, d := range builtins() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if len(d.Categories) != 64 {
			t.Errorf("%s: %d categories, want 64 (the paper's count)", d.Name, len(d.Categories))
		}
	}
}

func TestHaswellHasNoFPCounters(t *testing.T) {
	if Arya().HasFPCounters {
		t.Error("arya (Haswell) must lack FP counters (paper Sec. IV-D1)")
	}
	if !Frankenstein().HasFPCounters {
		t.Error("frankenstein (Nehalem) must have FP counters")
	}
}

func TestLookup(t *testing.T) {
	for name, want := range map[string]string{
		"arya": "arya", "haswell": "arya",
		"frankenstein": "frankenstein", "nehalem": "frankenstein",
		"generic": "generic", "": "generic",
	} {
		d, err := Lookup(name)
		if err != nil || d.Name != want {
			t.Errorf("Lookup(%q) = %v/%v, want %s", name, d, err, want)
		}
	}
	if _, err := Lookup("vax"); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := Frankenstein()
	data, err := d.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.Cores != d.Cores || len(d2.Categories) != 64 {
		t.Errorf("round trip lost data: %+v", d2)
	}
	if d2.FineCategory(ir.ADDSD) != "SSE2 packed arithmetic" {
		t.Errorf("fine category lost: %s", d2.FineCategory(ir.ADDSD))
	}
}

func TestValidationErrors(t *testing.T) {
	d := Generic()
	d.Name = ""
	if err := d.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	d = Generic()
	d.Cores = 0
	if err := d.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	d = Generic()
	d.OpcodeCategories["addsd"] = "No Such Category"
	if err := d.Validate(); err == nil {
		t.Error("dangling category accepted")
	}
	d = Generic()
	d.Categories = append(d.Categories, d.Categories[0])
	if err := d.Validate(); err == nil {
		t.Error("duplicate category accepted")
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

// TestValidateRejectsNonPositive pins the positivity rules: the
// roofline divides by bandwidth, peak issue width, and vector width, so
// a zero or negative parameter must fail validation with ErrNonPositive
// instead of producing NaN/Inf predictions.
func TestValidateRejectsNonPositive(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Description)
	}{
		{"zero cores", func(d *Description) { d.Cores = 0 }},
		{"negative cores", func(d *Description) { d.Cores = -4 }},
		{"zero clock", func(d *Description) { d.ClockGHz = 0 }},
		{"negative clock", func(d *Description) { d.ClockGHz = -2.4 }},
		{"zero vector width", func(d *Description) { d.VectorWidthDoubles = 0 }},
		{"negative vector width", func(d *Description) { d.VectorWidthDoubles = -2 }},
		{"zero peak flops", func(d *Description) { d.PeakFlopsPerCyclePerCore = 0 }},
		{"negative peak flops", func(d *Description) { d.PeakFlopsPerCyclePerCore = -8 }},
		{"zero bandwidth", func(d *Description) { d.MemBandwidthGBs = 0 }},
		{"negative bandwidth", func(d *Description) { d.MemBandwidthGBs = -51.2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Generic()
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !errors.Is(err, ErrNonPositive) {
				t.Errorf("error %v is not ErrNonPositive", err)
			}
		})
	}
}

func TestFineCategoryCoversAllOpcodes(t *testing.T) {
	d := Generic()
	known := map[string]bool{}
	for _, c := range d.Categories {
		known[c] = true
	}
	for op := 0; op < ir.OpCount(); op++ {
		cat := d.FineCategory(ir.Op(op))
		if !known[cat] {
			t.Errorf("opcode %s maps to non-listed category %q", ir.Op(op).Mnemonic(), cat)
		}
	}
}

func TestTableIIAggregation(t *testing.T) {
	cases := map[ir.Op]ir.Category{
		ir.ADDSD:    ir.CatSSEArith,
		ir.MOVSDLD:  ir.CatSSEMove,
		ir.UCOMISD:  ir.CatMisc, // compare folds into Misc for Table II
		ir.CVTSI2SD: ir.CatMisc,
		ir.MOVSXD:   ir.Cat64Bit,
		ir.ADD:      ir.CatIntArith,
		ir.CALL:     ir.CatIntControl,
		ir.MOVRR:    ir.CatIntData,
	}
	for op, want := range cases {
		if got := TableIICategory(op); got != want {
			t.Errorf("TableIICategory(%s) = %s, want %s", op.Mnemonic(), got, want)
		}
	}
}

func TestPeakGFlops(t *testing.T) {
	d := Frankenstein() // 8 cores * 2.4 GHz * 4 flops/cycle
	if got := d.PeakGFlops(); got != 8*2.4*4 {
		t.Errorf("peak = %g", got)
	}
}
