// Package arch implements Mira's architecture description file
// (paper Sec. III-C6): a user-editable document that names the machine,
// its core/cache/vector parameters, and an instruction categorization —
// the paper divides the x86 instruction set into 64 categories — that the
// model generator uses to bucket per-function instruction counts.
//
// Descriptions round-trip through JSON so users can supply their own.
// The embedded Registry carries CPU- and accelerator-class profiles; two
// of them mirror the paper's evaluation machines: "arya" (Haswell-like,
// which notably lacks FP_INS hardware counters — Sec. IV-D1 uses this to
// argue static analysis is sometimes the only option) and "frankenstein"
// (Nehalem-like, with FP counters).
//
// Like sources, descriptions are content-addressed: ContentKey hashes
// the canonical JSON encoding, and every caching layer that stores an
// architecture-dependent result mixes that key in, so two descriptions
// differing in a single parameter can never share a cached result.
package arch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"mira/internal/ir"
)

// Description is an architecture description file.
type Description struct {
	Name               string  `json:"name"`
	Cores              int     `json:"cores"`
	ClockGHz           float64 `json:"clock_ghz"`
	CacheLineBytes     int     `json:"cache_line_bytes"`
	VectorWidthDoubles int     `json:"vector_width_doubles"`
	// PeakFlopsPerCyclePerCore is the per-core FP issue width.
	PeakFlopsPerCyclePerCore float64 `json:"peak_flops_per_cycle_per_core"`
	MemBandwidthGBs          float64 `json:"mem_bandwidth_gbs"`
	// HasFPCounters reports whether PAPI-style FP_INS hardware counters
	// exist (false on Haswell).
	HasFPCounters bool `json:"has_fp_counters"`
	// Categories is the fine-grained instruction category list (the
	// paper's 64 x86 categories).
	Categories []string `json:"categories"`
	// OpcodeCategories maps opcode mnemonics (plus access-kind suffixes
	// for mov variants) to a fine category name.
	OpcodeCategories map[string]string `json:"opcode_categories"`
}

// ErrNonPositive is the validation error for machine parameters that
// must be strictly positive: the roofline math divides by bandwidth,
// peak issue width, and vector width, so a zero or negative value would
// turn a description typo into NaN/Inf predictions downstream.
var ErrNonPositive = errors.New("machine parameter must be positive")

// Validate checks internal consistency.
func (d *Description) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("arch: description needs a name")
	}
	for _, p := range []struct {
		field string
		ok    bool
	}{
		{"cores", d.Cores > 0},
		{"clock_ghz", d.ClockGHz > 0},
		{"vector_width_doubles", d.VectorWidthDoubles > 0},
		{"peak_flops_per_cycle_per_core", d.PeakFlopsPerCyclePerCore > 0},
		{"mem_bandwidth_gbs", d.MemBandwidthGBs > 0},
	} {
		if !p.ok {
			return fmt.Errorf("arch %s: %s: %w", d.Name, p.field, ErrNonPositive)
		}
	}
	known := map[string]bool{}
	for _, c := range d.Categories {
		if known[c] {
			return fmt.Errorf("arch %s: duplicate category %q", d.Name, c)
		}
		known[c] = true
	}
	for op, cat := range d.OpcodeCategories {
		if !known[cat] {
			return fmt.Errorf("arch %s: opcode %q maps to unknown category %q", d.Name, op, cat)
		}
	}
	return nil
}

// PeakGFlops returns the machine peak in GFLOP/s.
func (d *Description) PeakGFlops() float64 {
	return float64(d.Cores) * d.ClockGHz * d.PeakFlopsPerCyclePerCore
}

// opKey renders the lookup key for an opcode: mnemonics are shared between
// load/store/reg-reg variants, so the key carries a variant suffix.
func opKey(op ir.Op) string {
	switch op {
	case ir.MOVLD:
		return "mov.load"
	case ir.MOVST:
		return "mov.store"
	case ir.MOVRI:
		return "mov.imm"
	case ir.MOVSDLD:
		return "movsd.load"
	case ir.MOVSDST:
		return "movsd.store"
	case ir.MOVSDI:
		return "movsd.imm"
	case ir.MOVAPDLD:
		return "movapd.load"
	case ir.MOVAPDST:
		return "movapd.store"
	case ir.ARGI, ir.GETRETI:
		return "mov.reg"
	case ir.ARGF, ir.GETRETF:
		return "movsd.reg"
	case ir.MOVRR:
		return "mov.reg"
	case ir.MOVSDRR:
		return "movsd.reg"
	case ir.ALLOC:
		return "sub.rsp"
	case ir.RETI, ir.RETF, ir.RETV:
		return "ret"
	case ir.IREM:
		return "idiv"
	}
	return op.Mnemonic()
}

// FineCategory returns the description's fine category for an opcode,
// falling back to the coarse ir category name.
func (d *Description) FineCategory(op ir.Op) string {
	if c, ok := d.OpcodeCategories[opKey(op)]; ok {
		return c
	}
	return op.Cat().String()
}

// TableIICategory maps an opcode to one of the seven aggregate rows the
// paper's Table II reports.
func TableIICategory(op ir.Op) ir.Category {
	switch op.Cat() {
	case ir.CatSSECompare, ir.CatSSEConvert, ir.CatMisc:
		return ir.CatMisc
	default:
		return op.Cat()
	}
}

// ToJSON round-trips through the plain struct.
func (d *Description) ToJSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// ContentKey returns the description's content address: the SHA-256 of
// its canonical JSON encoding (compact, struct fields in declaration
// order, map keys sorted — encoding/json guarantees both), hex-encoded.
// Two descriptions differing in any parameter have different keys;
// caching layers mix this key into architecture-dependent cache and
// memo keys exactly as source text is content-addressed.
func (d *Description) ContentKey() string {
	data, err := json.Marshal(d)
	if err != nil {
		// Description is plain data (strings, numbers, bools, a string
		// map); Marshal cannot fail on it.
		panic(fmt.Sprintf("arch: marshal description: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// KeyOf is ContentKey tolerating nil: analysis layers treat a nil
// description as Generic (see core.Options), and their cache keys must
// agree with that default.
func KeyOf(d *Description) string {
	if d == nil {
		d = Generic()
	}
	return d.ContentKey()
}

// FromJSON parses and validates a description.
func FromJSON(data []byte) (*Description, error) {
	var d Description
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("arch: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Lookup returns a built-in description by name (or alias), backed by a
// fresh registry of the embedded profiles — so the returned value is
// the caller's to mutate, and the unknown-name error derives its
// builtin list from the registry instead of a hand-maintained string.
func Lookup(name string) (*Description, error) {
	return NewRegistry().Lookup(name)
}

// x86Categories is the fine-grained 64-category partition of the x86
// instruction set the paper's description file defines, following the
// Intel SDM instruction-group taxonomy.
var x86Categories = []string{
	// General purpose: data transfer.
	"GP data transfer: mov",
	"GP data transfer: cmov",
	"GP data transfer: xchg",
	"GP data transfer: push/pop",
	"GP data transfer: sign/zero extend",
	"GP data transfer: address (lea)",
	// General purpose: arithmetic.
	"GP binary arithmetic: add/sub",
	"GP binary arithmetic: inc/dec",
	"GP binary arithmetic: mul",
	"GP binary arithmetic: div",
	"GP binary arithmetic: neg",
	"GP binary arithmetic: cmp",
	"GP decimal arithmetic",
	// General purpose: logical / shift / bit.
	"GP logical: and/or/xor/not",
	"GP shift/rotate",
	"GP bit/byte: test",
	"GP bit/byte: set/bt",
	// General purpose: control.
	"GP control transfer: jmp",
	"GP control transfer: jcc",
	"GP control transfer: call/ret",
	"GP control transfer: loop",
	"GP control transfer: int/iret",
	// String / IO / flag / segment / misc GP.
	"GP string move/compare",
	"GP io",
	"GP flag control",
	"GP segment register",
	"GP misc: nop/cpuid",
	"GP misc: conversion (cdq/cbw)",
	// x87 FPU.
	"x87 data transfer",
	"x87 basic arithmetic",
	"x87 comparison",
	"x87 transcendental",
	"x87 load constant",
	"x87 control",
	// MMX.
	"MMX data transfer",
	"MMX conversion",
	"MMX packed arithmetic",
	"MMX comparison",
	"MMX logical",
	"MMX shift/rotate",
	// SSE (single precision).
	"SSE data transfer",
	"SSE packed arithmetic",
	"SSE comparison",
	"SSE logical",
	"SSE shuffle/unpack",
	"SSE conversion",
	// SSE2 (double precision) — the paper's FPI-relevant groups.
	"SSE2 data movement",
	"SSE2 packed arithmetic",
	"SSE2 comparison",
	"SSE2 logical",
	"SSE2 shuffle/unpack",
	"SSE2 conversion",
	"SSE2 packed integer",
	// SSE3/SSSE3/SSE4.
	"SSE3 horizontal arithmetic",
	"SSSE3 packed arithmetic",
	"SSE4 dword multiply",
	"SSE4 blending",
	"SSE4 streaming load",
	// AVX / FMA / system.
	"AVX arithmetic",
	"AVX data movement",
	"FMA fused multiply-add",
	"System: 64-bit mode (movsxd)",
	"System: synchronization",
	"System: other",
}

// defaultOpcodeCategories maps this ISA's opcodes into the fine scheme.
var defaultOpcodeCategories = map[string]string{
	"mov.load":     "GP data transfer: mov",
	"mov.store":    "GP data transfer: mov",
	"mov.imm":      "GP data transfer: mov",
	"mov.reg":      "GP data transfer: mov",
	"push":         "GP data transfer: push/pop",
	"pop":          "GP data transfer: push/pop",
	"lea":          "GP data transfer: address (lea)",
	"add":          "GP binary arithmetic: add/sub",
	"sub":          "GP binary arithmetic: add/sub",
	"sub.rsp":      "GP binary arithmetic: add/sub",
	"inc":          "GP binary arithmetic: inc/dec",
	"dec":          "GP binary arithmetic: inc/dec",
	"imul":         "GP binary arithmetic: mul",
	"idiv":         "GP binary arithmetic: div",
	"neg":          "GP binary arithmetic: neg",
	"cmp":          "GP binary arithmetic: cmp",
	"and":          "GP logical: and/or/xor/not",
	"or":           "GP logical: and/or/xor/not",
	"xor":          "GP logical: and/or/xor/not",
	"shl":          "GP shift/rotate",
	"sar":          "GP shift/rotate",
	"test":         "GP bit/byte: test",
	"jmp":          "GP control transfer: jmp",
	"je":           "GP control transfer: jcc",
	"jne":          "GP control transfer: jcc",
	"jl":           "GP control transfer: jcc",
	"jle":          "GP control transfer: jcc",
	"jg":           "GP control transfer: jcc",
	"jge":          "GP control transfer: jcc",
	"call":         "GP control transfer: call/ret",
	"ret":          "GP control transfer: call/ret",
	"nop":          "GP misc: nop/cpuid",
	"cdq":          "GP misc: conversion (cdq/cbw)",
	"movsd.load":   "SSE2 data movement",
	"movsd.store":  "SSE2 data movement",
	"movsd.imm":    "SSE2 data movement",
	"movsd.reg":    "SSE2 data movement",
	"movapd.load":  "SSE2 data movement",
	"movapd.store": "SSE2 data movement",
	"addsd":        "SSE2 packed arithmetic",
	"subsd":        "SSE2 packed arithmetic",
	"mulsd":        "SSE2 packed arithmetic",
	"divsd":        "SSE2 packed arithmetic",
	"sqrtsd":       "SSE2 packed arithmetic",
	"addpd":        "SSE2 packed arithmetic",
	"subpd":        "SSE2 packed arithmetic",
	"mulpd":        "SSE2 packed arithmetic",
	"divpd":        "SSE2 packed arithmetic",
	"ucomisd":      "SSE2 comparison",
	"cvtsi2sd":     "SSE2 conversion",
	"cvttsd2si":    "SSE2 conversion",
	"movsxd":       "System: 64-bit mode (movsxd)",
}

func builtin(name string, cores int, clock float64, vec int, peak float64, bw float64, fp bool) *Description {
	cats := make([]string, len(x86Categories))
	copy(cats, x86Categories)
	ops := make(map[string]string, len(defaultOpcodeCategories))
	for k, v := range defaultOpcodeCategories {
		ops[k] = v
	}
	return &Description{
		Name:                     name,
		Cores:                    cores,
		ClockGHz:                 clock,
		CacheLineBytes:           64,
		VectorWidthDoubles:       vec,
		PeakFlopsPerCyclePerCore: peak,
		MemBandwidthGBs:          bw,
		HasFPCounters:            fp,
		Categories:               cats,
		OpcodeCategories:         ops,
	}
}

// Arya describes the paper's Haswell machine: two 18-core Xeon E5-2699v3
// at 2.3 GHz. Haswell provides no FP_INS hardware counter.
func Arya() *Description {
	return builtin("arya", 36, 2.3, 4, 16, 136, false)
}

// Frankenstein describes the paper's Nehalem machine: two 4-core Xeon
// E5620 at 2.4 GHz, with FP hardware counters.
func Frankenstein() *Description {
	return builtin("frankenstein", 8, 2.4, 2, 4, 51.2, true)
}

// Generic is a neutral single-socket description for examples.
func Generic() *Description {
	return builtin("generic", 8, 2.0, 2, 4, 40, true)
}
