package arch

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestEmbeddedProfilesRoundTrip is the JSON round-trip property for
// every embedded profile: ToJSON → FromJSON must reproduce the
// description exactly, and the round-tripped copy must carry the same
// content key (the key is a hash of the canonical JSON, so equality
// here means the serialization really is canonical).
func TestEmbeddedProfilesRoundTrip(t *testing.T) {
	for _, d := range builtins() {
		data, err := d.ToJSON()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		d2, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Errorf("%s: round trip changed the description", d.Name)
		}
		if d.ContentKey() != d2.ContentKey() {
			t.Errorf("%s: content key changed across round trip", d.Name)
		}
	}
}

// TestRegistryEntriesDistinct asserts the registry invariants the
// caching layers depend on: every entry validates, and no two entries
// share a content key.
func TestRegistryEntriesDistinct(t *testing.T) {
	r := NewRegistry()
	if r.Len() < 10 {
		t.Fatalf("registry has %d entries, want >= 10", r.Len())
	}
	seen := map[string]string{}
	for _, e := range r.Entries() {
		if err := e.Desc.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		if len(e.Key) != 64 {
			t.Errorf("%s: content key %q is not a sha256 hex digest", e.Name, e.Key)
		}
		if prev, ok := seen[e.Key]; ok {
			t.Errorf("%s and %s share content key %s", prev, e.Name, e.Key)
		}
		seen[e.Key] = e.Name
	}
}

func TestContentKeyTracksParameters(t *testing.T) {
	a, b := Generic(), Generic()
	if a.ContentKey() != b.ContentKey() {
		t.Error("identical descriptions got different content keys")
	}
	b.MemBandwidthGBs *= 2
	if a.ContentKey() == b.ContentKey() {
		t.Error("bandwidth change did not change the content key")
	}
}

func TestRegistryAliases(t *testing.T) {
	r := NewRegistry()
	for name, want := range map[string]string{
		"haswell": "arya", "nehalem": "frankenstein", "": "generic",
	} {
		e, err := r.LookupEntry(name)
		if err != nil || e.Name != want {
			t.Errorf("LookupEntry(%q) = %v/%v, want %s", name, e.Name, err, want)
		}
	}
}

// TestLookupErrorListsRegistry pins the satellite fix: the
// unknown-architecture error derives its name list from the registry,
// so it can never drift from the real set of builtins again.
func TestLookupErrorListsRegistry(t *testing.T) {
	r := NewRegistry()
	_, err := r.Lookup("vax")
	if err == nil {
		t.Fatal("unknown architecture accepted")
	}
	for _, name := range r.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention builtin %s", err, name)
		}
	}
}

func TestRegisterRejects(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Generic()); err == nil {
		t.Error("duplicate name accepted")
	}
	alias := Generic()
	alias.Name = "haswell"
	if err := r.Register(alias); err == nil {
		t.Error("alias-shadowing name accepted")
	}
	bad := Generic()
	bad.Name = "broken"
	bad.MemBandwidthGBs = 0
	if err := r.Register(bad); err == nil {
		t.Error("invalid description accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	custom := Generic()
	custom.Name = "mymachine"
	custom.MemBandwidthGBs = 123.4
	data, err := custom.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mymachine.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-JSON files are skipped, not errors.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("notes"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	before := r.Len()
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || r.Len() != before+1 {
		t.Fatalf("loaded %d (len %d), want 1 (len %d)", n, r.Len(), before+1)
	}
	d, err := r.Lookup("mymachine")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBandwidthGBs != 123.4 {
		t.Errorf("bandwidth = %g, want 123.4", d.MemBandwidthGBs)
	}

	// A second load of the same directory collides on the name.
	if _, err := r.LoadDir(dir); err == nil {
		t.Error("reloading the same directory did not report the name collision")
	}

	// An invalid description fails the whole load.
	bad := Generic()
	bad.Name = "bad"
	bad.MemBandwidthGBs = -1
	raw, _ := bad.ToJSON()
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "bad.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().LoadDir(dir2); err == nil {
		t.Error("invalid description loaded without error")
	}
}

func TestResolve(t *testing.T) {
	r := NewRegistry()
	d, err := r.Resolve("skylake")
	if err != nil || d.Name != "skylake" {
		t.Fatalf("Resolve(skylake) = %v/%v", d, err)
	}

	custom := Generic()
	custom.Name = "filearch"
	data, err := custom.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "filearch.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = r.Resolve(path)
	if err != nil || d.Name != "filearch" {
		t.Fatalf("Resolve(%s) = %v/%v", path, d, err)
	}
	// The package-level helper matches.
	d, err = Resolve(path)
	if err != nil || d.Name != "filearch" {
		t.Fatalf("package Resolve(%s) = %v/%v", path, d, err)
	}
	if _, err := r.Resolve(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
