// Package report is the results layer of the reproduction: the paper's
// deliverables — its tables and figure series — as typed data artifacts
// instead of hardcoded print routines.
//
// A [Suite] declaratively describes what to produce: sections over
// named workloads (the benchprogs registry, or caller-supplied source)
// × scenario grids (sizes, explicit environments, architectures) ×
// query kinds. A [Runner] with an injected engine compiles each section
// down to the existing engine.Sweep/engine.Query batches and assembles
// a [Report]: tables as schema'd columns plus rows of typed values,
// with deterministic ordering and per-row errors. Multi-format
// encoders (JSON, CSV, the paper's ASCII table style, Markdown) render
// the same Report everywhere — library, CLI, and daemon — so a new
// scenario is a data file, not a new Go function.
package report

import (
	"fmt"
	"strconv"
)

// ColKind is a column's value type, which also selects its rendering.
type ColKind int

const (
	// ColString renders the cell's string verbatim.
	ColString ColKind = iota
	// ColInt renders an integer count.
	ColInt
	// ColFloat renders a number in %.{Prec}g form (the paper's tables
	// print large counts in scientific shorthand, e.g. 8e+07).
	ColFloat
	// ColPct renders a percentage in %.{Prec}f%% form. A null cell — an
	// undefined relative error — renders as "n/a" and encodes as JSON
	// null.
	ColPct

	numColKinds
)

var colKindNames = [numColKinds]string{
	ColString: "string",
	ColInt:    "int",
	ColFloat:  "float",
	ColPct:    "percent",
}

// String returns the kind's wire name.
func (k ColKind) String() string {
	if k < 0 || k >= numColKinds {
		return fmt.Sprintf("ColKind(%d)", int(k))
	}
	return colKindNames[k]
}

// Column is one schema'd report column.
type Column struct {
	// Name is the header label.
	Name string
	// Kind types every cell in the column.
	Kind ColKind
	// Width left-justifies the rendered cell to this many characters in
	// the ASCII encoding (the paper's fixed-width style). 0 means
	// auto-size to the widest cell. The last column is never padded.
	Width int
	// Prec is the precision for ColFloat (%.{Prec}g) and ColPct
	// (%.{Prec}f%%) cells.
	Prec int
}

// valueTag discriminates a Value's payload.
type valueTag uint8

const (
	tagNull valueTag = iota
	tagStr
	tagInt
	tagFloat
)

// Value is one typed report cell. The zero Value is null.
type Value struct {
	s   string
	i   int64
	f   float64
	tag valueTag
}

// Str returns a string cell.
func Str(s string) Value { return Value{s: s, tag: tagStr} }

// Int returns an integer cell.
func Int(i int64) Value { return Value{i: i, tag: tagInt} }

// Float returns a floating-point cell.
func Float(f float64) Value { return Value{f: f, tag: tagFloat} }

// Null returns the null cell: "n/a" in text encodings, null in JSON.
func Null() Value { return Value{} }

// IsNull reports whether the cell is null.
func (v Value) IsNull() bool { return v.tag == tagNull }

// num converts a numeric cell to float64 (0 for string/null cells).
func (v Value) num() float64 {
	switch v.tag {
	case tagInt:
		return float64(v.i)
	case tagFloat:
		return v.f
	}
	return 0
}

// render formats the cell under col's schema, unpadded.
func (v Value) render(col Column) string {
	if v.tag == tagNull {
		return "n/a"
	}
	switch col.Kind {
	case ColString:
		if v.tag == tagStr {
			return v.s
		}
		return v.renderRaw()
	case ColInt:
		if v.tag == tagFloat {
			return strconv.FormatInt(int64(v.f), 10)
		}
		return strconv.FormatInt(v.i, 10)
	case ColFloat:
		return fmt.Sprintf("%.*g", col.Prec, v.num())
	case ColPct:
		return fmt.Sprintf("%.*f%%", col.Prec, v.num())
	}
	return v.renderRaw()
}

// renderRaw formats the cell with full precision and no schema — the
// CSV form, where consumers parse values instead of reading them.
func (v Value) renderRaw() string {
	switch v.tag {
	case tagStr:
		return v.s
	case tagInt:
		return strconv.FormatInt(v.i, 10)
	case tagFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	}
	return "" // null: empty CSV field
}

// Row is one table row: cells matching the table's column schema, plus
// an optional error. A failed grid point (overflow, cancellation) keeps
// its place in the table — parameter cells filled, value cells null,
// Error carrying the cause — so ordering is deterministic even under
// partial failure.
type Row struct {
	Cells []Value
	Error string
}

// Table is one report section: a caption, a column schema, and rows.
type Table struct {
	// Name identifies the table in encodings ("table_iii").
	Name string
	// Caption is the paper-style caption line above the header.
	Caption string
	// Indent prefixes header and rows (not the caption) with spaces —
	// the Fig. 7 series style.
	Indent int
	// Columns is the schema; every row's Cells align with it.
	Columns []Column
	// Rows are the data, in deterministic (grid or suite) order.
	Rows []Row
}

// Errs collects the per-row failures, nil when every row succeeded.
func (t *Table) Errs() []error {
	var out []error
	for i := range t.Rows {
		if e := t.Rows[i].Error; e != "" {
			out = append(out, fmt.Errorf("%s row %d: %s", t.Name, i, e))
		}
	}
	return out
}

// Report is a completed suite run: its tables in suite order.
type Report struct {
	// Suite is the producing suite's name.
	Suite string
	// Title is the suite's human title.
	Title string
	// Tables are the produced sections, in declaration order.
	Tables []Table
}

// Errs collects every per-row failure across the report.
func (r *Report) Errs() []error {
	var out []error
	for i := range r.Tables {
		out = append(out, r.Tables[i].Errs()...)
	}
	return out
}

// Rows counts the report's data rows across all tables.
func (r *Report) Rows() int {
	n := 0
	for i := range r.Tables {
		n += len(r.Tables[i].Rows)
	}
	return n
}
