package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Format names an encoding of a Report.
type Format int

const (
	// FormatTable is the paper's fixed-width ASCII table style — the
	// byte-exact successor of the legacy Format* renderers.
	FormatTable Format = iota
	// FormatJSON is the structured wire form (the /report default).
	FormatJSON
	// FormatCSV is one comma-separated block per table, full precision.
	FormatCSV
	// FormatMarkdown renders GitHub-style pipe tables.
	FormatMarkdown

	numFormats
)

var formatNames = [numFormats]string{
	FormatTable:    "table",
	FormatJSON:     "json",
	FormatCSV:      "csv",
	FormatMarkdown: "markdown",
}

// String returns the format's wire name.
func (f Format) String() string {
	if f < 0 || f >= numFormats {
		return fmt.Sprintf("Format(%d)", int(f))
	}
	return formatNames[f]
}

// ParseFormat maps a wire name ("table", "json", "csv", "markdown",
// "md") to its Format.
func ParseFormat(s string) (Format, error) {
	if s == "md" {
		return FormatMarkdown, nil
	}
	for f, name := range formatNames {
		if s == name {
			return Format(f), nil
		}
	}
	return 0, fmt.Errorf("report: unknown format %q (formats: table, json, csv, markdown)", s)
}

// Encode writes the report in the given format.
func (r *Report) Encode(w io.Writer, f Format) error {
	switch f {
	case FormatTable:
		return r.EncodeText(w)
	case FormatJSON:
		return r.EncodeJSON(w)
	case FormatCSV:
		return r.EncodeCSV(w)
	case FormatMarkdown:
		return r.EncodeMarkdown(w)
	}
	return fmt.Errorf("report: unknown format %d", int(f))
}

// Text renders the report in the paper's ASCII style as a string.
func (r *Report) Text() string {
	var sb strings.Builder
	_ = r.EncodeText(&sb)
	return sb.String()
}

// EncodeText writes the paper's fixed-width ASCII table style: caption
// line, padded header, padded rows. Tables follow one another directly
// (the Fig. 7 series read as one block). Failed rows render their
// parameter cells with "n/a" values and are listed after the table with
// their errors, so a partial result never hides its failures.
func (r *Report) EncodeText(w io.Writer) error {
	for ti := range r.Tables {
		if err := r.Tables[ti].encodeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) encodeText(w io.Writer) error {
	if t.Caption != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Caption); err != nil {
			return err
		}
	}
	// Render every cell once; auto widths (Width == 0) derive from the
	// rendered strings, so a 64k-row sweep table formats each cell a
	// single time.
	lines := make([][]string, 0, len(t.Rows)+1)
	header := make([]string, len(t.Columns))
	for ci, col := range t.Columns {
		header[ci] = col.Name
	}
	lines = append(lines, header)
	var failed []int
	for ri := range t.Rows {
		row := &t.Rows[ri]
		cells := make([]string, len(t.Columns))
		for ci, col := range t.Columns {
			if ci < len(row.Cells) {
				cells[ci] = row.Cells[ci].render(col)
			}
		}
		lines = append(lines, cells)
		if row.Error != "" {
			failed = append(failed, ri)
		}
	}
	ws := make([]int, len(t.Columns))
	for ci, col := range t.Columns {
		if col.Width > 0 {
			ws[ci] = col.Width
			continue
		}
		for _, cells := range lines {
			if n := len(cells[ci]); n > ws[ci] {
				ws[ci] = n
			}
		}
	}

	indent := strings.Repeat(" ", t.Indent)
	var sb strings.Builder
	for _, cells := range lines {
		sb.Reset()
		sb.WriteString(indent)
		for ci, c := range cells {
			if ci > 0 {
				sb.WriteByte(' ')
			}
			if ci < len(cells)-1 {
				fmt.Fprintf(&sb, "%-*s", ws[ci], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	for _, ri := range failed {
		if _, err := fmt.Fprintf(w, "%s! row %d: %s\n", indent, ri, t.Rows[ri].Error); err != nil {
			return err
		}
	}
	return nil
}

// EncodeMarkdown writes GitHub-style pipe tables, one per section, with
// the caption as a bold line above.
func (r *Report) EncodeMarkdown(w io.Writer) error {
	for ti := range r.Tables {
		t := &r.Tables[ti]
		if ti > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if t.Caption != "" {
			if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Caption); err != nil {
				return err
			}
		}
		row := func(cells []string) error {
			_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
			return err
		}
		header := make([]string, len(t.Columns))
		rule := make([]string, len(t.Columns))
		for ci, col := range t.Columns {
			header[ci] = col.Name
			if col.Kind == ColString {
				rule[ci] = "---"
			} else {
				rule[ci] = "---:"
			}
		}
		if err := row(header); err != nil {
			return err
		}
		if err := row(rule); err != nil {
			return err
		}
		for ri := range t.Rows {
			cells := make([]string, len(t.Columns))
			for ci, col := range t.Columns {
				if ci < len(t.Rows[ri].Cells) {
					cells[ci] = t.Rows[ri].Cells[ci].render(col)
				}
			}
			if e := t.Rows[ri].Error; e != "" {
				cells[len(cells)-1] += " (error: " + e + ")"
			}
			if err := row(cells); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeCSV writes one CSV block per table: a `# name: caption` comment
// line, the header, then full-precision rows (null cells are empty
// fields; a failed row carries its error in a trailing `error` column).
func (r *Report) EncodeCSV(w io.Writer) error {
	for ti := range r.Tables {
		t := &r.Tables[ti]
		if ti > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s: %s\n", t.Name, t.Caption); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		header := make([]string, len(t.Columns), len(t.Columns)+1)
		for ci, col := range t.Columns {
			header[ci] = col.Name
		}
		header = append(header, "error")
		if err := cw.Write(header); err != nil {
			return err
		}
		for ri := range t.Rows {
			cells := make([]string, len(t.Columns), len(t.Columns)+1)
			for ci := range t.Columns {
				if ci < len(t.Rows[ri].Cells) {
					cells[ci] = t.Rows[ri].Cells[ci].renderRaw()
				}
			}
			cells = append(cells, t.Rows[ri].Error)
			if err := cw.Write(cells); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// jsonColumn is a column's wire form.
type jsonColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// jsonRow is a row's wire form: cells aligned with the column schema
// (string, number, or null per the column kind), plus the row error.
type jsonRow struct {
	Cells []any  `json:"cells"`
	Error string `json:"error,omitempty"`
}

// jsonTable is a table's wire form.
type jsonTable struct {
	Name    string       `json:"name"`
	Caption string       `json:"caption,omitempty"`
	Columns []jsonColumn `json:"columns"`
	Rows    []jsonRow    `json:"rows"`
}

// jsonReport is the report wire form.
type jsonReport struct {
	Suite  string      `json:"suite"`
	Title  string      `json:"title,omitempty"`
	Tables []jsonTable `json:"tables"`
}

// EncodeJSON writes the structured wire form: typed cells (integer
// counts stay exact int64 JSON numbers; null cells encode as JSON
// null), per-row errors, tables in suite order.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.jsonValue())
}

// MarshalJSON renders the same wire form as EncodeJSON, so collections
// of reports ([]*Report) marshal as one valid JSON document.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.jsonValue())
}

func (r *Report) jsonValue() jsonReport {
	out := jsonReport{Suite: r.Suite, Title: r.Title, Tables: make([]jsonTable, len(r.Tables))}
	for ti := range r.Tables {
		t := &r.Tables[ti]
		jt := jsonTable{Name: t.Name, Caption: t.Caption, Columns: make([]jsonColumn, len(t.Columns)), Rows: make([]jsonRow, len(t.Rows))}
		for ci, col := range t.Columns {
			jt.Columns[ci] = jsonColumn{Name: col.Name, Kind: col.Kind.String()}
		}
		for ri := range t.Rows {
			row := &t.Rows[ri]
			jr := jsonRow{Cells: make([]any, len(row.Cells)), Error: row.Error}
			for ci := range row.Cells {
				jr.Cells[ci] = cellJSON(row.Cells[ci])
			}
			jt.Rows[ri] = jr
		}
		out.Tables[ti] = jt
	}
	return out
}

// cellJSON converts a cell to its JSON-native value.
func cellJSON(v Value) any {
	switch v.tag {
	case tagStr:
		return v.s
	case tagInt:
		return v.i
	case tagFloat:
		return v.f
	}
	return nil
}
