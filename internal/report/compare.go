package report

import (
	"context"
	"fmt"
	"sort"

	"mira/internal/engine"
)

// CompareSection is the cross-architecture ranking section: one
// workload function at one evaluation point, run against N machine
// descriptions, rendered as a table ranked by predicted attainable
// GFLOP/s. Each row answers the paper's Sec. IV-D2 question for one
// machine — which side of the ridge the kernel lands on and what the
// roofline caps it at — and the ranking answers "which of these
// machines should run this kernel".
type CompareSection struct {
	Name    string
	Caption string
	// Workload and Fn name the kernel, as in GridSection.
	Workload WorkloadRef
	Fn       string
	// Env is the one evaluation point (every model parameter bound).
	Env map[string]int64
	// Archs names the registered descriptions to rank; empty means every
	// entry in the engine's registry.
	Archs []string
}

// compareRow pairs one machine's outcome with its sort material.
type compareRow struct {
	arch string
	peak float64
	pt   *engine.SweepPoint
}

// Tables implements Section. Successful rows are ranked by attainable
// GFLOP/s, highest first, with the architecture name breaking ties so
// machines with identical rooflines render deterministically; rows
// whose evaluation failed sort last, by name, with the error attached.
func (s CompareSection) Tables(ctx context.Context, r *Runner) ([]Table, error) {
	a, err := s.Workload.resolve(ctx, r.eng)
	if err != nil {
		return nil, err
	}
	registry := r.eng.Registry()
	archs := s.Archs
	if len(archs) == 0 {
		archs = registry.Names()
	}
	res, err := a.Sweep(ctx, engine.SweepSpec{
		Fn:    s.Fn,
		Kind:  engine.KindRoofline,
		Base:  s.Env,
		Archs: archs,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Points) != len(archs) {
		return nil, fmt.Errorf("report: compare section produced %d points for %d archs", len(res.Points), len(archs))
	}

	rows := make([]compareRow, len(archs))
	for i := range res.Points {
		p := &res.Points[i]
		row := compareRow{arch: p.Arch, pt: p}
		if d, err := registry.Lookup(p.Arch); err == nil {
			row.peak = d.PeakGFlops()
		}
		rows[i] = row
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ri, rj := rows[i], rows[j]
		iOK, jOK := ri.pt.Err == nil, rj.pt.Err == nil
		if iOK != jOK {
			return iOK // failures sink to the bottom
		}
		if !iOK {
			return ri.arch < rj.arch
		}
		if ri.pt.Roofline.AttainableGFlops != rj.pt.Roofline.AttainableGFlops {
			return ri.pt.Roofline.AttainableGFlops > rj.pt.Roofline.AttainableGFlops
		}
		return ri.arch < rj.arch
	})

	name := s.Name
	if name == "" {
		name = s.Fn + "_compare"
	}
	t := Table{
		Name:    name,
		Caption: s.Caption,
		Columns: []Column{
			{Name: "rank", Kind: ColInt},
			{Name: "arch", Kind: ColString},
			{Name: "bound", Kind: ColString},
			{Name: "attainable_gflops", Kind: ColFloat, Prec: 4},
			{Name: "peak_gflops", Kind: ColFloat, Prec: 4},
			{Name: "byte_ai", Kind: ColFloat, Prec: 4},
			{Name: "ridge_ai", Kind: ColFloat, Prec: 4},
		},
	}
	t.Rows = make([]Row, len(rows))
	for i, row := range rows {
		if row.pt.Err != nil {
			t.Rows[i] = Row{
				Cells: []Value{Null(), Str(row.arch), Null(), Null(), Null(), Null(), Null()},
				Error: row.pt.Err.Error(),
			}
			continue
		}
		roof := row.pt.Roofline
		bound := "compute"
		if roof.MemoryBound {
			bound = "memory"
		}
		t.Rows[i] = Row{Cells: []Value{
			Int(int64(i + 1)),
			Str(row.arch),
			Str(bound),
			Float(roof.AttainableGFlops),
			Float(row.peak),
			Float(roof.ByteAI),
			Float(roof.RidgeAI),
		}}
	}
	return []Table{t}, nil
}
