package report

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mira/internal/benchprogs"
	"mira/internal/engine"
)

// ErrUnknownKey is the typed error a Key-form WorkloadRef resolves to
// when the key names neither a resident analysis nor an embedded
// workload (check with errors.Is; serving layers map it to 404).
var ErrUnknownKey = errors.New("unknown analysis key")

// Workload is one named, embedded program a suite can reference without
// shipping source: the paper's evaluation workloads, registered over
// the benchprogs sources.
type Workload struct {
	// Name is the registry name ("stream").
	Name string `json:"name"`
	// File is the source's analysis filename ("stream.c").
	File string `json:"file"`
	// Source is the MiniC text.
	Source string `json:"-"`
	// Doc is a one-line description.
	Doc string `json:"doc,omitempty"`
	// Funcs lists the entry points the paper's tables query.
	Funcs []string `json:"funcs,omitempty"`
}

// builtinWorkloads is the embedded registry, in listing order.
var builtinWorkloads = []Workload{
	{
		Name: "stream", File: "stream.c", Source: benchprogs.Stream,
		Doc:   "STREAM memory-bandwidth kernels (Table III, Fig. 7a)",
		Funcs: []string{"stream", "tuned_copy", "tuned_scale", "tuned_add", "tuned_triad"},
	},
	{
		Name: "dgemm", File: "dgemm.c", Source: benchprogs.Dgemm,
		Doc:   "HPCC-style DGEMM triple loop (Table IV, Fig. 7b)",
		Funcs: []string{"dgemm_bench", "dgemm"},
	},
	{
		Name: "minife", File: "minife.c", Source: benchprogs.MiniFE,
		Doc:   "miniFE 27-point-stencil CG mini-app (Tables II/V, Figs. 6/7, prediction)",
		Funcs: []string{"minife", "cg_solve", "waxpby", "dot", "MatVec::operator()"},
	},
	{
		Name: "ablation", File: "ablation.c", Source: benchprogs.Ablation,
		Doc:   "smooth kernel with foldable FP subexpressions (PBound-vs-Mira ablation)",
		Funcs: []string{"smooth"},
	},
}

// Workloads returns the embedded registry in listing order.
func Workloads() []Workload {
	out := make([]Workload, len(builtinWorkloads))
	copy(out, builtinWorkloads)
	return out
}

// LookupWorkload finds an embedded workload by registry name.
func LookupWorkload(name string) (Workload, bool) {
	for _, w := range builtinWorkloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// WorkloadNames returns the registry names, sorted.
func WorkloadNames() []string {
	names := make([]string, len(builtinWorkloads))
	for i, w := range builtinWorkloads {
		names[i] = w.Name
	}
	sort.Strings(names)
	return names
}

// WorkloadRef names the program a section runs against: a registry
// workload by Name, an already-analyzed program by engine content Key,
// or caller-supplied inline Source (with an optional File label).
// Exactly one of Name, Key, and Source must be set.
type WorkloadRef struct {
	Name   string `json:"workload,omitempty"`
	Key    string `json:"key,omitempty"`
	File   string `json:"file,omitempty"`
	Source string `json:"source,omitempty"`
}

// resolve produces the analysis the ref points at, through the engine's
// content-hash cache.
func (ref WorkloadRef) resolve(ctx context.Context, eng *engine.Engine) (*engine.Analysis, error) {
	set := 0
	for _, ok := range []bool{ref.Name != "", ref.Key != "", ref.Source != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("report: workload ref needs exactly one of name, key, or source")
	}
	switch {
	case ref.Name != "":
		w, ok := LookupWorkload(ref.Name)
		if !ok {
			return nil, fmt.Errorf("report: unknown workload %q (workloads: %v)", ref.Name, WorkloadNames())
		}
		return eng.AnalyzeCtx(ctx, w.File, w.Source)
	case ref.Key != "":
		if a, ok := eng.Lookup(ref.Key); ok {
			return a, nil
		}
		// The key may name an embedded workload a client discovered via
		// GET /workloads without ever uploading its source: analyze it.
		for _, w := range builtinWorkloads {
			if eng.Key(w.Source) == ref.Key {
				return eng.AnalyzeCtx(ctx, w.File, w.Source)
			}
		}
		return nil, fmt.Errorf("report: %w %q", ErrUnknownKey, ref.Key)
	default:
		file := ref.File
		if file == "" {
			file = "input.c"
		}
		return eng.AnalyzeCtx(ctx, file, ref.Source)
	}
}
