package report

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mira/internal/engine"
	"mira/internal/obs"
)

// MaxSuiteSections bounds one suite's section count — a wire-delivered
// spec cannot fan one request into an unbounded number of sweeps. Each
// section's grid is further bounded by engine.MaxSweepPoints.
const MaxSuiteSections = 16

// Suite declaratively describes a report: named sections, in order,
// each producing one or more tables. The paper's Tables I–V, Fig. 7,
// the prediction, and the ablation are Suites (see
// internal/experiments); wire clients build Suites from a SuiteSpec.
type Suite struct {
	// Name identifies the suite ("table_iii").
	Name string
	// Title is the human title, carried into the Report.
	Title string
	// Sections produce the tables, in declaration order.
	Sections []Section
}

// Section is one suite entry. Implementations: GridSection (declarative
// workload × grid × kind, compiled to an engine sweep), FuncSection
// (custom rows under a declared schema), SectionFunc (free-form,
// multi-table — the Fig. 7 series).
type Section interface {
	// Tables produces the section's tables. An error here is a spec
	// problem (unknown workload, function, or kind; an over-limit
	// grid) and fails the suite; per-point evaluation failures land in
	// row errors instead.
	Tables(ctx context.Context, r *Runner) ([]Table, error)
}

// Runner executes suites against an injected engine — no package
// globals, no ambient context; concurrent runs against one engine
// share its caches and are safe.
type Runner struct {
	eng *engine.Engine
	met *runnerMetrics
}

// runnerMetrics are the mira_report_* observability series.
type runnerMetrics struct {
	runs    *obs.Counter
	rows    *obs.Counter
	seconds *obs.Summary
}

// NewRunner builds a Runner over eng.
func NewRunner(eng *engine.Engine) *Runner {
	return &Runner{eng: eng}
}

// WithObs registers the runner's mira_report_* series (suite runs, rows
// produced, whole-suite latency) in reg and returns the runner. Call at
// most once per registry.
func (r *Runner) WithObs(reg *obs.Registry) *Runner {
	r.met = &runnerMetrics{
		runs:    reg.Counter("mira_report_runs", "report suites executed"),
		rows:    reg.Counter("mira_report_rows", "report rows produced"),
		seconds: reg.Summary("mira_report_seconds", "whole-suite report latency"),
	}
	return r
}

// Engine returns the injected engine, for sections that fan out VM runs
// across its worker bound.
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Analyze resolves a workload reference through the engine's
// content-hash cache.
func (r *Runner) Analyze(ctx context.Context, ref WorkloadRef) (*engine.Analysis, error) {
	return ref.resolve(ctx, r.eng)
}

// Run executes the suite: every section in order, tables appended in
// declaration order. Cancelling ctx aborts at the next section (and,
// inside a grid section, fails remaining points with ctx.Err()).
func (r *Runner) Run(ctx context.Context, s Suite) (*Report, error) {
	if len(s.Sections) == 0 {
		return nil, fmt.Errorf("report: suite %q has no sections", s.Name)
	}
	if len(s.Sections) > MaxSuiteSections {
		return nil, fmt.Errorf("report: suite %q has %d sections, exceeding the limit of %d",
			s.Name, len(s.Sections), MaxSuiteSections)
	}
	start := time.Now()
	rep := &Report{Suite: s.Name, Title: s.Title}
	for i, sec := range s.Sections {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tables, err := sec.Tables(ctx, r)
		if err != nil {
			return nil, fmt.Errorf("report: suite %q section %d: %w", s.Name, i, err)
		}
		rep.Tables = append(rep.Tables, tables...)
	}
	if r.met != nil {
		r.met.runs.Inc()
		r.met.rows.Add(int64(rep.Rows()))
		r.met.seconds.Observe(time.Since(start).Seconds())
	}
	return rep, nil
}

// SectionFunc adapts a function to a free-form, possibly multi-table
// Section.
type SectionFunc func(ctx context.Context, r *Runner) ([]Table, error)

// Tables implements Section.
func (f SectionFunc) Tables(ctx context.Context, r *Runner) ([]Table, error) { return f(ctx, r) }

// FuncSection is one table with a declared schema whose rows come from
// custom code — the escape hatch for tables the declarative grid cannot
// express (VM-validated columns, the loop-coverage survey).
type FuncSection struct {
	Name    string
	Caption string
	Indent  int
	Columns []Column
	Rows    func(ctx context.Context, r *Runner) ([]Row, error)
}

// Tables implements Section.
func (s FuncSection) Tables(ctx context.Context, r *Runner) ([]Table, error) {
	rows, err := s.Rows(ctx, r)
	if err != nil {
		return nil, err
	}
	return []Table{{Name: s.Name, Caption: s.Caption, Indent: s.Indent, Columns: s.Columns, Rows: rows}}, nil
}

// GridSection is the declarative section: one workload, one function,
// one query kind, a scenario grid (axes crossed rightmost-fastest, or
// explicit points, over base bindings, times optional architecture
// descriptions). It compiles to one engine.Sweep — the model partially
// evaluated to closed form once, every grid cell a flat evaluation —
// and renders as a table whose rows are the grid in expansion order
// with per-row errors.
type GridSection struct {
	Name     string
	Caption  string
	Workload WorkloadRef
	Fn       string
	Kind     engine.QueryKind
	Axes     []engine.SweepAxis
	Points   []map[string]int64
	Base     map[string]int64
	Archs    []string
}

// Tables implements Section.
func (s GridSection) Tables(ctx context.Context, r *Runner) ([]Table, error) {
	a, err := s.Workload.resolve(ctx, r.eng)
	if err != nil {
		return nil, err
	}
	res, err := a.Sweep(ctx, engine.SweepSpec{
		Fn:     s.Fn,
		Kind:   s.Kind,
		Axes:   s.Axes,
		Points: s.Points,
		Base:   s.Base,
		Archs:  s.Archs,
	})
	if err != nil {
		return nil, err
	}
	name := s.Name
	if name == "" {
		name = s.Fn + "_" + s.Kind.String()
	}
	t := Table{Name: name, Caption: s.Caption}
	params := s.paramColumns(res)
	for _, p := range params {
		t.Columns = append(t.Columns, Column{Name: p, Kind: ColInt})
	}
	hasArch := len(s.Archs) > 0
	if hasArch {
		t.Columns = append(t.Columns, Column{Name: "arch", Kind: ColString})
	}
	values := valueColumns(s.Kind, res)
	t.Columns = append(t.Columns, values...)

	t.Rows = make([]Row, len(res.Points))
	for pi := range res.Points {
		p := &res.Points[pi]
		row := Row{Cells: make([]Value, 0, len(t.Columns))}
		for _, name := range params {
			if v, ok := p.Env[name]; ok {
				row.Cells = append(row.Cells, Int(v))
			} else {
				row.Cells = append(row.Cells, Null())
			}
		}
		if hasArch {
			row.Cells = append(row.Cells, Str(p.Arch))
		}
		if p.Err != nil {
			row.Error = p.Err.Error()
			for range values {
				row.Cells = append(row.Cells, Null())
			}
		} else {
			row.Cells = append(row.Cells, valueCells(s.Kind, values, p)...)
		}
		t.Rows[pi] = row
	}
	return []Table{t}, nil
}

// paramColumns derives the parameter columns: axis names in declaration
// order, then the remaining environment keys sorted — deterministic for
// both grid modes.
func (s GridSection) paramColumns(res *engine.SweepResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		out = append(out, ax.Name)
		seen[ax.Name] = true
	}
	rest := map[string]bool{}
	for pi := range res.Points {
		for k := range res.Points[pi].Env {
			if !seen[k] {
				rest[k] = true
			}
		}
	}
	restNames := make([]string, 0, len(rest))
	for k := range rest {
		restNames = append(restNames, k)
	}
	sort.Strings(restNames)
	return append(out, restNames...)
}

// valueColumns derives the value columns for a sweep kind. Category
// kinds take their column set from the union of the result's category
// names, sorted.
func valueColumns(kind engine.QueryKind, res *engine.SweepResult) []Column {
	switch kind {
	case engine.KindStatic, engine.KindStaticExclusive:
		return []Column{
			{Name: "instrs", Kind: ColInt},
			{Name: "flops", Kind: ColInt},
			{Name: "fpi", Kind: ColInt},
		}
	case engine.KindRoofline:
		return []Column{
			{Name: "instr_ai", Kind: ColFloat, Prec: 4},
			{Name: "byte_ai", Kind: ColFloat, Prec: 4},
			{Name: "ridge_ai", Kind: ColFloat, Prec: 4},
			{Name: "attainable_gflops", Kind: ColFloat, Prec: 4},
			{Name: "memory_bound", Kind: ColString},
		}
	case engine.KindPBound:
		return []Column{
			{Name: "flops", Kind: ColInt},
			{Name: "loads", Kind: ColInt},
			{Name: "stores", Kind: ColInt},
		}
	case engine.KindCategories, engine.KindFineCategories:
		names := map[string]bool{}
		for pi := range res.Points {
			for cat := range res.Points[pi].Categories {
				names[cat] = true
			}
		}
		sorted := make([]string, 0, len(names))
		for cat := range names {
			sorted = append(sorted, cat)
		}
		sort.Strings(sorted)
		out := make([]Column, len(sorted))
		for i, cat := range sorted {
			out[i] = Column{Name: cat, Kind: ColInt}
		}
		return out
	}
	return nil
}

// valueCells renders one successful point's value cells, aligned with
// valueColumns.
func valueCells(kind engine.QueryKind, cols []Column, p *engine.SweepPoint) []Value {
	switch kind {
	case engine.KindStatic, engine.KindStaticExclusive:
		return []Value{Int(p.Metrics.Instrs), Int(p.Metrics.Flops), Int(p.Metrics.FPI())}
	case engine.KindRoofline:
		bound := "compute"
		if p.Roofline.MemoryBound {
			bound = "memory"
		}
		return []Value{
			Float(p.Roofline.InstrAI), Float(p.Roofline.ByteAI),
			Float(p.Roofline.RidgeAI), Float(p.Roofline.AttainableGFlops),
			Str(bound),
		}
	case engine.KindPBound:
		return []Value{Int(p.PBound.Flops), Int(p.PBound.Loads), Int(p.PBound.Stores)}
	case engine.KindCategories, engine.KindFineCategories:
		out := make([]Value, len(cols))
		for i, col := range cols {
			out[i] = Int(p.Categories[col.Name]) // absent category: 0
		}
		return out
	}
	return nil
}

// SuiteSpec is the wire form of a declarative suite: grid sections
// only, JSON-decodable — what POST /report accepts inline and what a
// scenario data file holds.
type SuiteSpec struct {
	Name     string     `json:"name,omitempty"`
	Title    string     `json:"title,omitempty"`
	Sections []GridSpec `json:"sections"`
}

// GridSpec is a GridSection on the wire.
type GridSpec struct {
	Name    string `json:"name,omitempty"`
	Caption string `json:"caption,omitempty"`
	// Workload reference: exactly one of workload (registry name), key
	// (analyzed content key), or source (inline, with optional file).
	Workload string `json:"workload,omitempty"`
	Key      string `json:"key,omitempty"`
	File     string `json:"file,omitempty"`
	Source   string `json:"source,omitempty"`

	Fn string `json:"fn"`
	// Kind defaults to "static".
	Kind   string             `json:"kind,omitempty"`
	Axes   []engine.SweepAxis `json:"axes,omitempty"`
	Points []map[string]int64 `json:"points,omitempty"`
	Base   map[string]int64   `json:"base,omitempty"`
	Archs  []string           `json:"archs,omitempty"`
	// Compare turns the section into a CompareSection: the function is
	// evaluated at the single point given by base (plus at most one
	// explicit point) and ranked across archs — every registry entry
	// when archs is empty. Kind must be absent or "roofline"; axes are
	// rejected.
	Compare bool `json:"compare,omitempty"`
}

// Suite compiles the wire spec into a runnable Suite, validating
// section count and query kinds up front (grid size is validated by the
// engine at run time, before any evaluation).
func (s SuiteSpec) Suite() (Suite, error) {
	name := s.Name
	if name == "" {
		name = "inline"
	}
	out := Suite{Name: name, Title: s.Title}
	if len(s.Sections) == 0 {
		return Suite{}, fmt.Errorf("report: spec has no sections")
	}
	if len(s.Sections) > MaxSuiteSections {
		return Suite{}, fmt.Errorf("report: spec has %d sections, exceeding the limit of %d",
			len(s.Sections), MaxSuiteSections)
	}
	for i, g := range s.Sections {
		if g.Fn == "" {
			return Suite{}, fmt.Errorf("report: section %d: missing fn", i)
		}
		if g.Compare {
			sec, err := g.compareSection()
			if err != nil {
				return Suite{}, fmt.Errorf("report: section %d: %w", i, err)
			}
			out.Sections = append(out.Sections, sec)
			continue
		}
		kindName := g.Kind
		if kindName == "" {
			kindName = engine.KindStatic.String()
		}
		kind, err := engine.ParseKind(kindName)
		if err != nil {
			return Suite{}, fmt.Errorf("report: section %d: %w", i, err)
		}
		out.Sections = append(out.Sections, GridSection{
			Name:     g.Name,
			Caption:  g.Caption,
			Workload: WorkloadRef{Name: g.Workload, Key: g.Key, File: g.File, Source: g.Source},
			Fn:       g.Fn,
			Kind:     kind,
			Axes:     g.Axes,
			Points:   g.Points,
			Base:     g.Base,
			Archs:    g.Archs,
		})
	}
	return out, nil
}

// compareSection compiles a Compare-flagged wire section. A comparison
// is one point across machines, so the grid forms that vary parameters
// are rejected; the point is base, optionally refined by one explicit
// point (miniFE-style grids bind several parameters together).
func (g GridSpec) compareSection() (CompareSection, error) {
	if g.Kind != "" && g.Kind != engine.KindRoofline.String() {
		return CompareSection{}, fmt.Errorf("compare sections rank rooflines; kind %q is not allowed", g.Kind)
	}
	if len(g.Axes) > 0 {
		return CompareSection{}, fmt.Errorf("compare sections take a single point, not axes")
	}
	if len(g.Points) > 1 {
		return CompareSection{}, fmt.Errorf("compare sections take a single point, got %d", len(g.Points))
	}
	env := make(map[string]int64, len(g.Base)+1)
	for k, v := range g.Base {
		env[k] = v
	}
	if len(g.Points) == 1 {
		for k, v := range g.Points[0] {
			env[k] = v
		}
	}
	if len(env) == 0 {
		return CompareSection{}, fmt.Errorf("compare sections need an evaluation point (base or one explicit point)")
	}
	return CompareSection{
		Name:     g.Name,
		Caption:  g.Caption,
		Workload: WorkloadRef{Name: g.Workload, Key: g.Key, File: g.File, Source: g.Source},
		Fn:       g.Fn,
		Env:      env,
		Archs:    g.Archs,
	}, nil
}
