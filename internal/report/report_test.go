package report

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"mira/internal/engine"
	"mira/internal/expr"
	"mira/internal/obs"
)

const kernelSrc = `double kernel(double *x, int n) {
	double s;
	int i;
	s = 0.0;
	for (i = 0; i < n; i++) {
		s = s + x[i] * 2.0;
	}
	return s;
}
`

func testRunner(t testing.TB) *Runner {
	t.Helper()
	return NewRunner(engine.New(engine.Options{Workers: 2}))
}

func TestValueRendering(t *testing.T) {
	cases := []struct {
		v    Value
		col  Column
		want string
	}{
		{Str("stream"), Column{Kind: ColString}, "stream"},
		{Int(80000000), Column{Kind: ColInt}, "80000000"},
		{Int(80000000), Column{Kind: ColFloat, Prec: 4}, "8e+07"},
		{Float(0.4655), Column{Kind: ColPct, Prec: 3}, "0.466%"},
		{Float(74.2), Column{Kind: ColPct, Prec: 0}, "74%"},
		{Null(), Column{Kind: ColPct, Prec: 3}, "n/a"},
		{Null(), Column{Kind: ColInt}, "n/a"},
	}
	for _, c := range cases {
		if got := c.v.render(c.col); got != c.want {
			t.Errorf("render(%+v, %+v) = %q, want %q", c.v, c.col, got, c.want)
		}
	}
}

// TestEncodeTextLegacyStyle pins the text encoder to the paper's
// fixed-width convention: caption line, left-justified padded columns
// separated by one space, last column unpadded.
func TestEncodeTextLegacyStyle(t *testing.T) {
	rep := &Report{Suite: "x", Tables: []Table{{
		Name:    "t",
		Caption: "Table X",
		Columns: []Column{
			{Name: "Size", Kind: ColString, Width: 14},
			{Name: "Function", Kind: ColString, Width: 28},
			{Name: "TAU", Kind: ColFloat, Prec: 4, Width: 14},
			{Name: "Mira", Kind: ColFloat, Prec: 4, Width: 14},
			{Name: "Error", Kind: ColPct, Prec: 3},
		},
		Rows: []Row{{Cells: []Value{Str("2M"), Str("stream"), Int(80000000), Int(80000000), Float(0)}}},
	}}}
	want := "Table X\n" +
		fmt.Sprintf("%-14s %-28s %-14s %-14s %s\n", "Size", "Function", "TAU", "Mira", "Error") +
		fmt.Sprintf("%-14s %-28s %-14.4g %-14.4g %.3f%%\n", "2M", "stream", 8e7, 8e7, 0.0)
	if got := rep.Text(); got != want {
		t.Errorf("text encoding drifted from the legacy style:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestEncodeTextIndent: the Fig. 7 series style indents header and rows
// but not the caption.
func TestEncodeTextIndent(t *testing.T) {
	rep := &Report{Tables: []Table{{
		Caption: "Fig 7(a): STREAM FPI",
		Indent:  2,
		Columns: []Column{{Name: "x", Kind: ColString, Width: 24}, {Name: "err", Kind: ColPct, Prec: 3}},
		Rows:    []Row{{Cells: []Value{Str("1000000"), Float(0)}}},
	}}}
	want := "Fig 7(a): STREAM FPI\n" +
		fmt.Sprintf("  %-24s %s\n", "x", "err") +
		fmt.Sprintf("  %-24s %.3f%%\n", "1000000", 0.0)
	if got := rep.Text(); got != want {
		t.Errorf("indent drifted:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestEncodeTextAutoWidth(t *testing.T) {
	rep := &Report{Tables: []Table{{
		Columns: []Column{{Name: "n", Kind: ColInt}, {Name: "fpi", Kind: ColInt}},
		Rows: []Row{
			{Cells: []Value{Int(10), Int(5)}},
			{Cells: []Value{Int(100000), Int(42)}},
		},
	}}}
	want := "n      fpi\n10     5\n100000 42\n"
	if got := rep.Text(); got != want {
		t.Errorf("auto width:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestGridSectionStatic runs a declarative grid suite end to end and
// checks the rows match direct engine queries, in grid order.
func TestGridSectionStatic(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	suite := Suite{Name: "grid", Sections: []Section{GridSection{
		Name:     "kernel_fpi",
		Caption:  "kernel static counts",
		Workload: WorkloadRef{File: "kernel.c", Source: kernelSrc},
		Fn:       "kernel",
		Kind:     engine.KindStatic,
		Axes:     []engine.SweepAxis{{Name: "n", Values: []int64{10, 100, 1000}}},
	}}}
	rep, err := r.Run(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	tab := rep.Tables[0]
	wantCols := []string{"n", "instrs", "flops", "fpi"}
	if len(tab.Columns) != len(wantCols) {
		t.Fatalf("columns = %+v", tab.Columns)
	}
	for i, c := range tab.Columns {
		if c.Name != wantCols[i] {
			t.Errorf("column %d = %q, want %q", i, c.Name, wantCols[i])
		}
	}
	a, err := r.Analyze(ctx, WorkloadRef{File: "kernel.c", Source: kernelSrc})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []int64{10, 100, 1000} {
		res := a.RunOne(ctx, engine.Query{Fn: "kernel", Env: expr.EnvFromInts(map[string]int64{"n": n})})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		row := tab.Rows[i]
		if row.Error != "" {
			t.Fatalf("row %d error: %s", i, row.Error)
		}
		got := []Value{Int(n), Int(res.Metrics.Instrs), Int(res.Metrics.Flops), Int(res.Metrics.FPI())}
		for ci := range got {
			if row.Cells[ci] != got[ci] {
				t.Errorf("row %d cell %d = %+v, want %+v", i, ci, row.Cells[ci], got[ci])
			}
		}
	}
}

// TestGridSectionPerRowError: an overflowing point fails its row, not
// the suite; the row keeps its parameter cells and grid position.
func TestGridSectionPerRowError(t *testing.T) {
	r := testRunner(t)
	rep, err := r.Run(context.Background(), Suite{Name: "overflow", Sections: []Section{GridSection{
		Workload: WorkloadRef{File: "kernel.c", Source: kernelSrc},
		Fn:       "kernel",
		Kind:     engine.KindStatic,
		Axes:     []engine.SweepAxis{{Name: "n", Values: []int64{1000, 4_000_000_000_000_000_000}}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	if tab.Rows[0].Error != "" {
		t.Errorf("row 0 unexpectedly failed: %s", tab.Rows[0].Error)
	}
	if tab.Rows[1].Error == "" {
		t.Fatal("overflow row carries no error")
	}
	if got := tab.Rows[1].Cells[0]; got != Int(4_000_000_000_000_000_000) {
		t.Errorf("failed row lost its parameter cell: %+v", got)
	}
	for _, c := range tab.Rows[1].Cells[1:] {
		if !c.IsNull() {
			t.Errorf("failed row value cell not null: %+v", c)
		}
	}
	if errs := rep.Errs(); len(errs) != 1 {
		t.Errorf("Errs = %v", errs)
	}
	if text := rep.Text(); !strings.Contains(text, "! row 1:") {
		t.Errorf("text encoding hides the failed row:\n%s", text)
	}
}

// TestGridSectionCategoriesDeterministic: category columns are the
// sorted union of names, so repeated runs encode byte-identically.
func TestGridSectionCategoriesDeterministic(t *testing.T) {
	r := testRunner(t)
	sec := GridSection{
		Workload: WorkloadRef{Name: "stream"},
		Fn:       "stream",
		Kind:     engine.KindCategories,
		Points:   []map[string]int64{{"n": 64}, {"n": 128}},
	}
	var first string
	for i := 0; i < 3; i++ {
		rep, err := r.Run(context.Background(), Suite{Name: "cats", Sections: []Section{sec}})
		if err != nil {
			t.Fatal(err)
		}
		if text := rep.Text(); i == 0 {
			first = text
		} else if text != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, text, first)
		}
	}
	if !strings.Contains(first, "n ") {
		t.Errorf("missing param column:\n%s", first)
	}
}

// TestWorkloadRefByKey: a client holding only a content key from GET
// /workloads can reference an embedded workload that was never
// explicitly analyzed — the registry backfills it.
func TestWorkloadRefByKey(t *testing.T) {
	r := testRunner(t)
	w, ok := LookupWorkload("stream")
	if !ok {
		t.Fatal("no stream workload")
	}
	key := r.Engine().Key(w.Source)
	if _, ok := r.Engine().Lookup(key); ok {
		t.Fatal("stream unexpectedly resident before the test")
	}
	a, err := r.Analyze(context.Background(), WorkloadRef{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "stream.c" {
		t.Errorf("resolved name = %q", a.Name)
	}
	if _, err := r.Analyze(context.Background(), WorkloadRef{Key: "nonsense"}); err == nil {
		t.Error("unknown key did not error")
	}
}

func TestWorkloadRefValidation(t *testing.T) {
	r := testRunner(t)
	for _, ref := range []WorkloadRef{
		{},
		{Name: "stream", Source: kernelSrc},
		{Name: "no-such-workload"},
	} {
		if _, err := r.Analyze(context.Background(), ref); err == nil {
			t.Errorf("ref %+v did not error", ref)
		}
	}
}

func TestSuiteSpecValidation(t *testing.T) {
	ok := SuiteSpec{Sections: []GridSpec{{Workload: "stream", Fn: "stream", Axes: []engine.SweepAxis{{Name: "n", Values: []int64{10}}}}}}
	s, err := ok.Suite()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "inline" || len(s.Sections) != 1 {
		t.Errorf("suite = %+v", s)
	}
	if gs, okc := s.Sections[0].(GridSection); !okc || gs.Kind != engine.KindStatic {
		t.Errorf("kind did not default to static: %+v", s.Sections[0])
	}

	bad := []SuiteSpec{
		{},
		{Sections: []GridSpec{{Workload: "stream"}}},                             // no fn
		{Sections: []GridSpec{{Workload: "stream", Fn: "stream", Kind: "nope"}}}, // bad kind
		{Sections: make([]GridSpec, MaxSuiteSections+1)},
	}
	for i, spec := range bad {
		if _, err := spec.Suite(); err == nil {
			t.Errorf("spec %d did not error", i)
		}
	}
}

func TestSuiteLimits(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run(context.Background(), Suite{Name: "empty"}); err == nil {
		t.Error("empty suite did not error")
	}
	big := Suite{Name: "big", Sections: make([]Section, MaxSuiteSections+1)}
	if _, err := r.Run(context.Background(), big); err == nil {
		t.Error("oversized suite did not error")
	}
}

func TestRunCancellation(t *testing.T) {
	r := testRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Run(ctx, Suite{Name: "c", Sections: []Section{GridSection{
		Workload: WorkloadRef{Name: "stream"}, Fn: "stream",
		Axes: []engine.SweepAxis{{Name: "n", Values: []int64{10}}},
	}}})
	if err == nil {
		t.Fatal("cancelled run did not error")
	}
}

// TestEncodeJSON: null cells encode as JSON null, integer counts stay
// exact, rows carry their errors.
func TestEncodeJSON(t *testing.T) {
	rep := &Report{Suite: "s", Title: "T", Tables: []Table{{
		Name:    "t",
		Columns: []Column{{Name: "n", Kind: ColInt}, {Name: "err_pct", Kind: ColPct, Prec: 3}},
		Rows: []Row{
			{Cells: []Value{Int(9007199254740993), Float(1.5)}},
			{Cells: []Value{Int(2), Null()}, Error: "boom"},
		},
	}}}
	var sb strings.Builder
	if err := rep.EncodeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "9007199254740993") {
		t.Errorf("int64 lost precision: %s", got)
	}
	if !strings.Contains(got, `[2,null]`) {
		t.Errorf("null cell not encoded as JSON null: %s", got)
	}
	if !strings.Contains(got, `"error":"boom"`) {
		t.Errorf("row error missing: %s", got)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(got), &decoded); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
}

func TestEncodeCSVAndMarkdown(t *testing.T) {
	rep := &Report{Suite: "s", Tables: []Table{{
		Name: "t", Caption: "cap",
		Columns: []Column{{Name: "a", Kind: ColString}, {Name: "pct", Kind: ColPct, Prec: 2}},
		Rows: []Row{
			{Cells: []Value{Str("x,y"), Float(12.345)}},
			{Cells: []Value{Str("z"), Null()}, Error: "bad"},
		},
	}}}
	var csvOut strings.Builder
	if err := rep.EncodeCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut.String(), `"x,y",12.345,`) {
		t.Errorf("csv quoting/precision:\n%s", csvOut.String())
	}
	if !strings.Contains(csvOut.String(), "z,,bad") {
		t.Errorf("csv null/error row:\n%s", csvOut.String())
	}
	var md strings.Builder
	if err := rep.EncodeMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | pct |") || !strings.Contains(md.String(), "**cap**") {
		t.Errorf("markdown:\n%s", md.String())
	}
}

func TestParseFormat(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Format
	}{{"table", FormatTable}, {"json", FormatJSON}, {"csv", FormatCSV}, {"markdown", FormatMarkdown}, {"md", FormatMarkdown}} {
		got, err := ParseFormat(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFormat(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("bad format accepted")
	}
}

// TestRunnerObs: the mira_report_* series count suite runs and rows.
func TestRunnerObs(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner(engine.New(engine.Options{Workers: 1})).WithObs(reg)
	_, err := r.Run(context.Background(), Suite{Name: "obs", Sections: []Section{GridSection{
		Workload: WorkloadRef{File: "kernel.c", Source: kernelSrc},
		Fn:       "kernel",
		Axes:     []engine.SweepAxis{{Name: "n", Values: []int64{1, 2, 3}}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.met.runs.Value(); got != 1 {
		t.Errorf("runs = %d", got)
	}
	if got := r.met.rows.Value(); got != 3 {
		t.Errorf("rows = %d", got)
	}
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mira_report_runs_total 1") {
		t.Errorf("exposition missing report series:\n%s", sb.String())
	}
}

// TestWorkloads: the registry lists the paper's evaluation workloads.
func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) < 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	for _, name := range []string{"stream", "dgemm", "minife", "ablation"} {
		w, ok := LookupWorkload(name)
		if !ok {
			t.Errorf("missing workload %q", name)
			continue
		}
		if w.Source == "" || w.File == "" || len(w.Funcs) == 0 {
			t.Errorf("workload %q incomplete: %+v", name, w)
		}
	}
	// Mutating the returned slice must not corrupt the registry.
	ws[0].Name = "clobbered"
	if _, ok := LookupWorkload("stream"); !ok {
		t.Error("registry aliased caller slice")
	}
}
